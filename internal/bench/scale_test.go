package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/topo"
)

// TestGeminiScaleLean is the generated-topology acceptance run: a
// 1024-node gemini (Titan-like 3D torus) Jacobi solve in lean mode
// completes inside ordinary test timeouts with a bounded per-rank memory
// envelope, and its report and telemetry are byte-identical at -par-sim 1
// and 8 — the same determinism contract the small presets carry, held at
// three orders of magnitude more nodes. The measured events/sec and
// bytes/rank feed BENCH_topo.json.
func TestGeminiScaleLean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 1024-node simulation twice")
	}
	sys, err := topo.Preset("gemini:16,8,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Nodes) != 1024 {
		t.Fatalf("gemini:16,8,8 generated %d nodes, want 1024", len(sys.Nodes))
	}
	ranks := len(sys.Nodes) // one GPU per generated node
	run := func(workers int) (report, metrics []byte, events uint64, wall time.Duration) {
		cfg := core.Config{System: sys, Lean: true, Seed: 2016, JitterPct: 1, Parallel: workers}
		// Scalable workload: one mesh row per rank, two sweeps.
		prog := apps.Jacobi(apps.JacobiConfig{N: ranks, Iters: 2, Style: apps.StyleUnified})
		rt, err := core.NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		rep, err := rt.Execute(prog)
		wall = time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		rep.Run.Hash = "" // pinned elsewhere; keep the diff signal on content
		report, err = json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := rep.Metrics.WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		return report, snap.Bytes(), rt.Events(), wall
	}

	rep1, met1, ev1, wall1 := run(1)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bytesPerRank := ms.HeapAlloc / uint64(ranks)
	rep8, met8, ev8, _ := run(8)

	if !bytes.Equal(rep1, rep8) {
		t.Errorf("par-sim 8 report differs from serial (%d vs %d bytes)", len(rep8), len(rep1))
	}
	if !bytes.Equal(met1, met8) {
		t.Errorf("par-sim 8 metrics differ from serial (%d vs %d bytes)", len(met8), len(met1))
	}
	if ev1 != ev8 {
		t.Errorf("event counts diverge: serial %d, par-sim 8 %d", ev1, ev8)
	}
	// The lean envelope: the post-run heap must stay within a generous
	// fixed per-rank budget (catching any O(ranks^2) or per-rank-buffered
	// regression immediately).
	const maxBytesPerRank = 1 << 20
	if bytesPerRank > maxBytesPerRank {
		t.Errorf("heap after serial run = %d bytes/rank, budget %d", bytesPerRank, maxBytesPerRank)
	}
	t.Logf("gemini:16,8,8 lean: %d events in %v serial (%.0f events/sec), heap %d bytes/rank",
		ev1, wall1, float64(ev1)/wall1.Seconds(), bytesPerRank)
}

// TestGemini4096Measure regenerates the BENCH_topo.json 4096-node row.
// Too slow for every CI run, so it only executes when IMPACC_SCALE_4096 is
// set; the recorded numbers live in BENCH_topo.json.
func TestGemini4096Measure(t *testing.T) {
	if os.Getenv("IMPACC_SCALE_4096") == "" {
		t.Skip("set IMPACC_SCALE_4096=1 to run the 4096-node measurement")
	}
	sys, err := topo.Preset("gemini:16,16,16")
	if err != nil {
		t.Fatal(err)
	}
	ranks := len(sys.Nodes)
	cfg := core.Config{System: sys, Lean: true, Seed: 2016, JitterPct: 1}
	prog := apps.Jacobi(apps.JacobiConfig{N: ranks, Iters: 2, Style: apps.StyleUnified})
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := rt.Execute(prog); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("gemini:16,16,16 lean: %d events in %v serial (%.0f events/sec), heap %d bytes/rank",
		rt.Events(), wall, float64(rt.Events())/wall.Seconds(), ms.HeapAlloc/uint64(ranks))
}
