package bench

import (
	"fmt"
	"io"

	"impacc/internal/acc"
	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

// AblationRow compares a workload with one IMPACC technique disabled
// against the full runtime.
type AblationRow struct {
	Technique string
	Workload  string
	Off, On   sim.Dur
}

// Gain is the slowdown factor from disabling the technique.
func (r AblationRow) Gain() float64 { return r.Off.Seconds() / r.On.Seconds() }

// withFeature runs prog with the full IMPACC feature set, minus the given
// mutation when off.
func runFeature(opt Options, sys *topo.System, tasks int, mutate func(f *core.Features), off bool, prog core.Program) (sim.Dur, error) {
	f := core.DefaultFeatures(core.IMPACC)
	if off {
		mutate(&f)
	}
	cfg := baseCfg(opt, sys, core.IMPACC, tasks, false)
	cfg.Features = &f
	d, _, err := elapsedOf(opt, cfg, prog)
	return d, err
}

// Ablations measures each design choice DESIGN.md calls out.
func Ablations(opt Options) ([]AblationRow, error) {
	n := 2048
	iters := 10
	if opt.Quick {
		n = 512
		iters = 3
	}
	// feature builds a technique job: the same workload with the mutation
	// applied (off) and with the full feature set (on).
	feature := func(name, workload string, sys *topo.System, tasks int,
		mutate func(*core.Features), prog core.Program) func() (AblationRow, error) {
		return func() (AblationRow, error) {
			off, err := runFeature(opt, sys, tasks, mutate, true, prog)
			if err != nil {
				return AblationRow{}, fmt.Errorf("%s off: %w", name, err)
			}
			on, err := runFeature(opt, sys, tasks, mutate, false, prog)
			if err != nil {
				return AblationRow{}, fmt.Errorf("%s on: %w", name, err)
			}
			return AblationRow{Technique: name, Workload: workload, Off: off, On: on}, nil
		}
	}

	dgemm := apps.DGEMM(apps.DGEMMConfig{N: n, Style: apps.StyleUnified})

	// Direct DtoD and GPUDirect RDMA matter for bandwidth-bound device
	// transfers: measure ping-pong exchanges of large device buffers.
	xfer := int64(32 << 20)
	reps := 8
	if opt.Quick {
		xfer = 4 << 20
		reps = 3
	}

	jobs := []func() (AblationRow, error){
		// Message fusion: intra-node DGEMM distribution without fused copies
		// falls back to the legacy two-copy transport.
		feature("node-heap-aliasing", fmt.Sprintf("DGEMM %d (PSG x8)", n), topo.PSG(), 8,
			func(f *core.Features) { f.Aliasing = false }, dgemm),
		feature("direct-p2p-dtod", fmt.Sprintf("%dx%dMB DtoD intra (PSG)", reps, xfer>>20), topo.PSG(), 2,
			func(f *core.Features) { f.DirectP2P = false }, devicePingPong(xfer, reps)),
		feature("gpudirect-rdma", fmt.Sprintf("%dx%dMB DtoD inter (Titan)", reps, xfer>>20), topo.Titan(2), 2,
			func(f *core.Features) { f.RDMA = false }, devicePingPong(xfer, reps)),
		// Unified activity queue: unified style vs the async style with
		// explicit synchronization, both under IMPACC.
		func() (AblationRow, error) {
			cfgU := baseCfg(opt, topo.PSG(), core.IMPACC, 8, false)
			on, _, err := elapsedOf(opt, cfgU, apps.Jacobi(apps.JacobiConfig{N: n, Iters: iters, Style: apps.StyleUnified}))
			if err != nil {
				return AblationRow{}, err
			}
			cfgA := baseCfg(opt, topo.PSG(), core.IMPACC, 8, false)
			off, _, err := elapsedOf(opt, cfgA, apps.Jacobi(apps.JacobiConfig{N: n, Iters: iters, Style: apps.StyleAsync}))
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Technique: "unified-activity-queue",
				Workload:  fmt.Sprintf("Jacobi %d (PSG x8)", n),
				Off:       off, On: on,
			}, nil
		},
		// MPI_THREAD_MULTIPLE: without it, each node's internode calls — and
		// the library-internal staging copies of device sends on the
		// non-GPUDirect Beacon — serialize (paper §3.7). Four tasks per node
		// exchanging device buffers across the network expose the lock.
		func() (AblationRow, error) {
			sys := topo.Beacon(2)
			// Small messages: the serialized call window (library overhead +
			// staging setup) exceeds the per-message wire time, so the lock
			// is the bottleneck — the regime the paper's argument addresses.
			msgBytes, rounds := int64(4096), 128
			if opt.Quick {
				rounds = 24
			}
			mk := func(serial bool) (sim.Dur, error) {
				cfg := baseCfg(opt, sys, core.IMPACC, 8, false)
				cfg.ForceSerialMPI = serial
				d, _, err := elapsedOf(opt, cfg, crossNodeDeviceExchange(msgBytes, rounds))
				return d, err
			}
			off, err := mk(true)
			if err != nil {
				return AblationRow{}, err
			}
			on, err := mk(false)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Technique: "mpi-thread-multiple",
				Workload:  fmt.Sprintf("%dx%dKB dev exch (Beacon 2x4)", rounds, msgBytes>>10),
				Off:       off, On: on,
			}, nil
		},
		// NUMA pinning: far vs near (the Figure 8 effect at app level).
		func() (AblationRow, error) {
			mk := func(pin core.PinPolicy) (sim.Dur, error) {
				cfg := baseCfg(opt, topo.PSG(), core.IMPACC, 8, false)
				cfg.Pin = pin
				d, _, err := elapsedOf(opt, cfg, apps.DGEMM(apps.DGEMMConfig{N: n, Style: apps.StyleSync}))
				return d, err
			}
			off, err := mk(core.PinFar)
			if err != nil {
				return AblationRow{}, err
			}
			on, err := mk(core.PinNear)
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Technique: "numa-pinning",
				Workload:  fmt.Sprintf("DGEMM %d sync (PSG x8)", n),
				Off:       off, On: on,
			}, nil
		},
	}
	return parMap(opt, jobs, func(_ int, job func() (AblationRow, error)) (AblationRow, error) {
		return job()
	})
}

func runAblation(w io.Writer, opt Options) error {
	rows, err := Ablations(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %-26s %12s %12s %8s\n", "technique", "workload", "disabled", "enabled", "cost")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %-26s %12v %12v %7.2fx\n", r.Technique, r.Workload, r.Off, r.On, r.Gain())
	}
	return nil
}

// devicePingPong exchanges a device buffer between ranks 0 and 1 reps
// times (rank 0 sends, rank 1 returns it).
func devicePingPong(bytes int64, reps int) core.Program {
	return func(t *core.Task) {
		if t.Rank() > 1 {
			return
		}
		buf := t.Malloc(bytes)
		t.DataEnter(buf, bytes, acc.Create)
		peer := 1 - t.Rank()
		count := int(bytes / 8)
		for i := 0; i < reps; i++ {
			if t.Rank() == 0 {
				t.Send(buf, count, mpi.Float64, peer, 1, core.OnDevice())
				t.Recv(buf, count, mpi.Float64, peer, 2, core.OnDevice())
			} else {
				t.Recv(buf, count, mpi.Float64, peer, 1, core.OnDevice())
				t.Send(buf, count, mpi.Float64, peer, 2, core.OnDevice())
			}
		}
		t.DataExit(buf, acc.Delete)
	}
}

// crossNodeDeviceExchange pairs task i on node 0 with task i on node 1;
// every pair exchanges device buffers concurrently, contending for each
// node's MPI library call path.
func crossNodeDeviceExchange(bytes int64, reps int) core.Program {
	return func(t *core.Task) {
		half := t.Size() / 2
		var peer int
		if t.Rank() < half {
			peer = t.Rank() + half
		} else {
			peer = t.Rank() - half
		}
		buf := t.Malloc(bytes)
		t.DataEnter(buf, bytes, acc.Create)
		count := int(bytes / 8)
		for i := 0; i < reps; i++ {
			// Bulk-synchronous rounds: all pairs hit the MPI library at
			// the same instant, the worst case for a serialized library.
			t.Barrier()
			if t.Rank() < half {
				t.Send(buf, count, mpi.Float64, peer, 1, core.OnDevice())
				t.Recv(buf, count, mpi.Float64, peer, 2, core.OnDevice())
			} else {
				t.Recv(buf, count, mpi.Float64, peer, 1, core.OnDevice())
				t.Send(buf, count, mpi.Float64, peer, 2, core.OnDevice())
			}
		}
		t.DataExit(buf, acc.Delete)
	}
}
