package bench

import (
	"fmt"
	"io"

	"impacc/internal/acc"
	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// ---- Figure 4/5: synchronization styles ---------------------------------

// Fig5Result measures one style of the Figure 4 exchange.
type Fig5Result struct {
	Style   apps.Style
	Elapsed sim.Dur
	// IssueSpan is how long the host thread was captive issuing the
	// pipeline (until its last enqueue, before any final drain): the
	// HOST-timeline width of Figure 5. Under the unified activity queue
	// the host is free almost immediately.
	IssueSpan sim.Dur
}

// Fig5 runs the kernel-send-recv-kernel pipeline of Figure 4 in all three
// styles on two PSG tasks and reports elapsed and host-blocked time,
// reproducing the Figure 5 timelines.
func Fig5(opt Options) ([]Fig5Result, error) {
	n := int64(8 << 20)
	if opt.Quick {
		n = 1 << 20
	}
	styles := []apps.Style{apps.StyleSync, apps.StyleAsync, apps.StyleUnified}
	return parMap(opt, styles, func(_ int, style apps.Style) (Fig5Result, error) {
		cfg := baseCfg(opt, topo.PSG(), core.IMPACC, 2, false)
		issue := make([]sim.Time, 2)
		rep, err := runGated(opt, cfg, fig5Prog(style, n, issue))
		if err != nil {
			return Fig5Result{}, fmt.Errorf("fig5 %v: %w", style, err)
		}
		span := issue[0]
		if issue[1] > span {
			span = issue[1]
		}
		return Fig5Result{Style: style, Elapsed: rep.Elapsed, IssueSpan: sim.Dur(span)}, nil
	})
}

// fig5Prog is the Figure 4 code: run a kernel producing buf0, exchange buf0
// for the peer's buf1, run a kernel consuming buf1.
func fig5Prog(style apps.Style, n int64, issue []sim.Time) core.Program {
	return func(t *core.Task) {
		peer := 1 - t.Rank()
		buf0 := t.Malloc(n)
		buf1 := t.Malloc(n)
		t.DataEnter(buf0, n, acc.Create)
		t.DataEnter(buf1, n, acc.Create)
		count := int(n / 8)
		spec := device.KernelSpec{Name: "k", FLOPs: 40 * float64(count), Kind: device.KindCompute}
		const iters = 4
		for i := 0; i < iters; i++ {
			switch style {
			case apps.StyleSync: // Figure 4 (a)
				t.Kernels(spec, -1)
				t.UpdateHost(buf0, n, -1)
				if t.Rank() == 0 {
					t.Send(buf0, count, mpi.Float64, peer, 1)
					t.Recv(buf1, count, mpi.Float64, peer, 1)
				} else {
					t.Recv(buf1, count, mpi.Float64, peer, 1)
					t.Send(buf0, count, mpi.Float64, peer, 1)
				}
				t.UpdateDevice(buf1, n, -1)
				t.Kernels(spec, -1)
			case apps.StyleAsync: // Figure 4 (b)
				t.Kernels(spec, 1)
				t.UpdateHost(buf0, n, 1)
				t.ACCWait(1)
				rs := []*core.Request{
					t.Isend(buf0, count, mpi.Float64, peer, 1),
					t.Irecv(buf1, count, mpi.Float64, peer, 1),
				}
				t.Wait(rs...)
				t.UpdateDevice(buf1, n, 1)
				t.Kernels(spec, 1)
				t.ACCWait(1)
			default: // Figure 4 (c)
				t.Kernels(spec, 1)
				t.Isend(buf0, count, mpi.Float64, peer, 1, core.OnDevice(), core.Async(1))
				t.Irecv(buf1, count, mpi.Float64, peer, 1, core.OnDevice(), core.Async(1))
				t.Kernels(spec, 1)
			}
		}
		issue[t.Rank()] = t.Now()
		if style == apps.StyleUnified {
			t.ACCWait(1)
		}
	}
}

func runFig5(w io.Writer, opt Options) error {
	res, err := Fig5(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %12s %14s\n", "style", "elapsed", "host-captive")
	for _, r := range res {
		fmt.Fprintf(w, "%-10s %12v %14v\n", r.Style, r.Elapsed, r.IssueSpan)
	}
	return nil
}

// ---- Figure 6: message fusion -------------------------------------------

// Fig6Result counts copy operations for one buffer-location pair.
type Fig6Result struct {
	Pair         string // HtoH, HtoD, DtoH, DtoD
	LegacyCopies int64  // staging + redundant copies in MPI+OpenACC
	IMPACCCopies int64  // fused copies
	LegacyTime   sim.Dur
	IMPACCTime   sim.Dur
}

// Fig6 transfers one message between two intra-node tasks for each of the
// four location pairs under both runtimes and counts the physical copies —
// the content of Figure 6.
func Fig6(opt Options) ([]Fig6Result, error) {
	n := int64(16 << 20)
	if opt.Quick {
		n = 1 << 20
	}
	pairs := []string{"HtoH", "HtoD", "DtoH", "DtoD"}
	return parMap(opt, pairs, func(_ int, pair string) (Fig6Result, error) {
		res := Fig6Result{Pair: pair}
		for _, mode := range []core.Mode{core.Legacy, core.IMPACC} {
			times := &p2pTimes{}
			cfg := baseCfg(opt, topo.PSG(), mode, 2, false)
			cfg.Pin = core.PinNear // isolate the transport path from pinning
			rep, err := runGated(opt, cfg, p2pProg(pair, n, mode == core.Legacy, times))
			if err != nil {
				return Fig6Result{}, fmt.Errorf("fig6 %s %v: %w", pair, mode, err)
			}
			hub := rep.TotalHub()
			dev := rep.TotalDev()
			elapsed := sim.Dur(times.end - times.start)
			if mode == core.Legacy {
				// Transport shm copies + application staging copies.
				res.LegacyCopies = int64(hub.LegacyCopies) + dev.HtoDCount + dev.DtoHCount
				res.LegacyTime = elapsed
			} else {
				res.IMPACCCopies = int64(hub.FusedCopies)
				res.IMPACCTime = elapsed
			}
		}
		return res, nil
	})
}

func runFig6(w io.Writer, opt Options) error {
	res, err := Fig6(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %14s %14s %14s %14s\n", "pair", "MPI+X copies", "IMPACC copies", "MPI+X time", "IMPACC time")
	for _, r := range res {
		fmt.Fprintf(w, "%-6s %14d %14d %14v %14v\n",
			r.Pair, r.LegacyCopies, r.IMPACCCopies, r.LegacyTime, r.IMPACCTime)
	}
	return nil
}

// ---- Figure 7: node heap aliasing ---------------------------------------

// Fig7Result contrasts a readonly producer-consumer pair with a plain one.
type Fig7Result struct {
	ReadOnly bool
	Aliases  uint64
	Copies   uint64
	Elapsed  sim.Dur
}

// Fig7 reproduces the Figure 7 scenario: task 0 mallocs 100 elements and
// sends 10 from an offset; task 1 receives into a whole 10-element heap.
func Fig7(opt Options) ([]Fig7Result, error) {
	return parMap(opt, []bool{false, true}, func(_ int, ro bool) (Fig7Result, error) {
		cfg := baseCfg(opt, topo.PSG(), core.IMPACC, 2, true)
		var elapsed sim.Dur
		prog := func(t *core.Task) {
			const elems = 10
			if t.Rank() == 0 {
				src := t.Malloc(100 * 8)
				if v := t.Floats(src, 100); v != nil {
					for i := range v {
						v[i] = float64(i)
					}
				}
				var opts []core.Opt
				if ro {
					opts = append(opts, core.ReadOnly())
				}
				t.Send(src+xmem.Addr(30*8), elems, mpi.Float64, 1, 0, opts...)
			} else {
				dst := t.Malloc(elems * 8)
				start := t.Now()
				var opts []core.Opt
				if ro {
					opts = append(opts, core.ReadOnly())
				}
				t.Recv(dst, elems, mpi.Float64, 0, 0, opts...)
				elapsed = sim.Dur(t.Now() - start)
				if v := t.Floats(dst, elems); v != nil && v[0] != 30 {
					t.Failf("fig7: dst[0] = %v, want 30", v[0])
				}
			}
		}
		rep, err := runGated(opt, cfg, prog)
		if err != nil {
			return Fig7Result{}, err
		}
		return Fig7Result{
			ReadOnly: ro,
			Aliases:  rep.TotalHub().Aliases,
			Copies:   rep.TotalHub().FusedCopies,
			Elapsed:  elapsed,
		}, nil
	})
}

func runFig7(w io.Writer, opt Options) error {
	res, err := Fig7(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %8s %8s %12s\n", "variant", "aliases", "copies", "recv time")
	for _, r := range res {
		name := "plain"
		if r.ReadOnly {
			name = "readonly (#pam)"
		}
		fmt.Fprintf(w, "%-20s %8d %8d %12v\n", name, r.Aliases, r.Copies, r.Elapsed)
	}
	return nil
}

// ---- Figure 8: NUMA-friendly pinning -------------------------------------

// Fig8Row is one bandwidth sample.
type Fig8Row struct {
	System  string
	Dir     string // HtoD or DtoH
	Bytes   int64
	NearGBs float64
	FarGBs  float64
}

func fig8Sizes(opt Options) []int64 {
	if opt.Quick {
		return []int64{64, 256 << 10, 64 << 20}
	}
	return []int64{64, 1 << 10, 16 << 10, 256 << 10, 4 << 20, 64 << 20, 1 << 30}
}

// Fig8 measures accelerator copy bandwidth with NUMA-friendly and
// NUMA-unfriendly task pinning on PSG and Beacon (paper Figure 8).
func Fig8(opt Options) ([]Fig8Row, error) {
	systems := []struct {
		name string
		sys  func() *topo.System
	}{
		{"PSG", topo.PSG},
		{"Beacon", func() *topo.System { return topo.Beacon(1) }},
	}
	type cell struct {
		sys  func() *topo.System
		name string
		dir  string
		size int64
	}
	var cells []cell
	for _, s := range systems {
		for _, dir := range []string{"HtoD", "DtoH"} {
			for _, size := range fig8Sizes(opt) {
				cells = append(cells, cell{s.sys, s.name, dir, size})
			}
		}
	}
	return parMap(opt, cells, func(_ int, c cell) (Fig8Row, error) {
		row := Fig8Row{System: c.name, Dir: c.dir, Bytes: c.size}
		for _, pin := range []core.PinPolicy{core.PinNear, core.PinFar} {
			cfg := baseCfg(opt, c.sys(), core.IMPACC, 1, false)
			cfg.Pin = pin
			var elapsed sim.Dur
			_, err := runGated(opt, cfg, func(t *core.Task) {
				buf := t.Malloc(c.size)
				t.DataEnter(buf, c.size, acc.Create)
				start := t.Now()
				if c.dir == "HtoD" {
					t.UpdateDevice(buf, c.size, -1)
				} else {
					t.UpdateHost(buf, c.size, -1)
				}
				elapsed = sim.Dur(t.Now() - start)
				t.DataExit(buf, acc.Delete)
			})
			if err != nil {
				return Fig8Row{}, err
			}
			if pin == core.PinNear {
				row.NearGBs = gbs(c.size, elapsed)
			} else {
				row.FarGBs = gbs(c.size, elapsed)
			}
		}
		return row, nil
	})
}

func runFig8(w io.Writer, opt Options) error {
	rows, err := Fig8(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-5s %-8s %12s %12s %8s\n", "system", "dir", "size", "near GB/s", "far GB/s", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-5s %-8s %12.2f %12.2f %8.2f\n",
			r.System, r.Dir, sizeLabel(r.Bytes), r.NearGBs, r.FarGBs, r.NearGBs/r.FarGBs)
	}
	return nil
}

// ---- Figure 9: point-to-point bandwidth ----------------------------------

// p2pTimes captures transfer start (sender) and end (receiver).
type p2pTimes struct {
	start, end sim.Time
}

// p2pProg transfers one message of the given location pair between rank 0
// (sender) and rank 1 (receiver). Under legacy, device endpoints stage
// explicitly through host buffers (the application-level copies of the
// MPI+OpenACC baseline); under IMPACC the unified routines take device
// addresses directly.
func p2pProg(pair string, n int64, legacy bool, res *p2pTimes) core.Program {
	srcDev := pair == "DtoH" || pair == "DtoD"
	dstDev := pair == "HtoD" || pair == "DtoD"
	count := int(n / 8)
	return func(t *core.Task) {
		buf := t.Malloc(n)
		if (t.Rank() == 0 && srcDev) || (t.Rank() == 1 && dstDev) {
			t.DataEnter(buf, n, acc.Create)
		}
		if t.Rank() == 0 {
			res.start = t.Now()
			if legacy {
				if srcDev {
					t.UpdateHost(buf, n, -1) // explicit copyout
				}
				t.Send(buf, count, mpi.Float64, 1, 0)
				return
			}
			opts := []core.Opt{}
			if srcDev {
				opts = append(opts, core.OnDevice())
			}
			t.Send(buf, count, mpi.Float64, 1, 0, opts...)
			return
		}
		if legacy {
			t.Recv(buf, count, mpi.Float64, 0, 0)
			if dstDev {
				t.UpdateDevice(buf, n, -1) // explicit copyin
			}
			res.end = t.Now()
			return
		}
		opts := []core.Opt{}
		if dstDev {
			opts = append(opts, core.OnDevice())
		}
		t.Recv(buf, count, mpi.Float64, 0, 0, opts...)
		res.end = t.Now()
	}
}

// Fig9Row is one bandwidth comparison sample.
type Fig9Row struct {
	Panel     string // e.g. "PSG DtoD (intra)", "Titan HtoH (inter)"
	Bytes     int64
	IMPACCGBs float64
	MPIXGBs   float64
}

// Fig9 measures point-to-point bandwidth between two tasks for every panel
// of Figure 9: intra-node on PSG and Beacon, internode on Titan.
func Fig9(opt Options) ([]Fig9Row, error) {
	panels := []struct {
		name string
		sys  func() *topo.System
	}{
		{"PSG-intra", topo.PSG},
		{"Beacon-intra", func() *topo.System { return topo.Beacon(1) }},
		{"Titan-inter", func() *topo.System { return topo.Titan(2) }},
	}
	type cell struct {
		sys   func() *topo.System
		panel string
		pair  string
		size  int64
	}
	var cells []cell
	for _, p := range panels {
		for _, pair := range []string{"HtoH", "HtoD", "DtoD"} {
			for _, size := range fig8Sizes(opt) {
				cells = append(cells, cell{p.sys, p.name, pair, size})
			}
		}
	}
	return parMap(opt, cells, func(_ int, c cell) (Fig9Row, error) {
		row := Fig9Row{Panel: c.panel + " " + c.pair, Bytes: c.size}
		for _, mode := range []core.Mode{core.IMPACC, core.Legacy} {
			times := &p2pTimes{}
			cfg := baseCfg(opt, c.sys(), mode, 2, false)
			cfg.Pin = core.PinNear // isolate the transport path
			_, err := runGated(opt, cfg, p2pProg(c.pair, c.size, mode == core.Legacy, times))
			if err != nil {
				return Fig9Row{}, fmt.Errorf("fig9 %s %s %v: %w", c.panel, c.pair, mode, err)
			}
			bw := gbs(c.size, sim.Dur(times.end-times.start))
			if mode == core.IMPACC {
				row.IMPACCGBs = bw
			} else {
				row.MPIXGBs = bw
			}
		}
		return row, nil
	})
}

func runFig9(w io.Writer, opt Options) error {
	rows, err := Fig9(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %-8s %13s %13s %8s\n", "panel", "size", "IMPACC GB/s", "MPI+X GB/s", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-8s %13.2f %13.2f %8.2f\n",
			r.Panel, sizeLabel(r.Bytes), r.IMPACCGBs, r.MPIXGBs, r.IMPACCGBs/r.MPIXGBs)
	}
	return nil
}
