package bench

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"impacc/internal/core"
	"impacc/internal/telemetry"
)

// WithJobs returns a copy of the options that runs up to n simulations
// concurrently. Every core run owns a private engine, so sweep points are
// independent; determinism is preserved because results are collected per
// point and emitted in canonical order, and telemetry merges are
// commutative. n <= 1 (and the zero Options value) stay strictly serial.
func (o Options) WithJobs(n int) Options {
	o.Jobs = n
	o.gate = nil
	if n > 1 {
		o.gate = make(chan struct{}, n)
	}
	if o.regPool == nil {
		o.regPool = &telemetry.Pool{}
	}
	return o
}

// runGated executes one simulation, holding a worker-pool slot for its
// duration. Slots are taken only around leaf core.Run calls — never while
// fanning out — so nested sweeps cannot deadlock the pool and at most Jobs
// engines ever run at once.
func runGated(opt Options, cfg core.Config, prog core.Program) (*core.Report, error) {
	if opt.gate != nil {
		opt.gate <- struct{}{}
		defer func() { <-opt.gate }()
	}
	if cfg.Limits == (core.Limits{}) {
		cfg.Limits = opt.Limits
	}
	if cfg.Parallel == 0 {
		cfg.Parallel = opt.ParSim
	}
	if cfg.FlightRing == 0 {
		cfg.FlightRing = opt.FlightRing
	}
	if !cfg.Lean {
		cfg.Lean = opt.Lean
	}
	if cfg.MetricsPool == nil {
		cfg.MetricsPool = opt.regPool
	}
	if opt.Prof != nil && cfg.Trace == nil {
		cfg.Trace = core.NewTracer()
	}
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := rt.Execute(prog)
	if err == nil && opt.Prof != nil {
		opt.Prof.Add(rep.Prof)
	}
	if err != nil {
		if st := rt.Stall(); st != nil {
			err = fmt.Errorf("%w (flight recorder: parked %s)", err, strings.Join(st.ParkedRanks(), " "))
		}
	}
	return rep, err
}

// parMap applies f to every item, concurrently when the options carry a
// worker pool, and returns the results in item order. Errors are reported
// deterministically: the lowest-index failure wins. The serial path (no
// pool) short-circuits on the first error, exactly like the historical
// loops.
func parMap[T, R any](opt Options, items []T, f func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if opt.gate == nil || len(items) < 2 {
		for i, it := range items {
			r, err := f(i, it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = f(i, items[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// flatten concatenates row chunks produced by a parMap fan-out.
func flatten[R any](chunks [][]R) []R {
	var out []R
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// RunResult is one experiment's buffered outcome from RunMany.
type RunResult struct {
	Exp    Experiment
	Output []byte
	Wall   time.Duration
	Err    error
}

// RunMany executes the experiments — concurrently when the options carry a
// worker pool — buffering each one's output and returning results in the
// given (canonical) order, so a parallel run prints byte-identically to a
// serial one.
func RunMany(exps []Experiment, opt Options) []RunResult {
	if opt.regPool == nil {
		opt.regPool = &telemetry.Pool{}
	}
	out := make([]RunResult, len(exps))
	run := func(i int) {
		var buf bytes.Buffer
		//impacc:allow-walltime operator-facing progress timing (RunResult.Wall); never enters simulation state or output bytes
		start := time.Now()
		err := exps[i].Run(&buf, opt)
		//impacc:allow-walltime operator-facing progress timing; the Wall field is excluded from canonical output
		out[i] = RunResult{Exp: exps[i], Output: buf.Bytes(), Wall: time.Since(start), Err: err}
	}
	if opt.gate == nil || len(exps) < 2 {
		for i := range exps {
			run(i)
		}
		return out
	}
	var wg sync.WaitGroup
	for i := range exps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run(i)
		}(i)
	}
	wg.Wait()
	return out
}
