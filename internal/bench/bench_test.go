package bench

import (
	"io"
	"strings"
	"testing"

	"impacc/internal/apps"
)

var quick = Options{Quick: true}

func TestRegistryAndSmoke(t *testing.T) {
	// Every experiment must be registered, findable, and runnable in
	// quick mode producing non-empty output.
	ids := []string{"table1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablation", "ext-2d"}
	if len(All) != len(ids) {
		t.Fatalf("registry has %d experiments, want %d", len(All), len(ids))
	}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		var sb strings.Builder
		if err := e.Run(&sb, quick); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestFig2Shapes(t *testing.T) {
	res := Fig2()
	wants := []int{11, 3, 6, 2, 5}
	for i, r := range res {
		if len(r.Tasks) != wants[i] {
			t.Errorf("mask %v: %d tasks, want %d", r.Mask, len(r.Tasks), wants[i])
		}
	}
}

func TestFig5SyncSlowerThanUnified(t *testing.T) {
	res, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	var sync, async, unified Fig5Result
	for _, r := range res {
		switch r.Style {
		case apps.StyleSync:
			sync = r
		case apps.StyleAsync:
			async = r
		default:
			unified = r
		}
	}
	// Figure 5: the unified queue frees the host thread almost instantly,
	// while sync/async keep it captive for the whole pipeline.
	if unified.IssueSpan*4 > sync.IssueSpan {
		t.Fatalf("unified host-captive span %v not far below sync %v",
			unified.IssueSpan, sync.IssueSpan)
	}
	if unified.IssueSpan*4 > async.IssueSpan {
		t.Fatalf("unified host-captive span %v not far below async %v",
			unified.IssueSpan, async.IssueSpan)
	}
	if unified.Elapsed >= sync.Elapsed {
		t.Fatalf("unified elapsed %v not below sync %v", unified.Elapsed, sync.Elapsed)
	}
	if async.Elapsed > sync.Elapsed {
		t.Fatalf("async elapsed %v exceeds sync %v", async.Elapsed, sync.Elapsed)
	}
}

func TestFig6FusionEliminatesCopies(t *testing.T) {
	res, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"HtoH": 2, "HtoD": 3, "DtoH": 3, "DtoD": 4}
	for _, r := range res {
		if r.IMPACCCopies != 1 {
			t.Errorf("%s: IMPACC copies = %d, want 1 (message fusion)", r.Pair, r.IMPACCCopies)
		}
		if r.LegacyCopies != want[r.Pair] {
			t.Errorf("%s: legacy copies = %d, want %d", r.Pair, r.LegacyCopies, want[r.Pair])
		}
		if r.IMPACCTime >= r.LegacyTime {
			t.Errorf("%s: IMPACC %v not faster than legacy %v", r.Pair, r.IMPACCTime, r.LegacyTime)
		}
	}
}

func TestFig7AliasingZeroCopy(t *testing.T) {
	res, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	plain, ro := res[0], res[1]
	if plain.Aliases != 0 || plain.Copies != 1 {
		t.Fatalf("plain pair: aliases=%d copies=%d", plain.Aliases, plain.Copies)
	}
	if ro.Aliases != 1 || ro.Copies != 0 {
		t.Fatalf("readonly pair: aliases=%d copies=%d, want 1/0", ro.Aliases, ro.Copies)
	}
}

func TestFig8NUMARatios(t *testing.T) {
	rows, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	var maxPSG, maxBeacon float64
	for _, r := range rows {
		if r.FarGBs > r.NearGBs {
			t.Errorf("%s %s %s: far faster than near", r.System, r.Dir, sizeLabel(r.Bytes))
		}
		ratio := r.NearGBs / r.FarGBs
		if r.System == "PSG" && ratio > maxPSG {
			maxPSG = ratio
		}
		if r.System == "Beacon" && ratio > maxBeacon {
			maxBeacon = ratio
		}
	}
	// Paper: "up to 3.5 times" on the large-transfer end.
	if maxPSG < 3.0 || maxPSG > 3.7 {
		t.Fatalf("PSG max near/far ratio = %.2f, want ~3.5", maxPSG)
	}
	if maxBeacon < 2.0 || maxBeacon > 3.0 {
		t.Fatalf("Beacon max near/far ratio = %.2f, want ~2.6", maxBeacon)
	}
}

func TestFig9IMPACCWins(t *testing.T) {
	rows, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	var maxDtoD float64
	for _, r := range rows {
		if r.Bytes < 1<<20 {
			continue // latency-dominated region is noisy in the paper too
		}
		strict := strings.Contains(r.Panel, "DtoD") || strings.Contains(r.Panel, "HtoD")
		if strict && r.IMPACCGBs <= r.MPIXGBs {
			t.Errorf("%s %s: IMPACC %.2f <= MPI+X %.2f GB/s",
				r.Panel, sizeLabel(r.Bytes), r.IMPACCGBs, r.MPIXGBs)
		}
		if !strict && r.IMPACCGBs < r.MPIXGBs*0.99 {
			t.Errorf("%s %s: IMPACC %.2f below MPI+X %.2f GB/s",
				r.Panel, sizeLabel(r.Bytes), r.IMPACCGBs, r.MPIXGBs)
		}
		if strings.HasPrefix(r.Panel, "PSG") && strings.HasSuffix(r.Panel, "DtoD") {
			if ratio := r.IMPACCGBs / r.MPIXGBs; ratio > maxDtoD {
				maxDtoD = ratio
			}
		}
	}
	// Paper: "almost eight times higher bandwidth ... in device-to-device
	// intra-node communication in PSG (Figure 9 (c))".
	if maxDtoD < 4 || maxDtoD > 12 {
		t.Fatalf("PSG DtoD IMPACC/MPI+X ratio = %.2f, want ~8", maxDtoD)
	}
}

func TestFig10Shapes(t *testing.T) {
	rows, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	// IMPACC must never lose to the baseline, and both must show speedup
	// with more tasks on the compute-heavy sizes.
	for _, r := range rows {
		if r.IMPACC < r.MPIX*0.95 {
			t.Errorf("%s %s x%d: IMPACC %.2f below MPI+X %.2f",
				r.Panel, r.Param, r.Tasks, r.IMPACC, r.MPIX)
		}
	}
}

func TestFig11BreakdownSane(t *testing.T) {
	rows, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Kernel <= 0 {
			t.Errorf("N=%d tasks=%d %v: zero kernel fraction", r.N, r.Tasks, r.Mode)
		}
		if r.Kernel+r.Comm+r.Other <= 0 {
			t.Errorf("N=%d tasks=%d %v: empty breakdown", r.N, r.Tasks, r.Mode)
		}
	}
	// 1-task legacy run must have total ~1.0 by construction.
	for _, r := range rows {
		if r.Tasks == 1 && r.Mode.String() == "MPI+OpenACC" {
			total := r.Kernel + r.Comm + r.Other
			if total < 0.97 || total > 1.03 {
				t.Fatalf("baseline breakdown total = %.3f, want ~1", total)
			}
		}
	}
}

func TestFig12EPTies(t *testing.T) {
	rows, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	first := map[string]SpeedupRow{}
	last := map[string]SpeedupRow{}
	for _, r := range rows {
		// Paper: "EP shows almost same performances in IMPACC and
		// MPI+OpenACC for all experiments."
		ratio := r.IMPACC / r.MPIX
		if ratio < 0.9 || ratio > 1.15 {
			t.Errorf("%s %s x%d: IMPACC/MPI+X = %.2f, want ~1", r.Panel, r.Param, r.Tasks, ratio)
		}
		key := r.Panel + r.Param
		if _, ok := first[key]; !ok {
			first[key] = r
		}
		last[key] = r
	}
	// Strong scaling within each panel: more tasks, more speedup.
	for key := range first {
		if last[key].IMPACC <= first[key].IMPACC {
			t.Errorf("%s: speedup did not grow (%.2f -> %.2f)",
				key, first[key].IMPACC, last[key].IMPACC)
		}
	}
}

func TestFig13JacobiIMPACCWins(t *testing.T) {
	rows, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Tasks == 1 {
			continue
		}
		if r.IMPACC <= r.MPIX {
			t.Errorf("%s %s x%d: IMPACC %.2f <= MPI+X %.2f (optimized DtoD should win)",
				r.Panel, r.Param, r.Tasks, r.IMPACC, r.MPIX)
		}
	}
}

func TestFig14DtoDBreakdown(t *testing.T) {
	rows, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		legacyTotal := r.MPIXDtoH + r.MPIXHtoH + r.MPIXHtoD
		if r.IMPACCDtoD <= 0 {
			t.Errorf("N=%d x%d: no IMPACC DtoD time", r.N, r.Tasks)
		}
		if r.IMPACCDtoD >= legacyTotal {
			t.Errorf("N=%d x%d: IMPACC DtoD %v not below staged total %v",
				r.N, r.Tasks, r.IMPACCDtoD, legacyTotal)
		}
		if r.MPIXDtoH == 0 || r.MPIXHtoD == 0 || r.MPIXHtoH == 0 {
			t.Errorf("N=%d x%d: missing staged component (%v/%v/%v)",
				r.N, r.Tasks, r.MPIXDtoH, r.MPIXHtoH, r.MPIXHtoD)
		}
	}
}

func TestFig15LULESHShapes(t *testing.T) {
	rows, err := Fig15(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Panel == "PSG" && r.IMPACC < r.MPIX {
			// Paper: IMPACC wins on PSG (pinning + fusion).
			t.Errorf("PSG x%d: IMPACC %.2f < MPI+X %.2f", r.Tasks, r.IMPACC, r.MPIX)
		}
		if r.IMPACC <= 0 || r.MPIX <= 0 {
			t.Errorf("%s x%d: empty result", r.Panel, r.Tasks)
		}
		// Weak scaling: normalized performance must not collapse.
		if r.IMPACC < 0.3 {
			t.Errorf("%s x%d: efficiency collapsed (%.2f)", r.Panel, r.Tasks, r.IMPACC)
		}
	}
}

func TestAblationsAllCost(t *testing.T) {
	rows, err := Ablations(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("ablations = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Gain() < 1.0 {
			t.Errorf("%s: disabling it *helped* (%.2fx)", r.Technique, r.Gain())
		}
	}
}

func TestExperimentOutputGolden(t *testing.T) {
	// The table printers must include header labels.
	checks := map[string]string{
		"table1": "THREAD_MULTIPLE",
		"fig8":   "near GB/s",
		"fig9":   "IMPACC GB/s",
		"fig14":  "MPI+X total",
	}
	for id, want := range checks {
		e, _ := ByID(id)
		var sb strings.Builder
		if err := e.Run(&sb, quick); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), want) {
			t.Errorf("%s output missing %q", id, want)
		}
	}
	_ = io.Discard
}

func TestExt2DHaloReduction(t *testing.T) {
	rows, err := Ext2D(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Halo2D >= r.Halo1D {
			t.Errorf("N=%d x%d: 2-D halo bytes (%d) not below 1-D (%d)",
				r.N, r.Tasks, r.Halo2D, r.Halo1D)
		}
	}
}

func TestWriteCSVAllTabular(t *testing.T) {
	tabular := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "ablation", "ext-2d"}
	for _, id := range tabular {
		var sb strings.Builder
		ok, err := WriteCSV(id, &sb, quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !ok {
			t.Fatalf("%s: reported non-tabular", id)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: CSV has no data rows", id)
		}
		cols := strings.Count(lines[0], ",")
		for i, l := range lines {
			if strings.Count(l, ",") != cols {
				t.Fatalf("%s line %d: ragged CSV: %q", id, i, l)
			}
		}
	}
	if ok, _ := WriteCSV("table1", io.Discard, quick); ok {
		t.Fatal("table1 must report non-tabular")
	}
	if ok, _ := WriteCSV("bogus", io.Discard, quick); ok {
		t.Fatal("unknown id must report non-tabular")
	}
}
