package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits an experiment's typed results as CSV for plotting, or
// reports false when the experiment has no tabular form (table1, fig2).
func WriteCSV(id string, w io.Writer, opt Options) (bool, error) {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	i := strconv.Itoa

	switch id {
	case "fig5":
		rows, err := Fig5(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"style", "elapsed_ns", "host_captive_ns"})
		for _, r := range rows {
			cw.Write([]string{r.Style.String(), i(int(r.Elapsed)), i(int(r.IssueSpan))})
		}
	case "fig6":
		rows, err := Fig6(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"pair", "mpix_copies", "impacc_copies", "mpix_ns", "impacc_ns"})
		for _, r := range rows {
			cw.Write([]string{r.Pair, i(int(r.LegacyCopies)), i(int(r.IMPACCCopies)),
				i(int(r.LegacyTime)), i(int(r.IMPACCTime))})
		}
	case "fig7":
		rows, err := Fig7(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"readonly", "aliases", "copies", "recv_ns"})
		for _, r := range rows {
			cw.Write([]string{fmt.Sprint(r.ReadOnly), i(int(r.Aliases)), i(int(r.Copies)), i(int(r.Elapsed))})
		}
	case "fig8":
		rows, err := Fig8(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"system", "dir", "bytes", "near_gbs", "far_gbs"})
		for _, r := range rows {
			cw.Write([]string{r.System, r.Dir, i(int(r.Bytes)), f(r.NearGBs), f(r.FarGBs)})
		}
	case "fig9":
		rows, err := Fig9(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"panel", "bytes", "impacc_gbs", "mpix_gbs"})
		for _, r := range rows {
			cw.Write([]string{r.Panel, i(int(r.Bytes)), f(r.IMPACCGBs), f(r.MPIXGBs)})
		}
	case "fig10", "fig12", "fig13", "fig15":
		var rows []SpeedupRow
		var err error
		switch id {
		case "fig10":
			rows, err = Fig10(opt)
		case "fig12":
			rows, err = Fig12(opt)
		case "fig13":
			rows, err = Fig13(opt)
		default:
			rows, err = Fig15(opt)
		}
		if err != nil {
			return true, err
		}
		cw.Write([]string{"panel", "param", "tasks", "impacc_speedup", "mpix_speedup"})
		for _, r := range rows {
			cw.Write([]string{r.Panel, r.Param, i(r.Tasks), f(r.IMPACC), f(r.MPIX)})
		}
	case "fig11":
		rows, err := Fig11(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"n", "tasks", "mode", "kernel", "comm", "other"})
		for _, r := range rows {
			cw.Write([]string{i(r.N), i(r.Tasks), r.Mode.String(), f(r.Kernel), f(r.Comm), f(r.Other)})
		}
	case "fig14":
		rows, err := Fig14(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"n", "tasks", "impacc_dtod_ns", "mpix_dtoh_ns", "mpix_htoh_ns", "mpix_htod_ns"})
		for _, r := range rows {
			cw.Write([]string{i(r.N), i(r.Tasks), i(int(r.IMPACCDtoD)),
				i(int(r.MPIXDtoH)), i(int(r.MPIXHtoH)), i(int(r.MPIXHtoD))})
		}
	case "ablation":
		rows, err := Ablations(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"technique", "workload", "disabled_ns", "enabled_ns", "cost"})
		for _, r := range rows {
			cw.Write([]string{r.Technique, r.Workload, i(int(r.Off)), i(int(r.On)), f(r.Gain())})
		}
	case "ext-2d":
		rows, err := Ext2D(opt)
		if err != nil {
			return true, err
		}
		cw.Write([]string{"n", "tasks", "elapsed_1d_ns", "elapsed_2d_ns", "halo_1d_bytes", "halo_2d_bytes"})
		for _, r := range rows {
			cw.Write([]string{i(r.N), i(r.Tasks), i(int(r.Elapsed1D)), i(int(r.Elapsed2D)),
				i(int(r.Halo1D)), i(int(r.Halo2D))})
		}
	default:
		return false, nil
	}
	cw.Flush()
	return true, cw.Error()
}
