// Package bench regenerates every table and figure of the paper's
// evaluation (§4): the system table, the behavioural figures (2, 5, 6, 7),
// the microbenchmarks (8, 9), the application studies (10-15), and ablation
// experiments for each IMPACC technique. Each experiment produces typed
// results (asserted by tests) and prints the same rows/series the paper
// reports.
package bench

import (
	"fmt"
	"io"

	"impacc/internal/core"
	"impacc/internal/fault"
	"impacc/internal/prof"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sweeps for CI/tests; full runs reproduce the paper's
	// parameter ranges.
	Quick bool
	// Metrics, when non-nil, is shared by every run an experiment performs,
	// aggregating all of their telemetry into one registry (each run merges
	// its private registry on completion).
	Metrics *telemetry.Registry
	// Prof, when non-nil, traces every run and folds its analyzed profile
	// into the aggregate (Add is commutative, so parallel sweeps snapshot
	// byte-identically to serial ones).
	Prof *prof.Aggregate
	// Jobs is the worker-pool width set via WithJobs; <= 1 means serial.
	Jobs int
	// Chaos, when non-nil, applies the same deterministic fault-injection
	// spec to every run an experiment performs (each run instantiates a
	// fresh plan, so serial and parallel sweeps stay byte-identical).
	Chaos *fault.Spec
	// Limits caps every leaf run's resources (virtual time, events, task
	// heap). A run whose config sets its own Limits keeps them; otherwise
	// these apply. Hitting a cap is deterministic and fails the experiment
	// with a *sim.LimitError or *core.RunError.
	Limits core.Limits
	// ParSim sets every leaf run's intra-run simulation worker count
	// (core.Config.Parallel). Orthogonal to Jobs: Jobs runs whole sweep
	// points concurrently, ParSim parallelizes inside one simulation. Like
	// Jobs it never changes a simulated byte.
	ParSim int
	// FlightRing, when positive, arms the per-shard stall flight recorder
	// (core.Config.FlightRing) on every leaf run; a run that ends
	// abnormally — cancelled, capped by Limits, deadlocked — decorates its
	// error with the parked ranks so a failed sweep names the stuck
	// processes instead of just the limit it hit.
	FlightRing int

	// Lean turns on the memory-lean big-run mode (core.Config.Lean) for
	// every leaf run: per-rank telemetry and heartbeat detail aggregate
	// above the rank threshold, bounding resident state on generated
	// large-scale systems.
	Lean bool

	// gate, when non-nil, bounds concurrent simulations (see WithJobs).
	gate chan struct{}
	// regPool recycles per-shard telemetry registries across leaf runs
	// (core.Config.MetricsPool): a sweep's thousands of runs then reuse
	// warmed registries instead of allocating fresh ones. Shared by every
	// run launched from this options value; purely an allocation strategy,
	// never a simulated byte.
	regPool *telemetry.Pool
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, opt Options) error
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"table1", "Table 1: target heterogeneous accelerator systems", runTable1},
	{"fig2", "Figure 2: automatic task-device mapping", runFig2},
	{"fig5", "Figure 4/5: synchronization styles timeline", runFig5},
	{"fig6", "Figure 6: message fusion for intra-node communications", runFig6},
	{"fig7", "Figure 7: node heap aliasing", runFig7},
	{"fig8", "Figure 8: NUMA-friendly task-CPU pinning", runFig8},
	{"fig9", "Figure 9: point-to-point communication bandwidth", runFig9},
	{"fig10", "Figure 10: DGEMM speedup", runFig10},
	{"fig11", "Figure 11: DGEMM execution time breakdown (PSG)", runFig11},
	{"fig12", "Figure 12: EP speedup", runFig12},
	{"fig13", "Figure 13: Jacobi speedup", runFig13},
	{"fig14", "Figure 14: Jacobi DtoD communication breakdown (PSG)", runFig14},
	{"fig15", "Figure 15: LULESH performance scaling", runFig15},
	{"ablation", "Ablations: each IMPACC technique on/off", runAblation},
	{"ext-2d", "Extension: 1-D vs 2-D Jacobi partitioning over communicators", runExt2D},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// baseCfg builds a run configuration.
func baseCfg(opt Options, sys *topo.System, mode core.Mode, maxTasks int, backed bool) core.Config {
	return core.Config{
		System:    sys,
		Mode:      mode,
		MaxTasks:  maxTasks,
		Backed:    backed,
		Seed:      2016, // HPDC'16
		JitterPct: 1.0,
		Metrics:   opt.Metrics,
		Chaos:     opt.Chaos,
		Parallel:  opt.ParSim,
	}
}

// elapsedOf runs prog (through the worker pool, if any) and returns the
// virtual elapsed time.
func elapsedOf(opt Options, cfg core.Config, prog core.Program) (sim.Dur, *core.Report, error) {
	rep, err := runGated(opt, cfg, prog)
	if err != nil {
		return 0, nil, err
	}
	return rep.Elapsed, rep, nil
}

// gbs converts (bytes, duration) to GB/s.
func gbs(bytes int64, d sim.Dur) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}

// sizeLabel formats a transfer size like the paper's axes.
func sizeLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// runTable1 prints the Table 1 configurations from the topology presets.
func runTable1(w io.Writer, opt Options) error {
	systems := []*topo.System{topo.PSG(), topo.Beacon(32), topo.Titan(8192)}
	fmt.Fprintf(w, "%-22s %-14s %-16s %-14s\n", "System", "PSG", "Beacon", "Titan")
	row := func(name string, f func(s *topo.System) string) {
		fmt.Fprintf(w, "%-22s", name)
		for _, s := range systems {
			fmt.Fprintf(w, " %-15s", f(s))
		}
		fmt.Fprintln(w)
	}
	row("Nodes", func(s *topo.System) string { return fmt.Sprint(len(s.Nodes)) })
	row("CPU", func(s *topo.System) string { return s.Nodes[0].Sockets[0].Name })
	row("Sockets", func(s *topo.System) string { return fmt.Sprint(len(s.Nodes[0].Sockets)) })
	row("Accelerators/node", func(s *topo.System) string { return fmt.Sprint(len(s.Nodes[0].Devices)) })
	row("Accelerator", func(s *topo.System) string { return s.Nodes[0].Devices[0].Name })
	row("Acc memory (GB)", func(s *topo.System) string {
		return fmt.Sprint(s.Nodes[0].Devices[0].MemoryBytes >> 30)
	})
	row("PCIe GB/s", func(s *topo.System) string {
		return fmt.Sprintf("%.1f", s.Nodes[0].Devices[0].PCIe.GBs)
	})
	row("Interconnect", func(s *topo.System) string { return s.Nodes[0].NIC.Name })
	row("Net GB/s", func(s *topo.System) string { return fmt.Sprintf("%.1f", s.Nodes[0].NIC.Link.GBs) })
	row("THREAD_MULTIPLE", func(s *topo.System) string { return fmt.Sprint(s.ThreadMultiple) })
	return nil
}

// Fig2Result is the mapping for one device-type selection.
type Fig2Result struct {
	Mask  topo.ClassMask
	Tasks []core.Placement
}

// Fig2 computes the Figure 2 mappings on the heterogeneous demo cluster.
func Fig2() []Fig2Result {
	sys := topo.HeteroDemo()
	masks := []topo.ClassMask{
		0, // acc_device_default
		topo.MaskOf(topo.NVIDIAGPU),
		topo.MaskOf(topo.CPUAccel),
		topo.MaskOf(topo.XeonPhi),
		topo.MaskOf(topo.NVIDIAGPU, topo.XeonPhi),
	}
	var out []Fig2Result
	for _, m := range masks {
		out = append(out, Fig2Result{Mask: m, Tasks: core.BuildMapping(sys, m, 0)})
	}
	return out
}

func runFig2(w io.Writer, opt Options) error {
	sys := topo.HeteroDemo()
	for _, res := range Fig2() {
		fmt.Fprintf(w, "IMPACC_ACC_DEVICE_TYPE=%s -> %d tasks\n", res.Mask, len(res.Tasks))
		for rank, pl := range res.Tasks {
			dev := sys.Nodes[pl.Node].Devices[pl.Device]
			fmt.Fprintf(w, "  rank %2d -> node %d (%s) device %d (%s, %s)\n",
				rank, pl.Node, sys.Nodes[pl.Node].Name, pl.Device, dev.Name, dev.Class)
		}
	}
	return nil
}
