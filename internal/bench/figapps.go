package bench

import (
	"fmt"
	"io"

	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

// styleFor picks each runtime's best practical style: the IMPACC version
// uses the unified activity queue (Figure 4c); the MPI+OpenACC baseline
// uses non-blocking MPI with explicit synchronization (Figure 4b).
func styleFor(mode core.Mode) apps.Style {
	if mode == core.IMPACC {
		return apps.StyleUnified
	}
	return apps.StyleAsync
}

// SpeedupRow is one sample of a speedup figure: both runtimes normalized to
// the same baseline elapsed time.
type SpeedupRow struct {
	Panel  string
	Param  string // problem size / class
	Tasks  int
	IMPACC float64
	MPIX   float64
}

// timeApp runs prog in the given mode and returns the elapsed virtual time.
func timeApp(opt Options, sys func() *topo.System, mode core.Mode, tasks int, prog func(style apps.Style) core.Program) (sim.Dur, *core.Report, error) {
	cfg := baseCfg(opt, sys(), mode, tasks, false)
	return elapsedOf(opt, cfg, prog(styleFor(mode)))
}

// speedupSweep times both modes across task counts (concurrently, when the
// options carry a worker pool) and normalizes to the legacy run at
// baseTasks.
func speedupSweep(opt Options, panel, param string, sys func() *topo.System, taskCounts []int, baseTasks int,
	prog func(style apps.Style) core.Program) ([]SpeedupRow, error) {
	base, _, err := timeApp(opt, sys, core.Legacy, baseTasks, prog)
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", panel, err)
	}
	return parMap(opt, taskCounts, func(_ int, tc int) (SpeedupRow, error) {
		ti, _, err := timeApp(opt, sys, core.IMPACC, tc, prog)
		if err != nil {
			return SpeedupRow{}, fmt.Errorf("%s IMPACC %d: %w", panel, tc, err)
		}
		tl, _, err := timeApp(opt, sys, core.Legacy, tc, prog)
		if err != nil {
			return SpeedupRow{}, fmt.Errorf("%s MPI+X %d: %w", panel, tc, err)
		}
		return SpeedupRow{
			Panel: panel, Param: param, Tasks: tc,
			IMPACC: base.Seconds() / ti.Seconds(),
			MPIX:   base.Seconds() / tl.Seconds(),
		}, nil
	})
}

// sweepJob is one independent panel of a speedup figure.
type sweepJob func() ([]SpeedupRow, error)

// runSweeps executes panel jobs (concurrently under a worker pool) and
// concatenates their rows in panel order.
func runSweeps(opt Options, jobs []sweepJob) ([]SpeedupRow, error) {
	chunks, err := parMap(opt, jobs, func(_ int, job sweepJob) ([]SpeedupRow, error) { return job() })
	if err != nil {
		return nil, err
	}
	return flatten(chunks), nil
}

func printSpeedups(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintf(w, "%-16s %-10s %6s %10s %10s\n", "panel", "param", "tasks", "IMPACC", "MPI+X")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-10s %6d %10.2f %10.2f\n", r.Panel, r.Param, r.Tasks, r.IMPACC, r.MPIX)
	}
}

// ---- Figure 10: DGEMM -----------------------------------------------------

// Fig10 sweeps DGEMM strong scaling on the three systems.
func Fig10(opt Options) ([]SpeedupRow, error) {
	psgNs := []int{1024, 2048, 4096, 8192}
	psgTasks := []int{1, 2, 4, 8}
	beaconSys := func() *topo.System { return topo.Beacon(32) }
	beaconTasks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	beaconN := 8192
	titanSys := func() *topo.System { return topo.Titan(1024) }
	titanTasks := []int{128, 256, 512, 1024}
	titanN := 24576
	titanBase := 128
	if opt.Quick {
		psgNs = []int{256, 512}
		psgTasks = []int{1, 2, 4}
		beaconSys = func() *topo.System { return topo.Beacon(4) }
		beaconTasks = []int{1, 4, 16}
		beaconN = 512
		titanSys = func() *topo.System { return topo.Titan(8) }
		titanTasks = []int{2, 4, 8}
		titanN = 512
		titanBase = 2
	}
	var jobs []sweepJob
	for _, n := range psgNs {
		n := n
		jobs = append(jobs, func() ([]SpeedupRow, error) {
			return speedupSweep(opt, "PSG", fmt.Sprintf("%dx%d", n, n), topo.PSG, psgTasks, 1,
				func(s apps.Style) core.Program { return apps.DGEMM(apps.DGEMMConfig{N: n, Style: s}) })
		})
	}
	jobs = append(jobs, func() ([]SpeedupRow, error) {
		return speedupSweep(opt, "Beacon", fmt.Sprintf("%dx%d", beaconN, beaconN), beaconSys, beaconTasks, 1,
			func(s apps.Style) core.Program { return apps.DGEMM(apps.DGEMMConfig{N: beaconN, Style: s}) })
	})
	jobs = append(jobs, func() ([]SpeedupRow, error) {
		return speedupSweep(opt, "Titan", fmt.Sprintf("%dx%d", titanN, titanN), titanSys, titanTasks, titanBase,
			func(s apps.Style) core.Program { return apps.DGEMM(apps.DGEMMConfig{N: titanN, Style: s}) })
	})
	return runSweeps(opt, jobs)
}

func runFig10(w io.Writer, opt Options) error {
	rows, err := Fig10(opt)
	if err != nil {
		return err
	}
	printSpeedups(w, rows)
	return nil
}

// ---- Figure 11: DGEMM breakdown -------------------------------------------

// Fig11Row decomposes one DGEMM run, normalized to the legacy 1-task total
// for the same input.
type Fig11Row struct {
	N     int
	Tasks int
	Mode  core.Mode
	// Fractions of the baseline total.
	Kernel, Comm, Other float64
}

// Fig11 reproduces the PSG execution-time breakdown.
func Fig11(opt Options) ([]Fig11Row, error) {
	ns := []int{1024, 2048, 4096, 8192}
	taskCounts := []int{1, 2, 4, 8}
	if opt.Quick {
		ns = []int{256, 512}
		taskCounts = []int{1, 4}
	}
	type cell struct {
		tc   int
		mode core.Mode
	}
	chunks, err := parMap(opt, ns, func(_ int, n int) ([]Fig11Row, error) {
		prog := func(s apps.Style) core.Program { return apps.DGEMM(apps.DGEMMConfig{N: n, Style: s}) }
		base, _, err := timeApp(opt, topo.PSG, core.Legacy, 1, prog)
		if err != nil {
			return nil, err
		}
		var cells []cell
		for _, tc := range taskCounts {
			for _, mode := range []core.Mode{core.Legacy, core.IMPACC} {
				cells = append(cells, cell{tc, mode})
			}
		}
		return parMap(opt, cells, func(_ int, c cell) (Fig11Row, error) {
			elapsed, rep, err := timeApp(opt, topo.PSG, c.mode, c.tc, prog)
			if err != nil {
				return Fig11Row{}, err
			}
			var kernel, comm sim.Dur
			for _, tr := range rep.Tasks {
				kernel += tr.Dev.KernelTime
				comm += tr.Comm
			}
			kernel /= sim.Dur(len(rep.Tasks))
			comm /= sim.Dur(len(rep.Tasks))
			other := elapsed - kernel - comm
			if other < 0 {
				other = 0
			}
			return Fig11Row{
				N: n, Tasks: c.tc, Mode: c.mode,
				Kernel: kernel.Seconds() / base.Seconds(),
				Comm:   comm.Seconds() / base.Seconds(),
				Other:  other.Seconds() / base.Seconds(),
			}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return flatten(chunks), nil
}

func runFig11(w io.Writer, opt Options) error {
	rows, err := Fig11(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %6s %-12s %8s %8s %8s %8s\n", "N", "tasks", "mode", "kernel", "comm", "other", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %6d %-12s %8.3f %8.3f %8.3f %8.3f\n",
			r.N, r.Tasks, r.Mode, r.Kernel, r.Comm, r.Other, r.Kernel+r.Comm+r.Other)
	}
	return nil
}

// ---- Figure 12: EP ---------------------------------------------------------

// Fig12 sweeps EP strong scaling across classes and systems.
func Fig12(opt Options) ([]SpeedupRow, error) {
	psgClasses := []apps.EPClass{apps.EPClassA, apps.EPClassB, apps.EPClassC, apps.EPClassD, apps.EPClassE}
	psgTasks := []int{1, 2, 4, 8}
	beaconSys := func() *topo.System { return topo.Beacon(32) }
	beaconTasks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	beaconClass := apps.EPClassE
	titanSys := func() *topo.System { return topo.Titan(8192) }
	titanTasks := []int{128, 512, 2048, 8192}
	titanClass := apps.EPClassT
	titanBase := 128
	if opt.Quick {
		psgClasses = []apps.EPClass{apps.EPClassA, apps.EPClassB}
		psgTasks = []int{1, 4}
		beaconSys = func() *topo.System { return topo.Beacon(4) }
		beaconTasks = []int{1, 8}
		beaconClass = apps.EPClassB
		titanSys = func() *topo.System { return topo.Titan(8) }
		titanTasks = []int{2, 8}
		titanClass = apps.EPClassC
		titanBase = 2
	}
	epProg := func(class apps.EPClass) func(apps.Style) core.Program {
		return func(s apps.Style) core.Program {
			return apps.EP(apps.EPConfig{Class: class, Style: s})
		}
	}
	var jobs []sweepJob
	for _, class := range psgClasses {
		class := class
		jobs = append(jobs, func() ([]SpeedupRow, error) {
			return speedupSweep(opt, "PSG", "class "+class.Name, topo.PSG, psgTasks, 1, epProg(class))
		})
	}
	jobs = append(jobs, func() ([]SpeedupRow, error) {
		return speedupSweep(opt, "Beacon", "class "+beaconClass.Name, beaconSys, beaconTasks, 1, epProg(beaconClass))
	})
	jobs = append(jobs, func() ([]SpeedupRow, error) {
		return speedupSweep(opt, "Titan", "class "+titanClass.Name, titanSys, titanTasks, titanBase, epProg(titanClass))
	})
	return runSweeps(opt, jobs)
}

func runFig12(w io.Writer, opt Options) error {
	rows, err := Fig12(opt)
	if err != nil {
		return err
	}
	printSpeedups(w, rows)
	return nil
}

// ---- Figure 13: Jacobi -----------------------------------------------------

// Fig13 sweeps Jacobi strong scaling.
func Fig13(opt Options) ([]SpeedupRow, error) {
	iters := 100 // steady-state sweeps; setup transfers amortize away
	psgNs := []int{1024, 2048, 4096, 8192}
	psgTasks := []int{1, 2, 4, 8}
	beaconSys := func() *topo.System { return topo.Beacon(32) }
	beaconTasks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	beaconN := 8192
	titanSys := func() *topo.System { return topo.Titan(1024) }
	titanTasks := []int{128, 256, 512, 1024}
	titanN := 24576
	titanBase := 128
	if opt.Quick {
		iters = 4
		psgNs = []int{256}
		psgTasks = []int{1, 4}
		beaconSys = func() *topo.System { return topo.Beacon(4) }
		beaconTasks = []int{1, 8}
		beaconN = 512
		titanSys = func() *topo.System { return topo.Titan(8) }
		titanTasks = []int{2, 8}
		titanN = 512
		titanBase = 2
	}
	jProg := func(n int) func(apps.Style) core.Program {
		return func(s apps.Style) core.Program {
			return apps.Jacobi(apps.JacobiConfig{N: n, Iters: iters, Style: s})
		}
	}
	var jobs []sweepJob
	for _, n := range psgNs {
		n := n
		jobs = append(jobs, func() ([]SpeedupRow, error) {
			return speedupSweep(opt, "PSG", fmt.Sprintf("%dx%d", n, n), topo.PSG, psgTasks, 1, jProg(n))
		})
	}
	jobs = append(jobs, func() ([]SpeedupRow, error) {
		return speedupSweep(opt, "Beacon", fmt.Sprintf("%dx%d", beaconN, beaconN), beaconSys, beaconTasks, 1, jProg(beaconN))
	})
	jobs = append(jobs, func() ([]SpeedupRow, error) {
		return speedupSweep(opt, "Titan", fmt.Sprintf("%dx%d", titanN, titanN), titanSys, titanTasks, titanBase, jProg(titanN))
	})
	return runSweeps(opt, jobs)
}

func runFig13(w io.Writer, opt Options) error {
	rows, err := Fig13(opt)
	if err != nil {
		return err
	}
	printSpeedups(w, rows)
	return nil
}

// ---- Figure 14: Jacobi DtoD breakdown --------------------------------------

// Fig14Row decomposes halo-exchange copy time for one configuration.
type Fig14Row struct {
	N     int
	Tasks int
	// IMPACC: a single direct DtoD transfer.
	IMPACCDtoD sim.Dur
	// MPI+OpenACC: staging + transport components.
	MPIXDtoH, MPIXHtoH, MPIXHtoD sim.Dur
}

// Fig14 measures the device-to-device communication components on PSG.
func Fig14(opt Options) ([]Fig14Row, error) {
	ns := []int{1024, 2048, 4096, 8192}
	taskCounts := []int{2, 4, 8}
	iters := 10
	if opt.Quick {
		ns = []int{512}
		taskCounts = []int{2, 4}
		iters = 3
	}
	// Setup transfers (initial copyin, final copyout) are identical at any
	// iteration count, so the difference between a 2k- and a k-iteration
	// run isolates the per-exchange components — what Figure 14 plots.
	run := func(mode core.Mode, n, tc, it int) (device.Stats, error) {
		cfg := baseCfg(opt, topo.PSG(), mode, tc, false)
		_, rep, err := elapsedOf(opt, cfg, apps.Jacobi(apps.JacobiConfig{
			N: n, Iters: it, Style: styleFor(mode)}))
		if err != nil {
			return device.Stats{}, err
		}
		return rep.TotalDev(), nil
	}
	type cell struct{ tc, n int }
	var cells []cell
	for _, tc := range taskCounts {
		for _, n := range ns {
			cells = append(cells, cell{tc, n})
		}
	}
	return parMap(opt, cells, func(_ int, c cell) (Fig14Row, error) {
		row := Fig14Row{N: c.n, Tasks: c.tc}
		for _, mode := range []core.Mode{core.IMPACC, core.Legacy} {
			lo, err := run(mode, c.n, c.tc, iters)
			if err != nil {
				return Fig14Row{}, err
			}
			hi, err := run(mode, c.n, c.tc, 2*iters)
			if err != nil {
				return Fig14Row{}, err
			}
			if mode == core.IMPACC {
				row.IMPACCDtoD = hi.DtoDTime - lo.DtoDTime
			} else {
				row.MPIXDtoH = hi.DtoHTime - lo.DtoHTime
				row.MPIXHtoH = hi.HtoHTime - lo.HtoHTime
				row.MPIXHtoD = hi.HtoDTime - lo.HtoDTime
			}
		}
		return row, nil
	})
}

func runFig14(w io.Writer, opt Options) error {
	rows, err := Fig14(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %6s %14s %14s %14s %14s %14s\n",
		"N", "tasks", "IMPACC DtoD", "MPI+X DtoH", "MPI+X HtoH", "MPI+X HtoD", "MPI+X total")
	for _, r := range rows {
		total := r.MPIXDtoH + r.MPIXHtoH + r.MPIXHtoD
		fmt.Fprintf(w, "%-6d %6d %14v %14v %14v %14v %14v\n",
			r.N, r.Tasks, r.IMPACCDtoD, r.MPIXDtoH, r.MPIXHtoH, r.MPIXHtoD, total)
	}
	return nil
}

// ---- Figure 15: LULESH -----------------------------------------------------

// Fig15 runs the LULESH weak-scaling study: per-task problem size fixed,
// task counts are perfect cubes, results normalized to the legacy baseline.
func Fig15(opt Options) ([]SpeedupRow, error) {
	edge, steps := 45, 10
	psgTasks := []int{1, 8}
	beaconSys := func() *topo.System { return topo.Beacon(16) }
	beaconTasks := []int{1, 8, 27, 64}
	titanSys := func() *topo.System { return topo.Titan(8000) }
	titanTasks := []int{125, 1000, 3375, 8000}
	titanBase := 125
	if opt.Quick {
		edge, steps = 8, 2
		beaconSys = func() *topo.System { return topo.Beacon(2) }
		beaconTasks = []int{1, 8}
		titanSys = func() *topo.System { return topo.Titan(27) }
		titanTasks = []int{8, 27}
		titanBase = 8
	}
	// LULESH runs the same host-to-host source under both models; only
	// Sync style applies (the unmodified 2.0.2 code of §4.2).
	prog := func(apps.Style) core.Program {
		return apps.LULESH(apps.LULESHConfig{Edge: edge, Steps: steps})
	}
	jobs := []sweepJob{
		func() ([]SpeedupRow, error) {
			return speedupSweep(opt, "PSG", fmt.Sprintf("%d^3/task", edge), topo.PSG, psgTasks, 1, prog)
		},
		func() ([]SpeedupRow, error) {
			return speedupSweep(opt, "Beacon", fmt.Sprintf("%d^3/task", edge), beaconSys, beaconTasks, 1, prog)
		},
		func() ([]SpeedupRow, error) {
			return speedupSweep(opt, "Titan", fmt.Sprintf("%d^3/task", edge), titanSys, titanTasks, titanBase, prog)
		},
	}
	return runSweeps(opt, jobs)
}

func runFig15(w io.Writer, opt Options) error {
	rows, err := Fig15(opt)
	if err != nil {
		return err
	}
	printSpeedups(w, rows)
	return nil
}

// ---- Extension: 1-D vs 2-D Jacobi partitioning -----------------------------

// Ext2DRow compares halo traffic and elapsed time of the two partitionings.
type Ext2DRow struct {
	N, Tasks             int
	Elapsed1D, Elapsed2D sim.Dur
	Halo1D, Halo2D       int64 // DtoD bytes moved
}

// Ext2D runs the communicator-based 2-D Jacobi against the paper's 1-D
// version: per-task halo volume drops from O(2N) to O(2N/sqrt(P)).
func Ext2D(opt Options) ([]Ext2DRow, error) {
	n, iters := 4096, 20
	taskCounts := []int{4, 8}
	if opt.Quick {
		n, iters = 512, 4
	}
	return parMap(opt, taskCounts, func(_ int, tc int) (Ext2DRow, error) {
		cfg := baseCfg(opt, topo.PSG(), core.IMPACC, tc, false)
		e1, r1, err := elapsedOf(opt, cfg, apps.Jacobi(apps.JacobiConfig{N: n, Iters: iters, Style: apps.StyleUnified}))
		if err != nil {
			return Ext2DRow{}, err
		}
		e2, r2, err := elapsedOf(opt, cfg, apps.Jacobi2D(apps.Jacobi2DConfig{N: n, Iters: iters, Style: apps.StyleUnified}))
		if err != nil {
			return Ext2DRow{}, err
		}
		return Ext2DRow{
			N: n, Tasks: tc,
			Elapsed1D: e1, Elapsed2D: e2,
			Halo1D: r1.TotalDev().DtoDBytes, Halo2D: r2.TotalDev().DtoDBytes,
		}, nil
	})
}

func runExt2D(w io.Writer, opt Options) error {
	rows, err := Ext2D(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %6s %12s %12s %14s %14s\n", "N", "tasks", "1D elapsed", "2D elapsed", "1D halo bytes", "2D halo bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %6d %12v %12v %14d %14d\n",
			r.N, r.Tasks, r.Elapsed1D, r.Elapsed2D, r.Halo1D, r.Halo2D)
	}
	return nil
}
