package bench

import (
	"bytes"
	"testing"

	"impacc/internal/telemetry"
)

// BenchmarkFig9SweepQuick times the full quick-mode Figure 9 bandwidth
// sweep end to end: 27 sweep points, each running two simulations (IMPACC
// and legacy). It exercises the engine hot path, the keyed message
// matching, and the task runtime together, so it tracks whole-system
// regressions that the internal/sim microbenchmarks cannot see.
func BenchmarkFig9SweepQuick(b *testing.B) {
	opt := Options{Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig9(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SweepQuickParallel is the same sweep through an 8-wide
// worker pool: it measures the pool overhead on one core and the speedup
// on many.
func BenchmarkFig9SweepQuickParallel(b *testing.B) {
	opt := Options{Quick: true}.WithJobs(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig9(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// runAllQuick executes every experiment through RunMany and returns the
// concatenated canonical output plus the aggregate telemetry as JSON.
func runAllQuick(t *testing.T, jobs int) ([]byte, []byte) {
	t.Helper()
	opt := Options{Quick: true, Metrics: telemetry.NewRegistry()}.WithJobs(jobs)
	var out bytes.Buffer
	for _, r := range RunMany(All, opt) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Exp.ID, r.Err)
		}
		out.WriteString("==== " + r.Exp.ID + " ====\n")
		out.Write(r.Output)
	}
	var snap bytes.Buffer
	if err := opt.Metrics.Snapshot(0).WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), snap.Bytes()
}

// TestParallelRunDeterminism is the PR's core guarantee: running the whole
// suite through an 8-wide worker pool twice produces byte-identical output
// and byte-identical aggregate metrics, both equal to a strictly serial
// run. Simulated time must never depend on scheduling of the host threads.
func TestParallelRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite three times")
	}
	serialOut, serialSnap := runAllQuick(t, 1)
	for round := 0; round < 2; round++ {
		out, snap := runAllQuick(t, 8)
		if !bytes.Equal(out, serialOut) {
			t.Fatalf("round %d: -j 8 output differs from serial", round)
		}
		if !bytes.Equal(snap, serialSnap) {
			t.Fatalf("round %d: -j 8 metrics snapshot differs from serial", round)
		}
	}
}
