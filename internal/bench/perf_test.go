package bench

import (
	"bytes"
	"testing"

	"impacc/internal/fault"
	"impacc/internal/telemetry"
)

// BenchmarkFig9SweepQuick times the full quick-mode Figure 9 bandwidth
// sweep end to end: 27 sweep points, each running two simulations (IMPACC
// and legacy). It exercises the engine hot path, the keyed message
// matching, and the task runtime together, so it tracks whole-system
// regressions that the internal/sim microbenchmarks cannot see.
func BenchmarkFig9SweepQuick(b *testing.B) {
	opt := Options{Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig9(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SweepQuickParallel is the same sweep through an 8-wide
// worker pool: it measures the pool overhead on one core and the speedup
// on many.
func BenchmarkFig9SweepQuickParallel(b *testing.B) {
	opt := Options{Quick: true}.WithJobs(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig9(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig13ParSim times the quick Figure 13 Jacobi scaling study — whose
// sweep points run on multi-node systems, so every simulation is sharded —
// with a given intra-run worker count.
func benchFig13ParSim(b *testing.B, parSim int) {
	fig13, ok := ByID("fig13")
	if !ok {
		b.Fatal("fig13 not registered")
	}
	opt := Options{Quick: true, ParSim: parSim}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := fig13.Run(&buf, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13QuickParSim1 drives the sharded engines with one worker —
// the single-core no-regression reference for the PDES path.
func BenchmarkFig13QuickParSim1(b *testing.B) { benchFig13ParSim(b, 1) }

// BenchmarkFig13QuickParSim8 drives them with eight workers: wall-clock
// speedup on a multi-core host, coordination overhead on one core. The
// output bytes are identical either way.
func BenchmarkFig13QuickParSim8(b *testing.B) { benchFig13ParSim(b, 8) }

// runAllQuick executes every experiment through RunMany and returns the
// concatenated canonical output plus the aggregate telemetry as JSON.
func runAllQuick(t *testing.T, jobs int) ([]byte, []byte) {
	t.Helper()
	opt := Options{Quick: true, Metrics: telemetry.NewRegistry()}.WithJobs(jobs)
	var out bytes.Buffer
	for _, r := range RunMany(All, opt) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Exp.ID, r.Err)
		}
		out.WriteString("==== " + r.Exp.ID + " ====\n")
		out.Write(r.Output)
	}
	var snap bytes.Buffer
	if err := opt.Metrics.Snapshot(0).WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), snap.Bytes()
}

// TestParallelRunDeterminism is the PR's core guarantee: running the whole
// suite through an 8-wide worker pool twice produces byte-identical output
// and byte-identical aggregate metrics, both equal to a strictly serial
// run. Simulated time must never depend on scheduling of the host threads.
func TestParallelRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite three times")
	}
	serialOut, serialSnap := runAllQuick(t, 1)
	for round := 0; round < 2; round++ {
		out, snap := runAllQuick(t, 8)
		if !bytes.Equal(out, serialOut) {
			t.Fatalf("round %d: -j 8 output differs from serial", round)
		}
		if !bytes.Equal(snap, serialSnap) {
			t.Fatalf("round %d: -j 8 metrics snapshot differs from serial", round)
		}
	}
}

// TestChaosParallelDeterminism extends the determinism guarantee to fault
// injection: every run builds a fresh fault plan from the shared spec, so a
// chaotic sweep through an 8-wide pool is byte-identical to a serial one.
func TestChaosParallelDeterminism(t *testing.T) {
	spec, err := fault.ParseSpec("7:degrade=*:3,stall=0:0.4:150us,straggle=1:1.5,rdmaflap=0:2ms:400us")
	if err != nil {
		t.Fatal(err)
	}
	fig9, _ := ByID("fig9")
	run := func(jobs int) ([]byte, []byte) {
		opt := Options{Quick: true, Metrics: telemetry.NewRegistry(), Chaos: spec}.WithJobs(jobs)
		var out bytes.Buffer
		for _, r := range RunMany([]Experiment{fig9}, opt) {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Exp.ID, r.Err)
			}
			out.Write(r.Output)
		}
		var snap bytes.Buffer
		if err := opt.Metrics.Snapshot(0).WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), snap.Bytes()
	}
	serialOut, serialSnap := run(1)
	parOut, parSnap := run(8)
	if !bytes.Equal(serialOut, parOut) {
		t.Fatal("chaotic -j 8 output differs from serial")
	}
	if !bytes.Equal(serialSnap, parSnap) {
		t.Fatal("chaotic -j 8 metrics snapshot differs from serial")
	}
	if !bytes.Contains(serialSnap, []byte(fault.InjectedTotal)) {
		t.Fatalf("chaotic sweep recorded no %s events", fault.InjectedTotal)
	}
}

// TestRegistryPoolDeterminism is the registry-reuse guarantee: recycling
// per-node registries across RunMany leaves (instead of allocating fresh
// ones per run) is a pure allocation strategy, so a serial sweep, a -j 8
// pooled sweep, and a -par-sim 8 sharded sweep all produce byte-identical
// output and byte-identical aggregate metrics.
func TestRegistryPoolDeterminism(t *testing.T) {
	fig13, ok := ByID("fig13")
	if !ok {
		t.Fatal("fig13 not registered")
	}
	run := func(jobs, parSim int) ([]byte, []byte) {
		opt := Options{Quick: true, ParSim: parSim, Metrics: telemetry.NewRegistry()}.WithJobs(jobs)
		var out bytes.Buffer
		for _, r := range RunMany([]Experiment{fig13}, opt) {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Exp.ID, r.Err)
			}
			out.Write(r.Output)
		}
		var snap bytes.Buffer
		if err := opt.Metrics.Snapshot(0).WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), snap.Bytes()
	}
	serialOut, serialSnap := run(1, 1)
	for _, c := range []struct {
		name         string
		jobs, parSim int
	}{{"-j 8", 8, 1}, {"-par-sim 8", 1, 8}} {
		out, snap := run(c.jobs, c.parSim)
		if !bytes.Equal(out, serialOut) {
			t.Errorf("%s output differs from serial", c.name)
		}
		if !bytes.Equal(snap, serialSnap) {
			t.Errorf("%s metrics snapshot differs from serial", c.name)
		}
	}
}
