package a

import (
	"fmt"
	"sort"
)

// badAppend accumulates in map order and never sorts: the classic
// nondeterminism leak.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside map iteration`
	}
	return keys
}

// goodCollectSort is the sanctioned idiom: collect, then sort after the
// loop.
func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice covers the comparator form of the idiom.
func goodSortSlice(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// badPrint formats output straight from the iteration.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration`
	}
}

// goodSortedKeys ranges over a sorted slice, not the map.
func goodSortedKeys(m map[string]int) {
	for _, k := range goodCollectSort(m) {
		fmt.Println(k, m[k])
	}
}

// goodMapBuild: writing another map is order-insensitive.
func goodMapBuild(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// goodReduce: commutative accumulation does not depend on order.
func goodReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type sink struct{}

func (sink) Add(int64)                     {}
func (sink) Observe(int64)                 {}
func (sink) Write(p []byte) (int, error)   { return len(p), nil }
func (sink) Record(name string, v float64) {}

// sinks: commutative telemetry merges are exempt; stream/tracer writes are
// not.
func sinks(m map[string]int, s sink) {
	for _, v := range m {
		s.Add(int64(v))     // commutative: ok
		s.Observe(int64(v)) // commutative: ok
	}
	for _, v := range m {
		_, _ = s.Write([]byte{byte(v)}) // want `Write call inside map iteration`
	}
	for k, v := range m {
		s.Record(k, float64(v)) // want `Record call inside map iteration`
	}
}

// badSend publishes in map order.
func badSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

// nested: the inner map-range is audited on its own, not double-reported
// through the outer loop — exactly one diagnostic lands on the append.
func nested(m map[string]map[string]int) []string {
	var out []string
	for _, inner := range m {
		for k := range inner {
			out = append(out, k) // want `append inside map iteration`
		}
	}
	return out
}

// nestedSorted: the same shape is fine once the accumulated slice is
// sorted after the loops.
func nestedSorted(m map[string]map[string]int) []string {
	var out []string
	for _, inner := range m {
		for k := range inner {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// annotated is the reasoned escape hatch for a site where order provably
// cannot matter.
func annotated(m map[string]bool, ch chan string) {
	for k := range m {
		//impacc:allow-maporder consumer drains into a set; arrival order is immaterial
		ch <- k
	}
}
