package maporder_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, filepath.Join("testdata", "a"))
}
