// Package maporder flags `for range` loops over maps whose bodies have
// order-dependent effects.
//
// Go randomizes map iteration order per run; any map-range body that
// appends to a slice, writes formatted output, or records into a tracer
// sink threads that randomness straight into artifacts the project promises
// are byte-identical across runs (reports, golden traces, serial-vs-`-j 8`
// sweep output).
//
// Recognized escape routes, in order of preference:
//   - collect the keys, sort them, and range over the sorted slice;
//   - append into a slice that is demonstrably sorted later in the same
//     function (the collect-then-sort idiom is detected and allowed);
//   - feed only commutative sinks (telemetry Merge/Aggregate/Add/Inc/
//     Observe), which are order-insensitive by construction;
//   - annotate //impacc:allow-maporder <reason> for the rare site where
//     order provably cannot matter.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"impacc/internal/analysis"
)

// Analyzer implements the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body appends to slices, formats output, or " +
		"writes to order-sensitive sinks without sorting keys first",
	Run: run,
}

// orderSensitiveMethods are method names that serialize their arguments in
// call order: stream writers, printers, and the tracer/telemetry recording
// entry points.
var orderSensitiveMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Record": true, "record": true, "Span": true, "Edge": true,
	"msgEdge": true, "depEdge": true, "Emit": true, "Log": true,
}

// commutativeMethods never order-matter: value-merging telemetry
// operations. They are exempt even though some (Add, Observe) mutate
// shared state, because addition and histogram insertion commute.
var commutativeMethods = map[string]bool{
	"Merge": true, "Aggregate": true, "Add": true, "Inc": true, "Observe": true,
}

// fmtPrinters are fmt package-level functions that emit directly.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkFunc(pass, body)
			return true
		})
	}
	return nil
}

// checkFunc inspects one function body: it indexes which slice objects are
// sorted (and where), then audits every map-range inside.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorted := sortedObjects(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapType(pass.TypeOf(rng.X)) {
			return true
		}
		checkMapRange(pass, rng, sorted)
		return true
	})
}

// sortedObjects returns, for every slice variable passed to a sort call in
// body, the positions of those sort calls. sort.Strings(keys) after the
// collect loop legitimizes appending to keys inside it.
func sortedObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object][]token.Pos {
	out := map[types.Object][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pass.ImportedPkg(sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = append(out[obj], call.Pos())
				}
			}
		}
		return true
	})
	return out
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange audits the body of one map-range for order-dependent
// effects. It does not descend into nested map-ranges (each is audited on
// its own) but does follow every other statement, including closures.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.TypeOf(s.X)) {
				return false // audited independently
			}
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside map iteration publishes values in random map order; sort the keys first or annotate //impacc:allow-maporder <reason>")
		case *ast.AssignStmt:
			checkAppend(pass, rng, s, sorted)
		case *ast.CallExpr:
			checkCall(pass, s)
		}
		return true
	})
}

// checkAppend flags `x = append(x, ...)` in a map-range unless x is sorted
// later in the enclosing function (after the loop ends).
func checkAppend(pass *analysis.Pass, rng *ast.RangeStmt, s *ast.AssignStmt, sorted map[types.Object][]token.Pos) {
	for i, rhs := range s.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			continue
		}
		if obj := pass.Info.Uses[fn]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				continue // shadowed append
			}
		}
		if i < len(s.Lhs) {
			if id, ok := s.Lhs[i].(*ast.Ident); ok {
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				if obj != nil && sortedAfter(sorted[obj], rng.End()) {
					continue // collect-then-sort idiom
				}
			}
		}
		pass.Reportf(s.Pos(),
			"append inside map iteration accumulates in random map order; sort the keys first, sort the slice after the loop, or annotate //impacc:allow-maporder <reason>")
	}
}

func sortedAfter(positions []token.Pos, end token.Pos) bool {
	for _, p := range positions {
		if p > end {
			return true
		}
	}
	return false
}

// checkCall flags order-sensitive output and sink calls in a map-range
// body: fmt printers and stream/tracer write methods. Commutative
// telemetry merges are exempt.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if pkg := pass.ImportedPkg(sel.X); pkg != "" {
		if pkg == "fmt" && fmtPrinters[name] {
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration emits output in random map order; sort the keys first or annotate //impacc:allow-maporder <reason>", name)
		}
		return
	}
	if commutativeMethods[name] {
		return
	}
	if orderSensitiveMethods[name] {
		pass.Reportf(call.Pos(),
			"%s call inside map iteration feeds an order-sensitive sink in random map order; sort the keys first or annotate //impacc:allow-maporder <reason>", name)
	}
}
