package a

import (
	"impacc/internal/sim"
	"impacc/internal/topo"
)

// direct schedules straight onto a looked-up foreign engine.
func direct(f *topo.Fabric, dst int) {
	f.Engine(dst).Spawn("x", func(p *sim.Proc) {}) // want `Spawn on another shard's engine`
}

// viaAssign tracks the lookup through a local variable.
func viaAssign(f *topo.Fabric, dst int) {
	e := f.Engine(dst)
	e.At(10, func() {}) // want `At on another shard's engine`
}

// viaIndex: indexing the shard slice is a cross-shard lookup too.
func viaIndex(shards []*sim.Engine) {
	shards[1].After(5, func() {}) // want `After on another shard's engine`
}

// viaRange: iterating the shard list visits engines the iterating
// goroutine does not own.
func viaRange(shards []*sim.Engine) {
	for _, e := range shards {
		e.Halt() // want `Halt on another shard's engine`
	}
}

// foreignPost: posting on a foreign engine's behalf is wrong as well — the
// outbox being appended to belongs to the shard that runs the code.
func foreignPost(f *topo.Fabric, local *sim.Engine, dst int) {
	f.Engine(dst).Post(local, 10, func() {}) // want `Post on another shard's engine`
}

// postOK is the sanctioned cross-shard channel: Post on the local engine,
// and inside the posted callback the destination engine is the executing
// (local) one, so scheduling on it there is legal — the shape of the
// internode delivery path.
func postOK(local *sim.Engine, f *topo.Fabric, dst int) {
	dstEng := f.Engine(dst)
	local.Post(dstEng, 20, func() {
		dstEng.At(25, func() {})
	})
}

// reassigned: overwriting the variable with a local engine clears the mark.
func reassigned(f *topo.Fabric, local *sim.Engine, dst int) {
	e := f.Engine(dst)
	e = local
	e.At(30, func() {})
}

// schedule and forward are helpers that (transitively) schedule onto their
// engine parameter; handing them a foreign engine is flagged at the call.
func schedule(e *sim.Engine, at sim.Time) { e.At(at, func() {}) }

func forward(e *sim.Engine, at sim.Time) { schedule(e, at) }

func viaHelper(f *topo.Fabric, dst int) {
	schedule(f.Engine(dst), 30) // want `passes another shard's engine to schedule`
	forward(f.Engine(dst), 40)  // want `passes another shard's engine to forward`
}

// storeOnly takes an engine but never schedules on it; passing a foreign
// engine for bookkeeping is fine.
type holder struct{ e *sim.Engine }

func storeOnly(e *sim.Engine) *holder { return &holder{e: e} }

func viaStoreOnly(f *topo.Fabric, dst int) *holder {
	return storeOnly(f.Engine(dst))
}

// readsOK: reading a foreign engine's clock does not mutate its timeline.
func readsOK(f *topo.Fabric, shards []*sim.Engine, dst int) sim.Time {
	return f.Engine(dst).Now() + shards[0].Now()
}

// localOK: engines not obtained through a cross-shard lookup stay usable.
func localOK(local *sim.Engine) {
	local.At(50, func() {})
	local.Spawn("y", func(p *sim.Proc) {})
}

// annotated is the reasoned escape hatch for setup-time population of
// quiescent engines.
func annotated(f *topo.Fabric, dst int) {
	//impacc:allow-sharddiscipline setup-time spawn onto a quiescent engine before the group starts
	f.Engine(dst).Spawn("task", func(p *sim.Proc) {})
}
