package sharddiscipline_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/sharddiscipline"
)

func TestSharddiscipline(t *testing.T) {
	analysistest.Run(t, sharddiscipline.Analyzer, filepath.Join("testdata", "a"))
}
