// Package sharddiscipline enforces the parallel-simulation ownership rule:
// outside internal/sim itself, code must not schedule work onto (or mutate)
// another shard's engine directly. Every sim.Engine obtained through a
// cross-shard lookup — Fabric.Engine(node), or indexing a []*sim.Engine —
// belongs to a different logical process, and touching its heap from the
// wrong goroutine races with that shard's worker and, worse, silently breaks
// the (at, depth, lp, seq) stamp discipline that makes parallel runs
// byte-identical to serial ones. The one sanctioned channel is
// Engine.Post(dst, at, fn) on the *local* engine: the event rides the outbox
// and is injected at a window barrier, with the sender's stamp.
//
// Two refinements keep the pass precise:
//
//   - Inside the callback literal passed to Post, the destination engine IS
//     the local engine (the literal executes on it), so dstEng.At(...) within
//     the posted closure is legal — exactly the shape of msg's internode
//     delivery path.
//   - Passing a looked-up engine to a helper is flagged when the helper (or
//     anything it forwards the parameter to) schedules onto that parameter —
//     an interprocedural fact computed from the shared call-graph summaries.
//
// Setup-time code that populates quiescent engines before the group starts
// (e.g. task admission in core.Runtime.Execute) annotates with
// //impacc:allow-sharddiscipline <reason>.
package sharddiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"impacc/internal/analysis"
)

// Analyzer implements the sharddiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharddiscipline",
	Doc: "forbid scheduling onto (or mutating) another shard's sim.Engine except " +
		"through Engine.Post and the outbox exchange; cross-shard lookups are " +
		"tracked through assignments and helper parameters",
	Run: run,
}

// schedMethods are the Engine methods that mutate engine state and may only
// run on the owning shard. Now/LP/StallReport and friends are reads and
// stay legal; Cancel is excluded because it only flips an atomic flag and is
// documented as callable from any goroutine.
var schedMethods = map[string]bool{
	"At": true, "After": true, "Spawn": true, "SpawnAt": true,
	"Halt": true, "Post": true, "ArmFlight": true, "AdoptMetrics": true,
}

// exempt returns whether a package implements the engine/exchange machinery
// itself and is outside the rule.
func exempt(path string) bool {
	return strings.HasSuffix(path, "internal/sim")
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || exempt(pass.Pkg.Path()) {
		return nil
	}
	var sched map[*types.Func]map[int]bool
	if pass.Facts != nil {
		sched = schedParams(pass.Facts)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v := &visitor{
				pass:   pass,
				sched:  sched,
				remote: map[types.Object]bool{},
				local:  map[types.Object]int{},
			}
			v.walk(fd.Body)
		}
	}
	return nil
}

// visitor walks one function body tracking which identifiers hold
// cross-shard engines and which are relocalized inside a Post callback.
type visitor struct {
	pass  *analysis.Pass
	sched map[*types.Func]map[int]bool
	// remote marks objects assigned from a cross-shard engine lookup.
	remote map[types.Object]bool
	// local counts nested Post-callback scopes in which an object is the
	// posted-to engine (and therefore local).
	local map[types.Object]int
}

func (v *visitor) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			v.assign(n)
		case *ast.RangeStmt:
			v.rangeStmt(n)
		case *ast.CallExpr:
			if v.call(n) {
				return false // children already walked with adjusted scope
			}
		}
		return true
	})
}

// assign tracks ident := <remote engine lookup> (and clears the mark on
// reassignment from a non-remote value).
func (v *visitor) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := v.pass.Info.Defs[id]
		if obj == nil {
			obj = v.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if v.isRemote(n.Rhs[i]) {
			v.remote[obj] = true
		} else if v.remote[obj] {
			delete(v.remote, obj)
		}
	}
}

// rangeStmt marks the value variable of `for _, e := range <[]*sim.Engine>`
// as remote: iterating the shard list visits engines the iterating
// goroutine does not own.
func (v *visitor) rangeStmt(n *ast.RangeStmt) {
	t := v.pass.TypeOf(n.X)
	if t == nil {
		return
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	}
	if elem == nil || !isEnginePtr(elem) {
		return
	}
	if id, ok := n.Value.(*ast.Ident); ok {
		if obj := v.pass.Info.Defs[id]; obj != nil {
			v.remote[obj] = true
		}
	}
}

// call checks one call expression; it returns true when it has walked the
// call's children itself (the Post-relocalization case).
func (v *visitor) call(call *ast.CallExpr) bool {
	v.checkArgs(call)
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !isEnginePtr(v.pass.TypeOf(sel.X)) || !schedMethods[sel.Sel.Name] {
		return false
	}
	if v.isRemote(sel.X) {
		v.pass.Reportf(sel.Pos(),
			"%s on another shard's engine from outside it; cross-shard work must go through Engine.Post on the local engine (outbox exchange), or annotate //impacc:allow-sharddiscipline <reason>",
			sel.Sel.Name)
	}
	// Inside the callback posted to dst, dst is the executing (local)
	// engine: walk the literal with the destination relocalized.
	if sel.Sel.Name == "Post" && len(call.Args) == 3 {
		lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
		if !ok {
			return false
		}
		var dst types.Object
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			dst = v.pass.Info.Uses[id]
		}
		v.walk(sel.X)
		v.walk(call.Args[0])
		v.walk(call.Args[1])
		if dst != nil {
			v.local[dst]++
			v.walk(lit.Body)
			v.local[dst]--
		} else {
			v.walk(lit.Body)
		}
		return true
	}
	return false
}

// checkArgs flags passing a cross-shard engine to a helper that schedules
// onto the corresponding parameter (directly or transitively).
func (v *visitor) checkArgs(call *ast.CallExpr) {
	if v.sched == nil {
		return
	}
	callee := analysis.Callee(v.pass.Info, call)
	if callee == nil || callee.Pkg() == nil || exempt(callee.Pkg().Path()) {
		return
	}
	params := v.sched[callee]
	if len(params) == 0 {
		return
	}
	for i, arg := range call.Args {
		if !params[i] || !v.isRemote(arg) {
			continue
		}
		v.pass.Reportf(arg.Pos(),
			"passes another shard's engine to %s, which schedules onto it; route the work through Engine.Post on the local engine, or annotate //impacc:allow-sharddiscipline <reason>",
			callee.Name())
	}
}

// isRemote reports whether expr evaluates to a cross-shard engine: a direct
// lookup, or an identifier previously assigned one (and not relocalized by
// an enclosing Post callback).
func (v *visitor) isRemote(expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if v.isLookup(e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := v.pass.Info.Uses[id]
	return obj != nil && v.remote[obj] && v.local[obj] == 0
}

// isLookup matches the cross-shard engine lookup shapes: a call to a
// method/function named Engine taking at least one argument and returning
// *sim.Engine (topo.Fabric.Engine(node)), or indexing into a slice/array of
// *sim.Engine.
func (v *visitor) isLookup(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if !isEnginePtr(v.pass.TypeOf(e)) || len(e.Args) < 1 {
			return false
		}
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Engine"
		case *ast.Ident:
			return fun.Name == "Engine"
		}
	case *ast.IndexExpr:
		t := v.pass.TypeOf(e.X)
		if t == nil {
			return false
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			return isEnginePtr(u.Elem())
		case *types.Array:
			return isEnginePtr(u.Elem())
		}
	}
	return false
}

// isEnginePtr matches *sim.Engine.
func isEnginePtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := types.Unalias(t).Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named := analysis.NamedOf(ptr.Elem())
	if named == nil || named.Obj().Name() != "Engine" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/sim")
}

// schedParams computes, over the whole program, which *sim.Engine parameters
// of which functions receive scheduling calls — directly, or by being
// forwarded to another function's scheduling parameter. Functions inside
// exempt packages are skipped (sim.Engine.Post legitimately takes a foreign
// engine).
func schedParams(facts *analysis.Facts) map[*types.Func]map[int]bool {
	out := map[*types.Func]map[int]bool{}
	paramIdx := map[*types.Func]map[types.Object]int{}
	for _, s := range facts.Sorted() {
		if s.Func.Pkg() != nil && exempt(s.Func.Pkg().Path()) {
			continue
		}
		idx := map[types.Object]int{}
		i := 0
		if s.Decl.Type.Params != nil {
			for _, field := range s.Decl.Type.Params.List {
				for _, name := range field.Names {
					if obj := s.Pkg.Info.Defs[name]; obj != nil && isEnginePtr(obj.Type()) {
						idx[obj] = i
					}
					i++
				}
				if len(field.Names) == 0 {
					i++
				}
			}
		}
		if len(idx) == 0 {
			continue
		}
		paramIdx[s.Func] = idx
		for _, c := range s.Calls {
			if c.Recv == nil || !schedMethods[c.Callee.Name()] {
				continue
			}
			sig, ok := c.Callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isEnginePtr(sig.Recv().Type()) {
				continue
			}
			if pi, ok := idx[c.Recv]; ok {
				if out[s.Func] == nil {
					out[s.Func] = map[int]bool{}
				}
				out[s.Func][pi] = true
			}
		}
	}
	// Transitive: a parameter forwarded into a scheduling parameter
	// schedules too.
	for changed := true; changed; {
		changed = false
		for _, s := range facts.Sorted() {
			idx := paramIdx[s.Func]
			if len(idx) == 0 {
				continue
			}
			for _, c := range s.Calls {
				target := out[c.Callee]
				if len(target) == 0 {
					continue
				}
				for ai, argObj := range c.Args {
					if argObj == nil || !target[ai] {
						continue
					}
					pi, ok := idx[argObj]
					if !ok || (out[s.Func] != nil && out[s.Func][pi]) {
						continue
					}
					if out[s.Func] == nil {
						out[s.Func] = map[int]bool{}
					}
					out[s.Func][pi] = true
					changed = true
				}
			}
		}
	}
	return out
}
