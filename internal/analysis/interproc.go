package analysis

// Interprocedural fact store: one summary per declared function across every
// analyzed package, linked into a call graph, so passes can see through
// helper functions instead of matching single expressions. The summaries are
// deliberately syntactic-plus-types (no SSA): each records what the function
// does directly — which functions it calls, which struct fields it reads and
// writes, which package-level variables it uses, which fields it hands to
// sync/atomic — and Reach closes those direct facts transitively over the
// call graph. Function literals are attributed to their enclosing declared
// function, which is conservative in exactly the direction the determinism
// passes want: constructing a closure over a forbidden site taints the
// constructor.
//
// All analyzed packages share one go/token.FileSet and one importer (see
// load.go), so *types.Func objects are identical across packages and the
// store is genuinely whole-program for any `impacc/...` run.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
)

// ShortPos renders a position as base-filename:line — compact origin
// references inside diagnostic messages, stable across checkouts.
func ShortPos(pos token.Position) string {
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}

// Origin names the concrete site that makes a transitive fact true: the
// function that contains it, its resolved position, and a human-readable
// description ("time.Now", "write to sim.Engine.Metrics").
type Origin struct {
	Func *types.Func
	Pos  token.Position
	What string
}

// CallSite is one statically resolved call. Recv is the object named by the
// receiver expression when the call is a method call on a plain identifier
// (e.g. the `e` of e.At(...)); Args holds, per argument, the object named by
// the argument when it is a plain identifier. Both are nil otherwise and
// exist so passes can follow values through parameters.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
	Recv   types.Object
	Args   []types.Object
}

// FieldWrite is one assignment (or ++/--) through a field selector. Owner is
// the named type of the selector base (pointers dereferenced), nil when the
// base is an anonymous struct.
type FieldWrite struct {
	Owner *types.Named
	Field *types.Var
	Pos   token.Pos
}

// FieldUse is any selector expression resolving to a struct field.
type FieldUse struct {
	Field *types.Var
	Pos   token.Pos
}

// VarUse is a use of a package-level variable (any package, including
// dependencies — e.g. crypto/rand.Reader).
type VarUse struct {
	Var *types.Var
	Pos token.Pos
}

// AtomicUse records one field whose address was passed to a function-style
// sync/atomic operation (atomic.AddInt64(&s.f, ...)). Typed atomics
// (atomic.Int64 and friends) are not recorded: their every access is atomic
// by construction.
type AtomicUse struct {
	Op  string
	Pos token.Position
}

// FuncBind records a function value bound to a struct field, either by
// assignment (x.OnBeat = f) or in a composite literal (Progress{Emit: f}).
// Exactly one of Fn (a resolved function or method value) and Lit (an inline
// literal) is non-nil; binds whose right-hand side is neither (e.g. a
// constructor call returning a closure) are not recorded.
type FuncBind struct {
	Owner string // "pkgpath.TypeName" of the field's owner, "" if unknown
	Field string
	Fn    *types.Func
	Lit   *ast.FuncLit
	Pkg   *Package
	Pos   token.Pos
}

// FuncSummary is the per-function fact record.
type FuncSummary struct {
	Func *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	Calls       []CallSite
	FieldWrites []FieldWrite
	FieldUses   []FieldUse
	VarUses     []VarUse
}

// Facts is the program-wide fact store built once per Run invocation.
type Facts struct {
	// Funcs maps every declared function and method with a body in the
	// analyzed packages to its summary.
	Funcs map[*types.Func]*FuncSummary
	// Atomics maps struct fields to their function-style sync/atomic access
	// sites anywhere in the program.
	Atomics map[*types.Var][]AtomicUse
	// Binds lists every function value bound to a struct field (callback
	// wiring sites such as OnBeat/OnWindow/Emit assignments).
	Binds []FuncBind

	allows *allowIndex
	sorted []*FuncSummary
	reach  map[string]map[*types.Func]Origin
	impls  map[string]map[*types.Func]token.Position
}

// Allowed reports whether an //impacc:allow-<name> annotation (with a
// reason) covers pos, marking it used. Passes consult this before treating a
// site as a taint source, so an annotated origin sanctions its transitive
// callers too.
func (f *Facts) Allowed(name string, pos token.Position) bool {
	if f.allows == nil {
		return false
	}
	return f.allows.covers(name, pos)
}

// Summary returns fn's summary, or nil for functions without analyzed
// bodies (dependencies, interface methods).
func (f *Facts) Summary(fn *types.Func) *FuncSummary {
	return f.Funcs[fn]
}

// Sorted returns every summary in stable (file, line) order.
func (f *Facts) Sorted() []*FuncSummary {
	return f.sorted
}

// Reach computes which functions can transitively reach a source site, with
// the origin propagated unchanged so diagnostics can name the underlying
// site. source examines one summary's direct facts. Results are memoized
// under key (one closure per analyzer), so N packages' passes share one
// fixed point.
func (f *Facts) Reach(key string, source func(*FuncSummary) (Origin, bool)) map[*types.Func]Origin {
	if r, ok := f.reach[key]; ok {
		return r
	}
	r := map[*types.Func]Origin{}
	for _, s := range f.sorted {
		if o, ok := source(s); ok {
			r[s.Func] = o
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range f.sorted {
			if _, done := r[s.Func]; done {
				continue
			}
			for _, c := range s.Calls {
				if o, ok := r[c.Callee]; ok {
					r[s.Func] = o
					changed = true
					break
				}
			}
		}
	}
	f.reach[key] = r
	return r
}

// Implementations returns the concrete methods of every analyzed named type
// that implements an interface called ifaceName (matched by name across all
// analyzed packages), keyed by method with the implementing type's position
// as value. Used to find e.g. every SpanSink implementation in the program.
func (f *Facts) Implementations(ifaceName string) map[*types.Func]token.Position {
	if m, ok := f.impls[ifaceName]; ok {
		return m
	}
	out := map[*types.Func]token.Position{}
	var ifaces []*types.Interface
	var pkgs []*Package
	seen := map[*Package]bool{}
	for _, s := range f.sorted {
		if !seen[s.Pkg] {
			seen[s.Pkg] = true
			pkgs = append(pkgs, s.Pkg)
		}
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		if obj, ok := pkg.Types.Scope().Lookup(ifaceName).(*types.TypeName); ok {
			if it, ok := obj.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, it)
			}
		}
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			for _, it := range ifaces {
				if !types.Implements(named, it) && !types.Implements(ptr, it) {
					continue
				}
				for i := 0; i < it.NumMethods(); i++ {
					obj, _, _ := types.LookupFieldOrMethod(ptr, true, pkg.Types, it.Method(i).Name())
					if m, ok := obj.(*types.Func); ok {
						out[m] = pkg.Fset.Position(tn.Pos())
					}
				}
			}
		}
	}
	f.impls[ifaceName] = out
	return out
}

// buildFacts walks every target package once and assembles the store.
func buildFacts(pkgs []*Package, allows *allowIndex) *Facts {
	f := &Facts{
		Funcs:   map[*types.Func]*FuncSummary{},
		Atomics: map[*types.Var][]AtomicUse{},
		allows:  allows,
		reach:   map[string]map[*types.Func]Origin{},
		impls:   map[string]map[*types.Func]token.Position{},
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				s := &FuncSummary{Func: obj, Pkg: pkg, Decl: fd}
				f.Funcs[obj] = s
				f.walkBody(pkg, s, fd.Body)
			}
			f.collectBinds(pkg, file)
		}
	}
	f.sorted = make([]*FuncSummary, 0, len(f.Funcs))
	for _, s := range f.Funcs {
		f.sorted = append(f.sorted, s) //impacc:allow-maporder slice is fully sorted by (file, line) immediately below
	}
	sort.Slice(f.sorted, func(i, j int) bool {
		a := f.sorted[i].Pkg.Fset.Position(f.sorted[i].Func.Pos())
		b := f.sorted[j].Pkg.Fset.Position(f.sorted[j].Func.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return f
}

// walkBody records one function body's direct facts.
func (f *Facts) walkBody(pkg *Package, s *FuncSummary, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := Callee(pkg.Info, n)
			if callee == nil {
				return true
			}
			cs := CallSite{Callee: callee, Pos: n.Pos()}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					cs.Recv = pkg.Info.Uses[id]
				}
			}
			cs.Args = make([]types.Object, len(n.Args))
			for i, a := range n.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok {
					cs.Args[i] = pkg.Info.Uses[id]
				}
			}
			s.Calls = append(s.Calls, cs)
			f.noteAtomic(pkg, callee, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				f.noteFieldWrite(pkg, s, lhs)
			}
		case *ast.IncDecStmt:
			f.noteFieldWrite(pkg, s, n.X)
		case *ast.SelectorExpr:
			if obj, ok := pkg.Info.Uses[n.Sel].(*types.Var); ok {
				switch {
				case obj.IsField():
					s.FieldUses = append(s.FieldUses, FieldUse{Field: obj, Pos: n.Sel.Pos()})
				case obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope():
					s.VarUses = append(s.VarUses, VarUse{Var: obj, Pos: n.Sel.Pos()})
				}
			}
		}
		return true
	})
}

// noteFieldWrite records lhs when it is a field selector.
func (f *Facts) noteFieldWrite(pkg *Package, s *FuncSummary, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return
	}
	s.FieldWrites = append(s.FieldWrites, FieldWrite{
		Owner: NamedOf(pkg.Info.TypeOf(sel.X)),
		Field: obj,
		Pos:   sel.Sel.Pos(),
	})
}

// noteAtomic records fields whose address flows into a function-style
// sync/atomic call.
func (f *Facts) noteAtomic(pkg *Package, callee *types.Func, call *ast.CallExpr) {
	if callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods of the typed atomics: inherently consistent
	}
	for _, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
			f.Atomics[obj] = append(f.Atomics[obj], AtomicUse{
				Op:  callee.Name(),
				Pos: pkg.Fset.Position(u.Pos()),
			})
		}
	}
}

// collectBinds records function values bound to struct fields anywhere in
// the file, including inside bodies and package-level declarations.
func (f *Facts) collectBinds(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !obj.IsField() || !isFuncType(obj.Type()) {
					continue
				}
				f.bind(pkg, typeFullName(NamedOf(pkg.Info.TypeOf(sel.X))), sel.Sel.Name, n.Rhs[i])
			}
		case *ast.CompositeLit:
			named := NamedOf(pkg.Info.TypeOf(n))
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Uses[key].(*types.Var)
				if !ok || !obj.IsField() || !isFuncType(obj.Type()) {
					continue
				}
				f.bind(pkg, typeFullName(named), key.Name, kv.Value)
			}
		}
		return true
	})
}

func (f *Facts) bind(pkg *Package, owner, field string, rhs ast.Expr) {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.FuncLit:
		f.Binds = append(f.Binds, FuncBind{Owner: owner, Field: field, Lit: rhs, Pkg: pkg, Pos: rhs.Pos()})
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[rhs].(*types.Func); ok {
			f.Binds = append(f.Binds, FuncBind{Owner: owner, Field: field, Fn: fn, Pkg: pkg, Pos: rhs.Pos()})
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[rhs.Sel].(*types.Func); ok {
			f.Binds = append(f.Binds, FuncBind{Owner: owner, Field: field, Fn: fn, Pkg: pkg, Pos: rhs.Pos()})
		}
	}
}

func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// Callee statically resolves a call expression to the called function or
// method, handling plain calls, method calls, and generic instantiations.
// Conversions and calls of function-typed values return nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// Origin folds generic instantiations back onto the declared
			// function, so call-graph edges land on the summaries (which are
			// keyed by Defs objects).
			return fn.Origin()
		}
	}
	return nil
}

// NamedOf unwraps t to its named type, dereferencing one level of pointer
// and resolving aliases; nil when t has no name.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// typeFullName renders "pkgpath.TypeName" for matching by suffix.
func typeFullName(named *types.Named) string {
	if named == nil {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
