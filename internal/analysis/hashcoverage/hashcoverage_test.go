package hashcoverage_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/hashcoverage"
)

func TestHashcoverage(t *testing.T) {
	analysistest.Run(t, hashcoverage.Analyzer, filepath.Join("testdata", "a"))
}
