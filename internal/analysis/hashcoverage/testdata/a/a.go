package a

import "fmt"

// Config mirrors core.Config's contract: CanonicalString is the content
// address, so every exported field must be encoded or deliberately
// excluded. Debug below is the synthetic unhashed field the analyzer must
// catch.
type Config struct {
	Seed int
	Name string
	// Debug is neither encoded nor excluded: the demonstrable cache-key
	// poisoning case.
	Debug bool // want `exported field Config\.Debug is not covered by the canonical encoding`
	//impacc:hash-exclude progress observer only; never changes simulated bytes
	TraceDest string
	// Stale is encoded (below) AND annotated — the annotation lies.
	//impacc:hash-exclude pretend observer
	Stale int // want `hash-exclude on Config\.Stale is stale`
	Bare  int /*impacc:hash-exclude*/ // want `impacc:hash-exclude on Config\.Bare needs a reason`
	// unexported fields are internal plumbing, not cache-key surface.
	resolved bool
}

// CanonicalString encodes Seed directly, Name through a helper method, and
// Stale directly — exercising the interprocedural coverage.
func (c *Config) CanonicalString() string {
	_ = c.resolved
	return fmt.Sprintf("seed=%d name=%s stale=%d", c.Seed, c.displayName(), c.Stale)
}

func (c *Config) displayName() string { return c.Name }

// Plain structs without a CanonicalString method have no cache-key
// contract; nothing here is checked.
type Scratch struct {
	Anything int
	Whatever string
}

func (s *Scratch) String() string { return fmt.Sprint(s.Anything) }
