// Package hashcoverage keeps the content-addressed cache honest: every
// exported field of a struct that defines a CanonicalString method (the
// canonical-encoding convention of core.Config's "impacc-cfg-v1" scheme)
// must either be referenced by that encoding — directly or through helper
// methods like Config.features() — or carry an explicit
//
//	//impacc:hash-exclude <reason>
//
// annotation on its line or the line above. A field that is neither encoded
// nor deliberately excluded silently poisons the cache: two configs that
// differ in it would share one content address, and impacc-serve would
// return the wrong cached result. The reverse rot is flagged too: a
// hash-exclude annotation on a field the encoder does reference is stale
// and must be removed.
//
// Coverage is computed interprocedurally over the shared fact store: the
// referenced-field set is the union of field selector uses in
// CanonicalString and every function transitively reachable from it.
package hashcoverage

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"impacc/internal/analysis"
)

// Analyzer implements the hashcoverage pass.
var Analyzer = &analysis.Analyzer{
	Name: "hashcoverage",
	Doc: "every exported field of a struct with a CanonicalString method must be " +
		"encoded by it (transitively) or carry //impacc:hash-exclude <reason>; " +
		"unhashed fields poison the content-addressed result cache",
	Run: run,
}

// excludeRe matches the hash-exclude annotation body after comment markers.
var excludeRe = regexp.MustCompile(`^impacc:hash-exclude\s*(.*)$`)

// exclude is one parsed //impacc:hash-exclude comment.
type exclude struct {
	reason string
	pos    token.Position
	used   bool
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return nil
	}
	excludes := parseExcludes(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			canon := lookupMethod(named, pass.Pkg, "CanonicalString")
			if canon == nil {
				return true
			}
			checkStruct(pass, excludes, named, st, canon)
			return true
		})
	}
	// Any exclude annotation not consumed by a field check floats free of
	// every exported field — report it so the marker can't rot either.
	for _, lines := range excludes {
		for _, ex := range lines {
			if !ex.used {
				pass.Reportf(posAt(pass, ex.pos),
					"impacc:hash-exclude annotation attaches to no exported field of a CanonicalString struct; remove it")
			}
		}
	}
	return nil
}

func checkStruct(pass *analysis.Pass, excludes map[string]map[int]*exclude, named *types.Named, st *types.Struct, canon *types.Func) {
	referenced := reachableFieldUses(pass.Facts, canon)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() {
			continue
		}
		pos := pass.Fset.Position(field.Pos())
		ex := excludeAt(excludes, pos)
		if referenced[field] {
			if ex != nil {
				ex.used = true
				pass.Reportf(field.Pos(),
					"hash-exclude on %s.%s is stale: CanonicalString does encode the field; remove the annotation",
					named.Obj().Name(), field.Name())
			}
			continue
		}
		if ex != nil {
			ex.used = true
			if ex.reason == "" {
				pass.Reportf(field.Pos(),
					"impacc:hash-exclude on %s.%s needs a reason (\"//impacc:hash-exclude why the field never changes simulated bytes\")",
					named.Obj().Name(), field.Name())
			}
			continue
		}
		pass.Reportf(field.Pos(),
			"exported field %s.%s is not covered by the canonical encoding: CanonicalString never reads it, so two configs differing in it share one content address; encode it (and bump the scheme tag) or annotate //impacc:hash-exclude <reason>",
			named.Obj().Name(), field.Name())
	}
}

// reachableFieldUses unions field selector uses over CanonicalString and
// everything it transitively calls.
func reachableFieldUses(facts *analysis.Facts, canon *types.Func) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	seen := map[*types.Func]bool{}
	queue := []*types.Func{canon}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		s := facts.Summary(fn)
		if s == nil {
			continue
		}
		for _, fu := range s.FieldUses {
			out[fu.Field] = true
		}
		for _, c := range s.Calls {
			queue = append(queue, c.Callee)
		}
	}
	return out
}

// lookupMethod resolves a method on named (value or pointer receiver).
func lookupMethod(named *types.Named, pkg *types.Package, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pkg, name)
	fn, _ := obj.(*types.Func)
	return fn
}

// parseExcludes scans the package's comments for hash-exclude annotations,
// keyed file → line.
func parseExcludes(pass *analysis.Pass) map[string]map[int]*exclude {
	out := map[string]map[int]*exclude{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := c.Text
				if strings.HasPrefix(body, "//") {
					body = body[2:]
				} else {
					body = strings.TrimSuffix(strings.TrimPrefix(body, "/*"), "*/")
				}
				m := excludeRe.FindStringSubmatch(body)
				if m == nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]*exclude{}
				}
				out[pos.Filename][pos.Line] = &exclude{reason: strings.TrimSpace(m[1]), pos: pos}
			}
		}
	}
	return out
}

// excludeAt finds an annotation on the field's line or the line above.
func excludeAt(excludes map[string]map[int]*exclude, pos token.Position) *exclude {
	lines := excludes[pos.Filename]
	if lines == nil {
		return nil
	}
	if ex := lines[pos.Line]; ex != nil {
		return ex
	}
	return lines[pos.Line-1]
}

// posAt converts a resolved position back to a token.Pos within the pass's
// file set for reporting; falls back to a best-effort scan of the files.
func posAt(pass *analysis.Pass, pos token.Position) token.Pos {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil && tf.Name() == pos.Filename && pos.Line <= tf.LineCount() {
			return tf.LineStart(pos.Line)
		}
	}
	return token.NoPos
}
