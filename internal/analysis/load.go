package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns; analyzers do not run on them and their function
	// bodies are not type-checked.
	DepOnly bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrs collects type-checker complaints. For dependency packages
	// (bodies skipped, cgo stripped) some are expected and harmless; for
	// target packages a clean tree produces none.
	TypeErrs []error
}

// Loader discovers packages with `go list -json -deps` and type-checks them
// bottom-up with go/types, caching results so repeated Load calls (and
// testdata loads sharing stdlib imports) are cheap. It exists because this
// environment has no golang.org/x/tools/go/packages; the subset implemented
// here — syntax plus full type information for target packages — is all the
// analyzers need.
type Loader struct {
	Fset *token.FileSet
	pkgs map[string]*Package
}

// NewLoader returns an empty loader with a fresh FileSet.
func NewLoader() *Loader {
	return &Loader{Fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// Load resolves the patterns (e.g. "./...", "impacc/internal/sim") and
// returns the matched target packages, fully type-checked with Info maps.
// Dependencies are loaded transitively with function bodies skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var targets []*Package
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkg, err := l.ensure(&lp)
		if err != nil {
			return nil, err
		}
		if pkg != nil && !lp.DepOnly {
			pkg.DepOnly = false
			targets = append(targets, pkg)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, nil
}

// ensure parses and type-checks lp once, in dependency order (`go list
// -deps` emits dependencies before dependents, so imports are already
// cached when a package is reached).
func (l *Loader) ensure(lp *listPkg) (*Package, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{ImportPath: "unsafe", Standard: true, DepOnly: true, Types: types.Unsafe}
		l.pkgs["unsafe"] = p
		return p, nil
	}
	p := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		GoFiles:    lp.GoFiles,
		Standard:   lp.Standard,
		DepOnly:    lp.DepOnly,
		Fset:       l.Fset,
	}
	// Register before checking so import cycles in broken trees cannot
	// recurse forever; go list already rejects true cycles.
	l.pkgs[lp.ImportPath] = p
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if lp.DepOnly || lp.Standard {
				p.TypeErrs = append(p.TypeErrs, err)
				continue
			}
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	l.check(p, lp.DepOnly || lp.Standard)
	return p, nil
}

// check type-checks p's parsed files. Dependency packages skip function
// bodies: only their exported shape matters, which keeps loading the
// stdlib closure fast and sidesteps body-level cgo and assembly quirks.
func (l *Loader) check(p *Package, depOnly bool) {
	conf := types.Config{
		Importer:         (*loaderImporter)(l),
		IgnoreFuncBodies: depOnly,
		FakeImportC:      true,
		Error: func(err error) {
			p.TypeErrs = append(p.TypeErrs, err)
		},
	}
	if !depOnly {
		p.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	// Check never returns a nil package; errors are collected via conf.Error.
	p.Types, _ = conf.Check(p.ImportPath, l.Fset, p.Files, p.Info)
}

// loaderImporter resolves imports against the loader's cache.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if p, ok := li.pkgs[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}

// LoadDir loads the .go files of one directory as a synthetic package —
// the shape analysistest needs for testdata directories, which go list
// refuses to enumerate. Imports are resolved by loading them as regular
// dependency packages first, so testdata may import both the stdlib and
// this module's own packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, e.Name())
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	if len(imports) > 0 {
		// Load as dependencies only: bodies skipped, results cached.
		args := append([]string{"list", "-e", "-json", "-deps", "--"}, imports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list imports of %s: %v\n%s", dir, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp listPkg
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			lp.DepOnly = true
			if _, err := l.ensure(&lp); err != nil {
				return nil, err
			}
		}
	}
	p := &Package{
		ImportPath: "testdata/" + filepath.Base(dir),
		Dir:        dir,
		GoFiles:    names,
		Fset:       l.Fset,
		Files:      files,
	}
	l.check(p, false)
	return p, nil
}
