package analysis

import "testing"

func TestLoadSmoke(t *testing.T) {
	l := NewLoader()
	pkgs, err := l.Load("impacc/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil || pkgs[0].Info == nil {
		t.Fatalf("bad load: %+v", pkgs)
	}
	if len(pkgs[0].TypeErrs) > 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrs)
	}
}
