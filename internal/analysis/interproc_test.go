package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

func loadFacts(t *testing.T, dir string) (*Package, *Facts) {
	t.Helper()
	l := NewLoader()
	pkg, err := l.LoadDir(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrs) > 0 {
		t.Fatalf("type errors in %s: %v", dir, pkg.TypeErrs)
	}
	return pkg, buildFacts([]*Package{pkg}, newAllowIndex())
}

func summaryNamed(t *testing.T, facts *Facts, name string) *FuncSummary {
	t.Helper()
	for _, s := range facts.Sorted() {
		if s.Func.Name() == name {
			return s
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

// TestFactsGenerics checks the loader and fact store on type-parameterized
// code: constraints type-check cleanly, and calls through both explicit and
// inferred instantiations (functions and methods) fold back onto the
// declared functions' summaries.
func TestFactsGenerics(t *testing.T) {
	_, facts := loadFacts(t, "generics")

	use := summaryNamed(t, facts, "Use")
	calls := map[string]int{}
	for _, c := range use.Calls {
		calls[c.Callee.Name()]++
		if facts.Summary(c.Callee) == nil {
			t.Errorf("call to %s does not resolve to a summarized function (instantiation not folded to origin?)", c.Callee.Name())
		}
	}
	if calls["Sum"] != 2 {
		t.Errorf("Use calls Sum %d times in facts, want 2 (explicit + inferred instantiation)", calls["Sum"])
	}
	if calls["Set"] != 1 {
		t.Errorf("Use calls Set %d times in facts, want 1", calls["Set"])
	}

	set := summaryNamed(t, facts, "Set")
	if len(set.FieldWrites) != 2 {
		t.Fatalf("Set has %d field writes, want 2", len(set.FieldWrites))
	}
	for _, fw := range set.FieldWrites {
		if fw.Owner == nil || fw.Owner.Obj().Name() != "Pair" {
			t.Errorf("Set field write owner = %v, want Pair", fw.Owner)
		}
	}
}

// TestFactsEmbeddedInterfaces checks Implementations against interface
// embedding (Sink's method set includes Closer's) and struct embedding
// (logSink implements Sink through promoted fileSink methods).
func TestFactsEmbeddedInterfaces(t *testing.T) {
	_, facts := loadFacts(t, "embed")

	impls := facts.Implementations("Sink")
	byName := map[string]*types.Func{}
	for fn := range impls {
		byName[fn.Name()] = fn
	}
	for _, want := range []string{"Emit", "Close"} {
		fn, ok := byName[want]
		if !ok {
			t.Fatalf("Implementations(Sink) misses %s; got %v", want, byName)
		}
		sig := fn.Type().(*types.Signature)
		if recv := NamedOf(sig.Recv().Type()); recv == nil || recv.Obj().Name() != "fileSink" {
			t.Errorf("%s implementation receiver = %v, want fileSink (promoted method resolves to embedded origin)", want, sig.Recv().Type())
		}
		if facts.Summary(fn) == nil {
			t.Errorf("implementation %s has no summary", want)
		}
	}
}

// TestReachPropagation checks the fixed point directly: a source two calls
// deep taints the whole chain with the origin carried unchanged.
func TestReachPropagation(t *testing.T) {
	_, facts := loadFacts(t, "embed")

	emit := summaryNamed(t, facts, "Emit").Func
	taint := facts.Reach("test", func(s *FuncSummary) (Origin, bool) {
		if s.Func == emit {
			return Origin{Func: s.Func, What: "seed"}, true
		}
		return Origin{}, false
	})
	useFn := summaryNamed(t, facts, "use").Func
	o, ok := taint[useFn]
	if !ok {
		t.Fatal("use() calls Emit (promoted through struct embedding) but is not tainted")
	}
	if o.What != "seed" {
		t.Errorf("origin not propagated unchanged: %+v", o)
	}
}
