package a

import (
	"sync"

	"impacc/internal/sim"
)

func work() {}

// proc takes a *sim.Proc, so it runs as a sim process: raw blocking
// constructs stall the whole engine and are forbidden.
func proc(p *sim.Proc, ch chan int, mu *sync.Mutex, rw *sync.RWMutex, wg *sync.WaitGroup) {
	<-ch        // want `raw channel receive`
	ch <- 1     // want `raw channel send`
	mu.Lock()   // want `sync\.Mutex\.Lock`
	mu.Unlock() // unlocking never blocks: ok
	rw.RLock()  // want `sync\.RWMutex\.RLock`
	wg.Wait()   // want `sync\.WaitGroup\.Wait`
	go work()   // want `raw goroutine spawn`
	select {}   // want `select over raw channels`
	p.Sleep(10) // engine-mediated blocking: ok
	p.Yield()   // ok
}

// rangeChan: draining a channel blocks just like a receive.
func rangeChan(p *sim.Proc, ch chan int) {
	for v := range ch { // want `range over a raw channel`
		_ = v
	}
}

// spawned function literals are process bodies even without being declared
// anywhere near the engine.
func spawnSite(e *sim.Engine, ch chan int) {
	e.Spawn("worker", func(p *sim.Proc) {
		<-ch // want `raw channel receive`
		p.Sleep(5)
	})
	e.SpawnAt(10, "late", func(p *sim.Proc) {
		ch <- 2 // want `raw channel send`
	})
}

// primitives shows the sanctioned engine-mediated blocking.
func primitives(p *sim.Proc, ev *sim.Event, c *sim.Cond, s *sim.Semaphore, q *sim.Queue) {
	ev.Wait(p)   // sim.Event.Wait parks via the engine: ok
	c.Wait(p)    // ok
	s.Acquire(p) // ok
	_ = q.Get(p) // ok
}

// hostSide has no *sim.Proc and is not spawned: ordinary Go concurrency is
// none of this analyzer's business.
func hostSide(ch chan int, wg *sync.WaitGroup) int {
	wg.Wait()
	return <-ch
}

// embedded: blocking methods promoted from embedded sync types are still
// sync methods.
type guarded struct {
	sync.Mutex
}

func embedded(p *sim.Proc, g *guarded) {
	g.Lock() // want `sync\.Mutex\.Lock`
	g.Unlock()
}

// annotated is the reasoned escape hatch.
func annotated(p *sim.Proc, mu *sync.Mutex) {
	//impacc:allow-parkdiscipline read-side lock held only within one event, no park point inside
	mu.Lock()
	mu.Unlock()
}
