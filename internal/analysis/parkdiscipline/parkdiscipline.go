// Package parkdiscipline enforces the engine's blocking rule inside
// simulation processes.
//
// The sim engine runs exactly one process at a time; a process gives up
// control only through Proc.park (via Sleep, Event.Wait, Cond.Wait,
// Semaphore.Acquire, Queue.Get, FIFOResource.Use). A process that instead
// blocks on a raw channel, sync.WaitGroup, or mutex stalls the entire
// engine: the engine thinks the process is still running, no other process
// can be scheduled to unblock it, and the run deadlocks outside the
// engine's own deadlock detector — or worse, resolves nondeterministically
// via the Go scheduler. This is exactly the bug class the PR 2 unwind
// machinery exists to contain; this pass rejects it at vet time.
//
// A function is considered process context when it takes a *sim.Proc
// parameter or is a function literal passed to Engine.Spawn/SpawnAt.
// Package internal/sim itself is exempt — it implements the discipline and
// necessarily touches raw channels.
package parkdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"impacc/internal/analysis"
)

// Analyzer implements the parkdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "parkdiscipline",
	Doc: "inside sim process functions, forbid raw blocking (channel ops, select, " +
		"sync.WaitGroup.Wait, mutex locks, goroutine spawns) that bypasses Proc.park",
	Run: run,
}

// syncBlockers are sync package methods that block or serialize against
// the Go scheduler rather than the sim engine.
var syncBlockers = map[string]bool{
	"Wait": true, "Lock": true, "RLock": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
		return nil // the engine implements parking; raw channels are its job
	}
	checked := map[*ast.BlockStmt]bool{}
	check := func(body *ast.BlockStmt) {
		if body != nil && !checked[body] {
			checked[body] = true
			checkBody(pass, body)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if hasProcParam(pass, fn.Type) {
					check(fn.Body)
				}
			case *ast.FuncLit:
				if hasProcParam(pass, fn.Type) {
					check(fn.Body)
				}
			case *ast.CallExpr:
				if isSpawnCall(fn) {
					for _, arg := range fn.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							check(lit.Body)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// hasProcParam reports whether the function signature takes a *sim.Proc.
func hasProcParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isSimProcPtr(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isSimProcPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// isSpawnCall matches x.Spawn(...) / x.SpawnAt(...) syntactically; the
// receiver is not type-checked so stub engines in tests are covered too.
func isSpawnCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "Spawn" || sel.Sel.Name == "SpawnAt"
}

// checkBody flags raw blocking constructs in one process function body.
// Nested function literals are followed (a closure defined in process
// context usually runs in it), except literals that are themselves process
// functions or spawned bodies — those are visited independently.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if hasProcParam(pass, s.Type) {
				return false
			}
		case *ast.SendStmt:
			report(pass, s.Pos(), "raw channel send")
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" {
				report(pass, s.Pos(), "raw channel receive")
			}
		case *ast.SelectStmt:
			report(pass, s.Pos(), "select over raw channels")
		case *ast.GoStmt:
			report(pass, s.Pos(), "raw goroutine spawn")
		case *ast.RangeStmt:
			if t := pass.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					report(pass, s.Pos(), "range over a raw channel")
				}
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && syncBlockers[sel.Sel.Name] {
				if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
					obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					report(pass, s.Pos(), "sync."+recvTypeName(obj)+"."+sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "?"
}

func report(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Reportf(pos,
		"%s blocks a sim process outside the engine (the engine cannot schedule around it); use the park-based primitives (Proc.Sleep, sim.Event/Cond/Semaphore/Queue, FIFOResource) or annotate //impacc:allow-parkdiscipline <reason>",
		what)
}
