package parkdiscipline_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/parkdiscipline"
)

func TestParkdiscipline(t *testing.T) {
	analysistest.Run(t, parkdiscipline.Analyzer, filepath.Join("testdata", "a"))
}
