package a

import "impacc/internal/sim"

var eng = sim.NewEngine()

// badBeat mutates simulation state through a helper: the interprocedural
// closure must carry poke's Engine.After call back to this wiring.
func badBeat(at sim.Time) { // want `badBeat is wired as a OnBeat observer but mutates simulation state \(Engine\.After call`
	poke(eng)
}

func poke(e *sim.Engine) { e.After(1, func() {}) }

// badMetrics writes a state-bearing field directly.
func badMetrics(at sim.Time) { // want `badMetrics is wired as a OnBeat observer but mutates simulation state \(write to Engine\.Metrics`
	eng.Metrics = nil
}

// tally is the observer's own state — mutating it is what observers do.
type tally struct{ beats int }

var counts tally

func goodBeat(at sim.Time) {
	_ = eng.Now()
	counts.beats++
}

// annotatedBeat deliberately perturbs, with the escape hatch on the site.
func annotatedBeat(at sim.Time) {
	eng.Halt() //impacc:allow-observerpure fixture: deliberate perturbation under test
}

// Progress mirrors core's observer hook shape: a func-valued Emit field on
// a type named Progress.
type Progress struct {
	Every sim.Dur
	Emit  func(at sim.Time)
}

func badEmit(at sim.Time) { // want `badEmit is wired as a Progress\.Emit observer but mutates simulation state \(Engine\.Halt call`
	eng.Halt()
}

func goodEmit(at sim.Time) { counts.beats++ }

func wire(g *sim.ShardGroup) {
	g.OnBeat = badBeat
	g.OnBeat = badMetrics
	g.OnBeat = goodBeat
	g.OnBeat = annotatedBeat
	_ = Progress{Every: 10, Emit: badEmit}
	_ = Progress{Every: 10, Emit: goodEmit}
	g.OnWindow = func(fence sim.Time) {
		eng.At(fence, func() {}) // want `OnWindow observer calls Engine\.At, mutating simulation state`
	}
	g.OnWindow = func(fence sim.Time) {
		poke(eng) // want `OnWindow observer calls poke, which mutates simulation state \(Engine\.After call`
	}
	g.OnWindow = func(fence sim.Time) {
		counts.beats++ // reads and own-state writes stay legal
	}
}

// SpanSink mirrors core.SpanSink: any implementation observes a run, so its
// methods are held to the same read-only contract.
type SpanSink interface {
	Emit(recs []int) error
	Close(makespan sim.Time) error
}

type badSink struct{ e *sim.Engine }

func (b *badSink) Emit(recs []int) error { // want `Emit is wired as a SpanSink observer but mutates simulation state \(Engine\.Halt call`
	b.e.Halt()
	return nil
}

func (b *badSink) Close(makespan sim.Time) error { return nil }

type goodSink struct{ n int }

func (g *goodSink) Emit(recs []int) error { g.n += len(recs); return nil }

func (g *goodSink) Close(makespan sim.Time) error { return nil }

var (
	_ SpanSink = (*badSink)(nil)
	_ SpanSink = (*goodSink)(nil)
)
