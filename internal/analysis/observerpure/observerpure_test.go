package observerpure_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/observerpure"
)

func TestObserverpure(t *testing.T) {
	analysistest.Run(t, observerpure.Analyzer, filepath.Join("testdata", "a"))
}
