// Package observerpure statically enforces the no-perturb guarantee for
// observation hooks: a function wired as a progress emitter (Progress.Emit),
// a shard-group beat or window callback (OnBeat/OnWindow), a hub trace hook
// (OnMatch/OnFault), or a SpanSink implementation observes a run — it must
// never mutate the simulation it observes. The runtime documents the rule
// ("It must not call back into the runtime") and the byte-identity tests
// sample it; this pass proves it for every wired callback on every path.
//
// "Mutating the simulation" means writing a field of, or calling a mutating
// method on, one of the runtime's state-bearing types (sim.Engine,
// sim.ShardGroup, sim.Proc, sim.Event, core.Runtime, core.Task, msg.Hub,
// topo.Fabric, device.Runtime) — directly, or through any chain of helper
// calls (the interprocedural fact store supplies the closure). Observers
// may freely mutate their own buffers, sinks, and tracers; those types are
// not simulation state.
//
// Wiring is recognized program-wide from the shared fact store's function
// binds: method values and named functions assigned to the hook fields, and
// inline literals at the wiring site. //impacc:allow-observerpure <reason>
// suppresses a site.
package observerpure

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"impacc/internal/analysis"
)

// Analyzer implements the observerpure pass.
var Analyzer = &analysis.Analyzer{
	Name: "observerpure",
	Doc: "functions wired as observers (Progress.Emit, OnBeat/OnWindow, hub trace " +
		"hooks, SpanSink implementations) must not mutate engine/runtime/hub " +
		"state, directly or through helpers",
	Run: run,
}

// stateTypes names the simulation-state types, as pkg-path-suffix → type
// names. A write to any field of these, from an observer, perturbs the run.
var stateTypes = map[string]map[string]bool{
	"internal/sim":    {"Engine": true, "ShardGroup": true, "Proc": true, "Event": true},
	"internal/core":   {"Runtime": true, "Task": true},
	"internal/msg":    {"Hub": true},
	"internal/topo":   {"Fabric": true},
	"internal/device": {"Runtime": true},
}

// mutMethods are methods of state types that mutate them (scheduling,
// process control, registry adoption). Reads (Now, Events, Stats, ...) are
// what observers are for and stay legal.
var mutMethods = map[string]bool{
	"Cancel": true, "Halt": true, "At": true, "After": true, "Post": true,
	"Spawn": true, "SpawnAt": true, "Run": true, "Execute": true,
	"ArmFlight": true, "AdoptMetrics": true, "Fire": true, "SetFaults": true,
}

// hookField reports whether a FuncBind wires an observer hook.
func hookField(b analysis.FuncBind) (hook string, ok bool) {
	switch b.Field {
	case "OnBeat", "OnWindow", "OnMatch", "OnFault":
		return b.Field, true
	case "Emit":
		if strings.HasSuffix(b.Owner, ".Progress") {
			return "Progress.Emit", true
		}
	}
	return "", false
}

func isStateType(named *types.Named) bool {
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	for suffix, names := range stateTypes {
		if strings.HasSuffix(path, suffix) && names[named.Obj().Name()] {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	facts := pass.Facts
	if facts == nil {
		return nil
	}
	// Transitive closure: which functions mutate simulation state, with the
	// originating site carried along for the message.
	taint := facts.Reach("observerpure", func(s *analysis.FuncSummary) (analysis.Origin, bool) {
		for _, fw := range s.FieldWrites {
			if !isStateType(fw.Owner) {
				continue
			}
			pos := s.Pkg.Fset.Position(fw.Pos)
			if facts.Allowed("observerpure", pos) {
				continue
			}
			return analysis.Origin{Func: s.Func, Pos: pos,
				What: fmt.Sprintf("write to %s.%s", fw.Owner.Obj().Name(), fw.Field.Name())}, true
		}
		for _, c := range s.Calls {
			if !mutMethods[c.Callee.Name()] {
				continue
			}
			sig, ok := c.Callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			if !isStateType(analysis.NamedOf(sig.Recv().Type())) {
				continue
			}
			pos := s.Pkg.Fset.Position(c.Pos)
			if facts.Allowed("observerpure", pos) {
				continue
			}
			recv := analysis.NamedOf(sig.Recv().Type())
			return analysis.Origin{Func: s.Func, Pos: pos,
				What: recv.Obj().Name() + "." + c.Callee.Name() + " call"}, true
		}
		return analysis.Origin{}, false
	})

	// Observer functions wired by bind (method values / named functions),
	// reported at their declaration — but only for functions declared in
	// the package this pass is visiting.
	reported := map[*types.Func]bool{}
	checkFn := func(fn *types.Func, hook string) {
		s := facts.Summary(fn)
		if s == nil || s.Pkg.Types != pass.Pkg || reported[fn] {
			return
		}
		o, tainted := taint[fn]
		if !tainted {
			return
		}
		reported[fn] = true
		pass.Reportf(s.Decl.Name.Pos(),
			"%s is wired as a %s observer but mutates simulation state (%s at %s); observers must be read-only, or annotate //impacc:allow-observerpure <reason>",
			fn.Name(), hook, o.What, analysis.ShortPos(o.Pos))
	}
	for _, b := range facts.Binds {
		hook, ok := hookField(b)
		if !ok {
			continue
		}
		if b.Fn != nil {
			checkFn(b.Fn, hook)
		}
		if b.Lit != nil && b.Pkg.Types == pass.Pkg {
			checkLit(pass, taint, b.Lit, hook)
		}
	}
	// SpanSink implementations: every Emit/Close of a type implementing a
	// SpanSink interface is an observer.
	for fn := range facts.Implementations("SpanSink") {
		checkFn(fn, "SpanSink")
	}
	return nil
}

// checkLit inspects an inline observer literal at its wiring site: direct
// state mutations, and calls into tainted helpers.
func checkLit(pass *analysis.Pass, taint map[*types.Func]analysis.Origin, lit *ast.FuncLit, hook string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				litFieldWrite(pass, hook, lhs)
			}
		case *ast.IncDecStmt:
			litFieldWrite(pass, hook, n.X)
		case *ast.CallExpr:
			callee := analysis.Callee(pass.Info, n)
			if callee == nil {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
				mutMethods[callee.Name()] && isStateType(analysis.NamedOf(sig.Recv().Type())) {
				pass.Reportf(n.Pos(),
					"%s observer calls %s.%s, mutating simulation state; observers must be read-only, or annotate //impacc:allow-observerpure <reason>",
					hook, analysis.NamedOf(sig.Recv().Type()).Obj().Name(), callee.Name())
				return true
			}
			if o, ok := taint[callee]; ok {
				pass.Reportf(n.Pos(),
					"%s observer calls %s, which mutates simulation state (%s at %s); observers must be read-only, or annotate //impacc:allow-observerpure <reason>",
					hook, callee.Name(), o.What, analysis.ShortPos(o.Pos))
			}
		}
		return true
	})
}

func litFieldWrite(pass *analysis.Pass, hook string, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return
	}
	owner := analysis.NamedOf(pass.TypeOf(sel.X))
	if !isStateType(owner) {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"%s observer writes %s.%s, mutating simulation state; observers must be read-only, or annotate //impacc:allow-observerpure <reason>",
		hook, owner.Obj().Name(), sel.Sel.Name)
}
