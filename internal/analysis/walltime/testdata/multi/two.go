package multi

func report() {
	_ = stamp() // want `call to stamp transitively reads host wall-clock`
}
