package multi

import "time"

// stamp hides the clock read from its callers in the other file; the fact
// store must connect them across file boundaries.
func stamp() time.Time {
	return time.Now() // want `time\.Now reads host wall-clock`
}
