package a

import (
	"os"
	"time"
)

// bad exercises every forbidden wall-clock and entropy read.
func bad() {
	_ = time.Now()          // want `time\.Now reads host wall-clock`
	time.Sleep(time.Second) // want `time\.Sleep reads host wall-clock`
	t := time.Now()         // want `time\.Now reads host wall-clock`
	_ = time.Since(t)       // want `time\.Since reads host wall-clock`
	_ = time.After(1)       // want `time\.After reads host wall-clock`
	_ = time.NewTicker(1)   // want `time\.NewTicker reads host wall-clock`
	_ = os.Getpid()         // want `os\.Getpid reads host wall-clock`
	_, _ = os.Hostname()    // want `os\.Hostname reads host wall-clock`
}

// typeUsesOK shows that naming time types and constants is fine; only the
// clock reads are forbidden.
func typeUsesOK(d time.Duration) time.Duration {
	return d + 2*time.Millisecond
}

// annotated is the sanctioned escape hatch: a reasoned allow annotation on
// the same line or the line above.
func annotated() time.Time {
	start := time.Now() //impacc:allow-walltime operator-facing progress timing, never enters sim state
	//impacc:allow-walltime progress timing on the line above the call
	_ = time.Since(start)
	return start
}

// bareAnnotation shows that an annotation without a reason suppresses
// nothing and is itself flagged.
func bareAnnotation() {
	_ = time.Now() /*impacc:allow-walltime*/ // want `time\.Now reads host wall-clock` `annotation needs a reason`
}
