package a

import (
	"os"
	"time"
)

// bad exercises every forbidden wall-clock and entropy read.
func bad() {
	_ = time.Now()          // want `time\.Now reads host wall-clock`
	time.Sleep(time.Second) // want `time\.Sleep reads host wall-clock`
	t := time.Now()         // want `time\.Now reads host wall-clock`
	_ = time.Since(t)       // want `time\.Since reads host wall-clock`
	_ = time.After(1)       // want `time\.After reads host wall-clock`
	_ = time.NewTicker(1)   // want `time\.NewTicker reads host wall-clock`
	_ = os.Getpid()         // want `os\.Getpid reads host wall-clock`
	_, _ = os.Hostname()    // want `os\.Hostname reads host wall-clock`
}

// typeUsesOK shows that naming time types and constants is fine; only the
// clock reads are forbidden.
func typeUsesOK(d time.Duration) time.Duration {
	return d + 2*time.Millisecond
}

// annotated is the sanctioned escape hatch: a reasoned allow annotation on
// the same line or the line above.
func annotated() time.Time {
	start := time.Now() //impacc:allow-walltime operator-facing progress timing, never enters sim state
	//impacc:allow-walltime progress timing on the line above the call
	_ = time.Since(start)
	return start
}

// bareAnnotation shows that an annotation without a reason suppresses
// nothing and is itself flagged.
func bareAnnotation() {
	_ = time.Now() /*impacc:allow-walltime*/ // want `time\.Now reads host wall-clock` `annotation needs a reason`
}

// timers: every timer constructor and measuring helper is a clock read.
func timers(t time.Time) {
	_ = time.Until(t)          // want `time\.Until reads host wall-clock`
	_ = time.NewTimer(1)       // want `time\.NewTimer reads host wall-clock`
	_ = time.Tick(1)           // want `time\.Tick reads host wall-clock`
	_ = time.AfterFunc(1, nil) // want `time\.AfterFunc reads host wall-clock`
}

// helper hides a clock read one call deep; the interprocedural closure
// taints its callers and names the underlying site.
func helper() time.Time {
	return time.Now() // want `time\.Now reads host wall-clock`
}

func viaHelper() {
	_ = helper() // want `call to helper transitively reads host wall-clock`
}

func mid() {
	_ = helper() // want `call to helper transitively reads host wall-clock`
}

func viaTwo() {
	mid() // want `call to mid transitively reads host wall-clock`
}

// sanctionedHelper's read carries the annotation at the source, so the
// taint stops there: callers inherit the sanction.
func sanctionedHelper() time.Time {
	return time.Now() //impacc:allow-walltime operator-facing progress timing, never enters sim state
}

func viaSanctioned() time.Time { return sanctionedHelper() }
