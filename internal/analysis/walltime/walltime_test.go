package walltime_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, filepath.Join("testdata", "a"))
}
