package walltime_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, filepath.Join("testdata", "a"))
}

// TestWalltimeMultiFile exercises the harness and the fact store across a
// package split over two files: the clock read sits in one file, its
// transitively flagged caller in the other.
func TestWalltimeMultiFile(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, filepath.Join("testdata", "multi"))
}
