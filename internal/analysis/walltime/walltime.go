// Package walltime forbids wall-clock time and host-process entropy in the
// simulator's deterministic packages.
//
// Every IMPACC result — the Fig. 9/10 crossovers, the golden Chrome traces,
// the serial-vs-parallel byte-identity guarantees — is a pure function of
// the run configuration. A single time.Now() in the runtime threads host
// scheduling noise into virtual-time state and silently breaks all of that.
// The engine's virtual clock (sim.Engine.Now, sim.Proc.Now) is the only
// clock deterministic code may read.
//
// Legitimate wall-clock sites (operator-facing progress timing in the bench
// harness, for example) must carry an explicit
// //impacc:allow-walltime <reason> annotation.
package walltime

import (
	"go/ast"
	"go/types"

	"impacc/internal/analysis"
)

// forbidden maps package path -> function name -> suggested replacement.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "the virtual clock (sim.Engine.Now / sim.Proc.Now)",
		"Since":     "virtual-time subtraction (sim.Time difference)",
		"Until":     "virtual-time subtraction (sim.Time difference)",
		"Sleep":     "sim.Proc.Sleep",
		"After":     "sim.Engine.After",
		"AfterFunc": "sim.Engine.After",
		"Tick":      "scheduled sim events",
		"NewTimer":  "scheduled sim events",
		"NewTicker": "scheduled sim events",
	},
	"os": {
		"Getpid":   "a fixed identifier from the run configuration",
		"Getppid":  "a fixed identifier from the run configuration",
		"Hostname": "node names from the topology description",
		"Environ":  "explicit configuration",
	},
}

// Analyzer implements the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep, timers) and host-process " +
		"entropy (os.Getpid, os.Hostname) that would leak nondeterminism into " +
		"virtual-time simulation state, including reads hidden behind helper calls",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := pass.ImportedPkg(sel.X)
			funcs, ok := forbidden[pkgPath]
			if !ok {
				return true
			}
			repl, ok := funcs[sel.Sel.Name]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s reads host wall-clock/process state and breaks determinism; use %s, or annotate //impacc:allow-walltime <reason>",
				pkgPath, sel.Sel.Name, repl)
			return true
		})
	}
	if pass.Facts == nil {
		return nil
	}
	// Interprocedural half: a helper whose body reads the wall clock taints
	// every (transitive) caller; the call sites are flagged with the
	// underlying origin. Annotated origins are sanctioned — the annotation's
	// reason covers downstream use of the value.
	taint := pass.Facts.Reach("walltime", func(s *analysis.FuncSummary) (analysis.Origin, bool) {
		for _, c := range s.Calls {
			fn := c.Callee
			if fn.Pkg() == nil {
				continue
			}
			funcs, ok := forbidden[fn.Pkg().Path()]
			if !ok {
				continue
			}
			if _, ok := funcs[fn.Name()]; !ok {
				continue
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue
			}
			pos := s.Pkg.Fset.Position(c.Pos)
			if pass.Facts.Allowed("walltime", pos) {
				continue
			}
			return analysis.Origin{Func: s.Func, Pos: pos,
				What: fn.Pkg().Path() + "." + fn.Name()}, true
		}
		return analysis.Origin{}, false
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.Info, call)
			if callee == nil {
				return true
			}
			if o, ok := taint[callee]; ok {
				pass.Reportf(call.Pos(),
					"call to %s transitively reads host wall-clock/process state (%s at %s); hoist the read out or annotate the underlying site //impacc:allow-walltime <reason>",
					callee.Name(), o.What, analysis.ShortPos(o.Pos))
			}
			return true
		})
	}
	return nil
}
