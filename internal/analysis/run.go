package analysis

import "sort"

// Run applies every analyzer to every package and returns the combined
// diagnostics in (file, line, column, analyzer) order. Before the analyzers
// run, one program-wide interprocedural fact store is built over all target
// packages (see interproc.go) and shared through Pass.Facts.
//
// Suppression annotations are honored per analyzer; two pseudo-analyzers
// police the escape hatches themselves: malformed annotations (no reason)
// are reported under "allowform" so a bare //impacc:allow-walltime can never
// silently disable a check, and reasoned annotations that no longer suppress
// any diagnostic of an analyzer in the running suite are reported under
// "allowstale" so stale escape hatches cannot rot in the tree.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var targets []*Package
	for _, pkg := range pkgs {
		if pkg.DepOnly || len(pkg.Files) == 0 {
			continue
		}
		targets = append(targets, pkg)
	}
	allows := newAllowIndex()
	for _, pkg := range targets {
		allows.add(pkg.Fset, pkg.Files)
	}
	facts := buildFacts(targets, allows)

	var diags []Diagnostic
	for _, site := range allows.bad {
		diags = append(diags, Diagnostic{
			Analyzer: "allowform",
			Pos:      site.Pos,
			Message: "impacc:allow-" + site.Name +
				" annotation needs a reason (\"//impacc:allow-" + site.Name + " why it is safe\")",
		})
	}
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				allows:   allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.diags...)
		}
	}
	// Staleness is judged only for analyzers that actually ran: a testdata
	// fixture exercising one analyzer may legitimately carry annotations for
	// others.
	suite := map[string]bool{}
	for _, a := range analyzers {
		suite[a.Name] = true
	}
	for _, site := range allows.sites {
		if site.used || !suite[site.Name] {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "allowstale",
			Pos:      site.Pos,
			Message: "impacc:allow-" + site.Name + " annotation suppresses nothing (no " +
				site.Name + " diagnostic on this line or the next); remove the stale escape hatch",
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Message tie-break: several findings can share one position (e.g.
		// two spans leaking through the same return); the full sort keeps
		// impacc-vet's own output deterministic.
		return a.Message < b.Message
	})
	return diags, nil
}
