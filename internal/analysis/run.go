package analysis

import "sort"

// Run applies every analyzer to every package and returns the combined
// diagnostics in (file, line, column, analyzer) order. Suppression
// annotations are honored per analyzer; malformed annotations (no reason)
// are reported under the pseudo-analyzer "allowform" so a bare
// //impacc:allow-walltime can never silently disable a check.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.DepOnly || len(pkg.Files) == 0 {
			continue
		}
		allows, bad := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, site := range bad {
			diags = append(diags, Diagnostic{
				Analyzer: "allowform",
				Pos:      site.Pos,
				Message: "impacc:allow-" + site.Name +
					" annotation needs a reason (\"//impacc:allow-" + site.Name + " why it is safe\")",
			})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				allows:   allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Message tie-break: several findings can share one position (e.g.
		// two spans leaking through the same return); the full sort keeps
		// impacc-vet's own output deterministic.
		return a.Message < b.Message
	})
	return diags, nil
}
