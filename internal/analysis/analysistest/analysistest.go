// Package analysistest runs an analyzer over a testdata directory and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A line expecting a diagnostic carries a comment of the form
//
//	code() // want `regexp` `another regexp`
//
// with one back-quoted (or double-quoted) regular expression per expected
// diagnostic on that line. Lines without a want comment must produce no
// diagnostics.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"impacc/internal/analysis"
)

// sharedLoader caches stdlib and module dependencies across the many
// testdata packages a test binary loads.
var sharedLoader = analysis.NewLoader()

// wantRe pulls the expectation list off a line; expRe then splits it into
// individual quoted regexps.
var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
	expRe  = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
)

type expectation struct {
	re    *regexp.Regexp
	raw   string
	found bool
}

// Run loads dir as one package, applies the analyzer, and reports any
// mismatch between produced diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				key := fmt.Sprintf("%s:%d", fname, line)
				for _, em := range expRe.FindAllStringSubmatch(m[1], -1) {
					raw := em[1]
					if raw == "" {
						raw = em[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.found && exp.re.MatchString(d.Message) {
				exp.found = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.found {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.raw)
			}
		}
	}

	if t.Failed() {
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&sb, "  %s\n", d)
		}
		t.Logf("all diagnostics from %s on %s:\n%s", a.Name, dir, sb.String())
	}
}
