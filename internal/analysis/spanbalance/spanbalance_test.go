package spanbalance_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/spanbalance"
)

func TestSpanbalance(t *testing.T) {
	analysistest.Run(t, spanbalance.Analyzer, filepath.Join("testdata", "a"))
}
