package a

// Stub shapes mirroring the runtime's tracing idioms: a virtual clock with
// Now(), record sinks named span/mpiSpan/record, and a Begin/End handle.

type clock struct{}

func (clock) Now() int64 { return 0 }

type tracer struct{}

func (tracer) span(kind string, start int64)        {}
func (tracer) mpiSpan(name string, start int64) int { return 0 }
func (tracer) record(start int64) uint64            { return 0 }

type handle struct{}

func (handle) End() {}

type mk struct{}

func (mk) BeginRegion(name string) handle { return handle{} }

func work()         {}
func mayFail() bool { return false }

type task struct{}

func (task) fail(err error) {}

// good: the linear open-then-record shape.
func good(c clock, tr tracer) {
	start := c.Now()
	work()
	tr.span("compute", start)
}

// badEarlyReturn leaks the span through the early return.
func badEarlyReturn(c clock, tr tracer, cond bool) {
	start := c.Now()
	if cond {
		return // want `leaves trace span "start"`
	}
	tr.span("compute", start)
}

// goodBranches records on every path.
func goodBranches(c clock, tr tracer, cond bool) {
	start := c.Now()
	if cond {
		tr.span("a", start)
		return
	}
	tr.span("b", start)
}

// goodDefer closes via defer, covering every exit.
func goodDefer(c clock, tr tracer) {
	start := c.Now()
	defer tr.span("compute", start)
	if mayFail() {
		return
	}
	work()
}

// goodDeferClosure: a deferred closure recording the span also balances.
func goodDeferClosure(c clock, tr tracer) {
	start := c.Now()
	defer func() {
		tr.span("compute", start)
	}()
	if mayFail() {
		return
	}
	work()
}

// goodPanicPath: aborting paths are exempt — an aborted run has no
// telescoping exactness to protect.
func goodPanicPath(c clock, tr tracer, cond bool) {
	start := c.Now()
	if cond {
		panic("abort")
	}
	tr.span("x", start)
}

// goodFailPath: Task.fail-style aborts are exempt too.
func goodFailPath(c clock, tr tracer, t task, cond bool) {
	start := c.Now()
	if cond {
		t.fail(nil)
		return
	}
	tr.mpiSpan("send", start)
}

// badFallthrough records only in one branch and falls off the end in the
// other.
func badFallthrough(c clock, tr tracer, cond bool) {
	start := c.Now()
	if cond {
		tr.span("a", start)
	}
} // want `leaves trace span "start"`

// badSwitch: one case forgets to record.
func badSwitch(c clock, tr tracer, n int) {
	start := c.Now()
	switch n {
	case 0:
		tr.span("zero", start)
	case 1:
		return // want `leaves trace span "start"`
	default:
		tr.span("other", start)
	}
}

// goodLoop opens and records within each iteration.
func goodLoop(c clock, tr tracer, n int) {
	for i := 0; i < n; i++ {
		start := c.Now()
		work()
		tr.span("iter", start)
	}
}

// elapsedOnly: a Now() capture that never feeds a record call is elapsed
// arithmetic, not a span — no diagnostics.
func elapsedOnly(c clock) int64 {
	start := c.Now()
	work()
	return c.Now() - start
}

// badBegin: Begin/End form with a leaking early return.
func badBegin(m mk, cond bool) {
	h := m.BeginRegion("r")
	if cond {
		return // want `leaves trace span "h"`
	}
	h.End()
}

// goodBeginDefer is the canonical paired form.
func goodBeginDefer(m mk) {
	h := m.BeginRegion("r")
	defer h.End()
	work()
}

// annotated is the reasoned escape hatch.
func annotated(c clock, tr tracer, cond bool) {
	start := c.Now()
	if cond {
		//impacc:allow-spanbalance span intentionally dropped: tracing disabled on this path
		return
	}
	tr.span("compute", start)
}
