// Package spanbalance checks that every opened trace span is recorded on
// every path out of its function.
//
// The prof package's critical-path accounting is integer-exact: per-kind
// sums telescope to the makespan only because every span interval that is
// started is eventually recorded exactly once. A span capture that escapes
// through an early return silently turns traced time into untraceable
// "other" time and breaks the telescoping invariant the golden tests pin.
//
// Two idioms open a span:
//
//	start := p.Now()          // startvar form: `start` later flows into a
//	...                       // recording call (t.span, t.mpiSpan,
//	t.span("compute", start)  // tr.record, sink.Span)
//
//	sp := tr.BeginX(...)      // begin form: any method named Begin* whose
//	defer sp.End()            // result must reach an End on all paths
//
// The pass runs an abstract interpretation over the function's control
// flow (if/else, for, range, switch, select merge semantics): at every
// return and at fall-through, all opened spans must have been recorded or
// closed by a defer. Paths that abort the run (panic, Task.fail/Fail,
// Fatal, os.Exit) are exempt — an aborting run has no exactness to
// protect. //impacc:allow-spanbalance <reason> suppresses a site.
package spanbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"impacc/internal/analysis"
)

// Analyzer implements the spanbalance pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanbalance",
	Doc: "require every trace span open (Begin*/captured start time flowing into a " +
		"record call) to be closed/recorded on all control-flow paths",
	Run: run,
}

// recordNames are the span-recording entry points: a call to one of these
// with the start variable among its arguments closes that span.
var recordNames = map[string]bool{
	"span": true, "mpiSpan": true, "record": true, "Span": true,
}

// terminatorNames are selector calls that abort the run; paths ending in
// them are exempt from balance.
var terminatorNames = map[string]bool{
	"fail": true, "failf": true, "Fail": true, "Failf": true,
	"Fatal": true, "Fatalf": true, "Exit": true, "Goexit": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return false // nested funcs are found by the recursive walk below
		})
	}
	return nil
}

// checkFunc runs the balance walk over one function body, then recurses
// into nested function literals as independent functions.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &walker{
		pass:      pass,
		startVars: spanStartVars(pass, body),
		deferred:  map[types.Object]bool{},
		reported:  map[reportKey]bool{},
	}
	st := &state{open: map[types.Object]token.Pos{}}
	w.stmts(body.List, st)
	if !st.terminated {
		w.checkExit(body.Rbrace, st)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		return true
	})
}

// spanStartVars finds local variables that (a) are assigned from a .Now()
// call somewhere in body and (b) flow into a recording call's arguments.
// Only those captures count as span opens; a Now() used for plain
// arithmetic (elapsed-time math) is not a span.
func spanStartVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	recorded := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !recordNames[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
						recorded[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	if len(recorded) == 0 {
		return nil
	}
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isNowCall(rhs) || i >= len(assign.Lhs) {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && recorded[obj] {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isNowCall matches x.Now() — the virtual-clock read that anchors a span.
func isNowCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Now"
}

// state is the abstract value flowed through the walk: which span tokens
// are open, and whether this path has already terminated.
type state struct {
	open       map[types.Object]token.Pos
	terminated bool
}

func (s *state) clone() *state {
	c := &state{open: make(map[types.Object]token.Pos, len(s.open)), terminated: s.terminated}
	for k, v := range s.open {
		c.open[k] = v
	}
	return c
}

// merge unions the open sets of live successor states into dst. A span
// open on any live incoming path stays open.
func merge(dst *state, branches ...*state) {
	live := 0
	for k := range dst.open {
		delete(dst.open, k)
	}
	for _, b := range branches {
		if b == nil || b.terminated {
			continue
		}
		live++
		for k, v := range b.open {
			dst.open[k] = v
		}
	}
	dst.terminated = live == 0
}

type reportKey struct {
	open token.Pos
	exit token.Pos
}

type walker struct {
	pass      *analysis.Pass
	startVars map[types.Object]bool
	// deferred holds tokens closed by a registered defer; defers are
	// function-scoped so the set only grows.
	deferred map[types.Object]bool
	reported map[reportKey]bool
}

// stmts walks a statement list, updating st in place.
func (w *walker) stmts(list []ast.Stmt, st *state) {
	for _, s := range list {
		if st.terminated {
			return
		}
		w.stmt(s, st)
	}
}

func (w *walker) stmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.scanSimple(s, st)
		for i, rhs := range s.Rhs {
			if i >= len(s.Lhs) {
				break
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.pass.Info.Defs[id]
			if obj == nil {
				obj = w.pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isNowCall(rhs) && w.startVars[obj] {
				st.open[obj] = s.Pos()
			} else if isBeginCall(rhs) {
				st.open[obj] = s.Pos()
			}
		}
	case *ast.ExprStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt:
		w.scanSimple(s, st)
	case *ast.DeferStmt:
		w.scanDefer(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, st)
		}
		w.checkExit(s.Pos(), st)
		st.terminated = true
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		then := st.clone()
		w.stmts(s.Body.List, then)
		var alt *state
		if s.Else != nil {
			alt = st.clone()
			w.stmt(s.Else, alt)
		} else {
			alt = st.clone()
		}
		merge(st, then, alt)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		body := st.clone()
		w.stmts(s.Body.List, body)
		entry := st.clone()
		merge(st, entry, body)
		if s.Cond == nil && !hasBreak(s.Body) {
			// `for {}` with no break never falls through; exits inside
			// the body were already checked during its walk.
			st.terminated = true
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		body := st.clone()
		w.stmts(s.Body.List, body)
		entry := st.clone()
		merge(st, entry, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		w.caseClauses(s.Body, st)
	}
}

// caseClauses merges the bodies of switch/select clauses; without a
// default clause the entry state joins the merge (no case may match).
func (w *walker) caseClauses(body *ast.BlockStmt, st *state) {
	var branches []*state
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		b := st.clone()
		w.stmts(stmts, b)
		branches = append(branches, b)
	}
	if !hasDefault {
		branches = append(branches, st.clone())
	}
	merge(st, branches...)
}

// scanSimple processes closes and terminators inside one simple statement.
func (w *walker) scanSimple(s ast.Stmt, st *state) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own function
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.applyCall(call, st)
		}
		return true
	})
}

// scanExpr processes closes inside an expression (condition, return value).
func (w *walker) scanExpr(e ast.Expr, st *state) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.applyCall(call, st)
		}
		return true
	})
}

// applyCall interprets one call: closes spans it records, marks the path
// terminated when it aborts the run.
func (w *walker) applyCall(call *ast.CallExpr, st *state) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		st.terminated = true
		for k := range st.open {
			delete(st.open, k)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if terminatorNames[sel.Sel.Name] {
		st.terminated = true
		for k := range st.open {
			delete(st.open, k)
		}
		return
	}
	for _, obj := range w.closedBy(call) {
		delete(st.open, obj)
	}
}

// closedBy returns the span tokens a call closes: startvars among the
// arguments of a record call, or the receiver of an End call.
func (w *walker) closedBy(call *ast.CallExpr) []types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var out []types.Object
	if recordNames[sel.Sel.Name] {
		for _, arg := range call.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := w.pass.Info.Uses[id]; obj != nil && w.startVars[obj] {
						out = append(out, obj)
					}
				}
				return true
			})
		}
	}
	if sel.Sel.Name == "End" {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// scanDefer records tokens closed by a deferred call (directly or inside
// a deferred closure); those are closed on every later exit.
func (w *walker) scanDefer(call *ast.CallExpr) {
	for _, obj := range w.closedBy(call) {
		w.deferred[obj] = true
	}
	ast.Inspect(call, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok && inner != call {
			for _, obj := range w.closedBy(inner) {
				w.deferred[obj] = true
			}
		}
		return true
	})
}

// checkExit reports every span still open (and not deferred-closed) at an
// exit point.
func (w *walker) checkExit(exit token.Pos, st *state) {
	for obj, openPos := range st.open {
		if w.deferred[obj] {
			continue
		}
		key := reportKey{open: openPos, exit: exit}
		if w.reported[key] {
			continue
		}
		w.reported[key] = true
		w.pass.Reportf(exit,
			"path leaves trace span %q (opened at %s) unrecorded; record/End it on every path (telescoping exactness) or annotate //impacc:allow-spanbalance <reason>",
			obj.Name(), w.pass.Fset.Position(openPos))
	}
}

// isBeginCall matches x.Begin*(...) span constructors.
func isBeginCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && strings.HasPrefix(sel.Sel.Name, "Begin")
}

// hasBreak reports whether a block contains a break that exits the
// enclosing loop (nested loops' breaks do not count).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok == token.BREAK {
				found = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}
