package generics

// Number is a type-set constraint; the loader must type-check it without
// complaint and the fact store must see through instantiations.
type Number interface{ ~int | ~float64 }

func Sum[T Number](xs []T) T {
	var t T
	for _, x := range xs {
		t += x
	}
	return t
}

// Pair exercises generic types with methods: the Set call below resolves
// to an instantiated method object that must fold back onto this origin.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

func (p *Pair[K, V]) Set(k K, v V) {
	p.Key = k
	p.Val = v
}

func Use() int {
	p := &Pair[string, int]{}
	p.Set("a", 1)
	explicit := Sum[int]([]int{1, 2, 3}) // IndexExpr instantiation
	inferred := Sum([]float64{1, 2})     // inferred instantiation
	_ = inferred
	return explicit
}
