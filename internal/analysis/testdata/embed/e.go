package embed

// Closer is embedded into Sink: the interface's full method set must be
// flattened when looking for implementations.
type Closer interface{ Close() error }

type Sink interface {
	Closer
	Emit(n int) error
}

type fileSink struct{ n int }

func (f *fileSink) Close() error { return nil }

func (f *fileSink) Emit(n int) error {
	f.n += n
	return nil
}

// logSink satisfies Sink entirely through an embedded struct: both methods
// are promoted from fileSink.
type logSink struct {
	fileSink
	tag string
}

var (
	_ Sink = (*fileSink)(nil)
	_ Sink = (*logSink)(nil)
)

// use calls Emit as a method promoted through struct embedding; the call
// must resolve to fileSink's declared method.
func use() {
	ls := &logSink{tag: "x"}
	_ = ls.Emit(1)
}
