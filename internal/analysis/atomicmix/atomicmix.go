// Package atomicmix flags struct fields that are accessed through
// function-style sync/atomic operations somewhere but read or written
// plainly somewhere else — anywhere in the program, not just in the same
// function or package.
//
// A field like a cancellation flag or a shared budget counter is only safe
// if every access agrees on atomicity: one plain `s.n++` next to an
// `atomic.AddInt64(&s.n, 1)` elsewhere is a data race that tears silently on
// weak memory and corrupts the exact counters (event budgets, cancel flags)
// the parallel engine's determinism depends on. The repo's own convention is
// typed atomics (atomic.Bool, atomic.Int64), which this pass ignores —
// their every access is atomic by construction; the pass exists to catch the
// mixed style before it lands.
//
// The atomic-access side is collected program-wide by the shared fact store
// (see analysis.Facts.Atomics); this pass then reports every plain use of
// such a field in the current package. //impacc:allow-atomicmix <reason>
// suppresses a site.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"impacc/internal/analysis"
)

// Analyzer implements the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag plain reads/writes of struct fields that are accessed via " +
		"function-style sync/atomic operations anywhere else in the program " +
		"(mixed access tears); prefer typed atomics",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil || len(pass.Facts.Atomics) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		// First pass: selectors whose address feeds a sync/atomic call are
		// the sanctioned accesses.
		sanctioned := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
		// Second pass: any other access to an atomically-used field is mixed.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() {
				return true
			}
			uses := pass.Facts.Atomics[obj]
			if len(uses) == 0 {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere (atomic.%s at %s) but plainly here; mixed access tears — use sync/atomic at every site or a typed atomic (atomic.Int64/atomic.Bool), or annotate //impacc:allow-atomicmix <reason>",
				obj.Name(), uses[0].Op, analysis.ShortPos(uses[0].Pos))
			return true
		})
	}
	return nil
}
