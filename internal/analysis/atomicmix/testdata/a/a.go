package a

import "sync/atomic"

// counter's n field is atomic in credit() — so every other access must be
// atomic too. The mixed plain accesses below are flagged wherever they
// occur, across function boundaries.
type counter struct {
	n    int64
	m    int64 // never touched atomically; plain access is fine
	done uint32
}

func credit(c *counter) {
	atomic.AddInt64(&c.n, 1)
	atomic.StoreUint32(&c.done, 1)
}

func drainAtomically(c *counter) int64 {
	return atomic.LoadInt64(&c.n) // atomic everywhere: fine
}

func mixedWrite(c *counter) {
	c.n++ // want `field n is accessed with sync/atomic elsewhere`
	c.m++
}

func mixedRead(c *counter) int64 {
	if atomic.LoadUint32(&c.done) == 0 {
		return 0
	}
	return c.n + c.m // want `field n is accessed with sync/atomic elsewhere`
}

func mixedFlag(c *counter) bool {
	return c.done == 1 // want `field done is accessed with sync/atomic elsewhere`
}

// typed uses the repo's preferred style: typed atomics carry their
// atomicity in the type and are never flagged.
type typed struct {
	cancelled atomic.Bool
	budget    atomic.Int64
}

func typedOK(t *typed) bool {
	t.budget.Add(-1)
	return t.cancelled.Load()
}

// annotated is the reasoned escape hatch (e.g. a field read under a lock
// that happens-after every atomic writer has quiesced).
func annotated(c *counter) int64 {
	return c.n //impacc:allow-atomicmix read after Wait(): all atomic writers joined, plain read is ordered
}
