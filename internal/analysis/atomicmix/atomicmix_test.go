package atomicmix_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, filepath.Join("testdata", "a"))
}
