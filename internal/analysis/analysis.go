// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: named Analyzers run over
// type-checked packages and report position-tagged Diagnostics.
//
// The toolchain ships no x/tools in this environment, so the framework is
// built directly on the standard library: packages are discovered with
// `go list -json -deps` and type-checked with go/types (see load.go).
// The API mirrors x/tools closely enough that the passes under
// internal/analysis/... would port to the real multichecker by swapping
// imports.
//
// Suppression: a diagnostic from analyzer NAME at some line is suppressed
// by a comment
//
//	//impacc:allow-NAME <reason>
//
// on the same line or on the line immediately above the flagged position.
// The reason is mandatory; an annotation without one never suppresses
// anything and is itself reported by the driver (see run.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //impacc:allow-<Name> suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, tagged with the analyzer that produced it.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the program-wide interprocedural fact store, shared by every
	// pass of one Run invocation (see interproc.go). Nil only when a pass is
	// driven outside Run.
	Facts *Facts

	diags  []Diagnostic
	allows *allowIndex
}

// Reportf records a diagnostic at pos unless an //impacc:allow-<analyzer>
// annotation (with a reason) covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ImportedPkg resolves an identifier used as a package qualifier (the "time"
// in time.Now) to the imported package's path, or "" if x is not a package
// name.
func (p *Pass) ImportedPkg(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok || p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// allowRe matches the suppression annotation body (after comment markers
// are stripped): marker name, then a free-form reason. The reason group is
// empty for a bare annotation. Both //-style and /* */-style comments are
// recognized.
var allowRe = regexp.MustCompile(`^impacc:allow-([a-z]+)\s*(.*)$`)

// commentBody strips the comment markers off a raw comment.
func commentBody(text string) string {
	if strings.HasPrefix(text, "//") {
		return text[2:]
	}
	return strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
}

// allowSite is one parsed //impacc:allow-* comment. used flips when the
// annotation suppresses a diagnostic (or sanctions an interprocedural taint
// origin), so the driver can report annotations that no longer cover
// anything (the "allowstale" pseudo-analyzer).
type allowSite struct {
	Name   string
	Reason string
	Pos    token.Position
	used   bool
}

// allowIndex collects every suppression annotation of one Run invocation,
// across all analyzed packages (keys carry the filename, so one program-wide
// index is unambiguous).
type allowIndex struct {
	// byKey maps (analyzer, file) -> line -> annotation.
	byKey map[string]map[int]*allowSite
	// sites lists every reasoned annotation, in scan order, for staleness
	// reporting.
	sites []*allowSite
	// bad lists annotations without a reason; they suppress nothing and are
	// reported under the "allowform" pseudo-analyzer.
	bad []allowSite
}

func newAllowIndex() *allowIndex {
	return &allowIndex{byKey: map[string]map[int]*allowSite{}}
}

func allowKey(name, file string) string { return name + "\x00" + file }

// covers reports whether an annotation for analyzer name exists on the
// diagnostic's line or the line above it, marking any matching annotation
// as used.
func (ai *allowIndex) covers(name string, pos token.Position) bool {
	lines := ai.byKey[allowKey(name, pos.Filename)]
	if lines == nil {
		return false
	}
	hit := false
	if s := lines[pos.Line]; s != nil {
		s.used = true
		hit = true
	}
	if s := lines[pos.Line-1]; s != nil {
		s.used = true
		hit = true
	}
	return hit
}

// add scans every comment in the files for suppression annotations and
// folds them into the index.
func (ai *allowIndex) add(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(commentBody(c.Text))
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				site := &allowSite{Name: m[1], Reason: strings.TrimSpace(m[2]), Pos: pos}
				if site.Reason == "" {
					ai.bad = append(ai.bad, *site)
					continue
				}
				key := allowKey(site.Name, pos.Filename)
				if ai.byKey[key] == nil {
					ai.byKey[key] = map[int]*allowSite{}
				}
				ai.byKey[key][pos.Line] = site
				ai.sites = append(ai.sites, site)
			}
		}
	}
}
