// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: named Analyzers run over
// type-checked packages and report position-tagged Diagnostics.
//
// The toolchain ships no x/tools in this environment, so the framework is
// built directly on the standard library: packages are discovered with
// `go list -json -deps` and type-checked with go/types (see load.go).
// The API mirrors x/tools closely enough that the passes under
// internal/analysis/... would port to the real multichecker by swapping
// imports.
//
// Suppression: a diagnostic from analyzer NAME at some line is suppressed
// by a comment
//
//	//impacc:allow-NAME <reason>
//
// on the same line or on the line immediately above the flagged position.
// The reason is mandatory; an annotation without one never suppresses
// anything and is itself reported by the driver (see run.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //impacc:allow-<Name> suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, tagged with the analyzer that produced it.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags  []Diagnostic
	allows allowIndex
}

// Reportf records a diagnostic at pos unless an //impacc:allow-<analyzer>
// annotation (with a reason) covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ImportedPkg resolves an identifier used as a package qualifier (the "time"
// in time.Now) to the imported package's path, or "" if x is not a package
// name.
func (p *Pass) ImportedPkg(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok || p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// allowRe matches the suppression annotation body (after comment markers
// are stripped): marker name, then a free-form reason. The reason group is
// empty for a bare annotation. Both //-style and /* */-style comments are
// recognized.
var allowRe = regexp.MustCompile(`^impacc:allow-([a-z]+)\s*(.*)$`)

// commentBody strips the comment markers off a raw comment.
func commentBody(text string) string {
	if strings.HasPrefix(text, "//") {
		return text[2:]
	}
	return strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
}

// allowSite is one parsed //impacc:allow-* comment.
type allowSite struct {
	Name   string
	Reason string
	Pos    token.Position
}

// allowIndex maps (analyzer, file, line) to a suppression annotation.
type allowIndex map[string]map[int]bool

func allowKey(name, file string) string { return name + "\x00" + file }

// covers reports whether an annotation for analyzer name exists on the
// diagnostic's line or the line above it.
func (ai allowIndex) covers(name string, pos token.Position) bool {
	lines := ai[allowKey(name, pos.Filename)]
	return lines[pos.Line] || lines[pos.Line-1]
}

// buildAllowIndex scans every comment in the files for suppression
// annotations. Annotations with an empty reason are returned separately
// (they do not suppress) so the driver can report them.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []allowSite) {
	idx := allowIndex{}
	var bad []allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(commentBody(c.Text))
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				site := allowSite{Name: m[1], Reason: strings.TrimSpace(m[2]), Pos: pos}
				if site.Reason == "" {
					bad = append(bad, site)
					continue
				}
				key := allowKey(site.Name, pos.Filename)
				if idx[key] == nil {
					idx[key] = map[int]bool{}
				}
				idx[key][pos.Line] = true
			}
		}
	}
	return idx, bad
}
