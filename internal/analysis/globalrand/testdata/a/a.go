package a

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"

	"impacc/internal/sim"
)

// bad exercises the forbidden generators.
func bad() {
	_ = rand.Intn(10)                // want `math/rand\.Intn is process-global`
	_ = rand.Float64()               // want `math/rand\.Float64 is process-global`
	rand.Shuffle(3, func(i, j int) { // want `math/rand\.Shuffle is process-global`
	})
	r := rand.New(rand.NewSource(1)) // want `math/rand\.New is process-global` `math/rand\.NewSource is process-global`
	_ = r
	_ = randv2.IntN(4) // want `math/rand/v2\.IntN is process-global`
	b := make([]byte, 8)
	_, _ = crand.Read(b) // want `crypto/rand\.Read is process-global`
	_ = crand.Reader     // want `crypto/rand\.Reader is process-global`
}

// typeOnlyOK: naming math/rand types in signatures is harmless; only
// function and variable uses are randomness.
func typeOnlyOK(r *rand.Rand) int {
	return r.Intn(3)
}

// seededOK is the required pattern: explicitly seeded sim streams.
func seededOK(seed uint64) float64 {
	rng := sim.NewRNG(seed)
	task := rng.Fork()
	return task.Float64()
}

// annotated is the reasoned escape hatch.
func annotated() int {
	return rand.Intn(2) //impacc:allow-globalrand test-only helper outside any simulation path
}

// dice hides a global draw one call deep; the interprocedural closure
// taints callers and names the underlying draw.
func dice() int {
	return rand.Intn(6) // want `math/rand\.Intn is process-global`
}

func viaDice() int {
	return dice() // want `call to dice transitively draws process-global`
}

// entropy taints through a package-variable use, not a call.
func entropy() []byte {
	_ = crand.Reader // want `crypto/rand\.Reader is process-global`
	return nil
}

func viaEntropy() {
	_ = entropy() // want `call to entropy transitively draws process-global`
}

// sanctionedDice's draw is annotated at the source; the taint stops there.
func sanctionedDice() int {
	return rand.Intn(2) //impacc:allow-globalrand fixture helper outside any simulation path
}

func viaSanctionedDice() int { return sanctionedDice() }
