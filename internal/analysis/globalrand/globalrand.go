// Package globalrand forbids the process-global and host-entropy random
// number generators.
//
// math/rand's top-level functions draw from a shared source whose results
// depend on everything else the process has done (and, in math/rand/v2, on
// per-process random seeding), and crypto/rand is host entropy by design.
// Simulation randomness — EP's pair sampling, jitter models, generator
// inputs — must come from the explicitly seeded, forkable SplitMix64
// streams in internal/sim (sim.NewRNG, sim.RNG.Fork) so every run is a
// pure function of its configured seed.
package globalrand

import (
	"go/ast"
	"go/types"

	"impacc/internal/analysis"
)

// randPkgs are the forbidden generator packages. Any package-level function
// use from them is flagged: even the seeded constructors (rand.New,
// rand.NewSource) are rejected because their streams are not coordinated
// with the run's master seed or the per-task Fork discipline.
var randPkgs = map[string]string{
	"math/rand":    "math/rand",
	"math/rand/v2": "math/rand/v2",
	"crypto/rand":  "crypto/rand",
}

// Analyzer implements the globalrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand, math/rand/v2 and crypto/rand function use; all " +
		"simulation randomness must flow from the seeded sim.RNG streams",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := pass.ImportedPkg(sel.X)
			if _, bad := randPkgs[pkgPath]; !bad {
				return true
			}
			// Only function/variable uses are flagged; naming a type
			// (e.g. rand.Source in a signature) is harmless.
			obj := pass.Info.Uses[sel.Sel]
			switch obj.(type) {
			case *types.Func, *types.Var:
				pass.Reportf(sel.Pos(),
					"%s.%s is process-global/host-entropy randomness; derive a seeded stream from sim.NewRNG or RNG.Fork instead, or annotate //impacc:allow-globalrand <reason>",
					pkgPath, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
