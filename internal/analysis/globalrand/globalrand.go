// Package globalrand forbids the process-global and host-entropy random
// number generators.
//
// math/rand's top-level functions draw from a shared source whose results
// depend on everything else the process has done (and, in math/rand/v2, on
// per-process random seeding), and crypto/rand is host entropy by design.
// Simulation randomness — EP's pair sampling, jitter models, generator
// inputs — must come from the explicitly seeded, forkable SplitMix64
// streams in internal/sim (sim.NewRNG, sim.RNG.Fork) so every run is a
// pure function of its configured seed.
package globalrand

import (
	"go/ast"
	"go/types"

	"impacc/internal/analysis"
)

// randPkgs are the forbidden generator packages. Any package-level function
// use from them is flagged: even the seeded constructors (rand.New,
// rand.NewSource) are rejected because their streams are not coordinated
// with the run's master seed or the per-task Fork discipline.
var randPkgs = map[string]string{
	"math/rand":    "math/rand",
	"math/rand/v2": "math/rand/v2",
	"crypto/rand":  "crypto/rand",
}

// Analyzer implements the globalrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand, math/rand/v2 and crypto/rand function use (including " +
		"uses hidden behind helper calls); all simulation randomness must flow " +
		"from the seeded sim.RNG streams",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := pass.ImportedPkg(sel.X)
			if _, bad := randPkgs[pkgPath]; !bad {
				return true
			}
			// Only function/variable uses are flagged; naming a type
			// (e.g. rand.Source in a signature) is harmless.
			obj := pass.Info.Uses[sel.Sel]
			switch obj.(type) {
			case *types.Func, *types.Var:
				pass.Reportf(sel.Pos(),
					"%s.%s is process-global/host-entropy randomness; derive a seeded stream from sim.NewRNG or RNG.Fork instead, or annotate //impacc:allow-globalrand <reason>",
					pkgPath, sel.Sel.Name)
			}
			return true
		})
	}
	if pass.Facts == nil {
		return nil
	}
	// Interprocedural half: helpers that draw process-global randomness
	// (by calling into a forbidden package or using one of its variables,
	// e.g. crypto/rand.Reader) taint every transitive caller. Annotated
	// origins sanction their callers.
	taint := pass.Facts.Reach("globalrand", func(s *analysis.FuncSummary) (analysis.Origin, bool) {
		for _, c := range s.Calls {
			fn := c.Callee
			if fn.Pkg() == nil {
				continue
			}
			if _, bad := randPkgs[fn.Pkg().Path()]; !bad {
				continue
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				continue // methods on a caller-owned source (rand.Rand) are seeded explicitly
			}
			pos := s.Pkg.Fset.Position(c.Pos)
			if pass.Facts.Allowed("globalrand", pos) {
				continue
			}
			return analysis.Origin{Func: s.Func, Pos: pos,
				What: fn.Pkg().Path() + "." + fn.Name()}, true
		}
		for _, vu := range s.VarUses {
			if vu.Var.Pkg() == nil {
				continue
			}
			if _, bad := randPkgs[vu.Var.Pkg().Path()]; !bad {
				continue
			}
			pos := s.Pkg.Fset.Position(vu.Pos)
			if pass.Facts.Allowed("globalrand", pos) {
				continue
			}
			return analysis.Origin{Func: s.Func, Pos: pos,
				What: vu.Var.Pkg().Path() + "." + vu.Var.Name()}, true
		}
		return analysis.Origin{}, false
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.Info, call)
			if callee == nil {
				return true
			}
			if o, ok := taint[callee]; ok {
				pass.Reportf(call.Pos(),
					"call to %s transitively draws process-global/host-entropy randomness (%s at %s); thread a seeded sim.RNG through instead, or annotate the underlying site //impacc:allow-globalrand <reason>",
					callee.Name(), o.What, analysis.ShortPos(o.Pos))
			}
			return true
		})
	}
	return nil
}
