package globalrand_test

import (
	"path/filepath"
	"testing"

	"impacc/internal/analysis/analysistest"
	"impacc/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, filepath.Join("testdata", "a"))
}
