package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree[int, string]
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has wrong len/height")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, _, ok := tr.Floor(1); ok {
		t.Fatal("Floor on empty tree returned ok")
	}
	if _, _, ok := tr.Ceil(1); ok {
		t.Fatal("Ceil on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
}

func TestPutGetDelete(t *testing.T) {
	var tr Tree[uint64, int]
	for i := 0; i < 100; i++ {
		tr.Put(uint64(i*7%100), i)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(uint64(i * 7 % 100))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*7%100, v, ok)
		}
	}
	// Overwrite.
	tr.Put(5, 999)
	if v, _ := tr.Get(5); v != 999 {
		t.Fatal("Put did not overwrite")
	}
	if tr.Len() != 100 {
		t.Fatal("overwrite changed size")
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("len after deletes = %d, want 50", tr.Len())
	}
	if !tr.checkInvariant() {
		t.Fatal("invariant violated after deletes")
	}
}

func TestFloorCeil(t *testing.T) {
	var tr Tree[int, string]
	for _, k := range []int{10, 20, 30, 40} {
		tr.Put(k, "v")
	}
	cases := []struct {
		q       int
		floor   int
		floorOK bool
		ceil    int
		ceilOK  bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{40, 40, true, 40, true},
		{45, 40, true, 0, false},
	}
	for _, c := range cases {
		k, _, ok := tr.Floor(c.q)
		if ok != c.floorOK || (ok && k != c.floor) {
			t.Errorf("Floor(%d) = %d,%v want %d,%v", c.q, k, ok, c.floor, c.floorOK)
		}
		k, _, ok = tr.Ceil(c.q)
		if ok != c.ceilOK || (ok && k != c.ceil) {
			t.Errorf("Ceil(%d) = %d,%v want %d,%v", c.q, k, ok, c.ceil, c.ceilOK)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	var tr Tree[int, int]
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, k := range perm {
		tr.Put(k, k*2)
	}
	var keys []int
	tr.Ascend(func(k, v int) bool {
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		keys = append(keys, k)
		return true
	})
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Ascend not in order")
	}
	if len(keys) != 500 {
		t.Fatalf("visited %d keys", len(keys))
	}
	// Early stop.
	count := 0
	tr.Ascend(func(k, v int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestMin(t *testing.T) {
	var tr Tree[int, int]
	tr.Put(5, 0)
	tr.Put(2, 0)
	tr.Put(9, 0)
	k, _, ok := tr.Min()
	if !ok || k != 2 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
}

func TestBalancedHeight(t *testing.T) {
	var tr Tree[int, int]
	// Sequential insert is the worst case for naive BSTs.
	for i := 0; i < 1<<12; i++ {
		tr.Put(i, i)
	}
	// AVL height bound: 1.44*log2(n+2). For 4096, that's ~18.
	if h := tr.Height(); h > 18 {
		t.Fatalf("height = %d for 4096 sequential keys, not balanced", h)
	}
	if !tr.checkInvariant() {
		t.Fatal("invariant violated")
	}
}

// Property: tree behaves exactly like a map plus sorted order, under random
// interleavings of put and delete.
func TestTreeMatchesMapProperty(t *testing.T) {
	f := func(ops []int16) bool {
		var tr Tree[int16, int]
		ref := map[int16]int{}
		for i, k := range ops {
			if i%3 == 2 {
				d1 := tr.Delete(k)
				_, d2 := ref[k]
				delete(ref, k)
				if d1 != d2 {
					return false
				}
			} else {
				tr.Put(k, i)
				ref[k] = i
			}
			if !tr.checkInvariant() {
				return false
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Floor agrees with a linear scan.
		for _, q := range ops {
			var want int16
			found := false
			for k := range ref {
				if k <= q && (!found || k > want) {
					want, found = k, true
				}
			}
			k, _, ok := tr.Floor(q)
			if ok != found || (ok && k != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
