// Package avl implements a self-balancing (AVL) binary search tree with
// ordered keys. The paper's present table uses "two balanced binary trees
// indexed by the host address and device address ... to reduce the
// worst-case search time" (§3.4, Figure 3); this package is that balanced
// tree, also reused by the unified virtual address space's segment map.
package avl

import "cmp"

// Tree is an AVL tree mapping K to V. The zero value is an empty tree.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	size int
}

type node[K cmp.Ordered, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	height      int
}

func height[K cmp.Ordered, V any](n *node[K, V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node[K, V]) fix() {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func (n *node[K, V]) balance() int { return height(n.left) - height(n.right) }

func rotateRight[K cmp.Ordered, V any](y *node[K, V]) *node[K, V] {
	x := y.left
	y.left = x.right
	x.right = y
	y.fix()
	x.fix()
	return x
}

func rotateLeft[K cmp.Ordered, V any](x *node[K, V]) *node[K, V] {
	y := x.right
	x.right = y.left
	y.left = x
	x.fix()
	y.fix()
	return y
}

func rebalance[K cmp.Ordered, V any](n *node[K, V]) *node[K, V] {
	n.fix()
	b := n.balance()
	switch {
	case b > 1:
		if n.left.balance() < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case b < -1:
		if n.right.balance() > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// Put inserts or replaces the value for key.
func (t *Tree[K, V]) Put(key K, val V) {
	t.root = t.put(t.root, key, val)
}

func (t *Tree[K, V]) put(n *node[K, V], key K, val V) *node[K, V] {
	if n == nil {
		t.size++
		return &node[K, V]{key: key, val: val, height: 1}
	}
	switch {
	case key < n.key:
		n.left = t.put(n.left, key, val)
	case key > n.key:
		n.right = t.put(n.right, key, val)
	default:
		n.val = val
		return n
	}
	return rebalance(n)
}

// Get returns the value stored at key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	var deleted bool
	t.root, deleted = t.del(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[K, V]) del(n *node[K, V], key K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = t.del(n.left, key)
	case key > n.key:
		n.right, deleted = t.del(n.right, key)
	default:
		deleted = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.key, n.val = s.key, s.val
		n.right, _ = t.del(n.right, s.key)
	}
	if !deleted {
		return n, false
	}
	return rebalance(n), true
}

// Floor returns the entry with the greatest key <= key.
func (t *Tree[K, V]) Floor(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			best = n
			n = n.right
		default:
			return n.key, n.val, true
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Ceil returns the entry with the smallest key >= key.
func (t *Tree[K, V]) Ceil(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		switch {
		case key > n.key:
			n = n.right
		case key < n.key:
			best = n
			n = n.left
		default:
			return n.key, n.val, true
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Min returns the smallest entry.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Ascend visits entries in increasing key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(K, V) bool) {
	ascend(t.root, fn)
}

func ascend[K cmp.Ordered, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// Height returns the root height (0 for empty). Exposed for balance tests.
func (t *Tree[K, V]) Height() int { return height(t.root) }

// checkInvariant verifies AVL balance and BST order, returning false on any
// violation. Used by tests.
func (t *Tree[K, V]) checkInvariant() bool {
	ok := true
	var walk func(n *node[K, V]) int
	walk = func(n *node[K, V]) int {
		if n == nil {
			return 0
		}
		hl, hr := walk(n.left), walk(n.right)
		h := max(hl, hr) + 1
		if n.height != h {
			ok = false
		}
		if hl-hr > 1 || hr-hl > 1 {
			ok = false
		}
		if n.left != nil && !(n.left.key < n.key) {
			ok = false
		}
		if n.right != nil && !(n.key < n.right.key) {
			ok = false
		}
		return h
	}
	walk(t.root)
	return ok
}
