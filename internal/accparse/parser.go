package accparse

import (
	"fmt"
	"strings"
)

// ParseError reports a directive syntax or validation failure.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Parse scans source for OpenACC directives (including the IMPACC mpi
// extension), parses and validates them, and collects the global variables
// requiring thread-local rewriting.
func Parse(name, src string) (*File, error) {
	f := &File{Name: name}
	lines := joinContinuations(src)
	for i := 0; i < len(lines); i++ {
		text := strings.TrimSpace(lines[i].Text)
		if !strings.HasPrefix(text, "#pragma") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, "#pragma"))
		if !strings.HasPrefix(rest, "acc") {
			continue // other pragma families are passed through
		}
		body := strings.TrimSpace(strings.TrimPrefix(rest, "acc"))
		d, err := parseDirective(name, body, lines[i].Line)
		if err != nil {
			return nil, err
		}
		// Attach the following statement (for compute and mpi directives).
		for j := i + 1; j < len(lines); j++ {
			stmt := strings.TrimSpace(lines[j].Text)
			if stmt == "" {
				continue
			}
			d.Stmt = stmt
			if d.Kind == DirMPI {
				call, err := parseCall(name, stmt, lines[j].Line)
				if err != nil {
					return nil, err
				}
				d.MPICall = call
			}
			break
		}
		if err := validate(name, d); err != nil {
			return nil, err
		}
		if d.Kind == DirData {
			d.EndLine = regionEnd(lines, i+1)
		}
		f.Directives = append(f.Directives, d)
	}
	f.Globals = findGlobals(src)
	return f, nil
}

// directive name table, longest match first for two-word forms.
var dirNames = []struct {
	words []string
	kind  DirKind
}{
	{[]string{"enter", "data"}, DirEnterData},
	{[]string{"exit", "data"}, DirExitData},
	{[]string{"parallel"}, DirParallel},
	{[]string{"kernels"}, DirKernels},
	{[]string{"data"}, DirData},
	{[]string{"update"}, DirUpdate},
	{[]string{"wait"}, DirWait},
	{[]string{"loop"}, DirLoop},
	{[]string{"mpi"}, DirMPI},
}

func parseDirective(file, body string, line int) (*Directive, error) {
	toks, err := lex(body, line)
	if err != nil {
		return nil, &ParseError{file, line, err.Error()}
	}
	p := &tokParser{file: file, line: line, toks: toks}
	var kind DirKind = -1
	for _, dn := range dirNames {
		if p.peekIdents(dn.words) {
			for range dn.words {
				p.next()
			}
			kind = dn.kind
			break
		}
	}
	if kind < 0 {
		return nil, &ParseError{file, line, fmt.Sprintf("unknown acc directive %q", body)}
	}
	d := &Directive{Kind: kind, Line: line}
	// "parallel loop" / "kernels loop" combined forms swallow the loop word.
	if (kind == DirParallel || kind == DirKernels) && p.peekIdents([]string{"loop"}) {
		p.next()
	}
	// wait may take an immediate (queue) argument list.
	if kind == DirWait && p.peek().Kind == TokLParen {
		args, err := p.parenArgs()
		if err != nil {
			return nil, err
		}
		d.Clauses = append(d.Clauses, Clause{Name: "wait", Args: args, Line: line})
	}
	for p.peek().Kind != TokEOF {
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		c.Line = line
		d.Clauses = append(d.Clauses, c)
	}
	return d, nil
}

type tokParser struct {
	file string
	line int
	toks []Token
	pos  int
}

func (p *tokParser) peek() Token { return p.toks[p.pos] }
func (p *tokParser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *tokParser) peekIdents(words []string) bool {
	for i, w := range words {
		if p.pos+i >= len(p.toks) {
			return false
		}
		t := p.toks[p.pos+i]
		if t.Kind != TokIdent || t.Text != w {
			return false
		}
	}
	return true
}

func (p *tokParser) errf(format string, args ...interface{}) error {
	return &ParseError{p.file, p.line, fmt.Sprintf(format, args...)}
}

// clause parses "name" or "name(arg, arg, ...)". Argument expressions keep
// their raw text, with nested parentheses/brackets balanced.
func (p *tokParser) clause() (Clause, error) {
	t := p.next()
	if t.Kind == TokComma {
		t = p.next() // clause lists may be comma-separated
	}
	if t.Kind != TokIdent {
		return Clause{}, p.errf("expected clause name, got %v %q", t.Kind, t.Text)
	}
	c := Clause{Name: t.Text}
	if p.peek().Kind == TokLParen {
		args, err := p.parenArgs()
		if err != nil {
			return Clause{}, err
		}
		c.Args = args
	}
	return c, nil
}

// parenArgs consumes "( expr, expr, ... )" returning raw expressions.
func (p *tokParser) parenArgs() ([]string, error) {
	if t := p.next(); t.Kind != TokLParen {
		return nil, p.errf("expected '(', got %q", t.Text)
	}
	var args []string
	var cur []string
	depth := 0
	for {
		t := p.next()
		switch t.Kind {
		case TokEOF:
			return nil, p.errf("unterminated clause argument list")
		case TokLParen, TokLBracket:
			depth++
			cur = append(cur, t.Text)
		case TokRBracket:
			depth--
			cur = append(cur, t.Text)
		case TokRParen:
			if depth == 0 {
				if len(cur) > 0 {
					args = append(args, joinExpr(cur))
				}
				return args, nil
			}
			depth--
			cur = append(cur, t.Text)
		case TokComma:
			if depth == 0 {
				if len(cur) == 0 {
					return nil, p.errf("empty clause argument")
				}
				args = append(args, joinExpr(cur))
				cur = nil
			} else {
				cur = append(cur, t.Text)
			}
		default:
			cur = append(cur, t.Text)
		}
	}
}

// joinExpr reassembles expression tokens with minimal spacing.
func joinExpr(parts []string) string {
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 && wordy(parts[i-1]) && wordy(p) {
			sb.WriteByte(' ')
		}
		sb.WriteString(p)
	}
	return sb.String()
}

func wordy(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// parseCall parses a C call statement like
// "MPI_Isend(buf0, n, MPI_DOUBLE, dst, tag, comm, &req);".
func parseCall(file, stmt string, line int) (*CallExpr, error) {
	open := strings.Index(stmt, "(")
	if open < 0 {
		return nil, &ParseError{file, line,
			fmt.Sprintf("'#pragma acc mpi' must immediately precede an MPI call, got %q", stmt)}
	}
	name := strings.TrimSpace(stmt[:open])
	// Allow "err = MPI_Send(...)" forms.
	if eq := strings.LastIndex(name, "="); eq >= 0 {
		name = strings.TrimSpace(name[eq+1:])
	}
	// Truncate at the balanced closing paren (drop "; // ..." tails).
	depth := 0
	end := -1
	for i := open; i < len(stmt); i++ {
		switch stmt[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, &ParseError{file, line, fmt.Sprintf("unbalanced call %q", stmt)}
	}
	toks, err := lex(stmt[open:end+1], line)
	if err != nil {
		return nil, &ParseError{file, line, err.Error()}
	}
	p := &tokParser{file: file, line: line, toks: toks}
	args, err := p.parenArgs()
	if err != nil {
		return nil, err
	}
	return &CallExpr{Name: name, Args: args, Line: line}, nil
}

// regionEnd finds the closing line of the brace block following a
// structured data directive, returning 0 if none is found.
func regionEnd(lines []struct {
	Text string
	Line int
}, from int) int {
	depth := 0
	opened := false
	for i := from; i < len(lines); i++ {
		for _, ch := range lines[i].Text {
			switch ch {
			case '{':
				depth++
				opened = true
			case '}':
				depth--
				if opened && depth == 0 {
					return lines[i].Line
				}
			}
		}
		if !opened && strings.TrimSpace(lines[i].Text) != "" &&
			!strings.HasPrefix(strings.TrimSpace(lines[i].Text), "{") {
			// A data construct must be followed by a block; a plain
			// statement means we cannot delimit the region.
			return 0
		}
	}
	return 0
}
