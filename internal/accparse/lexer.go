// Package accparse is the front-end of the IMPACC source-to-source
// compiler (paper §3.1): it scans C-like source for OpenACC directives —
// including the paper's new "#pragma acc mpi" extension (§3.5) — parses
// them into an AST, validates clause legality, lowers compute and data
// constructs into runtime-call plans, and performs the global-to-
// thread-local variable analysis required to run MPI tasks as threads
// ("The compiler translates all global and static variables in the host
// program source code to thread-local variables").
package accparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies directive tokens.
type TokenKind int

// Token kinds.
const (
	TokIdent TokenKind = iota
	TokNumber
	TokLParen
	TokRParen
	TokComma
	TokColon
	TokStar
	TokPlus
	TokMinus
	TokSlash
	TokLBracket
	TokRBracket
	TokDot
	TokArrow
	TokAmp
	TokPipe
	TokString
	TokEOF
)

func (k TokenKind) String() string {
	names := map[TokenKind]string{
		TokIdent: "identifier", TokNumber: "number", TokLParen: "'('",
		TokRParen: "')'", TokComma: "','", TokColon: "':'", TokStar: "'*'",
		TokPlus: "'+'", TokMinus: "'-'", TokSlash: "'/'",
		TokLBracket: "'['", TokRBracket: "']'", TokDot: "'.'",
		TokArrow: "'->'", TokAmp: "'&'", TokPipe: "'|'",
		TokString: "string", TokEOF: "end of directive",
	}
	return names[k]
}

// Token is one lexeme of a directive line.
type Token struct {
	Kind TokenKind
	Text string
	Col  int
}

// LexError reports a tokenization failure.
type LexError struct {
	Line int
	Col  int
	Msg  string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// lex tokenizes one logical directive line (after joining continuations).
func lex(s string, lineNo int) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, Token{TokIdent, s[i:j], i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == 'x' || s[j] == 'X' ||
				('a' <= s[j] && s[j] <= 'f') || ('A' <= s[j] && s[j] <= 'F') || s[j] == '.') {
				j++
			}
			toks = append(toks, Token{TokNumber, s[i:j], i})
			i = j
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(s) {
				return nil, &LexError{lineNo, i, "unterminated string"}
			}
			toks = append(toks, Token{TokString, s[i : j+1], i})
			i = j + 1
		default:
			kind := TokenKind(-1)
			text := string(c)
			switch c {
			case '(':
				kind = TokLParen
			case ')':
				kind = TokRParen
			case ',':
				kind = TokComma
			case ':':
				kind = TokColon
			case '*':
				kind = TokStar
			case '+':
				kind = TokPlus
			case '-':
				if i+1 < len(s) && s[i+1] == '>' {
					kind, text = TokArrow, "->"
					i++
				} else {
					kind = TokMinus
				}
			case '/':
				kind = TokSlash
			case '[':
				kind = TokLBracket
			case ']':
				kind = TokRBracket
			case '.':
				kind = TokDot
			case '&':
				kind = TokAmp
			case '|':
				kind = TokPipe
			}
			if kind < 0 {
				return nil, &LexError{lineNo, i, fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, Token{kind, text, i})
			i++
		}
	}
	toks = append(toks, Token{TokEOF, "", len(s)})
	return toks, nil
}

// joinContinuations merges backslash-continued physical lines into logical
// lines, returning each with its starting line number (1-based).
func joinContinuations(src string) []struct {
	Text string
	Line int
} {
	raw := strings.Split(src, "\n")
	var out []struct {
		Text string
		Line int
	}
	for i := 0; i < len(raw); i++ {
		start := i
		line := raw[i]
		for strings.HasSuffix(strings.TrimRight(line, " \t"), "\\") && i+1 < len(raw) {
			line = strings.TrimRight(strings.TrimRight(line, " \t"), "\\") + " " + raw[i+1]
			i++
		}
		out = append(out, struct {
			Text string
			Line int
		}{line, start + 1})
	}
	return out
}
