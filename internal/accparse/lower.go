package accparse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OpKind is a lowered runtime operation.
type OpKind int

// Lowered operation kinds, mapping 1:1 onto the acc/core runtime entry
// points the generated host program would call.
const (
	OpDataCopyin OpKind = iota
	OpDataCreate
	OpDataPresent
	OpDataCopyout
	OpDataDelete
	OpUpdateDevice
	OpUpdateHost
	OpLaunch
	OpWaitQueue
	OpWaitAll
	OpMPIUnified
)

func (k OpKind) String() string {
	switch k {
	case OpDataCopyin:
		return "data_copyin"
	case OpDataCreate:
		return "data_create"
	case OpDataPresent:
		return "data_present"
	case OpDataCopyout:
		return "data_copyout"
	case OpDataDelete:
		return "data_delete"
	case OpUpdateDevice:
		return "update_device"
	case OpUpdateHost:
		return "update_host"
	case OpLaunch:
		return "launch"
	case OpWaitQueue:
		return "wait_queue"
	case OpWaitAll:
		return "wait_all"
	default:
		return "mpi_unified"
	}
}

// SyncQueue marks a synchronous operation; SymbolicQueue an async clause
// whose queue is a runtime expression.
const (
	SyncQueue     = -1
	SymbolicQueue = -2
)

// Op is one lowered runtime call.
type Op struct {
	Kind OpKind
	// Args are the data expressions the op touches (array sections etc.).
	Args []string
	// Queue is the async queue: SyncQueue, a literal number, or
	// SymbolicQueue with the expression in QueueExpr.
	Queue     int
	QueueExpr string
	// Kernel labels launches ("kernels@line12"); geometry clauses ride in
	// Args.
	Kernel string
	// Call is the annotated MPI call for OpMPIUnified.
	Call *CallExpr
	// SendDevice/SendReadOnly/RecvDevice/RecvReadOnly carry the IMPACC
	// directive attributes.
	SendDevice, SendReadOnly bool
	RecvDevice, RecvReadOnly bool
	Line                     int
}

func (o Op) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", o.Kind)
	if o.Kernel != "" {
		fmt.Fprintf(&sb, " %s", o.Kernel)
	}
	if o.Call != nil {
		fmt.Fprintf(&sb, " %s", o.Call)
	}
	if len(o.Args) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(o.Args, ", "))
	}
	switch {
	case o.Queue == SymbolicQueue:
		fmt.Fprintf(&sb, " async(%s)", o.QueueExpr)
	case o.Queue >= 0:
		fmt.Fprintf(&sb, " async(%d)", o.Queue)
	}
	var flags []string
	if o.SendDevice {
		flags = append(flags, "sendbuf:device")
	}
	if o.SendReadOnly {
		flags = append(flags, "sendbuf:readonly")
	}
	if o.RecvDevice {
		flags = append(flags, "recvbuf:device")
	}
	if o.RecvReadOnly {
		flags = append(flags, "recvbuf:readonly")
	}
	if len(flags) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(flags, " "))
	}
	return sb.String()
}

// queueOf extracts the async queue from a directive.
func queueOf(d *Directive) (int, string) {
	c, ok := d.Clause("async")
	if !ok {
		return SyncQueue, ""
	}
	if len(c.Args) == 0 {
		return 0, "" // async with no argument uses the default queue
	}
	if n, err := strconv.Atoi(c.Args[0]); err == nil {
		return n, ""
	}
	return SymbolicQueue, c.Args[0]
}

// Lower translates the parsed directives into the runtime-call plan the
// generated host program performs, in source order.
func Lower(f *File) ([]Op, error) {
	var ops []Op
	for _, d := range f.Directives {
		q, qe := queueOf(d)
		emitData := func(kind OpKind, clause string) {
			if c, ok := d.Clause(clause); ok {
				ops = append(ops, Op{Kind: kind, Args: c.Args, Queue: q, QueueExpr: qe, Line: d.Line})
			}
		}
		switch d.Kind {
		case DirParallel, DirKernels:
			emitData(OpDataCopyin, "copyin")
			emitData(OpDataCopyin, "copy")
			emitData(OpDataCreate, "create")
			emitData(OpDataPresent, "present")
			launch := Op{
				Kind:   OpLaunch,
				Kernel: fmt.Sprintf("%s@line%d", strings.ReplaceAll(d.Kind.String(), " ", ""), d.Line),
				Queue:  q, QueueExpr: qe, Line: d.Line,
			}
			for _, g := range []string{"num_gangs", "num_workers", "vector_length", "gang", "worker", "vector", "collapse"} {
				if c, ok := d.Clause(g); ok {
					launch.Args = append(launch.Args, c.String())
				}
			}
			ops = append(ops, launch)
			// Region-end copies (implicit barrier of the construct).
			emitData(OpDataCopyout, "copyout")
			emitData(OpDataCopyout, "copy")
		case DirEnterData:
			emitData(OpDataCopyin, "copyin")
			emitData(OpDataCopyin, "copy")
			emitData(OpDataCreate, "create")
			emitData(OpDataPresent, "present")
		case DirData:
			emitData(OpDataCopyin, "copyin")
			emitData(OpDataCopyin, "copy")
			emitData(OpDataCreate, "create")
			emitData(OpDataPresent, "present")
			// Structured region: releases happen at the closing brace.
			if d.EndLine > 0 {
				end := func(kind OpKind, clause string) {
					if c, ok := d.Clause(clause); ok {
						ops = append(ops, Op{Kind: kind, Args: c.Args,
							Queue: SyncQueue, Line: d.EndLine})
					}
				}
				end(OpDataCopyout, "copyout")
				end(OpDataCopyout, "copy")
				end(OpDataDelete, "copyin")
				end(OpDataDelete, "create")
				end(OpDataDelete, "present")
			}
		case DirExitData:
			emitData(OpDataCopyout, "copyout")
			emitData(OpDataDelete, "delete")
		case DirUpdate:
			emitData(OpUpdateDevice, "device")
			emitData(OpUpdateHost, "self")
			emitData(OpUpdateHost, "host")
		case DirWait:
			// "wait(q)" blocks the host; "wait(q) async(r)" is a
			// device-side cross-queue dependency (queue r waits for q).
			if c, ok := d.Clause("wait"); ok && len(c.Args) > 0 {
				ops = append(ops, Op{Kind: OpWaitQueue, Args: c.Args, Queue: q, QueueExpr: qe, Line: d.Line})
			} else {
				ops = append(ops, Op{Kind: OpWaitAll, Queue: q, QueueExpr: qe, Line: d.Line})
			}
		case DirLoop:
			// Loop directives refine an enclosing compute construct; they
			// lower to nothing on their own.
		case DirMPI:
			op := Op{Kind: OpMPIUnified, Call: d.MPICall, Queue: q, QueueExpr: qe, Line: d.Line}
			if c, ok := d.Clause("sendbuf"); ok {
				op.SendDevice = c.Has("device")
				op.SendReadOnly = c.Has("readonly")
			}
			if c, ok := d.Clause("recvbuf"); ok {
				op.RecvDevice = c.Has("device")
				op.RecvReadOnly = c.Has("readonly")
			}
			if _, ok := d.Clause("async"); !ok {
				op.Queue = SyncQueue
			}
			ops = append(ops, op)
		}
	}
	// Region-end ops land at their closing lines: restore source order.
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Line < ops[j].Line })
	return ops, nil
}
