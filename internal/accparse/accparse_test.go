package accparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// figure4c is the paper's Figure 4 (c) listing.
const figure4c = `
/* (c) IMPACC Unified Activity Queue */
#pragma acc kernels loop async(1)
for (i = 0; i < n; i++) { buf0[i] = 1; }
#pragma acc mpi sendbuf(device) async(1)
MPI_Isend(buf0, cnt, MPI_DOUBLE, dst, tag, comm, &req[0]);
#pragma acc mpi recvbuf(device) async(1)
MPI_Irecv(buf1, cnt, MPI_DOUBLE, src, tag, comm, &req[1]);
#pragma acc kernels loop async(1)
for (i = 0; i < n; i++) { x = buf1[i]; }
`

func TestParseFigure4c(t *testing.T) {
	f, err := Parse("fig4c.c", figure4c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Directives) != 4 {
		t.Fatalf("directives = %d, want 4", len(f.Directives))
	}
	kinds := []DirKind{DirKernels, DirMPI, DirMPI, DirKernels}
	for i, d := range f.Directives {
		if d.Kind != kinds[i] {
			t.Fatalf("directive %d kind = %v, want %v", i, d.Kind, kinds[i])
		}
		if c, ok := d.Clause("async"); !ok || c.Args[0] != "1" {
			t.Fatalf("directive %d missing async(1)", i)
		}
	}
	send := f.Directives[1]
	if send.MPICall == nil || send.MPICall.Name != "MPI_Isend" {
		t.Fatalf("send call = %+v", send.MPICall)
	}
	if len(send.MPICall.Args) != 7 || send.MPICall.Args[0] != "buf0" || send.MPICall.Args[6] != "&req[0]" {
		t.Fatalf("send args = %v", send.MPICall.Args)
	}
	if c, _ := send.Clause("sendbuf"); !c.Has("device") {
		t.Fatal("sendbuf(device) lost")
	}
	if len(f.MPIDirectives()) != 2 {
		t.Fatal("MPIDirectives filter wrong")
	}
}

func TestParseSendbufReadonlySyntax(t *testing.T) {
	// The Figure 7 shorthand: sendbuf(readonly) and both attributes.
	src := `
#pragma acc mpi sendbuf(device, readonly)
MPI_Send(src, 100, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD);
#pragma acc mpi recvbuf(readonly)
MPI_Recv(dst, 10, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD, &st);
`
	f, err := Parse("x.c", src)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Directives[0]
	c, _ := s.Clause("sendbuf")
	if !c.Has("device") || !c.Has("readonly") {
		t.Fatalf("sendbuf attrs = %v", c.Args)
	}
	r := f.Directives[1]
	c, _ = r.Clause("recvbuf")
	if c.Has("device") || !c.Has("readonly") {
		t.Fatalf("recvbuf attrs = %v", c.Args)
	}
}

func TestParseDataConstructs(t *testing.T) {
	src := `
#pragma acc enter data copyin(a[0:n], b[0:n*m]) create(c[0:n])
#pragma acc update device(a[0:n]) async(2)
#pragma acc update self(c[0:n])
#pragma acc exit data copyout(c[0:n]) delete(a, b)
#pragma acc wait(2)
#pragma acc wait
`
	f, err := Parse("d.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Directives) != 6 {
		t.Fatalf("directives = %d", len(f.Directives))
	}
	enter := f.Directives[0]
	c, _ := enter.Clause("copyin")
	if len(c.Args) != 2 || c.Args[0] != "a[0:n]" || c.Args[1] != "b[0:n*m]" {
		t.Fatalf("copyin args = %v", c.Args)
	}
	ops, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []OpKind{OpDataCopyin, OpDataCreate, OpUpdateDevice, OpUpdateHost,
		OpDataCopyout, OpDataDelete, OpWaitQueue, OpWaitAll}
	if len(ops) != len(kinds) {
		t.Fatalf("ops = %d (%v), want %d", len(ops), ops, len(kinds))
	}
	for i, k := range kinds {
		if ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v", i, ops[i].Kind, k)
		}
	}
	if ops[2].Queue != 2 {
		t.Fatalf("update async queue = %d", ops[2].Queue)
	}
	if ops[3].Queue != SyncQueue {
		t.Fatal("sync update must have SyncQueue")
	}
}

func TestParseComputeConstruct(t *testing.T) {
	src := `
#pragma acc parallel loop num_gangs(128) vector_length(256) copyin(a[0:n]) copyout(b[0:n]) async(3)
for (i = 0; i < n; i++) b[i] = a[i];
`
	f, err := Parse("k.c", src)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Directives[0]
	if d.Kind != DirParallel {
		t.Fatalf("kind = %v", d.Kind)
	}
	if !strings.HasPrefix(d.Stmt, "for") {
		t.Fatalf("attached stmt = %q", d.Stmt)
	}
	ops, _ := Lower(f)
	// copyin, launch, copyout.
	if len(ops) != 3 || ops[0].Kind != OpDataCopyin || ops[1].Kind != OpLaunch || ops[2].Kind != OpDataCopyout {
		t.Fatalf("ops = %v", ops)
	}
	if ops[1].Queue != 3 {
		t.Fatal("launch queue lost")
	}
	found := false
	for _, a := range ops[1].Args {
		if a == "num_gangs(128)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("launch geometry lost: %v", ops[1].Args)
	}
}

func TestLineContinuations(t *testing.T) {
	src := "#pragma acc mpi sendbuf(device) \\\n    async(1)\nMPI_Isend(b, n, MPI_DOUBLE, d, t, c, &r);\n"
	f, err := Parse("cont.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Directives) != 1 {
		t.Fatalf("directives = %d", len(f.Directives))
	}
	if _, ok := f.Directives[0].Clause("async"); !ok {
		t.Fatal("continued async clause lost")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", "#pragma acc bogus\n", "unknown acc directive"},
		{"bad clause", "#pragma acc update frobnicate(x)\n", "not valid"},
		{"update without direction", "#pragma acc update async(1)\n", "requires device, self, or host"},
		{"enter data empty", "#pragma acc enter data async(1)\n", "requires at least one data clause"},
		{"exit data empty", "#pragma acc exit data async(1)\n", "requires copyout or delete"},
		{"mpi no call", "#pragma acc mpi sendbuf(device)\nx = 1;\n", "must immediately precede an MPI call"},
		{"mpi bad attr", "#pragma acc mpi sendbuf(gpu)\nMPI_Send(b, 1, MPI_INT, 0, 0, c);\n", "invalid sendbuf attribute"},
		{"mpi empty buf clause", "#pragma acc mpi sendbuf()\nMPI_Send(b, 1, MPI_INT, 0, 0, c);\n", "at least one attribute"},
		{"async on blocking", "#pragma acc mpi sendbuf(device) async(1)\nMPI_Send(b, 1, MPI_INT, 0, 0, c);\n", "async requires a non-blocking MPI call"},
		{"sendbuf on recv", "#pragma acc mpi sendbuf(device)\nMPI_Recv(b, 1, MPI_INT, 0, 0, c, &s);\n", "no send buffer"},
		{"recvbuf on send", "#pragma acc mpi recvbuf(device)\nMPI_Send(b, 1, MPI_INT, 0, 0, c);\n", "no receive buffer"},
		{"double async arg", "#pragma acc kernels async(1, 2)\nfor(;;);\n", "at most one queue"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("e.c", c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want contains %q", err, c.wantErr)
			}
		})
	}
}

func TestMPIAsyncDefaultQueue(t *testing.T) {
	src := "#pragma acc mpi async\nMPI_Irecv(b, 1, MPI_INT, 0, 0, c, &r);\n"
	f, err := Parse("q.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := Lower(f)
	if len(ops) != 1 || ops[0].Queue != 0 {
		t.Fatalf("async-without-arg queue = %+v", ops)
	}
}

func TestSymbolicAsyncQueue(t *testing.T) {
	src := "#pragma acc kernels async(q + 1)\nfor(;;);\n"
	f, err := Parse("s.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := Lower(f)
	if ops[0].Queue != SymbolicQueue || ops[0].QueueExpr != "q+1" {
		t.Fatalf("symbolic queue = %+v", ops[0])
	}
	if !strings.Contains(ops[0].String(), "async(q+1)") {
		t.Fatalf("op string = %q", ops[0])
	}
}

func TestOpStringFlags(t *testing.T) {
	src := "#pragma acc mpi sendbuf(device, readonly) async(2)\nMPI_Isend(b, 1, MPI_INT, 0, 0, c, &r);\n"
	f, err := Parse("f.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := Lower(f)
	s := ops[0].String()
	for _, want := range []string{"mpi_unified", "MPI_Isend", "async(2)", "sendbuf:device", "sendbuf:readonly"} {
		if !strings.Contains(s, want) {
			t.Fatalf("op string %q missing %q", s, want)
		}
	}
}

func TestFindGlobals(t *testing.T) {
	src := `
#include <stdio.h>
int counter = 0;
static double table[100];
const int limit = 5;
extern int shared_elsewhere;
typedef int myint;
double scale(double x) {
    static int calls = 0;
    int local = 3;
    calls++;
    return x * local;
}
MPI_Request req;
`
	globals := findGlobals(src)
	names := map[string]bool{}
	for _, g := range globals {
		names[g.Name] = true
	}
	for _, want := range []string{"counter", "table", "limit", "calls", "req"} {
		if !names[want] {
			t.Errorf("missing global %q (got %v)", want, globals)
		}
	}
	for _, no := range []string{"shared_elsewhere", "myint", "local", "x"} {
		if names[no] {
			t.Errorf("false positive %q", no)
		}
	}
}

func TestRewriteThreadLocal(t *testing.T) {
	src := "int counter = 0;\nstatic double cache[10];\nvoid f(void) {\n    static long hits;\n    hits++;\n}\n"
	out, globals := RewriteThreadLocal(src)
	if len(globals) != 3 {
		t.Fatalf("globals = %v", globals)
	}
	for _, want := range []string{
		"__thread int counter = 0;",
		"static __thread double cache[10];",
		"static __thread long hits;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rewritten source missing %q:\n%s", want, out)
		}
	}
}

func TestStripComments(t *testing.T) {
	src := "int a; // trailing\n/* block\nspanning */ int b;\nchar *s = \"// not a comment\";\n"
	out := stripComments(src)
	if strings.Contains(out, "trailing") || strings.Contains(out, "spanning") {
		t.Fatalf("comments survived: %q", out)
	}
	if !strings.Contains(out, "// not a comment") {
		t.Fatalf("string literal mangled: %q", out)
	}
	if len(strings.Split(out, "\n")) != len(strings.Split(src, "\n")) {
		t.Fatal("line structure changed")
	}
}

func TestParseCallAssignmentForm(t *testing.T) {
	src := "#pragma acc mpi sendbuf(device)\nerr = MPI_Send(buf, n, MPI_DOUBLE, 1, 0, comm);\n"
	f, err := Parse("a.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Directives[0].MPICall.Name != "MPI_Send" {
		t.Fatalf("call = %v", f.Directives[0].MPICall)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Parse("l.c", "#pragma acc kernels async(`)\n"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := Parse("l.c", "#pragma acc mpi sendbuf(device\nMPI_Send(b, 1, MPI_INT, 0, 0, c);\n"); err == nil {
		t.Fatal("unterminated clause accepted")
	}
}

// Property: any directive assembled from legal clauses parses and lowers
// without error.
func TestLegalDirectivesAlwaysParseProperty(t *testing.T) {
	clausePool := []string{"copyin(a[0:n])", "create(b)", "async(1)", "if(cond)"}
	f := func(pick uint8) bool {
		var sb strings.Builder
		sb.WriteString("#pragma acc enter data copyin(base[0:10])")
		for i := 0; i < int(pick%4); i++ {
			sb.WriteString(" " + clausePool[(int(pick)+i)%len(clausePool)])
		}
		sb.WriteString("\n")
		file, err := Parse("p.c", sb.String())
		if err != nil {
			return false
		}
		_, err = Lower(file)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStructuredDataRegion(t *testing.T) {
	src := `
#pragma acc data copyin(a[0:n]) create(tmp[0:n]) copyout(b[0:n])
{
    #pragma acc kernels loop
    for (i = 0; i < n; i++) b[i] = a[i] + tmp[i];
}
x = 1;
`
	f, err := Parse("r.c", src)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Directives[0]
	if d.Kind != DirData {
		t.Fatalf("kind = %v", d.Kind)
	}
	if d.EndLine != 6 {
		t.Fatalf("region end = %d, want 6", d.EndLine)
	}
	ops, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: copyin(a), create(tmp) at line 2; launch at 4; then at the
	// closing brace copyout(b) and delete(a).
	var kinds []OpKind
	for _, op := range ops {
		kinds = append(kinds, op.Kind)
	}
	want := []OpKind{OpDataCopyin, OpDataCreate, OpLaunch, OpDataCopyout, OpDataDelete, OpDataDelete}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %v, want %v (all: %v)", i, kinds[i], want[i], ops)
		}
	}
	last := ops[len(ops)-1]
	if last.Line != 6 {
		t.Fatalf("region-end op at line %d, want 6", last.Line)
	}
}

func TestUndelimitedDataRegion(t *testing.T) {
	// A data construct followed by a plain statement cannot be delimited:
	// no region-end ops are emitted.
	src := "#pragma acc data copyin(a[0:n])\nb = a;\n"
	f, err := Parse("u.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Directives[0].EndLine != 0 {
		t.Fatalf("end line = %d, want 0", f.Directives[0].EndLine)
	}
	ops, _ := Lower(f)
	if len(ops) != 1 || ops[0].Kind != OpDataCopyin {
		t.Fatalf("ops = %v", ops)
	}
}

func TestFullSampleFile(t *testing.T) {
	// The shipped demo source must keep parsing: it locks in the compiler
	// front-end's behaviour over a realistic file.
	src, err := readTestdata("fig4c.c")
	if err != nil {
		t.Skip("testdata not present:", err)
	}
	f, err := Parse("fig4c.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Directives) != 7 || len(f.MPIDirectives()) != 2 {
		t.Fatalf("directives = %d, mpi = %d", len(f.Directives), len(f.MPIDirectives()))
	}
	names := map[string]bool{}
	for _, g := range f.Globals {
		names[g.Name] = true
	}
	for _, want := range []string{"n", "norm", "buf0", "buf1", "calls"} {
		if !names[want] {
			t.Errorf("missing global %q", want)
		}
	}
	ops, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 8 {
		t.Fatalf("plan ops = %d (%v)", len(ops), ops)
	}
	out, globals := RewriteThreadLocal(src)
	if len(globals) != 5 {
		t.Fatalf("rewrites = %d", len(globals))
	}
	for _, want := range []string{"__thread int n", "static __thread double norm", "static __thread long calls"} {
		if !strings.Contains(out, want) {
			t.Errorf("rewritten source missing %q", want)
		}
	}
}

// readTestdata loads a file from the repository's testdata directory.
func readTestdata(name string) (string, error) {
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	return string(b), err
}

func TestWaitAsyncDirective(t *testing.T) {
	src := "#pragma acc wait(1) async(2)\n#pragma acc wait(3)\n"
	f, err := Parse("w.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := Lower(f)
	if len(ops) != 2 {
		t.Fatalf("ops = %v", ops)
	}
	if ops[0].Kind != OpWaitQueue || ops[0].Queue != 2 || ops[0].Args[0] != "1" {
		t.Fatalf("cross-queue wait = %+v", ops[0])
	}
	if ops[1].Queue != SyncQueue {
		t.Fatalf("host wait = %+v", ops[1])
	}
}

func TestJacobiSampleFile(t *testing.T) {
	src, err := readTestdata("jacobi.c")
	if err != nil {
		t.Skip("testdata not present:", err)
	}
	f, err := Parse("jacobi.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []OpKind
	for _, op := range ops {
		kinds = append(kinds, op.Kind)
	}
	want := []OpKind{OpDataCopyin, OpDataCreate, OpMPIUnified, OpMPIUnified,
		OpLaunch, OpWaitQueue, OpUpdateHost, OpWaitAll, OpDataDelete, OpDataDelete}
	if len(kinds) != len(want) {
		t.Fatalf("plan = %v", ops)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// The cross-queue wait carries its dependency queue.
	if ops[5].Queue != 2 || ops[5].Args[0] != "1" {
		t.Fatalf("cross-queue wait = %+v", ops[5])
	}
	// Globals: grid, next, rank, size.
	if len(f.Globals) != 4 {
		t.Fatalf("globals = %v", f.Globals)
	}
}

func TestTokenKindStrings(t *testing.T) {
	for _, k := range []TokenKind{TokIdent, TokNumber, TokLParen, TokRParen,
		TokComma, TokColon, TokStar, TokPlus, TokMinus, TokSlash,
		TokLBracket, TokRBracket, TokDot, TokArrow, TokAmp, TokPipe,
		TokString, TokEOF} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestLexStringsAndArrows(t *testing.T) {
	toks, err := lex(`if(x->y . z & w | "a,b(c")`, 1)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{TokIdent, TokLParen, TokIdent, TokArrow, TokIdent,
		TokDot, TokIdent, TokAmp, TokIdent, TokPipe, TokString, TokRParen, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if _, err := lex(`"unterminated`, 1); err == nil {
		t.Fatal("unterminated string must fail")
	}
}

func TestDirKindStrings(t *testing.T) {
	names := map[DirKind]string{
		DirParallel: "parallel", DirKernels: "kernels", DirData: "data",
		DirEnterData: "enter data", DirExitData: "exit data",
		DirUpdate: "update", DirWait: "wait", DirLoop: "loop", DirMPI: "mpi",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
