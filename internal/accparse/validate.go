package accparse

import (
	"fmt"
	"strings"
)

// legalClauses maps each directive kind to its accepted clause names.
var legalClauses = map[DirKind]map[string]bool{
	DirParallel: {
		"copy": true, "copyin": true, "copyout": true, "create": true,
		"present": true, "async": true, "wait": true, "num_gangs": true,
		"num_workers": true, "vector_length": true, "private": true,
		"firstprivate": true, "reduction": true, "gang": true, "worker": true,
		"vector": true, "collapse": true, "if": true, "deviceptr": true,
	},
	DirKernels: {
		"copy": true, "copyin": true, "copyout": true, "create": true,
		"present": true, "async": true, "wait": true, "if": true,
		"gang": true, "worker": true, "vector": true, "collapse": true,
		"independent": true, "deviceptr": true,
	},
	DirData: {
		"copy": true, "copyin": true, "copyout": true, "create": true,
		"present": true, "deviceptr": true, "if": true,
	},
	DirEnterData: {"copyin": true, "create": true, "async": true, "wait": true, "if": true},
	DirExitData:  {"copyout": true, "delete": true, "async": true, "wait": true, "if": true},
	DirUpdate:    {"device": true, "self": true, "host": true, "async": true, "wait": true, "if": true},
	DirWait:      {"wait": true, "async": true},
	DirLoop: {
		"gang": true, "worker": true, "vector": true, "collapse": true,
		"independent": true, "private": true, "reduction": true, "seq": true,
	},
	// The IMPACC directive (§3.5): sendbuf([device][,][readonly]),
	// recvbuf([device][,][readonly]), async[(int-expr)].
	DirMPI: {"sendbuf": true, "recvbuf": true, "async": true},
}

// mpiBufFlags are the only attributes sendbuf/recvbuf accept.
var mpiBufFlags = map[string]bool{"device": true, "readonly": true}

// validate checks a parsed directive for clause legality and the IMPACC
// extension's structural rules.
func validate(file string, d *Directive) error {
	legal := legalClauses[d.Kind]
	for _, c := range d.Clauses {
		if !legal[c.Name] {
			return &ParseError{file, d.Line,
				fmt.Sprintf("clause %q is not valid on '#pragma acc %s'", c.Name, d.Kind)}
		}
		if c.Name == "async" && len(c.Args) > 1 {
			return &ParseError{file, d.Line, "async takes at most one queue expression"}
		}
	}
	switch d.Kind {
	case DirMPI:
		return validateMPI(file, d)
	case DirData, DirEnterData:
		if !hasAnyClause(d, "copy", "copyin", "copyout", "create", "present", "deviceptr") {
			return &ParseError{file, d.Line, "data construct requires at least one data clause"}
		}
	case DirExitData:
		if !hasAnyClause(d, "copyout", "delete") {
			return &ParseError{file, d.Line, "exit data requires copyout or delete"}
		}
	case DirUpdate:
		if !hasAnyClause(d, "device", "self", "host") {
			return &ParseError{file, d.Line, "update requires device, self, or host"}
		}
	}
	return nil
}

func hasAnyClause(d *Directive, names ...string) bool {
	for _, n := range names {
		if _, ok := d.Clause(n); ok {
			return true
		}
	}
	return false
}

// validateMPI enforces the §3.5 rules: the directive must annotate an
// immediately following MPI call; buffer attributes must be device/readonly;
// an async clause requires a non-blocking call ("When there is an async
// clause, the following non-blocking MPI call, such as MPI_Isend() and
// MPI_Irecv(), will be queued into an OpenACC asynchronous activity
// queue").
func validateMPI(file string, d *Directive) error {
	if d.MPICall == nil || !strings.HasPrefix(d.MPICall.Name, "MPI_") {
		got := ""
		if d.MPICall != nil {
			got = d.MPICall.Name
		}
		return &ParseError{file, d.Line,
			fmt.Sprintf("'#pragma acc mpi' must immediately precede an MPI call (got %q)", got)}
	}
	for _, c := range d.Clauses {
		if c.Name == "sendbuf" || c.Name == "recvbuf" {
			if len(c.Args) == 0 {
				return &ParseError{file, d.Line, c.Name + " requires at least one attribute"}
			}
			for _, a := range c.Args {
				if !mpiBufFlags[a] {
					return &ParseError{file, d.Line,
						fmt.Sprintf("invalid %s attribute %q (want device and/or readonly)", c.Name, a)}
				}
			}
		}
	}
	if _, ok := d.Clause("async"); ok && !isNonBlockingMPI(d.MPICall.Name) {
		return &ParseError{file, d.Line,
			fmt.Sprintf("async requires a non-blocking MPI call, got %s", d.MPICall.Name)}
	}
	// The directive must be meaningful for the call's direction.
	if _, ok := d.Clause("sendbuf"); ok && !mpiHasSendBuf(d.MPICall.Name) {
		return &ParseError{file, d.Line,
			fmt.Sprintf("sendbuf clause on %s, which has no send buffer", d.MPICall.Name)}
	}
	if _, ok := d.Clause("recvbuf"); ok && !mpiHasRecvBuf(d.MPICall.Name) {
		return &ParseError{file, d.Line,
			fmt.Sprintf("recvbuf clause on %s, which has no receive buffer", d.MPICall.Name)}
	}
	return nil
}

func isNonBlockingMPI(name string) bool {
	switch name {
	case "MPI_Isend", "MPI_Irecv", "MPI_Issend", "MPI_Ibsend", "MPI_Irsend",
		"MPI_Ibcast", "MPI_Ireduce", "MPI_Iallreduce", "MPI_Igather", "MPI_Iscatter":
		return true
	}
	return false
}

func mpiHasSendBuf(name string) bool {
	switch name {
	case "MPI_Send", "MPI_Isend", "MPI_Ssend", "MPI_Issend", "MPI_Bsend",
		"MPI_Rsend", "MPI_Sendrecv", "MPI_Bcast", "MPI_Ibcast",
		"MPI_Reduce", "MPI_Allreduce", "MPI_Gather", "MPI_Scatter",
		"MPI_Allgather", "MPI_Alltoall", "MPI_Ireduce", "MPI_Iallreduce",
		"MPI_Igather", "MPI_Iscatter":
		return true
	}
	return false
}

func mpiHasRecvBuf(name string) bool {
	switch name {
	case "MPI_Recv", "MPI_Irecv", "MPI_Sendrecv", "MPI_Bcast", "MPI_Ibcast",
		"MPI_Reduce", "MPI_Allreduce", "MPI_Gather", "MPI_Scatter",
		"MPI_Allgather", "MPI_Alltoall", "MPI_Ireduce", "MPI_Iallreduce",
		"MPI_Igather", "MPI_Iscatter":
		return true
	}
	return false
}
