package accparse

import (
	"fmt"
	"strings"
)

// DirKind identifies an OpenACC (or IMPACC-extension) directive.
type DirKind int

// Directive kinds.
const (
	DirParallel DirKind = iota
	DirKernels
	DirData      // structured data region
	DirEnterData //
	DirExitData
	DirUpdate
	DirWait
	DirLoop
	DirMPI // the IMPACC "#pragma acc mpi" extension (§3.5)
)

func (k DirKind) String() string {
	switch k {
	case DirParallel:
		return "parallel"
	case DirKernels:
		return "kernels"
	case DirData:
		return "data"
	case DirEnterData:
		return "enter data"
	case DirExitData:
		return "exit data"
	case DirUpdate:
		return "update"
	case DirWait:
		return "wait"
	case DirLoop:
		return "loop"
	default:
		return "mpi"
	}
}

// Clause is one directive clause with raw argument expressions. For data
// clauses each arg is a variable or array-section expression
// ("buf[0:n]"); for sendbuf/recvbuf the args are the device/readonly
// attribute flags.
type Clause struct {
	Name string
	Args []string
	Line int
}

func (c Clause) String() string {
	if len(c.Args) == 0 {
		return c.Name
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(c.Args, ", "))
}

// Has reports whether an argument flag is present (case-sensitive).
func (c Clause) Has(flag string) bool {
	for _, a := range c.Args {
		if a == flag {
			return true
		}
	}
	return false
}

// Directive is a parsed "#pragma acc ..." line.
type Directive struct {
	Kind    DirKind
	Clauses []Clause
	Line    int
	// Stmt is the source statement the directive applies to: the MPI
	// call after an mpi directive, or the loop/compound statement after a
	// compute construct (first line only).
	Stmt string
	// EndLine is the closing line of a structured data region's block
	// (0 when the region could not be delimited).
	EndLine int
	// MPICall is the parsed call following an mpi directive.
	MPICall *CallExpr
}

// Clause returns the first clause with the given name.
func (d *Directive) Clause(name string) (Clause, bool) {
	for _, c := range d.Clauses {
		if c.Name == name {
			return c, true
		}
	}
	return Clause{}, false
}

// CallExpr is a parsed C function call (the MPI call an IMPACC directive
// annotates).
type CallExpr struct {
	Name string
	Args []string
	Line int
}

func (c *CallExpr) String() string {
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(c.Args, ", "))
}

// GlobalVar is a file-scope or static variable that the IMPACC compiler
// must rewrite to be thread-local (paper §3.1).
type GlobalVar struct {
	Name   string
	Decl   string
	Line   int
	Static bool // declared static inside a function
}

// File is the parse result for one translation unit.
type File struct {
	Name       string
	Directives []*Directive
	Globals    []GlobalVar
}

// MPIDirectives filters the IMPACC extension directives.
func (f *File) MPIDirectives() []*Directive {
	var out []*Directive
	for _, d := range f.Directives {
		if d.Kind == DirMPI {
			out = append(out, d)
		}
	}
	return out
}
