package accparse

import (
	"strings"
)

// Global-to-thread-local analysis (paper §3.1): because IMPACC implements
// MPI tasks as user-level threads sharing one process, every global and
// function-static variable in the input program must become thread-local,
// or tasks would corrupt each other's state. findGlobals locates those
// declarations; RewriteThreadLocal emits the transformed source with
// __thread storage added.

// cTypeWords starts-a-declaration heuristic.
var cTypeWords = map[string]bool{
	"int": true, "long": true, "short": true, "char": true, "float": true,
	"double": true, "unsigned": true, "signed": true, "size_t": true,
	"int8_t": true, "int16_t": true, "int32_t": true, "int64_t": true,
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"bool": true, "void": true, "MPI_Comm": true, "MPI_Request": true,
	"MPI_Status": true, "MPI_Datatype": true, "FILE": true,
}

// stripComments removes // and /* */ comments, preserving line structure.
func stripComments(src string) string {
	var sb strings.Builder
	i := 0
	for i < len(src) {
		switch {
		case strings.HasPrefix(src[i:], "//"):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "/*"):
			i += 2
			for i < len(src) && !strings.HasPrefix(src[i:], "*/") {
				if src[i] == '\n' {
					sb.WriteByte('\n')
				}
				i++
			}
			i += 2
		case src[i] == '"':
			sb.WriteByte(src[i])
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					sb.WriteByte(src[i])
					i++
				}
				if i < len(src) {
					sb.WriteByte(src[i])
					i++
				}
			}
			if i < len(src) {
				sb.WriteByte('"')
				i++
			}
		default:
			sb.WriteByte(src[i])
			i++
		}
	}
	return sb.String()
}

// declName extracts the declared identifier from a declaration body
// (text between the type words and ';' / '=' / '[').
func declName(rest string) string {
	rest = strings.TrimLeft(rest, "* \t")
	end := len(rest)
	for i, c := range rest {
		if !(c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')) {
			end = i
			break
		}
	}
	return rest[:end]
}

// declNames extracts every declarator of a possibly comma-separated
// declaration body ("buf0[1024], buf1[1024]" -> buf0, buf1), splitting on
// top-level commas only.
func declNames(body string) []string {
	var names []string
	depth := 0
	start := 0
	emit := func(piece string) {
		if n := declName(strings.TrimSpace(piece)); n != "" {
			names = append(names, n)
		}
	}
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				emit(body[start:i])
				start = i + 1
			}
		}
	}
	emit(body[start:])
	return names
}

// findGlobals scans C-like source for file-scope variables and
// function-scope statics.
func findGlobals(src string) []GlobalVar {
	clean := stripComments(src)
	var out []GlobalVar
	depth := 0
	for lineNo, raw := range strings.Split(clean, "\n") {
		line := strings.TrimSpace(raw)
		depthAtStart := depth
		depth += strings.Count(line, "{") - strings.Count(line, "}")

		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			continue // declarations of interest end on their line
		}
		words := strings.Fields(line)
		if len(words) < 2 {
			continue
		}
		first := words[0]
		static := first == "static"
		if static {
			words = words[1:]
			if len(words) < 2 {
				continue
			}
			first = words[0]
		}
		switch first {
		case "extern", "typedef", "return", "struct", "union", "enum", "const":
			if first != "const" {
				continue
			}
			words = words[1:]
			if len(words) < 2 {
				continue
			}
			first = words[0]
		}
		if !cTypeWords[first] {
			continue
		}
		// Skip prototypes/calls: '(' before any '='.
		body := strings.Join(words[1:], " ")
		if p := strings.IndexByte(body, '('); p >= 0 {
			if e := strings.IndexByte(body, '='); e < 0 || p < e {
				continue
			}
		}
		for _, name := range declNames(strings.TrimSuffix(body, ";")) {
			if depthAtStart == 0 {
				out = append(out, GlobalVar{Name: name, Decl: line, Line: lineNo + 1, Static: static})
			} else if static {
				out = append(out, GlobalVar{Name: name, Decl: line, Line: lineNo + 1, Static: true})
			}
		}
	}
	return out
}

// RewriteThreadLocal returns the source with __thread storage class added
// to every global and static variable declaration, making each MPI task's
// copy private (the paper's compiler transformation).
func RewriteThreadLocal(src string) (string, []GlobalVar) {
	globals := findGlobals(src)
	byLine := map[int]GlobalVar{}
	for _, g := range globals {
		byLine[g.Line] = g
	}
	lines := strings.Split(src, "\n")
	for i := range lines {
		g, ok := byLine[i+1]
		if !ok {
			continue
		}
		trimmed := strings.TrimLeft(lines[i], " \t")
		indent := lines[i][:len(lines[i])-len(trimmed)]
		if g.Static {
			lines[i] = indent + strings.Replace(trimmed, "static ", "static __thread ", 1)
		} else {
			lines[i] = indent + "__thread " + trimmed
		}
	}
	return strings.Join(lines, "\n"), globals
}
