package core

import (
	"strings"
	"testing"

	"impacc/internal/fault"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

// hashSpecimens are the pinned (config, digest) pairs. The digests are the
// contract: any refactor that silently changes the canonical encoding —
// and therefore would silently split or poison a content-addressed result
// cache — fails this test. A deliberate encoding change must bump
// ConfigHashScheme and regenerate these values.
func hashSpecimens() []struct {
	name string
	cfg  Config
	want string
} {
	chaos, err := fault.ParseSpec("7:degrade=*:4:1ms,rdmaflap=1:2ms:500us,straggle=0:1.5,retries=6")
	if err != nil {
		panic(err)
	}
	return []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "beacon-defaults",
			cfg:  Config{System: topo.Beacon(2), Seed: 2016},
			want: "5778a21292d8f18c2428ac909cedadddb108271897db73656a0da208c67f4fd5",
		},
		{
			name: "titan-legacy-chaos-limits",
			cfg: Config{
				System:      topo.Titan(4),
				Mode:        Legacy,
				DeviceTypes: topo.MaskOf(topo.NVIDIAGPU),
				Pin:         PinFar,
				Backed:      true,
				Seed:        99,
				MaxTasks:    8,
				JitterPct:   1.5,
				Chaos:       chaos,
				Limits:      Limits{MaxVirtualTime: 2_000_000_000, MaxEvents: 1 << 20, MaxAllocBytes: 1 << 30},
			},
			want: "4e2883029c4b3d7f823e0de05b400f133ad82dc62df722bc0390ef1fb57b7ae6",
		},
	}
}

func TestConfigHashKnownAnswers(t *testing.T) {
	for _, s := range hashSpecimens() {
		if got := s.cfg.Hash(); got != s.want {
			t.Errorf("%s: hash drifted:\n got  %s\n want %s\ncanonical:\n%s",
				s.name, got, s.want, s.cfg.CanonicalString())
		}
	}
}

// TestConfigHashNormalization: hashing before and after validate() must
// agree (defaults are resolved inside CanonicalString), and observer-only
// pointers must not move the hash.
func TestConfigHashNormalization(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Seed: 2016}
	before := cfg.Hash()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if after := cfg.Hash(); after != before {
		t.Fatalf("validate() moved the hash: %s -> %s", before, after)
	}
	cfg.Trace = NewTracer()
	cfg.Metrics = telemetry.NewRegistry()
	if got := cfg.Hash(); got != before {
		t.Fatal("observer pointers (Trace, Metrics) moved the hash")
	}
}

// TestConfigHashSensitivity: every simulation-relevant field must move the
// hash.
func TestConfigHashSensitivity(t *testing.T) {
	base := Config{System: topo.Beacon(2), Seed: 2016}
	seen := map[string]string{base.Hash(): "base"}
	mutate := []struct {
		name string
		fn   func(c *Config)
	}{
		{"system", func(c *Config) { c.System = topo.Beacon(3) }},
		{"mode", func(c *Config) { c.Mode = Legacy }},
		{"devicetypes", func(c *Config) { c.DeviceTypes = topo.MaskOf(topo.XeonPhi) }},
		{"pin", func(c *Config) { c.Pin = PinFar }},
		{"features", func(c *Config) { c.Features = &Features{Fusion: true} }},
		{"overheads", func(c *Config) { c.Overheads.Cmd = 299 }},
		{"backed", func(c *Config) { c.Backed = true }},
		{"seed", func(c *Config) { c.Seed = 2017 }},
		{"maxtasks", func(c *Config) { c.MaxTasks = 3 }},
		{"forceserialmpi", func(c *Config) { c.ForceSerialMPI = true }},
		{"jitterpct", func(c *Config) { c.JitterPct = 2 }},
		{"chaos", func(c *Config) { c.Chaos, _ = fault.ParseSpec("1:straggle=*:2") }},
		{"limits", func(c *Config) { c.Limits.MaxEvents = 1000 }},
		{"lean", func(c *Config) { c.Lean = true }},
	}
	for _, m := range mutate {
		c := base
		m.fn(&c)
		h := c.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collides with %s", m.name, prev)
		}
		seen[h] = m.name
	}
}

// TestConfigCanonicalStringShape: the encoding is line-oriented key=value
// with the scheme tag first, so diffs of two canonical strings localize
// which field diverged.
func TestConfigCanonicalStringShape(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Seed: 2016}
	s := cfg.CanonicalString()
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	if lines[0] != "scheme="+ConfigHashScheme {
		t.Fatalf("first line %q, want scheme tag", lines[0])
	}
	order := []string{"scheme", "system", "mode", "devicetypes", "pin", "features",
		"overheads", "backed", "seed", "maxtasks", "forceserialmpi", "jitterpct", "chaos", "limits", "lean"}
	if len(lines) != len(order) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(order), s)
	}
	for i, k := range order {
		if !strings.HasPrefix(lines[i], k+"=") {
			t.Errorf("line %d = %q, want key %q", i, lines[i], k)
		}
	}
}
