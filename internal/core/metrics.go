package core

import (
	"strconv"

	"impacc/internal/sim"
)

// MPILatencyNs is the histogram family of per-task MPI operation
// latencies, labeled by rank and op (send, recv, isend, irecv, wait,
// barrier, bcast, reduce, gather, scatter, alltoall, scan, gatherv,
// scatterv, probe). Buckets are powers of two in virtual nanoseconds.
const MPILatencyNs = "core_mpi_latency_ns"

// mpiObserve records one completed MPI operation's latency for the task.
// Histograms are created lazily per (rank, op) so only ops a task actually
// issues allocate series. Lean mode collapses the rank label to "all":
// tasks sharing a node then share one series per op (safe — a shard runs
// one process at a time), and the cross-shard merge adds the per-node
// aggregates commutatively, so per-rank telemetry stays O(ops) instead of
// O(ranks * ops) on generated large-scale systems.
func (t *Task) mpiObserve(op string, start sim.Time) {
	t.phase = "mpi:" + op
	h := t.mpiLat[op]
	if h == nil {
		rank := "all"
		if !t.rt.lean {
			rank = strconv.Itoa(t.rank)
		}
		h = t.eng().Metrics.Histogram(MPILatencyNs,
			"per-task MPI operation latency by op",
			"rank", rank, "op", op)
		t.mpiLat[op] = h
	}
	h.Observe(int64(t.proc.Now() - start))
}
