package core

import (
	"strconv"

	"impacc/internal/sim"
)

// MPILatencyNs is the histogram family of per-task MPI operation
// latencies, labeled by rank and op (send, recv, isend, irecv, wait,
// barrier, bcast, reduce, gather, scatter, alltoall, scan, gatherv,
// scatterv, probe). Buckets are powers of two in virtual nanoseconds.
const MPILatencyNs = "core_mpi_latency_ns"

// mpiObserve records one completed MPI operation's latency for the task.
// Histograms are created lazily per (rank, op) so only ops a task actually
// issues allocate series.
func (t *Task) mpiObserve(op string, start sim.Time) {
	t.phase = "mpi:" + op
	h := t.mpiLat[op]
	if h == nil {
		h = t.eng().Metrics.Histogram(MPILatencyNs,
			"per-task MPI operation latency by op",
			"rank", strconv.Itoa(t.rank), "op", op)
		t.mpiLat[op] = h
	}
	h.Observe(int64(t.proc.Now() - start))
}
