// Package core is the IMPACC runtime (the paper's primary contribution):
// it launches one threaded-MPI task per accelerator with automatic
// task-device mapping (§3.2, Figure 2), pins tasks to NUMA-near CPUs
// (§3.3), gives every task on a node the unified node virtual address space
// (§3.4), provides unified MPI communication routines (§3.5), the unified
// activity queue (§3.6), the message-handler communication engine (§3.7),
// and node heap aliasing (§3.8).
//
// The same runtime also executes the legacy MPI+OpenACC baseline: tasks
// become OS processes with private address spaces, no pinning, no fusion,
// no aliasing, and no unified queue — the configuration every paper figure
// compares against.
package core

import (
	"fmt"

	"impacc/internal/fault"
	"impacc/internal/msg"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

// Mode selects the programming-model implementation.
type Mode int

const (
	// IMPACC is the paper's integrated runtime.
	IMPACC Mode = iota
	// Legacy is the traditional MPI+OpenACC baseline.
	Legacy
)

func (m Mode) String() string {
	if m == IMPACC {
		return "IMPACC"
	}
	return "MPI+OpenACC"
}

// PinPolicy controls task-CPU pinning (§3.3, Figure 8).
type PinPolicy int

const (
	// PinDefault resolves to PinNear under IMPACC and PinNone under legacy.
	PinDefault PinPolicy = iota
	// PinNear pins each task next to its accelerator (NUMA-friendly).
	PinNear
	// PinFar pins each task to a far socket (the NUMA-unfriendly
	// configuration measured in Figure 8).
	PinFar
	// PinNone leaves tasks unpinned (OS placement).
	PinNone
)

// Features toggles the individual IMPACC techniques, for ablations. The
// zero value means "defaults for the mode".
type Features struct {
	Fusion       bool // message fusion (§3.7)
	Aliasing     bool // node heap aliasing (§3.8)
	DirectP2P    bool // direct DtoD over shared root complex
	RDMA         bool // GPUDirect RDMA internode
	UnifiedQueue bool // MPI ops on OpenACC activity queues (§3.6)
}

// DefaultFeatures returns the canonical feature set for a mode.
func DefaultFeatures(m Mode) Features {
	if m == IMPACC {
		return Features{Fusion: true, Aliasing: true, DirectP2P: true, RDMA: true, UnifiedQueue: true}
	}
	return Features{}
}

// Overheads are the runtime's fixed software costs. Zero fields take the
// listed defaults.
type Overheads struct {
	Cmd     sim.Dur // task-side message command creation (default 300ns)
	Handler sim.Dur // handler per-command processing (default 400ns)
	Alias   sim.Dur // applying node heap aliasing (default 1µs)
}

// Limits caps one run's resource consumption so a hosting tool (the bench
// harness, impacc-serve) can bound runaway or abusive jobs. The zero value
// means unlimited. Hitting a cap is deterministic — the same configuration
// always stops at the same point — and surfaces as an error from Run, never
// as a silently truncated report.
type Limits struct {
	// MaxVirtualTime fails the run with a *sim.LimitError once the virtual
	// clock would pass it.
	MaxVirtualTime sim.Dur
	// MaxEvents fails the run after this many dispatched engine events.
	MaxEvents int64
	// MaxAllocBytes bounds the total task host-heap bytes (Task.Malloc)
	// across all tasks; exceeding it fails the allocating task.
	MaxAllocBytes int64
}

// Config describes one run.
type Config struct {
	System *topo.System
	Mode   Mode
	// DeviceTypes is the IMPACC_ACC_DEVICE_TYPE bit field (Figure 2);
	// zero selects every accelerator (acc_device_default).
	DeviceTypes topo.ClassMask
	Pin         PinPolicy
	// Features overrides DefaultFeatures(Mode) when non-nil.
	Features  *Features
	Overheads Overheads
	// Backed attaches real storage to allocations so applications compute
	// genuine results; disable for extreme-scale timing-only runs.
	Backed bool
	// Seed drives all pseudo-randomness (jitter, application data).
	Seed uint64
	// MaxTasks caps the number of launched tasks (0 = all devices).
	MaxTasks int
	// ForceSerialMPI pretends the underlying MPI library lacks
	// MPI_THREAD_MULTIPLE (paper §3.7 fallback), for ablation.
	ForceSerialMPI bool
	// JitterPct adds deterministic pseudo-random skew to host compute
	// (percent, e.g. 2.0). Models OS noise; 0 disables.
	JitterPct float64
	// Lean turns on the memory-lean big-run mode. On systems above
	// leanRankThreshold ranks: per-rank telemetry series collapse into
	// aggregated rank="all" series, progress heartbeats carry sorted phase
	// counts instead of one phase string per rank, and buffered
	// (non-streaming) tracers are rejected so the causal graph never
	// resides in RAM — stream spans through a Tracer with a SpanSink
	// instead. At or below the threshold lean is a no-op and reports are
	// byte-identical to a non-lean run. Because lean changes what a big run
	// reports, it is part of the canonical content hash, unlike the pure
	// observer fields below.
	Lean bool
	// Trace, when non-nil, collects per-task execution spans (kernels,
	// copies, MPI blocking, host compute) for timeline export.
	//impacc:hash-exclude pure observer: span collection never changes simulated bytes
	Trace *Tracer
	// Metrics, when non-nil, is adopted as the engine's telemetry registry,
	// letting several runs (e.g. a benchmark sweep) aggregate into one
	// registry. Nil keeps the engine's own fresh registry.
	//impacc:hash-exclude pure observer: registry choice never changes simulated bytes
	Metrics *telemetry.Registry
	// MetricsPool, when non-nil, supplies the run's per-shard registries
	// and receives them back when Execute finishes; a sweep harness sets it
	// to recycle registries across thousands of leaf runs instead of
	// allocating fresh ones each time. Like Metrics it only changes where
	// telemetry is stored, never a simulated byte.
	//impacc:hash-exclude pure observer: registry reuse never changes simulated bytes
	MetricsPool *telemetry.Pool
	// Chaos, when non-nil, instantiates a deterministic fault-injection
	// plan for the run (see internal/fault): link degradation and flaps,
	// NIC send stalls, compute stragglers, transient device-copy failures,
	// plus the matching resilience knobs (timeout, retries, backoff).
	Chaos *fault.Spec
	// Limits caps the run's virtual time, event count, and task heap; the
	// zero value is unlimited.
	Limits Limits
	// Parallel is the number of worker threads driving the sharded
	// simulation engine (intra-run parallelism). Like Trace and Metrics it
	// changes how the run executes, never what it simulates: any worker
	// count produces byte-identical reports, traces, and telemetry, so the
	// field is excluded from the canonical content hash. Values below 1
	// mean serial.
	//impacc:hash-exclude execution strategy: any worker count is byte-identical by construction
	Parallel int
	// Progress, when non-nil, emits deterministic virtual-time heartbeats
	// every Progress.Every of virtual time (see Progress). An observer like
	// Trace/Metrics/Parallel: never changes what the run simulates, excluded
	// from the canonical content hash.
	//impacc:hash-exclude pure observer: heartbeats never change simulated bytes
	Progress *Progress
	// FlightRing, when positive, arms a per-shard flight recorder keeping
	// the most recent FlightRing dispatched-event stamps; a run that ends
	// abnormally (cancel, deadlock, limits, causality panic) then exposes a
	// stall dump through Runtime.Stall. An observer: hash-excluded, zero
	// simulation-visible effect.
	//impacc:hash-exclude diagnostics ring: armed or not, simulated bytes are identical
	FlightRing int
}

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	if c.System == nil {
		return fmt.Errorf("core: Config.System is required")
	}
	if len(c.System.Nodes) == 0 {
		return fmt.Errorf("core: system has no nodes")
	}
	if c.Pin == PinDefault {
		if c.Mode == IMPACC {
			c.Pin = PinNear
		} else {
			c.Pin = PinNone
		}
	}
	if c.Overheads.Cmd == 0 {
		c.Overheads.Cmd = 300
	}
	if c.Overheads.Handler == 0 {
		c.Overheads.Handler = 400
	}
	if c.Overheads.Alias == 0 {
		c.Overheads.Alias = 1000
	}
	if c.Progress != nil {
		if c.Progress.Every <= 0 {
			return fmt.Errorf("core: Config.Progress.Every must be positive")
		}
		if c.Progress.Emit == nil {
			return fmt.Errorf("core: Config.Progress.Emit is required")
		}
	}
	return nil
}

// features resolves the effective feature set.
func (c *Config) features() Features {
	if c.Features != nil {
		return *c.Features
	}
	return DefaultFeatures(c.Mode)
}

// msgConfig builds the hub configuration.
func (c *Config) msgConfig() msg.Config {
	f := c.features()
	mc := msg.Config{
		Legacy:          c.Mode == Legacy,
		Fusion:          f.Fusion,
		Aliasing:        f.Aliasing,
		RDMA:            f.RDMA,
		DirectP2P:       f.DirectP2P,
		ThreadMultiple:  c.System.ThreadMultiple && !c.ForceSerialMPI,
		CmdOverhead:     c.Overheads.Cmd,
		HandlerOverhead: c.Overheads.Handler,
		AliasOverhead:   c.Overheads.Alias,
		MPIOverhead:     c.System.MPIOverhead,
	}
	if c.Chaos != nil {
		mc.NetTimeout = c.Chaos.Timeout()
		mc.MaxNetRetries = c.Chaos.Retries()
		mc.NetBackoff = c.Chaos.Backoff()
	}
	return mc
}

// Placement maps one rank to its node and device (Figure 2).
type Placement struct {
	Node   int
	Device int
}

// BuildMapping computes the automatic task-device mapping: one task per
// accelerator matching the device-type mask, ranks assigned node-major in
// device order, capped at maxTasks when positive (paper §3.2: "the IMPACC
// runtime automatically creates the same number of MPI tasks as the number
// of all available or user's specified accelerators").
func BuildMapping(sys *topo.System, mask topo.ClassMask, maxTasks int) []Placement {
	var out []Placement
	for n := range sys.Nodes {
		for d := range sys.Nodes[n].Devices {
			if mask.Has(sys.Nodes[n].Devices[d].Class) {
				out = append(out, Placement{Node: n, Device: d})
				if maxTasks > 0 && len(out) == maxTasks {
					return out
				}
			}
		}
	}
	return out
}
