package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

// Span is one traced interval of virtual time on a task's timeline.
type Span struct {
	Rank  int      `json:"rank"`
	Node  int      `json:"node"`
	Kind  string   `json:"kind"` // kernel | copy | mpi | compute | accwait
	Name  string   `json:"name"`
	Start sim.Time `json:"start"` // virtual nanoseconds
	End   sim.Time `json:"end"`
}

// Tracer collects execution spans when attached via Config.Trace. The
// engine runs one process at a time, so appends need no locking; spans are
// in completion order.
type Tracer struct {
	spans   []Span
	metrics *telemetry.Snapshot
}

// AttachMetrics attaches a run-end metrics snapshot. WriteChromeTrace then
// emits its counter and gauge series as Chrome counter events ("C"), so
// hub counters and link utilization appear alongside the span timeline.
// The runtime attaches the report snapshot automatically when tracing.
func (tr *Tracer) AttachMetrics(snap *telemetry.Snapshot) { tr.metrics = snap }

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Spans returns the collected spans sorted by start time.
func (tr *Tracer) Spans() []Span {
	out := append([]Span(nil), tr.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Len reports the number of spans.
func (tr *Tracer) Len() int { return len(tr.spans) }

func (tr *Tracer) add(s Span) {
	if s.End < s.Start {
		s.End = s.Start
	}
	tr.spans = append(tr.spans, s)
}

// WriteJSON emits the spans as a JSON array.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr.Spans())
}

// chromeEvent is one entry of the Chrome trace event format ("X" complete
// events), loadable in chrome://tracing and Perfetto. pid = node,
// tid = rank, timestamps in microseconds of virtual time.
type chromeEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// WriteChromeTrace emits the spans in Chrome trace event format.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(tr.spans))
	for _, s := range tr.Spans() {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s:%s", s.Kind, s.Name),
			Cat:  s.Kind,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  s.Node,
			Tid:  s.Rank,
		})
	}
	events = append(events, tr.counterEvents()...)
	return json.NewEncoder(w).Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// counterEvents converts the attached snapshot's counter and gauge series
// into Chrome counter events at the time of their last mutation. Histograms
// and the (potentially huge) per-resource monitor families are left to the
// JSON/Prometheus exports.
func (tr *Tracer) counterEvents() []chromeEvent {
	if tr.metrics == nil {
		return nil
	}
	var out []chromeEvent
	for _, f := range tr.metrics.Families {
		if f.Kind == "histogram" || strings.HasPrefix(f.Name, "sim_resource_") {
			continue
		}
		for _, s := range f.Series {
			v := float64(s.Value)
			if f.Kind == "gauge" {
				v = s.GaugeValue
			}
			name := f.Name
			if len(s.Labels) > 0 {
				parts := make([]string, 0, len(s.Labels))
				for _, l := range s.Labels {
					parts = append(parts, l.Key+"="+l.Value)
				}
				name += "{" + strings.Join(parts, ",") + "}"
			}
			out = append(out, chromeEvent{
				Name: name,
				Cat:  "metric",
				Ph:   "C",
				Ts:   float64(s.LastNs) / 1e3,
				Args: map[string]float64{"value": v},
			})
		}
	}
	return out
}

// span records an interval on the task's timeline when tracing is enabled.
func (t *Task) span(kind, name string, start sim.Time) {
	tr := t.rt.Cfg.Trace
	if tr == nil {
		return
	}
	tr.add(Span{Rank: t.rank, Node: t.pl.Node, Kind: kind, Name: name,
		Start: start, End: t.proc.Now()})
}
