package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"impacc/internal/msg"
	"impacc/internal/prof"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

// Span is one traced interval of virtual time on an execution lane; the
// concrete type lives in internal/prof so the analyzer can consume traces
// without importing the runtime.
type Span = prof.Span

// rawEdge is a dependency recorded during the run. Message edges carry
// command trace IDs (resolved to the claiming spans at export time); stream
// and event edges carry span IDs directly.
type rawEdge struct {
	kind     string // msg | stream | event
	from, to uint64
	post, at sim.Time
	bytes    int64
}

// Record kinds of streamRec.
const (
	recSpan = uint8(iota)
	recEdge
	recClaim
)

// streamRec is one entry of a lane's unified record log: a closed span, a
// causal edge, or a command claim. Every record carries its stamp — the
// virtual instant it was appended (a span's end, an edge's match time, a
// claim's claim time) — plus a lane-local sequence number. Records are only
// ever appended at the owning engine's current time and the clock never
// moves backwards, so stamps are non-decreasing within a lane; the total
// order (stamp, node, seq) is therefore the canonical stream order, and any
// window fence F splits every lane's log exactly: records below F are final,
// and anything recorded later lands at or above F. That split is what lets
// the streaming sink flush incrementally yet stay byte-identical to a full
// post-run sort (see FlushWindow / WriteStream).
type streamRec struct {
	at   sim.Time
	seq  uint64
	kind uint8
	span Span    // recSpan
	edge rawEdge // recEdge
	// recClaim: command trace ID and the span that claimed it.
	cmd, claimed uint64
}

// traceLane is the slice of the trace owned by one node. Under sharded
// execution every node's events run on that node's engine, so routing each
// append to the recording node's lane keeps the tracer lock-free: a lane is
// only ever mutated from one goroutine at a time (its shard's worker), and
// exports merge the lanes in node order after the run. Claims and pending
// command IDs are rank-keyed and a rank lives on exactly one node, so they
// shard along with the spans.
type traceLane struct {
	node    int
	recs    []streamRec
	recSeq  uint64
	nextID  uint64
	claims  map[uint64]uint64 // command trace ID -> claiming span ID (buffered mode only)
	pending map[int][]uint64  // rank -> posted, not-yet-claimed command IDs
}

// push appends one record, stamping it with the lane-local sequence.
func (l *traceLane) push(r streamRec) {
	l.recSeq++
	r.seq = l.recSeq
	l.recs = append(l.recs, r)
}

// Tracer collects execution spans and causal edges when attached via
// Config.Trace. Each node's activity lands in its own lane (see traceLane);
// trace IDs embed the lane index so they stay unique and deterministic
// without cross-shard coordination.
//
// A tracer runs in one of two modes. Buffered (NewTracer) retains every
// record, so the post-run views — Data, Spans, WriteJSON, WriteChromeTrace,
// WriteStream — all work. Streaming (NewStreamTracer) flushes records to a
// SpanSink at window barriers and drops them, bounding memory by the
// densest window instead of the whole run; the in-memory views are then
// empty, and the sink receives exactly the bytes WriteStream would have
// produced from a buffered run of the same job.
type Tracer struct {
	lanes   []*traceLane // indexed by node; lane 0 always exists
	metrics *telemetry.Snapshot

	sink       SpanSink         // non-nil in streaming mode
	sinkErr    error            // first sink failure; recording continues, flushing stops
	batch      []prof.StreamRec // flush scratch, reused across windows
	maxFlushed sim.Time         // latest stamp handed to the sink
}

// NewTracer returns an empty buffered tracer.
func NewTracer() *Tracer {
	tr := &Tracer{}
	tr.Reserve(1)
	return tr
}

// NewStreamTracer returns a tracer that flushes records to sink at window
// barriers instead of retaining them (see Tracer). The runtime drives it
// through FlushWindow and the caller finalizes it with CloseStream.
func NewStreamTracer(sink SpanSink) *Tracer {
	tr := &Tracer{sink: sink}
	tr.Reserve(1)
	return tr
}

// Streaming reports whether the tracer flushes to a sink (and therefore
// cannot serve the in-memory post-run views).
func (tr *Tracer) Streaming() bool { return tr.sink != nil }

// Reserve sizes the tracer for nodes lanes. The runtime calls it before the
// run starts; once concurrent shards are recording, the lane set must not
// grow, so all growth happens here.
func (tr *Tracer) Reserve(nodes int) {
	for len(tr.lanes) < nodes {
		l := &traceLane{node: len(tr.lanes), pending: map[int][]uint64{}}
		if tr.sink == nil {
			l.claims = map[uint64]uint64{}
		}
		tr.lanes = append(tr.lanes, l)
	}
}

// lane returns node's lane, growing the set for direct single-threaded use
// (tests construct tracers without a runtime).
func (tr *Tracer) lane(node int) *traceLane {
	if node < 0 {
		node = 0
	}
	if node >= len(tr.lanes) {
		tr.Reserve(node + 1)
	}
	return tr.lanes[node]
}

// AttachMetrics attaches a run-end metrics snapshot. WriteChromeTrace then
// emits its counter and gauge series as Chrome counter events ("C"), so
// hub counters and link utilization appear alongside the span timeline.
// The runtime attaches the report snapshot automatically when tracing.
func (tr *Tracer) AttachMetrics(snap *telemetry.Snapshot) { tr.metrics = snap }

// laneID allocates a fresh trace ID on node's lane. Lane 0 issues the plain
// counter (so single-node traces keep their historical IDs); other lanes
// tag the counter with the node index in the high bits, keeping IDs unique
// across lanes with no shared state.
func (tr *Tracer) laneID(node int) uint64 {
	l := tr.lane(node)
	l.nextID++
	if node <= 0 {
		return l.nextID
	}
	return uint64(node)<<40 | l.nextID
}

// NewID allocates a fresh trace ID on lane 0 (single-node callers).
func (tr *Tracer) NewID() uint64 { return tr.laneID(0) }

// record appends a span to its node's lane, allocating its ID when unset,
// and returns the ID. The record is stamped with the span's end — the
// instant the recording engine closed it.
func (tr *Tracer) record(s Span) uint64 {
	if s.ID == 0 {
		s.ID = tr.laneID(s.Node)
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	l := tr.lane(s.Node)
	l.push(streamRec{at: s.End, kind: recSpan, span: s})
	return s.ID
}

// msgEdge records a send→recv match on the matching node's lane: from/to
// are command trace IDs, post is when the sender initiated the operation,
// at the match instant (which stamps the record).
func (tr *Tracer) msgEdge(node int, from, to uint64, post, at sim.Time, bytes int64) {
	l := tr.lane(node)
	l.push(streamRec{at: at, kind: recEdge,
		edge: rawEdge{kind: "msg", from: from, to: to, post: post, at: at, bytes: bytes}})
}

// depEdge records a stream or event ordering edge between span IDs on the
// owning node's lane. at must be the recording engine's current time (every
// call site passes a now-derived stamp).
func (tr *Tracer) depEdge(node int, kind string, from, to uint64, at sim.Time) {
	l := tr.lane(node)
	l.push(streamRec{at: at, kind: recEdge,
		edge: rawEdge{kind: kind, from: from, to: to, at: at}})
}

// registerPending notes a command posted by rank (hosted on node) whose
// observing span is not yet known.
func (tr *Tracer) registerPending(node, rank int, id uint64) {
	l := tr.lane(node)
	l.pending[rank] = append(l.pending[rank], id)
}

// pendingMark returns a scope marker for claimSince.
func (tr *Tracer) pendingMark(node, rank int) int { return len(tr.lane(node).pending[rank]) }

// claim binds command cmdID to span spanID; the first claim wins, so an
// inner blocking call keeps its precise span even when an enclosing
// collective sweeps the region afterwards. Commands are only ever claimed
// by the rank that posted them, so the claim lands on that rank's lane.
// Every claim call is logged (stamped with at, the claiming instant); the
// first-wins rule is applied by the claims map in buffered mode and by the
// stream reader in claim order, which agree because a command's claims all
// land on one lane, where record order is claim order.
func (tr *Tracer) claim(node int, cmdID, spanID uint64, at sim.Time) {
	l := tr.lane(node)
	l.push(streamRec{at: at, kind: recClaim, cmd: cmdID, claimed: spanID})
	if l.claims != nil {
		if _, ok := l.claims[cmdID]; !ok {
			l.claims[cmdID] = spanID
		}
	}
}

// claimSince claims every command rank posted after mark for spanID — the
// bracket used by collectives, whose internal sends and receives all belong
// to one host span.
func (tr *Tracer) claimSince(node, rank, mark int, spanID uint64, at sim.Time) {
	l := tr.lane(node)
	pend := l.pending[rank]
	if mark < 0 || mark > len(pend) {
		return
	}
	for _, id := range pend[mark:] {
		tr.claim(node, id, spanID, at)
	}
	l.pending[rank] = pend[:mark]
}

// allSpans concatenates the lanes' spans in node order.
func (tr *Tracer) allSpans() []Span {
	var out []Span
	for _, l := range tr.lanes {
		for i := range l.recs {
			if l.recs[i].kind == recSpan {
				out = append(out, l.recs[i].span)
			}
		}
	}
	return out
}

// Spans returns the collected spans sorted by start time.
func (tr *Tracer) Spans() []Span {
	out := tr.allSpans()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of retained spans (0 after streaming flushes).
func (tr *Tracer) Len() int {
	n := 0
	for _, l := range tr.lanes {
		for i := range l.recs {
			if l.recs[i].kind == recSpan {
				n++
			}
		}
	}
	return n
}

// maxEnd is the latest span end — the makespan fallback when the tracer is
// exported without a run report.
func (tr *Tracer) maxEnd() sim.Time {
	var m sim.Time
	for _, l := range tr.lanes {
		for i := range l.recs {
			if l.recs[i].kind == recSpan && l.recs[i].span.End > m {
				m = l.recs[i].span.End
			}
		}
	}
	return m
}

// Data assembles the causal trace: spans sorted by ID and edges (lanes
// merged in node order) with message endpoints resolved from command IDs to
// their claiming spans. Edges whose endpoints have no recorded span are
// dropped.
func (tr *Tracer) Data(makespan sim.Time) prof.Trace {
	spans := tr.allSpans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	ids := make(map[uint64]bool, len(spans))
	for i := range spans {
		ids[spans[i].ID] = true
	}
	resolve := func(id uint64) uint64 {
		for _, l := range tr.lanes {
			if sp, ok := l.claims[id]; ok && ids[sp] {
				return sp
			}
		}
		return id
	}
	edges := make([]prof.Edge, 0)
	for _, l := range tr.lanes {
		for i := range l.recs {
			if l.recs[i].kind != recEdge {
				continue
			}
			e := l.recs[i].edge
			pe := prof.Edge{Kind: e.kind, From: e.from, To: e.to, At: e.at, Post: e.post, Bytes: e.bytes}
			if e.kind == "msg" {
				pe.From = resolve(e.from)
				pe.To = resolve(e.to)
			}
			if !ids[pe.From] || !ids[pe.To] {
				continue
			}
			edges = append(edges, pe)
		}
	}
	if makespan < tr.maxEnd() {
		makespan = tr.maxEnd()
	}
	return prof.Trace{Makespan: makespan, Spans: spans, Edges: edges}
}

// WriteJSON emits the spans as a JSON array.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr.Spans())
}

// chromeEvent is one entry of the Chrome trace event format, loadable in
// chrome://tracing and Perfetto: "M" metadata, "X" complete spans, "s"/"f"
// message flows, "C" counters. pid = node; tid = rank for the host lane and
// (rank+1)*1e6+queue for device lanes; timestamps in microseconds of
// virtual time.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTid maps a span to its Chrome thread lane.
func chromeTid(s *Span) int {
	if s.Stream < 0 {
		return s.Rank
	}
	return (s.Rank+1)*1_000_000 + s.Stream
}

// WriteChromeTrace emits the trace in Chrome trace event format: metadata
// naming every process/thread lane, complete events per span (with bytes
// and peer args on data-carrying spans), flow events connecting every
// matched send/recv span pair, and counter events from the attached
// metrics snapshot.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	data := tr.Data(0)
	events := metadataEvents(data.Spans)
	byID := make(map[uint64]*Span, len(data.Spans))
	for i := range data.Spans {
		byID[data.Spans[i].ID] = &data.Spans[i]
	}
	for _, s := range tr.Spans() {
		ev := chromeEvent{
			Name: fmt.Sprintf("%s:%s", s.Kind, s.Name),
			Cat:  s.Kind,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  s.Node,
			Tid:  chromeTid(&s),
		}
		if s.Bytes > 0 || s.Peer >= 0 {
			ev.Args = map[string]any{}
			if s.Bytes > 0 {
				ev.Args["bytes"] = s.Bytes
			}
			if s.Peer >= 0 {
				ev.Args["peer"] = s.Peer
			}
		}
		events = append(events, ev)
	}
	flow := 0
	for _, e := range data.Edges {
		if e.Kind != "msg" {
			continue
		}
		from, to := byID[e.From], byID[e.To]
		flow++
		fts := float64(to.End) / 1e3
		if sts := float64(from.End) / 1e3; fts < sts {
			fts = sts // flows must not point backwards in trace time
		}
		events = append(events,
			chromeEvent{Name: "msg", Cat: "msg", Ph: "s", ID: flow,
				Ts: float64(from.End) / 1e3, Pid: from.Node, Tid: chromeTid(from)},
			chromeEvent{Name: "msg", Cat: "msg", Ph: "f", BP: "e", ID: flow,
				Ts: fts, Pid: to.Node, Tid: chromeTid(to)})
	}
	events = append(events, tr.counterEvents()...)
	return json.NewEncoder(w).Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// metadataEvents names every process ("node N") and thread lane ("rank R",
// "rank R q<Q>") appearing in the spans, sorted for determinism.
func metadataEvents(spans []Span) []chromeEvent {
	nodes := map[int]bool{}
	type laneKey struct{ pid, tid int }
	lanes := map[laneKey]string{}
	for i := range spans {
		s := &spans[i]
		nodes[s.Node] = true
		name := fmt.Sprintf("rank %d", s.Rank)
		if s.Stream >= 0 {
			name = fmt.Sprintf("rank %d q%d", s.Rank, s.Stream)
		}
		lanes[laneKey{s.Node, chromeTid(s)}] = name
	}
	pids := make([]int, 0, len(nodes))
	for n := range nodes {
		pids = append(pids, n)
	}
	sort.Ints(pids)
	var out []chromeEvent
	for _, pid := range pids {
		out = append(out, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("node %d", pid)},
		})
	}
	keys := make([]laneKey, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	for _, k := range keys {
		out = append(out, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: k.pid, Tid: k.tid,
			Args: map[string]any{"name": lanes[k]},
		})
	}
	return out
}

// counterEvents converts the attached snapshot's counter and gauge series
// into Chrome counter events at the time of their last mutation, sorted by
// timestamp with a name tie-break so the trace bytes are deterministic
// regardless of snapshot family order. Histograms and the (potentially
// huge) per-resource monitor families are left to the JSON/Prometheus
// exports.
func (tr *Tracer) counterEvents() []chromeEvent {
	if tr.metrics == nil {
		return nil
	}
	var out []chromeEvent
	for _, f := range tr.metrics.Families {
		if f.Kind == "histogram" || strings.HasPrefix(f.Name, "sim_resource_") {
			continue
		}
		for _, s := range f.Series {
			v := float64(s.Value)
			if f.Kind == "gauge" {
				v = s.GaugeValue
			}
			name := f.Name
			if len(s.Labels) > 0 {
				parts := make([]string, 0, len(s.Labels))
				for _, l := range s.Labels {
					parts = append(parts, l.Key+"="+l.Value)
				}
				name += "{" + strings.Join(parts, ",") + "}"
			}
			out = append(out, chromeEvent{
				Name: name,
				Cat:  "metric",
				Ph:   "C",
				Ts:   float64(s.LastNs) / 1e3,
				Args: map[string]any{"value": v},
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// span records an interval on the task's host lane when tracing is enabled.
func (t *Task) span(kind, name string, start sim.Time) {
	tr := t.rt.Cfg.Trace
	if tr == nil {
		return
	}
	tr.record(Span{Rank: t.rank, Node: t.pl.Node, Stream: -1, Kind: kind,
		Name: name, Start: start, End: t.proc.Now(), Peer: -1})
}

// traceMark opens a claim scope for a collective (see Tracer.claimSince);
// -1 when tracing is off.
func (t *Task) traceMark() int {
	if tr := t.rt.Cfg.Trace; tr != nil {
		return tr.pendingMark(t.pl.Node, t.rank)
	}
	return -1
}

// mpiSpan records a blocking MPI interval on the host lane and claims the
// listed commands (plus, when mark >= 0, every command posted since mark)
// so that message edges resolve to this span. Returns the span ID (0 when
// tracing is off).
func (t *Task) mpiSpan(name string, start sim.Time, mark, peer int, bytes int64, cmds ...*msg.Cmd) uint64 {
	tr := t.rt.Cfg.Trace
	if tr == nil {
		return 0
	}
	end := t.proc.Now()
	id := tr.record(Span{Rank: t.rank, Node: t.pl.Node, Stream: -1, Kind: "mpi",
		Name: name, Start: start, End: end, Bytes: bytes, Peer: peer})
	for _, c := range cmds {
		if c != nil && c.TraceID != 0 {
			tr.claim(t.pl.Node, c.TraceID, id, end)
		}
	}
	if mark >= 0 {
		tr.claimSince(t.pl.Node, t.rank, mark, id, end)
	}
	return id
}

// traceCmd tags a freshly posted command for causal tracing.
func (t *Task) traceCmd(p *sim.Proc, cmd *msg.Cmd) {
	tr := t.rt.Cfg.Trace
	if tr == nil {
		return
	}
	cmd.TraceID = tr.laneID(t.pl.Node)
	cmd.PostedAt = p.Now()
	tr.registerPending(t.pl.Node, t.rank, cmd.TraceID)
}
