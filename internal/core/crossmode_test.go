package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// TestCrossModeEquivalence is the whole-stack property test: a randomly
// generated communication program (point-to-point pairs, broadcasts,
// reductions, gathers, all-to-alls, barriers over random buffers) must
// produce bit-identical task data under the IMPACC runtime and the legacy
// MPI+OpenACC baseline. Fusion, aliasing, unified address spaces, and the
// staged transports may change *timing*, never *data*.
func TestCrossModeEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := runRandomProgram(t, core(IMPACC), seed)
			b := runRandomProgram(t, core(Legacy), seed)
			if len(a) != len(b) {
				t.Fatalf("digest counts differ: %d vs %d", len(a), len(b))
			}
			for rank := range a {
				if a[rank] != b[rank] {
					t.Errorf("rank %d digests differ: IMPACC %x, legacy %x", rank, a[rank], b[rank])
				}
			}
		})
	}
}

func core(m Mode) Config {
	return Config{System: topo.PSG(), Mode: m, Backed: true, MaxTasks: 4}
}

// runRandomProgram executes a seed-determined op sequence and returns one
// data digest per rank.
func runRandomProgram(t *testing.T, cfg Config, seed uint64) []uint64 {
	t.Helper()
	cfg.Seed = 12345 // runtime seed fixed; program shape driven by `seed`
	const elems = 64
	const nbuf = 4
	digests := make([]uint64, 4)
	_, err := Run(cfg, func(tk *Task) {
		prog := sim.NewRNG(seed) // same stream on every task and mode
		n := tk.Size()
		bufs := make([]xmem.Addr, nbuf)
		for i := range bufs {
			bufs[i] = tk.Malloc(elems * 8)
			v := tk.Floats(bufs[i], elems)
			for j := range v {
				v[j] = float64(tk.Rank()*1000 + i*100 + j)
			}
		}
		scratch := tk.Malloc(elems * 8 * int64(n))
		ops := 10 + prog.Intn(10)
		for op := 0; op < ops; op++ {
			kind := prog.Intn(6)
			b := bufs[prog.Intn(nbuf)]
			count := 1 + prog.Intn(elems)
			tag := prog.Intn(50)
			switch kind {
			case 0: // point-to-point pair
				src := prog.Intn(n)
				dst := (src + 1 + prog.Intn(n-1)) % n
				if tk.Rank() == src {
					tk.Send(b, count, mpi.Float64, dst, tag)
				} else if tk.Rank() == dst {
					tk.Recv(b, count, mpi.Float64, src, tag)
				}
			case 1: // broadcast
				root := prog.Intn(n)
				tk.Bcast(b, count, mpi.Float64, root)
			case 2: // allreduce
				op := []mpi.Op{mpi.Sum, mpi.Max, mpi.Min}[prog.Intn(3)]
				out := bufs[prog.Intn(nbuf)]
				tk.Allreduce(b, out, count, mpi.Float64, op)
			case 3: // gather to a root
				root := prog.Intn(n)
				tk.Gather(b, count, mpi.Float64, scratch, root)
				if tk.Rank() == root {
					// Fold the gathered block back into a buffer so it
					// affects the digest.
					g := tk.Floats(scratch, count*n)
					v := tk.Floats(b, elems)
					for i := 0; i < count; i++ {
						v[i] = g[i*n%len(g)] + v[i]/2
					}
				}
			case 4: // alltoall over per-rank blocks
				blk := 1 + prog.Intn(elems/n)
				tk.Alltoall(scratch, blk, mpi.Float64, scratch)
			case 5:
				tk.Barrier()
			}
		}
		// Digest every buffer's final bytes.
		h := fnv.New64a()
		for _, b := range bufs {
			h.Write(tk.Bytes(b, elems*8))
		}
		h.Write(tk.Bytes(scratch, elems*8*int64(n)))
		digests[tk.Rank()] = h.Sum64()
	})
	if err != nil {
		t.Fatalf("mode %v seed %d: %v", cfg.Mode, seed, err)
	}
	return digests
}
