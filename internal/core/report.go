package core

import (
	"fmt"
	"io"
	"sort"

	"impacc/internal/device"
	"impacc/internal/msg"
	"impacc/internal/prof"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

// TaskReport is one task's accounting after a run.
type TaskReport struct {
	Rank       int
	Node       int
	Device     int
	DeviceType topo.DeviceClass
	End        sim.Time // when the task's program returned
	Comm       sim.Dur  // host time blocked in MPI operations
	AccWait    sim.Dur  // host time blocked in acc wait / sync kernels
	HostBusy   sim.Dur  // host compute time
	Dev        device.Stats
	// LeakedMappings counts device data mappings still present when the
	// task returned — enter-data without matching exit-data.
	LeakedMappings int
}

// HubReport is one node hub's accounting.
type HubReport struct {
	Node        int
	Stats       msg.Stats
	HandlerBusy sim.Dur
	// Link utilization: accumulated busy time of the node's shared
	// resources over the run.
	NICOutBusy, NICInBusy, MemBusBusy sim.Dur
	PCIeBusy                          []sim.Dur
}

// RunInfo is the report's provenance block: enough of the run's identity
// that an exported artifact describes itself. Every field is a pure
// function of the Config content (worker count, tracing, and other
// observers are deliberately absent — they never change simulated bytes,
// so they must not change report bytes either).
type RunInfo struct {
	// Scheme is the canonical Config encoding tag (ConfigHashScheme) and
	// Hash the content address under it — the same key impacc-serve caches
	// by.
	Scheme string
	Hash   string
	// System is the topology preset the run simulated.
	System string
	// Shards is the sharded engine's shard count — a property of the
	// configuration (one shard per node when the fabric offers lookahead),
	// not of the -par-sim worker count.
	Shards int
	// Chaos is the canonical fault-injection spec; empty on healthy runs.
	Chaos string
	// Limits are the run's resource caps (zero fields unlimited).
	Limits Limits
}

// Report summarizes a run.
type Report struct {
	Run     RunInfo
	Mode    Mode
	System  string
	NTasks  int
	Elapsed sim.Dur // max task end time
	Tasks   []TaskReport
	Hubs    []HubReport
	// Metrics is the full telemetry registry snapshot taken at run end,
	// after link utilization gauges are recorded. See internal/telemetry.
	Metrics *telemetry.Snapshot
	// Prof is the causal-trace profile (critical path, per-rank breakdowns,
	// call-site table); nil unless the run was traced. See internal/prof.
	Prof *prof.Profile
}

func (rt *Runtime) buildReport() *Report {
	r := &Report{
		Run: RunInfo{
			Scheme: ConfigHashScheme,
			Hash:   rt.Cfg.Hash(),
			System: rt.Cfg.System.Name,
			Shards: rt.group.Shards(),
			Limits: rt.Cfg.Limits,
		},
		Mode:   rt.Cfg.Mode,
		System: rt.Cfg.System.Name,
		NTasks: len(rt.tasks),
	}
	if rt.Cfg.Chaos != nil {
		r.Run.Chaos = rt.Cfg.Chaos.String()
	}
	for _, t := range rt.tasks {
		tr := TaskReport{
			Rank:           t.rank,
			Node:           t.pl.Node,
			Device:         t.pl.Device,
			DeviceType:     t.DeviceType(),
			End:            t.endAt,
			Comm:           t.commTime,
			AccWait:        t.env.WaitTime,
			HostBusy:       t.hostTime,
			Dev:            t.ep.Ctx.Stats,
			LeakedMappings: t.env.PT.Len(),
		}
		if sim.Dur(t.endAt) > r.Elapsed {
			r.Elapsed = sim.Dur(t.endAt)
		}
		r.Tasks = append(r.Tasks, tr)
	}
	var nodes []int
	for n := range rt.nodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		ns := rt.nodes[n]
		nr := rt.Fab.Node(n)
		hr := HubReport{
			Node:        n,
			Stats:       ns.hub.Stats(),
			HandlerBusy: ns.hub.HandlerBusy(),
			NICOutBusy:  nr.NICOut.BusyTime,
			NICInBusy:   nr.NICIn.BusyTime,
			MemBusBusy:  nr.MemBus.BusyTime,
		}
		for _, p := range nr.PCIe {
			if p != nil {
				hr.PCIeBusy = append(hr.PCIeBusy, p.BusyTime)
			} else {
				hr.PCIeBusy = append(hr.PCIeBusy, 0)
			}
		}
		r.Hubs = append(r.Hubs, hr)
	}
	reg := rt.runMetrics()
	rt.Fab.RecordUtilization(reg, r.Elapsed)
	r.Metrics = reg.Snapshot(int64(rt.group.MaxNow()))
	if tr := rt.Cfg.Trace; tr != nil && !tr.Streaming() {
		// A streaming tracer has already shipped (and dropped) its records,
		// so the in-memory views backing the profile are gone by design;
		// analyze a streamed file post-hoc with prof.ReadStream instead.
		tr.AttachMetrics(r.Metrics)
		r.Prof = prof.Analyze(tr.Data(sim.Time(r.Elapsed)), prof.DefaultTopSites)
	}
	return r
}

// TotalDev aggregates device stats across tasks.
func (r *Report) TotalDev() device.Stats {
	var s device.Stats
	for i := range r.Tasks {
		s.Add(&r.Tasks[i].Dev)
	}
	return s
}

// TotalHub aggregates hub counters across nodes.
func (r *Report) TotalHub() msg.Stats {
	var s msg.Stats
	for _, h := range r.Hubs {
		s.IntraMsgs += h.Stats.IntraMsgs
		s.NetIn += h.Stats.NetIn
		s.NetOut += h.Stats.NetOut
		s.FusedCopies += h.Stats.FusedCopies
		s.LegacyCopies += h.Stats.LegacyCopies
		s.Aliases += h.Stats.Aliases
		s.RDMADirect += h.Stats.RDMADirect
		s.Staged += h.Stats.Staged
	}
	return s
}

// Leaks sums unreleased device mappings across tasks (enter-data without
// exit-data); well-formed OpenACC programs end with zero.
func (r *Report) Leaks() int {
	total := 0
	for i := range r.Tasks {
		total += r.Tasks[i].LeakedMappings
	}
	return total
}

// MaxComm returns the largest per-task communication time.
func (r *Report) MaxComm() sim.Dur {
	var m sim.Dur
	for i := range r.Tasks {
		if r.Tasks[i].Comm > m {
			m = r.Tasks[i].Comm
		}
	}
	return m
}

// MeanKernel returns the average per-task kernel time.
func (r *Report) MeanKernel() sim.Dur {
	if len(r.Tasks) == 0 {
		return 0
	}
	var sum sim.Dur
	for i := range r.Tasks {
		sum += r.Tasks[i].Dev.KernelTime
	}
	return sum / sim.Dur(len(r.Tasks))
}

// Print writes a human-readable summary.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "%s on %s: %d tasks, elapsed %v\n", r.Mode, r.System, r.NTasks, r.Elapsed)
	dev := r.TotalDev()
	hub := r.TotalHub()
	fmt.Fprintf(w, "  kernels: %d (%v)  copies: HtoD %d  DtoH %d  DtoD %d  HtoH %d\n",
		dev.KernelCount, dev.KernelTime, dev.HtoDCount, dev.DtoHCount, dev.DtoDCount, dev.HtoHCount)
	fmt.Fprintf(w, "  msgs: intra %d  net-out %d  fused %d  aliased %d  rdma %d  staged %d\n",
		hub.IntraMsgs, hub.NetOut, hub.FusedCopies, hub.Aliases, hub.RDMADirect, hub.Staged)
	if r.Elapsed > 0 {
		var nic, pcie sim.Dur
		for _, h := range r.Hubs {
			nic += h.NICOutBusy
			for _, p := range h.PCIeBusy {
				pcie += p
			}
		}
		fmt.Fprintf(w, "  utilization: NIC %.1f%%  PCIe %.1f%% (aggregate across nodes/devices)\n",
			100*nic.Seconds()/(r.Elapsed.Seconds()*float64(len(r.Hubs))),
			100*pcie.Seconds()/(r.Elapsed.Seconds()*float64(max(1, len(r.Tasks)))))
	}
	if r.Prof != nil {
		fmt.Fprintf(w, "  critical path:")
		for _, k := range r.Prof.CritPath.SortedKinds() {
			fmt.Fprintf(w, "  %s %v", k, sim.Dur(r.Prof.CritPath.ByKindNs[k]))
		}
		fmt.Fprintf(w, "  (%d hops)\n", r.Prof.CritPath.Hops)
	}
}
