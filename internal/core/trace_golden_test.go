package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"impacc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildGoldenTracer hand-crafts a small but complete trace: host compute,
// a matched send/recv pair (flow events), device-lane kernel and copy with
// a stream edge, a cross-stream wait with an event edge, and an attached
// metrics snapshot (counter events). IDs are allocated in program order
// exactly as the runtime would.
func buildGoldenTracer() *Tracer {
	tr := NewTracer()
	tr.Reserve(2)
	sendCmd := tr.laneID(0) // lane 0 #1: send command posted by rank 0 (node 0)
	recvCmd := tr.laneID(1) // lane 1 #1: recv command posted by rank 1 (node 1)
	tr.registerPending(0, 0, sendCmd)
	tr.registerPending(1, 1, recvCmd)

	tr.record(Span{Rank: 0, Node: 0, Stream: -1, Kind: "compute", Name: "host",
		Start: 0, End: 1000, Peer: -1})
	sendSpan := tr.record(Span{Rank: 0, Node: 0, Stream: -1, Kind: "mpi", Name: "send",
		Start: 1000, End: 3000, Bytes: 4096, Peer: 1})
	tr.claim(0, sendCmd, sendSpan, 3000)
	recvSpan := tr.record(Span{Rank: 1, Node: 1, Stream: -1, Kind: "mpi", Name: "recv",
		Start: 500, End: 3200, Bytes: 4096, Peer: 0})
	tr.claim(1, recvCmd, recvSpan, 3200)
	tr.msgEdge(1, sendCmd, recvCmd, 1000, 2500, 4096)

	k := tr.laneID(0) // kernel enqueued on rank 0 queue 1
	c := tr.laneID(0) // copy chained behind it
	tr.depEdge(0, "stream", k, c, 1200)
	tr.record(Span{ID: k, Rank: 0, Node: 0, Stream: 1, Kind: "kernel", Name: "stencil",
		Start: 1500, End: 2500, Peer: -1})
	tr.record(Span{ID: c, Rank: 0, Node: 0, Stream: 1, Kind: "copy", Name: "DtoH",
		Start: 2500, End: 2600, Bytes: 8192, Peer: -1})
	w := tr.laneID(0) // cross-stream wait on rank 0 queue 2
	tr.depEdge(0, "event", c, w, 1300)
	tr.record(Span{ID: w, Rank: 0, Node: 0, Stream: 2, Kind: "accwait", Name: "qwait",
		Start: 1300, End: 2600, Peer: -1})

	tr.AttachMetrics(&telemetry.Snapshot{AtNs: 5000, Families: []telemetry.FamilySnap{
		{Name: "msg_net_out_total", Kind: "counter", Series: []telemetry.SeriesSnap{
			{Labels: []telemetry.Label{{Key: "node", Value: "0"}}, LastNs: 2500, Value: 2},
		}},
		{Name: "link_utilization", Kind: "gauge", Series: []telemetry.SeriesSnap{
			{LastNs: 5000, GaugeValue: 0.5},
		}},
		// Histograms are excluded from counter events.
		{Name: "device_kernel_duration_ns", Kind: "histogram", Series: []telemetry.SeriesSnap{
			{LastNs: 2500, Count: 1, Sum: 1000},
		}},
	}})
	return tr
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden file %s (run with -update to regenerate)\ngot:  %s\nwant: %s",
			path, buf.Bytes(), want)
	}
}
