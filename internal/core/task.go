package core

import (
	"fmt"
	"sort"

	"impacc/internal/acc"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/msg"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// Task is one MPI task: a lightweight user-level thread bound to a distinct
// accelerator (paper §2.3). Errors follow MPI's default
// MPI_ERRORS_ARE_FATAL handler: misuse panics with a *RunError, which the
// runtime recovers and surfaces from Run.
type Task struct {
	rank  int
	rt    *Runtime
	node  *nodeState
	pl    Placement
	local int // index among the node's tasks

	proc  *sim.Proc
	space *xmem.Space
	ep    *msg.Endpoint
	env   *acc.Env
	rng   *sim.RNG

	commTime sim.Dur
	hostTime sim.Dur
	// phase is the task's last observed activity ("compute", "accwait",
	// "mpi:<op>"), written only by the task's own process and read by the
	// progress observer at beat barriers (which order the accesses).
	phase string
	// mpiLat caches the task's per-op MPI latency histograms.
	mpiLat  map[string]*telemetry.Histogram
	endAt   sim.Time
	err     error
	collSeq int
	// scratch is a tiny runtime-internal buffer used as the payload of
	// synchronization-only messages (barriers).
	scratch xmem.Addr
	// uqPending tracks MPI operations in flight on each unified activity
	// queue (§3.6); later queue operations drain them first.
	uqPending map[int][]*uqOp
	// world is the MPI_COMM_WORLD view of this task.
	world *Comm
}

// dur converts an elapsed virtual-time difference to a duration.
func dur(x sim.Time) sim.Dur { return sim.Dur(x) }

// eng returns the engine hosting this task's node — the only engine a task
// may create events on or read the clock from under sharded execution.
func (t *Task) eng() *sim.Engine { return t.rt.Fab.Engine(t.pl.Node) }

// taskSink adapts the tracer to device.TraceSink, stamping device spans
// with the owning task's rank and node.
type taskSink struct {
	tr   *Tracer
	rank int
	node int
}

func (s *taskSink) NewID() uint64 { return s.tr.laneID(s.node) }

func (s *taskSink) Span(id uint64, stream int, kind, name string, start, end sim.Time, bytes int64) {
	s.tr.record(Span{ID: id, Rank: s.rank, Node: s.node, Stream: stream,
		Kind: kind, Name: name, Start: start, End: end, Bytes: bytes, Peer: -1})
}

func (s *taskSink) Edge(kind string, from, to uint64, at sim.Time) {
	s.tr.depEdge(s.node, kind, from, to, at)
}

// newTask wires one task's space, endpoint, device context, and ACC env.
func (rt *Runtime) newTask(rank int, pl Placement, ns *nodeState) *Task {
	t := &Task{rank: rank, rt: rt, node: ns, pl: pl}
	sys := rt.Cfg.System
	if rt.Cfg.Mode == IMPACC {
		t.space = ns.space
	} else {
		t.space = xmem.NewSpace(fmt.Sprintf("proc%d", rank), len(sys.Nodes[pl.Node].Devices))
	}
	for _, other := range rt.placements[:rank] {
		if other.Node == pl.Node {
			t.local++
		}
	}
	// Application host arrays are pageable under both runtimes; only the
	// message hub's internal staging buffers are pre-pinned (paper §3.7).
	// IMPACC's data-transfer edge comes from NUMA pinning, not from
	// pinning the user's heap.
	ctx := ns.devrt.NewContext(pl.Device, t.space, rt.pinSocket(pl), rt.Cfg.Backed, false)
	if rt.Cfg.Trace != nil {
		ctx.Sink = &taskSink{tr: rt.Cfg.Trace, rank: rank, node: pl.Node}
	}
	t.ep = &msg.Endpoint{Rank: rank, Node: pl.Node, Space: t.space, Ctx: ctx}
	t.env = acc.NewEnv(ctx)
	t.rng = sim.NewRNG(rt.Cfg.Seed ^ (uint64(rank)*0x9E3779B97F4A7C15 + 0x1234567))
	t.scratch, _ = t.space.AllocHost(64, false)
	t.uqPending = map[int][]*uqOp{}
	t.mpiLat = map[string]*telemetry.Histogram{}
	t.world = rt.newWorld(t)
	return t
}

// fail aborts the task with MPI_ERRORS_ARE_FATAL semantics.
func (t *Task) fail(err error) {
	panic(&RunError{Rank: t.rank, Err: err})
}

func (t *Task) failf(format string, args ...interface{}) {
	t.fail(fmt.Errorf(format, args...))
}

// Fail aborts the task with err (MPI_ERRORS_ARE_FATAL semantics); the run
// returns the error. Intended for applications built on the runtime.
func (t *Task) Fail(err error) { t.fail(err) }

// Failf is Fail with formatting.
func (t *Task) Failf(format string, args ...interface{}) { t.failf(format, args...) }

// CopyLocal copies bytes within the task's own memory, charged as a normal
// transfer on the shared links.
func (t *Task) CopyLocal(dst, src xmem.Addr, n int64) { t.localCopy(dst, src, n) }

// Rank returns the task's cluster-wide unique id.
func (t *Task) Rank() int { return t.rank }

// Size returns the total number of tasks (MPI_COMM_WORLD size).
func (t *Task) Size() int { return len(t.rt.tasks) }

// NodeIdx returns the index of the node hosting this task.
func (t *Task) NodeIdx() int { return t.pl.Node }

// DeviceIndex returns the attached accelerator's index within its node.
func (t *Task) DeviceIndex() int { return t.pl.Device }

// LocalIndex returns the task's index among its node's tasks.
func (t *Task) LocalIndex() int { return t.local }

// NumNodes returns the number of nodes hosting tasks.
func (t *Task) NumNodes() int { return len(t.rt.nodes) }

// DeviceType is acc_get_device_type: the class of the attached accelerator,
// the hook for manual load balancing across heterogeneous devices (§3.2).
func (t *Task) DeviceType() topo.DeviceClass { return t.env.DeviceType() }

// DeviceSpec exposes the attached accelerator's description.
func (t *Task) DeviceSpec() *topo.DeviceSpec { return t.ep.Ctx.Dev.Spec }

// SetDeviceNum is acc_set_device_num. The task-device mapping is fixed by
// the runtime for the application's lifetime, so the call is ignored
// (paper §3.2: "the runtime ignores any additional acc_set_device_num()
// calls by the host program"). It reports whether the request matched the
// existing assignment.
func (t *Task) SetDeviceNum(n int) bool { return n == t.pl.Device }

// ACC returns the task's OpenACC environment.
func (t *Task) ACC() *acc.Env { return t.env }

// RNG returns the task's deterministic random stream.
func (t *Task) RNG() *sim.RNG { return t.rng }

// Now returns the current virtual time.
func (t *Task) Now() sim.Time { return t.proc.Now() }

// sameNode reports whether rank runs on this task's node.
func (t *Task) sameNode(rank int) bool {
	return t.rt.placements[rank].Node == t.pl.Node
}

func (t *Task) checkRank(r int) {
	if r < 0 || r >= len(t.rt.tasks) {
		t.failf("rank %d out of range [0,%d)", r, len(t.rt.tasks))
	}
}

// ---- Memory management -------------------------------------------------

// Malloc allocates n bytes of host heap memory. Under IMPACC the
// allocation is hooked into the node heap table, making it a node heap
// aliasing candidate (§3.8).
func (t *Task) Malloc(n int64) xmem.Addr {
	total := t.rt.allocBytes.Add(n)
	if lim := t.rt.Cfg.Limits.MaxAllocBytes; lim > 0 && total > lim {
		t.failf("core: task heap limit exceeded: %d + %d bytes > cap %d",
			total-n, n, lim)
	}
	addr, err := t.space.AllocHost(n, t.rt.Cfg.Backed)
	if err != nil {
		t.fail(err)
	}
	if t.rt.Cfg.Mode == IMPACC {
		t.node.heap.Register(addr, n, t.rank)
	}
	return addr
}

// Free releases a Malloc'd allocation, honoring aliasing reference counts:
// freeing an aliased receive buffer releases one reference on the shared
// producer heap; the storage dies with the last reference (§3.8).
func (t *Task) Free(addr xmem.Addr) {
	if t.rt.Cfg.Mode != IMPACC {
		if err := t.space.Free(addr); err != nil {
			t.fail(err)
		}
		return
	}
	if seg, ok := t.space.SegmentAt(addr); ok && seg.AliasTo != xmem.Nil {
		target := seg.AliasTo
		if err := t.space.Free(addr); err != nil {
			t.fail(err)
		}
		ent, last, err := t.node.heap.Release(target)
		if err != nil {
			t.fail(err)
		}
		if last {
			if err := t.space.Free(ent.Base); err != nil {
				t.fail(err)
			}
		}
		return
	}
	ent, last, err := t.node.heap.Release(addr)
	if err != nil {
		// Not heap-tracked (e.g. scratch owned elsewhere): plain free.
		if ferr := t.space.Free(addr); ferr != nil {
			t.fail(ferr)
		}
		return
	}
	if last {
		if err := t.space.Free(ent.Base); err != nil {
			t.fail(err)
		}
	}
}

// Floats returns a []float64 view of n elements at addr (nil when the run
// is unbacked).
func (t *Task) Floats(addr xmem.Addr, n int) []float64 {
	v, err := t.space.Float64s(addr, n)
	if err != nil {
		t.fail(err)
	}
	return v
}

// Bytes returns the raw storage at addr (nil when unbacked).
func (t *Task) Bytes(addr xmem.Addr, n int64) []byte {
	b, err := t.space.Bytes(addr, n)
	if err != nil {
		t.fail(err)
	}
	return b
}

// ---- Host compute ------------------------------------------------------

// Compute charges host CPU time for flops double-precision operations on
// the task's pinned socket, with deterministic jitter when configured.
func (t *Task) Compute(flops float64) {
	node := &t.rt.Cfg.System.Nodes[t.pl.Node]
	sock := t.ep.Ctx.Socket
	if sock < 0 {
		sock = 0
	}
	rate := node.Sockets[sock].GFlopsDP * 1e9
	t.Busy(sim.DurFromSeconds(flops / rate))
}

// Busy charges d of host CPU time (plus jitter). Under a chaos plan a
// straggling node stretches its compute by the plan's factor; the extra
// time is recorded as its own "straggle" span so profiles attribute it.
func (t *Task) Busy(d sim.Dur) {
	if t.rt.Cfg.JitterPct > 0 {
		f := 1 + t.rt.Cfg.JitterPct/100*(2*t.rng.Float64()-1)
		d = sim.Dur(float64(d) * f)
	}
	t.phase = "compute"
	start := t.proc.Now()
	t.proc.Sleep(d)
	t.hostTime += d
	t.span("compute", "host", start)
	if ft := t.rt.faults; ft != nil {
		if sf := ft.StraggleFactor(t.pl.Node, t.proc.Now()); sf > 1 {
			extra := sim.Dur(float64(d) * (sf - 1))
			s2 := t.proc.Now()
			t.proc.Sleep(extra)
			t.hostTime += extra
			t.span("straggle", "host", s2)
		}
	}
}

// ---- OpenACC facade ----------------------------------------------------

// DataEnter is "#pragma acc enter data" (copyin/create/present) for one
// host range; it returns the device address.
func (t *Task) DataEnter(host xmem.Addr, n int64, mode acc.EnterMode) xmem.Addr {
	d, err := t.env.DataEnter(t.proc, host, n, mode)
	if err != nil {
		t.fail(err)
	}
	return d
}

// DataExit is "#pragma acc exit data" (copyout/delete).
func (t *Task) DataExit(host xmem.Addr, mode acc.ExitMode) {
	if err := t.env.DataExit(t.proc, host, mode); err != nil {
		t.fail(err)
	}
}

// UpdateDevice is "#pragma acc update device(...)"; async < 0 blocks.
func (t *Task) UpdateDevice(host xmem.Addr, n int64, async int) {
	if async >= 0 {
		t.uqBarrier(async)
	}
	if err := t.env.UpdateDevice(t.proc, host, n, async); err != nil {
		t.fail(err)
	}
}

// UpdateHost is "#pragma acc update self(...)"; async < 0 blocks.
func (t *Task) UpdateHost(host xmem.Addr, n int64, async int) {
	if async >= 0 {
		t.uqBarrier(async)
	}
	if err := t.env.UpdateHost(t.proc, host, n, async); err != nil {
		t.fail(err)
	}
}

// Kernels launches a compute region; async < 0 blocks until completion.
// On a unified activity queue, the kernel starts only after every MPI
// operation previously placed on that queue has completed (§3.6).
func (t *Task) Kernels(spec device.KernelSpec, async int) {
	if async >= 0 {
		t.uqBarrier(async)
	}
	t.env.Kernels(t.proc, spec, async)
}

// ACCWait is "#pragma acc wait(q)": drains queued device work and any MPI
// operations in flight on queue q.
func (t *Task) ACCWait(q int) {
	t.phase = "accwait"
	start := t.proc.Now()
	t.uqBarrier(q)
	t.env.Wait(t.proc, q)
	t.span("accwait", "wait", start)
}

// ACCWaitAll is "#pragma acc wait" over every queue.
func (t *Task) ACCWaitAll() {
	var qs []int
	for q, pend := range t.uqPending {
		if len(pend) > 0 {
			qs = append(qs, q)
		}
	}
	sort.Ints(qs)
	t.phase = "accwait"
	start := t.proc.Now()
	for _, q := range qs {
		t.uqBarrier(q)
	}
	t.env.WaitAll(t.proc)
	t.span("accwait", "waitall", start)
}

// DevicePtr is acc_deviceptr.
func (t *Task) DevicePtr(host xmem.Addr) xmem.Addr {
	d, err := t.env.DevicePtr(host)
	if err != nil {
		t.fail(err)
	}
	return d
}

// Iprobe is MPI_Iprobe over MPI_COMM_WORLD.
func (t *Task) Iprobe(src, tag int, dt mpi.Datatype) (bool, int) {
	return t.world.Iprobe(src, tag, dt)
}

// Probe is MPI_Probe over MPI_COMM_WORLD.
func (t *Task) Probe(src, tag int, dt mpi.Datatype) int {
	return t.world.Probe(src, tag, dt)
}

// DataRange describes one allocation's role in a structured data region.
type DataRange struct {
	Addr  xmem.Addr
	Bytes int64
	// Enter selects the entry action (Copyin/Create/Present).
	Enter acc.EnterMode
	// Exit selects the region-end action (Copyout/Delete).
	Exit acc.ExitMode
}

// DataRegion is the structured "#pragma acc data { ... }" construct: the
// ranges enter the device data environment, body runs, and the region-end
// actions apply in reverse order — even if body panics.
func (t *Task) DataRegion(ranges []DataRange, body func()) {
	entered := 0
	defer func() {
		for i := entered - 1; i >= 0; i-- {
			t.DataExit(ranges[i].Addr, ranges[i].Exit)
		}
	}()
	for _, r := range ranges {
		t.DataEnter(r.Addr, r.Bytes, r.Enter)
		entered++
	}
	body()
}

// ACCWaitAsync is "#pragma acc wait(q) async(r)": queue r waits for queue q
// on the device, without blocking the host. Outstanding MPI operations on
// queue q are drained into its dependency first.
func (t *Task) ACCWaitAsync(q, r int) {
	t.uqBarrier(q)
	t.env.WaitAsync(q, r)
}
