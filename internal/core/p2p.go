package core

import (
	"fmt"
	"strings"

	"impacc/internal/mpi"
	"impacc/internal/msg"
	"impacc/internal/sim"
	"impacc/internal/xmem"
)

// Wildcards re-exported for applications.
const (
	AnySource = msg.AnySource
	AnyTag    = msg.AnyTag
)

// Opt modifies an MPI call, mirroring the IMPACC directive clauses of §3.5:
//
//	#pragma acc mpi sendbuf(device, readonly) async(1)
type Opt func(*callOpts)

type callOpts struct {
	device   bool
	readonly bool
	async    int
	comm     int
}

// OnDevice marks the buffer argument as host data whose *device copy*
// participates in the transfer (the sendbuf(device)/recvbuf(device)
// clause): the runtime translates the address through the present table.
func OnDevice() Opt { return func(o *callOpts) { o.device = true } }

// ReadOnly asserts the buffer is read-only around the call (the readonly
// attribute), enabling node heap aliasing (§3.8).
func ReadOnly() Opt { return func(o *callOpts) { o.readonly = true } }

// Async enqueues the MPI call on OpenACC activity queue q — the unified
// activity queue of §3.6. Requires IMPACC mode.
func Async(q int) Opt { return func(o *callOpts) { o.async = q } }

func parseOpts(opts []Opt) callOpts {
	o := callOpts{async: -1}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Request is a non-blocking communication handle (MPI_Request).
type Request struct {
	done *sim.Event
	cmd  *msg.Cmd
	uq   *uqOp
}

// Done reports whether the operation has completed (MPI_Test).
func (r *Request) Done() bool { return r.done.Fired() }

// uqOp tracks one MPI operation placed on a unified activity queue: the
// command materializes when the queue reaches the operation; proxy fires at
// transfer completion.
type uqOp struct {
	proxy *sim.Event
	cmd   *msg.Cmd
}

// resolveBuf applies the device clause and computes the byte count.
func (t *Task) resolveBuf(addr xmem.Addr, count int, dt mpi.Datatype, o callOpts) (xmem.Addr, int64) {
	if count < 0 {
		t.failf("negative count %d", count)
	}
	buf := addr
	if o.device {
		if t.rt.Cfg.Mode == Legacy {
			t.failf("sendbuf/recvbuf(device) requires IMPACC (legacy MPI sees host buffers only)")
		}
		buf = t.DevicePtr(addr)
	}
	return buf, int64(count) * dt.Size()
}

// newCmd assembles a message command. Ranks are world ranks; o.comm scopes
// the matching context.
func (t *Task) newCmd(isSend bool, buf xmem.Addr, bytes int64, src, dst, tag int, o callOpts) *msg.Cmd {
	return &msg.Cmd{
		IsSend: isSend, Src: src, Dst: dst, Tag: tag, Comm: o.comm,
		Addr: buf, Bytes: bytes, Ep: t.ep, ReadOnly: o.readonly,
		Done: t.eng().NewEvent(fmt.Sprintf("mpi-%d", t.rank)),
	}
}

// postSend initiates the send on process p and returns its command.
func (t *Task) postSend(p *sim.Proc, buf xmem.Addr, bytes int64, dst, tag int, o callOpts) *msg.Cmd {
	cmd := t.newCmd(true, buf, bytes, t.rank, dst, tag, o)
	t.traceCmd(p, cmd)
	if t.sameNode(dst) {
		t.node.hub.PostIntra(p, cmd)
	} else {
		t.node.hub.PostNetSend(p, cmd, t.rt.nodes[t.rt.placements[dst].Node].hub)
	}
	return cmd
}

// postRecv posts the receive on process p.
func (t *Task) postRecv(p *sim.Proc, buf xmem.Addr, bytes int64, src, tag int, o callOpts) *msg.Cmd {
	cmd := t.newCmd(false, buf, bytes, src, t.rank, tag, o)
	t.traceCmd(p, cmd)
	if src != AnySource && t.sameNode(src) {
		t.node.hub.PostIntra(p, cmd)
	} else {
		// Remote or wildcard source: the hub's unified matcher covers
		// both arrived internode messages and local sends.
		t.node.hub.PostNetRecv(p, cmd)
	}
	return cmd
}

func (t *Task) checkCmd(cmd *msg.Cmd) {
	if cmd.Err != nil {
		t.fail(cmd.Err)
	}
}

func (t *Task) checkTag(tag int) {
	if tag < 0 && tag != AnyTag {
		t.failf("application tags must be non-negative (got %d)", tag)
	}
}

// Send is MPI_Send on MPI_COMM_WORLD: blocking standard-mode send of count
// elements of dt at addr to rank dst. With Async(q), the call is placed on
// activity queue q and the host continues immediately (unified activity
// queue, §3.6).
func (t *Task) Send(addr xmem.Addr, count int, dt mpi.Datatype, dst, tag int, opts ...Opt) {
	t.checkRank(dst)
	t.sendOn(t.world, addr, count, dt, dst, tag, opts)
}

// Recv is MPI_Recv on MPI_COMM_WORLD. src may be AnySource, tag AnyTag.
func (t *Task) Recv(addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts ...Opt) {
	if src != AnySource {
		t.checkRank(src)
	}
	t.recvOn(t.world, addr, count, dt, src, tag, opts)
}

// Isend is MPI_Isend on MPI_COMM_WORLD: the send is initiated and a request
// returned. With Async(q) the operation instead joins activity queue q and
// the returned request completes when the queue reaches and finishes it.
func (t *Task) Isend(addr xmem.Addr, count int, dt mpi.Datatype, dst, tag int, opts ...Opt) *Request {
	t.checkRank(dst)
	return t.isendOn(t.world, addr, count, dt, dst, tag, opts)
}

// Irecv is MPI_Irecv on MPI_COMM_WORLD.
func (t *Task) Irecv(addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts ...Opt) *Request {
	if src != AnySource {
		t.checkRank(src)
	}
	return t.irecvOn(t.world, addr, count, dt, src, tag, opts)
}

// sendOn implements blocking send over communicator c (dst is a comm rank).
func (t *Task) sendOn(c *Comm, addr xmem.Addr, count int, dt mpi.Datatype, dst, tag int, opts []Opt) {
	o := parseOpts(opts)
	o.comm = c.id
	t.checkTag(tag)
	wdst := c.ranks[dst]
	buf, bytes := t.resolveBuf(addr, count, dt, o)
	if o.async >= 0 {
		t.enqueueUnifiedMPI("mpi_send", o.async, func(p *sim.Proc) *msg.Cmd {
			return t.postSend(p, buf, bytes, wdst, tag, o)
		})
		return
	}
	start := t.proc.Now()
	cmd := t.postSend(t.proc, buf, bytes, wdst, tag, o)
	cmd.Done.Wait(t.proc)
	t.commTime += sim.Dur(t.proc.Now() - start)
	t.mpiObserve("send", start)
	t.mpiSpan("send", start, -1, wdst, bytes, cmd)
	t.checkCmd(cmd)
}

// recvOn implements blocking receive over communicator c.
func (t *Task) recvOn(c *Comm, addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts []Opt) {
	o := parseOpts(opts)
	o.comm = c.id
	t.checkTag(tag)
	wsrc := src
	if src != AnySource {
		wsrc = c.ranks[src]
	}
	buf, bytes := t.resolveBuf(addr, count, dt, o)
	if o.async >= 0 {
		t.enqueueUnifiedMPI("mpi_recv", o.async, func(p *sim.Proc) *msg.Cmd {
			return t.postRecv(p, buf, bytes, wsrc, tag, o)
		})
		return
	}
	start := t.proc.Now()
	cmd := t.postRecv(t.proc, buf, bytes, wsrc, tag, o)
	cmd.Done.Wait(t.proc)
	t.commTime += sim.Dur(t.proc.Now() - start)
	t.mpiObserve("recv", start)
	t.mpiSpan("recv", start, -1, cmd.MatchedSrc, cmd.MatchedBytes, cmd)
	t.checkCmd(cmd)
}

// isendOn implements non-blocking send over communicator c.
func (t *Task) isendOn(c *Comm, addr xmem.Addr, count int, dt mpi.Datatype, dst, tag int, opts []Opt) *Request {
	o := parseOpts(opts)
	o.comm = c.id
	t.checkTag(tag)
	wdst := c.ranks[dst]
	buf, bytes := t.resolveBuf(addr, count, dt, o)
	if o.async >= 0 {
		return t.enqueueUnifiedMPI("mpi_isend", o.async, func(p *sim.Proc) *msg.Cmd {
			return t.postSend(p, buf, bytes, wdst, tag, o)
		})
	}
	start := t.proc.Now()
	cmd := t.postSend(t.proc, buf, bytes, wdst, tag, o)
	t.commTime += sim.Dur(t.proc.Now() - start)
	t.mpiObserve("isend", start)
	return &Request{done: cmd.Done, cmd: cmd}
}

// irecvOn implements non-blocking receive over communicator c.
func (t *Task) irecvOn(c *Comm, addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts []Opt) *Request {
	o := parseOpts(opts)
	o.comm = c.id
	t.checkTag(tag)
	wsrc := src
	if src != AnySource {
		wsrc = c.ranks[src]
	}
	buf, bytes := t.resolveBuf(addr, count, dt, o)
	if o.async >= 0 {
		return t.enqueueUnifiedMPI("mpi_irecv", o.async, func(p *sim.Proc) *msg.Cmd {
			return t.postRecv(p, buf, bytes, wsrc, tag, o)
		})
	}
	start := t.proc.Now()
	cmd := t.postRecv(t.proc, buf, bytes, wsrc, tag, o)
	t.commTime += sim.Dur(t.proc.Now() - start)
	t.mpiObserve("irecv", start)
	return &Request{done: cmd.Done, cmd: cmd}
}

// Wait is MPI_Wait/MPI_Waitall over the given requests.
func (t *Task) Wait(reqs ...*Request) {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		start := t.proc.Now()
		r.done.Wait(t.proc)
		t.commTime += sim.Dur(t.proc.Now() - start)
		t.mpiObserve("wait", start)
		cmd := r.cmd
		if cmd == nil && r.uq != nil {
			cmd = r.uq.cmd
		}
		peer, bytes := -1, int64(0)
		if cmd != nil {
			if cmd.IsSend {
				peer, bytes = cmd.Dst, cmd.Bytes
			} else {
				peer, bytes = cmd.MatchedSrc, cmd.MatchedBytes
			}
		}
		t.mpiSpan("wait", start, -1, peer, bytes, cmd)
		if r.cmd != nil {
			t.checkCmd(r.cmd)
		}
		if r.uq != nil && r.uq.cmd != nil {
			t.checkCmd(r.uq.cmd)
		}
	}
}

// Sendrecv is MPI_Sendrecv: concurrent blocking send and receive.
func (t *Task) Sendrecv(sendAddr xmem.Addr, sendCount int, sdt mpi.Datatype, dst, sendTag int,
	recvAddr xmem.Addr, recvCount int, rdt mpi.Datatype, src, recvTag int, opts ...Opt) {
	sr := t.Isend(sendAddr, sendCount, sdt, dst, sendTag, opts...)
	rr := t.Irecv(recvAddr, recvCount, rdt, src, recvTag, opts...)
	t.Wait(sr, rr)
}

// enqueueUnifiedMPI places an MPI operation on activity queue q: the
// unified activity queue of §3.6. The operation *initiates* when the queue
// reaches it (so two adjacent non-blocking calls can be in flight together,
// as in Figure 4 (c)); its completion is tracked, and any later kernel,
// data operation, or wait on the same queue first drains outstanding MPI
// completions — the queue's in-order completion guarantee.
func (t *Task) enqueueUnifiedMPI(name string, q int, init func(p *sim.Proc) *msg.Cmd) *Request {
	if t.rt.Cfg.Mode == Legacy || !t.rt.feats.UnifiedQueue {
		t.failf("async MPI (%s) requires the IMPACC unified activity queue", name)
	}
	op := &uqOp{proxy: t.eng().NewEvent(name + "-done")}
	hop := strings.TrimPrefix(name, "mpi_")
	tr := t.rt.Cfg.Trace
	t.env.Stream(q).EnqueueFunc(name, func(p *sim.Proc) {
		start := p.Now()
		cmd := init(p)
		op.cmd = cmd
		if tr != nil && cmd.TraceID != 0 {
			// The queued operation observes its own command: its span is
			// recorded on the stream lane under the command's trace ID, so
			// message edges point at the stream activity, not the host.
			tr.claim(t.pl.Node, cmd.TraceID, cmd.TraceID, p.Now())
		}
		cmd.Done.OnFire(func() {
			// Latency of the queued op itself: from when the queue
			// reached it to command completion.
			t.mpiObserve(hop, start)
			if tr != nil && cmd.TraceID != 0 {
				peer, bytes := cmd.Dst, cmd.Bytes
				if !cmd.IsSend {
					peer, bytes = cmd.MatchedSrc, cmd.MatchedBytes
				}
				tr.record(Span{ID: cmd.TraceID, Rank: t.rank, Node: t.pl.Node,
					Stream: q, Kind: "mpi", Name: hop, Start: start,
					End: t.eng().Now(), Bytes: bytes, Peer: peer})
			}
			op.proxy.Fire()
		})
		//impacc:allow-spanbalance span is recorded asynchronously by the Done.OnFire completion callback above; a command that never completes deadlocks and aborts the run
	})
	t.uqPending[q] = append(t.uqPending[q], op)
	return &Request{done: op.proxy, uq: op}
}

// uqBarrier enqueues a completion barrier for all MPI operations placed on
// queue q so far: the next queued operation starts only after they finish.
func (t *Task) uqBarrier(q int) {
	pend := t.uqPending[q]
	if len(pend) == 0 {
		return
	}
	t.uqPending[q] = nil
	rank := t.rank
	t.env.Stream(q).EnqueueFunc("uq-barrier", func(p *sim.Proc) {
		for _, op := range pend {
			op.proxy.Wait(p)
			if op.cmd != nil && op.cmd.Err != nil {
				panic(&RunError{Rank: rank, Err: op.cmd.Err})
			}
		}
	})
}

// Status reports which message satisfied a receive (MPI_Status): the world
// rank of the sender, the tag, and the element count actually received.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Status returns the matched-message information of a completed receive
// request; Count is in dt units. Meaningful after Wait/Done.
func (r *Request) Status(dt mpi.Datatype) Status {
	cmd := r.cmd
	if cmd == nil && r.uq != nil {
		cmd = r.uq.cmd
	}
	if cmd == nil || !r.done.Fired() {
		return Status{Source: AnySource, Tag: AnyTag}
	}
	return Status{
		Source: cmd.MatchedSrc,
		Tag:    cmd.MatchedTag,
		Count:  int(cmd.MatchedBytes / dt.Size()),
	}
}

// RecvStatus is MPI_Recv returning the matched status — the companion of
// wildcard receives.
func (t *Task) RecvStatus(addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts ...Opt) Status {
	r := t.Irecv(addr, count, dt, src, tag, opts...)
	t.Wait(r)
	return r.Status(dt)
}

// Waitany is MPI_Waitany: block until one of the requests completes and
// return its index. Completed or nil entries are reported immediately.
func (t *Task) Waitany(reqs ...*Request) int {
	if len(reqs) == 0 {
		return -1
	}
	var lastWait uint64
	for {
		for i, r := range reqs {
			if r == nil {
				continue
			}
			if r.done.Fired() {
				if r.cmd != nil {
					if tr := t.rt.Cfg.Trace; tr != nil && lastWait != 0 && r.cmd.TraceID != 0 {
						tr.claim(t.pl.Node, r.cmd.TraceID, lastWait, t.proc.Now())
					}
					t.checkCmd(r.cmd)
				}
				return i
			}
		}
		// Park until any one fires: register a shared wake.
		any := t.eng().NewEvent("waitany")
		for _, r := range reqs {
			if r != nil {
				r.done.OnFire(any.Fire)
			}
		}
		start := t.proc.Now()
		any.Wait(t.proc)
		t.commTime += sim.Dur(t.proc.Now() - start)
		t.mpiObserve("wait", start)
		lastWait = t.mpiSpan("wait", start, -1, -1, 0)
	}
}
