package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

// leanArtifacts renders a run's report, metrics, and trace for byte-level
// comparison, with the content address blanked: Lean is hash-included (a
// lean and a non-lean submission are different cache entries), so Run.Hash
// is the one report field allowed to move.
func leanArtifacts(t *testing.T, cfg Config, prog Program) map[string][]byte {
	t.Helper()
	cfg.Trace = NewTracer()
	rep := mustRun(t, cfg, prog)
	if rep.Run.Hash == "" {
		t.Fatal("report carries no content address")
	}
	rep.Run.Hash = ""
	out := map[string][]byte{}
	var err error
	if out["report"], err = json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
	out["metrics"] = rep.metricsJSON(t)
	var trace bytes.Buffer
	if err := cfg.Trace.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	out["trace"] = trace.Bytes()
	return out
}

// TestLeanNoOpOnSmallSystems: at or below leanRankThreshold ranks Lean
// changes nothing — every artifact byte matches the non-lean run, and only
// the content address moves.
func TestLeanNoOpOnSmallSystems(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true, JitterPct: 1, Seed: 2016}
	plain := leanArtifacts(t, cfg, chaosProgram(t))
	cfg.Lean = true
	lean := leanArtifacts(t, cfg, chaosProgram(t))
	for art, want := range plain {
		if !bytes.Equal(lean[art], want) {
			t.Errorf("lean changed %s on a small system (%d vs %d bytes)",
				art, len(lean[art]), len(want))
		}
	}
	base := Config{System: topo.Beacon(2), Seed: 2016}
	h0 := base.Hash()
	base.Lean = true
	if base.Hash() == h0 {
		t.Error("Lean did not move the content address")
	}
}

// leanProg is a minimal MPI workload for large generated systems: one
// compute burst and one allreduce per rank, enough to populate latency
// histograms and phases without per-rank heap pressure.
func leanProg(tk *Task) {
	buf := tk.Malloc(8)
	defer tk.Free(buf)
	tk.Busy(5 * sim.Microsecond)
	tk.Allreduce(buf, buf, 1, mpi.Float64, mpi.Sum)
}

// TestLeanAggregatesAboveThreshold: past leanRankThreshold ranks, lean
// collapses per-rank telemetry to rank="all" series and heartbeats to
// sorted phase counts, and refuses a buffered tracer.
func TestLeanAggregatesAboveThreshold(t *testing.T) {
	sys, err := topo.Preset("gemini:4,8,9") // 288 nodes > leanRankThreshold
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sys.Nodes); n <= leanRankThreshold {
		t.Fatalf("test system has %d nodes, need > %d", n, leanRankThreshold)
	}
	var beats []Heartbeat
	cfg := Config{System: sys, Seed: 2016, Lean: true,
		Progress: &Progress{Every: 50 * sim.Microsecond, Emit: func(hb Heartbeat) { beats = append(beats, hb) }}}
	rep := mustRun(t, cfg, leanProg)

	for _, fam := range rep.Metrics.Families {
		if fam.Name != MPILatencyNs {
			continue
		}
		if len(fam.Series) == 0 {
			t.Fatal("no MPI latency series recorded")
		}
		for _, s := range fam.Series {
			for _, l := range s.Labels {
				if l.Key == "rank" && l.Value != "all" {
					t.Fatalf("lean run kept per-rank series rank=%q", l.Value)
				}
			}
		}
		if len(fam.Series) > 32 {
			t.Fatalf("lean run recorded %d latency series; want O(ops), not O(ranks)", len(fam.Series))
		}
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats emitted")
	}
	for _, hb := range beats {
		if len(hb.Phases) != 0 {
			t.Fatalf("lean heartbeat carries %d per-rank phases", len(hb.Phases))
		}
	}
	var counted bool
	for _, hb := range beats {
		for i := 1; i < len(hb.PhaseCounts); i++ {
			if hb.PhaseCounts[i-1].Phase >= hb.PhaseCounts[i].Phase {
				t.Fatal("phase counts not sorted by phase")
			}
		}
		if len(hb.PhaseCounts) > 0 {
			counted = true
		}
	}
	if !counted {
		t.Fatal("no heartbeat carried phase counts")
	}

	cfg.Progress = nil
	cfg.Trace = NewTracer() // buffered: would hold the whole causal graph
	if _, err := NewRuntime(cfg); err == nil || !strings.Contains(err.Error(), "streaming tracer") {
		t.Fatalf("buffered tracer on a lean big run: err = %v, want streaming-tracer rejection", err)
	}
}
