package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"impacc/internal/fault"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

// artifacts renders every observable output of a run — the report JSON, the
// telemetry snapshot, the Chrome trace, and the analyzed profile — for
// byte-level comparison.
func artifacts(t *testing.T, cfg Config, prog Program) map[string][]byte {
	t.Helper()
	cfg.Trace = NewTracer()
	rep := mustRun(t, cfg, prog)
	out := map[string][]byte{}
	var err error
	if out["report"], err = json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
	out["metrics"] = rep.metricsJSON(t)
	var trace bytes.Buffer
	if err := cfg.Trace.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	out["trace"] = trace.Bytes()
	var prof bytes.Buffer
	if err := rep.Prof.WriteJSON(&prof); err != nil {
		t.Fatal(err)
	}
	out["profile"] = prof.Bytes()
	return out
}

// TestParallelByteIdentity is the determinism matrix for the sharded engine:
// {serial, 2 workers, 8 workers} × {healthy, chaotic} × two multi-node
// presets (plus a single-node preset for the degenerate one-shard path).
// Every artifact a run can produce must be byte-identical across worker
// counts — the property that lets impacc-serve coalesce serial and parallel
// submissions onto one content address. Run under -race in CI, this doubles
// as the data-race proof for the window barriers.
func TestParallelByteIdentity(t *testing.T) {
	spec, err := fault.ParseSpec("7:degrade=*:4,rdmaflap=1:2ms:500us,straggle=0:1.5")
	if err != nil {
		t.Fatal(err)
	}
	systems := []struct {
		name string
		sys  func() *topo.System
	}{
		{"titan2", func() *topo.System { return topo.Titan(2) }},
		{"beacon2", func() *topo.System { return topo.Beacon(2) }},
		{"psg", topo.PSG}, // single node: one shard, serial window loop
	}
	for _, s := range systems {
		for _, chaos := range []*fault.Spec{nil, spec} {
			label := s.name + "/healthy"
			if chaos != nil {
				label = s.name + "/chaotic"
			}
			t.Run(label, func(t *testing.T) {
				cfg := Config{System: s.sys(), Mode: IMPACC, Backed: true,
					JitterPct: 1, Seed: 2016, Chaos: chaos}
				base := artifacts(t, cfg, chaosProgram(t))
				for _, workers := range []int{2, 8} {
					cfg.Parallel = workers
					got := artifacts(t, cfg, chaosProgram(t))
					for art, want := range base {
						if !bytes.Equal(got[art], want) {
							t.Errorf("par-sim %d: %s differs from serial (%d vs %d bytes)",
								workers, art, len(got[art]), len(want))
						}
					}
				}
			})
		}
	}
}

// TestParallelExcludedFromHash: Config.Parallel is a wall-clock knob, so it
// must not appear in the canonical encoding or perturb the content address.
func TestParallelExcludedFromHash(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Seed: 2016, JitterPct: 1}
	h0 := cfg.Hash()
	s0 := cfg.CanonicalString()
	for _, workers := range []int{1, 2, 8} {
		cfg.Parallel = workers
		if cfg.Hash() != h0 {
			t.Fatalf("Parallel=%d changed the config hash", workers)
		}
		if cfg.CanonicalString() != s0 {
			t.Fatalf("Parallel=%d changed the canonical encoding:\n%s", workers, cfg.CanonicalString())
		}
	}
}

// TestParallelLimitsStillApply: resource caps keep working under the sharded
// engine. The global event budget trips a *sim.LimitError for every worker
// count, and the error is byte-for-byte identical across worker counts: the
// group attributes the halt to the canonical (at, depth, lp, seq)-least
// event that exhausted the budget, independent of scheduling (DESIGN.md §12).
func TestParallelLimitsStillApply(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4}
	cfg.Limits.MaxEvents = 2000
	var serialMsg string
	for _, workers := range []int{0, 1, 2, 8} {
		cfg.Parallel = workers
		_, err := Run(cfg, longProg(1000))
		var le *sim.LimitError
		if !errors.As(err, &le) || le.Resource != "events" || le.Limit != 2000 {
			t.Fatalf("workers=%d: Run = %v, want *sim.LimitError{events, 2000}", workers, err)
		}
		if serialMsg == "" {
			serialMsg = err.Error()
		} else if err.Error() != serialMsg {
			t.Fatalf("workers=%d halt diverges from serial:\n %s\n %s", workers, err, serialMsg)
		}
	}
}

// TestParallelCancel: Cancel still tears a parallel run down cleanly — a
// *sim.CancelError out of Execute, nothing merged into a shared registry —
// exactly like the serial engine (cancel_test.go covers that path).
func TestParallelCancel(t *testing.T) {
	shared := telemetry.NewRegistry()
	cfg := Config{System: topo.Beacon(2), Backed: true, Metrics: shared, Parallel: 2}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Eng.At(sim.Time(500*sim.Microsecond), rt.Cancel)
	_, err = rt.Execute(longProg(1000))
	var ce *sim.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Execute = %v, want *sim.CancelError", err)
	}
	if snap := shared.Snapshot(0); len(snap.Families) != 0 {
		t.Fatalf("cancelled parallel run merged %d metric families into the shared registry", len(snap.Families))
	}
}
