package core

import (
	"testing"

	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

func TestCommSplitRowsAndCols(t *testing.T) {
	// 8 PSG tasks as a 2x4 grid: split into row and column communicators
	// and reduce within each.
	mustRun(t, psgCfg(IMPACC, 8), func(tk *Task) {
		w := tk.World()
		if w.Rank() != tk.Rank() || w.Size() != 8 || w.ID() != 0 {
			t.Errorf("world view wrong: %d/%d id %d", w.Rank(), w.Size(), w.ID())
		}
		row := w.Split(tk.Rank()/4, tk.Rank())
		col := w.Split(tk.Rank()%4, tk.Rank())
		if row.Size() != 4 || col.Size() != 2 {
			t.Fatalf("rank %d: row size %d, col size %d", tk.Rank(), row.Size(), col.Size())
		}
		if row.Rank() != tk.Rank()%4 || col.Rank() != tk.Rank()/4 {
			t.Fatalf("rank %d: row rank %d, col rank %d", tk.Rank(), row.Rank(), col.Rank())
		}
		if row.WorldRank(row.Rank()) != tk.Rank() {
			t.Fatal("world rank translation broken")
		}
		// Row-wise sum of world ranks.
		in, out := tk.Malloc(8), tk.Malloc(8)
		tk.Floats(in, 1)[0] = float64(tk.Rank())
		row.Allreduce(in, out, 1, mpi.Float64, mpi.Sum)
		want := 0.0
		for r := 0; r < 4; r++ {
			want += float64(tk.Rank()/4*4 + r)
		}
		if got := tk.Floats(out, 1)[0]; got != want {
			t.Errorf("rank %d row sum = %v, want %v", tk.Rank(), got, want)
		}
		// Column-wise max.
		col.Allreduce(in, out, 1, mpi.Float64, mpi.Max)
		if got := tk.Floats(out, 1)[0]; got != float64(tk.Rank()%4+4) {
			t.Errorf("rank %d col max = %v", tk.Rank(), got)
		}
	})
}

func TestCommIsolationSameTag(t *testing.T) {
	// Two disjoint communicators exchanging with identical (src, dst, tag)
	// comm-rank patterns: messages must never cross contexts.
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		g := tk.World().Split(tk.Rank()%2, tk.Rank()) // evens, odds
		buf := tk.Malloc(8)
		if g.Rank() == 0 {
			tk.Floats(buf, 1)[0] = float64(100 + tk.Rank())
			g.Send(buf, 1, mpi.Float64, 1, 5)
		} else {
			g.Recv(buf, 1, mpi.Float64, 0, 5)
			want := float64(100 + tk.Rank() - 2) // my group's rank 0
			if got := tk.Floats(buf, 1)[0]; got != want {
				t.Errorf("rank %d got %v, want %v (context leak)", tk.Rank(), got, want)
			}
		}
	})
}

func TestCommWildcardScoped(t *testing.T) {
	// A wildcard receive on a sub-communicator must not swallow a world
	// message with the same destination.
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		g := tk.World().Split(tk.Rank()%2, tk.Rank())
		buf := tk.Malloc(8)
		wbuf := tk.Malloc(8)
		switch tk.Rank() {
		case 0:
			// World-context message to rank 2 (same node, dst of group
			// recv). Non-blocking sends: intra-node blocking sends are
			// synchronous (they complete at the fused copy), and the
			// receiver intentionally posts the receives out of order.
			tk.Floats(wbuf, 1)[0] = 7
			sw := tk.Isend(wbuf, 1, mpi.Float64, 2, 9)
			tk.Floats(buf, 1)[0] = 11
			sg := g.Isend(buf, 1, mpi.Float64, 1, 9) // group even: rank 1 = world 2
			tk.Wait(sw, sg)
		case 2:
			g.Recv(buf, 1, mpi.Float64, AnySource, AnyTag)
			if got := tk.Floats(buf, 1)[0]; got != 11 {
				t.Errorf("group wildcard got %v, want 11", got)
			}
			tk.Recv(wbuf, 1, mpi.Float64, 0, 9)
			if got := tk.Floats(wbuf, 1)[0]; got != 7 {
				t.Errorf("world recv got %v, want 7", got)
			}
		}
	})
}

func TestCommDupIsolated(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		d := tk.World().Dup()
		if d.ID() == 0 || d.Size() != 2 || d.Rank() != tk.Rank() {
			t.Fatalf("dup = id %d size %d rank %d", d.ID(), d.Size(), d.Rank())
		}
		buf := tk.Malloc(8)
		if tk.Rank() == 0 {
			buf2 := tk.Malloc(8)
			tk.Floats(buf, 1)[0] = 1
			s1 := d.Isend(buf, 1, mpi.Float64, 1, 0)
			tk.Floats(buf2, 1)[0] = 2
			s2 := tk.Isend(buf2, 1, mpi.Float64, 1, 0)
			tk.Wait(s1, s2)
		} else {
			// World recv posted first must still get the world message.
			tk.Recv(buf, 1, mpi.Float64, 0, 0)
			if tk.Floats(buf, 1)[0] != 2 {
				t.Error("world recv matched dup-context message")
			}
			d.Recv(buf, 1, mpi.Float64, 0, 0)
			if tk.Floats(buf, 1)[0] != 1 {
				t.Error("dup recv wrong payload")
			}
		}
	})
}

func TestCommSplitUndefinedColor(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		color := tk.Rank() % 2
		if tk.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		g := tk.World().Split(color, 0)
		if tk.Rank() == 3 {
			if g != nil {
				t.Error("undefined color must return nil comm")
			}
			return
		}
		if g == nil {
			t.Fatal("nil comm for defined color")
		}
		wantSize := 2
		if tk.Rank()%2 == 1 {
			wantSize = 1 // rank 3 dropped out of the odd group
		}
		if g.Size() != wantSize {
			t.Errorf("rank %d group size = %d, want %d", tk.Rank(), g.Size(), wantSize)
		}
	})
}

func TestCommSplitKeyOrdering(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		// Reverse keys: comm ranks must be the reverse of world ranks.
		g := tk.World().Split(0, -tk.Rank())
		if g.Rank() != 3-tk.Rank() {
			t.Errorf("world %d got comm rank %d, want %d", tk.Rank(), g.Rank(), 3-tk.Rank())
		}
	})
}

func TestCommCollectivesAcrossNodes(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true, Seed: 4}
	mustRun(t, cfg, func(tk *Task) {
		// Split by node: each group spans one node; then bcast within.
		g := tk.World().Split(tk.NodeIdx(), tk.Rank())
		if g.Size() != 4 {
			t.Fatalf("per-node group size = %d", g.Size())
		}
		buf := tk.Malloc(80)
		if g.Rank() == 0 {
			tk.Floats(buf, 10)[5] = float64(tk.NodeIdx() + 1)
		}
		g.Bcast(buf, 10, mpi.Float64, 0)
		if got := tk.Floats(buf, 10)[5]; got != float64(tk.NodeIdx()+1) {
			t.Errorf("rank %d node-bcast got %v", tk.Rank(), got)
		}
		// Cross-node group of leaders.
		leaderColor := 0
		if g.Rank() != 0 {
			leaderColor = -1
		}
		lead := tk.World().Split(leaderColor, tk.Rank())
		if g.Rank() == 0 {
			if lead.Size() != 2 {
				t.Fatalf("leader group size = %d", lead.Size())
			}
			in, out := tk.Malloc(8), tk.Malloc(8)
			tk.Floats(in, 1)[0] = float64(tk.NodeIdx())
			lead.Allreduce(in, out, 1, mpi.Float64, mpi.Sum)
			if tk.Floats(out, 1)[0] != 1 {
				t.Error("leader allreduce wrong")
			}
		}
	})
}

func TestCommSendrecvAndBarrier(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		g := tk.World().Split(0, tk.Rank()) // same group, exercise comm paths
		mine, theirs := tk.Malloc(8), tk.Malloc(8)
		tk.Floats(mine, 1)[0] = float64(g.Rank())
		peer := (g.Rank() + 1) % g.Size()
		from := (g.Rank() - 1 + g.Size()) % g.Size()
		g.Sendrecv(mine, 1, mpi.Float64, peer, 1, theirs, 1, mpi.Float64, from, 1)
		if got := tk.Floats(theirs, 1)[0]; got != float64(from) {
			t.Errorf("comm sendrecv got %v, want %d", got, from)
		}
		g.Barrier()
	})
}

func TestReduceScatter(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		n := tk.Size()
		in := tk.Malloc(int64(8 * 2 * n))
		out := tk.Malloc(16)
		v := tk.Floats(in, 2*n)
		for i := range v {
			v[i] = float64(tk.Rank() + i)
		}
		tk.ReduceScatter(in, out, 2, mpi.Float64, mpi.Sum)
		// Sum over ranks r of (r + i) = 6 + 4i; my block starts at
		// i = 2*rank.
		got := tk.Floats(out, 2)
		for j := 0; j < 2; j++ {
			i := 2*tk.Rank() + j
			want := float64(6 + 4*i)
			if got[j] != want {
				t.Errorf("rank %d block[%d] = %v, want %v", tk.Rank(), j, got[j], want)
			}
		}
	})
}

func TestScan(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 8), func(tk *Task) {
		in := tk.Malloc(8)
		out := tk.Malloc(8)
		tk.Floats(in, 1)[0] = float64(tk.Rank() + 1)
		tk.Scan(in, out, 1, mpi.Float64, mpi.Sum)
		want := 0.0
		for r := 0; r <= tk.Rank(); r++ {
			want += float64(r + 1)
		}
		if got := tk.Floats(out, 1)[0]; got != want {
			t.Errorf("rank %d scan = %v, want %v", tk.Rank(), got, want)
		}
		// Max variant.
		tk.Floats(in, 1)[0] = float64((tk.Rank() * 3) % 7)
		tk.Scan(in, out, 1, mpi.Float64, mpi.Max)
		wantMax := 0.0
		for r := 0; r <= tk.Rank(); r++ {
			if m := float64((r * 3) % 7); m > wantMax {
				wantMax = m
			}
		}
		if got := tk.Floats(out, 1)[0]; got != wantMax {
			t.Errorf("rank %d scan-max = %v, want %v", tk.Rank(), got, wantMax)
		}
	})
}

func TestProbeAndIprobe(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(256)
		if tk.Rank() == 0 {
			ok, _ := tk.Iprobe(1, 3, mpi.Float64)
			if ok {
				t.Error("Iprobe matched before any send")
			}
			tk.Floats(buf, 32)[0] = 5
			tk.Send(buf, 32, mpi.Float64, 1, 3)
		} else {
			// Blocking probe learns the incoming size before receiving —
			// the dynamic-receive pattern MPI_Probe exists for.
			n := tk.Probe(0, 3, mpi.Float64)
			if n != 32 {
				t.Errorf("probed count = %d, want 32", n)
			}
			ok, n2 := tk.Iprobe(0, 3, mpi.Float64)
			if !ok || n2 != 32 {
				t.Errorf("Iprobe after Probe = %v, %d", ok, n2)
			}
			tk.Recv(buf, n, mpi.Float64, 0, 3)
			if tk.Floats(buf, 32)[0] != 5 {
				t.Error("payload lost after probe")
			}
			// Message consumed: probe must now miss.
			if ok, _ := tk.Iprobe(0, 3, mpi.Float64); ok {
				t.Error("Iprobe matched consumed message")
			}
		}
	})
}

func TestProbeInternode(t *testing.T) {
	cfg := Config{System: topo.Titan(2), Mode: IMPACC, Backed: true}
	mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(512)
		if tk.Rank() == 0 {
			tk.Send(buf, 64, mpi.Float64, 1, 9)
		} else {
			n := tk.Probe(0, 9, mpi.Float64)
			if n != 64 {
				t.Errorf("internode probed count = %d", n)
			}
			tk.Recv(buf, n, mpi.Float64, 0, 9)
		}
	})
}

func TestRecvStatusWildcard(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 3), func(tk *Task) {
		buf := tk.Malloc(256)
		switch tk.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				st := tk.RecvStatus(buf, 32, mpi.Float64, AnySource, AnyTag)
				seen[st.Source] = true
				if st.Tag != st.Source*10 {
					t.Errorf("status tag = %d for source %d", st.Tag, st.Source)
				}
				if st.Count != st.Source*4 {
					t.Errorf("status count = %d for source %d", st.Count, st.Source)
				}
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen = %v", seen)
			}
		default:
			tk.Send(buf, tk.Rank()*4, mpi.Float64, 0, tk.Rank()*10)
		}
	})
}

func TestWaitany(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 3), func(tk *Task) {
		buf1 := tk.Malloc(64)
		buf2 := tk.Malloc(64)
		switch tk.Rank() {
		case 0:
			r1 := tk.Irecv(buf1, 8, mpi.Float64, 1, 1)
			r2 := tk.Irecv(buf2, 8, mpi.Float64, 2, 2)
			first := tk.Waitany(nil, r1, r2)
			// Rank 2 sends immediately; rank 1 sends late.
			if first != 2 {
				t.Errorf("first completed = %d, want 2 (the early sender)", first)
			}
			second := tk.Waitany(r1)
			if second != 0 {
				t.Errorf("second waitany = %d", second)
			}
		case 1:
			tk.Busy(5 * sim.Millisecond)
			tk.Send(buf1, 8, mpi.Float64, 0, 1)
		case 2:
			tk.Send(buf2, 8, mpi.Float64, 0, 2)
		}
	})
	// Empty request list.
	mustRun(t, psgCfg(IMPACC, 1), func(tk *Task) {
		if tk.Waitany() != -1 {
			t.Error("empty Waitany must return -1")
		}
	})
}

func TestGathervScatterv(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		n := tk.Size()
		// Rank r contributes r+1 elements.
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += r + 1
		}
		mine := tk.Malloc(int64(8 * (tk.Rank() + 1)))
		v := tk.Floats(mine, tk.Rank()+1)
		for i := range v {
			v[i] = float64(tk.Rank()*100 + i)
		}
		all := tk.Malloc(int64(8 * total))
		tk.Gatherv(mine, tk.Rank()+1, mpi.Float64, all, counts, displs, 0)
		if tk.Rank() == 0 {
			g := tk.Floats(all, total)
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					if g[displs[r]+i] != float64(r*100+i) {
						t.Errorf("gatherv slot r=%d i=%d = %v", r, i, g[displs[r]+i])
					}
				}
			}
			// Rewrite for the scatter back.
			for i := range g {
				g[i] = -g[i]
			}
		}
		back := tk.Malloc(int64(8 * (tk.Rank() + 1)))
		tk.Scatterv(all, counts, displs, mpi.Float64, back, tk.Rank()+1, 0)
		b := tk.Floats(back, tk.Rank()+1)
		for i := range b {
			if b[i] != -float64(tk.Rank()*100+i) {
				t.Errorf("scatterv rank %d elem %d = %v", tk.Rank(), i, b[i])
			}
		}
	})
}

func TestGathervBadCounts(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(64)
		tk.Gatherv(buf, 1, mpi.Float64, buf, []int{1}, []int{0}, 0)
	})
	if err == nil {
		t.Fatal("short counts must fail at the root")
	}
}
