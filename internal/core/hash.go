package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"impacc/internal/topo"
)

// ConfigHashScheme tags the canonical Config encoding. Every change to the
// meaning of the encoding (a new field, a changed default, a reordered
// line) must bump this tag, so content addresses derived from old encodings
// can never collide with new ones. TestConfigHashKnownAnswers pins the
// current scheme to known digests; if it fails after a refactor, either the
// refactor accidentally changed the encoding (fix the refactor) or it
// deliberately did (bump the tag and regenerate the digests).
const ConfigHashScheme = "impacc-cfg-v2"

// CanonicalString renders the configuration into a stable encoding with
// explicit field ordering: one "key=value" line per field, normalized
// exactly the way validate() normalizes a run (default pin policy and
// overheads resolved, feature set resolved through DefaultFeatures). Two
// configs produce identical canonical strings if and only if they describe
// byte-identical runs, which — runs being deterministic — makes the string
// a content address for the run's results.
//
// Observer-only fields (Trace, Metrics, Progress, FlightRing) are
// deliberately excluded: they change what is recorded about a run, never
// the simulated bytes. Parallel is excluded for the same reason: the
// sharded engine produces byte-identical output for every worker count, so
// serial and parallel submissions of the same job share one content
// address.
func (c *Config) CanonicalString() string {
	var b strings.Builder
	w := func(k, v string) {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
		b.WriteByte('\n')
	}
	w("scheme", ConfigHashScheme)
	w("system", systemDigest(c.System))
	w("mode", c.Mode.String())
	w("devicetypes", strconv.FormatUint(uint64(c.DeviceTypes), 10))
	pin := c.Pin
	if pin == PinDefault {
		if c.Mode == IMPACC {
			pin = PinNear
		} else {
			pin = PinNone
		}
	}
	w("pin", strconv.Itoa(int(pin)))
	f := c.features()
	w("features", fmt.Sprintf("fusion=%t aliasing=%t directp2p=%t rdma=%t unifiedqueue=%t",
		f.Fusion, f.Aliasing, f.DirectP2P, f.RDMA, f.UnifiedQueue))
	ov := c.Overheads
	if ov.Cmd == 0 {
		ov.Cmd = 300
	}
	if ov.Handler == 0 {
		ov.Handler = 400
	}
	if ov.Alias == 0 {
		ov.Alias = 1000
	}
	w("overheads", fmt.Sprintf("cmd=%d handler=%d alias=%d", ov.Cmd, ov.Handler, ov.Alias))
	w("backed", strconv.FormatBool(c.Backed))
	w("seed", strconv.FormatUint(c.Seed, 10))
	w("maxtasks", strconv.Itoa(c.MaxTasks))
	w("forceserialmpi", strconv.FormatBool(c.ForceSerialMPI))
	w("jitterpct", strconv.FormatFloat(c.JitterPct, 'g', -1, 64))
	chaos := ""
	if c.Chaos != nil {
		chaos = c.Chaos.String() // canonical spec form, round-trips through ParseSpec
	}
	w("chaos", chaos)
	w("limits", fmt.Sprintf("vtime=%d events=%d alloc=%d",
		c.Limits.MaxVirtualTime, c.Limits.MaxEvents, c.Limits.MaxAllocBytes))
	// Lean changes what a big run reports (aggregated per-rank telemetry),
	// so unlike the pure observers it is part of the content address.
	w("lean", strconv.FormatBool(c.Lean))
	return b.String()
}

// Hash returns the hex SHA-256 digest of the canonical encoding — the
// content address under which a run's results may be cached and shared.
func (c *Config) Hash() string {
	sum := sha256.Sum256([]byte(c.CanonicalString()))
	return hex.EncodeToString(sum[:])
}

// systemDigest content-addresses the topology through its JSON encoding.
// topo.System is plain nested structs (no maps, no pointers), so
// encoding/json emits fields in declaration order and the bytes are
// deterministic.
func systemDigest(sys *topo.System) string {
	if sys == nil {
		return "nil"
	}
	data, err := json.Marshal(sys)
	if err != nil {
		// A value type of plain structs and slices cannot fail to marshal.
		panic(fmt.Sprintf("core: topology marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
