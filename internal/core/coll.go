package core

import (
	"impacc/internal/mpi"
	"impacc/internal/msg"
	"impacc/internal/xmem"
)

// Collective communications, implemented on communicators and re-exported
// on Task for MPI_COMM_WORLD. All collectives are blocking and must be
// called by every member in the same order (standard MPI semantics);
// internal messages use reserved negative tags scoped by the communicator's
// context id, so they never match application wildcard receives.
//
// MPI_Bcast follows the paper's two-level scheme (§3.8): the root sends the
// buffer to one task in every participating node and that task forwards it
// to the other tasks on its node — where the intra-node hops become node
// heap aliasing candidates when the readonly attribute is given. Among node
// leaders, small payloads ride a pipelined binomial tree; large payloads
// use bandwidth-optimal scatter + ring allgather (van de Geijn).

// Barrier is MPI_Barrier over MPI_COMM_WORLD.
func (t *Task) Barrier() { t.world.Barrier() }

// Bcast is MPI_Bcast over MPI_COMM_WORLD.
func (t *Task) Bcast(addr xmem.Addr, count int, dt mpi.Datatype, root int, opts ...Opt) {
	t.world.Bcast(addr, count, dt, root, opts...)
}

// Reduce is MPI_Reduce over MPI_COMM_WORLD.
func (t *Task) Reduce(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, root int, opts ...Opt) {
	t.world.Reduce(sendAddr, recvAddr, count, dt, op, root, opts...)
}

// Allreduce is MPI_Allreduce over MPI_COMM_WORLD.
func (t *Task) Allreduce(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, opts ...Opt) {
	t.world.Allreduce(sendAddr, recvAddr, count, dt, op, opts...)
}

// Gather is MPI_Gather over MPI_COMM_WORLD.
func (t *Task) Gather(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, root int, opts ...Opt) {
	t.world.Gather(sendAddr, count, dt, recvAddr, root, opts...)
}

// Scatter is MPI_Scatter over MPI_COMM_WORLD.
func (t *Task) Scatter(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, root int, opts ...Opt) {
	t.world.Scatter(sendAddr, count, dt, recvAddr, root, opts...)
}

// Allgather is MPI_Allgather over MPI_COMM_WORLD.
func (t *Task) Allgather(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, opts ...Opt) {
	t.world.Allgather(sendAddr, count, dt, recvAddr, opts...)
}

// Alltoall is MPI_Alltoall over MPI_COMM_WORLD.
func (t *Task) Alltoall(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, opts ...Opt) {
	t.world.Alltoall(sendAddr, count, dt, recvAddr, opts...)
}

// collBase reserves a fresh negative tag range for one collective instance
// on this communicator.
func (c *Comm) collBase() int {
	c.collSeq++
	return -(c.collSeq * 256)
}

// Barrier is MPI_Barrier: a dissemination barrier over the communicator.
func (c *Comm) Barrier() {
	t := c.t
	base := c.collBase()
	n := c.Size()
	if n == 1 {
		return
	}
	o := callOpts{async: -1, comm: c.id}
	me := c.myRank
	round := 0
	for off := 1; off < n; off <<= 1 {
		tag := base - round
		dst := c.ranks[(me+off)%n]
		src := c.ranks[(me-off+n)%n]
		start := t.proc.Now()
		mark := t.traceMark()
		s := t.postSend(t.proc, t.scratch, 1, dst, tag, o)
		r := t.postRecv(t.proc, t.scratch, 1, src, tag, o)
		s.Done.Wait(t.proc)
		r.Done.Wait(t.proc)
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("barrier", start)
		t.mpiSpan("barrier", start, mark, -1, 0)
		t.checkCmd(s)
		t.checkCmd(r)
		round++
	}
}

// leaders returns the node-leader communicator rank for every participating
// node in first-seen order, with root promoted to leader of its own node,
// plus this task's leader.
func (c *Comm) leaders(root int) (list []int, myLeader int) {
	t := c.t
	rootNode := t.rt.placements[c.ranks[root]].Node
	seen := map[int]int{}
	var order []int
	for crank, wrank := range c.ranks {
		node := t.rt.placements[wrank].Node
		if _, ok := seen[node]; !ok {
			seen[node] = crank
			order = append(order, node)
		}
	}
	seen[rootNode] = root
	for _, node := range order {
		list = append(list, seen[node])
	}
	return list, seen[t.pl.Node]
}

// bcastSegBytes is the pipelining segment size for large internode
// broadcasts: the tree forwards segment s while receiving segment s+1, so
// a B-byte broadcast over a depth-d tree costs ~(d + B/seg) segment times
// instead of d × B. Segments between one (parent, child) pair share a tag;
// FIFO matching keeps them ordered. Intra-node forwarding stays
// whole-message so node heap aliasing remains applicable.
const bcastSegBytes = 4 << 20

// Bcast is MPI_Bcast: the root's buffer lands in every member's buffer.
func (c *Comm) Bcast(addr xmem.Addr, count int, dt mpi.Datatype, root int, opts ...Opt) {
	t := c.t
	c.checkRank(root)
	base := c.collBase()
	if c.Size() == 1 {
		return
	}
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	buf, bytes := t.resolveBuf(addr, count, dt, o)
	leaders, myLeader := c.leaders(root)

	start := t.proc.Now()
	mark := t.traceMark()
	defer func() {
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("bcast", start)
		t.mpiSpan("bcast", start, mark, -1, bytes)
	}()

	// Phase 1 among node leaders: a segmented pipelined binomial tree for
	// small and medium payloads; bandwidth-optimal scatter + ring
	// allgather for large ones, where the root injects the payload once
	// instead of log(P) times.
	if c.myRank == myLeader {
		idx, rootIdx := -1, -1
		for i, l := range leaders {
			if l == c.myRank {
				idx = i
			}
			if l == root {
				rootIdx = i
			}
		}
		var pend []*msg.Cmd
		if len(leaders) >= 4 && bytes >= int64(len(leaders))*bcastSegBytes {
			c.bcastScatterAllgather(buf, bytes, leaders, idx, rootIdx, base, o)
		} else {
			pend = c.bcastTree(buf, bytes, leaders, idx, rootIdx, base, o)
		}
		// Phase 2: forward whole buffers to the other member tasks on
		// this node (whole-message so the §3.8 aliasing requirements can
		// hold).
		for crank, wrank := range c.ranks {
			if crank != c.myRank && t.sameNode(wrank) {
				pend = append(pend, t.postSend(t.proc, buf, bytes, wrank, base-2, o))
			}
		}
		for _, s := range pend {
			s.Done.Wait(t.proc)
			t.checkCmd(s)
		}
		return
	}
	// Non-leader: receive from the node leader.
	r := t.postRecv(t.proc, buf, bytes, c.ranks[myLeader], base-2, o)
	r.Done.Wait(t.proc)
	t.checkCmd(r)
}

// bcastTree runs the segmented pipelined binomial tree among leaders and
// returns the pending child sends (waited by the caller together with the
// local fanout).
func (c *Comm) bcastTree(buf xmem.Addr, bytes int64, leaders []int, idx, rootIdx, base int, o callOpts) []*msg.Cmd {
	t := c.t
	parent := mpi.BcastParent(idx, rootIdx, len(leaders))
	kids := mpi.BcastChildren(idx, rootIdx, len(leaders))
	var pend []*msg.Cmd
	for off := int64(0); off < bytes; off += bcastSegBytes {
		segLen := bytes - off
		if segLen > bcastSegBytes {
			segLen = bcastSegBytes
		}
		seg := buf + xmem.Addr(off)
		if parent >= 0 {
			r := t.postRecv(t.proc, seg, segLen, c.ranks[leaders[parent]], base-1, o)
			r.Done.Wait(t.proc)
			t.checkCmd(r)
		}
		for _, k := range kids {
			pend = append(pend, t.postSend(t.proc, seg, segLen, c.ranks[leaders[k]], base-1, o))
		}
	}
	return pend
}

// bcastScatterAllgather implements the large-message broadcast among
// leaders: the root scatters L chunks (injecting the payload exactly once),
// then a ring allgather circulates the chunks, for a total cost of about
// two full-message times regardless of the leader count.
func (c *Comm) bcastScatterAllgather(buf xmem.Addr, bytes int64, leaders []int, idx, rootIdx, base int, o callOpts) {
	t := c.t
	l := len(leaders)
	chunk := bytes / int64(l)
	off := func(i int) int64 { return int64(i) * chunk }
	size := func(i int) int64 {
		if i == l-1 {
			return bytes - off(i) // last chunk takes the remainder
		}
		return chunk
	}
	world := func(i int) int { return c.ranks[leaders[i]] }
	// Scatter: the root sends every other leader its chunk.
	if idx == rootIdx {
		var pend []*msg.Cmd
		for i := 0; i < l; i++ {
			if i == rootIdx {
				continue
			}
			pend = append(pend, t.postSend(t.proc, buf+xmem.Addr(off(i)), size(i), world(i), base-3, o))
		}
		for _, s := range pend {
			s.Done.Wait(t.proc)
			t.checkCmd(s)
		}
	} else {
		r := t.postRecv(t.proc, buf+xmem.Addr(off(idx)), size(idx), world(rootIdx), base-3, o)
		r.Done.Wait(t.proc)
		t.checkCmd(r)
	}
	// Ring allgather: at step s, leader i forwards chunk (i-s) mod l to
	// its successor and receives chunk (i-s-1) mod l from its predecessor.
	next := world((idx + 1) % l)
	prev := world((idx - 1 + l) % l)
	for s := 0; s < l-1; s++ {
		sendChunk := ((idx-s)%l + l) % l
		recvChunk := ((idx-s-1)%l + l) % l
		sc := t.postSend(t.proc, buf+xmem.Addr(off(sendChunk)), size(sendChunk), next, base-4, o)
		rc := t.postRecv(t.proc, buf+xmem.Addr(off(recvChunk)), size(recvChunk), prev, base-4, o)
		sc.Done.Wait(t.proc)
		rc.Done.Wait(t.proc)
		t.checkCmd(sc)
		t.checkCmd(rc)
	}
}

// Reduce is MPI_Reduce: elementwise op over all members' send buffers into
// the root's recv buffer, via a binomial tree.
func (c *Comm) Reduce(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, root int, opts ...Opt) {
	t := c.t
	c.checkRank(root)
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	sbuf, bytes := t.resolveBuf(sendAddr, count, dt, o)
	n := c.Size()

	// Accumulator: root reduces in place in its recv buffer; others use a
	// temporary.
	var accAddr xmem.Addr
	if c.myRank == root {
		accAddr, _ = t.resolveBuf(recvAddr, count, dt, o)
	} else {
		accAddr = t.tempAlloc(bytes)
		defer t.tempFree(accAddr)
	}
	t.localCopy(accAddr, sbuf, bytes)

	if n > 1 {
		start := t.proc.Now()
		mark := t.traceMark()
		tmp := t.tempAlloc(bytes)
		for _, child := range mpi.ReduceChildren(c.myRank, root, n) {
			r := t.postRecv(t.proc, tmp, bytes, c.ranks[child], base-1, callOpts{async: -1, comm: c.id})
			r.Done.Wait(t.proc)
			t.checkCmd(r)
			t.combine(op, dt, accAddr, tmp, count)
		}
		if parent := mpi.ReduceParent(c.myRank, root, n); parent >= 0 {
			s := t.postSend(t.proc, accAddr, bytes, c.ranks[parent], base-1, callOpts{async: -1, comm: c.id})
			s.Done.Wait(t.proc)
			t.checkCmd(s)
		}
		t.tempFree(tmp)
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("reduce", start)
		t.mpiSpan("reduce", start, mark, -1, bytes)
	}
}

// Allreduce is MPI_Allreduce: Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, opts ...Opt) {
	c.Reduce(sendAddr, recvAddr, count, dt, op, 0, opts...)
	c.Bcast(recvAddr, count, dt, 0, opts...)
}

// Gather is MPI_Gather: every member's send block lands at the root's recv
// buffer at offset rank*count.
func (c *Comm) Gather(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, root int, opts ...Opt) {
	t := c.t
	c.checkRank(root)
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	sbuf, bytes := t.resolveBuf(sendAddr, count, dt, o)
	if c.myRank != root {
		start := t.proc.Now()
		mark := t.traceMark()
		s := t.postSend(t.proc, sbuf, bytes, c.ranks[root], base-1, o)
		s.Done.Wait(t.proc)
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("gather", start)
		t.mpiSpan("gather", start, mark, c.ranks[root], bytes)
		t.checkCmd(s)
		return
	}
	rbuf, _ := t.resolveBuf(recvAddr, count*c.Size(), dt, o)
	start := t.proc.Now()
	mark := t.traceMark()
	var reqs []*msg.Cmd
	for crank := 0; crank < c.Size(); crank++ {
		slot := rbuf + xmem.Addr(int64(crank)*bytes)
		if crank == root {
			t.localCopy(slot, sbuf, bytes)
			continue
		}
		reqs = append(reqs, t.postRecv(t.proc, slot, bytes, c.ranks[crank], base-1, o))
	}
	for _, r := range reqs {
		r.Done.Wait(t.proc)
		t.checkCmd(r)
	}
	t.commTime += dur(t.proc.Now() - start)
	t.mpiObserve("gather", start)
	t.mpiSpan("gather", start, mark, -1, bytes*int64(c.Size()))
}

// Scatter is MPI_Scatter: block rank*count of the root's send buffer lands
// in each member's recv buffer.
func (c *Comm) Scatter(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, root int, opts ...Opt) {
	t := c.t
	c.checkRank(root)
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	rbuf, bytes := t.resolveBuf(recvAddr, count, dt, o)
	if c.myRank != root {
		start := t.proc.Now()
		mark := t.traceMark()
		r := t.postRecv(t.proc, rbuf, bytes, c.ranks[root], base-1, o)
		r.Done.Wait(t.proc)
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("scatter", start)
		t.mpiSpan("scatter", start, mark, c.ranks[root], bytes)
		t.checkCmd(r)
		return
	}
	sbuf, _ := t.resolveBuf(sendAddr, count*c.Size(), dt, o)
	start := t.proc.Now()
	mark := t.traceMark()
	var reqs []*msg.Cmd
	for crank := 0; crank < c.Size(); crank++ {
		slot := sbuf + xmem.Addr(int64(crank)*bytes)
		if crank == root {
			t.localCopy(rbuf, slot, bytes)
			continue
		}
		reqs = append(reqs, t.postSend(t.proc, slot, bytes, c.ranks[crank], base-1, o))
	}
	for _, s := range reqs {
		s.Done.Wait(t.proc)
		t.checkCmd(s)
	}
	t.commTime += dur(t.proc.Now() - start)
	t.mpiObserve("scatter", start)
	t.mpiSpan("scatter", start, mark, -1, bytes*int64(c.Size()))
}

// Allgather is MPI_Allgather: Gather to rank 0 followed by a Bcast of the
// assembled buffer.
func (c *Comm) Allgather(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, opts ...Opt) {
	c.Gather(sendAddr, count, dt, recvAddr, 0, opts...)
	c.Bcast(recvAddr, count*c.Size(), dt, 0, opts...)
}

// Alltoall is MPI_Alltoall: block j of member i's send buffer lands at
// block i of member j's recv buffer (pairwise exchange schedule).
func (c *Comm) Alltoall(sendAddr xmem.Addr, count int, dt mpi.Datatype, recvAddr xmem.Addr, opts ...Opt) {
	t := c.t
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	n := c.Size()
	me := c.myRank
	sbuf, _ := t.resolveBuf(sendAddr, count*n, dt, o)
	rbuf, _ := t.resolveBuf(recvAddr, count*n, dt, o)
	blk := int64(count) * dt.Size()
	t.localCopy(rbuf+xmem.Addr(int64(me)*blk), sbuf+xmem.Addr(int64(me)*blk), blk)
	start := t.proc.Now()
	mark := t.traceMark()
	var reqs []*msg.Cmd
	for step := 1; step < n; step++ {
		dst := (me + step) % n
		src := (me - step + n) % n
		reqs = append(reqs,
			t.postSend(t.proc, sbuf+xmem.Addr(int64(dst)*blk), blk, c.ranks[dst], base-1, o),
			t.postRecv(t.proc, rbuf+xmem.Addr(int64(src)*blk), blk, c.ranks[src], base-1, o))
	}
	for _, r := range reqs {
		r.Done.Wait(t.proc)
		t.checkCmd(r)
	}
	t.commTime += dur(t.proc.Now() - start)
	t.mpiObserve("alltoall", start)
	t.mpiSpan("alltoall", start, mark, -1, blk*int64(n-1))
}

// ---- helpers -----------------------------------------------------------

// tempAlloc grabs runtime-internal scratch memory (not heap-table tracked,
// so it never participates in aliasing).
func (t *Task) tempAlloc(n int64) xmem.Addr {
	a, err := t.space.AllocHost(n, t.rt.Cfg.Backed)
	if err != nil {
		t.fail(err)
	}
	return a
}

func (t *Task) tempFree(a xmem.Addr) {
	if err := t.space.Free(a); err != nil {
		t.fail(err)
	}
}

// noAsync rejects an async clause on a collective. Every collective entry
// point funnels through this one check so the rejection is uniform (the
// unified activity queue only carries point-to-point MPI ops, §3.6).
func (t *Task) noAsync(o callOpts) {
	if o.async >= 0 {
		t.failf("collectives do not accept async clauses")
	}
}

// localCopy moves bytes within the task (self-communication), charged as a
// normal transfer.
func (t *Task) localCopy(dst, src xmem.Addr, n int64) {
	if dst == src || n == 0 {
		return
	}
	if _, err := t.ep.Ctx.Transfer(t.proc, dst, src, n); err != nil {
		t.fail(err)
	}
}

// combine applies op elementwise: acc = op(acc, in).
func (t *Task) combine(op mpi.Op, dt mpi.Datatype, acc, in xmem.Addr, count int) {
	ab := t.Bytes(acc, int64(count)*dt.Size())
	ib := t.Bytes(in, int64(count)*dt.Size())
	if err := mpi.Reduce(op, dt, ab, ib, count); err != nil {
		t.fail(err)
	}
	t.Compute(float64(count))
}

// ReduceScatter is MPI_Reduce_scatter_block: the elementwise reduction of
// all members' send buffers (count*Size elements) is computed and block i
// (count elements) lands in member i's recv buffer.
func (c *Comm) ReduceScatter(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, opts ...Opt) {
	t := c.t
	t.noAsync(parseOpts(opts))
	n := c.Size()
	// Only the funnel root materializes the full count*n reduction; the
	// other members pass Nil, which Reduce and Scatter never resolve
	// off-root. Allocating the scratch on every rank wasted count*n
	// elements per member.
	full := xmem.Nil
	if c.myRank == 0 {
		full = t.tempAlloc(int64(count*n) * dt.Size())
		defer t.tempFree(full)
	}
	c.Reduce(sendAddr, full, count*n, dt, op, 0, opts...)
	c.Scatter(full, count, dt, recvAddr, 0, opts...)
}

// Scan is MPI_Scan: member i receives op(x_0, ..., x_i), the inclusive
// prefix reduction in rank order, via a linear chain.
func (c *Comm) Scan(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, opts ...Opt) {
	t := c.t
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	sbuf, bytes := t.resolveBuf(sendAddr, count, dt, o)
	rbuf, _ := t.resolveBuf(recvAddr, count, dt, o)
	t.localCopy(rbuf, sbuf, bytes)
	me := c.myRank
	start := t.proc.Now()
	mark := t.traceMark()
	if me > 0 {
		prefix := t.tempAlloc(bytes)
		r := t.postRecv(t.proc, prefix, bytes, c.ranks[me-1], base-1, o)
		r.Done.Wait(t.proc)
		t.checkCmd(r)
		// recv = op(prefix, mine): combine into the prefix then swap in.
		t.combine(op, dt, prefix, rbuf, count)
		t.localCopy(rbuf, prefix, bytes)
		t.tempFree(prefix)
	}
	if me < c.Size()-1 {
		s := t.postSend(t.proc, rbuf, bytes, c.ranks[me+1], base-1, o)
		s.Done.Wait(t.proc)
		t.checkCmd(s)
	}
	t.commTime += dur(t.proc.Now() - start)
	t.mpiObserve("scan", start)
	t.mpiSpan("scan", start, mark, -1, bytes)
}

// ReduceScatter is MPI_Reduce_scatter_block over MPI_COMM_WORLD.
func (t *Task) ReduceScatter(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, opts ...Opt) {
	t.world.ReduceScatter(sendAddr, recvAddr, count, dt, op, opts...)
}

// Scan is MPI_Scan over MPI_COMM_WORLD.
func (t *Task) Scan(sendAddr, recvAddr xmem.Addr, count int, dt mpi.Datatype, op mpi.Op, opts ...Opt) {
	t.world.Scan(sendAddr, recvAddr, count, dt, op, opts...)
}

// Gatherv is MPI_Gatherv: member i contributes counts[i] elements, landing
// at element offset displs[i] of the root's recv buffer. counts and displs
// are significant at the root only; each sender passes its own sendCount.
func (c *Comm) Gatherv(sendAddr xmem.Addr, sendCount int, dt mpi.Datatype,
	recvAddr xmem.Addr, counts, displs []int, root int, opts ...Opt) {
	t := c.t
	c.checkRank(root)
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	sbuf, sbytes := t.resolveBuf(sendAddr, sendCount, dt, o)
	if c.myRank != root {
		start := t.proc.Now()
		mark := t.traceMark()
		s := t.postSend(t.proc, sbuf, sbytes, c.ranks[root], base-1, o)
		s.Done.Wait(t.proc)
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("gatherv", start)
		t.mpiSpan("gatherv", start, mark, c.ranks[root], sbytes)
		t.checkCmd(s)
		return
	}
	if len(counts) != c.Size() || len(displs) != c.Size() {
		t.failf("Gatherv: counts/displs must have %d entries", c.Size())
	}
	total := 0
	for i, d := range displs {
		if end := d + counts[i]; end > total {
			total = end
		}
	}
	rbuf, _ := t.resolveBuf(recvAddr, total, dt, o)
	start := t.proc.Now()
	mark := t.traceMark()
	var reqs []*msg.Cmd
	for crank := 0; crank < c.Size(); crank++ {
		slot := rbuf + xmem.Addr(int64(displs[crank])*dt.Size())
		nbytes := int64(counts[crank]) * dt.Size()
		if crank == root {
			t.localCopy(slot, sbuf, nbytes)
			continue
		}
		reqs = append(reqs, t.postRecv(t.proc, slot, nbytes, c.ranks[crank], base-1, o))
	}
	for _, r := range reqs {
		r.Done.Wait(t.proc)
		t.checkCmd(r)
	}
	t.commTime += dur(t.proc.Now() - start)
	t.mpiObserve("gatherv", start)
	t.mpiSpan("gatherv", start, mark, -1, 0)
}

// Scatterv is MPI_Scatterv: the root sends counts[i] elements from offset
// displs[i] to member i.
func (c *Comm) Scatterv(sendAddr xmem.Addr, counts, displs []int, dt mpi.Datatype,
	recvAddr xmem.Addr, recvCount int, root int, opts ...Opt) {
	t := c.t
	c.checkRank(root)
	base := c.collBase()
	o := parseOpts(opts)
	o.comm = c.id
	t.noAsync(o)
	rbuf, rbytes := t.resolveBuf(recvAddr, recvCount, dt, o)
	if c.myRank != root {
		start := t.proc.Now()
		mark := t.traceMark()
		r := t.postRecv(t.proc, rbuf, rbytes, c.ranks[root], base-1, o)
		r.Done.Wait(t.proc)
		t.commTime += dur(t.proc.Now() - start)
		t.mpiObserve("scatterv", start)
		t.mpiSpan("scatterv", start, mark, c.ranks[root], rbytes)
		t.checkCmd(r)
		return
	}
	if len(counts) != c.Size() || len(displs) != c.Size() {
		t.failf("Scatterv: counts/displs must have %d entries", c.Size())
	}
	total := 0
	for i, d := range displs {
		if end := d + counts[i]; end > total {
			total = end
		}
	}
	sbuf, _ := t.resolveBuf(sendAddr, total, dt, o)
	start := t.proc.Now()
	mark := t.traceMark()
	var reqs []*msg.Cmd
	for crank := 0; crank < c.Size(); crank++ {
		slot := sbuf + xmem.Addr(int64(displs[crank])*dt.Size())
		nbytes := int64(counts[crank]) * dt.Size()
		if crank == root {
			t.localCopy(rbuf, slot, nbytes)
			continue
		}
		reqs = append(reqs, t.postSend(t.proc, slot, nbytes, c.ranks[crank], base-1, o))
	}
	for _, s := range reqs {
		s.Done.Wait(t.proc)
		t.checkCmd(s)
	}
	t.commTime += dur(t.proc.Now() - start)
	t.mpiObserve("scatterv", start)
	t.mpiSpan("scatterv", start, mark, -1, 0)
}

// Gatherv is MPI_Gatherv over MPI_COMM_WORLD.
func (t *Task) Gatherv(sendAddr xmem.Addr, sendCount int, dt mpi.Datatype,
	recvAddr xmem.Addr, counts, displs []int, root int, opts ...Opt) {
	t.world.Gatherv(sendAddr, sendCount, dt, recvAddr, counts, displs, root, opts...)
}

// Scatterv is MPI_Scatterv over MPI_COMM_WORLD.
func (t *Task) Scatterv(sendAddr xmem.Addr, counts, displs []int, dt mpi.Datatype,
	recvAddr xmem.Addr, recvCount int, root int, opts ...Opt) {
	t.world.Scatterv(sendAddr, counts, displs, dt, recvAddr, recvCount, root, opts...)
}
