package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"impacc/internal/fault"
	"impacc/internal/prof"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

// observeChaosSpec is the fault mix the observability matrix runs under —
// the same surface coverage as the parallel byte-identity matrix.
const observeChaosSpec = "7:degrade=*:4,rdmaflap=1:2ms:500us,straggle=0:1.5"

// heartbeatBytes runs cfg with a 20us progress beat and returns the JSONL
// heartbeat feed. The interval is deliberately fine: the small test programs
// elapse a few hundred microseconds of virtual time, so a coarse interval
// would produce an empty (vacuously identical) feed.
func heartbeatBytes(t *testing.T, cfg Config, prog Program) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg.Progress = &Progress{Every: sim.Dur(20_000), Emit: NewHeartbeatWriter(&buf)}
	mustRun(t, cfg, prog)
	return buf.Bytes()
}

// TestHeartbeatByteIdentity: the progress feed is a pure function of the
// configuration — byte-identical across -par-sim {1,2,8}, healthy and
// chaotic. Beats ride the shard group's window barriers, so this is the
// determinism proof for the live snapshot path.
func TestHeartbeatByteIdentity(t *testing.T) {
	spec, err := fault.ParseSpec(observeChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, chaos := range []*fault.Spec{nil, spec} {
		label := "healthy"
		if chaos != nil {
			label = "chaotic"
		}
		t.Run(label, func(t *testing.T) {
			cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true,
				JitterPct: 1, Seed: 2016, Chaos: chaos}
			base := heartbeatBytes(t, cfg, chaosProgram(t))
			if len(base) == 0 {
				t.Fatal("no heartbeats emitted; interval too coarse for the workload")
			}
			var hb Heartbeat
			first := base[:bytes.IndexByte(base, '\n')+1]
			if err := json.Unmarshal(first, &hb); err != nil {
				t.Fatalf("first heartbeat is not valid JSON: %v", err)
			}
			if hb.Seq != 0 || hb.Shards != 2 || hb.Events == 0 {
				t.Fatalf("first heartbeat = %+v, want seq 0, 2 shards, events > 0", hb)
			}
			for _, workers := range []int{2, 8} {
				cfg.Parallel = workers
				got := heartbeatBytes(t, cfg, chaosProgram(t))
				if !bytes.Equal(got, base) {
					t.Errorf("par-sim %d: heartbeat feed differs from serial (%d vs %d bytes)",
						workers, len(got), len(base))
				}
			}
		})
	}
}

// streamedTrace runs cfg with a streaming tracer and returns the stream
// bytes; bufferedStream runs the same cfg with the buffered tracer and
// exports it through WriteStream.
func streamedTrace(t *testing.T, cfg Config, prog Program) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg.Trace = NewStreamTracer(NewStreamWriter(&buf))
	rep := mustRun(t, cfg, prog)
	if err := cfg.Trace.CloseStream(sim.Time(rep.Elapsed)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func bufferedStream(t *testing.T, cfg Config, prog Program) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg.Trace = NewTracer()
	rep := mustRun(t, cfg, prog)
	if err := cfg.Trace.WriteStream(&buf, sim.Time(rep.Elapsed)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamedTraceByteIdentity: the incrementally flushed trace stream is
// byte-identical to the buffered tracer's WriteStream export, for serial and
// 8-worker runs, healthy and chaotic — the window fences flush exactly the
// final prefix, never reordering or dropping a record.
func TestStreamedTraceByteIdentity(t *testing.T) {
	spec, err := fault.ParseSpec(observeChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, chaos := range []*fault.Spec{nil, spec} {
		label := "healthy"
		if chaos != nil {
			label = "chaotic"
		}
		t.Run(label, func(t *testing.T) {
			cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true,
				JitterPct: 1, Seed: 2016, Chaos: chaos}
			want := bufferedStream(t, cfg, chaosProgram(t))
			if len(want) == 0 {
				t.Fatal("buffered stream export is empty")
			}
			for _, workers := range []int{0, 8} {
				cfg.Parallel = workers
				got := streamedTrace(t, cfg, chaosProgram(t))
				if !bytes.Equal(got, want) {
					t.Errorf("par-sim %d: streamed trace differs from buffered export (%d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
		})
	}
}

// TestStreamRoundTrip: prof.ReadStream reassembles a written stream into the
// same trace the buffered tracer holds — span for span, edge for edge.
func TestStreamRoundTrip(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true,
		JitterPct: 1, Seed: 2016}
	cfg.Trace = NewTracer()
	rep := mustRun(t, cfg, chaosProgram(t))
	want := cfg.Trace.Data(sim.Time(rep.Elapsed))

	var buf bytes.Buffer
	if err := cfg.Trace.WriteStream(&buf, sim.Time(rep.Elapsed)); err != nil {
		t.Fatal(err)
	}
	got, err := prof.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Errorf("makespan = %d, want %d", got.Makespan, want.Makespan)
	}
	if len(got.Spans) != len(want.Spans) || len(got.Edges) != len(want.Edges) {
		t.Fatalf("round trip: %d spans / %d edges, want %d / %d",
			len(got.Spans), len(got.Edges), len(want.Spans), len(want.Edges))
	}
	// The profiles built from both traces must agree exactly — the analysis
	// consumes everything the stream carries.
	a, b := prof.Analyze(want, prof.DefaultTopSites), prof.Analyze(got, prof.DefaultTopSites)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Error("profile analyzed from the stream differs from the buffered profile")
	}
}

// TestObserversExcludedFromHash: Progress and FlightRing change how a run is
// observed, never what it simulates — like Trace and Parallel they must not
// perturb the canonical encoding or the content address.
func TestObserversExcludedFromHash(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Seed: 2016, JitterPct: 1}
	h0, s0 := cfg.Hash(), cfg.CanonicalString()

	cfg.Progress = &Progress{Every: sim.Dur(20_000), Emit: func(Heartbeat) {}}
	cfg.FlightRing = 64
	if cfg.Hash() != h0 {
		t.Fatal("Progress/FlightRing changed the config hash")
	}
	if cfg.CanonicalString() != s0 {
		t.Fatalf("Progress/FlightRing changed the canonical encoding:\n%s", cfg.CanonicalString())
	}
}

// TestObserversDoNotPerturbRun: attaching a progress observer or a streaming
// tracer leaves the report byte-identical to an unobserved run.
func TestObserversDoNotPerturbRun(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true,
		JitterPct: 1, Seed: 2016}
	bare, err := json.Marshal(mustRun(t, cfg, chaosProgram(t)))
	if err != nil {
		t.Fatal(err)
	}

	obs := cfg
	obs.Progress = &Progress{Every: sim.Dur(20_000), Emit: func(Heartbeat) {}}
	obs.FlightRing = 64
	obs.Trace = NewStreamTracer(NewStreamWriter(&bytes.Buffer{}))
	rep := mustRun(t, obs, chaosProgram(t))
	if err := obs.Trace.CloseStream(sim.Time(rep.Elapsed)); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bare) {
		t.Errorf("observed report differs from bare report:\n got: %s\nwant: %s", got, bare)
	}
}

// TestStallOnEventLimit: a run killed by the event budget with the flight
// recorder armed yields a StallReport naming the parked ranks — the
// acceptance shape of stall.json.
func TestStallOnEventLimit(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4, FlightRing: 32}
	cfg.Limits.MaxEvents = 2000
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := rt.Execute(longProg(1000))
	var le *sim.LimitError
	if !errors.As(runErr, &le) || le.Resource != "events" {
		t.Fatalf("Execute = %v, want *sim.LimitError{events}", runErr)
	}
	st := rt.Stall()
	if st == nil {
		t.Fatal("Stall() = nil after an armed event-limit halt")
	}
	if st.Reason != "event-limit" || st.Events == 0 {
		t.Fatalf("stall = {reason %q, events %d}, want event-limit with events > 0",
			st.Reason, st.Events)
	}
	ranks := st.ParkedRanks()
	if len(ranks) == 0 {
		t.Fatal("stall report names no parked ranks")
	}
	task := false
	for _, r := range ranks {
		if strings.HasPrefix(r, "task") {
			task = true
		}
	}
	if !task {
		t.Errorf("parked ranks %v name no task", ranks)
	}
	recent := 0
	for _, sh := range st.Shards {
		recent += len(sh.Recent)
	}
	if recent == 0 {
		t.Error("flight rings captured no recent events")
	}
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || !json.Valid(buf.Bytes()) {
		t.Fatalf("stall.json invalid (%d bytes)", buf.Len())
	}
}

// TestStallClean: a clean run leaves no stall report even when armed.
func TestStallClean(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true,
		JitterPct: 1, Seed: 2016, FlightRing: 16}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Execute(chaosProgram(t)); err != nil {
		t.Fatal(err)
	}
	if rt.Stall() != nil {
		t.Fatal("Stall() non-nil after a clean run")
	}
}
