package core

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"

	"impacc/internal/sim"
)

// Progress snapshots are the live-run counterpart of the post-run report:
// the runtime divides virtual time into Every-sized beats and, at each
// boundary B, emits one Heartbeat describing the simulation exactly at B.
// Beats ride the shard group's barrier machinery (sim.ShardGroup.BeatEvery):
// a boundary fires only after every event at or before it has been
// dispatched on every shard, so the snapshot's content is a pure function of
// the configuration — independent of worker count, shard count, and window
// sizing. Like Trace and Metrics, Progress changes how a run is observed,
// never what it simulates, and is excluded from the canonical content hash.

// Progress asks the runtime for deterministic virtual-time heartbeats.
type Progress struct {
	// Every is the heartbeat interval in virtual time; must be positive.
	Every sim.Dur
	// Emit receives each heartbeat in beat order, called from the group's
	// coordinating goroutine with every shard quiescent. It must not call
	// back into the runtime.
	Emit func(Heartbeat)
}

// ParkCount aggregates the parked-process table by wait reason.
type ParkCount struct {
	BlockedOn string `json:"blocked_on"`
	N         int    `json:"n"`
}

// PhaseCount aggregates the per-rank phase list by phase (lean mode).
type PhaseCount struct {
	Phase string `json:"phase"`
	N     int    `json:"n"`
}

// Heartbeat is one progress snapshot, taken at virtual instant AtNs with
// every event at or before AtNs dispatched and nothing later started.
type Heartbeat struct {
	Seq    int    `json:"seq"`
	AtNs   int64  `json:"at_ns"`
	Events uint64 `json:"events"` // events dispatched across all shards
	// NextNs is the earliest pending event anywhere — the anchor of the next
	// shard window (fence = NextNs + lookahead); -1 when drained.
	NextNs int64 `json:"next_ns"`
	Shards int   `json:"shards"` // shard engines (a config property, not workers)
	Live   int   `json:"live"`   // spawned, unfinished processes
	// Parked histograms every blocked process by what it waits on.
	Parked []ParkCount `json:"parked,omitempty"`
	// Phases is each rank's last observed activity ("mpi:recv", "compute",
	// "accwait", ...; "" before the task's first operation). Omitted in
	// lean mode, which reports PhaseCounts instead.
	Phases []string `json:"phases,omitempty"`
	// PhaseCounts histograms the ranks by phase, sorted by phase name —
	// the lean-mode replacement for the O(ranks) Phases list.
	PhaseCounts []PhaseCount `json:"phase_counts,omitempty"`
	// Message-path counters accumulated across node hubs.
	IntraMsgs uint64 `json:"intra_msgs"`
	NetOut    uint64 `json:"net_out"`
	NetIn     uint64 `json:"net_in"`
}

// NewHeartbeatWriter returns an Emit function writing heartbeats as JSONL
// to w — the -progress file format. Output is unbuffered by design: each
// line is visible as soon as its beat fires, which is the point of a live
// progress feed; wrap w in a bufio.Writer to trade latency for throughput.
func NewHeartbeatWriter(w io.Writer) func(Heartbeat) {
	enc := json.NewEncoder(w)
	return func(hb Heartbeat) { _ = enc.Encode(&hb) }
}

// NewBufferedHeartbeatWriter returns an Emit function writing JSONL through
// bw; the caller flushes bw when the run ends.
func NewBufferedHeartbeatWriter(bw *bufio.Writer) func(Heartbeat) {
	enc := json.NewEncoder(bw)
	return func(hb Heartbeat) { _ = enc.Encode(&hb) }
}

// emitHeartbeat assembles and emits the snapshot for beat boundary at. It
// runs on the group's coordinating goroutine between windows, after the
// barrier, so reading task and hub state is race-free (the barrier's
// WaitGroup orders every shard write before this read).
func (rt *Runtime) emitHeartbeat(seq int, at sim.Time) {
	hb := Heartbeat{
		Seq:    seq,
		AtNs:   int64(at),
		Events: rt.group.Events(),
		NextNs: -1,
		Shards: rt.group.Shards(),
		Live:   rt.group.LiveProcs(),
	}
	if next, ok := rt.group.NextAt(); ok {
		hb.NextNs = int64(next)
	}
	counts := map[string]int{}
	rt.group.EachBlocked(func(name, blockedOn string) {
		counts[blockedOn]++
	})
	if len(counts) > 0 {
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hb.Parked = append(hb.Parked, ParkCount{BlockedOn: k, N: counts[k]})
		}
	}
	if rt.lean {
		// O(distinct phases) instead of O(ranks): big-run heartbeats stay a
		// few hundred bytes at 100k ranks.
		phases := map[string]int{}
		for _, t := range rt.tasks {
			phases[t.phase]++
		}
		keys := make([]string, 0, len(phases))
		for k := range phases {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hb.PhaseCounts = append(hb.PhaseCounts, PhaseCount{Phase: k, N: phases[k]})
		}
	} else {
		hb.Phases = make([]string, len(rt.tasks))
		for i, t := range rt.tasks {
			hb.Phases[i] = t.phase
		}
	}
	nodes := make([]int, 0, len(rt.nodes))
	for n := range rt.nodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		st := rt.nodes[n].hub.Stats()
		hb.IntraMsgs += st.IntraMsgs
		hb.NetOut += st.NetOut
		hb.NetIn += st.NetIn
	}
	rt.Cfg.Progress.Emit(hb)
}
