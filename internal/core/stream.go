package core

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sort"

	"impacc/internal/prof"
	"impacc/internal/sim"
)

// SpanSink receives the trace stream of a run incrementally. Emit is called
// with batches already in canonical stream order — consecutive calls carry
// non-overlapping, increasing stamp ranges, so a sink may simply concatenate
// them. Close finalizes the stream with the run's makespan. Both are called
// from the coordinating goroutine only (between simulation windows and after
// the run), never concurrently.
type SpanSink interface {
	Emit(recs []prof.StreamRec) error
	Close(makespan sim.Time) error
}

// streamWriter is the JSONL SpanSink (see prof's stream format): a header
// line, one line per record, and an end line carrying the makespan. Output
// is buffered; errors stick and resurface on every later call.
type streamWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewStreamWriter returns a SpanSink writing the JSONL trace stream to w.
// The header is written immediately; the caller still owns w and closes it
// after Close.
func NewStreamWriter(w io.Writer) SpanSink {
	bw := bufio.NewWriter(w)
	sw := &streamWriter{bw: bw, enc: json.NewEncoder(bw)}
	sw.err = sw.enc.Encode(struct {
		T string `json:"t"`
		V string `json:"v"`
	}{"stream", prof.StreamVersion})
	return sw
}

func (sw *streamWriter) Emit(recs []prof.StreamRec) error {
	if sw.err != nil {
		return sw.err
	}
	for i := range recs {
		if sw.err = sw.enc.Encode(&recs[i]); sw.err != nil {
			return sw.err
		}
	}
	return nil
}

func (sw *streamWriter) Close(makespan sim.Time) error {
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.enc.Encode(struct {
		T        string `json:"t"`
		Makespan int64  `json:"makespan_ns"`
	}{"end", int64(makespan)})
	if sw.err == nil {
		sw.err = sw.bw.Flush()
	}
	return sw.err
}

// wireRec converts one lane record to its wire form.
func wireRec(node int, r *streamRec) prof.StreamRec {
	w := prof.StreamRec{Node: node, Seq: r.seq, At: int64(r.at)}
	switch r.kind {
	case recSpan:
		w.T = "span"
		s := r.span
		w.Span = &s
	case recEdge:
		w.T = "edge"
		e := prof.Edge{Kind: r.edge.kind, From: r.edge.from, To: r.edge.to,
			At: r.edge.at, Post: r.edge.post, Bytes: r.edge.bytes}
		w.Edge = &e
	case recClaim:
		w.T = "claim"
		w.Cmd = r.cmd
		w.Sid = r.claimed
	}
	return w
}

// sortStream orders wire records by the canonical stream order
// (at, node, seq) — a total order, since (node, seq) is unique.
func sortStream(recs []prof.StreamRec) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].At != recs[j].At {
			return recs[i].At < recs[j].At
		}
		if recs[i].Node != recs[j].Node {
			return recs[i].Node < recs[j].Node
		}
		return recs[i].Seq < recs[j].Seq
	})
}

// FlushWindow emits every retained record stamped strictly before fence and
// drops it from memory. The runtime calls it at window barriers, where the
// fence guarantee (every shard past the fence's events, every future record
// stamped at or after it) makes the flushed prefix final: concatenating the
// per-window batches reproduces the global stamp-sorted stream byte for
// byte. No-op on buffered tracers and after a sink error.
func (tr *Tracer) FlushWindow(fence sim.Time) {
	if tr.sink == nil || tr.sinkErr != nil {
		return
	}
	tr.batch = tr.batch[:0]
	for _, l := range tr.lanes {
		n := 0
		for n < len(l.recs) && l.recs[n].at < fence {
			n++
		}
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			tr.batch = append(tr.batch, wireRec(l.node, &l.recs[i]))
		}
		rest := copy(l.recs, l.recs[n:])
		clear(l.recs[rest:]) // release span/edge strings held by the flushed prefix
		l.recs = l.recs[:rest]
	}
	if len(tr.batch) == 0 {
		return
	}
	sortStream(tr.batch)
	if last := sim.Time(tr.batch[len(tr.batch)-1].At); last > tr.maxFlushed {
		tr.maxFlushed = last
	}
	tr.sinkErr = tr.sink.Emit(tr.batch)
}

// CloseStream flushes everything still retained and finalizes the sink with
// the run's makespan (clamped up to the latest flushed stamp, mirroring the
// buffered exporters' maxEnd clamp). Returns the first sink error, if any.
// No-op on buffered tracers.
func (tr *Tracer) CloseStream(makespan sim.Time) error {
	if tr.sink == nil {
		return nil
	}
	tr.FlushWindow(sim.Time(math.MaxInt64))
	if tr.sinkErr != nil {
		return tr.sinkErr
	}
	if makespan < tr.maxFlushed {
		makespan = tr.maxFlushed
	}
	tr.sinkErr = tr.sink.Close(makespan)
	return tr.sinkErr
}

// StreamErr reports the first sink failure of a streaming tracer.
func (tr *Tracer) StreamErr() error { return tr.sinkErr }

// WriteStream exports a buffered tracer as the trace stream: every record
// of every lane merged into canonical stream order and written through the
// same sink implementation the streaming path uses, so the bytes are
// identical to a streamed run of the same job.
func (tr *Tracer) WriteStream(w io.Writer, makespan sim.Time) error {
	sink := NewStreamWriter(w)
	var recs []prof.StreamRec
	for _, l := range tr.lanes {
		for i := range l.recs {
			recs = append(recs, wireRec(l.node, &l.recs[i]))
		}
	}
	sortStream(recs)
	if err := sink.Emit(recs); err != nil {
		return err
	}
	if n := len(recs); n > 0 {
		if last := sim.Time(recs[n-1].At); makespan < last {
			makespan = last
		}
	}
	return sink.Close(makespan)
}
