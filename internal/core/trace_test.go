package core

import (
	"encoding/json"
	"strings"
	"testing"

	"impacc/internal/device"
	"impacc/internal/mpi"
)

func TestTracerCollectsAllSpanKinds(t *testing.T) {
	tr := NewTracer()
	cfg := psgCfg(IMPACC, 2)
	cfg.Trace = tr
	mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(1 << 16)
		tk.Compute(1e6)
		tk.Kernels(device.KernelSpec{Name: "k", FLOPs: 1e8, Kind: device.KindCompute}, -1)
		if tk.Rank() == 0 {
			tk.Send(buf, 1024, mpi.Float64, 1, 0)
		} else {
			tk.Recv(buf, 1024, mpi.Float64, 0, 0)
		}
	})
	kinds := map[string]int{}
	for _, s := range tr.Spans() {
		kinds[s.Kind]++
		if s.End < s.Start {
			t.Fatalf("span with negative duration: %+v", s)
		}
		if s.Rank < 0 || s.Rank > 1 {
			t.Fatalf("span rank out of range: %+v", s)
		}
	}
	for _, want := range []string{"kernel", "mpi", "compute"} {
		if kinds[want] == 0 {
			t.Errorf("no %q spans collected (got %v)", want, kinds)
		}
	}
	// Spans are sorted by start.
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted")
		}
	}
}

func TestTracerJSONOutputs(t *testing.T) {
	tr := NewTracer()
	cfg := psgCfg(IMPACC, 1)
	cfg.Trace = tr
	mustRun(t, cfg, func(tk *Task) {
		tk.Kernels(device.KernelSpec{Name: "k", FLOPs: 1e8, Kind: device.KindCompute}, -1)
	})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(sb.String()), &spans); err != nil {
		t.Fatalf("JSON invalid: %v", err)
	}
	if len(spans) != tr.Len() {
		t.Fatalf("round-trip lost spans: %d vs %d", len(spans), tr.Len())
	}

	sb.Reset()
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &chrome); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("no chrome events")
	}
	// Metadata events lead; complete ("X") spans must follow and be
	// well-formed.
	var sawMeta, sawSpan bool
	for _, ev := range chrome.TraceEvents {
		switch ev["ph"] {
		case "M":
			sawMeta = true
			if sawSpan {
				t.Fatalf("metadata event after span events: %v", ev)
			}
		case "X":
			sawSpan = true
			if ev["name"] == "" {
				t.Fatalf("chrome event malformed: %v", ev)
			}
		}
	}
	if !sawMeta || !sawSpan {
		t.Fatalf("missing metadata or span events (meta=%v span=%v)", sawMeta, sawSpan)
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	// Without a tracer the span hook must be a no-op (no panic, no spans).
	mustRun(t, psgCfg(IMPACC, 1), func(tk *Task) {
		tk.Compute(1e5)
	})
}
