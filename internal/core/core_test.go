package core

import (
	"fmt"
	"strings"
	"testing"

	"impacc/internal/acc"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

func psgCfg(mode Mode, maxTasks int) Config {
	return Config{System: topo.PSG(), Mode: mode, Backed: true, MaxTasks: maxTasks}
}

func mustRun(t *testing.T, cfg Config, prog Program) *Report {
	t.Helper()
	rep, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBuildMappingFigure2(t *testing.T) {
	sys := topo.HeteroDemo()
	// acc_device_default: every accelerator, node-major.
	all := BuildMapping(sys, 0, 0)
	if len(all) != 11 {
		t.Fatalf("default mapping = %d tasks, want 11", len(all))
	}
	if all[0] != (Placement{0, 0}) || all[4] != (Placement{1, 0}) {
		t.Fatalf("mapping order wrong: %+v", all)
	}
	// acc_device_nvidia: 3 GPUs.
	nv := BuildMapping(sys, topo.MaskOf(topo.NVIDIAGPU), 0)
	if len(nv) != 3 {
		t.Fatalf("nvidia mapping = %d, want 3", len(nv))
	}
	// acc_device_cpu: 6 CPU accelerators.
	if got := len(BuildMapping(sys, topo.MaskOf(topo.CPUAccel), 0)); got != 6 {
		t.Fatalf("cpu mapping = %d, want 6", got)
	}
	// nvidia|xeonphi: 5.
	if got := len(BuildMapping(sys, topo.MaskOf(topo.NVIDIAGPU, topo.XeonPhi), 0)); got != 5 {
		t.Fatalf("nvidia|xeonphi mapping = %d, want 5", got)
	}
	// MaxTasks caps.
	if got := len(BuildMapping(sys, 0, 4)); got != 4 {
		t.Fatalf("capped mapping = %d, want 4", got)
	}
}

func TestRunLaunchesTaskPerDevice(t *testing.T) {
	seen := make(map[int]Placement)
	rep := mustRun(t, psgCfg(IMPACC, 0), func(tk *Task) {
		seen[tk.Rank()] = Placement{tk.NodeIdx(), 0}
		if tk.Size() != 8 {
			t.Errorf("size = %d, want 8", tk.Size())
		}
		if tk.DeviceType() != topo.NVIDIAGPU {
			t.Errorf("device type = %v", tk.DeviceType())
		}
	})
	if len(seen) != 8 || rep.NTasks != 8 {
		t.Fatalf("tasks = %d, want 8 (one per PSG GPU)", len(seen))
	}
}

func TestNoMatchingDevices(t *testing.T) {
	cfg := psgCfg(IMPACC, 0)
	cfg.DeviceTypes = topo.MaskOf(topo.FPGA)
	if _, err := Run(cfg, func(tk *Task) {}); err == nil {
		t.Fatal("run with no matching devices must fail")
	}
}

func TestSendRecvIntraNode(t *testing.T) {
	rep := mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(800)
		defer tk.Free(buf)
		v := tk.Floats(buf, 100)
		if tk.Rank() == 0 {
			for i := range v {
				v[i] = float64(i) * 1.25
			}
			tk.Send(buf, 100, mpi.Float64, 1, 7)
		} else {
			tk.Recv(buf, 100, mpi.Float64, 0, 7)
			for i := range v {
				if v[i] != float64(i)*1.25 {
					t.Errorf("recv[%d] = %v", i, v[i])
				}
			}
		}
	})
	if rep.TotalHub().FusedCopies != 1 {
		t.Fatalf("fused copies = %d, want 1", rep.TotalHub().FusedCopies)
	}
}

func TestSendRecvInternode(t *testing.T) {
	cfg := Config{System: topo.Titan(2), Mode: IMPACC, Backed: true}
	rep := mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(64)
		b := tk.Bytes(buf, 64)
		if tk.Rank() == 0 {
			b[5] = 0xAB
			tk.Send(buf, 64, mpi.Byte, 1, 0)
		} else {
			tk.Recv(buf, 64, mpi.Byte, 0, 0)
			if b[5] != 0xAB {
				t.Error("internode payload lost")
			}
		}
	})
	if rep.TotalHub().NetOut != 1 {
		t.Fatalf("net out = %d", rep.TotalHub().NetOut)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		a := tk.Malloc(256)
		b := tk.Malloc(256)
		if tk.Rank() == 0 {
			va := tk.Floats(a, 32)
			va[0] = 42
			s := tk.Isend(a, 32, mpi.Float64, 1, 1)
			r := tk.Irecv(b, 32, mpi.Float64, 1, 2)
			tk.Wait(s, r)
			if tk.Floats(b, 32)[0] != 43 {
				t.Error("rank 0 recv wrong")
			}
		} else {
			vb := tk.Floats(b, 32)
			vb[0] = 43
			s := tk.Isend(b, 32, mpi.Float64, 0, 2)
			r := tk.Irecv(a, 32, mpi.Float64, 0, 1)
			tk.Wait(s, r)
			if tk.Floats(a, 32)[0] != 42 {
				t.Error("rank 1 recv wrong")
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		mine := tk.Malloc(8)
		theirs := tk.Malloc(8)
		tk.Floats(mine, 1)[0] = float64(tk.Rank() + 100)
		peer := 1 - tk.Rank()
		tk.Sendrecv(mine, 1, mpi.Float64, peer, 3, theirs, 1, mpi.Float64, peer, 3)
		if got := tk.Floats(theirs, 1)[0]; got != float64(peer+100) {
			t.Errorf("rank %d got %v", tk.Rank(), got)
		}
	})
}

func TestAnySourceRecv(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 3), func(tk *Task) {
		buf := tk.Malloc(8)
		switch tk.Rank() {
		case 0:
			got := map[float64]bool{}
			for i := 0; i < 2; i++ {
				tk.Recv(buf, 1, mpi.Float64, AnySource, AnyTag)
				got[tk.Floats(buf, 1)[0]] = true
			}
			if !got[1] || !got[2] {
				t.Errorf("wildcard recv payloads = %v", got)
			}
		default:
			tk.Floats(buf, 1)[0] = float64(tk.Rank())
			tk.Send(buf, 1, mpi.Float64, 0, tk.Rank()*5)
		}
	})
}

func TestDeviceBufferSend(t *testing.T) {
	// #pragma acc mpi sendbuf(device): send straight from device memory.
	rep := mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		host := tk.Malloc(800)
		dev := tk.DataEnter(host, 800, acc.Create)
		if tk.Rank() == 0 {
			// Fill device copy directly (stands in for a kernel's output).
			v, _ := tk.space.Float64s(dev, 100)
			for i := range v {
				v[i] = float64(i)
			}
			tk.Send(host, 100, mpi.Float64, 1, 0, OnDevice())
		} else {
			tk.Recv(host, 100, mpi.Float64, 0, 0, OnDevice())
			v, _ := tk.space.Float64s(dev, 100)
			for i := range v {
				if v[i] != float64(i) {
					t.Errorf("device recv[%d] = %v", i, v[i])
					break
				}
			}
		}
		tk.DataExit(host, acc.Delete)
	})
	dev := rep.TotalDev()
	if dev.DtoDCount != 1 {
		t.Fatalf("DtoD fused copies = %d, want 1 (Figure 6)", dev.DtoDCount)
	}
}

func TestLegacyRejectsImpaccExtensions(t *testing.T) {
	cfg := psgCfg(Legacy, 2)
	_, err := Run(cfg, func(tk *Task) {
		buf := tk.Malloc(8)
		if tk.Rank() == 0 {
			tk.Send(buf, 1, mpi.Float64, 1, 0, Async(1))
		} else {
			tk.Recv(buf, 1, mpi.Float64, 0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "unified activity queue") {
		t.Fatalf("legacy async send error = %v", err)
	}
}

func TestUnifiedActivityQueuePipelines(t *testing.T) {
	// Figure 4(c)/5(c): kernel -> isend -> irecv -> kernel all on queue 1;
	// the host must not block between operations.
	var hostFree [2]sim.Dur
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		n := int64(1 << 20)
		buf0 := tk.Malloc(n)
		buf1 := tk.Malloc(n)
		d0 := tk.DataEnter(buf0, n, acc.Create)
		d1 := tk.DataEnter(buf1, n, acc.Create)
		_, _ = d0, d1
		peer := 1 - tk.Rank()
		spec := device.KernelSpec{Name: "k", FLOPs: 1e9, Kind: device.KindCompute}
		t0 := tk.Now()
		tk.Kernels(spec, 1)
		tk.Isend(buf0, int(n/8), mpi.Float64, peer, 1, OnDevice(), Async(1))
		tk.Irecv(buf1, int(n/8), mpi.Float64, peer, 1, OnDevice(), Async(1))
		tk.Kernels(spec, 1)
		hostFree[tk.Rank()] = dur(tk.Now() - t0) // time host spent issuing
		tk.ACCWait(1)
		tk.DataExit(buf0, acc.Delete)
		tk.DataExit(buf1, acc.Delete)
	})
	for r, d := range hostFree {
		// Issuing 4 async ops must cost far less than one kernel (~1ms).
		if d > sim.Dur(500*sim.Microsecond) {
			t.Fatalf("rank %d host blocked %v while issuing async pipeline", r, d)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var after [4]sim.Time
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		// Stagger arrival; everyone leaves together (>= slowest arrival).
		tk.Busy(sim.Dur(tk.Rank()+1) * sim.Millisecond)
		tk.Barrier()
		after[tk.Rank()] = tk.Now()
	})
	for r, at := range after {
		if at < sim.Time(4*sim.Millisecond) {
			t.Fatalf("rank %d left barrier at %v, before slowest arrival", r, at)
		}
	}
}

func TestBcastDataAndAliasing(t *testing.T) {
	// Readonly bcast across one node: intra-node hops should use node heap
	// aliasing (paper §3.8 collective discussion).
	rep := mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		buf := tk.Malloc(800)
		if tk.Rank() == 0 {
			v := tk.Floats(buf, 100)
			for i := range v {
				v[i] = float64(i) + 0.5
			}
		}
		tk.Bcast(buf, 100, mpi.Float64, 0, ReadOnly())
		v := tk.Floats(buf, 100)
		for i := range v {
			if v[i] != float64(i)+0.5 {
				t.Errorf("rank %d bcast[%d] = %v", tk.Rank(), i, v[i])
				break
			}
		}
	})
	if got := rep.TotalHub().Aliases; got != 3 {
		t.Fatalf("aliases = %d, want 3 (every non-root task)", got)
	}
}

func TestBcastWithoutReadonlyCopies(t *testing.T) {
	rep := mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		buf := tk.Malloc(800)
		tk.Bcast(buf, 100, mpi.Float64, 0)
	})
	if rep.TotalHub().Aliases != 0 {
		t.Fatal("non-readonly bcast must not alias")
	}
	if rep.TotalHub().FusedCopies != 3 {
		t.Fatalf("fused = %d, want 3", rep.TotalHub().FusedCopies)
	}
}

func TestBcastInternodeTwoLevel(t *testing.T) {
	// 2 Beacon nodes x 4 devices: root sends to the other node's leader
	// once; local fan-out covers the rest (paper §3.8).
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true}
	rep := mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(80)
		if tk.Rank() == 0 {
			tk.Floats(buf, 10)[3] = 33
		}
		tk.Bcast(buf, 10, mpi.Float64, 0)
		if tk.Floats(buf, 10)[3] != 33 {
			t.Errorf("rank %d missed bcast", tk.Rank())
		}
	})
	if got := rep.TotalHub().NetOut; got != 1 {
		t.Fatalf("internode messages = %d, want 1 (one per remote node)", got)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 8), func(tk *Task) {
		in := tk.Malloc(32)
		out := tk.Malloc(32)
		v := tk.Floats(in, 4)
		for i := range v {
			v[i] = float64(tk.Rank() + i)
		}
		tk.Reduce(in, out, 4, mpi.Float64, mpi.Sum, 0)
		if tk.Rank() == 0 {
			// sum over r of (r+i) = 28 + 8i
			got := tk.Floats(out, 4)
			for i := range got {
				if got[i] != float64(28+8*i) {
					t.Errorf("reduce[%d] = %v, want %d", i, got[i], 28+8*i)
				}
			}
		}
		res := tk.Malloc(32)
		tk.Allreduce(in, res, 4, mpi.Float64, mpi.Max)
		got := tk.Floats(res, 4)
		for i := range got {
			if got[i] != float64(7+i) {
				t.Errorf("allreduce[%d] = %v, want %d", i, got[i], 7+i)
			}
		}
	})
}

func TestGatherScatter(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		n := tk.Size()
		mine := tk.Malloc(8)
		all := tk.Malloc(int64(8 * n))
		tk.Floats(mine, 1)[0] = float64(tk.Rank() * 11)
		tk.Gather(mine, 1, mpi.Float64, all, 0)
		if tk.Rank() == 0 {
			v := tk.Floats(all, n)
			for i := range v {
				if v[i] != float64(i*11) {
					t.Errorf("gather[%d] = %v", i, v[i])
				}
			}
			for i := range v {
				v[i] = float64(i * 7)
			}
		}
		back := tk.Malloc(8)
		tk.Scatter(all, 1, mpi.Float64, back, 0)
		if got := tk.Floats(back, 1)[0]; got != float64(tk.Rank()*7) {
			t.Errorf("scatter rank %d = %v", tk.Rank(), got)
		}
	})
}

func TestAllgatherAlltoall(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		n := tk.Size()
		mine := tk.Malloc(8)
		all := tk.Malloc(int64(8 * n))
		tk.Floats(mine, 1)[0] = float64(tk.Rank() + 1)
		tk.Allgather(mine, 1, mpi.Float64, all)
		v := tk.Floats(all, n)
		for i := range v {
			if v[i] != float64(i+1) {
				t.Errorf("allgather[%d] = %v", i, v[i])
			}
		}
		// Alltoall: element j of rank i's send = 100*i + j.
		sbuf := tk.Malloc(int64(8 * n))
		rbuf := tk.Malloc(int64(8 * n))
		sv := tk.Floats(sbuf, n)
		for j := range sv {
			sv[j] = float64(100*tk.Rank() + j)
		}
		tk.Alltoall(sbuf, 1, mpi.Float64, rbuf)
		rv := tk.Floats(rbuf, n)
		for i := range rv {
			if rv[i] != float64(100*i+tk.Rank()) {
				t.Errorf("alltoall rank %d slot %d = %v", tk.Rank(), i, rv[i])
			}
		}
	})
}

func TestFreeAliasedBufferRefcounts(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		if tk.Rank() == 0 {
			src := tk.Malloc(256)
			tk.Send(src, 32, mpi.Float64, 1, 0, ReadOnly())
			// Producer frees after the consumer aliased: storage must
			// survive until the consumer also frees.
			tk.Barrier()
			tk.Free(src)
		} else {
			dst := tk.Malloc(256)
			tk.Recv(dst, 32, mpi.Float64, 0, 0, ReadOnly())
			tk.Barrier()
			// Read through the alias after the producer freed.
			_ = tk.Floats(dst, 32)[0]
			tk.Free(dst)
		}
	})
}

func TestPinPolicyAffectsTransfers(t *testing.T) {
	run := func(pin PinPolicy) sim.Dur {
		cfg := psgCfg(IMPACC, 1)
		cfg.Pin = pin
		var elapsed sim.Dur
		mustRun(t, cfg, func(tk *Task) {
			buf := tk.Malloc(64 << 20)
			t0 := tk.Now()
			tk.DataEnter(buf, 64<<20, acc.Copyin)
			elapsed = dur(tk.Now() - t0)
			tk.DataExit(buf, acc.Delete)
		})
		return elapsed
	}
	near := run(PinNear)
	far := run(PinFar)
	ratio := float64(far) / float64(near)
	if ratio < 3.0 || ratio > 3.7 {
		t.Fatalf("far/near HtoD ratio = %.2f, want ~3.5 (Figure 8)", ratio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Dur {
		cfg := psgCfg(IMPACC, 4)
		cfg.JitterPct = 2
		cfg.Seed = 99
		rep := mustRun(t, cfg, func(tk *Task) {
			buf := tk.Malloc(1 << 20)
			tk.Compute(1e7)
			tk.Bcast(buf, 1<<17, mpi.Float64, 0)
			tk.Barrier()
		})
		return rep.Elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 2), func(tk *Task) {
		if tk.Rank() == 1 {
			tk.failf("boom")
		} else {
			buf := tk.Malloc(8)
			tk.Recv(buf, 1, mpi.Float64, 1, 0) // never satisfied
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want task failure", err)
	}
	re, ok := err.(*RunError)
	if !ok || re.Rank != 1 {
		t.Fatalf("error type = %T (%v)", err, err)
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(8)
		// Both tasks receive; nobody sends.
		tk.Recv(buf, 1, mpi.Float64, 1-tk.Rank(), 0)
	})
	if err == nil {
		t.Fatal("deadlock must surface as an error")
	}
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %T, want DeadlockError", err)
	}
}

func TestReportAggregates(t *testing.T) {
	rep := mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(1 << 10)
		tk.Kernels(device.KernelSpec{FLOPs: 1e8, Kind: device.KindCompute}, -1)
		if tk.Rank() == 0 {
			tk.Send(buf, 128, mpi.Float64, 1, 0)
		} else {
			tk.Recv(buf, 128, mpi.Float64, 0, 0)
		}
	})
	if rep.TotalDev().KernelCount != 2 {
		t.Fatalf("kernel count = %d", rep.TotalDev().KernelCount)
	}
	if rep.Elapsed == 0 || rep.MeanKernel() == 0 {
		t.Fatal("empty aggregates")
	}
	var sb strings.Builder
	rep.Print(&sb)
	if !strings.Contains(sb.String(), "IMPACC on PSG") {
		t.Fatalf("report print = %q", sb.String())
	}
	if rep.MaxComm() == 0 {
		t.Fatal("comm time missing")
	}
}

func TestLegacyModeRunsSameProgram(t *testing.T) {
	// The identical program must produce identical data under both modes.
	prog := func(tk *Task) {
		buf := tk.Malloc(80)
		if tk.Rank() == 0 {
			v := tk.Floats(buf, 10)
			for i := range v {
				v[i] = float64(i * i)
			}
		}
		tk.Bcast(buf, 10, mpi.Float64, 0)
		sum := 0.0
		for _, x := range tk.Floats(buf, 10) {
			sum += x
		}
		if sum != 285 {
			t.Errorf("mode data mismatch: sum = %v", sum)
		}
	}
	repI := mustRun(t, psgCfg(IMPACC, 4), prog)
	repL := mustRun(t, psgCfg(Legacy, 4), prog)
	if repL.TotalHub().FusedCopies != 0 || repL.TotalHub().Aliases != 0 {
		t.Fatal("legacy run used IMPACC techniques")
	}
	if repI.TotalHub().LegacyCopies != 0 {
		t.Fatal("IMPACC run used legacy transport")
	}
}

func TestSetDeviceNumIgnored(t *testing.T) {
	// Paper §3.2: the mapping is fixed; acc_set_device_num is ignored.
	mustRun(t, psgCfg(IMPACC, 3), func(tk *Task) {
		matched := tk.SetDeviceNum(tk.DeviceIndex())
		if !matched {
			t.Errorf("rank %d: matching SetDeviceNum reported false", tk.Rank())
		}
		if tk.SetDeviceNum(tk.DeviceIndex() + 1) {
			t.Errorf("rank %d: mismatched SetDeviceNum reported true", tk.Rank())
		}
		// The attached device must be unchanged regardless.
		if tk.DeviceIndex() != tk.Rank() {
			t.Errorf("mapping changed: rank %d device %d", tk.Rank(), tk.DeviceIndex())
		}
	})
}

func TestSegmentedBcastDataIntegrity(t *testing.T) {
	// Large internode broadcast exercises the segmented pipelined tree:
	// every byte must land on every task.
	cfg := Config{System: topo.Beacon(4), Mode: IMPACC, Backed: true, Seed: 5}
	n := int64(12 << 20) // 3 segments of 4 MiB
	mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(n)
		if tk.Rank() == 0 {
			b := tk.Bytes(buf, n)
			for i := range b {
				b[i] = byte(i*7 + 13)
			}
		}
		tk.Bcast(buf, int(n/8), mpi.Float64, 0)
		b := tk.Bytes(buf, n)
		for _, i := range []int64{0, 1, n/2 - 1, n / 2, n - 2, n - 1, 4<<20 - 1, 4 << 20, 8 << 20} {
			if b[i] != byte(int(i)*7+13) {
				t.Fatalf("rank %d byte %d = %d, want %d", tk.Rank(), i, b[i], byte(int(i)*7+13))
			}
		}
	})
}

func TestSegmentedBcastPipelines(t *testing.T) {
	// The pipelined tree must beat a depth-x-message lower bound: for 8
	// Titan nodes (depth 3), an unsegmented tree costs >= 3 full-message
	// times at the root alone; the pipeline should land well under that.
	sys := topo.Titan(8)
	n := 64 << 20
	cfg := Config{System: sys, Mode: IMPACC, Backed: false}
	var done sim.Time
	mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(int64(n))
		tk.Bcast(buf, n/8, mpi.Float64, 0)
		if tk.Now() > done {
			done = tk.Now()
		}
	})
	full := sim.DurFromSeconds(float64(n) / (4.5 * 1e9)) // one message over Gemini
	if sim.Dur(done) > 2*full {
		t.Fatalf("segmented bcast took %v, want < 2 full-message times (%v)", sim.Dur(done), full)
	}
}

func TestBcastNonRootOrigin(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		buf := tk.Malloc(64)
		if tk.Rank() == 2 {
			tk.Floats(buf, 8)[0] = 2.5
		}
		tk.Bcast(buf, 8, mpi.Float64, 2)
		if got := tk.Floats(buf, 8)[0]; got != 2.5 {
			t.Errorf("rank %d: bcast from root 2 got %v", tk.Rank(), got)
		}
	})
}

func TestReduceOnDeviceBuffers(t *testing.T) {
	// sendbuf(device) reduction: partials live in device memory; the root
	// accumulates into its device-mapped recv buffer.
	mustRun(t, psgCfg(IMPACC, 4), func(tk *Task) {
		host := tk.Malloc(64)
		tk.DataEnter(host, 64, acc.Create)
		dv := tk.Floats(tk.DevicePtr(host), 8)
		for i := range dv {
			dv[i] = float64(tk.Rank() + 1)
		}
		out := tk.Malloc(64)
		tk.DataEnter(out, 64, acc.Create)
		tk.Reduce(host, out, 8, mpi.Float64, mpi.Sum, 0, OnDevice())
		if tk.Rank() == 0 {
			got := tk.Floats(tk.DevicePtr(out), 8)
			for i, v := range got {
				if v != 10 { // 1+2+3+4
					t.Errorf("device reduce[%d] = %v, want 10", i, v)
				}
			}
		}
		tk.DataExit(out, acc.Delete)
		tk.DataExit(host, acc.Delete)
	})
}

func TestUnifiedQueueErrorSurfaces(t *testing.T) {
	// A failing MPI operation on a unified queue must abort the run when
	// the queue drains (truncating receive).
	_, err := Run(psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(1024)
		small := tk.Malloc(64)
		if tk.Rank() == 0 {
			tk.Isend(buf, 128, mpi.Float64, 1, 0, Async(1))
		} else {
			tk.Irecv(small, 8, mpi.Float64, 0, 0, Async(1)) // too small
		}
		tk.ACCWait(1)
	})
	if err == nil || !strings.Contains(err.Error(), "truncation") {
		t.Fatalf("err = %v, want truncation", err)
	}
}

func TestFreeUnknownAddressFails(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 1), func(tk *Task) {
		tk.Free(0xdeadbeef)
	})
	if err == nil {
		t.Fatal("freeing an unmapped address must fail the task")
	}
}

func TestNegativeAppTagRejected(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(8)
		if tk.Rank() == 0 {
			tk.Send(buf, 1, mpi.Float64, 1, -5)
		} else {
			tk.Recv(buf, 1, mpi.Float64, 0, -5)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("err = %v, want tag rejection", err)
	}
}

func TestRequestDoneAndWaitNil(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(8)
		if tk.Rank() == 0 {
			r := tk.Isend(buf, 1, mpi.Float64, 1, 0)
			tk.Wait(nil, r) // nil requests are skipped
			if !r.Done() {
				t.Error("request not done after Wait")
			}
		} else {
			tk.Recv(buf, 1, mpi.Float64, 0, 0)
		}
	})
}

func TestComputeUsesPinnedSocketRate(t *testing.T) {
	var elapsed sim.Dur
	mustRun(t, psgCfg(IMPACC, 1), func(tk *Task) {
		t0 := tk.Now()
		tk.Compute(589e9) // one second of socket-rate flops
		elapsed = dur(tk.Now() - t0)
	})
	if elapsed < sim.Second*99/100 || elapsed > sim.Second*101/100 {
		t.Fatalf("Compute(1s of flops) = %v", elapsed)
	}
}

func TestDataRegionStructured(t *testing.T) {
	mustRun(t, psgCfg(IMPACC, 1), func(tk *Task) {
		a := tk.Malloc(256)
		b := tk.Malloc(256)
		tk.Floats(a, 32)[0] = 3
		tk.DataRegion([]DataRange{
			{Addr: a, Bytes: 256, Enter: acc.Copyin, Exit: acc.Delete},
			{Addr: b, Bytes: 256, Enter: acc.Create, Exit: acc.Copyout},
		}, func() {
			if !tk.ACC().IsPresent(a) || !tk.ACC().IsPresent(b) {
				t.Error("ranges not present inside region")
			}
			// Device-side work writing b.
			tk.Floats(tk.DevicePtr(b), 32)[0] = 7
		})
		if tk.ACC().IsPresent(a) || tk.ACC().IsPresent(b) {
			t.Error("mappings survived region end")
		}
		if tk.Floats(b, 32)[0] != 7 {
			t.Error("copyout at region end missed")
		}
	})
}

func TestDataRegionUnwindsOnFailure(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 1), func(tk *Task) {
		a := tk.Malloc(64)
		tk.DataRegion([]DataRange{{Addr: a, Bytes: 64, Enter: acc.Copyin, Exit: acc.Delete}}, func() {
			tk.failf("inner failure")
		})
	})
	if err == nil || !strings.Contains(err.Error(), "inner failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskAccessorsAndACCFacade(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Mode: IMPACC, Backed: true, Seed: 2}
	rep := mustRun(t, cfg, func(tk *Task) {
		if tk.NumNodes() != 2 {
			t.Errorf("NumNodes = %d", tk.NumNodes())
		}
		if tk.LocalIndex() != tk.Rank()%4 {
			t.Errorf("rank %d local index = %d", tk.Rank(), tk.LocalIndex())
		}
		if tk.DeviceSpec().Class != topo.XeonPhi {
			t.Error("DeviceSpec wrong")
		}
		if tk.RNG() == nil || tk.ACC() == nil {
			t.Error("accessors nil")
		}
		// Update paths through the Task facade.
		buf := tk.Malloc(4096)
		tk.DataEnter(buf, 4096, acc.Create)
		tk.UpdateDevice(buf, 4096, -1)
		tk.UpdateHost(buf, 4096, -1)
		tk.UpdateDevice(buf, 4096, 1)
		tk.UpdateHost(buf, 4096, 1)
		tk.ACCWaitAll()
		tk.DataExit(buf, acc.Delete)
		// CopyLocal charges a host copy.
		a, b := tk.Malloc(1024), tk.Malloc(1024)
		tk.Bytes(a, 1024)[5] = 0x7c
		tk.CopyLocal(b, a, 1024)
		if tk.Bytes(b, 1024)[5] != 0x7c {
			t.Error("CopyLocal lost data")
		}
	})
	if rep.Tasks[0].Dev.HtoDCount < 2 {
		t.Fatal("facade updates did not transfer")
	}
}

func TestRuntimeTasksAccessor(t *testing.T) {
	rt, err := NewRuntime(psgCfg(IMPACC, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Tasks()) != 3 {
		t.Fatalf("tasks = %d", len(rt.Tasks()))
	}
	if _, err := rt.Execute(func(tk *Task) {}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorUnwrap(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 1), func(tk *Task) {
		tk.Fail(errSentinel)
	})
	re, ok := err.(*RunError)
	if !ok || re.Unwrap() != errSentinel {
		t.Fatalf("unwrap = %v", err)
	}
}

var errSentinel = fmt.Errorf("sentinel")

func TestCheckCmdOnTruncatedWait(t *testing.T) {
	_, err := Run(psgCfg(IMPACC, 2), func(tk *Task) {
		big := tk.Malloc(1024)
		small := tk.Malloc(64)
		if tk.Rank() == 0 {
			s := tk.Isend(big, 128, mpi.Float64, 1, 0)
			tk.Wait(s)
		} else {
			r := tk.Irecv(small, 8, mpi.Float64, 0, 0)
			tk.Wait(r)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "truncation") {
		t.Fatalf("err = %v", err)
	}
}

func TestLeakDetection(t *testing.T) {
	rep := mustRun(t, psgCfg(IMPACC, 1), func(tk *Task) {
		buf := tk.Malloc(256)
		tk.DataEnter(buf, 256, acc.Copyin) // never exited
	})
	if rep.Leaks() != 1 || rep.Tasks[0].LeakedMappings != 1 {
		t.Fatalf("leaks = %d, want 1", rep.Leaks())
	}
	clean := mustRun(t, psgCfg(IMPACC, 1), func(tk *Task) {
		buf := tk.Malloc(256)
		tk.DataEnter(buf, 256, acc.Copyin)
		tk.DataExit(buf, acc.Delete)
	})
	if clean.Leaks() != 0 {
		t.Fatalf("clean run leaks = %d", clean.Leaks())
	}
}

func TestReportUtilizationFields(t *testing.T) {
	cfg := Config{System: topo.Titan(2), Mode: IMPACC, Backed: true}
	rep := mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(1 << 20)
		if tk.Rank() == 0 {
			tk.Send(buf, 1<<17, mpi.Float64, 1, 0)
		} else {
			tk.Recv(buf, 1<<17, mpi.Float64, 0, 0)
		}
	})
	if rep.Hubs[0].NICOutBusy == 0 {
		t.Fatal("sender NIC busy time missing")
	}
	if rep.Hubs[1].NICInBusy == 0 {
		t.Fatal("receiver NIC busy time missing")
	}
	if len(rep.Hubs[0].PCIeBusy) != 1 {
		t.Fatal("PCIe busy slots missing")
	}
}

func TestACCWaitAsyncWithUnifiedMPI(t *testing.T) {
	// Queue 2's kernel must observe data received by queue 1's MPI op,
	// ordered purely on the device via wait(1) async(2).
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(256)
		tk.DataEnter(buf, 256, acc.Create)
		peer := 1 - tk.Rank()
		if tk.Rank() == 0 {
			v := tk.Floats(tk.DevicePtr(buf), 32)
			v[7] = 42
			tk.Isend(buf, 32, mpi.Float64, peer, 1, OnDevice(), Async(1))
			tk.ACCWait(1)
		} else {
			tk.Irecv(buf, 32, mpi.Float64, peer, 1, OnDevice(), Async(1))
			tk.ACCWaitAsync(1, 2)
			var got float64
			tk.Kernels(device.KernelSpec{Name: "consume", FLOPs: 1e6, Kind: device.KindCompute,
				Body: func() { got = tk.Floats(tk.DevicePtr(buf), 32)[7] }}, 2)
			tk.ACCWait(2)
			if got != 42 {
				t.Errorf("kernel ran before the cross-queue dependency: got %v", got)
			}
		}
		tk.DataExit(buf, acc.Delete)
	})
}

func TestZeroCountMessages(t *testing.T) {
	// count=0 sends are legal MPI synchronization messages, intra-node
	// and internode, even with a Nil-ish buffer address.
	mustRun(t, psgCfg(IMPACC, 2), func(tk *Task) {
		buf := tk.Malloc(8)
		if tk.Rank() == 0 {
			tk.Send(buf, 0, mpi.Float64, 1, 1)
		} else {
			st := tk.RecvStatus(buf, 0, mpi.Float64, 0, 1)
			if st.Count != 0 || st.Source != 0 {
				t.Errorf("zero-count status = %+v", st)
			}
		}
	})
	cfg := Config{System: topo.Titan(2), Mode: IMPACC, Backed: true}
	mustRun(t, cfg, func(tk *Task) {
		buf := tk.Malloc(8)
		if tk.Rank() == 0 {
			tk.Send(buf, 0, mpi.Float64, 1, 1)
		} else {
			tk.Recv(buf, 0, mpi.Float64, 0, 1)
		}
	})
}
