package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"impacc/internal/device"
	"impacc/internal/fault"
	"impacc/internal/msg"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// Program is the SPMD application body, executed once per task.
type Program func(t *Task)

// nodeState bundles one node's runtime objects.
type nodeState struct {
	idx   int
	hub   *msg.Hub
	heap  *xmem.HeapTable
	devrt *device.Runtime
	// space is the unified node virtual address space (IMPACC); legacy
	// tasks carry private spaces instead.
	space *xmem.Space
}

// Runtime executes one configured run.
type Runtime struct {
	Cfg Config
	// Eng is node 0's engine — the only engine when the run is unsharded
	// (single node, or no usable lookahead).
	Eng   *sim.Engine
	Fab   *topo.Fabric
	feats Features

	// shards are the distinct shard engines in shard order: one per node
	// when the fabric offers a positive conservative lookahead, a single
	// shared engine otherwise. group coordinates their windowed execution;
	// Config.Parallel only sets the group's worker count and never changes
	// a simulated byte (see internal/sim.ShardGroup).
	shards []*sim.Engine
	group  *sim.ShardGroup

	nodes      map[int]*nodeState
	tasks      []*Task
	placements []Placement
	// faults is the run's fault-injection plan (nil on healthy runs). It is
	// instantiated fresh per run from Cfg.Chaos so concurrent runs of the
	// same spec draw identical per-node streams (serial vs -j N parity).
	faults *fault.Plan
	// aggregate, when non-nil, receives a merge of the run's private
	// telemetry after Execute completes (mutex-guarded inside Merge, so
	// many runs may share one aggregate concurrently).
	aggregate *telemetry.Registry
	// metrics is the run's merged registry — shard registries merged in
	// shard order plus the fault plan's buffered counters — built once by
	// runMetrics after the group run finishes.
	metrics *telemetry.Registry
	// splits carries Comm.Split group metadata out of band: the color/key
	// pairs are control information (the allgather still prices the wire
	// exchange), keyed by (parent context id, split sequence). splitMu makes
	// the map safe across shards; ordering needs no lock because a member
	// only reads the map after the allgather, whose internode messages land
	// at least one lookahead window after every deposit.
	splitMu sync.Mutex
	splits  map[[2]int]map[int][2]int
	// allocBytes accumulates task host-heap allocations for the
	// Limits.MaxAllocBytes cap, atomically since tasks allocate from
	// concurrent shards.
	allocBytes atomic.Int64
	// lean reports whether Config.Lean is active for this run: set only
	// when the mapping exceeds leanRankThreshold ranks, so small systems
	// run byte-identically with the flag on or off.
	lean bool
}

// leanRankThreshold is the rank count above which Config.Lean changes
// behaviour: at or below it every lean reduction is a no-op (per-rank
// detail is cheap), so lean runs of small systems stay byte-identical to
// non-lean runs.
const leanRankThreshold = 256

// defaultStreamFlushBeat bounds the streaming tracer's memory on runs with
// no natural window barriers (single shard): flush at least once per
// millisecond of virtual time.
const defaultStreamFlushBeat = sim.Dur(1_000_000)

// Stall returns the flight recorder's dump after an Execute that ended
// abnormally with Config.FlightRing armed; nil after a clean run or when
// disarmed. See sim.StallReport.
func (rt *Runtime) Stall() *sim.StallReport { return rt.group.Stall() }

// depositSplit records one member's (color, key) for a split instance.
func (rt *Runtime) depositSplit(commID, seq, commRank, color, key int) {
	rt.splitMu.Lock()
	defer rt.splitMu.Unlock()
	if rt.splits == nil {
		rt.splits = map[[2]int]map[int][2]int{}
	}
	k := [2]int{commID, seq}
	if rt.splits[k] == nil {
		rt.splits[k] = map[int][2]int{}
	}
	rt.splits[k][commRank] = [2]int{color, key}
}

// lookupSplit returns all deposited pairs for a split instance.
func (rt *Runtime) lookupSplit(commID, seq int) map[int][2]int {
	rt.splitMu.Lock()
	defer rt.splitMu.Unlock()
	return rt.splits[[2]int{commID, seq}]
}

// RunError wraps a task failure.
type RunError struct {
	Rank int
	Err  error
}

func (e *RunError) Error() string { return fmt.Sprintf("task %d: %v", e.Rank, e.Err) }
func (e *RunError) Unwrap() error { return e.Err }

// Run builds the runtime for cfg, executes prog on every task, and returns
// the report.
func Run(cfg Config, prog Program) (*Report, error) {
	rt, err := NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	return rt.Execute(prog)
}

// NewRuntime validates cfg and materializes the engines, fabric, mapping,
// per-node hubs, and tasks. A multi-node system whose fabric offers a
// positive conservative lookahead (see topo.System.MinNetLatency) is
// sharded one engine per node; everything a node does — its tasks, hub,
// device streams, shared links — runs on that node's engine, and only the
// internode message path crosses engines.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		Cfg:   cfg,
		feats: cfg.features(),
		nodes: map[int]*nodeState{},
		// Each engine keeps a private registry during the run (so
		// concurrent runs never contend); runMetrics merges them, and
		// Execute folds the merge into cfg.Metrics when it finishes.
		aggregate: cfg.Metrics,
	}
	nNodes := len(cfg.System.Nodes)
	lookahead := cfg.System.MinNetLatency()
	perNode := make([]*sim.Engine, nNodes)
	if nNodes > 1 && lookahead > 0 {
		rt.shards = make([]*sim.Engine, nNodes)
		for i := range rt.shards {
			rt.shards[i] = sim.NewLPEngine(i)
			perNode[i] = rt.shards[i]
		}
	} else {
		e := sim.NewEngine()
		rt.shards = []*sim.Engine{e}
		for i := range perNode {
			perNode[i] = e
		}
		lookahead = 0
	}
	rt.Eng = perNode[0]
	if cfg.MetricsPool != nil {
		// Pooled registries replace the engines' fresh ones; Execute hands
		// them back once the report is snapshotted and the aggregate merged.
		for _, e := range rt.shards {
			//impacc:allow-sharddiscipline setup-time registry adoption before group.Run: every engine is quiescent, no shard owns anything yet
			e.AdoptMetrics(cfg.MetricsPool.Get())
		}
	}
	rt.group = sim.NewShardGroup(rt.shards, lookahead, cfg.Parallel)
	if cfg.Limits.MaxVirtualTime > 0 {
		rt.group.Deadline = sim.Time(cfg.Limits.MaxVirtualTime)
	}
	if cfg.Limits.MaxEvents > 0 {
		rt.group.MaxEvents = uint64(cfg.Limits.MaxEvents)
	}
	if cfg.Progress != nil {
		rt.group.BeatEvery = cfg.Progress.Every
		// The beat counter lives in this closure, not on the Runtime: OnBeat
		// is an observer and must leave runtime state untouched.
		beatSeq := 0
		rt.group.OnBeat = func(at sim.Time) {
			rt.emitHeartbeat(beatSeq, at)
			beatSeq++
		}
	}
	if tr := cfg.Trace; tr != nil && tr.Streaming() {
		// Flush the streaming tracer at every window barrier: the fence
		// guarantee makes the flushed prefix final. A single-shard run has
		// no natural barriers (one window to completion), so give it beats
		// purely as flush points — window structure never changes simulated
		// bytes, only when memory is released.
		rt.group.OnWindow = tr.FlushWindow
		if len(rt.shards) == 1 && rt.group.BeatEvery == 0 {
			rt.group.BeatEvery = defaultStreamFlushBeat
		}
	}
	if cfg.FlightRing > 0 {
		rt.group.ArmFlight(cfg.FlightRing)
	}
	rt.Fab = topo.NewShardedFabric(perNode, cfg.System)
	if cfg.Chaos != nil {
		rt.faults = fault.NewPlan(cfg.Chaos, nNodes)
		rt.Fab.Faults = rt.faults
	}
	if tr := cfg.Trace; tr != nil {
		tr.Reserve(nNodes)
	}
	rt.placements = BuildMapping(cfg.System, cfg.DeviceTypes, cfg.MaxTasks)
	if len(rt.placements) == 0 {
		return nil, fmt.Errorf("core: no accelerators match device types %v", cfg.DeviceTypes)
	}
	rt.lean = cfg.Lean && len(rt.placements) > leanRankThreshold
	if rt.lean && cfg.Trace != nil && !cfg.Trace.Streaming() {
		return nil, fmt.Errorf("core: lean mode above %d ranks requires a streaming tracer (span sink): a buffered trace would hold the whole causal graph in RAM", leanRankThreshold)
	}
	mcfg := cfg.msgConfig()
	for rank, pl := range rt.placements {
		ns, ok := rt.nodes[pl.Node]
		if !ok {
			heap := xmem.NewHeapTable()
			neng := rt.Fab.Engine(pl.Node)
			ns = &nodeState{
				idx:   pl.Node,
				heap:  heap,
				hub:   msg.NewHub(neng, rt.Fab, pl.Node, mcfg, heap),
				devrt: device.NewRuntime(neng, rt.Fab, pl.Node),
			}
			if tr := cfg.Trace; tr != nil {
				// Record the send→recv causal edge at the instant the hub
				// matches the pair (intranode or internode), on the
				// matching node's trace lane.
				node := pl.Node
				ns.hub.OnMatch = func(sendID, recvID uint64, post sim.Time, bytes int64) {
					tr.msgEdge(node, sendID, recvID, post, neng.Now(), bytes)
				}
			}
			if rt.faults != nil {
				ns.hub.SetFaults(rt.faults)
				ns.devrt.Faults = rt.faults
				if tr := cfg.Trace; tr != nil {
					// Attribute injected resilience intervals (send-retry
					// backoff) on the affected rank's host lane so the
					// profiler's critical path can account fault time.
					node := ns.idx
					ns.hub.OnFault = func(kind string, rank int, start, end sim.Time) {
						tr.record(Span{Rank: rank, Node: node, Stream: -1,
							Kind: "retry", Name: kind, Start: start, End: end, Peer: -1})
					}
				}
			}
			if cfg.Mode == IMPACC {
				ns.space = xmem.NewSpace(
					fmt.Sprintf("node%d", pl.Node),
					len(cfg.System.Nodes[pl.Node].Devices))
			}
			rt.nodes[pl.Node] = ns
		}
		rt.tasks = append(rt.tasks, rt.newTask(rank, pl, ns))
	}
	return rt, nil
}

// pinSocket resolves the CPU socket a task is pinned to.
func (rt *Runtime) pinSocket(pl Placement) int {
	node := &rt.Cfg.System.Nodes[pl.Node]
	near := node.Devices[pl.Device].Socket
	switch rt.Cfg.Pin {
	case PinNear:
		return near
	case PinFar:
		if len(node.Sockets) < 2 {
			return near
		}
		return (near + 1) % len(node.Sockets)
	default: // PinNone
		return -1
	}
}

// Tasks exposes the task list (for test instrumentation).
func (rt *Runtime) Tasks() []*Task { return rt.tasks }

// Events is the total dispatched event count across all shards — the
// denominator a harness divides wall time by for events/sec (BENCH_topo).
func (rt *Runtime) Events() uint64 { return rt.group.Events() }

// Cancel stops an Execute in flight as soon as every shard finishes its
// current event; Execute then returns a *sim.CancelError. It is safe to
// call from any goroutine at any time (it only flips atomic flags), which
// is what lets a serving layer kill abandoned jobs. A cancelled run merges
// no telemetry into a shared aggregate registry (Config.Metrics): the
// cancel instant comes from wall time, so partial counters would poison the
// aggregate's determinism.
func (rt *Runtime) Cancel() { rt.group.Cancel() }

// Execute runs prog across all tasks to completion.
func (rt *Runtime) Execute(prog Program) (*Report, error) {
	// Registered before mergeMetrics so LIFO ordering releases the shard
	// registries only after the aggregate merge has read them.
	defer rt.releaseMetrics()
	defer rt.mergeMetrics()
	for _, t := range rt.tasks {
		t := t
		//impacc:allow-sharddiscipline setup-time seeding before group.Run: every engine is quiescent, no shard owns anything yet
		rt.Fab.Engine(t.pl.Node).Spawn(fmt.Sprintf("task%d", t.rank), func(p *sim.Proc) {
			t.proc = p
			defer func() {
				if r := recover(); r != nil {
					if sim.IsHaltUnwind(r) {
						// The engine halted and is unwinding this
						// task; record the end time and let the
						// sentinel keep propagating.
						t.endAt = p.Now()
						panic(r)
					}
					if re, ok := r.(*RunError); ok {
						t.err = re
					} else {
						t.err = &RunError{Rank: t.rank, Err: fmt.Errorf("panic: %v", r)}
					}
				}
				t.env.Close()
				t.endAt = p.Now()
			}()
			prog(t)
		})
	}
	simErr := rt.group.Run()
	for _, t := range rt.tasks {
		if t.err != nil {
			return nil, t.err
		}
	}
	if simErr != nil {
		return nil, simErr
	}
	return rt.buildReport(), nil
}

// runMetrics returns the run's merged telemetry registry, building it on
// first use: shard registries merge in shard order (their series are
// disjoint — every family carries node, rank, or resource labels — so the
// merge reproduces exactly what a single shared registry would hold), then
// the fault plan flushes its buffered injection counters with their
// recorded virtual-time stamps. The registry's clock reads the group's
// final virtual time, so report-time gauges carry end-of-run stamps.
func (rt *Runtime) runMetrics() *telemetry.Registry {
	if rt.metrics == nil {
		// Shard 0's registry is the merge target: its series are already
		// registered, so a single-shard run merges nothing at all and a
		// sharded run only pays for the other shards' series. Reuse is safe
		// because the run is over (engines quiescent) and nothing reads the
		// shard registries afterwards; the clock is repointed at the group's
		// final virtual time so report-time gauges stamp like a single
		// engine's would.
		reg := rt.shards[0].Metrics
		reg.SetClock(func() int64 { return int64(rt.group.MaxNow()) })
		for _, e := range rt.shards[1:] {
			reg.Merge(e.Metrics)
		}
		if rt.faults != nil {
			rt.faults.FlushInto(reg)
		}
		rt.metrics = reg
	}
	return rt.metrics
}

// releaseMetrics hands the run's shard registries back to the configured
// pool. It runs after mergeMetrics and after the report snapshot (both
// deep-copy what they need), so nothing reads the registries afterwards;
// the Runtime must not be reused once Execute returns.
func (rt *Runtime) releaseMetrics() {
	if rt.Cfg.MetricsPool == nil {
		return
	}
	for _, e := range rt.shards {
		rt.Cfg.MetricsPool.Put(e.Metrics)
	}
	rt.metrics = nil
}

// mergeMetrics folds the run's merged registry into the shared aggregate
// (if any). Deferred from Execute so it runs after buildReport has recorded
// end-of-run gauges, and on error paths too — except after a cancel, whose
// wall-clock-driven truncation point would make the merged partial counters
// nondeterministic.
func (rt *Runtime) mergeMetrics() {
	if rt.aggregate != nil && !rt.group.Cancelled() {
		rt.aggregate.Merge(rt.runMetrics())
	}
}
