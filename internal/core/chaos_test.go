package core

import (
	"bytes"
	"strings"
	"testing"

	"impacc/internal/fault"
	"impacc/internal/mpi"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// TestCollectivesRejectAsync: every collective must reject an async clause
// uniformly — collectives synchronize by definition, so queueing one on an
// acc async lane is always a program error, never silently ignored.
func TestCollectivesRejectAsync(t *testing.T) {
	cases := []struct {
		name string
		call func(tk *Task, in, out xmem16)
	}{
		{"Bcast", func(tk *Task, in, out xmem16) { tk.Bcast(in.a, 2, mpi.Float64, 0, Async(1)) }},
		{"Reduce", func(tk *Task, in, out xmem16) { tk.Reduce(in.a, out.a, 2, mpi.Float64, mpi.Sum, 0, Async(1)) }},
		{"Allreduce", func(tk *Task, in, out xmem16) { tk.Allreduce(in.a, out.a, 2, mpi.Float64, mpi.Sum, Async(1)) }},
		{"Gather", func(tk *Task, in, out xmem16) { tk.Gather(in.a, 2, mpi.Float64, out.big, 0, Async(1)) }},
		{"Scatter", func(tk *Task, in, out xmem16) { tk.Scatter(in.big, 2, mpi.Float64, out.a, 0, Async(1)) }},
		{"Allgather", func(tk *Task, in, out xmem16) { tk.Allgather(in.a, 2, mpi.Float64, out.big, Async(1)) }},
		{"Alltoall", func(tk *Task, in, out xmem16) { tk.Alltoall(in.big, 2, mpi.Float64, out.big, Async(1)) }},
		{"ReduceScatter", func(tk *Task, in, out xmem16) {
			tk.ReduceScatter(in.big, out.a, 2, mpi.Float64, mpi.Sum, Async(1))
		}},
		{"Scan", func(tk *Task, in, out xmem16) { tk.Scan(in.a, out.a, 2, mpi.Float64, mpi.Sum, Async(1)) }},
		{"Gatherv", func(tk *Task, in, out xmem16) {
			counts, displs := vParams(tk.Size())
			tk.Gatherv(in.a, 2, mpi.Float64, out.big, counts, displs, 0, Async(1))
		}},
		{"Scatterv", func(tk *Task, in, out xmem16) {
			counts, displs := vParams(tk.Size())
			tk.Scatterv(in.big, counts, displs, mpi.Float64, out.a, 2, 0, Async(1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(psgCfg(IMPACC, 4), func(tk *Task) {
				bufs := xmem16{a: tk.Malloc(16), big: tk.Malloc(int64(16 * tk.Size()))}
				tc.call(tk, bufs, bufs)
			})
			if err == nil || !strings.Contains(err.Error(), "async") {
				t.Fatalf("%s with Async(1): err = %v, want async-clause rejection", tc.name, err)
			}
		})
	}
}

// xmem16 carries a small per-rank buffer and a size*16 root buffer.
type xmem16 struct{ a, big xmem.Addr }

func vParams(size int) (counts, displs []int) {
	counts = make([]int, size)
	displs = make([]int, size)
	for i := range counts {
		counts[i] = 2
		displs[i] = 2 * i
	}
	return
}

// TestReduceScatterMatchesNaive checks element correctness of the
// root-scratch ReduceScatter against a naively computed reduction, with a
// block size that differs per test run position and ranks spread over two
// nodes (the temp buffer now exists on the root only).
func TestReduceScatterMatchesNaive(t *testing.T) {
	const count = 5 // odd block size to catch stride bugs
	cfg := Config{System: topo.Titan(2), Mode: IMPACC, Backed: true}
	mustRun(t, cfg, func(tk *Task) {
		n := tk.Size()
		in := tk.Malloc(int64(8 * count * n))
		out := tk.Malloc(8 * count)
		v := tk.Floats(in, count*n)
		for i := range v {
			v[i] = float64((tk.Rank()+2)*(i+3)) / 7
		}
		tk.ReduceScatter(in, out, count, mpi.Float64, mpi.Sum)
		got := tk.Floats(out, count)
		for j := 0; j < count; j++ {
			i := count*tk.Rank() + j
			want := 0.0
			for r := 0; r < n; r++ {
				want += float64((r + 2) * (i + 3))
			}
			want /= 7
			if diff := got[j] - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("rank %d block[%d] = %v, want %v", tk.Rank(), j, got[j], want)
			}
		}
	})
}

// chaosProgram exercises every injected fault surface: compute (straggler),
// internode p2p (link degrade/stall), and collectives.
func chaosProgram(t *testing.T) Program {
	return func(tk *Task) {
		buf := tk.Malloc(4096)
		out := tk.Malloc(4096)
		tk.Busy(200 * 1000) // 200us of host compute per step
		b := tk.Bytes(buf, 4096)
		for i := range b {
			b[i] = byte(i + tk.Rank())
		}
		peer := tk.Rank() ^ 1
		tk.Sendrecv(buf, 4096, mpi.Byte, peer, 1, out, 4096, mpi.Byte, peer, 1)
		ob := tk.Bytes(out, 4096)
		for i := range ob {
			if ob[i] != byte(i+peer) {
				t.Errorf("rank %d: chaos corrupted payload at %d", tk.Rank(), i)
				break
			}
		}
		tk.Allreduce(buf, out, 16, mpi.Float64, mpi.Sum)
	}
}

// TestChaosRunDeterministic: the same seed and fault spec produce a
// byte-identical run — same virtual elapsed time, same telemetry snapshot —
// every time, and the plan genuinely injects faults (the injected counter
// ticks and the run is slower than a healthy one).
func TestChaosRunDeterministic(t *testing.T) {
	spec, err := fault.ParseSpec("7:degrade=*:4,stall=0:0.5:200us,straggle=1:1.8,flap=0:3ms:300us")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{System: topo.Titan(2), Mode: IMPACC, Backed: true, JitterPct: 1, Seed: 2016}
	healthy := mustRun(t, cfg, chaosProgram(t))

	cfg.Chaos = spec
	run := func() (elapsed int64, snap []byte) {
		rep := mustRun(t, cfg, chaosProgram(t))
		var buf bytes.Buffer
		if err := rep.Metrics.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return int64(rep.Elapsed), buf.Bytes()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 {
		t.Fatalf("chaos runs diverged: %d vs %d ns", e1, e2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("chaos runs produced different telemetry snapshots")
	}
	if e1 <= int64(healthy.Elapsed) {
		t.Fatalf("chaos run (%d ns) not slower than healthy (%d ns)", e1, int64(healthy.Elapsed))
	}
	if !strings.Contains(string(s1), fault.InjectedTotal) {
		t.Fatalf("snapshot records no %s counter", fault.InjectedTotal)
	}
	if strings.Contains(string(healthy.metricsJSON(t)), fault.InjectedTotal) {
		t.Fatal("healthy run leaked chaos counter families into its snapshot")
	}
}

// metricsJSON renders a report's telemetry snapshot for comparisons.
func (r *Report) metricsJSON(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
