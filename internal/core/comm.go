package core

import (
	"hash/fnv"
	"sort"

	"impacc/internal/sim"

	"impacc/internal/mpi"
	"impacc/internal/xmem"
)

// Comm is an MPI communicator: an ordered group of tasks with an isolated
// matching context. Point-to-point and collective operations exist on both
// Task (MPI_COMM_WORLD shorthand) and Comm.
type Comm struct {
	t *Task
	// id is the context id carried by every message of this communicator;
	// matching never crosses ids. World is 0.
	id int
	// ranks maps communicator rank -> world rank.
	ranks []int
	// myRank is this task's rank within the communicator.
	myRank int

	collSeq  int
	splitSeq int
}

// World returns the task's MPI_COMM_WORLD view.
func (t *Task) World() *Comm { return t.world }

// Rank returns the calling task's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of tasks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator rank to the world rank.
func (c *Comm) WorldRank(r int) int { return c.ranks[r] }

// ID returns the communicator's context id.
func (c *Comm) ID() int { return c.id }

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= len(c.ranks) {
		c.t.failf("comm %d: rank %d out of range [0,%d)", c.id, r, len(c.ranks))
	}
}

// newWorld builds the world communicator for a task.
func (rt *Runtime) newWorld(t *Task) *Comm {
	ranks := make([]int, len(rt.placements))
	for i := range ranks {
		ranks[i] = i
	}
	return &Comm{t: t, id: 0, ranks: ranks, myRank: t.rank}
}

// Split is MPI_Comm_split: tasks supplying the same color form a new
// communicator, ordered by (key, parent rank). Every member of the parent
// must call Split in the same order. Color < 0 (MPI_UNDEFINED) returns nil.
func (c *Comm) Split(color, key int) *Comm {
	t := c.t
	c.splitSeq++
	n := c.Size()
	// Deposit this member's (color, key) with the runtime; the group
	// metadata travels out of band (it is control information, not
	// simulated application data, so it also works on unbacked runs).
	t.rt.depositSplit(c.id, c.splitSeq, c.myRank, color, key)
	// The (color, key) exchange still costs a real allgather on the wire.
	mine := t.tempAlloc(16)
	all := t.tempAlloc(int64(16 * n))
	defer t.tempFree(mine)
	defer t.tempFree(all)
	c.Allgather(mine, 2, mpi.Int64, all)
	pairs := t.rt.lookupSplit(c.id, c.splitSeq)
	if color < 0 {
		return nil
	}
	type member struct{ key, commRank int }
	var members []member
	for r := 0; r < n; r++ {
		p, ok := pairs[r]
		if !ok {
			t.failf("comm %d split %d: member %d never called Split", c.id, c.splitSeq, r)
		}
		if p[0] == color {
			members = append(members, member{p[1], r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].commRank < members[j].commRank
	})
	nc := &Comm{t: t, id: commID(c.id, c.splitSeq, color)}
	for i, m := range members {
		nc.ranks = append(nc.ranks, c.ranks[m.commRank])
		if m.commRank == c.myRank {
			nc.myRank = i
		}
	}
	return nc
}

// Dup is MPI_Comm_dup: same group, fresh matching context.
func (c *Comm) Dup() *Comm {
	c.splitSeq++
	nc := &Comm{t: c.t, id: commID(c.id, c.splitSeq, -1), myRank: c.myRank}
	nc.ranks = append(nc.ranks, c.ranks...)
	return nc
}

// commID derives a deterministic context id shared by all members that
// compute it with the same inputs.
func commID(parent, seq, color int) int {
	h := fnv.New32a()
	var b [12]byte
	put := func(off, v int) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	put(0, parent)
	put(4, seq)
	put(8, color)
	h.Write(b[:])
	id := int(h.Sum32() & 0x7fffffff)
	if id == 0 {
		id = 1
	}
	return id
}

// ---- Communicator-scoped point-to-point ---------------------------------

// Send is MPI_Send on this communicator (dst is a communicator rank).
func (c *Comm) Send(addr xmem.Addr, count int, dt mpi.Datatype, dst, tag int, opts ...Opt) {
	c.checkRank(dst)
	c.t.sendOn(c, addr, count, dt, dst, tag, opts)
}

// Recv is MPI_Recv on this communicator.
func (c *Comm) Recv(addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts ...Opt) {
	if src != AnySource {
		c.checkRank(src)
	}
	c.t.recvOn(c, addr, count, dt, src, tag, opts)
}

// Isend is MPI_Isend on this communicator.
func (c *Comm) Isend(addr xmem.Addr, count int, dt mpi.Datatype, dst, tag int, opts ...Opt) *Request {
	c.checkRank(dst)
	return c.t.isendOn(c, addr, count, dt, dst, tag, opts)
}

// Irecv is MPI_Irecv on this communicator.
func (c *Comm) Irecv(addr xmem.Addr, count int, dt mpi.Datatype, src, tag int, opts ...Opt) *Request {
	if src != AnySource {
		c.checkRank(src)
	}
	return c.t.irecvOn(c, addr, count, dt, src, tag, opts)
}

// Sendrecv is MPI_Sendrecv on this communicator.
func (c *Comm) Sendrecv(sendAddr xmem.Addr, sendCount int, sdt mpi.Datatype, dst, sendTag int,
	recvAddr xmem.Addr, recvCount int, rdt mpi.Datatype, src, recvTag int, opts ...Opt) {
	sr := c.Isend(sendAddr, sendCount, sdt, dst, sendTag, opts...)
	rr := c.Irecv(recvAddr, recvCount, rdt, src, recvTag, opts...)
	c.t.Wait(sr, rr)
}

// Iprobe is MPI_Iprobe on this communicator: a non-blocking check for a
// matching message, returning its element count in dt units when present.
func (c *Comm) Iprobe(src, tag int, dt mpi.Datatype) (bool, int) {
	t := c.t
	wsrc := src
	if src != AnySource {
		c.checkRank(src)
		wsrc = c.ranks[src]
	}
	ok, bytes := t.node.hub.Probe(t.rank, wsrc, tag, c.id)
	return ok, int(bytes / dt.Size())
}

// Probe is MPI_Probe: block until a matching message is available,
// returning its element count. It polls the hub with exponential backoff;
// since a poll loop would keep the event queue alive forever, a probe that
// sees nothing for 60 virtual seconds aborts the task as a likely deadlock
// (real MPI would hang here).
func (c *Comm) Probe(src, tag int, dt mpi.Datatype) int {
	t := c.t
	start := t.proc.Now()
	backoff := sim.Dur(200)
	for {
		if ok, n := c.Iprobe(src, tag, dt); ok {
			t.commTime += dur(t.proc.Now() - start)
			t.mpiObserve("probe", start)
			return n
		}
		if t.proc.Now()-start > sim.Time(60*sim.Second) {
			t.failf("Probe(src=%d, tag=%d): no matching message after 60s (deadlock?)", src, tag)
		}
		t.proc.Sleep(backoff)
		if backoff < sim.Millisecond {
			backoff *= 2
		}
	}
}
