package core

import (
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"impacc/internal/mpi"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
)

// longProg keeps every task busy for iters rounds of compute + allreduce, so
// a run lasts long enough (in virtual time and event count) to cancel or cap
// mid-flight.
func longProg(iters int) Program {
	return func(tk *Task) {
		buf := tk.Malloc(8)
		defer tk.Free(buf)
		v := tk.Floats(buf, 1)
		for i := 0; i < iters; i++ {
			v[0] = float64(tk.Rank() + i)
			tk.Busy(10 * sim.Microsecond)
			tk.Allreduce(buf, buf, 1, mpi.Float64, mpi.Sum)
		}
	}
}

// waitGoroutines lets unwound sim goroutines finish exiting before counting.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestRuntimeCancelMidRun: a cancel arriving mid-run surfaces as
// *sim.CancelError, parks no goroutines, and merges nothing into a shared
// registry — the contract impacc-serve's job killer depends on.
func TestRuntimeCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	shared := telemetry.NewRegistry()
	cfg := Config{System: topo.Beacon(2), Backed: true, Metrics: shared}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic cancel instant: half a millisecond of virtual time in.
	rt.Eng.At(sim.Time(500*sim.Microsecond), rt.Cancel)
	_, err = rt.Execute(longProg(1000))
	var ce *sim.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Execute = %v, want *sim.CancelError", err)
	}
	if snap := shared.Snapshot(0); len(snap.Families) != 0 {
		t.Fatalf("cancelled run merged %d metric families into the shared registry", len(snap.Families))
	}
	waitGoroutines(t, baseline)
}

// TestCancelledRunResubmitsFresh: a run cancelled once leaves no residue —
// the same config re-run to completion produces the same report as a config
// that was never cancelled.
func TestCancelledRunResubmitsFresh(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4}
	render := func() []byte {
		rep := mustRun(t, cfg, longProg(20))
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	want := render()
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Eng.At(sim.Time(100*sim.Microsecond), rt.Cancel)
	if _, err := rt.Execute(longProg(20)); err == nil {
		t.Fatal("expected cancel error")
	}
	if got := render(); string(got) != string(want) {
		t.Fatal("re-run after a cancelled run diverged from the baseline report")
	}
}

// TestRuntimeCancelFromWallClock: Cancel is safe from a foreign goroutine at
// an arbitrary wall-clock instant (exercised under -race in CI). The result
// is either a CancelError or — if the run won the race — a clean report; both
// are valid, and either way no goroutines may leak.
func TestRuntimeCancelFromWallClock(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(2 * time.Millisecond)
		rt.Cancel()
	}()
	_, err = rt.Execute(longProg(5000))
	<-done
	var ce *sim.CancelError
	if err != nil && !errors.As(err, &ce) {
		t.Fatalf("Execute = %v, want nil or *sim.CancelError", err)
	}
	waitGoroutines(t, baseline)
}

func TestLimitsMaxEvents(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4}
	cfg.Limits.MaxEvents = 2000
	_, err := Run(cfg, longProg(1000))
	var le *sim.LimitError
	if !errors.As(err, &le) || le.Resource != "events" {
		t.Fatalf("Run = %v, want *sim.LimitError{events}", err)
	}
}

func TestLimitsMaxVirtualTime(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4}
	cfg.Limits.MaxVirtualTime = 200 * sim.Microsecond
	_, err := Run(cfg, longProg(1000))
	var le *sim.LimitError
	if !errors.As(err, &le) || le.Resource != "vtime" {
		t.Fatalf("Run = %v, want *sim.LimitError{vtime}", err)
	}
}

func TestLimitsMaxAllocBytes(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 1}
	cfg.Limits.MaxAllocBytes = 1 << 10
	_, err := Run(cfg, func(tk *Task) {
		tk.Malloc(512)
		tk.Malloc(1024) // 512 + 1024 > 1 KiB cap
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("Run = %v, want *RunError", err)
	}
	if !strings.Contains(re.Error(), "heap limit") {
		t.Fatalf("error %q does not name the heap limit", re.Error())
	}
}

// TestLimitsDeterministic: hitting a cap is itself deterministic — the same
// config stops at the same virtual instant both times.
func TestLimitsDeterministic(t *testing.T) {
	cfg := Config{System: topo.Beacon(2), Backed: true, MaxTasks: 4}
	cfg.Limits.MaxEvents = 2000
	halt := func() string {
		_, err := Run(cfg, longProg(1000))
		if err == nil {
			t.Fatal("expected limit error")
		}
		return err.Error()
	}
	if a, b := halt(), halt(); a != b {
		t.Fatalf("limit halt not deterministic:\n %s\n %s", a, b)
	}
}
