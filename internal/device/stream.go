package device

import (
	"fmt"
	"strconv"

	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/xmem"
)

// Stream is an in-order device activity queue (an OpenACC async queue / CUDA
// stream / OpenCL command queue, paper §3.6). Operations enqueued on one
// stream complete in order; operations on different streams proceed
// independently and complete in any order.
type Stream struct {
	ID  int
	Ctx *Context

	q          *sim.Queue
	proc       *sim.Proc
	closed     bool
	lastDone   *sim.Event
	pending    int
	kernelHist *telemetry.Histogram
	// tail is the trace ID of the last traced operation enqueued, the
	// source of the next in-order "stream" edge (0 = none yet).
	tail uint64
}

// streamOp is one queue entry.
type streamOp struct {
	name     string
	run      func(p *sim.Proc) // nil for poison (close)
	done     *sim.Event
	callback func(at sim.Time)
}

// NewStream creates an activity queue on the context's device and starts
// its simulation process. Streams must be Closed when the owning task
// finishes, or the engine reports them as deadlocked processes.
func (c *Context) NewStream(id int) *Stream {
	eng := c.Dev.rt.Eng
	s := &Stream{ID: id, Ctx: c, q: eng.NewQueue(fmt.Sprintf("stream%d", id))}
	if reg := eng.Metrics; reg != nil {
		s.kernelHist = reg.Histogram(KernelDurationNs, "kernel durations by activity queue",
			"node", c.Dev.rt.Spec.Name, "dev", strconv.Itoa(c.Dev.Index), "stream", strconv.Itoa(id))
	}
	done := eng.NewEvent("stream-init")
	done.Fire()
	s.lastDone = done
	s.proc = eng.Spawn(fmt.Sprintf("%s/dev%d/q%d", c.Dev.rt.Spec.Name, c.Dev.Index, id), s.loop)
	c.Dev.streams = append(c.Dev.streams, s)
	return s
}

func (s *Stream) loop(p *sim.Proc) {
	for {
		op := s.q.Get(p).(*streamOp)
		if op.run == nil {
			op.done.Fire()
			return
		}
		op.run(p)
		s.pending--
		op.done.Fire()
		if op.callback != nil {
			op.callback(p.Now())
		}
	}
}

// enqueue adds an operation and returns its completion event.
func (s *Stream) enqueue(name string, run func(p *sim.Proc), cb func(at sim.Time)) *sim.Event {
	if s.closed {
		panic("device: enqueue on closed stream")
	}
	done := s.Ctx.Dev.rt.Eng.NewEvent("op:" + name)
	s.q.Put(&streamOp{name: name, run: run, done: done, callback: cb})
	s.lastDone = done
	s.pending++
	return done
}

// chainID allocates a trace ID for the operation being enqueued and records
// the in-order dependency edge from the stream's previous traced operation.
// Returns 0 when tracing is off.
func (s *Stream) chainID() uint64 {
	sink := s.Ctx.Sink
	if sink == nil {
		return 0
	}
	id := sink.NewID()
	if s.tail != 0 {
		sink.Edge("stream", s.tail, id, s.Ctx.Dev.rt.Eng.Now())
	}
	s.tail = id
	return id
}

// EnqueueCopy schedules an asynchronous memory copy (cuMemcpyAsync /
// clEnqueue{Read,Write}Buffer with CL_NON_BLOCKING) and returns its
// completion event.
func (s *Stream) EnqueueCopy(dst, src xmem.Addr, n int64) *sim.Event {
	id := s.chainID()
	return s.enqueue("copy", func(p *sim.Proc) {
		if _, err := s.Ctx.transferLane(p, s.ID, id, dst, src, n); err != nil {
			panic(fmt.Sprintf("stream copy: %v", err))
		}
	}, nil)
}

// EnqueueCopyWithCallback is EnqueueCopy plus a completion callback, the
// cuStreamAddCallback pattern the runtime uses for fully asynchronous
// internode sends (paper §3.7).
func (s *Stream) EnqueueCopyWithCallback(dst, src xmem.Addr, n int64, cb func(at sim.Time)) *sim.Event {
	id := s.chainID()
	return s.enqueue("copy+cb", func(p *sim.Proc) {
		if _, err := s.Ctx.transferLane(p, s.ID, id, dst, src, n); err != nil {
			panic(fmt.Sprintf("stream copy: %v", err))
		}
	}, cb)
}

// EnqueueKernel schedules a kernel launch. The device compute resource
// serializes kernels from all streams of the device; the kernel's Body (if
// any) executes at completion so data results are real.
func (s *Stream) EnqueueKernel(k KernelSpec) *sim.Event {
	id := s.chainID()
	return s.enqueue("kernel:"+k.Name, func(p *sim.Proc) {
		dur := Duration(s.Ctx.Dev.Spec, k)
		start := s.Ctx.Dev.compute.Use(p, dur, 0)
		if k.Body != nil {
			k.Body()
		}
		s.Ctx.Stats.KernelCount++
		s.Ctx.Stats.KernelTime += dur
		if s.kernelHist != nil {
			s.kernelHist.Observe(int64(dur))
		}
		if sink := s.Ctx.Sink; sink != nil && id != 0 {
			sink.Span(id, s.ID, "kernel", k.Name, start, start+sim.Time(dur), 0)
		}
	}, nil)
}

// EnqueueFunc schedules an arbitrary operation on the stream. The IMPACC
// unified activity queue (paper §3.6) uses this to place MPI non-blocking
// communication calls in the same in-order queue as kernels and copies.
func (s *Stream) EnqueueFunc(name string, fn func(p *sim.Proc)) *sim.Event {
	return s.enqueue(name, fn, nil)
}

// AddCallback schedules fn to run after all currently enqueued work
// (cuStreamAddCallback semantics).
func (s *Stream) AddCallback(fn func(at sim.Time)) {
	s.enqueue("callback", func(p *sim.Proc) {}, fn)
}

// Sync blocks p until every operation enqueued so far has completed
// (#pragma acc wait on this queue).
func (s *Stream) Sync(p *sim.Proc) {
	s.lastDone.Wait(p)
}

// Pending reports the number of queued-but-unfinished operations.
func (s *Stream) Pending() int { return s.pending }

// Close shuts the stream process down after draining queued work. Safe to
// call twice.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	done := s.Ctx.Dev.rt.Eng.NewEvent("stream-close")
	s.q.Put(&streamOp{done: done})
}

// CloseAll closes every stream created on the runtime's devices.
func (rt *Runtime) CloseAll() {
	for _, d := range rt.Devices {
		for _, s := range d.streams {
			s.Close()
		}
	}
}

// EnqueueWaitEvent makes this stream wait for ev before running later
// operations (cuStreamWaitEvent / clEnqueueBarrierWithWaitList): the
// cross-stream dependency primitive behind "#pragma acc wait(q) async(r)".
func (s *Stream) EnqueueWaitEvent(ev *sim.Event) *sim.Event {
	return s.enqueue("wait-event", func(p *sim.Proc) {
		ev.Wait(p)
	}, nil)
}

// EnqueueWaitStream is EnqueueWaitEvent on src's current tail (cuEventRecord
// on src, cuStreamWaitEvent here), recording the cross-stream "event" edge
// and an accwait span over the actual wait interval for the causal trace.
func (s *Stream) EnqueueWaitStream(src *Stream) *sim.Event {
	ev := src.Done()
	sink := s.Ctx.Sink
	id := s.chainID()
	if sink != nil && id != 0 && src.tail != 0 {
		sink.Edge("event", src.tail, id, s.Ctx.Dev.rt.Eng.Now())
	}
	return s.enqueue("wait-event", func(p *sim.Proc) {
		start := p.Now()
		ev.Wait(p)
		if sink != nil && id != 0 {
			sink.Span(id, s.ID, "accwait", "qwait", start, p.Now(), 0)
		}
		//impacc:allow-spanbalance no span exists to balance when tracing is off (sink == nil / id == 0); with tracing on, the record above is unconditional
	}, nil)
}

// Done returns the completion event of the last operation enqueued so far
// (cuEventRecord at the current tail).
func (s *Stream) Done() *sim.Event { return s.lastDone }
