// Package device is the simulated accelerator runtime — the stand-in for
// the CUDA Driver API and OpenCL runtime the paper's IMPACC runtime is
// built on (§3.1, §3.7). It provides per-node device objects, device memory
// allocation inside the unified node virtual address space, synchronous and
// asynchronous memory copies priced by the topology fabric, in-order
// activity queues (streams) with events and host callbacks
// (cuStreamAddCallback / clSetEventCallback equivalents), and kernel
// launches with gang/worker/vector geometry over an analytic cost model.
//
// Device "memory" is real host RAM behind the unified address space, so
// kernels can execute genuine computations; at extreme scale, allocations
// may be unbacked and kernels cost-only — the control path is identical.
package device

import (
	"fmt"
	"strconv"

	"impacc/internal/sim"
	"impacc/internal/telemetry"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// Telemetry family names.
const (
	// KernelDurationNs is a histogram of kernel durations, labeled by
	// node, dev, and stream (Figure 11's kernel column, per queue).
	KernelDurationNs = "device_kernel_duration_ns"
	// CopyBytes is a histogram of copy sizes, labeled by node, dev, and
	// dir (HtoH/HtoD/DtoH/DtoD — Figure 14's copy categories).
	CopyBytes = "device_copy_bytes"
)

// API distinguishes the CUDA-style driver from the OpenCL-style runtime.
// The distinction shows up in the present table entry layout (Figure 3) and
// in launch overheads.
type API int

const (
	// CUDA-style: device pointers are raw addresses (CUdeviceptr).
	CUDA API = iota
	// OpenCL-style: memory objects are handles; the runtime reserves a
	// host virtual range per buffer for the mapped address (paper §3.4).
	OpenCL
)

func (a API) String() string {
	if a == CUDA {
		return "cuda"
	}
	return "opencl"
}

// APIFor returns the accelerator API the IMPACC runtime would drive the
// device class with: CUDA for NVIDIA GPUs, OpenCL for everything else
// (paper §3.1: kernels are generated in CUDA C and OpenCL C).
func APIFor(c topo.DeviceClass) API {
	if c == topo.NVIDIAGPU {
		return CUDA
	}
	return OpenCL
}

// Runtime is the per-node device runtime: one per simulated node.
type Runtime struct {
	Eng     *sim.Engine
	Fab     *topo.Fabric
	NodeIdx int
	Spec    *topo.NodeSpec
	Devices []*Device
	// Faults, when set, injects transient device-copy failures that the
	// transfer path absorbs by re-charging the copy (a driver-level retry).
	// The internal/fault package's Plan satisfies it.
	Faults CopyFaults
}

// CopyFaults is the slice of a chaos plan the device runtime consults.
type CopyFaults interface {
	// CopyFail reports whether the next copy attempt on node fails
	// transiently (one deterministic draw per call); at is the virtual
	// time of the attempt, recorded with the injection.
	CopyFail(node int, at sim.Time) bool
	// CopyRetries bounds re-attempts before a copy error surfaces.
	CopyRetries() int
}

// NewRuntime builds device objects for every accelerator of node nodeIdx.
func NewRuntime(eng *sim.Engine, fab *topo.Fabric, nodeIdx int) *Runtime {
	spec := &fab.Sys.Nodes[nodeIdx]
	rt := &Runtime{Eng: eng, Fab: fab, NodeIdx: nodeIdx, Spec: spec}
	for i := range spec.Devices {
		d := &Device{
			rt:      rt,
			Index:   i,
			Spec:    &spec.Devices[i],
			API:     APIFor(spec.Devices[i].Class),
			compute: eng.NewFIFOResource(fmt.Sprintf("%s/dev%d", spec.Name, i)),
		}
		rt.Devices = append(rt.Devices, d)
	}
	return rt
}

// Device is one accelerator.
type Device struct {
	rt      *Runtime
	Index   int
	Spec    *topo.DeviceSpec
	API     API
	compute *sim.FIFOResource

	nextHandle uint64
	streams    []*Stream
}

// NewHandle mints an OpenCL-style memory-object handle.
func (d *Device) NewHandle() uint64 {
	d.nextHandle++
	return d.nextHandle
}

// ComputeBusy reports accumulated kernel-busy time on the device.
func (d *Device) ComputeBusy() sim.Dur { return d.compute.BusyTime }

// KernelKind selects which hardware bound prices a kernel.
type KernelKind int

const (
	// KindMixed takes the max of the compute and memory bounds.
	KindMixed KernelKind = iota
	// KindCompute is flop-bound (e.g. DGEMM, EP).
	KindCompute
	// KindMemory is bandwidth-bound (e.g. Jacobi stencils).
	KindMemory
)

// KernelSpec describes one compute-region launch (an OpenACC parallel or
// kernels region lowered by the compiler).
type KernelSpec struct {
	Name  string
	FLOPs float64 // double-precision operations performed
	Bytes float64 // device memory traffic generated
	Kind  KernelKind
	// Gangs/Workers/Vector record the OpenACC launch geometry (§2.3).
	// They do not change the cost model but are validated and reported.
	Gangs, Workers, Vector int
	// Body, when non-nil, is executed for real at kernel completion so
	// applications produce genuine numerical results.
	Body func()
}

// Duration prices the kernel on device spec d.
func Duration(d *topo.DeviceSpec, k KernelSpec) sim.Dur {
	flopRate := d.GFlopsDP * d.GemmEff * 1e9
	memRate := d.MemBWGBs * d.StencilEff * 1e9
	var secs float64
	switch k.Kind {
	case KindCompute:
		secs = k.FLOPs / flopRate
	case KindMemory:
		secs = k.Bytes / memRate
	default:
		cf := k.FLOPs / flopRate
		cm := k.Bytes / memRate
		if cf > cm {
			secs = cf
		} else {
			secs = cm
		}
	}
	return sim.DurFromSeconds(secs)
}

// Stats accumulates per-context transfer and kernel accounting, feeding the
// breakdown figures (Figure 11, Figure 14).
type Stats struct {
	HtoDCount, DtoHCount, DtoDCount, HtoHCount int64
	HtoDBytes, DtoHBytes, DtoDBytes, HtoHBytes int64
	HtoDTime, DtoHTime, DtoDTime, HtoHTime     sim.Dur
	KernelCount                                int64
	KernelTime                                 sim.Dur
}

// Add accumulates other into s.
func (s *Stats) Add(o *Stats) {
	s.HtoDCount += o.HtoDCount
	s.DtoHCount += o.DtoHCount
	s.DtoDCount += o.DtoDCount
	s.HtoHCount += o.HtoHCount
	s.HtoDBytes += o.HtoDBytes
	s.DtoHBytes += o.DtoHBytes
	s.DtoDBytes += o.DtoDBytes
	s.HtoHBytes += o.HtoHBytes
	s.HtoDTime += o.HtoDTime
	s.DtoHTime += o.DtoHTime
	s.DtoDTime += o.DtoDTime
	s.HtoHTime += o.HtoHTime
	s.KernelCount += o.KernelCount
	s.KernelTime += o.KernelTime
}

// CopyCount is the total number of copy operations.
func (s *Stats) CopyCount() int64 {
	return s.HtoDCount + s.DtoHCount + s.DtoDCount + s.HtoHCount
}

// TraceSink receives the context's execution trace: spans for every kernel
// and copy (stream operations carry the activity-queue lane, synchronous
// transfers the host lane) and the ordering edges between stream
// operations. Implemented by the core tracer; nil when tracing is off.
// Span IDs are pre-allocated with NewID at enqueue time so dependency
// edges can reference operations that have not completed yet.
type TraceSink interface {
	NewID() uint64
	Span(id uint64, stream int, kind, name string, start, end sim.Time, bytes int64)
	Edge(kind string, from, to uint64, at sim.Time)
}

// Context is a task's view of one device: it binds the device to the task's
// address space and pinned CPU socket (which determines NUMA transfer
// penalties). It corresponds to a CUDA context / OpenCL command-queue
// owner.
type Context struct {
	Dev    *Device
	Space  *xmem.Space
	Socket int // pinned CPU socket; -1 if unpinned (OS placement)
	Stats  Stats
	Backed bool // whether allocations carry real storage
	// Sink, when non-nil, receives the context's causal execution trace.
	Sink TraceSink
	// Pinned marks the context's host buffers as page-locked. The IMPACC
	// runtime pre-pins its buffers (paper §3.7); legacy application
	// buffers are pageable and transfer slower.
	Pinned bool

	unpinnedFlip bool
	// copyBytes holds the per-direction copy-size histograms, indexed by
	// Direction. Contexts on the same device share the series.
	copyBytes [4]*telemetry.Histogram
}

// NewContext binds device dev to an address space and pin socket.
func (rt *Runtime) NewContext(dev int, space *xmem.Space, socket int, backed, pinned bool) *Context {
	c := &Context{Dev: rt.Devices[dev], Space: space, Socket: socket, Backed: backed, Pinned: pinned}
	if reg := rt.Eng.Metrics; reg != nil {
		node, di := rt.Spec.Name, strconv.Itoa(dev)
		for _, dir := range []Direction{HtoH, HtoD, DtoH, DtoD} {
			c.copyBytes[dir] = reg.Histogram(CopyBytes, "memory copy sizes by direction",
				"node", node, "dev", di, "dir", dir.String())
		}
	}
	return c
}

// effSocket resolves the socket a transfer is initiated from. Unpinned
// contexts model OS placement by alternating near and far sockets, giving
// the averaged NUMA penalty an unpinned thread observes.
func (c *Context) effSocket() int {
	if c.Socket >= 0 {
		return c.Socket
	}
	if len(c.Dev.rt.Spec.Sockets) < 2 {
		return 0
	}
	c.unpinnedFlip = !c.unpinnedFlip
	if c.unpinnedFlip {
		far := c.Dev.Spec.Socket + 1
		if far >= len(c.Dev.rt.Spec.Sockets) {
			far = 0
		}
		return far
	}
	return c.Dev.Spec.Socket
}

// MemAlloc allocates device memory (cuMemAlloc / clCreateBuffer) and maps
// it into the context's address space.
func (c *Context) MemAlloc(size int64) (xmem.Addr, error) {
	if c.Dev.Spec.Class.Integrated() {
		// Integrated accelerators share host memory (paper §2.4): the
		// "device allocation" is host memory.
		return c.Space.AllocHost(size, c.Backed)
	}
	used := c.Space.DeviceUsed(c.Dev.Index)
	if used+size > c.Dev.Spec.MemoryBytes {
		return xmem.Nil, fmt.Errorf("device %s: out of memory (%d used + %d requested > %d)",
			c.Dev.Spec.Name, used, size, c.Dev.Spec.MemoryBytes)
	}
	return c.Space.AllocDevice(c.Dev.Index, size, c.Backed)
}

// MemFree releases device memory.
func (c *Context) MemFree(addr xmem.Addr) error { return c.Space.Free(addr) }
