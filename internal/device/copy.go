package device

import (
	"fmt"

	"impacc/internal/sim"
	"impacc/internal/xmem"
)

// Direction classifies a memory copy by endpoint locations, the four cases
// of the paper's message fusion discussion (§3.7): HtoH, HtoD, DtoH, DtoD.
type Direction int

// Copy directions.
const (
	HtoH Direction = iota
	HtoD
	DtoH
	DtoD
)

func (d Direction) String() string {
	switch d {
	case HtoH:
		return "HtoH"
	case HtoD:
		return "HtoD"
	case DtoH:
		return "DtoH"
	default:
		return "DtoD"
	}
}

// Classify determines the copy direction from two resolved locations.
func Classify(dst, src xmem.Loc) Direction {
	switch {
	case src.Kind() == xmem.HostMem && dst.Kind() == xmem.HostMem:
		return HtoH
	case src.Kind() == xmem.HostMem:
		return HtoD
	case dst.Kind() == xmem.HostMem:
		return DtoH
	default:
		return DtoD
	}
}

// Record accumulates one finished copy into the context stats. It is
// exported for the message hub, which performs fused copies on behalf of
// tasks and attributes them to the receiving context.
func (c *Context) Record(dir Direction, n int64, elapsed sim.Dur) { c.record(dir, n, elapsed) }

// record accumulates one finished copy into the context stats.
func (c *Context) record(dir Direction, n int64, elapsed sim.Dur) {
	if h := c.copyBytes[dir]; h != nil {
		h.Observe(n)
	}
	switch dir {
	case HtoH:
		c.Stats.HtoHCount++
		c.Stats.HtoHBytes += n
		c.Stats.HtoHTime += elapsed
	case HtoD:
		c.Stats.HtoDCount++
		c.Stats.HtoDBytes += n
		c.Stats.HtoDTime += elapsed
	case DtoH:
		c.Stats.DtoHCount++
		c.Stats.DtoHBytes += n
		c.Stats.DtoHTime += elapsed
	case DtoD:
		c.Stats.DtoDCount++
		c.Stats.DtoDBytes += n
		c.Stats.DtoDTime += elapsed
	}
}

// Transfer performs a synchronous memory copy of n bytes from src to dst
// within the context's address space: it charges simulated time on the
// shared links (blocking p), moves the real bytes, and records stats. It
// returns the direction it classified.
//
// Device-to-device copies between distinct devices use the direct PCIe
// peer path when the topology allows it, otherwise they stage through host
// memory (DtoH then HtoD), exactly the distinction Figure 14 measures.
func (c *Context) Transfer(p *sim.Proc, dst, src xmem.Addr, n int64) (Direction, error) {
	return c.transferLane(p, -1, 0, dst, src, n)
}

// transferLane is Transfer attributed to a trace lane: stream copies pass
// their queue number and pre-allocated trace ID; synchronous copies run on
// the host lane (-1) and allocate an ID on demand.
func (c *Context) transferLane(p *sim.Proc, lane int, id uint64, dst, src xmem.Addr, n int64) (Direction, error) {
	if n < 0 {
		return HtoH, fmt.Errorf("device: Transfer: negative size %d", n)
	}
	dloc, err := c.Space.Lookup(dst)
	if err != nil {
		return HtoH, fmt.Errorf("device: Transfer dst: %w", err)
	}
	sloc, err := c.Space.Lookup(src)
	if err != nil {
		return HtoH, fmt.Errorf("device: Transfer src: %w", err)
	}
	dir := Classify(dloc, sloc)
	start := p.Now()
	rt := c.Dev.rt
	charge := func() {
		switch dir {
		case HtoH:
			rt.Fab.HostCopy(p, rt.NodeIdx, n)
		case HtoD:
			rt.Fab.PCIeCopy(p, rt.NodeIdx, dloc.Device(), c.effSocket(), n, c.Pinned)
		case DtoH:
			rt.Fab.PCIeCopy(p, rt.NodeIdx, sloc.Device(), c.effSocket(), n, c.Pinned)
		case DtoD:
			if sloc.Device() == dloc.Device() {
				// On-device DMA at device memory bandwidth (read + write).
				p.Sleep(sim.DurFromSeconds(2 * float64(n) / (c.Dev.Spec.MemBWGBs * 1e9)))
			} else if rt.Fab.CanP2P(rt.NodeIdx, sloc.Device(), dloc.Device()) {
				p.SleepUntil(rt.Fab.P2PCopyAsync(rt.NodeIdx, sloc.Device(), dloc.Device(), n))
			} else {
				// Staged: device -> host bounce buffer -> device.
				rt.Fab.PCIeCopy(p, rt.NodeIdx, sloc.Device(), c.effSocket(), n, c.Pinned)
				rt.Fab.PCIeCopy(p, rt.NodeIdx, dloc.Device(), c.effSocket(), n, c.Pinned)
			}
		}
	}
	charge()
	var copyErr error
	if ft := rt.Faults; ft != nil {
		// Transient copy failures: each failed attempt still spent its
		// fabric time, and the driver re-drives the transfer until it lands
		// or the retry budget runs out.
		for attempt := 1; ft.CopyFail(rt.NodeIdx, rt.Eng.Now()); attempt++ {
			if attempt > ft.CopyRetries() {
				copyErr = fmt.Errorf("device: Transfer %s: copy failed after %d attempts", dir, attempt)
				break
			}
			charge()
		}
	}
	if copyErr == nil {
		copyErr = c.Space.Copy(dst, src, n)
	}
	// The fabric time above is spent whether or not the backing copy
	// succeeds, so the transfer is accounted and its span recorded before
	// any error propagates — otherwise a failing path would leak traced
	// time and break the profile's telescoping exactness.
	c.record(dir, n, sim.Dur(p.Now()-start))
	if c.Sink != nil {
		if id == 0 {
			id = c.Sink.NewID()
		}
		c.Sink.Span(id, lane, "copy", dir.String(), start, p.Now(), n)
	}
	return dir, copyErr
}

// TransferBetween copies across two address spaces on the same node (the
// legacy-mode inter-process path). Timing is identical to Transfer on the
// destination context; data moves between the two backings.
func TransferBetween(p *sim.Proc, dst *Context, dstAddr xmem.Addr, src *Context, srcAddr xmem.Addr, n int64) (Direction, error) {
	dloc, err := dst.Space.Lookup(dstAddr)
	if err != nil {
		return HtoH, fmt.Errorf("device: TransferBetween dst: %w", err)
	}
	sloc, err := src.Space.Lookup(srcAddr)
	if err != nil {
		return HtoH, fmt.Errorf("device: TransferBetween src: %w", err)
	}
	dir := Classify(dloc, sloc)
	start := p.Now()
	rt := dst.Dev.rt
	switch dir {
	case HtoH:
		rt.Fab.HostCopy(p, rt.NodeIdx, n)
	case HtoD:
		rt.Fab.PCIeCopy(p, rt.NodeIdx, dloc.Device(), dst.effSocket(), n, dst.Pinned)
	case DtoH:
		rt.Fab.PCIeCopy(p, rt.NodeIdx, sloc.Device(), src.effSocket(), n, src.Pinned)
	case DtoD:
		// Legacy processes cannot see each other's device pointers: the
		// path is always staged through both hosts.
		rt.Fab.PCIeCopy(p, rt.NodeIdx, sloc.Device(), src.effSocket(), n, src.Pinned)
		rt.Fab.PCIeCopy(p, rt.NodeIdx, dloc.Device(), dst.effSocket(), n, dst.Pinned)
	}
	// As in Transfer: the fabric time is spent regardless, so account the
	// transfer before propagating any backing-copy error.
	err = xmem.CopyBetween(dst.Space, dstAddr, src.Space, srcAddr, n)
	dst.record(dir, n, sim.Dur(p.Now()-start))
	return dir, err
}
