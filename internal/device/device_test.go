package device

import (
	"testing"

	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// psgRig builds an engine, fabric, runtime, space, and context pinned to
// the near socket of device dev on a PSG node.
func psgRig(dev int) (*sim.Engine, *Runtime, *Context) {
	eng := sim.NewEngine()
	sys := topo.PSG()
	fab := topo.NewFabric(eng, sys)
	rt := NewRuntime(eng, fab, 0)
	space := xmem.NewSpace("node0", len(sys.Nodes[0].Devices))
	ctx := rt.NewContext(dev, space, sys.Nodes[0].Devices[dev].Socket, true, true)
	return eng, rt, ctx
}

func TestAPIFor(t *testing.T) {
	if APIFor(topo.NVIDIAGPU) != CUDA {
		t.Fatal("NVIDIA must use CUDA")
	}
	for _, c := range []topo.DeviceClass{topo.XeonPhi, topo.AMDGPU, topo.FPGA, topo.CPUAccel} {
		if APIFor(c) != OpenCL {
			t.Fatalf("%v must use OpenCL", c)
		}
	}
	if CUDA.String() != "cuda" || OpenCL.String() != "opencl" {
		t.Fatal("API strings wrong")
	}
}

func TestMemAllocEnforcesDeviceCapacity(t *testing.T) {
	// Unbacked context: capacity accounting without touching real RAM.
	eng := sim.NewEngine()
	sys := topo.PSG()
	rt := NewRuntime(eng, topo.NewFabric(eng, sys), 0)
	ctx := rt.NewContext(0, xmem.NewSpace("n", 8), 0, false, true)
	a, err := ctx.MemAlloc(8 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if a == xmem.Nil {
		t.Fatal("nil address")
	}
	// GK210 has 12 GB; another 8 GB must fail.
	if _, err := ctx.MemAlloc(8 << 30); err == nil {
		t.Fatal("over-capacity allocation must fail")
	}
	if err := ctx.MemFree(a); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.MemAlloc(8 << 30); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestIntegratedDeviceAllocatesHost(t *testing.T) {
	eng := sim.NewEngine()
	sys := topo.HeteroDemo()
	fab := topo.NewFabric(eng, sys)
	rt := NewRuntime(eng, fab, 2) // CPU-only node
	space := xmem.NewSpace("n2", 2)
	ctx := rt.NewContext(0, space, 0, true, true)
	a, err := ctx.MemAlloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := space.Lookup(a)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind() != xmem.HostMem {
		t.Fatal("integrated device allocation must land in host memory")
	}
}

func TestTransferDirectionsAndData(t *testing.T) {
	eng, _, ctx := psgRig(0)
	host, _ := ctx.Space.AllocHost(1024, true)
	host2, _ := ctx.Space.AllocHost(1024, true)
	dev, _ := ctx.MemAlloc(1024)
	hb, _ := ctx.Space.Bytes(host, 1024)
	for i := range hb {
		hb[i] = byte(i)
	}
	var dirs []Direction
	eng.Spawn("t", func(p *sim.Proc) {
		d1, err := ctx.Transfer(p, dev, host, 1024) // HtoD
		if err != nil {
			t.Error(err)
		}
		d2, _ := ctx.Transfer(p, host2, dev, 1024)  // DtoH
		d3, _ := ctx.Transfer(p, host2, host, 1024) // HtoH
		dirs = []Direction{d1, d2, d3}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Direction{HtoD, DtoH, HtoH}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", dirs, want)
		}
	}
	b2, _ := ctx.Space.Bytes(host2, 1024)
	for i := range b2 {
		if b2[i] != byte(i) {
			t.Fatalf("round-trip data mismatch at %d", i)
		}
	}
	if ctx.Stats.HtoDCount != 1 || ctx.Stats.DtoHCount != 1 || ctx.Stats.HtoHCount != 1 {
		t.Fatalf("stats = %+v", ctx.Stats)
	}
	if ctx.Stats.CopyCount() != 3 {
		t.Fatal("copy count wrong")
	}
}

func TestTransferErrors(t *testing.T) {
	eng, _, ctx := psgRig(0)
	host, _ := ctx.Space.AllocHost(64, true)
	eng.Spawn("t", func(p *sim.Proc) {
		if _, err := ctx.Transfer(p, host, 0xdead, 8); err == nil {
			t.Error("unmapped src must fail")
		}
		if _, err := ctx.Transfer(p, 0xdead, host, 8); err == nil {
			t.Error("unmapped dst must fail")
		}
		if _, err := ctx.Transfer(p, host, host, -1); err == nil {
			t.Error("negative size must fail")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDtoDPeerVsStaged(t *testing.T) {
	// Devices 0,1 share a root complex (P2P); devices 0,4 do not (staged).
	eng := sim.NewEngine()
	sys := topo.PSG()
	fab := topo.NewFabric(eng, sys)
	rt := NewRuntime(eng, fab, 0)
	space := xmem.NewSpace("n", 8)
	ctx0 := rt.NewContext(0, space, 0, true, true)
	d0, _ := ctx0.MemAlloc(64 << 20)
	ctx1 := rt.NewContext(1, space, 0, true, true)
	d1, _ := ctx1.MemAlloc(64 << 20)
	ctx4 := rt.NewContext(4, space, 1, true, true)
	d4, _ := ctx4.MemAlloc(64 << 20)

	var peerTime, stagedTime sim.Dur
	eng.Spawn("peer", func(p *sim.Proc) {
		start := p.Now()
		if _, err := ctx0.Transfer(p, d1, d0, 64<<20); err != nil {
			t.Error(err)
		}
		peerTime = sim.Dur(p.Now() - start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng2 := sim.NewEngine()
	fab2 := topo.NewFabric(eng2, sys)
	rt2 := NewRuntime(eng2, fab2, 0)
	space2 := xmem.NewSpace("n2", 8)
	ctxA := rt2.NewContext(0, space2, 0, true, true)
	dA, _ := ctxA.MemAlloc(64 << 20)
	ctxB := rt2.NewContext(4, space2, 1, true, true)
	dB, _ := ctxB.MemAlloc(64 << 20)
	eng2.Spawn("staged", func(p *sim.Proc) {
		start := p.Now()
		if _, err := ctxA.Transfer(p, dB, dA, 64<<20); err != nil {
			t.Error(err)
		}
		stagedTime = sim.Dur(p.Now() - start)
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if peerTime >= stagedTime {
		t.Fatalf("peer %v should beat staged %v", peerTime, stagedTime)
	}
	_ = d4
}

func TestSameDeviceDtoD(t *testing.T) {
	eng, _, ctx := psgRig(0)
	a, _ := ctx.MemAlloc(1 << 20)
	b, _ := ctx.MemAlloc(1 << 20)
	var dir Direction
	eng.Spawn("t", func(p *sim.Proc) {
		dir, _ = ctx.Transfer(p, b, a, 1<<20)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dir != DtoD {
		t.Fatalf("dir = %v", dir)
	}
	if ctx.Stats.DtoDCount != 1 {
		t.Fatal("stats missing DtoD")
	}
}

func TestKernelDuration(t *testing.T) {
	spec := &topo.PSG().Nodes[0].Devices[0] // 1200 GF * 0.78, 240 GB/s * 0.55
	// Compute-bound: 1e12 flops / (1200e9*0.78) ~ 1.068s.
	d := Duration(spec, KernelSpec{FLOPs: 1e12, Kind: KindCompute})
	if d < sim.Second || d > sim.Second+sim.Second/5 {
		t.Fatalf("compute kernel = %v", d)
	}
	// Memory-bound: 132e9 bytes at 132 GB/s effective = 1s.
	m := Duration(spec, KernelSpec{Bytes: 132e9, Kind: KindMemory})
	if m < sim.Second-sim.Second/100 || m > sim.Second+sim.Second/100 {
		t.Fatalf("memory kernel = %v", m)
	}
	// Mixed takes the max.
	mx := Duration(spec, KernelSpec{FLOPs: 1e12, Bytes: 132e9, Kind: KindMixed})
	if mx != d {
		t.Fatalf("mixed = %v, want %v", mx, d)
	}
}

func TestStreamInOrderExecution(t *testing.T) {
	eng, rt, ctx := psgRig(0)
	host, _ := ctx.Space.AllocHost(1<<20, true)
	dev, _ := ctx.MemAlloc(1 << 20)
	st := ctx.NewStream(1)
	var order []string
	st.EnqueueCopy(dev, host, 1<<20)
	st.EnqueueFunc("mark1", func(p *sim.Proc) { order = append(order, "a") })
	st.EnqueueKernel(KernelSpec{Name: "k", FLOPs: 1e9, Kind: KindCompute,
		Body: func() { order = append(order, "kernel") }})
	st.EnqueueFunc("mark2", func(p *sim.Proc) { order = append(order, "b") })
	eng.Spawn("waiter", func(p *sim.Proc) {
		st.Sync(p)
		order = append(order, "synced")
	})
	rt.CloseAll()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "kernel", "b", "synced"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if ctx.Stats.KernelCount != 1 || ctx.Stats.KernelTime == 0 {
		t.Fatalf("kernel stats = %+v", ctx.Stats)
	}
}

func TestStreamsRunIndependently(t *testing.T) {
	// Two streams with one kernel each: kernels serialize on the device
	// compute resource, but copies on stream 2 overlap kernel on stream 1.
	eng, rt, ctx := psgRig(0)
	host, _ := ctx.Space.AllocHost(1<<26, true)
	dev, _ := ctx.MemAlloc(1 << 26)
	s1 := ctx.NewStream(1)
	s2 := ctx.NewStream(2)
	var kEnd, cEnd sim.Time
	k := s1.EnqueueKernel(KernelSpec{Name: "long", FLOPs: 1e11, Kind: KindCompute})
	c := s2.EnqueueCopy(dev, host, 1<<26)
	eng.Spawn("obs", func(p *sim.Proc) {
		c.Wait(p)
		cEnd = p.Now()
		k.Wait(p)
		kEnd = p.Now()
	})
	rt.CloseAll()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Kernel ~107ms; copy ~5.7ms. The copy must finish long before the
	// kernel, proving the queues are independent.
	if cEnd >= kEnd {
		t.Fatalf("copy end %v, kernel end %v: no overlap", cEnd, kEnd)
	}
}

func TestKernelsSerializeOnDevice(t *testing.T) {
	eng, rt, ctx := psgRig(0)
	s1 := ctx.NewStream(1)
	s2 := ctx.NewStream(2)
	e1 := s1.EnqueueKernel(KernelSpec{FLOPs: 1e11, Kind: KindCompute})
	e2 := s2.EnqueueKernel(KernelSpec{FLOPs: 1e11, Kind: KindCompute})
	var t1, t2 sim.Time
	eng.Spawn("obs", func(p *sim.Proc) {
		e1.Wait(p)
		t1 = p.Now()
		e2.Wait(p)
		t2 = p.Now()
	})
	rt.CloseAll()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	one := Duration(ctx.Dev.Spec, KernelSpec{FLOPs: 1e11, Kind: KindCompute})
	if t2-t1 < sim.Time(one)*9/10 {
		t.Fatalf("kernels overlapped on one device: %v then %v (kernel=%v)", t1, t2, one)
	}
}

func TestStreamCallback(t *testing.T) {
	eng, rt, ctx := psgRig(0)
	host, _ := ctx.Space.AllocHost(1<<20, true)
	dev, _ := ctx.MemAlloc(1 << 20)
	st := ctx.NewStream(1)
	var cbAt sim.Time = -1
	st.EnqueueCopyWithCallback(dev, host, 1<<20, func(at sim.Time) { cbAt = at })
	var after sim.Time
	done := st.lastDone
	eng.Spawn("obs", func(p *sim.Proc) {
		done.Wait(p)
		after = p.Now()
	})
	rt.CloseAll()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cbAt < 0 || cbAt != after {
		t.Fatalf("callback at %v, op done at %v", cbAt, after)
	}
}

func TestAddCallbackAfterQueuedWork(t *testing.T) {
	eng, rt, ctx := psgRig(0)
	st := ctx.NewStream(1)
	var order []string
	st.EnqueueFunc("w", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		order = append(order, "work")
	})
	st.AddCallback(func(at sim.Time) { order = append(order, "cb") })
	rt.CloseAll()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "work" || order[1] != "cb" {
		t.Fatalf("order = %v", order)
	}
}

func TestStreamCloseIdempotent(t *testing.T) {
	eng, _, ctx := psgRig(0)
	st := ctx.NewStream(1)
	st.Close()
	st.Close()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCount(t *testing.T) {
	eng, rt, ctx := psgRig(0)
	st := ctx.NewStream(1)
	st.EnqueueFunc("a", func(p *sim.Proc) { p.Sleep(sim.Millisecond) })
	st.EnqueueFunc("b", func(p *sim.Proc) {})
	if st.Pending() != 2 {
		t.Fatalf("pending = %d", st.Pending())
	}
	rt.CloseAll()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending after run = %d", st.Pending())
	}
}

func TestTransferBetweenSpaces(t *testing.T) {
	// Legacy mode: two private spaces; DtoD must stage through hosts.
	eng := sim.NewEngine()
	sys := topo.PSG()
	fab := topo.NewFabric(eng, sys)
	rt := NewRuntime(eng, fab, 0)
	sp0 := xmem.NewSpace("p0", 8)
	sp1 := xmem.NewSpace("p1", 8)
	c0 := rt.NewContext(0, sp0, 0, true, true)
	c1 := rt.NewContext(1, sp1, 0, true, true)
	d0, _ := c0.MemAlloc(1 << 20)
	d1, _ := c1.MemAlloc(1 << 20)
	b0, _ := sp0.Bytes(d0, 1<<20)
	b0[123] = 0x7f
	var dir Direction
	eng.Spawn("t", func(p *sim.Proc) {
		var err error
		dir, err = TransferBetween(p, c1, d1, c0, d0, 1<<20)
		if err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dir != DtoD {
		t.Fatalf("dir = %v", dir)
	}
	b1, _ := sp1.Bytes(d1, 1<<20)
	if b1[123] != 0x7f {
		t.Fatal("cross-space transfer lost data")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{HtoDCount: 1, HtoDBytes: 10, KernelCount: 2, KernelTime: 5}
	b := Stats{HtoDCount: 2, DtoHCount: 3, HtoHTime: 7}
	a.Add(&b)
	if a.HtoDCount != 3 || a.DtoHCount != 3 || a.KernelCount != 2 || a.HtoHTime != 7 {
		t.Fatalf("sum = %+v", a)
	}
}

func TestDirectionString(t *testing.T) {
	if HtoH.String() != "HtoH" || HtoD.String() != "HtoD" ||
		DtoH.String() != "DtoH" || DtoD.String() != "DtoD" {
		t.Fatal("direction strings wrong")
	}
}

func TestNewHandleMonotonic(t *testing.T) {
	_, rt, _ := psgRig(0)
	d := rt.Devices[0]
	h1, h2 := d.NewHandle(), d.NewHandle()
	if h2 <= h1 || h1 == 0 {
		t.Fatal("handles must be distinct and nonzero")
	}
}

func TestUnpinnedContextAlternatesSockets(t *testing.T) {
	// An unpinned context (Socket = -1) models OS placement by alternating
	// near and far sockets, so repeated transfers average the NUMA
	// penalty rather than always hitting one extreme.
	eng := sim.NewEngine()
	sys := topo.PSG()
	fab := topo.NewFabric(eng, sys)
	rt := NewRuntime(eng, fab, 0)
	ctx := rt.NewContext(0, xmem.NewSpace("n", 8), -1, false, false)
	dev, _ := ctx.MemAlloc(64 << 20)
	host, _ := ctx.Space.AllocHost(64<<20, false)
	var durs []sim.Dur
	eng.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			t0 := p.Now()
			ctx.Transfer(p, dev, host, 64<<20)
			durs = append(durs, sim.Dur(p.Now()-t0))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Alternating: two distinct values, interleaved.
	if durs[0] == durs[1] {
		t.Fatalf("unpinned transfers did not alternate: %v", durs)
	}
	if durs[0] != durs[2] || durs[1] != durs[3] {
		t.Fatalf("alternation not periodic: %v", durs)
	}
}

func TestSingleSocketUnpinnedIsNear(t *testing.T) {
	eng := sim.NewEngine()
	sys := topo.Titan(1)
	fab := topo.NewFabric(eng, sys)
	rt := NewRuntime(eng, fab, 0)
	ctx := rt.NewContext(0, xmem.NewSpace("n", 1), -1, false, true)
	if got := ctx.effSocket(); got != 0 {
		t.Fatalf("single-socket unpinned effSocket = %d", got)
	}
}

func TestKernelGeometryCarried(t *testing.T) {
	spec := KernelSpec{Gangs: 128, Workers: 8, Vector: 32, FLOPs: 1, Kind: KindCompute}
	if spec.Gangs != 128 || spec.Workers != 8 || spec.Vector != 32 {
		t.Fatal("geometry fields lost")
	}
}

// flakyCopies fails the first n CopyFail probes, then heals.
type flakyCopies struct {
	fails   int
	retries int
}

func (f *flakyCopies) CopyFail(node int, at sim.Time) bool {
	if f.fails > 0 {
		f.fails--
		return true
	}
	return false
}
func (f *flakyCopies) CopyRetries() int { return f.retries }

// TestTransferRetriesTransientCopyFault: a transient device-copy fault is
// retried (paying the lane again each attempt) and the payload still lands;
// exhausting the retry budget surfaces an error instead of corrupt data.
func TestTransferRetriesTransientCopyFault(t *testing.T) {
	eng, rt, ctx := psgRig(0)
	rt.Faults = &flakyCopies{fails: 2, retries: 3}
	host, _ := ctx.Space.AllocHost(4096, true)
	dev, _ := ctx.MemAlloc(4096)
	hb, _ := ctx.Space.Bytes(host, 4096)
	for i := range hb {
		hb[i] = byte(i * 5)
	}
	var healthy, faulty sim.Dur
	eng.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		if _, err := ctx.Transfer(p, dev, host, 4096); err != nil {
			t.Error(err)
		}
		faulty = sim.Dur(p.Now() - start)
		start = p.Now()
		if _, err := ctx.Transfer(p, dev, host, 4096); err != nil { // healed
			t.Error(err)
		}
		healthy = sim.Dur(p.Now() - start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if faulty <= healthy {
		t.Fatalf("faulty transfer (%v) not slower than healthy (%v)", faulty, healthy)
	}
	db, _ := ctx.Space.Bytes(dev, 4096)
	for i := range db {
		if db[i] != byte(i*5) {
			t.Fatalf("payload mismatch at %d after copy retries", i)
		}
	}

	// Exhaust the budget: every probe fails.
	rt.Faults = &flakyCopies{fails: 1 << 30, retries: 2}
	eng2, rt2, ctx2 := psgRig(0)
	rt2.Faults = rt.Faults
	h2, _ := ctx2.Space.AllocHost(64, true)
	d2, _ := ctx2.MemAlloc(64)
	var err2 error
	eng2.Spawn("t", func(p *sim.Proc) {
		_, err2 = ctx2.Transfer(p, d2, h2, 64)
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if err2 == nil {
		t.Fatal("transfer succeeded with a permanently failing copy engine")
	}
}
