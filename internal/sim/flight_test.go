package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// beatGroup builds the ring workload on its own group so tests can attach
// beat observers and flight rings before Run.
func beatGroup(nShards, rounds int, lookahead Dur, workers int) (*ShardGroup, []*Engine) {
	engines := make([]*Engine, nShards)
	for i := range engines {
		engines[i] = NewLPEngine(i)
	}
	g := NewShardGroup(engines, lookahead, workers)
	for i := range engines {
		i := i
		e := engines[i]
		dst := engines[(i+1)%nShards]
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Sleep(Dur(30 + i*7 + k))
				e.Post(dst, e.Now()+Time(lookahead)+Time(1+i*3), func() {})
				p.Sleep(Dur(11 + i))
			}
		})
	}
	return g, engines
}

// TestBeatBoundariesDeterministic: beat boundaries fire at exact multiples of
// BeatEvery in order, each with every event at or before the boundary
// dispatched on every shard — and the full (boundary, events) sequence is
// identical for every worker count.
func TestBeatBoundariesDeterministic(t *testing.T) {
	type snap struct {
		At     Time
		Events uint64
		Next   Time
	}
	var ref []snap
	for _, workers := range []int{1, 2, 8} {
		g, engines := beatGroup(4, 6, 100, workers)
		g.BeatEvery = 50
		var got []snap
		g.OnBeat = func(at Time) {
			s := snap{At: at, Events: g.Events(), Next: -1}
			if next, ok := g.NextAt(); ok {
				s.Next = next
			}
			// The beat contract: the boundary is settled. Nothing pending
			// anywhere may be at or before it, and no shard has run past the
			// window fence that proved the boundary settled.
			if s.Next >= 0 && s.Next <= at {
				t.Fatalf("workers=%d: beat at %d with pending event at %d", workers, at, s.Next)
			}
			for _, e := range engines {
				if e.Now() > at+Time(g.BeatEvery)+100 {
					t.Fatalf("workers=%d: shard %d at %d, far past beat %d", workers, e.lp, e.Now(), at)
				}
			}
			got = append(got, s)
		}
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) == 0 {
			t.Fatalf("workers=%d: no beats fired", workers)
		}
		for i, s := range got {
			if s.At != Time(50*(i+1)) {
				t.Fatalf("workers=%d: beat %d at %d, want %d", workers, i, s.At, 50*(i+1))
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: beat sequence diverges:\n got %v\nwant %v", workers, got, ref)
		}
	}
}

// TestBeatSingleShard: the degenerate serial group (one engine, zero
// lookahead) still fires beats — a single-node run's progress feed must not
// go dark.
func TestBeatSingleShard(t *testing.T) {
	e := NewEngine()
	g := NewShardGroup([]*Engine{e}, 0, 1)
	g.BeatEvery = 40
	e.Spawn("p", func(p *Proc) {
		for k := 0; k < 10; k++ {
			p.Sleep(Dur(25))
		}
	})
	var beats []Time
	g.OnBeat = func(at Time) { beats = append(beats, at) }
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 sleeps of 25 reach t=250; boundaries 40..240 fire, trailing
	// boundaries after the last event do not (the run is over).
	want := []Time{40, 80, 120, 160, 200, 240}
	if !reflect.DeepEqual(beats, want) {
		t.Fatalf("beats = %v, want %v", beats, want)
	}
}

// TestFlightRingWraps: the ring keeps exactly the n most recent dispatched
// events, oldest first, with increasing (at, seq).
func TestFlightRingWraps(t *testing.T) {
	e := NewEngine()
	e.ArmFlight(4)
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(10*(i+1)), func() { _ = i })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	sf := e.FlightShard()
	if len(sf.Recent) != 4 {
		t.Fatalf("ring holds %d stamps, want 4", len(sf.Recent))
	}
	for i, s := range sf.Recent {
		if want := Time(10 * (7 + i)); Time(s.AtNs) != want {
			t.Fatalf("recent[%d].at = %d, want %d (last four events)", i, s.AtNs, want)
		}
		if s.Kind != "fn" {
			t.Fatalf("recent[%d].kind = %q, want fn for inline callbacks", i, s.Kind)
		}
		if i > 0 && s.Seq <= sf.Recent[i-1].Seq {
			t.Fatalf("ring seq not increasing: %v", sf.Recent)
		}
	}
}

// TestStallReportReasons: each abnormal stop maps to its reason string and
// the dump names the parked processes of the stop instant.
func TestStallReportReasons(t *testing.T) {
	t.Run("deadlock", func(t *testing.T) {
		engines := []*Engine{NewLPEngine(0), NewLPEngine(1)}
		g := NewShardGroup(engines, 50, 2)
		g.ArmFlight(8)
		for i, e := range engines {
			ev := e.NewEvent("never")
			e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) {
				p.Sleep(Dur(10 * (i + 1)))
				ev.Wait(p)
			})
		}
		if _, ok := g.Run().(*DeadlockError); !ok {
			t.Fatal("want DeadlockError")
		}
		st := g.Stall()
		if st == nil || st.Reason != "deadlock" {
			t.Fatalf("stall = %+v, want reason deadlock", st)
		}
		ranks := st.ParkedRanks()
		if !reflect.DeepEqual(ranks, []string{"stuck0", "stuck1"}) {
			t.Fatalf("parked ranks = %v, want both stuck processes", ranks)
		}
		for _, sh := range st.Shards {
			for _, p := range sh.Parked {
				if p.BlockedOn != "event:never" {
					t.Fatalf("parked %q blocked on %q, want the event's why string", p.Name, p.BlockedOn)
				}
			}
		}
	})

	t.Run("event-limit", func(t *testing.T) {
		g, _ := beatGroup(2, 1000, 100, 1)
		g.MaxEvents = 60
		g.ArmFlight(8)
		if _, ok := g.Run().(*LimitError); !ok {
			t.Fatal("want LimitError")
		}
		st := g.Stall()
		if st == nil || st.Reason != "event-limit" || st.Events == 0 {
			t.Fatalf("stall = %+v, want reason event-limit", st)
		}
		if len(st.ParkedRanks()) == 0 {
			t.Fatal("event-limit stall names no parked ranks")
		}
	})

	t.Run("cancel", func(t *testing.T) {
		g, engines := beatGroup(2, 1000, 100, 2)
		g.ArmFlight(8)
		engines[0].At(Time(500), func() { g.Cancel() })
		if _, ok := g.Run().(*CancelError); !ok {
			t.Fatal("want CancelError")
		}
		if st := g.Stall(); st == nil || st.Reason != "cancel" {
			t.Fatalf("stall = %+v, want reason cancel", st)
		}
	})

	t.Run("disarmed", func(t *testing.T) {
		g, _ := beatGroup(2, 10, 100, 1)
		g.MaxEvents = 20
		if _, ok := g.Run().(*LimitError); !ok {
			t.Fatal("want LimitError")
		}
		if g.Stall() != nil {
			t.Fatal("disarmed group captured a stall report")
		}
	})
}

// TestStallReportJSON: the stall.json encoding is valid JSON carrying the
// reason and per-shard rings.
func TestStallReportJSON(t *testing.T) {
	g, _ := beatGroup(2, 1000, 100, 1)
	g.MaxEvents = 60
	g.ArmFlight(4)
	if err := g.Run(); err == nil {
		t.Fatal("run did not trip the event budget")
	}
	var buf bytes.Buffer
	if err := g.Stall().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded StallReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("stall.json does not decode: %v", err)
	}
	if decoded.Reason != "event-limit" || len(decoded.Shards) != 2 {
		t.Fatalf("decoded stall = %+v, want event-limit with 2 shards", decoded)
	}
	if !strings.Contains(buf.String(), "\"recent\"") {
		t.Fatal("stall.json carries no flight rings")
	}
}

// TestCausalityPanicCaptured: with IMPACC_SIM_CHECK on, a lookahead bound
// violation at exchange time surfaces as a *PanicError from the exchange —
// not a process panic escaping Run — and the armed flight recorder labels
// the stall "causality".
func TestCausalityPanicCaptured(t *testing.T) {
	old := simCheck
	simCheck = true
	defer func() { simCheck = old }()

	engines := []*Engine{NewLPEngine(0), NewLPEngine(1)}
	g := NewShardGroup(engines, 50, 1)
	g.ArmFlight(8)
	// Shard 0 lies about the lookahead: it posts an event 1ns out while
	// shard 1's window (fence = 10+50) lets it run to t=40. At the barrier
	// the injection lands in shard 1's past.
	engines[0].At(Time(10), func() {
		engines[0].Post(engines[1], Time(11), func() {})
	})
	engines[1].At(Time(20), func() {})
	engines[1].At(Time(40), func() {})
	err := g.Run()
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("Run returned %v, want *PanicError from the exchange", err)
	}
	if pe.Proc != "shard-exchange" {
		t.Fatalf("panic attributed to %q, want shard-exchange", pe.Proc)
	}
	st := g.Stall()
	if st == nil || st.Reason != "causality" {
		t.Fatalf("stall = %+v, want reason causality", st)
	}
}
