package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDur parses a duration literal like 250ns, 10us, 3ms, 1.5s into
// virtual time. It is the inverse of FormatDur and the shared grammar for
// every textual surface that names virtual durations (the -chaos spec, the
// CLI resource caps, the serve job API). A dedicated parser — rather than
// time.ParseDuration — keeps deterministic packages free of the time
// package entirely.
func ParseDur(s string) (Dur, error) {
	units := []struct {
		suffix string
		scale  float64
	}{
		{"ns", 1}, {"us", 1e3}, {"µs", 1e3}, {"ms", 1e6}, {"s", 1e9},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("sim: bad duration %q", s)
			}
			return Dur(v * u.scale), nil
		}
	}
	return 0, fmt.Errorf("sim: duration %q needs a unit (ns, us, ms, s)", s)
}

// FormatDur renders d with the largest unit that divides it exactly, so
// ParseDur(FormatDur(d)) == d for every non-negative duration. Unlike
// Dur.String (which rounds for human display), this form is loss-free and
// safe to embed in canonical encodings and cache keys.
func FormatDur(d Dur) string {
	if d < 0 {
		d = 0
	}
	switch {
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/Millisecond))
	case d%Microsecond == 0:
		return fmt.Sprintf("%dus", int64(d/Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}
