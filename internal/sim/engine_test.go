package sim

import (
	"testing"
)

// TestMaxTimeExactEventRuns pins the MaxTime boundary: an event scheduled
// exactly at MaxTime still runs; only events strictly past it halt the run.
func TestMaxTimeExactEventRuns(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 100
	var ranAt, ranPast bool
	e.At(100, func() { ranAt = true })
	e.At(101, func() { ranPast = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ranAt {
		t.Fatal("event exactly at MaxTime did not run")
	}
	if ranPast {
		t.Fatal("event past MaxTime ran")
	}
	if !e.Halted() {
		t.Fatal("engine not halted after crossing MaxTime")
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100 (must not advance past MaxTime)", e.Now())
	}
}

// TestPastEventClampsToNow schedules an event for a time the clock has
// already passed: it must run at the current instant, after events already
// queued there, and never move the clock backwards.
func TestPastEventClampsToNow(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(50, func() {
		e.At(10, func() { // in the past: clamp to t=50
			order = append(order, "past")
			if e.Now() != 50 {
				t.Errorf("past event ran at t=%v, want 50", e.Now())
			}
		})
		e.At(50, func() { order = append(order, "now") })
		order = append(order, "outer")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO within the instant: the clamped event was scheduled first.
	want := []string{"outer", "past", "now"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSpawnAfterHaltUnwinds spawns a process from the event that halts the
// engine: its body must never run, but its goroutine must still be unwound
// so Run leaks nothing.
func TestSpawnAfterHaltUnwinds(t *testing.T) {
	e := NewEngine()
	var bodyRan bool
	e.At(10, func() {
		e.Halt()
		e.Spawn("late", func(p *Proc) { bodyRan = true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bodyRan {
		t.Fatal("process spawned after Halt ran its body")
	}
	if e.Live() != 0 {
		t.Fatalf("Live() = %d after Run, want 0 (goroutine leaked)", e.Live())
	}
}

// TestHaltRunsDefersOfParkedProcs halts mid-run with processes parked at
// various depths; every defer must run (unwinding, not abandonment) and
// Live must reach zero.
func TestHaltRunsDefersOfParkedProcs(t *testing.T) {
	e := NewEngine()
	var unwound int
	for i := 0; i < 5; i++ {
		e.Spawn("sleeper", func(p *Proc) {
			defer func() { unwound++ }()
			p.Sleep(1000) // far past the halt
		})
	}
	e.At(10, func() { e.Halt() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if unwound != 5 {
		t.Fatalf("unwound %d processes, want 5", unwound)
	}
	if e.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", e.Live())
	}
}

// TestEventPoolReuse drives enough schedule/dispatch cycles through one
// engine to recycle pooled event structs many times over and checks the
// schedule stays exact — a stale pooled field would misfire immediately.
func TestEventPoolReuse(t *testing.T) {
	e := NewEngine()
	const rounds = 1000
	var fired int
	var last Time
	var step func()
	step = func() {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v -> %v", last, e.Now())
		}
		last = e.Now()
		fired++
		if fired < rounds {
			// Mix same-instant and future events so both the nowQ and
			// the heap cycle through the pool.
			if fired%3 == 0 {
				e.At(e.Now(), step)
			} else {
				e.After(Dur(fired%7+1), step)
			}
		}
	}
	e.At(1, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != rounds {
		t.Fatalf("fired %d events, want %d", fired, rounds)
	}
	if len(e.pool) == 0 {
		t.Fatal("freelist empty after run: events are not being recycled")
	}
}

// TestLazyCancellationSkipsDeadProc checks that a wake event for a process
// that already finished is discarded instead of resuming a dead goroutine.
func TestLazyCancellationSkipsDeadProc(t *testing.T) {
	e := NewEngine()
	var p *Proc
	e.Spawn("short", func(pp *Proc) { p = pp })
	// Queue a spurious wake for after the process has finished.
	e.At(5, func() { e.wake(p, 10) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", e.Live())
	}
}

// TestIsHaltUnwind pins the sentinel contract used by recover wrappers in
// higher layers.
func TestIsHaltUnwind(t *testing.T) {
	if !IsHaltUnwind(haltUnwind{}) {
		t.Fatal("sentinel not recognized")
	}
	if IsHaltUnwind("boom") || IsHaltUnwind(nil) {
		t.Fatal("non-sentinel values recognized")
	}
}

// TestProcsCompaction spawns far more short-lived processes than are ever
// live at once; the diagnostics slice must not grow without bound.
func TestProcsCompaction(t *testing.T) {
	e := NewEngine()
	var spawn func()
	n := 0
	maxSeen := 0
	spawn = func() {
		if len(e.procs) > maxSeen {
			maxSeen = len(e.procs)
		}
		if n >= 500 {
			return
		}
		n++
		e.Spawn("w", func(p *Proc) {})
		e.After(1, spawn)
	}
	e.At(0, spawn)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Only a couple of processes are live at any instant, so compaction
	// must keep the slice near the 64-entry threshold, not at 500.
	if maxSeen > 130 {
		t.Fatalf("procs slice peaked at %d entries, want compaction near 64", maxSeen)
	}
}
