package sim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ShardGroup runs several engines — shards of one simulation — under
// conservative-lookahead parallel discrete-event simulation (PDES). Each
// shard owns a disjoint slice of the simulated machine (core shards by
// node), so the only state crossing shards is explicit: events posted with
// Engine.Post. The group advances all shards window by window:
//
//	T     = min over shards of the next pending event time
//	fence = T + lookahead
//
// where lookahead is a lower bound on the virtual latency of any
// cross-shard interaction. Every cross-shard event generated inside a
// window therefore lands at or after the fence, so shards can execute the
// whole window concurrently without observing each other; outboxes are
// exchanged at the barrier and injected carrying the sender's (lp, seq)
// stamp, which — together with the (at, depth, lp, seq) event order — makes
// the merged schedule a pure function of the inputs. A group of one shard,
// or a group with no positive lookahead, degenerates to a single serial
// window and is exactly the classic engine loop.
//
// Worker count changes only wall-clock behaviour, never a single simulated
// byte: within a window each shard runs sequentially and shards share no
// state, so any assignment of shards to workers dispatches the same events
// at the same virtual times.
type ShardGroup struct {
	engines   []*Engine
	lookahead Dur
	workers   int

	// Deadline, MaxTime, and MaxEvents mirror the Engine fields but act on
	// the group's global virtual clock (the minimum next event time) and
	// the shards' combined dispatch count.
	Deadline  Time
	MaxTime   Time
	MaxEvents uint64

	// BeatEvery, when positive, divides virtual time into beat intervals
	// and calls OnBeat at every boundary B = k*BeatEvery once every event
	// at or before B has been dispatched on every shard. The window fence
	// is clamped to B+1 so no shard runs past a pending boundary, which
	// makes the observed state at B a pure function of the simulation —
	// independent of worker count, shard count, and lookahead. Beats add
	// barriers (wall-clock cost) but never change a simulated byte: window
	// structure only decides when shards synchronize, not what they run.
	BeatEvery Dur
	// OnBeat receives each beat boundary, in increasing order, with every
	// shard quiescent (the coordinator goroutine calls it between windows).
	// Set it together with BeatEvery before Run.
	OnBeat func(at Time)
	// OnWindow, when non-nil, is called after every window barrier with the
	// fence the window ran to: every event strictly before the fence has
	// been dispatched on every shard, and every future record any shard
	// produces will be stamped at or after it. Streaming observers use it
	// to flush safely (see core's streaming tracer).
	OnWindow func(fence Time)

	cancelled atomic.Bool
	nextBeat  Time

	// flightCap, when positive, arms a per-shard flight recorder of the
	// most recent flightCap event stamps (see ArmFlight / Stall); stall
	// holds the dump captured by Run on an abnormal end.
	flightCap int
	stall     *StallReport
}

// NewShardGroup builds a group over engines created with NewLPEngine (lp =
// index). lookahead must be a conservative lower bound on cross-shard event
// latency: a positive value lets shards run concurrently; zero or negative
// forces fully serial single-window execution, which is only correct when
// the group has exactly one engine (callers with no usable lookahead must
// place everything on one shard). workers bounds how many shards execute
// concurrently; <= 1 is serial.
func NewShardGroup(engines []*Engine, lookahead Dur, workers int) *ShardGroup {
	if len(engines) > 1 && lookahead <= 0 {
		panic("sim: multi-shard group requires positive lookahead")
	}
	for i, e := range engines {
		if e.lp != int32(i) {
			panic("sim: shard engines must be created with NewLPEngine(index)")
		}
	}
	if workers < 1 {
		workers = 1
	}
	return &ShardGroup{engines: engines, lookahead: lookahead, workers: workers}
}

// Cancel asks the group to stop. Safe from any goroutine: each shard's run
// loop polls its own flag before every dispatch.
func (g *ShardGroup) Cancel() {
	g.cancelled.Store(true)
	for _, e := range g.engines {
		e.Cancel()
	}
}

// Cancelled reports whether Cancel has been called.
func (g *ShardGroup) Cancelled() bool { return g.cancelled.Load() }

// Events reports the total number of events dispatched across all shards.
func (g *ShardGroup) Events() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.dispatched
	}
	return n
}

// MaxNow returns the latest local clock over the shards — the time of the
// last event dispatched anywhere, matching the final clock of an equivalent
// serial engine.
func (g *ShardGroup) MaxNow() Time {
	var t Time
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Run advances all shards to completion and returns exactly what a single
// serial engine over the merged schedule would have: nil on a clean drain,
// *DeadlockError (with the union of blocked processes), *LimitError on a
// Deadline/MaxEvents cap, *CancelError, or *PanicError. However it ends,
// every unfinished process on every shard is unwound before returning.
func (g *ShardGroup) Run() error {
	if g.MaxEvents != 0 && len(g.engines) == 1 && g.engines[0].MaxEvents == 0 {
		// A single-shard group degenerates to the classic engine loop; the
		// engine's own MaxEvents check reproduces serial semantics exactly.
		// Multi-shard groups enforce the cap at window barriers instead
		// (see armEventBudget / checkEventBudget).
		g.engines[0].MaxEvents = g.MaxEvents
	}
	stopErr := g.windows()
	var err error
	if p := g.firstPanic(); p != nil {
		err = p
	} else if stopErr != nil {
		err = stopErr
	} else if !g.halted() {
		if blocked := g.blockedUnion(); len(blocked) > 0 {
			err = &DeadlockError{Time: g.MaxNow(), Blocked: blocked}
		}
	}
	g.captureStall(err)
	for _, e := range g.engines {
		e.unwindProcs()
	}
	if err == nil {
		if p := g.firstPanic(); p != nil {
			// A defer panicked for real while unwinding; surface it.
			err = p
		}
	}
	return err
}

// windows is the barrier loop: pick the window, run every shard with work
// in it (concurrently when workers allow), exchange outboxes, repeat.
func (g *ShardGroup) windows() error {
	n := len(g.engines)
	errs := make([]error, n)
	active := make([]*Engine, 0, n)
	if g.BeatEvery > 0 {
		g.nextBeat = Time(g.BeatEvery)
	}
	for {
		if g.cancelled.Load() {
			return &CancelError{At: g.MaxNow()}
		}
		T, ok := g.minNextAt()
		if !ok {
			return nil // drained
		}
		// Every beat boundary strictly before the next pending event is
		// final: no event at or before it remains anywhere, so the state
		// it observes can never change. Fire them in order before the
		// deadline checks so a capped run still reports its last beats.
		for g.BeatEvery > 0 && g.nextBeat < T {
			if g.Deadline != 0 && g.nextBeat > g.Deadline {
				break
			}
			if g.MaxTime != 0 && g.nextBeat > g.MaxTime {
				break
			}
			if g.OnBeat != nil {
				g.OnBeat(g.nextBeat)
			}
			g.nextBeat += Time(g.BeatEvery)
		}
		if g.Deadline != 0 && T > g.Deadline {
			return &LimitError{Resource: "vtime", Limit: int64(g.Deadline), At: g.MaxNow()}
		}
		if g.MaxTime != 0 && T > g.MaxTime {
			return nil // silent truncation, like Engine.MaxTime
		}
		fence := timeInfinity
		if n > 1 {
			fence = T + Time(g.lookahead)
		}
		if g.Deadline != 0 && fence > g.Deadline+1 {
			fence = g.Deadline + 1
		}
		if g.MaxTime != 0 && fence > g.MaxTime+1 {
			fence = g.MaxTime + 1
		}
		// Clamp the window to the next beat boundary so no shard dispatches
		// an event past a boundary before the boundary is observed. The
		// fence stays strictly above T (nextBeat >= T here), so every
		// window still makes progress.
		if g.BeatEvery > 0 && fence > g.nextBeat+1 {
			fence = g.nextBeat + 1
		}
		active = active[:0]
		for _, e := range g.engines {
			if at, ok := e.nextAt(); ok && at < fence {
				active = append(active, e)
			}
		}
		g.armEventBudget()
		g.runWindow(active, fence, errs)
		// The stop error of the lowest shard index wins, deterministically.
		for i := range errs {
			if errs[i] != nil {
				return errs[i]
			}
		}
		if err := g.checkEventBudget(); err != nil {
			return err
		}
		if g.halted() {
			return nil // a shard halted (panic or Halt); stop the run
		}
		if g.OnWindow != nil {
			g.OnWindow(g.windowFence(fence))
		}
		if err := g.exchange(); err != nil {
			return err
		}
	}
}

// exchange moves cross-shard events from outboxes into their destination
// heaps in shard order; the (lp, seq) stamps injected here fix the merge
// order independent of flush order. An IMPACC_SIM_CHECK causality panic
// (an event landing in a destination shard's past — a lookahead bound
// violation) is captured as a *PanicError so the run ends like any other
// failed run: processes unwound, flight recorder dumpable, no panic
// escaping to the host program. Engine.inject itself still panics, so
// direct misuse keeps its loud failure mode.
func (g *ShardGroup) exchange() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Proc: "shard-exchange", Value: r}
		}
	}()
	for _, e := range g.engines {
		for i := range e.outbox {
			re := e.outbox[i]
			e.outbox[i] = remoteEvent{}
			re.dst.inject(re.at, re.fn, re.lp, re.seq)
		}
		e.outbox = e.outbox[:0]
	}
	return nil
}

// runWindow advances every active shard to the fence, on up to g.workers
// concurrent workers. Each errs slot is owned by one shard, so the error
// collection is as deterministic as the shards themselves.
func (g *ShardGroup) runWindow(active []*Engine, fence Time, errs []error) {
	if w := min(g.workers, len(active)); w > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(active) {
						return
					}
					e := active[i]
					errs[e.lp] = e.runUntil(fence)
				}
			}()
		}
		wg.Wait()
		return
	}
	for _, e := range active {
		errs[e.lp] = e.runUntil(fence)
	}
}

// limitStamp is the canonical position of one dispatched event, recorded
// while a window runs within exactThreshold of the MaxEvents budget so the
// barrier can name the exact event that exhausted it.
type limitStamp struct {
	at  Time
	dl  uint64
	seq uint64
}

// exactThreshold is the remaining-budget distance below which shards start
// recording canonical stamps for exact MaxEvents attribution. It must be at
// least a few times the shard count so the coarse mode's per-shard window
// caps stay >= 1.
func (g *ShardGroup) exactThreshold() int64 {
	t := int64(4 * len(g.engines))
	if t < 4096 {
		t = 4096
	}
	return t
}

// armEventBudget distributes the remaining MaxEvents budget to the shards
// for one window. Far from the cap every shard gets an equal slice small
// enough that the window total can never cross the budget; within
// exactThreshold of it, each shard may dispatch up to the full remainder
// and records canonical stamps so checkEventBudget can attribute the limit
// error exactly. Both caps are pure functions of barrier state, so the
// whole trajectory — including the final window's bounded overshoot — is
// identical at every worker count.
func (g *ShardGroup) armEventBudget() {
	if g.MaxEvents == 0 || len(g.engines) == 1 {
		return
	}
	remaining := int64(g.MaxEvents) - int64(g.Events())
	exact := remaining <= g.exactThreshold()
	for _, e := range g.engines {
		e.winCount = 0
		if exact {
			e.winCap = uint64(remaining)
			if e.winStamps == nil {
				e.winStamps = make([]limitStamp, 0, remaining)
			} else {
				e.winStamps = e.winStamps[:0]
			}
		} else {
			// remaining > exactThreshold >= 4*shards keeps this cap >= 2.
			e.winCap = uint64(remaining / int64(2*len(g.engines)))
			e.winStamps = nil
		}
	}
}

// checkEventBudget ends the run once the shards' combined dispatch count
// reaches MaxEvents, attributing the *LimitError to the canonical
// (at, depth, lp, seq)-least event that exhausted the budget — the same
// event a serial engine over the merged schedule would have stopped at —
// so the error bytes match at every worker count.
func (g *ShardGroup) checkEventBudget() error {
	if g.MaxEvents == 0 || len(g.engines) == 1 {
		return nil
	}
	total := g.Events()
	if total < g.MaxEvents {
		return nil
	}
	// The budget can only be crossed with stamp recording armed (far from
	// the cap the window caps keep the total strictly below it), so every
	// dispatch of the crossing window is stamped. The budget ran out at the
	// r-th canonical stamp, where r is the pre-window remainder.
	var windowEvents int64
	for _, e := range g.engines {
		windowEvents += int64(e.winCount)
	}
	r := int64(g.MaxEvents) - (int64(total) - windowEvents)
	var stamps []limitStamp
	for _, e := range g.engines {
		stamps = append(stamps, e.winStamps...)
	}
	sort.Slice(stamps, func(i, j int) bool {
		a, b := stamps[i], stamps[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.dl != b.dl {
			return a.dl < b.dl
		}
		return a.seq < b.seq
	})
	at := g.MaxNow()
	if r >= 1 && int64(len(stamps)) >= r {
		at = stamps[r-1].at
	}
	return &LimitError{Resource: "events", Limit: int64(g.MaxEvents), At: at}
}

// windowFence is the fence OnWindow observers may trust: every event
// strictly before it has been dispatched on every shard, and every future
// record will be stamped at or after it. Normally that is the window fence
// itself; when an event-budget cap paused a shard mid-window, it is pulled
// back to the earliest still-pending event.
func (g *ShardGroup) windowFence(fence Time) Time {
	if g.MaxEvents == 0 || len(g.engines) == 1 {
		return fence
	}
	for _, e := range g.engines {
		if at, ok := e.nextAt(); ok && at < fence {
			fence = at
		}
	}
	return fence
}

// NextAt exposes the group's global clock to observers: the earliest
// pending event time across shards, false when drained. Only meaningful
// with every shard quiescent (between windows — e.g. from OnBeat).
func (g *ShardGroup) NextAt() (Time, bool) { return g.minNextAt() }

// EachBlocked calls fn for every unfinished process on every shard, in
// shard order then spawn order. Only meaningful with every shard quiescent.
func (g *ShardGroup) EachBlocked(fn func(name, blockedOn string)) {
	for _, e := range g.engines {
		e.EachBlocked(fn)
	}
}

// LiveProcs reports the number of spawned, unfinished processes across
// shards.
func (g *ShardGroup) LiveProcs() int {
	n := 0
	for _, e := range g.engines {
		n += e.Live()
	}
	return n
}

// Shards reports the number of shard engines in the group.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// minNextAt is the group's global clock: the earliest pending event time
// across shards.
func (g *ShardGroup) minNextAt() (Time, bool) {
	var t Time
	found := false
	for _, e := range g.engines {
		if at, ok := e.nextAt(); ok && (!found || at < t) {
			t, found = at, true
		}
	}
	return t, found
}

// halted reports whether any shard has halted (Halt, MaxTime, or a panic).
func (g *ShardGroup) halted() bool {
	for _, e := range g.engines {
		if e.halted {
			return true
		}
	}
	return false
}

// firstPanic returns the recorded panic of the lowest shard index, if any.
func (g *ShardGroup) firstPanic() *PanicError {
	for _, e := range g.engines {
		if e.panicked != nil {
			return e.panicked
		}
	}
	return nil
}

// blockedUnion merges every shard's blocked-process diagnostics, sorted.
func (g *ShardGroup) blockedUnion() []string {
	var blocked []string
	for _, e := range g.engines {
		if e.live > 0 {
			blocked = append(blocked, e.blockedProcs()...)
		}
	}
	sort.Strings(blocked)
	return blocked
}
