package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// spinProcs spawns n processes that sleep forever in 1us steps, generating a
// steady event stream for the caps to interrupt.
func spinProcs(e *Engine, n int) {
	for i := 0; i < n; i++ {
		e.Spawn("spinner", func(p *Proc) {
			for {
				p.Sleep(Microsecond)
			}
		})
	}
}

// drainGoroutines waits for unwound process goroutines to actually exit
// before the caller counts them. Unwinding resumes each goroutine and waits
// for its park handshake, but the final runtime exit races the counter.
func drainGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := NewEngine()
	spinProcs(e, 4)
	e.At(Time(50*Microsecond), e.Cancel)
	err := e.Run()
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Run() = %v, want *CancelError", err)
	}
	if ce.At != Time(50*Microsecond) {
		t.Fatalf("cancel observed at t=%v, want 50us", Dur(ce.At))
	}
	if e.Live() != 0 {
		t.Fatalf("%d processes still live after cancel", e.Live())
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	drainGoroutines(t, baseline)
}

// TestCancelRunsDefers: a cancelled run must still execute process defers —
// that is what guarantees external resources (worktrees, telemetry guards)
// are released when impacc-serve kills a job.
func TestCancelRunsDefers(t *testing.T) {
	e := NewEngine()
	deferRan := false
	e.Spawn("victim", func(p *Proc) {
		defer func() { deferRan = true }()
		for {
			p.Sleep(Microsecond)
		}
	})
	e.At(Time(10*Microsecond), e.Cancel)
	if err := e.Run(); err == nil {
		t.Fatal("expected CancelError")
	}
	if !deferRan {
		t.Fatal("process defer did not run on cancel")
	}
}

// TestCancelFromOtherGoroutine: Cancel is documented as the one engine entry
// point safe from any goroutine. Exercised under -race in CI.
func TestCancelFromOtherGoroutine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := NewEngine()
	spinProcs(e, 8)
	go func() {
		time.Sleep(5 * time.Millisecond)
		e.Cancel()
	}()
	err := e.Run()
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Run() = %v, want *CancelError", err)
	}
	drainGoroutines(t, baseline)
}

// TestCancelBeforeRun: cancelling before Run starts stops it on the first
// loop iteration, before any event dispatches.
func TestCancelBeforeRun(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Spawn("never", func(p *Proc) { ran = true })
	e.Cancel()
	var ce *CancelError
	if err := e.Run(); !errors.As(err, &ce) {
		t.Fatalf("Run() = %v, want *CancelError", err)
	}
	if ran {
		t.Fatal("event dispatched despite pre-run cancel")
	}
	if e.Events() != 0 {
		t.Fatalf("Events() = %d, want 0", e.Events())
	}
}

func TestMaxEventsLimit(t *testing.T) {
	baseline := runtime.NumGoroutine()
	e := NewEngine()
	e.MaxEvents = 100
	spinProcs(e, 2)
	err := e.Run()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("Run() = %v, want *LimitError", err)
	}
	if le.Resource != "events" || le.Limit != 100 {
		t.Fatalf("LimitError = %+v, want events/100", le)
	}
	if e.Events() != 100 {
		t.Fatalf("Events() = %d, want exactly the cap", e.Events())
	}
	drainGoroutines(t, baseline)
}

func TestDeadlineLimit(t *testing.T) {
	e := NewEngine()
	e.Deadline = Time(10 * Microsecond)
	spinProcs(e, 1)
	err := e.Run()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("Run() = %v, want *LimitError", err)
	}
	if le.Resource != "vtime" || le.Limit != int64(10*Microsecond) {
		t.Fatalf("LimitError = %+v, want vtime/10000", le)
	}
	// Like MaxTime, an event exactly at the deadline still runs: only
	// crossing it stops the clock.
	if e.Now() != Time(10*Microsecond) {
		t.Fatalf("clock at %v, want exactly the deadline", Dur(e.Now()))
	}
}

// TestDeadlineExactEventRuns: an event scheduled exactly at the deadline
// dispatches; the error only fires for events strictly past it.
func TestDeadlineExactEventRuns(t *testing.T) {
	e := NewEngine()
	e.Deadline = Time(Millisecond)
	atDeadline := false
	e.At(Time(Millisecond), func() { atDeadline = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil (queue drains at the deadline)", err)
	}
	if !atDeadline {
		t.Fatal("event at the deadline instant did not run")
	}
}

// TestLimitErrorDeterministic: the same run with the same cap stops at the
// same virtual instant and event count, every time.
func TestLimitErrorDeterministic(t *testing.T) {
	run := func() (Time, uint64) {
		e := NewEngine()
		e.MaxEvents = 500
		spinProcs(e, 3)
		var le *LimitError
		if err := e.Run(); !errors.As(err, &le) {
			t.Fatalf("Run() = %v, want *LimitError", err)
		}
		return e.Now(), e.Events()
	}
	at1, n1 := run()
	at2, n2 := run()
	if at1 != at2 || n1 != n2 {
		t.Fatalf("limit halt not deterministic: (%v,%d) vs (%v,%d)", at1, n1, at2, n2)
	}
}

// TestMaxTimeStillSilent: the legacy MaxTime truncation must keep returning
// nil — tools depend on "simulate this long" not being an error.
func TestMaxTimeStillSilent(t *testing.T) {
	e := NewEngine()
	e.MaxTime = Time(10 * Microsecond)
	spinProcs(e, 1)
	if err := e.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil under MaxTime", err)
	}
}
