package sim

// Engine microbenchmarks: the numbers behind BENCH_sim.json. Run with
//
//	go test -bench=. -benchmem ./internal/sim/
//
// ns/op here is ns/event (each loop iteration schedules and drains one
// event, or one wake/park round trip for process benchmarks).

import (
	"testing"
)

// BenchmarkEngineFnEvents measures the pure event-loop hot path: schedule
// one fn event per iteration and drain the queue. allocs/op is the
// allocations per event.
func BenchmarkEngineFnEvents(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Microsecond, step)
		}
	}
	e.After(Microsecond, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineHeapChurn keeps a deep event queue (1024 pending events)
// while scheduling and draining, exercising sift-up/sift-down cost.
func BenchmarkEngineHeapChurn(b *testing.B) {
	const depth = 1024
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			// Re-arm at a pseudo-random-ish future offset so pushes land
			// at different heap positions.
			e.After(Dur(1+(n*2654435761)%4096), step)
		}
	}
	for i := 0; i < depth && i < b.N; i++ {
		e.After(Dur(1+i), step)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchShardGroup drives nShards tick chains to roughly b.N total events
// under a ShardGroup with the given worker count. Tick interval 97 against
// lookahead 1000 gives ~10 events per shard per window, and every 8th tick
// posts a cross-shard event to the right neighbor, so the numbers include
// the window barriers and outbox exchange — the full PDES overhead, not
// just the engine loop.
func benchShardGroup(b *testing.B, nShards, workers int) {
	engines := make([]*Engine, nShards)
	for i := range engines {
		engines[i] = NewLPEngine(i)
	}
	g := NewShardGroup(engines, 1000, workers)
	per := b.N/nShards + 1
	for i := range engines {
		e, dst := engines[i], engines[(i+1)%nShards]
		n := 0
		var tick func()
		tick = func() {
			n++
			if n >= per {
				return
			}
			if n%8 == 0 {
				e.Post(dst, e.Now()+2000, func() {})
			}
			e.After(97, tick)
		}
		e.After(97, tick)
	}
	b.ReportAllocs()
	if err := g.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardGroup1Shard is the degenerate group — one engine, a single
// infinite window. Its delta against BenchmarkEngineFnEvents is the cost of
// running every simulation through the group coordinator.
func BenchmarkShardGroup1Shard(b *testing.B) { benchShardGroup(b, 1, 1) }

// BenchmarkShardGroup4Shards1Worker is the sharded schedule executed
// serially: window fencing and outbox exchange with zero host parallelism.
func BenchmarkShardGroup4Shards1Worker(b *testing.B) { benchShardGroup(b, 4, 1) }

// BenchmarkShardGroup4Shards4Workers runs the same schedule on four workers:
// speedup on a multi-core host, pure coordination overhead on one core.
func BenchmarkShardGroup4Shards4Workers(b *testing.B) { benchShardGroup(b, 4, 4) }

// BenchmarkProcSleepWake measures the process context-switch path: one
// running process sleeping b.N times (one event + two channel handoffs per
// iteration).
func BenchmarkProcSleepWake(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSameTimestampBurst schedules bursts of events at an identical
// timestamp — the pattern produced by a node's message handler completing
// many commands at one virtual instant.
func BenchmarkSameTimestampBurst(b *testing.B) {
	const burst = 64
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var arm func()
	arm = func() {
		at := e.Now() + Time(Microsecond)
		for i := 0; i < burst; i++ {
			e.At(at, func() { n++ })
		}
		if n+burst < b.N {
			e.At(at, arm)
		}
	}
	arm()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
