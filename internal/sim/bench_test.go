package sim

// Engine microbenchmarks: the numbers behind BENCH_sim.json. Run with
//
//	go test -bench=. -benchmem ./internal/sim/
//
// ns/op here is ns/event (each loop iteration schedules and drains one
// event, or one wake/park round trip for process benchmarks).

import (
	"testing"
)

// BenchmarkEngineFnEvents measures the pure event-loop hot path: schedule
// one fn event per iteration and drain the queue. allocs/op is the
// allocations per event.
func BenchmarkEngineFnEvents(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(Microsecond, step)
		}
	}
	e.After(Microsecond, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineHeapChurn keeps a deep event queue (1024 pending events)
// while scheduling and draining, exercising sift-up/sift-down cost.
func BenchmarkEngineHeapChurn(b *testing.B) {
	const depth = 1024
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			// Re-arm at a pseudo-random-ish future offset so pushes land
			// at different heap positions.
			e.After(Dur(1+(n*2654435761)%4096), step)
		}
	}
	for i := 0; i < depth && i < b.N; i++ {
		e.After(Dur(1+i), step)
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSleepWake measures the process context-switch path: one
// running process sleeping b.N times (one event + two channel handoffs per
// iteration).
func BenchmarkProcSleepWake(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSameTimestampBurst schedules bursts of events at an identical
// timestamp — the pattern produced by a node's message handler completing
// many commands at one virtual instant.
func BenchmarkSameTimestampBurst(b *testing.B) {
	const burst = 64
	e := NewEngine()
	b.ReportAllocs()
	n := 0
	var arm func()
	arm = func() {
		at := e.Now() + Time(Microsecond)
		for i := 0; i < burst; i++ {
			e.At(at, func() { n++ })
		}
		if n+burst < b.N {
			e.At(at, arm)
		}
	}
	arm()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
