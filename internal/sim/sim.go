// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the virtual-time substrate under every IMPACC
// experiment: MPI tasks, message handler threads, and device activity queues
// all run as cooperative sim processes over a shared virtual clock.
//
// Determinism: exactly one process runs at a time. Events are totally
// ordered by (time, sequence number), so two runs with the same inputs
// produce identical virtual schedules regardless of Go's goroutine
// scheduling.
//
// The event queue is a concrete 4-ary min-heap over pooled event structs
// (no container/heap interface boxing, no per-event allocation in steady
// state), with a FIFO side-queue for events scheduled at the current
// instant so same-timestamp bursts never touch the heap. See DESIGN.md
// "Engine internals" for the ordering argument.
package sim

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"impacc/internal/telemetry"
)

// Time is an absolute virtual time in nanoseconds since the start of the run.
type Time int64

// Dur is a span of virtual time in nanoseconds.
type Dur int64

// Common durations.
const (
	Nanosecond  Dur = 1
	Microsecond Dur = 1000
	Millisecond Dur = 1000 * 1000
	Second      Dur = 1000 * 1000 * 1000
)

// Seconds reports the duration in floating-point seconds.
func (d Dur) Seconds() float64 { return float64(d) / 1e9 }

// Seconds reports the time in floating-point seconds since the run started.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (d Dur) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/1e3)
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(d)/1e9)
	}
}

// DurFromSeconds converts floating-point seconds to a Dur, rounding to the
// nearest nanosecond and never returning a negative duration for a
// non-negative input.
func DurFromSeconds(s float64) Dur {
	if s <= 0 {
		return 0
	}
	return Dur(s*1e9 + 0.5)
}

// event is a scheduled occurrence. If proc is non-nil the event resumes that
// process; otherwise fn runs inline in the engine loop. Events are pooled on
// a per-engine freelist; no pointer to one may outlive its dispatch.
type event struct {
	at Time
	// dl packs the canonical tie-break pair (depth, lp) into one word —
	// depth in the high 32 bits, lp in the low 32 — so eventLess compares
	// it numerically and lexicographic (depth, lp) order is preserved.
	//
	// depth is the same-instant causal depth: 0 for events scheduled for a
	// future instant (or injected across shards), d+1 for events scheduled
	// at the current instant while dispatching a depth-d event. Within one
	// engine, seq order already equals (depth, seq) order — children are
	// always stamped after every event of their parent's generation — so
	// the stamp changes nothing for a single engine; it exists so events
	// from different shards merge into one total order that a single
	// engine would also have produced.
	//
	// lp is the logical process (shard) that scheduled the event. Ties at
	// equal (at, depth) between shards break on (lp, seq), which depends
	// only on the schedule, never on host scheduling.
	dl  uint64
	seq uint64

	proc *Proc
	fn   func()
}

// dlKey packs a (depth, lp) pair into an event's dl word.
func dlKey(depth uint32, lp int32) uint64 {
	return uint64(depth)<<32 | uint64(uint32(lp))
}

// eventLess is the total order on events: (at, depth, lp, seq) ascending.
// For events stamped by a single engine this is identical to the historical
// (at, seq) order (see event.dl); across engines it is the canonical
// merge order of the sharded runtime.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dl != b.dl {
		return a.dl < b.dl
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation engine. The zero value is not ready;
// use NewEngine.
type Engine struct {
	now Time
	seq uint64

	// lp is this engine's logical-process id when it runs as one shard of a
	// ShardGroup (the node index under core's placement). Standalone
	// engines keep 0; every event carries its scheduler's lp so cross-shard
	// ties break deterministically.
	lp int32
	// dispatchDepth is the depth of the event currently being dispatched,
	// or -1 between dispatches; schedule derives same-instant child depths
	// from it (see event.depth).
	dispatchDepth int32
	// outbox buffers events posted to other shards' timelines (Post). A
	// ShardGroup drains it at every window barrier; standalone engines
	// never fill it.
	outbox []remoteEvent
	// winCap, when non-zero, caps this engine's dispatches inside the
	// current window (the ShardGroup's deterministic MaxEvents
	// enforcement): reaching it pauses the shard until the barrier, like an
	// exhausted fence, without halting. winCount counts the window's
	// dispatches; winStamps, when non-nil, records their canonical
	// (at, dl, seq) stamps so the group can name the budget-exhausting
	// event exactly. All three are rearmed by the coordinator at every
	// window barrier.
	winCap    uint64
	winCount  uint64
	winStamps []limitStamp

	// heap is a 4-ary min-heap on (at, seq) holding every pending event
	// scheduled for a future instant. Events for the current instant
	// bypass it (see nowQ).
	heap []*event
	// nowQ is a FIFO of events scheduled at exactly the current virtual
	// time. Because seq grows monotonically and the clock never moves
	// backwards, every heap entry at time now predates every nowQ entry,
	// so "drain heap entries at now, then drain nowQ" reproduces the
	// global (at, seq) order without any heap traffic for same-instant
	// bursts. nowQHead indexes the next entry to dispatch.
	nowQ     []*event
	nowQHead int
	// pool is the event freelist. Dispatch returns structs here; schedule
	// reuses them, so steady-state scheduling does not allocate.
	pool []*event

	parked chan struct{}
	// procs holds every spawned process, kept only for deadlock
	// diagnostics and post-halt unwinding; finished entries are skipped
	// (and compacted opportunistically). live counts unfinished ones.
	procs     []*Proc
	live      int
	halted    bool
	unwinding bool
	panicked  *PanicError

	// MaxTime, when non-zero, stops the run once the clock would pass it.
	// An event scheduled exactly at MaxTime still runs. The truncation is
	// silent: Run returns nil (tools use this for "simulate this long").
	MaxTime Time

	// Deadline, when non-zero, is a hard virtual-time cap: like MaxTime,
	// but exceeding it is an error — Run returns a *LimitError. Hosting
	// tools (the bench harness, impacc-serve) use it to kill runaway jobs.
	Deadline Time
	// MaxEvents, when non-zero, bounds the number of dispatched events;
	// exceeding it makes Run return a *LimitError.
	MaxEvents uint64
	// dispatched counts events dispatched so far (see Events).
	dispatched uint64
	// flight, when non-nil, is the flight recorder's ring of recent event
	// stamps (see flight.go); flightHead is the next slot to overwrite.
	flight     []EventStamp
	flightHead int
	// cancelled is set by Cancel — the only engine field touched from
	// outside the simulation goroutine, hence atomic. The run loop polls
	// it before every dispatch.
	cancelled atomic.Bool

	// Metrics is the engine's telemetry registry. Every FIFOResource
	// reports occupancy into it, and higher layers (fabric, devices,
	// message hubs, tasks) register their own families. Replace it (via
	// AdoptMetrics) before creating resources to aggregate several runs
	// into one registry.
	Metrics *telemetry.Registry
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	e := &Engine{
		parked:        make(chan struct{}),
		dispatchDepth: -1,
	}
	e.AdoptMetrics(telemetry.NewRegistry())
	return e
}

// NewLPEngine returns an engine whose events are stamped with logical
// process id lp. Shard coordinators must create their member engines this
// way before scheduling anything on them, so every event (including pre-run
// spawns) carries the shard that produced it.
func NewLPEngine(lp int) *Engine {
	e := NewEngine()
	e.lp = int32(lp)
	return e
}

// LP returns the engine's logical-process id (0 for standalone engines).
func (e *Engine) LP() int { return int(e.lp) }

// AdoptMetrics makes reg the engine's registry and points its clock at the
// virtual time, so metric mutations are stamped deterministically.
func (e *Engine) AdoptMetrics(reg *telemetry.Registry) {
	e.Metrics = reg
	reg.SetClock(func() int64 { return int64(e.now) })
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Live reports how many spawned processes have not yet finished.
func (e *Engine) Live() int { return e.live }

// Events reports how many events the engine has dispatched so far.
func (e *Engine) Events() uint64 { return e.dispatched }

// Cancel asks a running engine to stop. It is the one engine entry point
// that is safe to call from any goroutine at any time: it only sets an
// atomic flag, which the run loop polls before each dispatch. Run then
// unwinds every unfinished process (defers run, no goroutines leak) and
// returns a *CancelError. Cancelling an engine that never runs again is a
// no-op beyond marking it cancelled.
func (e *Engine) Cancel() { e.cancelled.Store(true) }

// Cancelled reports whether Cancel has been called.
func (e *Engine) Cancelled() bool { return e.cancelled.Load() }

// alloc takes an event struct off the freelist, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return ev
	}
	return &event{}
}

// free clears an event's references and returns it to the freelist.
func (e *Engine) free(ev *event) {
	ev.proc = nil
	ev.fn = nil
	e.pool = append(e.pool, ev)
}

// pushHeap inserts ev into the 4-ary heap (sift-up).
func (e *Engine) pushHeap(ev *event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// popHeap removes and returns the minimum event (sift-down).
func (e *Engine) popHeap() *event {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	if n > 0 {
		// Re-seat the last element at the root and sift down, picking
		// the smallest of up to four children each level.
		i := 0
		for {
			first := i<<2 + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(h[c], h[best]) {
					best = c
				}
			}
			if !eventLess(h[best], last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	e.heap = h
	return min
}

// schedule inserts an event at absolute time t (clamped to now). Events for
// the current instant go to the FIFO nowQ; future events go to the heap.
func (e *Engine) schedule(t Time, p *Proc, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.alloc()
	var depth uint32
	if t == e.now {
		depth = uint32(e.dispatchDepth + 1)
	}
	ev.at, ev.dl, ev.seq, ev.proc, ev.fn = t, dlKey(depth, e.lp), e.seq, p, fn
	if t == e.now {
		e.nowQ = append(e.nowQ, ev)
	} else {
		e.pushHeap(ev)
	}
}

// remoteEvent is an event bound for another shard's timeline, buffered in
// the scheduling engine's outbox until the next window barrier.
type remoteEvent struct {
	dst *Engine
	at  Time
	fn  func()
	lp  int32
	seq uint64
}

// Post schedules fn at absolute time at on dst's timeline. When dst is the
// engine itself this is exactly At; otherwise the event is stamped with this
// engine's (lp, seq) — so the merge order is decided by the sender's
// schedule, not by delivery order — and buffered until the coordinator
// exchanges outboxes at a synchronization barrier. Cross-shard posts must
// target a strictly future instant on the receiving shard; conservative
// lookahead guarantees that, and the IMPACC_SIM_CHECK invariant check turns
// violations into panics.
func (e *Engine) Post(dst *Engine, at Time, fn func()) {
	if dst == e {
		e.schedule(at, nil, fn)
		return
	}
	e.seq++
	e.outbox = append(e.outbox, remoteEvent{dst: dst, at: at, fn: fn, lp: e.lp, seq: e.seq})
}

// simCheck gates the cross-shard causality assertion: set IMPACC_SIM_CHECK
// to any non-empty value to panic on an event injected into a shard's past.
var simCheck = os.Getenv("IMPACC_SIM_CHECK") != ""

// inject lands a cross-shard event in this engine's heap, carrying the
// sender's stamp. Called only between windows, with the engine quiescent.
func (e *Engine) inject(at Time, fn func(), lp int32, seq uint64) {
	if simCheck && at <= e.now && e.dispatched > 0 {
		panic(fmt.Sprintf("sim: causality violation: event from lp %d injected at t=%d into shard %d already at t=%d",
			lp, int64(at), e.lp, int64(e.now)))
	}
	ev := e.alloc()
	ev.at, ev.dl, ev.seq, ev.fn = at, dlKey(0, lp), seq, fn
	e.pushHeap(ev)
}

// At schedules fn to run in engine context at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run in engine context after duration d.
func (e *Engine) After(d Dur, fn func()) { e.schedule(e.now+Time(d), nil, fn) }

// Proc is a simulation process: a goroutine that runs cooperatively under
// the engine. At any instant at most one Proc executes.
type Proc struct {
	Name   string
	eng    *Engine
	resume chan struct{}
	done   bool
	// unwind, when set, makes the next resume panic the haltUnwind
	// sentinel so the goroutine's defers run and it exits.
	unwind bool
	// blockedOn describes what the process is waiting for, for deadlock
	// diagnostics.
	blockedOn string
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process executing fn, scheduled to start at the current
// virtual time (after already-queued events at this time).
//
// If fn panics, the engine captures the panic value, halts the run, and
// Run returns a *PanicError — a stray panic in one process must not hang
// the host program.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.live++
	e.maybeCompactProcs()
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && !IsHaltUnwind(r) {
				if e.panicked == nil {
					e.panicked = &PanicError{Proc: name, Value: r}
				}
				e.halted = true
			}
			p.done = true
			e.live--
			e.parked <- struct{}{}
		}()
		if !p.unwind {
			fn(p)
		}
	}()
	e.schedule(t, p, nil)
	return p
}

// maybeCompactProcs drops finished entries from the diagnostics slice once
// they dominate it, keeping Spawn amortized O(1) without unbounded growth.
func (e *Engine) maybeCompactProcs() {
	if e.unwinding || len(e.procs) < 64 || len(e.procs) < 2*e.live {
		return
	}
	kept := e.procs[:0]
	for _, p := range e.procs {
		if !p.done {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(e.procs); i++ {
		e.procs[i] = nil
	}
	e.procs = kept
}

// PanicError reports that a simulation process panicked.
type PanicError struct {
	Proc  string
	Value interface{}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v", e.Proc, e.Value)
}

// Unwrap exposes a panicked error value for errors.As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// haltUnwind is the sentinel panicked through abandoned processes after a
// halt so their goroutines (and defers) unwind instead of leaking.
type haltUnwind struct{}

// IsHaltUnwind reports whether a recovered panic value is the engine's
// post-halt unwind sentinel. Code that recovers inside a sim process (to
// translate panics into errors, say) must re-panic values for which this
// returns true, or halted engines cannot release their goroutines.
func IsHaltUnwind(v interface{}) bool {
	_, ok := v.(haltUnwind)
	return ok
}

// park blocks the calling process and returns control to the engine loop.
// Something must later wake the process via engine.wake.
func (p *Proc) park(why string) {
	p.blockedOn = why
	p.eng.parked <- struct{}{}
	<-p.resume
	if p.unwind {
		panic(haltUnwind{})
	}
	p.blockedOn = ""
}

// wake schedules process p to resume at time t.
func (e *Engine) wake(p *Proc, t Time) { e.schedule(t, p, nil) }

// runProc hands control to p until it parks or finishes.
func (e *Engine) runProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.parked
}

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Dur) {
	if d < 0 {
		d = 0
	}
	p.eng.wake(p, p.eng.now+Time(d))
	p.park("sleep")
}

// SleepUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	p.eng.wake(p, t)
	p.park("sleepUntil")
}

// Yield reschedules the process at the current time, letting other
// already-queued events at this instant run first.
func (p *Proc) Yield() {
	p.eng.wake(p, p.eng.now)
	p.park("yield")
}

// CancelError reports that the run was stopped by Engine.Cancel before its
// event queue drained. The engine still unwound every process, so the halt
// is clean — but nothing about the truncated run (telemetry, reports) is
// deterministic, because the cancel instant came from outside virtual time.
type CancelError struct {
	At Time // virtual time at which the cancel was observed
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("sim: run cancelled at t=%v", Dur(e.At))
}

// LimitError reports that a configured resource cap (Engine.Deadline or
// Engine.MaxEvents) stopped the run. Unlike a cancel, hitting a limit is
// deterministic: the same run with the same caps always stops at the same
// event.
type LimitError struct {
	Resource string // "vtime" or "events"
	Limit    int64  // the configured cap
	At       Time   // virtual time at which the cap was hit
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: %s limit %d exceeded at t=%v", e.Resource, e.Limit, Dur(e.At))
}

// DeadlockError reports that the run ended with live processes blocked on
// conditions that can never fire.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) blocked: %v",
		Dur(e.Time), len(e.Blocked), e.Blocked)
}

// timeInfinity is a fence beyond any schedulable instant.
const timeInfinity = Time(1<<63 - 1)

// Run executes events until the queue drains. It returns a *DeadlockError if
// processes remain blocked when no events are left, or nil on clean
// completion (all spawned processes finished).
//
// However the run ends — clean, halted, deadlocked, or panicked — Run
// unwinds every unfinished process before returning: each is resumed with a
// private sentinel that panics through its stack (running defers) and is
// swallowed by the engine, so no goroutines leak and tools may run many
// engines in one process.
func (e *Engine) Run() error {
	stopErr := e.runUntil(timeInfinity)
	var err error
	if e.panicked != nil {
		err = e.panicked
	} else if stopErr != nil {
		err = stopErr
	} else if e.live > 0 && !e.halted {
		err = &DeadlockError{Time: e.now, Blocked: e.blockedProcs()}
	}
	e.unwindProcs()
	if err == nil && e.panicked != nil {
		// A defer panicked for real while unwinding; surface it.
		err = e.panicked
	}
	return err
}

// EachBlocked calls fn for every unfinished process and what it currently
// waits on, in spawn order. Call only with the engine quiescent (between
// windows, or after Run) — observers like the progress heartbeat use it at
// group barriers, where every live process is parked.
func (e *Engine) EachBlocked(fn func(name, blockedOn string)) {
	for _, p := range e.procs {
		if p != nil && !p.done {
			fn(p.Name, p.blockedOn)
		}
	}
}

// blockedProcs lists the unfinished processes and what each waits on,
// sorted, for deadlock diagnostics.
func (e *Engine) blockedProcs() []string {
	var blocked []string
	for _, p := range e.procs {
		if p.done {
			continue
		}
		blocked = append(blocked, fmt.Sprintf("%s (on %s)", p.Name, p.blockedOn))
	}
	sort.Strings(blocked)
	return blocked
}

// runUntil executes events strictly before fence and returns the stop
// error, if any. It returns nil when the queue drains, when the next event
// lies at or past the fence (the event stays queued; the engine is
// resumable), or when the engine halts (by Halt, MaxTime, or a process
// panic — check Halted / panicked). Shard coordinators call it repeatedly
// with successive window fences; Run calls it once with an infinite fence.
func (e *Engine) runUntil(fence Time) error {
	for !e.halted {
		if e.cancelled.Load() {
			e.halted = true
			return &CancelError{At: e.now}
		}
		if e.MaxEvents != 0 && e.dispatched >= e.MaxEvents {
			e.halted = true
			return &LimitError{Resource: "events", Limit: int64(e.MaxEvents), At: e.now}
		}
		// An exhausted window cap pauses the shard without halting it — the
		// next event stays queued and the group decides at the barrier
		// whether the combined budget is spent (see checkEventBudget).
		if e.winCap != 0 && e.winCount >= e.winCap {
			return nil
		}
		var ev *event
		switch {
		case len(e.heap) > 0 && e.heap[0].at == e.now:
			// Heap entries at the current instant were scheduled
			// before the clock reached it (or injected with depth 0),
			// so they precede every nowQ entry in canonical order.
			ev = e.popHeap()
		case e.nowQHead < len(e.nowQ):
			ev = e.nowQ[e.nowQHead]
			e.nowQ[e.nowQHead] = nil
			e.nowQHead++
		default:
			// Current instant exhausted: advance the clock.
			e.nowQ = e.nowQ[:0]
			e.nowQHead = 0
			if len(e.heap) == 0 {
				return nil
			}
			if e.heap[0].at >= fence {
				return nil // window exhausted; event stays queued
			}
			ev = e.popHeap()
			if e.Deadline != 0 && ev.at > e.Deadline {
				e.free(ev)
				e.halted = true
				return &LimitError{Resource: "vtime", Limit: int64(e.Deadline), At: e.now}
			}
			if e.MaxTime != 0 && ev.at > e.MaxTime {
				e.free(ev)
				e.halted = true
				return nil
			}
			e.now = ev.at
		}
		// Copy out and free before dispatch: the handler may schedule,
		// which reuses pooled events.
		p, fn := ev.proc, ev.fn
		e.dispatchDepth = int32(ev.dl >> 32)
		if e.flight != nil {
			e.recordFlight(ev.at, ev.dl, ev.seq, p)
		}
		if e.winStamps != nil {
			e.winStamps = append(e.winStamps, limitStamp{at: ev.at, dl: ev.dl, seq: ev.seq})
		}
		e.free(ev)
		e.dispatched++
		e.winCount++
		if p != nil {
			if !p.done { // lazy cancellation: skip dead processes
				e.runProc(p)
			}
		} else if fn != nil {
			fn()
		}
		e.dispatchDepth = -1
	}
	return nil
}

// nextAt reports the time of the engine's earliest pending event, or false
// when its queues are empty.
func (e *Engine) nextAt() (Time, bool) {
	if e.nowQHead < len(e.nowQ) {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].at, true
	}
	return 0, false
}

// unwindProcs resumes every unfinished process with the unwind flag set so
// it panics the haltUnwind sentinel, runs its defers, and exits. Processes
// spawned while unwinding (by a defer) are unwound too, without ever
// running their body.
func (e *Engine) unwindProcs() {
	e.unwinding = true
	for i := 0; i < len(e.procs); i++ {
		p := e.procs[i]
		for !p.done {
			p.unwind = true
			e.runProc(p)
		}
	}
	e.unwinding = false
	for i := range e.procs {
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
}

// Halt stops the run after the current event completes. Run then unwinds
// any remaining processes (their defers run; their bodies do not continue)
// before returning, so halting leaks nothing and is safe in tests and
// long-lived tools alike.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether the engine stopped via Halt or MaxTime.
func (e *Engine) Halted() bool { return e.halted }
