// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the virtual-time substrate under every IMPACC
// experiment: MPI tasks, message handler threads, and device activity queues
// all run as cooperative sim processes over a shared virtual clock.
//
// Determinism: exactly one process runs at a time. Events are totally
// ordered by (time, sequence number), so two runs with the same inputs
// produce identical virtual schedules regardless of Go's goroutine
// scheduling.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"impacc/internal/telemetry"
)

// Time is an absolute virtual time in nanoseconds since the start of the run.
type Time int64

// Dur is a span of virtual time in nanoseconds.
type Dur int64

// Common durations.
const (
	Nanosecond  Dur = 1
	Microsecond Dur = 1000
	Millisecond Dur = 1000 * 1000
	Second      Dur = 1000 * 1000 * 1000
)

// Seconds reports the duration in floating-point seconds.
func (d Dur) Seconds() float64 { return float64(d) / 1e9 }

// Seconds reports the time in floating-point seconds since the run started.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (d Dur) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/1e3)
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(d)/1e9)
	}
}

// DurFromSeconds converts floating-point seconds to a Dur, rounding to the
// nearest nanosecond and never returning a negative duration for a
// non-negative input.
func DurFromSeconds(s float64) Dur {
	if s <= 0 {
		return 0
	}
	return Dur(s*1e9 + 0.5)
}

// event is a scheduled occurrence. If proc is non-nil the event resumes that
// process; otherwise fn runs inline in the engine loop.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not ready;
// use NewEngine.
type Engine struct {
	now      Time
	seq      uint64
	evq      eventHeap
	parked   chan struct{}
	procs    map[*Proc]struct{}
	halted   bool
	panicked *PanicError

	// MaxTime, when non-zero, stops the run once the clock would pass it.
	MaxTime Time

	// Metrics is the engine's telemetry registry. Every FIFOResource
	// reports occupancy into it, and higher layers (fabric, devices,
	// message hubs, tasks) register their own families. Replace it (via
	// AdoptMetrics) before creating resources to aggregate several runs
	// into one registry.
	Metrics *telemetry.Registry
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	e := &Engine{
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
	e.AdoptMetrics(telemetry.NewRegistry())
	return e
}

// AdoptMetrics makes reg the engine's registry and points its clock at the
// virtual time, so metric mutations are stamped deterministically.
func (e *Engine) AdoptMetrics(reg *telemetry.Registry) {
	e.Metrics = reg
	reg.SetClock(func() int64 { return int64(e.now) })
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule inserts an event at absolute time t (clamped to now).
func (e *Engine) schedule(t Time, p *Proc, fn func()) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, proc: p, fn: fn}
	heap.Push(&e.evq, ev)
	return ev
}

// At schedules fn to run in engine context at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run in engine context after duration d.
func (e *Engine) After(d Dur, fn func()) { e.schedule(e.now+Time(d), nil, fn) }

// Proc is a simulation process: a goroutine that runs cooperatively under
// the engine. At any instant at most one Proc executes.
type Proc struct {
	Name   string
	eng    *Engine
	resume chan struct{}
	done   bool
	// blockedOn describes what the process is waiting for, for deadlock
	// diagnostics.
	blockedOn string
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process executing fn, scheduled to start at the current
// virtual time (after already-queued events at this time).
//
// If fn panics, the engine captures the panic value, halts the run, and
// Run returns a *PanicError — a stray panic in one process must not hang
// the host program.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.panicked = &PanicError{Proc: name, Value: r}
				e.halted = true
			}
			p.done = true
			delete(e.procs, p)
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(t, p, nil)
	return p
}

// PanicError reports that a simulation process panicked.
type PanicError struct {
	Proc  string
	Value interface{}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v", e.Proc, e.Value)
}

// Unwrap exposes a panicked error value for errors.As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// park blocks the calling process and returns control to the engine loop.
// Something must later wake the process via engine.wake.
func (p *Proc) park(why string) {
	p.blockedOn = why
	p.eng.parked <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// wake schedules process p to resume at time t.
func (e *Engine) wake(p *Proc, t Time) { e.schedule(t, p, nil) }

// runProc hands control to p until it parks or finishes.
func (e *Engine) runProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.parked
}

// Sleep suspends the process for duration d of virtual time.
func (p *Proc) Sleep(d Dur) {
	if d < 0 {
		d = 0
	}
	p.eng.wake(p, p.eng.now+Time(d))
	p.park("sleep")
}

// SleepUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	p.eng.wake(p, t)
	p.park("sleepUntil")
}

// Yield reschedules the process at the current time, letting other
// already-queued events at this instant run first.
func (p *Proc) Yield() {
	p.eng.wake(p, p.eng.now)
	p.park("yield")
}

// DeadlockError reports that the run ended with live processes blocked on
// conditions that can never fire.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v: %d process(es) blocked: %v",
		Dur(e.Time), len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains. It returns a *DeadlockError if
// processes remain blocked when no events are left, or nil on clean
// completion (all spawned processes finished).
func (e *Engine) Run() error {
	for e.evq.Len() > 0 && !e.halted {
		ev := heap.Pop(&e.evq).(*event)
		if e.MaxTime != 0 && ev.at > e.MaxTime {
			e.halted = true
			break
		}
		e.now = ev.at
		if ev.proc != nil {
			if !ev.proc.done {
				e.runProc(ev.proc)
			}
			continue
		}
		if ev.fn != nil {
			ev.fn()
		}
	}
	if e.panicked != nil {
		return e.panicked
	}
	if len(e.procs) > 0 && !e.halted {
		var blocked []string
		for p := range e.procs {
			blocked = append(blocked, fmt.Sprintf("%s (on %s)", p.Name, p.blockedOn))
		}
		sort.Strings(blocked)
		return &DeadlockError{Time: e.now, Blocked: blocked}
	}
	return nil
}

// Halt stops the run after the current event completes. Remaining blocked
// processes are abandoned (their goroutines stay parked until process exit),
// so Halt is intended for command-line tools and fatal-error paths, not for
// tests that run many engines.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether the engine stopped via Halt or MaxTime.
func (e *Engine) Halted() bool { return e.halted }
