package sim

import "impacc/internal/telemetry"

// Synchronization primitives for simulation processes. All of them follow
// the engine's determinism rule: waiters are woken in FIFO order via
// scheduled events, never by running inline.

// Event is a one-shot broadcast: processes block in Wait until Fire, after
// which Wait returns immediately forever.
type Event struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
	onFire  []func()
	why     string
}

// NewEvent returns an unfired event. why labels deadlock diagnostics.
func (e *Engine) NewEvent(why string) *Event {
	return &Event{eng: e, why: why}
}

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event and wakes all waiters in arrival order. Firing twice
// is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		ev.eng.wake(p, ev.eng.now)
	}
	ev.waiters = nil
	cbs := ev.onFire
	ev.onFire = nil
	for _, fn := range cbs {
		fn()
	}
}

// OnFire registers fn to run when the event fires (immediately if it
// already has). Callbacks run in engine context before waiters resume.
func (ev *Event) OnFire(fn func()) {
	if ev.fired {
		fn()
		return
	}
	ev.onFire = append(ev.onFire, fn)
}

// Wait blocks p until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.park("event:" + ev.why)
}

// Cond is a reusable wait list: Wait blocks until a later WakeOne/WakeAll.
// Unlike sync.Cond there is no lock: the engine's single-runner rule makes
// check-then-wait atomic.
type Cond struct {
	eng     *Engine
	waiters []*Proc
	why     string
}

// NewCond returns an empty condition.
func (e *Engine) NewCond(why string) *Cond { return &Cond{eng: e, why: why} }

// Wait blocks p until woken.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park("cond:" + c.why)
}

// WakeOne wakes the longest-waiting process, if any, and reports whether one
// was woken.
func (c *Cond) WakeOne() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.eng.wake(p, c.eng.now)
	return true
}

// WakeAll wakes every waiting process in arrival order.
func (c *Cond) WakeAll() {
	for _, p := range c.waiters {
		c.eng.wake(p, c.eng.now)
	}
	c.waiters = c.waiters[:0]
}

// Waiting reports the number of blocked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Semaphore is a counting semaphore with FIFO acquisition order.
type Semaphore struct {
	eng     *Engine
	avail   int
	waiters []*Proc
	why     string
}

// NewSemaphore returns a semaphore with n initial permits.
func (e *Engine) NewSemaphore(n int, why string) *Semaphore {
	return &Semaphore{eng: e, avail: n, why: why}
}

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 && len(s.waiters) == 0 {
		s.avail--
		return
	}
	s.waiters = append(s.waiters, p)
	p.park("sem:" + s.why)
	// The releaser transferred a permit directly to us.
}

// Release returns one permit, waking the longest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		s.eng.wake(p, s.eng.now)
		return
	}
	s.avail++
}

// Available reports the current number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// FIFOResource models a serialized service center such as a PCIe link, a
// QPI hop, a NIC, or a memory channel: requests occupy it back to back in
// arrival order. It tracks the time the resource becomes free rather than
// running its own process, which keeps large topologies cheap.
type FIFOResource struct {
	eng    *Engine
	freeAt Time
	// BusyTime accumulates total occupied time, for utilization reports.
	BusyTime Dur
	// Uses counts completed occupations.
	Uses uint64
	name string
	mon  *telemetry.ResourceMonitor
}

// NewFIFOResource returns an idle resource. The resource reports every
// occupation (queue-wait and busy time) to the engine's metrics registry
// under its name.
func (e *Engine) NewFIFOResource(name string) *FIFOResource {
	r := &FIFOResource{eng: e, name: name}
	if e.Metrics != nil {
		r.mon = e.Metrics.Resource(name)
	}
	return r
}

// Monitor exposes the resource's telemetry monitor (nil when the engine
// carries no registry).
func (r *FIFOResource) Monitor() *telemetry.ResourceMonitor { return r.mon }

// observe reports one occupation that waited from arrival to start.
func (r *FIFOResource) observe(arrival, start Time, occupy Dur) {
	if r.mon != nil {
		r.mon.Observe(int64(start-arrival), int64(occupy))
	}
}

// Name returns the resource's label.
func (r *FIFOResource) Name() string { return r.name }

// Use occupies the resource for occupy time starting when it becomes free,
// then keeps the caller blocked for a further tail (latency that does not
// occupy the resource, e.g. propagation delay). It returns the time the
// occupation started.
func (r *FIFOResource) Use(p *Proc, occupy, tail Dur) Time {
	if occupy < 0 {
		occupy = 0
	}
	if tail < 0 {
		tail = 0
	}
	start := r.eng.now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + Time(occupy)
	r.BusyTime += occupy
	r.Uses++
	r.observe(r.eng.now, start, occupy)
	p.SleepUntil(r.freeAt + Time(tail))
	return start
}

// UseAsync occupies the resource without blocking any process and returns
// the completion time. It is used by device copy engines whose completion is
// signalled through stream events rather than a blocked caller.
func (r *FIFOResource) UseAsync(occupy Dur) (start, end Time) {
	if occupy < 0 {
		occupy = 0
	}
	start = r.eng.now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + Time(occupy)
	r.BusyTime += occupy
	r.Uses++
	r.observe(r.eng.now, start, occupy)
	return start, r.freeAt
}

// UseAsyncFrom occupies the resource like UseAsync, but for a request whose
// leading edge reached it at earliest (which may precede the current time —
// a network transfer's first byte arrives one occupancy ahead of its last).
// The occupation starts at max(earliest, free) and the wait observed by the
// monitor is measured from earliest.
func (r *FIFOResource) UseAsyncFrom(earliest Time, occupy Dur) (start, end Time) {
	if occupy < 0 {
		occupy = 0
	}
	start = earliest
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + Time(occupy)
	r.BusyTime += occupy
	r.Uses++
	r.observe(earliest, start, occupy)
	return start, r.freeAt
}

// FreeAt reports when the resource next becomes idle.
func (r *FIFOResource) FreeAt() Time { return r.freeAt }

// CoUseAsync occupies all given resources for the same interval, starting
// when every one of them is free. It models transfers that hold several
// links at once (e.g. a peer-to-peer PCIe copy holding both device links).
// At least one resource must be given.
func CoUseAsync(occupy Dur, rs ...*FIFOResource) (start, end Time) {
	if occupy < 0 {
		occupy = 0
	}
	start = rs[0].eng.now
	for _, r := range rs {
		if r.freeAt > start {
			start = r.freeAt
		}
	}
	end = start + Time(occupy)
	for _, r := range rs {
		r.freeAt = end
		r.BusyTime += occupy
		r.Uses++
		r.observe(r.eng.now, start, occupy)
	}
	return start, end
}

// Queue is an unbounded FIFO of arbitrary items with blocking receive.
// Multiple consumers are served in FIFO order.
type Queue struct {
	eng   *Engine
	items []interface{}
	cond  *Cond
}

// NewQueue returns an empty queue.
func (e *Engine) NewQueue(why string) *Queue {
	return &Queue{eng: e, cond: e.NewCond("queue:" + why)}
}

// Put appends an item and wakes one waiting consumer. Put never blocks.
func (q *Queue) Put(item interface{}) {
	q.items = append(q.items, item)
	q.cond.WakeOne()
}

// Get removes and returns the oldest item, blocking p until one exists.
func (q *Queue) Get(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.cond.Wait(p)
	}
	item := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return item
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	item := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return item, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }
