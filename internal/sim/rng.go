package sim

// RNG is a SplitMix64 pseudo-random generator. Every source of randomness in
// the repository (EP's random pairs, jitter models, test generators) derives
// from explicitly seeded RNGs so runs are reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent generator, useful for giving each task its own
// stream from one master seed.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
