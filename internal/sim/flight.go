package sim

import (
	"encoding/json"
	"io"
)

// The flight recorder answers "what was this run doing just before it
// died?" for runs that end abnormally — cancelled, capped by a
// deadline/event budget, deadlocked, or killed by the IMPACC_SIM_CHECK
// causality panic. Each armed engine keeps a fixed-size ring of the most
// recent dispatched event stamps; dumping the group yields those rings
// plus the parked-process table per shard. Recording only ever touches
// engine-local state from the engine's own dispatch loop, so it costs a
// few stores per event and nothing when disarmed.

// EventStamp is one dispatched event as the flight recorder saw it: the
// canonical (at, seq) position, the scheduling shard, and the kind — the
// resumed process's name, or "fn" for inline engine callbacks.
type EventStamp struct {
	Kind string `json:"kind"`
	LP   int    `json:"lp"`
	AtNs int64  `json:"at_ns"`
	Seq  uint64 `json:"seq"`
}

// ParkedProc is one blocked process at dump time.
type ParkedProc struct {
	Name      string `json:"name"`
	BlockedOn string `json:"blocked_on"`
}

// ShardFlight is one shard's slice of a stall dump.
type ShardFlight struct {
	LP     int    `json:"lp"`
	NowNs  int64  `json:"now_ns"`
	Events uint64 `json:"events"`
	// Recent lists the shard's last dispatched events, oldest first.
	Recent []EventStamp `json:"recent,omitempty"`
	// Parked lists every unfinished process and what it waits on, in
	// spawn order.
	Parked []ParkedProc `json:"parked,omitempty"`
}

// StallReport is the flight recorder's dump: why the run stopped, where
// the global clock stood, and each shard's recent history and blocked
// processes. Its content is a pure function of the simulation for
// deterministic stop reasons (limits, deadlock, causality); only a
// wall-clock cancel makes the truncation point — and hence the dump —
// nondeterministic.
type StallReport struct {
	Reason string        `json:"reason"`
	Error  string        `json:"error,omitempty"`
	AtNs   int64         `json:"at_ns"`
	Events uint64        `json:"events"`
	Shards []ShardFlight `json:"shards"`
}

// WriteJSON emits the report as indented JSON (the stall.json format).
func (r *StallReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// ParkedRanks returns the names of every parked process across shards, in
// shard order — the quick "who is stuck" summary tools print.
func (r *StallReport) ParkedRanks() []string {
	var out []string
	for i := range r.Shards {
		for _, p := range r.Shards[i].Parked {
			out = append(out, p.Name)
		}
	}
	return out
}

// ArmFlight sizes the engine's flight ring to the n most recent events
// (n <= 0 disarms). Call before Run.
func (e *Engine) ArmFlight(n int) {
	if n <= 0 {
		e.flight = nil
		return
	}
	e.flight = make([]EventStamp, 0, n)
	e.flightHead = 0
}

// recordFlight appends one dispatched event to the ring. Called from the
// dispatch loop only when armed.
func (e *Engine) recordFlight(at Time, dl uint64, seq uint64, proc *Proc) {
	kind := "fn"
	if proc != nil {
		kind = proc.Name
	}
	s := EventStamp{Kind: kind, LP: int(int32(uint32(dl))), AtNs: int64(at), Seq: seq}
	if len(e.flight) < cap(e.flight) {
		e.flight = append(e.flight, s)
		return
	}
	e.flight[e.flightHead] = s
	e.flightHead++
	if e.flightHead == len(e.flight) {
		e.flightHead = 0
	}
}

// FlightShard snapshots the engine's ring (oldest first) and parked
// processes. Call only with the engine quiescent.
func (e *Engine) FlightShard() ShardFlight {
	sf := ShardFlight{LP: int(e.lp), NowNs: int64(e.now), Events: e.dispatched}
	if n := len(e.flight); n > 0 {
		sf.Recent = make([]EventStamp, 0, n)
		sf.Recent = append(sf.Recent, e.flight[e.flightHead:]...)
		sf.Recent = append(sf.Recent, e.flight[:e.flightHead]...)
	}
	for _, p := range e.procs {
		if p != nil && !p.done {
			sf.Parked = append(sf.Parked, ParkedProc{Name: p.Name, BlockedOn: p.blockedOn})
		}
	}
	return sf
}

// ArmFlight arms every shard's flight ring with n entries. Call before Run.
func (g *ShardGroup) ArmFlight(n int) {
	g.flightCap = n
	for _, e := range g.engines {
		e.ArmFlight(n)
	}
}

// FlightArmed reports whether ArmFlight armed the group.
func (g *ShardGroup) FlightArmed() bool { return g.flightCap > 0 }

// Stall returns the flight dump captured when an armed group's Run ended
// abnormally (nil after a clean run, or when disarmed). Run snapshots it
// before unwinding, so the parked table reflects the stop instant rather
// than the emptied post-unwind state.
func (g *ShardGroup) Stall() *StallReport { return g.stall }

// captureStall assembles the stall dump inside Run, before processes are
// unwound. reason is derived from the error type.
func (g *ShardGroup) captureStall(err error) {
	if g.flightCap <= 0 || err == nil {
		return
	}
	reason := "panic"
	switch e := err.(type) {
	case *CancelError:
		reason = "cancel"
	case *DeadlockError:
		reason = "deadlock"
	case *LimitError:
		if e.Resource == "vtime" {
			reason = "vtime-limit"
		} else {
			reason = "event-limit"
		}
	case *PanicError:
		if e.Proc == "shard-exchange" {
			reason = "causality"
		}
	}
	r := &StallReport{Reason: reason, Error: err.Error(),
		AtNs: int64(g.MaxNow()), Events: g.Events()}
	for _, e := range g.engines {
		r.Shards = append(r.Shards, e.FlightShard())
	}
	g.stall = r
}
