package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(10*Microsecond) {
		t.Fatalf("woke at %v, want 10us", woke)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	e.Spawn("z", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("zero/negative sleeps moved clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	// Two processes scheduled at the same instant must run in spawn order.
	run := func() []string {
		e := NewEngine()
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				p.Sleep(Microsecond)
				order = append(order, p.Name)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order %v != %v", trial, got, first)
			}
		}
	}
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestAfterCallbackRuns(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.After(3*Millisecond, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(3*Millisecond) {
		t.Fatalf("callback at %v, want 3ms", at)
	}
}

func TestAtClampsToNow(t *testing.T) {
	e := NewEngine()
	var ran bool
	e.Spawn("p", func(p *Proc) {
		p.Sleep(Millisecond)
		// Schedule in the past: must run at now, not never.
		e.At(0, func() { ran = true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var start Time
	e.SpawnAt(Time(7*Microsecond), "late", func(p *Proc) { start = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != Time(7*Microsecond) {
		t.Fatalf("started at %v, want 7us", start)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent("never")
	e.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run returned %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 entry", de.Blocked)
	}
}

func TestEventBroadcast(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent("go")
	var woke []string
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			woke = append(woke, p.Name)
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(Microsecond)
		ev.Fire()
		ev.Fire() // double fire is a no-op
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w0" || woke[2] != "w2" {
		t.Fatalf("wake order = %v", woke)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent("pre")
	ev.Fire()
	var t0 Time = -1
	e.Spawn("late", func(p *Proc) {
		ev.Wait(p) // must not block
		t0 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t0 != 0 {
		t.Fatalf("late waiter resumed at %v, want 0", t0)
	}
}

func TestCondWakeOneFIFO(t *testing.T) {
	e := NewEngine()
	c := e.NewCond("c")
	var woke []string
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woke = append(woke, p.Name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(Microsecond)
		if !c.WakeOne() {
			t.Error("WakeOne found no waiter")
		}
		p.Sleep(Microsecond)
		c.WakeAll()
		if c.WakeOne() {
			t.Error("WakeOne woke someone after WakeAll drained the list")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", woke, want)
		}
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	s := e.NewSemaphore(2, "s")
	var inUse, peak int
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			s.Acquire(p)
			inUse++
			if inUse > peak {
				peak = inUse
			}
			p.Sleep(10 * Microsecond)
			inUse--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if s.Available() != 2 {
		t.Fatalf("final permits = %d, want 2", s.Available())
	}
}

func TestSemaphoreFIFOHandoff(t *testing.T) {
	e := NewEngine()
	s := e.NewSemaphore(1, "s")
	var order []string
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			s.Acquire(p)
			order = append(order, p.Name)
			p.Sleep(Microsecond)
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"u0", "u1", "u2", "u3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := e.NewFIFOResource("link")
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("t%d", i), func(p *Proc) {
			r.Use(p, 10*Microsecond, 0)
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.BusyTime != 30*Microsecond {
		t.Fatalf("busy = %v, want 30us", r.BusyTime)
	}
	if r.Uses != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses)
	}
}

func TestFIFOResourceTailDoesNotOccupy(t *testing.T) {
	e := NewEngine()
	r := e.NewFIFOResource("link")
	var end0, end1 Time
	e.Spawn("a", func(p *Proc) {
		r.Use(p, 10*Microsecond, 5*Microsecond)
		end0 = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		r.Use(p, 10*Microsecond, 5*Microsecond)
		end1 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// a: occupies 0-10, done at 15. b: occupies 10-20 (tail overlaps), done 25.
	if end0 != Time(15*Microsecond) || end1 != Time(25*Microsecond) {
		t.Fatalf("ends = %v, %v; want 15us, 25us", end0, end1)
	}
}

func TestFIFOResourceUseAsync(t *testing.T) {
	e := NewEngine()
	r := e.NewFIFOResource("copyeng")
	s1, e1 := r.UseAsync(4 * Microsecond)
	s2, e2 := r.UseAsync(4 * Microsecond)
	if s1 != 0 || e1 != Time(4*Microsecond) {
		t.Fatalf("first async = [%v,%v]", s1, e1)
	}
	if s2 != Time(4*Microsecond) || e2 != Time(8*Microsecond) {
		t.Fatalf("second async = [%v,%v]", s2, e2)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue("msgs")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Microsecond)
			q.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v, want ascending", got)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine()
	q := e.NewQueue("t")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put("x")
	v, ok := q.TryGet()
	if !ok || v.(string) != "x" {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d, want 0", q.Len())
	}
}

func TestMaxTimeHalts(t *testing.T) {
	e := NewEngine()
	e.MaxTime = Time(5 * Microsecond)
	e.Spawn("long", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Halted() {
		t.Fatal("engine did not report halted")
	}
	if e.Now() > Time(5*Microsecond) {
		t.Fatalf("clock ran past MaxTime: %v", e.Now())
	}
}

func TestYieldRunsQueuedEventsFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDurString(t *testing.T) {
	cases := []struct {
		d    Dur
		want string
	}{
		{5, "5ns"},
		{1500, "1.50us"},
		{2500000, "2.500ms"},
		{12 * Second, "12.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurFromSeconds(t *testing.T) {
	if DurFromSeconds(-1) != 0 {
		t.Fatal("negative seconds should clamp to 0")
	}
	if d := DurFromSeconds(1e-9); d != 1 {
		t.Fatalf("1ns worth = %d", int64(d))
	}
	if d := DurFromSeconds(2.5); d != Dur(2500*Millisecond) {
		t.Fatalf("2.5s = %v", d)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced same first value")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		bound := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams should differ")
	}
}

// Property: a FIFO resource's completion times under arbitrary arrival
// patterns equal the analytic back-to-back schedule.
func TestFIFOResourceScheduleProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 50 {
			return true
		}
		e := NewEngine()
		r := e.NewFIFOResource("x")
		ends := make([]Time, len(durs))
		for i, d := range durs {
			i, d := i, Dur(d)
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Use(p, d, 0)
				ends[i] = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		var cum Time
		for i, d := range durs {
			cum += Time(d)
			if ends[i] != cum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOnFireCallbacks(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent("cb")
	var order []string
	ev.OnFire(func() { order = append(order, "early") })
	e.Spawn("w", func(p *Proc) {
		ev.Wait(p)
		order = append(order, "waiter")
	})
	e.Spawn("f", func(p *Proc) {
		p.Sleep(Microsecond)
		ev.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Callbacks run before waiters resume.
	if len(order) != 2 || order[0] != "early" || order[1] != "waiter" {
		t.Fatalf("order = %v", order)
	}
	// Registering after fire runs immediately.
	ran := false
	ev.OnFire(func() { ran = true })
	if !ran {
		t.Fatal("post-fire OnFire did not run")
	}
}

func TestCoUseAsync(t *testing.T) {
	e := NewEngine()
	a := e.NewFIFOResource("a")
	b := e.NewFIFOResource("b")
	// Occupy a alone first; the co-use must start when both are free.
	a.UseAsync(10 * Microsecond)
	start, end := CoUseAsync(5*Microsecond, a, b)
	if start != Time(10*Microsecond) || end != Time(15*Microsecond) {
		t.Fatalf("co-use = [%v, %v]", start, end)
	}
	if a.FreeAt() != end || b.FreeAt() != end {
		t.Fatal("both resources must be held to the same end")
	}
	if a.Name() != "a" {
		t.Fatal("resource name lost")
	}
	if _, e2 := CoUseAsync(-1, b); e2 != end {
		t.Fatal("negative occupy must clamp to zero")
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomber", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("kaboom")
	})
	e.Spawn("bystander", func(p *Proc) {
		p.Sleep(time10ms())
	})
	err := e.Run()
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("err = %v (%T), want PanicError", err, err)
	}
	if pe.Proc != "bomber" || pe.Unwrap() != nil {
		t.Fatalf("panic error = %+v", pe)
	}
	if pe.Error() == "" {
		t.Fatal("empty error text")
	}
}

func time10ms() Dur { return 10 * Millisecond }

func TestProcPanicWithErrorUnwraps(t *testing.T) {
	e := NewEngine()
	sentinel := &DeadlockError{}
	e.Spawn("b", func(p *Proc) { panic(sentinel) })
	err := e.Run()
	pe, ok := err.(*PanicError)
	if !ok || pe.Unwrap() != error(sentinel) {
		t.Fatalf("unwrap = %v", err)
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine()
	var count int
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			count++
			if count == 5 {
				e.Halt()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Halted() || count != 5 {
		t.Fatalf("halted=%v count=%d", e.Halted(), count)
	}
}

func TestCondWaiting(t *testing.T) {
	e := NewEngine()
	c := e.NewCond("c")
	e.Spawn("w", func(p *Proc) { c.Wait(p) })
	e.Spawn("obs", func(p *Proc) {
		p.Sleep(Microsecond)
		if c.Waiting() != 1 {
			t.Errorf("waiting = %d", c.Waiting())
		}
		c.WakeAll()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeAndDurSeconds(t *testing.T) {
	if Second.Seconds() != 1.0 || Time(Millisecond).Seconds() != 0.001 {
		t.Fatal("Seconds conversions wrong")
	}
}

func TestProcEngineAccessor(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		if p.Engine() != e {
			t.Error("Engine() accessor wrong")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
