package sim

import (
	"fmt"
	"strings"
	"testing"
)

// shardWorkload drives a ring of nShards engines: each shard runs a process
// that alternates local compute (sleep + local events) with cross-shard
// posts to its right neighbor, at latencies >= lookahead. Every dispatched
// payload appends a "(t,label)" record to its OWN shard's log, so each log
// has exactly one writer (that shard's window worker) and the per-shard
// record sequence is the observable schedule.
func shardWorkload(nShards, rounds int, lookahead Dur, workers int) ([]*strings.Builder, error) {
	engines := make([]*Engine, nShards)
	logs := make([]*strings.Builder, nShards)
	for i := range engines {
		engines[i] = NewLPEngine(i)
		logs[i] = &strings.Builder{}
	}
	g := NewShardGroup(engines, lookahead, workers)
	for i := range engines {
		i := i
		e := engines[i]
		dst := engines[(i+1)%nShards]
		dstLog := logs[(i+1)%nShards]
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Sleep(Dur(30 + i*7 + k))
				fmt.Fprintf(logs[i], "(%d,local%d.%d)", p.Now(), i, k)
				// Same-instant burst: exercises the nowQ FIFO inside a window.
				for j := 0; j < 3; j++ {
					j := j
					e.At(e.Now(), func() { fmt.Fprintf(logs[i], "(%d,burst%d.%d.%d)", e.Now(), i, k, j) })
				}
				// Distinct per-shard offsets so no two shards target the same
				// (dst, time); the serial reference below then has an
				// unambiguous order to compare against.
				at := e.Now() + Time(lookahead) + Time(1+i*3)
				kk := k
				e.Post(dst, at, func() { fmt.Fprintf(dstLog, "(%d,msg%d.%d)", dst.Now(), i, kk) })
				p.Sleep(Dur(11 + i))
			}
		})
	}
	return logs, g.Run()
}

// TestShardGroupWorkerInvariance: the same sharded workload produces
// byte-identical per-shard schedules for every worker count — parallelism is
// wall-clock only.
func TestShardGroupWorkerInvariance(t *testing.T) {
	var ref []string
	for _, workers := range []int{1, 2, 8} {
		logs, err := shardWorkload(4, 6, 100, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]string, len(logs))
		for i, l := range logs {
			got[i] = l.String()
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Errorf("workers=%d shard %d schedule diverges:\n got %s\nwant %s", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestShardGroupMatchesSerialEngine: the sharded run of the ring workload
// dispatches the same payloads at the same virtual times as one serial
// engine executing the identical logical program (cross-shard posts become
// plain At calls).
func TestShardGroupMatchesSerialEngine(t *testing.T) {
	const nShards, rounds = 3, 5
	const lookahead = Dur(100)
	sharded, err := shardWorkload(nShards, rounds, lookahead, 2)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	logs := make([]*strings.Builder, nShards)
	for i := range logs {
		logs[i] = &strings.Builder{}
	}
	for i := 0; i < nShards; i++ {
		i := i
		dstLog := logs[(i+1)%nShards]
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Sleep(Dur(30 + i*7 + k))
				fmt.Fprintf(logs[i], "(%d,local%d.%d)", p.Now(), i, k)
				for j := 0; j < 3; j++ {
					j := j
					e.At(e.Now(), func() { fmt.Fprintf(logs[i], "(%d,burst%d.%d.%d)", e.Now(), i, k, j) })
				}
				at := e.Now() + Time(lookahead) + Time(1+i*3)
				kk := k
				e.At(at, func() { fmt.Fprintf(dstLog, "(%d,msg%d.%d)", e.Now(), i, kk) })
				p.Sleep(Dur(11 + i))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range logs {
		if sharded[i].String() != logs[i].String() {
			t.Errorf("shard %d diverges from serial engine:\n got %s\nwant %s", i, sharded[i], logs[i])
		}
	}
}

// TestShardGroupDeadlockUnion: processes stuck on different shards surface
// as one DeadlockError carrying the sorted union of every shard's blocked
// diagnostics, like a serial engine reporting all of its stuck processes.
func TestShardGroupDeadlockUnion(t *testing.T) {
	engines := []*Engine{NewLPEngine(0), NewLPEngine(1)}
	g := NewShardGroup(engines, 50, 2)
	for i, e := range engines {
		ev := e.NewEvent("never")
		e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) {
			p.Sleep(Dur(10 * (i + 1)))
			ev.Wait(p)
		})
	}
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run returned %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %v, want both shards' processes", de.Blocked)
	}
	if !(de.Blocked[0] < de.Blocked[1]) {
		t.Fatalf("blocked union not sorted: %v", de.Blocked)
	}
}

// TestShardGroupMaxEventsBudget: the group-wide event cap stops the run with
// a LimitError attributed to the canonical (at, depth, lp, seq)-least event
// that exhausted the budget, so the error — and the whole trajectory,
// including the final window's bounded overshoot — is byte-identical at
// every worker count. Four shards tick every 7ns, so the canonical 40th
// dispatch is the 10th tick at t=70.
func TestShardGroupMaxEventsBudget(t *testing.T) {
	var wantErr string
	var wantEvents uint64
	for _, workers := range []int{1, 4} {
		engines := make([]*Engine, 4)
		for i := range engines {
			engines[i] = NewLPEngine(i)
		}
		g := NewShardGroup(engines, 100, workers)
		g.MaxEvents = 40
		for _, e := range engines {
			e := e
			var tick func()
			tick = func() { e.After(Dur(7), tick) } // unbounded self-rearming clock
			e.After(Dur(7), tick)
		}
		err := g.Run()
		le, ok := err.(*LimitError)
		if !ok {
			t.Fatalf("workers=%d: Run returned %v, want LimitError", workers, err)
		}
		if le.Resource != "events" || le.Limit != 40 {
			t.Fatalf("workers=%d: limit error %+v, want events/40", workers, le)
		}
		if le.At != Time(70) {
			t.Fatalf("workers=%d: limit error at t=%v, want the canonical 40th event at t=70ns", workers, Dur(le.At))
		}
		if got := g.Events(); got < 40 {
			t.Fatalf("workers=%d: dispatched only %d events before tripping the cap 40", workers, got)
		}
		if workers == 1 {
			wantErr, wantEvents = err.Error(), g.Events()
			continue
		}
		if err.Error() != wantErr {
			t.Fatalf("workers=%d: error %q differs from serial %q", workers, err, wantErr)
		}
		if g.Events() != wantEvents {
			t.Fatalf("workers=%d: dispatched %d events, serial dispatched %d", workers, g.Events(), wantEvents)
		}
	}
}

// TestShardGroupMaxEventsFarFromCap: a budget far above the exact-attribution
// threshold still stops the run deterministically — the coarse per-window
// caps shrink the remainder until exact stamping engages, and the final
// error matches across worker counts.
func TestShardGroupMaxEventsFarFromCap(t *testing.T) {
	var wantErr string
	var wantEvents uint64
	for _, workers := range []int{1, 3} {
		engines := make([]*Engine, 3)
		for i := range engines {
			engines[i] = NewLPEngine(i)
		}
		g := NewShardGroup(engines, 100, workers)
		g.MaxEvents = 9000 // > exactThreshold (4096): exercises the coarse mode
		for _, e := range engines {
			e := e
			var tick func()
			tick = func() { e.After(Dur(5), tick) }
			e.After(Dur(5), tick)
		}
		err := g.Run()
		le, ok := err.(*LimitError)
		if !ok {
			t.Fatalf("workers=%d: Run returned %v, want LimitError", workers, err)
		}
		if le.Resource != "events" || le.Limit != 9000 {
			t.Fatalf("workers=%d: limit error %+v, want events/9000", workers, le)
		}
		// 3 shards tick in lockstep: the canonical 9000th dispatch is the
		// 3000th tick at t=15000.
		if le.At != Time(15000) {
			t.Fatalf("workers=%d: limit error at t=%v, want t=15000ns", workers, Dur(le.At))
		}
		if workers == 1 {
			wantErr, wantEvents = err.Error(), g.Events()
			continue
		}
		if err.Error() != wantErr || g.Events() != wantEvents {
			t.Fatalf("workers=%d: (%q, %d events) differs from serial (%q, %d events)",
				workers, err, g.Events(), wantErr, wantEvents)
		}
	}
}

// TestShardGroupCancel: a cancel raised mid-run (here from inside an event,
// the deterministic way to trigger one) stops every shard and surfaces as a
// CancelError, with all processes unwound.
func TestShardGroupCancel(t *testing.T) {
	engines := []*Engine{NewLPEngine(0), NewLPEngine(1)}
	g := NewShardGroup(engines, 100, 2)
	defersRan := 0
	for i, e := range engines {
		i := i
		e := e
		e.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			defer func() { defersRan++ }()
			for {
				p.Sleep(Dur(20))
			}
		})
		if i == 0 {
			e.At(Time(200), func() { g.Cancel() })
		}
	}
	err := g.Run()
	if _, ok := err.(*CancelError); !ok {
		t.Fatalf("Run returned %v, want CancelError", err)
	}
	if !g.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
	if defersRan != 2 {
		t.Fatalf("defers ran on %d processes, want 2 (unwind after cancel)", defersRan)
	}
}

// TestShardGroupPanicPropagates: a panic on any shard halts the group and
// Run returns the PanicError of the lowest shard index.
func TestShardGroupPanicPropagates(t *testing.T) {
	engines := []*Engine{NewLPEngine(0), NewLPEngine(1)}
	g := NewShardGroup(engines, 100, 2)
	engines[1].Spawn("bomb", func(p *Proc) {
		p.Sleep(Dur(30))
		panic("boom")
	})
	engines[0].Spawn("calm", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Dur(5))
		}
	})
	err := g.Run()
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("Run returned %v, want PanicError", err)
	}
	if pe.Proc != "bomb" || pe.Value != "boom" {
		t.Fatalf("panic error %+v, want proc bomb / value boom", pe)
	}
}

// TestNewShardGroupValidation: the constructor rejects multi-shard groups
// without a positive lookahead and engines whose lp does not match their
// index — both are programming errors that would silently break determinism.
func TestNewShardGroupValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead multi-shard", func() {
		NewShardGroup([]*Engine{NewLPEngine(0), NewLPEngine(1)}, 0, 1)
	})
	mustPanic("wrong lp", func() {
		NewShardGroup([]*Engine{NewLPEngine(0), NewLPEngine(2)}, 10, 1)
	})
	// A single standalone engine with no lookahead is the degenerate serial
	// group and must be accepted.
	NewShardGroup([]*Engine{NewEngine()}, 0, 1)
}

// TestInjectCausalityCheck: with the IMPACC_SIM_CHECK invariant enabled, an
// event injected at or before a shard's local clock — a lookahead bound
// violation — panics instead of silently corrupting the merge order.
func TestInjectCausalityCheck(t *testing.T) {
	old := simCheck
	simCheck = true
	defer func() { simCheck = old }()

	e := NewLPEngine(0)
	e.At(Time(100), func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("past-time inject did not panic under IMPACC_SIM_CHECK")
		}
	}()
	e.inject(Time(50), func() {}, 1, 1) // t=50 < now=100: causality violation
}

// TestInjectCausalityCheckAllowsFuture: the invariant accepts strictly
// future injections (the only kind conservative lookahead produces).
func TestInjectCausalityCheckAllowsFuture(t *testing.T) {
	old := simCheck
	simCheck = true
	defer func() { simCheck = old }()

	logs, err := shardWorkload(3, 4, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range logs {
		if l.Len() == 0 {
			t.Fatalf("shard %d logged nothing", i)
		}
	}
}
