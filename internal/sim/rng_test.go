package sim

import (
	"fmt"
	"testing"
)

// TestRNGSeededDeterminism: the same seed must yield the identical stream,
// and distinct seeds must not collide over a meaningful prefix.
func TestRNGSeededDeterminism(t *testing.T) {
	const n = 1000
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < n; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same seed diverged at draw %d: %#x != %#x", i, x, y)
		}
	}
	c, d := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < n; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of %d draws", same, n)
	}
}

// TestRNGKnownAnswers pins the SplitMix64 output so an accidental algorithm
// change (which would silently re-time every seeded benchmark) is caught.
func TestRNGKnownAnswers(t *testing.T) {
	// First three outputs of SplitMix64 seeded with 0, from the reference
	// implementation (Vigna, prng.di.unimi.it/splitmix64.c).
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	r := NewRNG(0)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("SplitMix64(seed=0) draw %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestRNGForkIndependence: per-task streams forked from one master must be
// reproducible (same master seed → same forks) and mutually distinct, and
// drawing from a fork must not perturb the parent stream.
func TestRNGForkIndependence(t *testing.T) {
	master1, master2 := NewRNG(7), NewRNG(7)
	f1a, f1b := master1.Fork(), master1.Fork()
	f2a, f2b := master2.Fork(), master2.Fork()
	for i := 0; i < 100; i++ {
		if f1a.Uint64() != f2a.Uint64() || f1b.Uint64() != f2b.Uint64() {
			t.Fatalf("forks from identical masters diverged at draw %d", i)
		}
	}

	// Sibling forks are distinct streams.
	ga, gb := NewRNG(7).Fork(), func() *RNG { m := NewRNG(7); m.Fork(); return m.Fork() }()
	same := 0
	for i := 0; i < 1000; i++ {
		if ga.Uint64() == gb.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling forks collided on %d of 1000 draws", same)
	}

	// Forking consumes exactly one parent draw; afterwards parent and child
	// are decoupled.
	p1, p2 := NewRNG(9), NewRNG(9)
	p2.Uint64() // account for the draw Fork consumes
	child := p1.Fork()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("draining a fork perturbed the parent stream")
	}
}

// Range properties of Float64 and Intn live in sim_test.go; here we pin the
// documented panic contract.
func TestRNGIntnPanics(t *testing.T) {
	r := NewRNG(4)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

// TestEngineSeededEventOrder is the end-to-end determinism regression the
// analyzers guard: two engines driven by the same seed must produce the
// identical event order, byte for byte. Each of several processes sleeps for
// RNG-drawn durations and logs (time, proc, draw) at every step; any
// dependence on host state or map order would reorder the log.
func TestEngineSeededEventOrder(t *testing.T) {
	trace := func(seed uint64) []string {
		eng := NewEngine()
		master := NewRNG(seed)
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			rng := master.Fork()
			eng.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for step := 0; step < 8; step++ {
					d := Dur(rng.Intn(50) + 1)
					p.Sleep(d)
					log = append(log, fmt.Sprintf("t=%d p=%d step=%d d=%d", p.Now(), i, step, d))
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("engine run (seed %d): %v", seed, err)
		}
		return log
	}

	a, b := trace(1234), trace(1234)
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("expected 32 log entries, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed engines diverged at event %d: %q != %q", i, a[i], b[i])
		}
	}

	c := trace(5678)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical event orders; RNG not wired through")
	}
}
