package xmem

import (
	"fmt"

	"impacc/internal/avl"
)

// HeapEntry records one hooked heap allocation (paper §3.8, Figure 7: "the
// IMPACC runtime hooks the heap-related routines, such as malloc(),
// calloc(), realloc(), free(), and etc., and it records the allocated heaps
// in the Heap Table").
type HeapEntry struct {
	Base Addr
	Size int64
	// Owner is the rank that allocated the heap.
	Owner int
	// Refs counts the tasks sharing the region via aliasing; allocations
	// start at 1.
	Refs int
	// Shared is set once the region has been aliased into by a consumer,
	// marking it as read-only shared.
	Shared bool
}

// HeapTable is the per-node registry of host heap allocations, keyed by base
// address with range lookup, plus the reference counting that node heap
// aliasing relies on.
type HeapTable struct {
	entries avl.Tree[Addr, *HeapEntry]
}

// NewHeapTable returns an empty table.
func NewHeapTable() *HeapTable { return &HeapTable{} }

// Register records a new allocation owned by rank.
func (h *HeapTable) Register(base Addr, size int64, rank int) *HeapEntry {
	e := &HeapEntry{Base: base, Size: size, Owner: rank, Refs: 1}
	h.entries.Put(base, e)
	return e
}

// Containing returns the entry whose range contains addr.
func (h *HeapTable) Containing(addr Addr) (*HeapEntry, bool) {
	_, e, ok := h.entries.Floor(addr)
	if !ok || addr >= e.Base+Addr(e.Size) {
		return nil, false
	}
	return e, true
}

// At returns the entry based exactly at addr.
func (h *HeapTable) At(addr Addr) (*HeapEntry, bool) {
	return h.entries.Get(addr)
}

// Share increments the reference count of the entry containing addr and
// marks it shared.
func (h *HeapTable) Share(addr Addr) (*HeapEntry, error) {
	e, ok := h.Containing(addr)
	if !ok {
		return nil, fmt.Errorf("xmem: Share(%#x): no heap entry", uint64(addr))
	}
	e.Refs++
	e.Shared = true
	return e, nil
}

// Release decrements the reference count of the entry containing addr.
// When the count reaches zero the entry is removed and lastRef is true: the
// caller must free the underlying segment (paper §3.8: "When the reference
// count becomes zero, it deallocates the heap region and removes the entry
// from the table").
func (h *HeapTable) Release(addr Addr) (entry *HeapEntry, lastRef bool, err error) {
	e, ok := h.Containing(addr)
	if !ok {
		return nil, false, fmt.Errorf("xmem: Release(%#x): no heap entry", uint64(addr))
	}
	if e.Refs <= 0 {
		return nil, false, fmt.Errorf("xmem: Release(%#x): refcount already %d", uint64(addr), e.Refs)
	}
	e.Refs--
	if e.Refs == 0 {
		h.entries.Delete(e.Base)
		return e, true, nil
	}
	return e, false, nil
}

// Drop removes the entry based at addr without touching refcounts — used
// when a receive buffer's heap is retired because its segment was aliased
// away ("removes the corresponding heap table entry").
func (h *HeapTable) Drop(addr Addr) bool {
	return h.entries.Delete(addr)
}

// Len reports the number of live entries.
func (h *HeapTable) Len() int { return h.entries.Len() }

// TotalRefs sums reference counts, for invariant tests.
func (h *HeapTable) TotalRefs() int {
	total := 0
	h.entries.Ascend(func(_ Addr, e *HeapEntry) bool {
		total += e.Refs
		return true
	})
	return total
}
