package xmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Typed views over backed segments. Allocations are 64-byte aligned, so
// reinterpreting backing bytes as wider elements is safe.

// Float64s returns a []float64 view of n elements at addr. It returns nil
// for unbacked segments.
func (s *Space) Float64s(addr Addr, n int) ([]float64, error) {
	b, err := s.Bytes(addr, int64(n)*8)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, fmt.Errorf("xmem: Float64s(%#x): misaligned view", uint64(addr))
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
}

// Int64s returns a []int64 view of n elements at addr.
func (s *Space) Int64s(addr Addr, n int) ([]int64, error) {
	b, err := s.Bytes(addr, int64(n)*8)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, fmt.Errorf("xmem: Int64s(%#x): misaligned view", uint64(addr))
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
}

// PutFloat64 stores v at addr+8*i without materializing a view.
func (s *Space) PutFloat64(addr Addr, i int, v float64) error {
	b, err := s.Bytes(addr+Addr(i*8), 8)
	if err != nil {
		return err
	}
	if b != nil {
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	}
	return nil
}

// GetFloat64 loads the float64 at addr+8*i; unbacked segments read as zero.
func (s *Space) GetFloat64(addr Addr, i int) (float64, error) {
	b, err := s.Bytes(addr+Addr(i*8), 8)
	if err != nil {
		return 0, err
	}
	if b == nil {
		return 0, nil
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}
