package xmem

import (
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	return NewSpace("test", 4)
}

func TestAllocHostBasics(t *testing.T) {
	s := newTestSpace(t)
	a, err := s.AllocHost(100, true)
	if err != nil {
		t.Fatal(err)
	}
	if a == Nil {
		t.Fatal("nil address")
	}
	if uint64(a)%Alignment != 0 {
		t.Fatalf("address %#x not %d-aligned", uint64(a), Alignment)
	}
	loc, err := s.Lookup(a)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind() != HostMem || loc.Device() != -1 || loc.Off != 0 {
		t.Fatalf("loc = %+v", loc)
	}
	if s.HostUsed() != 100 {
		t.Fatalf("host used = %d", s.HostUsed())
	}
	// Interior address resolves with offset.
	loc, err = s.Lookup(a + 42)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Off != 42 {
		t.Fatalf("interior offset = %d", loc.Off)
	}
}

func TestAllocErrors(t *testing.T) {
	s := newTestSpace(t)
	if _, err := s.AllocHost(0, true); err == nil {
		t.Fatal("zero-size host alloc must fail")
	}
	if _, err := s.AllocHost(-5, true); err == nil {
		t.Fatal("negative host alloc must fail")
	}
	if _, err := s.AllocDevice(9, 10, true); err == nil {
		t.Fatal("alloc on missing device must fail")
	}
	if _, err := s.AllocDevice(-1, 10, true); err == nil {
		t.Fatal("alloc on negative device must fail")
	}
	if _, err := s.AllocDevice(0, 0, true); err == nil {
		t.Fatal("zero-size device alloc must fail")
	}
}

func TestDeviceAddressesIdentifyDevice(t *testing.T) {
	s := newTestSpace(t)
	a0, _ := s.AllocDevice(0, 64, true)
	a1, _ := s.AllocDevice(1, 64, true)
	l0, _ := s.Lookup(a0)
	l1, _ := s.Lookup(a1)
	if l0.Kind() != DeviceMem || l0.Device() != 0 {
		t.Fatalf("dev0 loc = %+v", l0)
	}
	if l1.Device() != 1 {
		t.Fatalf("dev1 loc = %+v", l1)
	}
	if s.DeviceUsed(0) != 64 || s.DeviceUsed(1) != 64 {
		t.Fatal("device usage wrong")
	}
}

func TestLookupUnmapped(t *testing.T) {
	s := newTestSpace(t)
	if _, err := s.Lookup(0xdeadbeef); err == nil {
		t.Fatal("unmapped lookup must fail")
	}
	a, _ := s.AllocHost(64, true)
	if _, err := s.Lookup(a + 64); err == nil {
		t.Fatal("one-past-end lookup must fail")
	}
	if s.Contains(a+63) != true || s.Contains(a+64) != false {
		t.Fatal("Contains boundary wrong")
	}
}

func TestFree(t *testing.T) {
	s := newTestSpace(t)
	a, _ := s.AllocHost(128, true)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if s.HostUsed() != 0 {
		t.Fatalf("host used after free = %d", s.HostUsed())
	}
	if s.Contains(a) {
		t.Fatal("freed address still mapped")
	}
	if err := s.Free(a); err == nil {
		t.Fatal("double free must error")
	}
	if err := s.Free(a + 1); err == nil {
		t.Fatal("free of non-base must error")
	}
}

func TestBytesAndCopy(t *testing.T) {
	s := newTestSpace(t)
	a, _ := s.AllocHost(64, true)
	b, _ := s.AllocHost(64, true)
	ab, err := s.Bytes(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ab {
		ab[i] = byte(i)
	}
	if err := s.Copy(b, a, 64); err != nil {
		t.Fatal(err)
	}
	bb, _ := s.Bytes(b, 64)
	for i := range bb {
		if bb[i] != byte(i) {
			t.Fatalf("copy mismatch at %d", i)
		}
	}
	if _, err := s.Bytes(a, 65); err == nil {
		t.Fatal("out-of-range Bytes must fail")
	}
}

func TestUnbackedSegments(t *testing.T) {
	s := newTestSpace(t)
	a, _ := s.AllocHost(1<<20, false)
	b, err := s.Bytes(a, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b != nil {
		t.Fatal("unbacked segment returned storage")
	}
	// Copies touching unbacked segments are timing-only no-ops.
	c, _ := s.AllocHost(1<<20, true)
	if err := s.Copy(c, a, 1024); err != nil {
		t.Fatal(err)
	}
	if err := s.Copy(a, c, 1024); err != nil {
		t.Fatal(err)
	}
}

func TestCopyBetweenSpaces(t *testing.T) {
	s1 := NewSpace("s1", 0)
	s2 := NewSpace("s2", 0)
	a, _ := s1.AllocHost(32, true)
	b, _ := s2.AllocHost(32, true)
	ab, _ := s1.Bytes(a, 32)
	ab[7] = 0x5a
	if err := CopyBetween(s2, b, s1, a, 32); err != nil {
		t.Fatal(err)
	}
	bb, _ := s2.Bytes(b, 32)
	if bb[7] != 0x5a {
		t.Fatal("cross-space copy mismatch")
	}
}

func TestAliasRedirectsLoadsAndStores(t *testing.T) {
	s := newTestSpace(t)
	src, _ := s.AllocHost(800, true) // like Figure 7's 100-element src
	dst, _ := s.AllocHost(80, true)  // like the 10-element dst
	sb, _ := s.Bytes(src, 800)
	for i := range sb {
		sb[i] = byte(i % 251)
	}
	off := Addr(240)
	if err := s.Alias(dst, src+off); err != nil {
		t.Fatal(err)
	}
	db, err := s.Bytes(dst, 80)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db {
		if db[i] != byte((i+240)%251) {
			t.Fatalf("alias read mismatch at %d", i)
		}
	}
	// A store through the alias is visible in the source region (shared
	// memory, exactly what the readonly contract forbids apps to do but
	// what the mapping must physically provide).
	db[0] = 0xEE
	if sb[240] != 0xEE {
		t.Fatal("store through alias not visible in target")
	}
	// Aliased segment no longer counts as live host bytes.
	if s.HostUsed() != 800 {
		t.Fatalf("host used = %d, want 800", s.HostUsed())
	}
}

func TestAliasErrors(t *testing.T) {
	s := newTestSpace(t)
	src, _ := s.AllocHost(100, true)
	dst, _ := s.AllocHost(50, true)
	if err := s.Alias(dst+1, src); err == nil {
		t.Fatal("alias of non-base must fail")
	}
	if err := s.Alias(dst, src+60); err == nil {
		t.Fatal("alias escaping target must fail")
	}
	if err := s.Alias(dst, 0xdead); err == nil {
		t.Fatal("alias to unmapped target must fail")
	}
}

func TestAliasChainCollapses(t *testing.T) {
	s := newTestSpace(t)
	a, _ := s.AllocHost(64, true)
	b, _ := s.AllocHost(64, true)
	c, _ := s.AllocHost(64, true)
	if err := s.Alias(b, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Alias(c, b); err != nil {
		t.Fatal(err)
	}
	seg, _ := s.SegmentAt(c)
	if seg.AliasTo != a {
		t.Fatalf("chain not collapsed: c aliases %#x, want %#x", uint64(seg.AliasTo), uint64(a))
	}
	ab, _ := s.Bytes(a, 64)
	ab[5] = 9
	cb, _ := s.Bytes(c, 64)
	if cb[5] != 9 {
		t.Fatal("chained alias does not resolve")
	}
}

func TestFloat64Views(t *testing.T) {
	s := newTestSpace(t)
	a, _ := s.AllocHost(8*16, true)
	v, err := s.Float64s(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		v[i] = float64(i) * 1.5
	}
	got, err := s.GetFloat64(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6.0 {
		t.Fatalf("GetFloat64 = %v, want 6.0", got)
	}
	if err := s.PutFloat64(a, 3, 2.25); err != nil {
		t.Fatal(err)
	}
	if v[3] != 2.25 {
		t.Fatal("PutFloat64 not visible in view")
	}
	iv, err := s.Int64s(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(iv) != 16 {
		t.Fatal("Int64s length wrong")
	}
	// Unbacked views are nil, not errors.
	u, _ := s.AllocHost(128, false)
	nv, err := s.Float64s(u, 16)
	if err != nil || nv != nil {
		t.Fatalf("unbacked view = %v, %v", nv, err)
	}
	if x, err := s.GetFloat64(u, 0); err != nil || x != 0 {
		t.Fatalf("unbacked GetFloat64 = %v, %v", x, err)
	}
	if err := s.PutFloat64(u, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHeapTableRegisterLookup(t *testing.T) {
	h := NewHeapTable()
	e := h.Register(0x1000, 256, 3)
	if e.Refs != 1 || e.Owner != 3 {
		t.Fatalf("entry = %+v", e)
	}
	got, ok := h.Containing(0x1000 + 100)
	if !ok || got != e {
		t.Fatal("Containing failed for interior address")
	}
	if _, ok := h.Containing(0x1000 + 256); ok {
		t.Fatal("Containing matched past end")
	}
	if _, ok := h.At(0x1000); !ok {
		t.Fatal("At(base) failed")
	}
	if _, ok := h.At(0x1001); ok {
		t.Fatal("At(non-base) matched")
	}
}

func TestHeapTableShareRelease(t *testing.T) {
	h := NewHeapTable()
	h.Register(0x1000, 256, 0)
	e, err := h.Share(0x1000 + 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Refs != 2 || !e.Shared {
		t.Fatalf("after share: %+v", e)
	}
	_, last, err := h.Release(0x1000)
	if err != nil || last {
		t.Fatalf("first release: last=%v err=%v", last, err)
	}
	_, last, err = h.Release(0x1000 + 100)
	if err != nil || !last {
		t.Fatalf("second release: last=%v err=%v", last, err)
	}
	if h.Len() != 0 {
		t.Fatal("entry not removed at zero refs")
	}
	if _, _, err := h.Release(0x1000); err == nil {
		t.Fatal("release of removed entry must fail")
	}
	if _, err := h.Share(0x9999); err == nil {
		t.Fatal("share of unknown region must fail")
	}
}

func TestHeapTableDrop(t *testing.T) {
	h := NewHeapTable()
	h.Register(0x2000, 64, 1)
	if !h.Drop(0x2000) {
		t.Fatal("drop failed")
	}
	if h.Drop(0x2000) {
		t.Fatal("double drop succeeded")
	}
}

// Property: every allocated address resolves to offset 0 at its base, and
// the byte at base+i resolves to offset i, across interleaved host/device
// allocations.
func TestLookupOffsetsProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace("p", 2)
		type rec struct {
			addr Addr
			size int64
		}
		var recs []rec
		for i, sz := range sizes {
			size := int64(sz%1000) + 1
			var a Addr
			var err error
			if i%2 == 0 {
				a, err = s.AllocHost(size, false)
			} else {
				a, err = s.AllocDevice(i%2, size, false)
			}
			if err != nil {
				return false
			}
			recs = append(recs, rec{a, size})
		}
		for _, r := range recs {
			for _, off := range []int64{0, r.size / 2, r.size - 1} {
				loc, err := s.Lookup(r.addr + Addr(off))
				if err != nil || loc.Off != off {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap table refcount bookkeeping — total refs equals
// registrations + shares - releases for live entries.
func TestHeapRefcountProperty(t *testing.T) {
	f := func(shares uint8) bool {
		h := NewHeapTable()
		h.Register(0x1000, 4096, 0)
		n := int(shares % 20)
		for i := 0; i < n; i++ {
			if _, err := h.Share(0x1000); err != nil {
				return false
			}
		}
		if h.TotalRefs() != n+1 {
			return false
		}
		for i := 0; i <= n; i++ {
			_, last, err := h.Release(0x1000)
			if err != nil {
				return false
			}
			if last != (i == n) {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringsAndAccessors(t *testing.T) {
	if HostMem.String() != "host" || DeviceMem.String() != "device" {
		t.Fatal("kind strings wrong")
	}
	s := NewSpace("named", 1)
	if s.Name() != "named" {
		t.Fatal("name accessor wrong")
	}
	s.AllocHost(64, true)
	s.AllocDevice(0, 64, true)
	if s.Segments() != 2 {
		t.Fatalf("segments = %d", s.Segments())
	}
}

func TestCopyErrorsOnBadRanges(t *testing.T) {
	s := NewSpace("c", 0)
	a, _ := s.AllocHost(64, true)
	if err := s.Copy(a, 0xdead, 8); err == nil {
		t.Fatal("copy from unmapped src must fail")
	}
	if err := s.Copy(0xdead, a, 8); err == nil {
		t.Fatal("copy to unmapped dst must fail")
	}
	s2 := NewSpace("c2", 0)
	b, _ := s2.AllocHost(64, true)
	if err := CopyBetween(s2, b, s, 0xdead, 8); err == nil {
		t.Fatal("cross-space copy from unmapped src must fail")
	}
	if err := CopyBetween(s2, 0xdead, s, a, 8); err == nil {
		t.Fatal("cross-space copy to unmapped dst must fail")
	}
}

func TestViewRangeErrors(t *testing.T) {
	s := NewSpace("v", 0)
	a, _ := s.AllocHost(64, true)
	if _, err := s.Float64s(a, 9); err == nil {
		t.Fatal("oversized float view must fail")
	}
	if _, err := s.Int64s(a, 9); err == nil {
		t.Fatal("oversized int view must fail")
	}
	if _, err := s.Int64s(0xdead, 1); err == nil {
		t.Fatal("unmapped int view must fail")
	}
	u, _ := s.AllocHost(64, false)
	iv, err := s.Int64s(u, 8)
	if err != nil || iv != nil {
		t.Fatal("unbacked int view should be nil, no error")
	}
}
