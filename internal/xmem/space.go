// Package xmem implements IMPACC's unified node virtual address space
// (paper §2.4, §3.4): a single 64-bit virtual space per node covering the
// host system memory and the device memories of every accelerator. It also
// provides the heap table and aliasing machinery behind the node heap
// aliasing technique (paper §3.8).
//
// Allocations carry real []byte backing by default, so applications compute
// on genuine data; "unbacked" allocations skip the backing (used for
// extreme-scale benchmark runs where only timing matters — the control path
// is identical).
package xmem

import (
	"fmt"

	"impacc/internal/avl"
)

// Addr is a virtual address in a node's unified address space.
type Addr uint64

// Nil is the invalid address.
const Nil Addr = 0

// Alignment of every allocation, in bytes.
const Alignment = 64

// Region bases. The host heap and each device's memory get disjoint ranges
// of the virtual space, so an address by itself identifies the memory it
// lives in — the property unified MPI communication routines rely on to
// "detect the data location from a virtual memory address" (paper §3.5).
const (
	hostBase   Addr = 0x0000_1000_0000_0000
	deviceBase Addr = 0x0000_2000_0000_0000
	deviceStep Addr = 0x0000_0100_0000_0000
)

// Kind classifies where a segment lives.
type Kind int

const (
	// HostMem is host heap memory.
	HostMem Kind = iota
	// DeviceMem is discrete accelerator memory.
	DeviceMem
)

func (k Kind) String() string {
	if k == HostMem {
		return "host"
	}
	return "device"
}

// Segment is one mapped range of the space.
type Segment struct {
	Base Addr
	Size int64
	Kind Kind
	// Device is the owning device index for DeviceMem segments, -1 for host.
	Device int
	// Backing is the real storage; nil for unbacked (model-only) segments
	// and for alias segments.
	Backing []byte
	// AliasTo, when non-Nil, redirects this segment into another
	// allocation (node heap aliasing, paper §3.8). Offsets map linearly.
	AliasTo Addr
}

// Loc is a resolved address: the segment containing it and the offset
// within. For aliased segments, Loc refers to the final target.
type Loc struct {
	Seg *Segment
	Off int64
}

// Kind returns the location's memory kind.
func (l Loc) Kind() Kind { return l.Seg.Kind }

// Device returns the owning device, or -1 for host memory.
func (l Loc) Device() int { return l.Seg.Device }

// Space is one unified (or, in legacy mode, private per-process) virtual
// address space.
type Space struct {
	name string
	segs avl.Tree[Addr, *Segment]

	nextHost Addr
	nextDev  []Addr
	devUsed  []int64
	hostUsed int64
}

// NewSpace returns an empty space able to map numDevices device memories.
func NewSpace(name string, numDevices int) *Space {
	s := &Space{
		name:     name,
		nextHost: hostBase,
		nextDev:  make([]Addr, numDevices),
		devUsed:  make([]int64, numDevices),
	}
	for d := range s.nextDev {
		s.nextDev[d] = deviceBase + Addr(d)*deviceStep
	}
	return s
}

// Name returns the space's label.
func (s *Space) Name() string { return s.name }

func align(n int64) int64 {
	return (n + Alignment - 1) &^ (Alignment - 1)
}

// AllocHost maps a host heap allocation of size bytes. backed controls
// whether real storage is attached.
func (s *Space) AllocHost(size int64, backed bool) (Addr, error) {
	if size <= 0 {
		return Nil, fmt.Errorf("xmem: AllocHost(%d): size must be positive", size)
	}
	base := s.nextHost
	s.nextHost += Addr(align(size))
	seg := &Segment{Base: base, Size: size, Kind: HostMem, Device: -1}
	if backed {
		seg.Backing = make([]byte, size)
	}
	s.segs.Put(base, seg)
	s.hostUsed += size
	return base, nil
}

// AllocDevice maps a device memory allocation on device dev.
func (s *Space) AllocDevice(dev int, size int64, backed bool) (Addr, error) {
	if size <= 0 {
		return Nil, fmt.Errorf("xmem: AllocDevice(%d, %d): size must be positive", dev, size)
	}
	if dev < 0 || dev >= len(s.nextDev) {
		return Nil, fmt.Errorf("xmem: AllocDevice: no device %d in space %s", dev, s.name)
	}
	base := s.nextDev[dev]
	s.nextDev[dev] += Addr(align(size))
	seg := &Segment{Base: base, Size: size, Kind: DeviceMem, Device: dev}
	if backed {
		seg.Backing = make([]byte, size)
	}
	s.segs.Put(base, seg)
	s.devUsed[dev] += size
	return base, nil
}

// Free unmaps the segment based at addr. Freeing an alias segment does not
// touch the alias target (the heap table coordinates refcounted frees).
func (s *Space) Free(addr Addr) error {
	seg, ok := s.segs.Get(addr)
	if !ok {
		return fmt.Errorf("xmem: Free(%#x): not an allocation base in %s", uint64(addr), s.name)
	}
	s.segs.Delete(addr)
	if seg.AliasTo == Nil {
		if seg.Kind == HostMem {
			s.hostUsed -= seg.Size
		} else {
			s.devUsed[seg.Device] -= seg.Size
		}
	}
	return nil
}

// Lookup resolves addr to its containing segment and offset, following
// alias redirections.
func (s *Space) Lookup(addr Addr) (Loc, error) {
	return s.lookup(addr, 0)
}

func (s *Space) lookup(addr Addr, depth int) (Loc, error) {
	if depth > 8 {
		return Loc{}, fmt.Errorf("xmem: alias chain too deep at %#x", uint64(addr))
	}
	_, seg, ok := s.segs.Floor(addr)
	if !ok || addr >= seg.Base+Addr(seg.Size) {
		return Loc{}, fmt.Errorf("xmem: Lookup(%#x): unmapped address in %s", uint64(addr), s.name)
	}
	off := int64(addr - seg.Base)
	if seg.AliasTo != Nil {
		return s.lookup(seg.AliasTo+Addr(off), depth+1)
	}
	return Loc{Seg: seg, Off: off}, nil
}

// Contains reports whether addr is mapped.
func (s *Space) Contains(addr Addr) bool {
	_, err := s.Lookup(addr)
	return err == nil
}

// SegmentAt returns the raw segment based exactly at addr (not following
// aliases). Used by the aliasing machinery and tests.
func (s *Space) SegmentAt(addr Addr) (*Segment, bool) {
	return s.segs.Get(addr)
}

// Bytes returns the n bytes of real storage at addr, following aliases.
// It returns nil storage (no error) for unbacked segments.
func (s *Space) Bytes(addr Addr, n int64) ([]byte, error) {
	loc, err := s.Lookup(addr)
	if err != nil {
		return nil, err
	}
	if loc.Off+n > loc.Seg.Size {
		return nil, fmt.Errorf("xmem: Bytes(%#x, %d): range escapes segment (size %d, off %d)",
			uint64(addr), n, loc.Seg.Size, loc.Off)
	}
	if loc.Seg.Backing == nil {
		return nil, nil
	}
	return loc.Seg.Backing[loc.Off : loc.Off+n], nil
}

// Copy moves n bytes from src to dst within the space, when both are
// backed. Timing is priced elsewhere (topo.Fabric); Copy only performs the
// data semantics.
func (s *Space) Copy(dst, src Addr, n int64) error {
	db, err := s.Bytes(dst, n)
	if err != nil {
		return err
	}
	sb, err := s.Bytes(src, n)
	if err != nil {
		return err
	}
	if db != nil && sb != nil {
		copy(db, sb)
	}
	return nil
}

// CopyBetween moves n bytes from src in ssp to dst in dsp (two different
// spaces — the legacy-mode inter-process path and internode transfers).
func CopyBetween(dsp *Space, dst Addr, ssp *Space, src Addr, n int64) error {
	db, err := dsp.Bytes(dst, n)
	if err != nil {
		return err
	}
	sb, err := ssp.Bytes(src, n)
	if err != nil {
		return err
	}
	if db != nil && sb != nil {
		copy(db, sb)
	}
	return nil
}

// Alias redirects the whole segment based at dst into the range starting at
// target: after the call, loads and stores through dst resolve into
// target's allocation and dst's own backing is released. This is the
// mechanism of node heap aliasing (paper §3.8, Figure 7).
func (s *Space) Alias(dst, target Addr) error {
	seg, ok := s.segs.Get(dst)
	if !ok {
		return fmt.Errorf("xmem: Alias(%#x): not an allocation base", uint64(dst))
	}
	tloc, err := s.Lookup(target)
	if err != nil {
		return fmt.Errorf("xmem: Alias target: %w", err)
	}
	if tloc.Off+seg.Size > tloc.Seg.Size {
		return fmt.Errorf("xmem: Alias: %d bytes at target offset %d escape target segment (size %d)",
			seg.Size, tloc.Off, tloc.Seg.Size)
	}
	// Resolve to the final target so chains stay depth-1.
	seg.AliasTo = tloc.Seg.Base + Addr(tloc.Off)
	seg.Backing = nil
	if seg.Kind == HostMem {
		s.hostUsed -= seg.Size
	} else {
		s.devUsed[seg.Device] -= seg.Size
	}
	return nil
}

// HostUsed reports live (non-alias) host bytes.
func (s *Space) HostUsed() int64 { return s.hostUsed }

// DeviceUsed reports live bytes on device dev.
func (s *Space) DeviceUsed(dev int) int64 { return s.devUsed[dev] }

// Segments reports the number of mapped segments.
func (s *Space) Segments() int { return s.segs.Len() }
