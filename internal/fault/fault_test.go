package fault

import (
	"reflect"
	"testing"

	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

func mustParse(t *testing.T, text string) *Spec {
	t.Helper()
	sp, err := ParseSpec(text)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", text, err)
	}
	return sp
}

func TestParseSpec(t *testing.T) {
	sp := mustParse(t, "42:degrade=*:4:1ms:5ms,flap=1:2ms:500us,rdmaflap=*:1ms:100us,"+
		"stall=0:0.5:10us,straggle=0:1.5,copyfail=*:0.25,timeout=2ms,retries=6,backoff=50us")
	if sp.Seed != 42 {
		t.Fatalf("seed = %d", sp.Seed)
	}
	if sp.Timeout() != 2*sim.Millisecond || sp.Retries() != 6 || sp.Backoff() != 50*sim.Microsecond {
		t.Fatalf("resilience knobs: %v %d %v", sp.Timeout(), sp.Retries(), sp.Backoff())
	}
	if len(sp.degrades) != 1 || len(sp.flaps) != 2 || len(sp.stalls) != 1 ||
		len(sp.straggles) != 1 || len(sp.copyFails) != 1 {
		t.Fatalf("rule counts: %+v", sp)
	}
	if sp.String() == "" {
		t.Fatal("String() lost the spec")
	}
}

// TestSpecStringRoundTrip: ParseSpec(sp.String()) must reproduce sp exactly
// for every rule kind and every knob — the property that lets chaos specs
// participate in content-addressed cache keys and be echoed in job status.
func TestSpecStringRoundTrip(t *testing.T) {
	cases := []string{
		// each rule kind alone, with every optional field exercised
		"1:degrade=*:4",
		"1:degrade=2:1.5:1ms",
		"1:degrade=0:2:500us:2ms",
		"1:flap=*:2ms:500us",
		"1:flap=3:1s:250ms",
		"1:rdmaflap=1:2ms:500us",
		"1:stall=0:0.5:10us",
		"1:stall=*:0.125:1500ns",
		"1:straggle=*:2",
		"1:straggle=0:1.5:1ms:5ms",
		"1:copyfail=*:0.25",
		"1:copyfail=7:1",
		// each knob alone
		"1:timeout=2ms",
		"1:retries=6",
		"1:backoff=50us",
		// everything at once, deliberately out of canonical order
		"42:backoff=50us,copyfail=*:0.25,straggle=0:1.5,stall=0:0.5:10us," +
			"rdmaflap=*:1ms:100us,flap=1:2ms:500us,degrade=*:4:1ms:5ms,timeout=2ms,retries=6",
		// duplicate kinds: relative order within a kind must survive
		"9:straggle=*:1.5,straggle=0:2,degrade=0:2,degrade=1:3",
		// fractional durations that still have an exact ns form
		"3:stall=0:0.5:1.5us,flap=0:1.5ms:0.5ms",
	}
	for _, text := range cases {
		sp1 := mustParse(t, text)
		canon := sp1.String()
		sp2, err := ParseSpec(canon)
		if err != nil {
			t.Errorf("ParseSpec(%q).String() = %q does not re-parse: %v", text, canon, err)
			continue
		}
		if !reflect.DeepEqual(sp1, sp2) {
			t.Errorf("round trip of %q not identity:\n canon %q\n sp1 %+v\n sp2 %+v", text, canon, sp1, sp2)
		}
		if again := sp2.String(); again != canon {
			t.Errorf("String not a fixed point for %q: %q then %q", text, canon, again)
		}
	}
}

// TestSpecStringCanonicalOrder: two textual orderings of the same rules
// within a kind group plus knobs must render identically.
func TestSpecStringCanonicalOrder(t *testing.T) {
	a := mustParse(t, "5:retries=3,copyfail=*:0.5,degrade=0:2")
	b := mustParse(t, "5:degrade=0:2,copyfail=*:0.5,retries=3")
	if a.String() != b.String() {
		t.Fatalf("knob/rule ordering leaked into canonical form:\n %q\n %q", a.String(), b.String())
	}
	if a.String() != "5:degrade=0:2,copyfail=*:0.5,retries=3" {
		t.Fatalf("unexpected canonical form %q", a.String())
	}
}

func TestParseSpecDefaults(t *testing.T) {
	sp := mustParse(t, "7:straggle=*:2")
	if sp.Timeout() != DefaultTimeout || sp.Retries() != DefaultRetries || sp.Backoff() != DefaultBackoff {
		t.Fatalf("defaults: %v %d %v", sp.Timeout(), sp.Retries(), sp.Backoff())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, text := range []string{
		"no-seed-rule",          // missing seed separator
		"x:straggle=*:2",        // bad seed
		"1:bogus=1:2",           // unknown rule
		"1:degrade=*:0.5",       // factor < 1
		"1:flap=0:1ms:2ms",      // down >= period
		"1:stall=0:1.5:1us",     // probability > 1
		"1:copyfail=q:0.5",      // bad node
		"1:degrade=0:2:5ms:1ms", // window end before start
		"1:timeout=10",          // missing duration unit
		"1:retries=0",           // retries < 1
		"1:straggle",            // missing args
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q): expected error", text)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	sp := mustParse(t, "99:flap=*:2ms:300us,stall=*:0.5:10us,copyfail=*:0.3,degrade=1:2")
	draw := func() []any {
		p := NewPlan(sp, 4)
		var out []any
		for i := 0; i < 64; i++ {
			node := i % 4
			at := sim.Time(i) * 100_000
			out = append(out, p.LinkUp(node, at), p.RDMAUp(node, at),
				p.SendStall(node, at), p.CopyFail(node, at), p.LinkFactor(node, at))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFlapPeriodicity(t *testing.T) {
	// A 1ms period with 250us down must be down for exactly 1/4 of a long
	// sampling window, at every node, regardless of phase.
	sp := mustParse(t, "5:flap=*:1ms:250us")
	p := NewPlan(sp, 2)
	const samples = 4000
	down := 0
	for i := 0; i < samples; i++ {
		if !p.LinkUp(0, sim.Time(i)*sim.Time(sim.Microsecond)) {
			down++
		}
	}
	if down != samples/4 {
		t.Fatalf("down %d/%d samples, want exactly 1/4", down, samples)
	}
	// Full-link flap also takes RDMA down at the same instants.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Time(sim.Microsecond)
		if p.LinkUp(0, at) != p.RDMAUp(0, at) {
			t.Fatalf("full-link flap must imply RDMA down at %v", at)
		}
	}
}

func TestRDMAFlapLeavesLinkUp(t *testing.T) {
	sp := mustParse(t, "5:rdmaflap=0:1ms:400us")
	p := NewPlan(sp, 2)
	sawDown := false
	for i := 0; i < 2000; i++ {
		at := sim.Time(i) * sim.Time(sim.Microsecond)
		if !p.LinkUp(0, at) {
			t.Fatalf("rdmaflap must not take the full link down (t=%v)", at)
		}
		if !p.RDMAUp(0, at) {
			sawDown = true
		}
		if !p.RDMAUp(1, at) {
			t.Fatalf("rule scoped to node 0 hit node 1 (t=%v)", at)
		}
	}
	if !sawDown {
		t.Fatal("rdmaflap never took RDMA down")
	}
}

func TestDegradeWindow(t *testing.T) {
	sp := mustParse(t, "5:degrade=1:4:1ms:2ms")
	p := NewPlan(sp, 2)
	ms := sim.Time(sim.Millisecond)
	if f := p.LinkFactor(1, ms/2); f != 1 {
		t.Fatalf("before window: factor %v", f)
	}
	if f := p.LinkFactor(1, ms+ms/2); f != 4 {
		t.Fatalf("inside window: factor %v", f)
	}
	if f := p.LinkFactor(1, 2*ms); f != 1 {
		t.Fatalf("after window: factor %v", f)
	}
	if f := p.LinkFactor(0, ms+ms/2); f != 1 {
		t.Fatalf("other node: factor %v", f)
	}
}

func TestStraggleFactorCompounds(t *testing.T) {
	sp := mustParse(t, "5:straggle=*:1.5,straggle=0:2")
	p := NewPlan(sp, 2)
	if f := p.StraggleFactor(0, 0); f != 3 {
		t.Fatalf("node 0 factor %v, want 1.5*2", f)
	}
	if f := p.StraggleFactor(1, 0); f != 1.5 {
		t.Fatalf("node 1 factor %v, want 1.5", f)
	}
}

func TestStallAndCopyFailRates(t *testing.T) {
	sp := mustParse(t, "11:stall=0:0.5:10us,copyfail=0:0.25")
	p := NewPlan(sp, 1)
	stalls, fails := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.SendStall(0, 0) > 0 {
			stalls++
		}
		if p.CopyFail(0, 0) {
			fails++
		}
	}
	if stalls < n*4/10 || stalls > n*6/10 {
		t.Fatalf("stall rate %d/%d far from 0.5", stalls, n)
	}
	if fails < n*15/100 || fails > n*35/100 {
		t.Fatalf("copyfail rate %d/%d far from 0.25", fails, n)
	}
}

func TestTelemetryCounters(t *testing.T) {
	sp := mustParse(t, "5:degrade=0:2,copyfail=0:1")
	reg := telemetry.NewRegistry()
	p := NewPlan(sp, 1)
	p.LinkFactor(0, 100)
	p.CopyFail(0, 200)
	p.CopyFail(0, 300)
	p.FlushInto(reg)
	if v := reg.Counter(InjectedTotal, "", "kind", "degrade", "node", "0").Value(); v != 1 {
		t.Fatalf("degrade counter = %d", v)
	}
	if v := reg.Counter(InjectedTotal, "", "kind", "copyfail", "node", "0").Value(); v != 2 {
		t.Fatalf("copyfail counter = %d", v)
	}
}
