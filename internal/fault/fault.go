// Package fault is the deterministic fault-injection subsystem: a seeded
// plan of link degradations, link/RDMA flaps, NIC send stalls, compute
// stragglers, and transient device-copy failures, layered on the sim
// engine's virtual clock. All randomness forks from sim.NewRNG, so a run
// under chaos is exactly as reproducible as a healthy one — the same seed
// and spec produce byte-identical reports and profiles, serial or parallel.
//
// A Spec is the immutable, parseable description (the -chaos flag); a Plan
// is one run's instantiation of it, carrying the per-node random streams
// and telemetry counters. The consuming layers (topo.Fabric, msg.Hub,
// device.Runtime, core.Task) each see the Plan through a narrow interface
// of their own, so no package below core imports this one.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

// InjectedTotal is the telemetry counter family counting injected fault
// events, labeled by kind (degrade, linkdown, rdmadown, stall, straggle,
// copyfail) and node index.
const InjectedTotal = "fault_injected_total"

// Default resilience parameters, used when the spec leaves them unset.
const (
	// DefaultTimeout bounds how long a posted internode receive waits for
	// its message before failing with a timeout error.
	DefaultTimeout = 500 * sim.Millisecond
	// DefaultRetries bounds send re-attempts across a down link.
	DefaultRetries = 8
	// DefaultBackoff is the first retry delay; each further attempt
	// doubles it (deterministic exponential backoff).
	DefaultBackoff = 100 * sim.Microsecond
	// DefaultCopyRetries bounds re-attempts of a transiently failing
	// device copy.
	DefaultCopyRetries = 3
)

// window is a half-open virtual-time interval [Start, End); End <= 0 means
// "until the end of the run".
type window struct {
	Start, End sim.Time
}

func (w window) contains(t sim.Time) bool {
	return t >= w.Start && (w.End <= 0 || t < w.End)
}

// degradeRule multiplies the NIC occupancy of one node while active.
type degradeRule struct {
	node   int // -1 = every node
	factor float64
	win    window
}

// flapRule takes a node's link (or only its RDMA capability) down for Down
// out of every Period, with a deterministic per-node phase drawn at plan
// creation.
type flapRule struct {
	node     int // -1 = every node
	period   sim.Dur
	down     sim.Dur
	rdmaOnly bool
}

// stallRule adds an extra injection delay to a fraction of one node's sends.
type stallRule struct {
	node int // -1 = every node
	prob float64
	dur  sim.Dur
}

// straggleRule stretches a node's host compute by factor while active.
type straggleRule struct {
	node   int // -1 = every node
	factor float64
	win    window
}

// copyFailRule makes a fraction of a node's device copies transiently fail.
type copyFailRule struct {
	node int // -1 = every node
	prob float64
}

// Spec is the immutable description of a fault plan plus the resilience
// parameters of the runtime under it. Parse one with ParseSpec; the zero
// value injects nothing.
type Spec struct {
	// Seed drives every random draw of the plan, independently of the
	// run's own seed.
	Seed uint64

	degrades  []degradeRule
	flaps     []flapRule
	stalls    []stallRule
	straggles []straggleRule
	copyFails []copyFailRule

	timeout     sim.Dur
	retries     int
	backoff     sim.Dur
	copyRetries int
}

// String renders the spec in a canonical parseable form: rules grouped in a
// fixed kind order (degrade, flap/rdmaflap, stall, straggle, copyfail),
// original relative order preserved within each group, then the explicitly
// set resilience knobs. ParseSpec(s.String()) reproduces s exactly for
// every rule kind and knob — see TestSpecStringRoundTrip — which is what
// lets chaos specs participate in content-addressed cache keys and be
// echoed verbatim in job status.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	node := func(n int) string {
		if n < 0 {
			return "*"
		}
		return strconv.Itoa(n)
	}
	num := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	win := func(w window) string {
		switch {
		case w.End > 0:
			return ":" + sim.FormatDur(sim.Dur(w.Start)) + ":" + sim.FormatDur(sim.Dur(w.End))
		case w.Start > 0:
			return ":" + sim.FormatDur(sim.Dur(w.Start))
		default:
			return ""
		}
	}
	var rules []string
	for _, d := range s.degrades {
		rules = append(rules, "degrade="+node(d.node)+":"+num(d.factor)+win(d.win))
	}
	for _, f := range s.flaps {
		name := "flap"
		if f.rdmaOnly {
			name = "rdmaflap"
		}
		rules = append(rules, name+"="+node(f.node)+":"+sim.FormatDur(f.period)+":"+sim.FormatDur(f.down))
	}
	for _, st := range s.stalls {
		rules = append(rules, "stall="+node(st.node)+":"+num(st.prob)+":"+sim.FormatDur(st.dur))
	}
	for _, st := range s.straggles {
		rules = append(rules, "straggle="+node(st.node)+":"+num(st.factor)+win(st.win))
	}
	for _, c := range s.copyFails {
		rules = append(rules, "copyfail="+node(c.node)+":"+num(c.prob))
	}
	if s.timeout > 0 {
		rules = append(rules, "timeout="+sim.FormatDur(s.timeout))
	}
	if s.retries > 0 {
		rules = append(rules, "retries="+strconv.Itoa(s.retries))
	}
	if s.backoff > 0 {
		rules = append(rules, "backoff="+sim.FormatDur(s.backoff))
	}
	return strconv.FormatUint(s.Seed, 10) + ":" + strings.Join(rules, ",")
}

// Timeout is the per-command internode receive timeout.
func (s *Spec) Timeout() sim.Dur {
	if s.timeout > 0 {
		return s.timeout
	}
	return DefaultTimeout
}

// Retries is the send retry budget across a down link.
func (s *Spec) Retries() int {
	if s.retries > 0 {
		return s.retries
	}
	return DefaultRetries
}

// Backoff is the first retry delay (doubling per attempt).
func (s *Spec) Backoff() sim.Dur {
	if s.backoff > 0 {
		return s.backoff
	}
	return DefaultBackoff
}

// parseDur parses a duration literal like 250ns, 10us, 3ms, 1.5s into
// virtual time, via the shared grammar in sim (the same one FormatDur
// inverts, so canonical String() output always re-parses).
func parseDur(s string) (sim.Dur, error) {
	d, err := sim.ParseDur(s)
	if err != nil {
		return 0, fmt.Errorf("fault: bad duration %q", s)
	}
	return d, nil
}

// parseNode parses a node selector: * for every node, else an index.
func parseNode(s string) (int, error) {
	if s == "*" {
		return -1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("fault: bad node selector %q (index or *)", s)
	}
	return n, nil
}

// parseWindow parses the optional [START:END] tail of a rule; missing
// fields mean "whole run".
func parseWindow(args []string) (window, error) {
	var w window
	if len(args) >= 1 {
		d, err := parseDur(args[0])
		if err != nil {
			return w, err
		}
		w.Start = sim.Time(d)
	}
	if len(args) >= 2 {
		d, err := parseDur(args[1])
		if err != nil {
			return w, err
		}
		w.End = sim.Time(d)
		if w.End <= w.Start {
			return w, fmt.Errorf("fault: window end %v not after start %v", args[1], args[0])
		}
	}
	return w, nil
}

// ParseSpec parses "SEED:rule,rule,...". Rules (NODE is an index or *):
//
//	degrade=NODE:FACTOR[:START[:END]]   NIC bandwidth divided by FACTOR
//	flap=NODE:PERIOD:DOWN               link fully down DOWN per PERIOD
//	rdmaflap=NODE:PERIOD:DOWN           GPUDirect RDMA down DOWN per PERIOD
//	stall=NODE:PROB:DUR                 fraction PROB of sends stall DUR
//	straggle=NODE:FACTOR[:START[:END]]  host compute stretched by FACTOR
//	copyfail=NODE:PROB                  fraction PROB of device copies fail
//	timeout=DUR                         internode receive timeout
//	retries=N                           send retry budget
//	backoff=DUR                         first retry delay (doubles)
//
// Durations take ns/us/ms/s suffixes. Example:
//
//	8:degrade=*:4:1ms,rdmaflap=1:2ms:500us,straggle=0:1.5,retries=6
func ParseSpec(text string) (*Spec, error) {
	seedStr, rules, ok := strings.Cut(text, ":")
	if !ok {
		return nil, fmt.Errorf("fault: spec %q must be SEED:rule,rule,...", text)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: bad seed %q: %v", seedStr, err)
	}
	sp := &Spec{Seed: seed}
	for _, rule := range strings.Split(rules, ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		name, argStr, ok := strings.Cut(rule, "=")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q must be name=args", rule)
		}
		args := strings.Split(argStr, ":")
		if err := sp.addRule(name, args); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

// addRule parses one name=args rule into the spec.
func (sp *Spec) addRule(name string, args []string) error {
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("fault: %s needs at least %d args, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "degrade", "straggle":
		if err := need(2); err != nil {
			return err
		}
		node, err := parseNode(args[0])
		if err != nil {
			return err
		}
		factor, err := strconv.ParseFloat(args[1], 64)
		if err != nil || factor < 1 {
			return fmt.Errorf("fault: %s factor %q must be >= 1", name, args[1])
		}
		win, err := parseWindow(args[2:])
		if err != nil {
			return err
		}
		if name == "degrade" {
			sp.degrades = append(sp.degrades, degradeRule{node: node, factor: factor, win: win})
		} else {
			sp.straggles = append(sp.straggles, straggleRule{node: node, factor: factor, win: win})
		}
	case "flap", "rdmaflap":
		if err := need(3); err != nil {
			return err
		}
		node, err := parseNode(args[0])
		if err != nil {
			return err
		}
		period, err := parseDur(args[1])
		if err != nil {
			return err
		}
		down, err := parseDur(args[2])
		if err != nil {
			return err
		}
		if down <= 0 || down >= period {
			return fmt.Errorf("fault: %s down %v must be in (0, period %v)", name, args[2], args[1])
		}
		sp.flaps = append(sp.flaps, flapRule{node: node, period: period, down: down, rdmaOnly: name == "rdmaflap"})
	case "stall":
		if err := need(3); err != nil {
			return err
		}
		node, err := parseNode(args[0])
		if err != nil {
			return err
		}
		prob, err := strconv.ParseFloat(args[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("fault: stall probability %q must be in [0,1]", args[1])
		}
		dur, err := parseDur(args[2])
		if err != nil {
			return err
		}
		sp.stalls = append(sp.stalls, stallRule{node: node, prob: prob, dur: dur})
	case "copyfail":
		if err := need(2); err != nil {
			return err
		}
		node, err := parseNode(args[0])
		if err != nil {
			return err
		}
		prob, err := strconv.ParseFloat(args[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("fault: copyfail probability %q must be in [0,1]", args[1])
		}
		sp.copyFails = append(sp.copyFails, copyFailRule{node: node, prob: prob})
	case "timeout", "backoff":
		if err := need(1); err != nil {
			return err
		}
		d, err := parseDur(args[0])
		if err != nil {
			return err
		}
		if d <= 0 {
			return fmt.Errorf("fault: %s must be positive", name)
		}
		if name == "timeout" {
			sp.timeout = d
		} else {
			sp.backoff = d
		}
	case "retries":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("fault: retries %q must be a positive integer", args[0])
		}
		sp.retries = n
	default:
		return fmt.Errorf("fault: unknown rule %q", name)
	}
	return nil
}

// nodeState is one node's instantiated fault state: its private random
// stream (draws happen in deterministic event order, the engine being
// single-threaded) and the per-node phase of every flap rule.
type nodeState struct {
	rng    *sim.RNG
	phases []sim.Dur // one per Spec.flaps entry
}

// Plan is one run's instantiation of a Spec. Create a fresh Plan per run
// (NewRuntime does): plans carry mutable random-stream state and must never
// be shared between concurrent runs.
//
// Injection counts are buffered inside the plan rather than written to a
// registry live: queries arrive from every shard of a sharded run (RDMAUp
// in particular is asked about the destination node by the sending shard),
// so the recording must be commutative. A guarded map of (kind, node) →
// (count, latest query time) is exactly that; FlushInto replays it into a
// registry in sorted order with the buffered timestamps, producing the same
// series a serial run records live.
type Plan struct {
	spec  *Spec
	nodes []nodeState

	mu     sync.Mutex
	counts map[countKey]countVal
}

// countKey identifies one injected-fault counter series.
type countKey struct {
	kind string
	node int
}

// countVal accumulates a series: total injections and the virtual time of
// the latest one (the stamp a live counter would carry).
type countVal struct {
	n     int64
	maxAt sim.Time
}

// NewPlan instantiates spec for a system of nnodes nodes, drawing per-node
// streams and flap phases from a master generator seeded with spec.Seed.
func NewPlan(spec *Spec, nnodes int) *Plan {
	p := &Plan{spec: spec, nodes: make([]nodeState, nnodes), counts: make(map[countKey]countVal)}
	master := sim.NewRNG(spec.Seed)
	for i := range p.nodes {
		ns := &p.nodes[i]
		ns.rng = master.Fork()
		ns.phases = make([]sim.Dur, len(spec.flaps))
		for j, f := range spec.flaps {
			ns.phases[j] = sim.Dur(ns.rng.Intn(int(f.period)))
		}
	}
	return p
}

// Spec returns the immutable spec the plan was built from.
func (p *Plan) Spec() *Spec { return p.spec }

// count records one injected fault for (kind, node) at virtual time at.
// Safe from any shard: addition commutes and the stamp keeps the maximum.
func (p *Plan) count(kind string, node int, at sim.Time) {
	p.mu.Lock()
	k := countKey{kind, node}
	c := p.counts[k]
	c.n++
	if at > c.maxAt {
		c.maxAt = at
	}
	p.counts[k] = c
	p.mu.Unlock()
}

// FlushInto replays the buffered injection counts into reg in sorted
// (kind, node) order, stamping each series with its latest injection time.
// Call it once, after the simulation has finished.
func (p *Plan) FlushInto(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	keys := make([]countKey, 0, len(p.counts))
	for k := range p.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].node < keys[j].node
	})
	for _, k := range keys {
		v := p.counts[k]
		reg.Counter(InjectedTotal, "injected fault events by kind and node",
			"kind", k.kind, "node", strconv.Itoa(k.node)).AddAt(v.n, int64(v.maxAt))
	}
	p.mu.Unlock()
}

// applies reports whether a rule's node selector covers node.
func applies(ruleNode, node int) bool { return ruleNode < 0 || ruleNode == node }

// flapDown reports whether flap rule j holds node's link down at time at.
func (p *Plan) flapDown(j int, node int, at sim.Time) bool {
	f := p.spec.flaps[j]
	if !applies(f.node, node) {
		return false
	}
	pos := (sim.Dur(at) + p.nodes[node].phases[j]) % f.period
	return pos < f.down
}

// LinkFactor returns the occupancy multiplier (>= 1) for NIC transfers
// injected by node at the given time — the degraded-link model. Counted
// once per queried transfer while a degradation is active.
func (p *Plan) LinkFactor(node int, at sim.Time) float64 {
	factor := 1.0
	for _, d := range p.spec.degrades {
		if applies(d.node, node) && d.win.contains(at) {
			factor *= d.factor
		}
	}
	if factor > 1 {
		p.count("degrade", node, at)
	}
	return factor
}

// SendStall draws whether one send from node stalls at the NIC, returning
// the extra injection delay (0 = no stall). One draw per configured stall
// rule per send, in deterministic event order.
func (p *Plan) SendStall(node int, at sim.Time) sim.Dur {
	var total sim.Dur
	for _, s := range p.spec.stalls {
		if !applies(s.node, node) {
			continue
		}
		if p.nodes[node].rng.Float64() < s.prob {
			total += s.dur
		}
	}
	if total > 0 {
		p.count("stall", node, at)
	}
	return total
}

// LinkUp reports whether node's network link is up at time at (full-link
// flap rules only).
func (p *Plan) LinkUp(node int, at sim.Time) bool {
	for j, f := range p.spec.flaps {
		if !f.rdmaOnly && p.flapDown(j, node, at) {
			p.count("linkdown", node, at)
			return false
		}
	}
	return true
}

// RDMAUp reports whether node's GPUDirect RDMA capability is up at time at.
// Both full-link and RDMA-only flaps take it down; the message layer
// reroutes staged copies while it is down.
func (p *Plan) RDMAUp(node int, at sim.Time) bool {
	for j := range p.spec.flaps {
		if p.flapDown(j, node, at) {
			p.count("rdmadown", node, at)
			return false
		}
	}
	return true
}

// StraggleFactor returns the host-compute stretch factor (>= 1) for node at
// time at — the straggler model.
func (p *Plan) StraggleFactor(node int, at sim.Time) float64 {
	factor := 1.0
	for _, s := range p.spec.straggles {
		if applies(s.node, node) && s.win.contains(at) {
			factor *= s.factor
		}
	}
	if factor > 1 {
		p.count("straggle", node, at)
	}
	return factor
}

// CopyFail draws whether one device copy attempt on node transiently fails
// at time at (the stamp recorded for the injection counter).
func (p *Plan) CopyFail(node int, at sim.Time) bool {
	failed := false
	for _, c := range p.spec.copyFails {
		if applies(c.node, node) && p.nodes[node].rng.Float64() < c.prob {
			failed = true
		}
	}
	if failed {
		p.count("copyfail", node, at)
	}
	return failed
}

// CopyRetries caps re-attempts of a transiently failing device copy.
func (p *Plan) CopyRetries() int { return DefaultCopyRetries }

// Timeout is the per-command internode receive timeout.
func (p *Plan) Timeout() sim.Dur { return p.spec.Timeout() }

// Retries is the send retry budget across a down link.
func (p *Plan) Retries() int { return p.spec.Retries() }

// Backoff is the first retry delay (doubling per attempt).
func (p *Plan) Backoff() sim.Dur { return p.spec.Backoff() }
