package apps

import (
	"impacc/internal/acc"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/xmem"
)

// Jacobi2D is the two-dimensionally partitioned variant of the paper's
// Jacobi benchmark — the natural extension of §4.2's one-dimensional
// partitioning once communicators exist: tasks form a pr × pc grid; each
// owns an (N/pr) × (N/pc) tile with a ghost ring. Row halos are contiguous;
// column halos are packed into contiguous device buffers (the standard
// pack/exchange/unpack pattern), and the exchanges run over row and column
// communicators created with MPI_Comm_split.
type Jacobi2DConfig struct {
	N      int
	Iters  int
	Style  Style // StyleSync stages through host; StyleUnified is device-direct
	Verify bool
}

const (
	tag2dV = 40 // vertical (row-halo) exchange
	tag2dH = 41 // horizontal (column-halo) exchange
)

// gridShape factors n into the most square pr x pc grid.
func gridShape(n int) (pr, pc int) {
	pr = 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			pr = f
		}
	}
	return pr, n / pr
}

// Jacobi2D returns the benchmark program.
func Jacobi2D(cfg Jacobi2DConfig) core.Program {
	return func(t *core.Task) {
		n := cfg.N
		pr, pc := gridShape(t.Size())
		if n%pr != 0 || n%pc != 0 {
			t.Failf("jacobi2d: N=%d not divisible by %dx%d grid", n, pr, pc)
		}
		rows, cols := n/pr, n/pc
		myR, myC := t.Rank()/pc, t.Rank()%pc

		// Row communicator: tasks sharing a tile-row (left/right
		// neighbours); column communicator: sharing a tile-column.
		rowComm := t.World().Split(myR, myC)
		colComm := t.World().Split(myC, myR)

		w := cols + 2 // padded width
		stride := int64(w) * 8
		bufBytes := int64(rows+2) * stride
		cur := t.Malloc(bufBytes)
		nxt := t.Malloc(bufBytes)
		init2D(t, cur, nxt, rows, w, myR)

		// Column halo pack buffers (contiguous), one per side.
		colBytes := int64(rows) * 8
		sendL, sendR := t.Malloc(colBytes), t.Malloc(colBytes)
		recvL, recvR := t.Malloc(colBytes), t.Malloc(colBytes)

		t.DataEnter(cur, bufBytes, acc.Copyin)
		t.DataEnter(nxt, bufBytes, acc.Copyin)
		for _, b := range []xmem.Addr{sendL, sendR, recvL, recvR} {
			t.DataEnter(b, colBytes, acc.Create)
		}

		up, down := myR-1, myR+1
		left, right := myC-1, myC+1

		for it := 0; it < cfg.Iters; it++ {
			grid := cur
			packCols := colPackSpec(t, grid, sendL, sendR, rows, w)
			unpackCols := colUnpackSpec(t, grid, recvL, recvR, rows, w, left >= 0, right < pc)

			// --- Vertical halos over the column communicator (rows are
			// contiguous slices of the tile).
			firstRow := grid + xmem.Addr(stride+8)            // row 1, col 1
			lastRow := grid + xmem.Addr(int64(rows)*stride+8) // row rows
			topGhost := grid + xmem.Addr(8)                   // row 0
			botGhost := grid + xmem.Addr(int64(rows+1)*stride+8)
			// --- Horizontal halos: pack on device, exchange, unpack.
			t.Kernels(packCols, -1)

			exchange := func(buf xmem.Addr, count int, comm *core.Comm, peer, tag int, recv xmem.Addr) []*core.Request {
				if peer < 0 {
					return nil
				}
				var opts []core.Opt
				if cfg.Style == StyleUnified {
					opts = append(opts, core.OnDevice())
				}
				return []*core.Request{
					comm.Isend(buf, count, mpi.Float64, peer, tag, opts...),
					comm.Irecv(recv, count, mpi.Float64, peer, tag, opts...),
				}
			}
			if cfg.Style != StyleUnified {
				// Stage halos through the host.
				if up >= 0 {
					t.UpdateHost(firstRow, int64(cols)*8, -1)
				}
				if down < pr {
					t.UpdateHost(lastRow, int64(cols)*8, -1)
				}
				t.UpdateHost(sendL, colBytes, -1)
				t.UpdateHost(sendR, colBytes, -1)
			}
			var reqs []*core.Request
			if up >= 0 {
				reqs = append(reqs, exchange(firstRow, cols, colComm, up, tag2dV, topGhost)...)
			}
			if down < pr {
				reqs = append(reqs, exchange(lastRow, cols, colComm, down, tag2dV, botGhost)...)
			}
			if left >= 0 {
				reqs = append(reqs, exchange(sendL, rows, rowComm, left, tag2dH, recvL)...)
			}
			if right < pc {
				reqs = append(reqs, exchange(sendR, rows, rowComm, right, tag2dH, recvR)...)
			}
			t.Wait(reqs...)
			if cfg.Style != StyleUnified {
				if up >= 0 {
					t.UpdateDevice(topGhost, int64(cols)*8, -1)
				}
				if down < pr {
					t.UpdateDevice(botGhost, int64(cols)*8, -1)
				}
				t.UpdateDevice(recvL, colBytes, -1)
				t.UpdateDevice(recvR, colBytes, -1)
			}
			t.Kernels(unpackCols, -1)
			t.Kernels(sweep2DSpec(t, cur, nxt, rows, cols, w), -1)
			cur, nxt = nxt, cur
		}
		t.DataExit(nxt, acc.Delete)
		t.DataExit(cur, acc.Copyout)
		for _, b := range []xmem.Addr{sendL, sendR, recvL, recvR} {
			t.DataExit(b, acc.Delete)
		}
		if cfg.Verify {
			verify2D(t, cfg, cur, rows, cols, w, myR, myC)
		}
	}
}

// init2D zeroes both grids and fixes the global top boundary at 1 for
// top-row tiles.
func init2D(t *core.Task, cur, nxt xmem.Addr, rows, w, myR int) {
	for _, g := range []xmem.Addr{cur, nxt} {
		v := t.Floats(g, (rows+2)*w)
		if v == nil {
			return
		}
		for i := range v {
			v[i] = 0
		}
		if myR == 0 {
			for j := 0; j < w; j++ {
				v[j] = 1
			}
		}
	}
}

// colPackSpec packs the leftmost and rightmost owned columns into the
// contiguous send buffers, on the device.
func colPackSpec(t *core.Task, grid, sendL, sendR xmem.Addr, rows, w int) device.KernelSpec {
	return device.KernelSpec{
		Name: "pack-cols", Bytes: 4 * 8 * float64(rows), Kind: device.KindMemory,
		Body: func() {
			g := t.Floats(t.DevicePtr(grid), (rows+2)*w)
			l := t.Floats(t.DevicePtr(sendL), rows)
			r := t.Floats(t.DevicePtr(sendR), rows)
			if g == nil {
				return
			}
			for i := 0; i < rows; i++ {
				l[i] = g[(i+1)*w+1]
				r[i] = g[(i+1)*w+w-2]
			}
		},
	}
}

// colUnpackSpec writes received column halos into the ghost columns.
func colUnpackSpec(t *core.Task, grid, recvL, recvR xmem.Addr, rows, w int, haveL, haveR bool) device.KernelSpec {
	return device.KernelSpec{
		Name: "unpack-cols", Bytes: 4 * 8 * float64(rows), Kind: device.KindMemory,
		Body: func() {
			g := t.Floats(t.DevicePtr(grid), (rows+2)*w)
			if g == nil {
				return
			}
			if haveL {
				l := t.Floats(t.DevicePtr(recvL), rows)
				for i := 0; i < rows; i++ {
					g[(i+1)*w] = l[i]
				}
			}
			if haveR {
				r := t.Floats(t.DevicePtr(recvR), rows)
				for i := 0; i < rows; i++ {
					g[(i+1)*w+w-1] = r[i]
				}
			}
		},
	}
}

// sweep2DSpec is the 5-point update over the owned tile.
func sweep2DSpec(t *core.Task, cur, nxt xmem.Addr, rows, cols, w int) device.KernelSpec {
	return device.KernelSpec{
		Name:  "jacobi2d",
		FLOPs: 4 * float64(rows) * float64(cols),
		Bytes: 2 * 8 * float64(rows) * float64(cols),
		Kind:  device.KindMemory,
		Body: func() {
			cv := t.Floats(t.DevicePtr(cur), (rows+2)*w)
			nv := t.Floats(t.DevicePtr(nxt), (rows+2)*w)
			if cv == nil || nv == nil {
				return
			}
			for i := 1; i <= rows; i++ {
				for j := 1; j <= cols; j++ {
					nv[i*w+j] = 0.25 * (cv[(i-1)*w+j] + cv[(i+1)*w+j] + cv[i*w+j-1] + cv[i*w+j+1])
				}
			}
		},
	}
}

// verify2D recomputes the global iteration serially and compares the tile.
func verify2D(t *core.Task, cfg Jacobi2DConfig, final xmem.Addr, rows, cols, w, myR, myC int) {
	got := t.Floats(final, (rows+2)*w)
	if got == nil {
		return
	}
	n := cfg.N
	gw := n + 2
	ref := make([]float64, (n+2)*gw)
	tmp := make([]float64, (n+2)*gw)
	for j := 0; j < gw; j++ {
		ref[j], tmp[j] = 1, 1
	}
	for it := 0; it < cfg.Iters; it++ {
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				tmp[i*gw+j] = 0.25 * (ref[(i-1)*gw+j] + ref[(i+1)*gw+j] + ref[i*gw+j-1] + ref[i*gw+j+1])
			}
		}
		ref, tmp = tmp, ref
	}
	baseR, baseC := myR*rows, myC*cols
	for i := 1; i <= rows; i++ {
		for j := 1; j <= cols; j++ {
			want := ref[(baseR+i)*gw+baseC+j]
			if err := checkClose("jacobi2d cell", got[i*w+j], want, 1e-12); err != nil {
				t.Failf("tile (%d,%d) cell (%d,%d): %v", myR, myC, i, j, err)
			}
		}
	}
}
