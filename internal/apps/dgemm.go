package apps

import (
	"impacc/internal/acc"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/xmem"
)

// DGEMMConfig parameterizes the dense matrix-matrix multiply benchmark
// (paper §4.2): C = A × B over N×N doubles, A row-partitioned across the
// tasks, B broadcast. "The root task, whose rank is zero, sends the input
// sub-matrices to all of the other tasks, and then receives the output
// sub-matrices from them." Both inputs are read-only, so under IMPACC the
// distribution becomes node heap aliasing for intra-node tasks.
type DGEMMConfig struct {
	N      int
	Style  Style
	Verify bool // check C against a serial reference (backed runs only)
}

const (
	tagA = 10
	tagC = 12
)

// DGEMM returns the benchmark program.
func DGEMM(cfg DGEMMConfig) core.Program {
	return func(t *core.Task) {
		n := cfg.N
		p := t.Size()
		if n%p != 0 {
			t.Failf("dgemm: N=%d not divisible by %d tasks", n, p)
		}
		rows := n / p
		blockBytes := int64(rows) * int64(n) * 8
		fullBytes := int64(n) * int64(n) * 8

		ro := []core.Opt{core.ReadOnly()}
		b := t.Malloc(fullBytes) // full B everywhere
		c := t.Malloc(blockBytes)

		if t.Rank() == 0 {
			afull := t.Malloc(fullBytes) // root holds all of A
			if av := t.Floats(afull, n*n); av != nil {
				bv := t.Floats(b, n*n)
				r := t.RNG()
				for i := range av {
					av[i] = r.Float64() - 0.5
					bv[i] = r.Float64() - 0.5
				}
			}
			// Distribute A row-blocks (readonly sends from offsets of the
			// root's allocation — the Figure 7 aliasing pattern) and
			// broadcast B.
			for dst := 1; dst < p; dst++ {
				off := xmem.Addr(int64(dst) * blockBytes)
				t.Send(afull+off, rows*n, mpi.Float64, dst, tagA, ro...)
			}
			t.Bcast(b, n*n, mpi.Float64, 0, ro...)
			// Root computes block 0 in place.
			dgemmLocal(t, cfg, afull, b, c, rows, n, -1)
			// Collect the other tasks' C blocks.
			cfull := t.Malloc(fullBytes)
			t.CopyLocal(cfull, c, blockBytes)
			for src := 1; src < p; src++ {
				off := xmem.Addr(int64(src) * blockBytes)
				t.Recv(cfull+off, rows*n, mpi.Float64, src, tagC)
			}
			if cfg.Verify {
				verifyDGEMM(t, afull, b, cfull, n)
			}
			return
		}
		a := t.Malloc(blockBytes)
		t.Recv(a, rows*n, mpi.Float64, 0, tagA, ro...)
		t.Bcast(b, n*n, mpi.Float64, 0, ro...)
		dgemmLocal(t, cfg, a, b, c, rows, n, 0)
	}
}

// dgemmLocal offloads the block multiply in the configured style and, when
// sendTo >= 0, returns the C block to that rank.
func dgemmLocal(t *core.Task, cfg DGEMMConfig, a, b, c xmem.Addr, rows, n, sendTo int) {
	blockBytes := int64(rows) * int64(n) * 8
	fullBytes := int64(n) * int64(n) * 8
	spec := device.KernelSpec{
		Name:  "dgemm",
		FLOPs: 2 * float64(rows) * float64(n) * float64(n),
		Bytes: float64(blockBytes)*2 + float64(fullBytes),
		Kind:  device.KindCompute,
		Gangs: rows, Workers: 8, Vector: 32,
		Body: func() { gemmBody(t, a, b, c, rows, n) },
	}
	switch cfg.Style {
	case StyleSync:
		// Figure 4 (a): synchronous constructs, blocking MPI.
		t.DataEnter(a, blockBytes, acc.Copyin)
		t.DataEnter(b, fullBytes, acc.Copyin)
		t.DataEnter(c, blockBytes, acc.Create)
		t.Kernels(spec, -1)
		t.DataExit(c, acc.Copyout)
		if sendTo >= 0 {
			t.Send(c, rows*n, mpi.Float64, sendTo, tagC)
		}
	case StyleAsync:
		// Figure 4 (b): async queue + explicit wait before MPI.
		t.DataEnter(a, blockBytes, acc.Create)
		t.DataEnter(b, fullBytes, acc.Create)
		t.DataEnter(c, blockBytes, acc.Create)
		t.UpdateDevice(a, blockBytes, 1)
		t.UpdateDevice(b, fullBytes, 1)
		t.Kernels(spec, 1)
		t.UpdateHost(c, blockBytes, 1)
		t.ACCWait(1)
		if sendTo >= 0 {
			t.Wait(t.Isend(c, rows*n, mpi.Float64, sendTo, tagC))
		}
		t.DataExit(c, acc.Delete)
	default:
		// Figure 4 (c): everything on the unified activity queue; the C
		// block is sent straight from device memory.
		t.DataEnter(a, blockBytes, acc.Create)
		t.DataEnter(b, fullBytes, acc.Create)
		t.DataEnter(c, blockBytes, acc.Create)
		t.UpdateDevice(a, blockBytes, 1)
		t.UpdateDevice(b, fullBytes, 1)
		t.Kernels(spec, 1)
		if sendTo >= 0 {
			t.Isend(c, rows*n, mpi.Float64, sendTo, tagC, core.OnDevice(), core.Async(1))
		} else {
			t.UpdateHost(c, blockBytes, 1) // root assembles on the host
		}
		t.ACCWait(1)
		t.DataExit(c, acc.Delete)
	}
	t.DataExit(b, acc.Delete)
	t.DataExit(a, acc.Delete)
}

// gemmBody is the real computation, run on the device copies.
func gemmBody(t *core.Task, a, b, c xmem.Addr, rows, n int) {
	av := t.Floats(t.DevicePtr(a), rows*n)
	bv := t.Floats(t.DevicePtr(b), n*n)
	cv := t.Floats(t.DevicePtr(c), rows*n)
	if av == nil || bv == nil || cv == nil {
		return
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += av[i*n+k] * bv[k*n+j]
			}
			cv[i*n+j] = sum
		}
	}
}

// verifyDGEMM spot-checks the assembled C against a serial reference.
func verifyDGEMM(t *core.Task, a, b, c xmem.Addr, n int) {
	av := t.Floats(a, n*n)
	bv := t.Floats(b, n*n)
	cv := t.Floats(c, n*n)
	if av == nil {
		return // unbacked run: nothing to verify
	}
	r := t.RNG().Fork()
	for s := 0; s < 64; s++ {
		i, j := r.Intn(n), r.Intn(n)
		var want float64
		for k := 0; k < n; k++ {
			want += av[i*n+k] * bv[k*n+j]
		}
		if err := checkClose("dgemm C", cv[i*n+j], want, 1e-9); err != nil {
			t.Fail(err)
		}
	}
}
