package apps

import (
	"impacc/internal/acc"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/xmem"
)

// LULESHConfig parameterizes the shock-hydrodynamics proxy (paper §4.2):
// tasks form a cubic lattice (their count must be a perfect cube), each
// owning an Edge³ element sub-mesh. Every Lagrange step runs O(Edge³)
// device compute and exchanges O(Edge²) surface elements with face
// neighbours, then agrees on the time increment with an MPI_Allreduce — so
// the computation-to-communication ratio grows with the per-task problem
// size, the weak-scaling knob of Figure 15.
//
// Following the paper ("we run unmodified LULESH 2.0.2 MPI+OpenACC version
// for both MPI+OpenACC and IMPACC, and thus all communications between
// tasks are host-to-host communications"), the same program runs under both
// runtimes: halos stage through host buffers; the runtimes differ only in
// pinning, transport, and handler behaviour.
type LULESHConfig struct {
	Edge   int // elements per task edge (s in "s^3 per task")
	Steps  int
	Verify bool
}

const tagFace = 30

// luleshFlopsPerElem approximates the per-element Lagrange-leapfrog cost of
// one full LULESH time step — roughly 45 kernels covering force
// calculation, element integration, and material updates, ~2.5k flops and
// ~200 bytes of state traffic per element.
const (
	luleshFlopsPerElem = 2500
	luleshBytesPerElem = 200
)

// luInitialEnergy is LULESH's Sedov blast deposit.
const luInitialEnergy = 3.948746e+7

// luFace describes one face-neighbour exchange.
type luFace struct {
	peer      int
	axis, dir int
	sendBuf   xmem.Addr
	recvBuf   xmem.Addr
}

// idx3 maps (x,y,z) to the linear element index of an s^3 grid.
func idx3(x, y, z, s int) int { return z*s*s + y*s + x }

func cubeRoot(n int) int {
	for s := 1; s*s*s <= n; s++ {
		if s*s*s == n {
			return s
		}
	}
	return 0
}

// luFaces computes the face neighbours of rank me in a side^3 lattice.
func luFaces(me, side int) []luFace {
	mz, rem := me/(side*side), me%(side*side)
	my, mx := rem/side, rem%side
	var out []luFace
	add := func(x, y, z, axis, dir int) {
		if x < 0 || y < 0 || z < 0 || x >= side || y >= side || z >= side {
			return
		}
		out = append(out, luFace{peer: z*side*side + y*side + x, axis: axis, dir: dir})
	}
	add(mx-1, my, mz, 0, -1)
	add(mx+1, my, mz, 0, +1)
	add(mx, my-1, mz, 1, -1)
	add(mx, my+1, mz, 1, +1)
	add(mx, my, mz-1, 2, -1)
	add(mx, my, mz+1, 2, +1)
	return out
}

// LULESH returns the proxy program.
func LULESH(cfg LULESHConfig) core.Program {
	return func(t *core.Task) {
		side := cubeRoot(t.Size())
		if side == 0 {
			t.Failf("lulesh: %d tasks is not a perfect cube", t.Size())
		}
		s := cfg.Edge
		elems := s * s * s
		meshBytes := int64(elems) * 8
		faceBytes := int64(s) * int64(s) * 8

		field := t.Malloc(meshBytes)
		luInit(t.Floats(field, elems), t.Rank())
		faces := luFaces(t.Rank(), side)
		for i := range faces {
			faces[i].sendBuf = t.Malloc(faceBytes)
			faces[i].recvBuf = t.Malloc(faceBytes)
		}
		dtLocal := t.Malloc(8)
		dtGlobal := t.Malloc(8)

		t.DataEnter(field, meshBytes, acc.Copyin)
		for _, f := range faces {
			t.DataEnter(f.sendBuf, faceBytes, acc.Create)
			t.DataEnter(f.recvBuf, faceBytes, acc.Create)
		}
		relax := device.KernelSpec{
			Name:  "lagrange-leapfrog",
			FLOPs: float64(elems) * luleshFlopsPerElem,
			Bytes: luleshBytesPerElem * float64(elems),
			Kind:  device.KindMixed,
			Gangs: s * s, Workers: 4, Vector: 64,
			Body: func() {
				if v := t.Floats(t.DevicePtr(field), elems); v != nil {
					relax3D(v, s)
				}
			},
		}
		surf := float64(len(faces)) * float64(s*s) * 8
		pack := device.KernelSpec{
			Name: "pack-faces", Bytes: 2 * surf, Kind: device.KindMemory,
			Gangs: len(faces), Workers: 4, Vector: 64,
			Body: func() {
				fv := t.Floats(t.DevicePtr(field), elems)
				for _, f := range faces {
					packPlane(fv, t.Floats(t.DevicePtr(f.sendBuf), s*s), f, s)
				}
			},
		}
		unpack := device.KernelSpec{
			Name: "unpack-faces", Bytes: 3 * surf, Kind: device.KindMemory,
			Gangs: len(faces), Workers: 4, Vector: 64,
			Body: func() {
				fv := t.Floats(t.DevicePtr(field), elems)
				for _, f := range faces {
					unpackPlane(fv, t.Floats(t.DevicePtr(f.recvBuf), s*s), f, s)
				}
			},
		}

		for step := 0; step < cfg.Steps; step++ {
			t.Kernels(relax, -1)
			// Surface exchange: pack faces into contiguous buffers on the
			// device, move only the packed surfaces over PCIe, exchange
			// host-to-host (LULESH's CommSend/CommRecv pattern), unpack.
			t.Kernels(pack, -1)
			for _, f := range faces {
				t.UpdateHost(f.sendBuf, faceBytes, -1)
			}
			var reqs []*core.Request
			for _, f := range faces {
				reqs = append(reqs,
					t.Isend(f.sendBuf, s*s, mpi.Float64, f.peer, tagFace),
					t.Irecv(f.recvBuf, s*s, mpi.Float64, f.peer, tagFace))
			}
			t.Wait(reqs...)
			for _, f := range faces {
				t.UpdateDevice(f.recvBuf, faceBytes, -1)
			}
			t.Kernels(unpack, -1)
			// Host-side time-constraint work and the dt reduction.
			t.Compute(float64(elems) * 4)
			if v := t.Floats(dtLocal, 1); v != nil {
				v[0] = 1e-3 / float64(step+1+t.Rank()%3)
			}
			t.Allreduce(dtLocal, dtGlobal, 1, mpi.Float64, mpi.Min)
		}
		for _, f := range faces {
			t.DataExit(f.sendBuf, acc.Delete)
			t.DataExit(f.recvBuf, acc.Delete)
		}
		t.DataExit(field, acc.Copyout)
		if cfg.Verify {
			verifyLULESH(t, field, cfg, side)
		}
	}
}

// luInit deposits the initial blast energy at task 0's origin corner.
func luInit(v []float64, rank int) {
	if v == nil {
		return
	}
	for i := range v {
		v[i] = 0
	}
	if rank == 0 {
		v[0] = luInitialEnergy
	}
}

// relax3D is one diffusion-flavoured sweep standing in for the hydro
// update: each element averages with its in-cube neighbours.
func relax3D(v []float64, s int) {
	out := make([]float64, len(v))
	dirs := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for z := 0; z < s; z++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				i := idx3(x, y, z, s)
				sum, cnt := v[i], 1.0
				for _, d := range dirs {
					nx, ny, nz := x+d[0], y+d[1], z+d[2]
					if nx < 0 || ny < 0 || nz < 0 || nx >= s || ny >= s || nz >= s {
						continue
					}
					sum += v[idx3(nx, ny, nz, s)]
					cnt++
				}
				out[i] = sum / cnt
			}
		}
	}
	copy(v, out)
}

// planeIndex returns the element index of cell (a,b) on the face plane.
func planeIndex(f luFace, a, b, s int) int {
	plane := 0
	if f.dir > 0 {
		plane = s - 1
	}
	switch f.axis {
	case 0:
		return idx3(plane, a, b, s)
	case 1:
		return idx3(a, plane, b, s)
	default:
		return idx3(a, b, plane, s)
	}
}

// packPlane copies a boundary plane into a send buffer.
func packPlane(v, buf []float64, f luFace, s int) {
	if v == nil || buf == nil {
		return
	}
	k := 0
	for a := 0; a < s; a++ {
		for b := 0; b < s; b++ {
			buf[k] = v[planeIndex(f, a, b, s)]
			k++
		}
	}
}

// unpackPlane folds a received plane into the boundary elements with a
// symmetric average.
func unpackPlane(v, buf []float64, f luFace, s int) {
	if v == nil || buf == nil {
		return
	}
	k := 0
	for a := 0; a < s; a++ {
		for b := 0; b < s; b++ {
			i := planeIndex(f, a, b, s)
			v[i] = 0.5 * (v[i] + buf[k])
			k++
		}
	}
}

// verifyLULESH replays the entire distributed scheme serially (all task
// grids in one place) and compares this task's final field bit-for-bit.
func verifyLULESH(t *core.Task, field xmem.Addr, cfg LULESHConfig, side int) {
	got := t.Floats(field, cfg.Edge*cfg.Edge*cfg.Edge)
	if got == nil {
		return
	}
	s := cfg.Edge
	p := side * side * side
	grids := make([][]float64, p)
	for r := range grids {
		grids[r] = make([]float64, s*s*s)
		luInit(grids[r], r)
	}
	for step := 0; step < cfg.Steps; step++ {
		for r := range grids {
			relax3D(grids[r], s)
		}
		// Exchange: snapshot planes first, then fold in.
		type pl struct {
			r   int
			f   luFace
			buf []float64
		}
		var planes []pl
		for r := range grids {
			for _, f := range luFaces(r, side) {
				buf := make([]float64, s*s)
				// The data I receive is the peer's mirrored plane.
				mirror := luFace{axis: f.axis, dir: -f.dir}
				packPlane(grids[f.peer], buf, mirror, s)
				planes = append(planes, pl{r, f, buf})
			}
		}
		for _, q := range planes {
			unpackPlane(grids[q.r], q.buf, q.f, s)
		}
	}
	want := grids[t.Rank()]
	for i := range want {
		if err := checkClose("lulesh field", got[i], want[i], 1e-12); err != nil {
			t.Failf("rank %d elem %d: %v", t.Rank(), i, err)
		}
	}
}
