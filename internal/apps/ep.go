package apps

import (
	"math"

	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
)

// EPClass is a NAS EP problem class: the benchmark generates 2^(M+1)
// uniform pseudo-random pairs, accepts those inside the unit circle via the
// Marsaglia polar method, and histograms the resulting Gaussian deviates
// into ten annuli (NPB, paper §4.2).
type EPClass struct {
	Name string
	M    int // log2 of pair count minus 1
}

// NAS problem classes, plus the paper's Titan class ("64 times bigger than
// the NPB's biggest class").
var (
	EPClassS = EPClass{"S", 23}
	EPClassW = EPClass{"W", 25}
	EPClassA = EPClass{"A", 27}
	EPClassB = EPClass{"B", 29}
	EPClassC = EPClass{"C", 31}
	EPClassD = EPClass{"D", 35}
	EPClassE = EPClass{"E", 39}
	EPClassT = EPClass{"64xE", 45} // Titan class
)

// Pairs returns the total number of random pairs.
func (c EPClass) Pairs() float64 { return math.Pow(2, float64(c.M+1)) }

// EPConfig parameterizes the EP run.
type EPConfig struct {
	Class EPClass
	Style Style
	// SampleShift reduces the pairs actually *executed* per task to
	// 2^(M+1-SampleShift) while pricing the kernel at full scale; 0 runs
	// everything (only sensible for tiny classes in tests).
	SampleShift int
	Verify      bool
}

// epFlopsPerPair approximates the NPB EP cost: two uniforms, the polar
// test, a log/sqrt on acceptance.
const epFlopsPerPair = 28

// EP returns the benchmark program. EP "requires no communication between
// tasks except for the final reduction, and the kernel execution time
// dominates" — IMPACC and MPI+OpenACC are expected to tie.
func EP(cfg EPConfig) core.Program {
	return func(t *core.Task) {
		total := cfg.Class.Pairs()
		perTask := total / float64(t.Size())

		// counts[0..9]: annuli; counts[10], counts[11]: sum of X, sum of Y.
		local := t.Malloc(12 * 8)
		global := t.Malloc(12 * 8)
		lv := t.Floats(local, 12)

		exec := 0.0
		if lv != nil {
			exec = perTask / math.Pow(2, float64(cfg.SampleShift))
		}
		spec := device.KernelSpec{
			Name:  "ep",
			FLOPs: perTask * epFlopsPerPair,
			Kind:  device.KindCompute,
			Gangs: 1 << 10, Workers: 8, Vector: 128,
			Body: func() { epBody(t, lv, int64(exec)) },
		}
		switch cfg.Style {
		case StyleSync:
			t.Kernels(spec, -1)
		default:
			t.Kernels(spec, 1)
			t.ACCWait(1)
		}
		t.Allreduce(local, global, 12, mpi.Float64, mpi.Sum)

		if cfg.Verify && lv != nil {
			gv := t.Floats(global, 12)
			var accepted float64
			for i := 0; i < 10; i++ {
				accepted += gv[i]
			}
			// Polar-method acceptance rate is π/4; with 10 annuli of the
			// Gaussian radius, virtually all accepted pairs land in them.
			wantPairs := exec * float64(t.Size())
			if err := checkClose("ep acceptance", accepted/wantPairs, math.Pi/4, 0.05); err != nil {
				t.Fail(err)
			}
		}
	}
}

// epBody generates pairs for real on the backed run.
func epBody(t *core.Task, counts []float64, pairs int64) {
	if counts == nil {
		return
	}
	r := t.RNG().Fork()
	for i := int64(0); i < pairs; i++ {
		x := 2*r.Float64() - 1
		y := 2*r.Float64() - 1
		s := x*x + y*y
		if s > 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		gx, gy := x*f, y*f
		m := math.Max(math.Abs(gx), math.Abs(gy))
		bin := int(m)
		if bin > 9 {
			bin = 9
		}
		counts[bin]++
		counts[10] += gx
		counts[11] += gy
	}
}
