package apps

import (
	"impacc/internal/acc"
	"impacc/internal/core"
	"impacc/internal/device"
	"impacc/internal/mpi"
	"impacc/internal/xmem"
)

// JacobiConfig parameterizes the 2-D Jacobi iteration (paper §4.2): an N×N
// mesh partitioned in one dimension across the tasks, with halo rows
// exchanged between neighbours each sweep. Under IMPACC the halo exchange
// runs device-to-device (Figure 14); the baseline stages through host
// buffers.
type JacobiConfig struct {
	N      int // mesh edge
	Iters  int
	Style  Style
	Verify bool
}

const (
	tagUp   = 20 // to rank-1 (my first row becomes their bottom ghost)
	tagDown = 21 // to rank+1
)

// Jacobi returns the benchmark program.
func Jacobi(cfg JacobiConfig) core.Program {
	return func(t *core.Task) {
		n, p := cfg.N, t.Size()
		if n%p != 0 {
			t.Failf("jacobi: N=%d not divisible by %d tasks", n, p)
		}
		rows := n / p
		w := n                              // row width
		stride := int64(w) * 8              // bytes per row
		bufRows := rows + 2                 // with ghost rows
		bufBytes := int64(bufRows) * stride // one grid
		up, down := t.Rank()-1, t.Rank()+1  // neighbours
		haveUp, haveDown := up >= 0, down < p

		cur := t.Malloc(bufBytes)
		nxt := t.Malloc(bufBytes)
		initJacobi(t, cur, nxt, rows, w)

		dcur := t.DataEnter(cur, bufBytes, acc.Copyin)
		dnxt := t.DataEnter(nxt, bufBytes, acc.Copyin)
		_, _ = dcur, dnxt

		for it := 0; it < cfg.Iters; it++ {
			spec := stencilSpec(t, cur, nxt, rows, w)
			// Row offsets within the current grid.
			firstOwned := cur + xmem.Addr(stride)            // row 1
			lastOwned := cur + xmem.Addr(int64(rows)*stride) // row rows
			topGhost := cur                                  // row 0
			botGhost := cur + xmem.Addr(int64(rows+1)*stride)

			switch cfg.Style {
			case StyleSync:
				// Fig 4 (a): stage halos through the host synchronously.
				if haveUp {
					t.UpdateHost(firstOwned, stride, -1)
				}
				if haveDown {
					t.UpdateHost(lastOwned, stride, -1)
				}
				if haveUp {
					t.Send(firstOwned, w, mpi.Float64, up, tagUp)
					t.Recv(topGhost, w, mpi.Float64, up, tagDown)
				}
				if haveDown {
					t.Recv(botGhost, w, mpi.Float64, down, tagUp)
					t.Send(lastOwned, w, mpi.Float64, down, tagDown)
				}
				if haveUp {
					t.UpdateDevice(topGhost, stride, -1)
				}
				if haveDown {
					t.UpdateDevice(botGhost, stride, -1)
				}
				t.Kernels(spec, -1)
			case StyleAsync:
				// Fig 4 (b): async staging with explicit sync points.
				if haveUp {
					t.UpdateHost(firstOwned, stride, 1)
				}
				if haveDown {
					t.UpdateHost(lastOwned, stride, 1)
				}
				t.ACCWait(1)
				var reqs []*core.Request
				if haveUp {
					reqs = append(reqs,
						t.Isend(firstOwned, w, mpi.Float64, up, tagUp),
						t.Irecv(topGhost, w, mpi.Float64, up, tagDown))
				}
				if haveDown {
					reqs = append(reqs,
						t.Isend(lastOwned, w, mpi.Float64, down, tagDown),
						t.Irecv(botGhost, w, mpi.Float64, down, tagUp))
				}
				t.Wait(reqs...)
				if haveUp {
					t.UpdateDevice(topGhost, stride, 1)
				}
				if haveDown {
					t.UpdateDevice(botGhost, stride, 1)
				}
				t.Kernels(spec, 1)
				t.ACCWait(1)
			default:
				// Fig 4 (c): device-resident halos on the unified queue —
				// the intra-node exchanges become direct DtoD copies.
				if haveUp {
					t.Isend(firstOwned, w, mpi.Float64, up, tagUp, core.OnDevice(), core.Async(1))
					t.Irecv(topGhost, w, mpi.Float64, up, tagDown, core.OnDevice(), core.Async(1))
				}
				if haveDown {
					t.Isend(lastOwned, w, mpi.Float64, down, tagDown, core.OnDevice(), core.Async(1))
					t.Irecv(botGhost, w, mpi.Float64, down, tagUp, core.OnDevice(), core.Async(1))
				}
				t.Kernels(spec, 1)
			}
			cur, nxt = nxt, cur
		}
		if cfg.Style == StyleUnified {
			t.ACCWait(1)
		}
		t.DataExit(nxt, acc.Delete)
		t.DataExit(cur, acc.Copyout)
		if cfg.Verify {
			verifyJacobi(t, cfg, cur, rows, w)
		}
	}
}

// initJacobi sets boundary condition: global top row = 1, rest 0, on both
// grids (host side).
func initJacobi(t *core.Task, cur, nxt xmem.Addr, rows, w int) {
	for _, g := range []xmem.Addr{cur, nxt} {
		v := t.Floats(g, (rows+2)*w)
		if v == nil {
			return
		}
		for i := range v {
			v[i] = 0
		}
		if t.Rank() == 0 {
			// Global boundary lives in the top ghost row, fixed at 1.
			for j := 0; j < w; j++ {
				v[j] = 1
			}
		}
	}
}

// stencilSpec builds the 5-point sweep kernel: read cur, write nxt over the
// owned rows. Memory-bound on every target device.
func stencilSpec(t *core.Task, cur, nxt xmem.Addr, rows, w int) device.KernelSpec {
	return device.KernelSpec{
		Name:  "jacobi",
		FLOPs: 4 * float64(rows) * float64(w),
		Bytes: 2 * 8 * float64(rows) * float64(w), // one read + one write stream
		Kind:  device.KindMemory,
		Gangs: rows, Workers: 4, Vector: 128,
		Body: func() {
			cv := t.Floats(t.DevicePtr(cur), (rows+2)*w)
			nv := t.Floats(t.DevicePtr(nxt), (rows+2)*w)
			if cv == nil || nv == nil {
				return
			}
			for i := 1; i <= rows; i++ {
				for j := 0; j < w; j++ {
					l, r := j-1, j+1
					var left, right float64
					if l >= 0 {
						left = cv[i*w+l]
					}
					if r < w {
						right = cv[i*w+r]
					}
					nv[i*w+j] = 0.25 * (cv[(i-1)*w+j] + cv[(i+1)*w+j] + left + right)
				}
			}
		},
	}
}

// verifyJacobi recomputes the whole iteration serially on rank 0 and
// compares this task's owned rows.
func verifyJacobi(t *core.Task, cfg JacobiConfig, final xmem.Addr, rows, w int) {
	got := t.Floats(final, (rows+2)*w)
	if got == nil {
		return
	}
	n := cfg.N
	ref := make([]float64, (n+2)*w)
	tmp := make([]float64, (n+2)*w)
	for j := 0; j < w; j++ {
		ref[j] = 1
		tmp[j] = 1
	}
	for it := 0; it < cfg.Iters; it++ {
		for i := 1; i <= n; i++ {
			for j := 0; j < w; j++ {
				var left, right float64
				if j > 0 {
					left = ref[i*w+j-1]
				}
				if j < w-1 {
					right = ref[i*w+j+1]
				}
				tmp[i*w+j] = 0.25 * (ref[(i-1)*w+j] + ref[(i+1)*w+j] + left + right)
			}
		}
		ref, tmp = tmp, ref
	}
	base := t.Rank() * rows
	for i := 1; i <= rows; i++ {
		for j := 0; j < w; j++ {
			want := ref[(base+i)*w+j]
			if err := checkClose("jacobi cell", got[i*w+j], want, 1e-12); err != nil {
				t.Failf("rank %d row %d col %d: %v", t.Rank(), i, j, err)
			}
		}
	}
}
