// Package apps implements the paper's four evaluation applications —
// DGEMM, NAS EP, 2-D Jacobi, and a LULESH-style shock-hydrodynamics proxy
// (§4.1) — as programs over the core runtime. Each communication-heavy
// application comes in the three styles of Figure 4:
//
//   - StyleSync:    blocking MPI + synchronous OpenACC constructs (Fig 4a)
//   - StyleAsync:   non-blocking MPI + async queues + explicit waits (Fig 4b)
//   - StyleUnified: IMPACC directives — device buffers on the unified
//     activity queue, no host synchronization (Fig 4c)
//
// The first two run under both runtimes; StyleUnified requires IMPACC.
package apps

import "fmt"

// Style selects the programming style of Figure 4.
type Style int

const (
	// StyleSync is Figure 4 (a).
	StyleSync Style = iota
	// StyleAsync is Figure 4 (b).
	StyleAsync
	// StyleUnified is Figure 4 (c).
	StyleUnified
)

func (s Style) String() string {
	switch s {
	case StyleSync:
		return "sync"
	case StyleAsync:
		return "async"
	default:
		return "unified"
	}
}

// checkClose verifies two values agree to a relative tolerance.
func checkClose(what string, got, want, tol float64) error {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	if diff > tol*scale {
		return fmt.Errorf("%s: got %g, want %g (tol %g)", what, got, want, tol)
	}
	return nil
}
