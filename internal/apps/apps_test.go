package apps

import (
	"testing"

	"impacc/internal/core"
	"impacc/internal/topo"
)

func runApp(t *testing.T, cfg core.Config, prog core.Program) *core.Report {
	t.Helper()
	rep, err := core.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func psg(mode core.Mode, tasks int) core.Config {
	return core.Config{System: topo.PSG(), Mode: mode, Backed: true, MaxTasks: tasks, Seed: 42}
}

func TestStyleString(t *testing.T) {
	if StyleSync.String() != "sync" || StyleAsync.String() != "async" || StyleUnified.String() != "unified" {
		t.Fatal("style names wrong")
	}
}

func TestDGEMMCorrectAllStyles(t *testing.T) {
	for _, style := range []Style{StyleSync, StyleAsync, StyleUnified} {
		t.Run(style.String(), func(t *testing.T) {
			runApp(t, psg(core.IMPACC, 4), DGEMM(DGEMMConfig{N: 64, Style: style, Verify: true}))
		})
	}
}

func TestDGEMMLegacyStyles(t *testing.T) {
	for _, style := range []Style{StyleSync, StyleAsync} {
		t.Run(style.String(), func(t *testing.T) {
			runApp(t, psg(core.Legacy, 4), DGEMM(DGEMMConfig{N: 64, Style: style, Verify: true}))
		})
	}
}

func TestDGEMMSingleTask(t *testing.T) {
	runApp(t, psg(core.IMPACC, 1), DGEMM(DGEMMConfig{N: 32, Style: StyleUnified, Verify: true}))
}

func TestDGEMMAliasesInputsUnderIMPACC(t *testing.T) {
	rep := runApp(t, psg(core.IMPACC, 4), DGEMM(DGEMMConfig{N: 64, Style: StyleUnified, Verify: true}))
	// 3 A-block sends + 3 bcast fanouts, all readonly whole-allocation
	// receives on one node: at least the bcast targets must alias.
	if got := rep.TotalHub().Aliases; got < 3 {
		t.Fatalf("aliases = %d, want >= 3 (input sharing, §4.2 DGEMM)", got)
	}
}

func TestDGEMMInternode(t *testing.T) {
	cfg := core.Config{System: topo.Beacon(2), Mode: core.IMPACC, Backed: true, Seed: 1}
	rep := runApp(t, cfg, DGEMM(DGEMMConfig{N: 64, Style: StyleUnified, Verify: true}))
	if rep.TotalHub().NetOut == 0 {
		t.Fatal("multi-node DGEMM sent no internode messages")
	}
}

func TestDGEMMRejectsIndivisible(t *testing.T) {
	if _, err := core.Run(psg(core.IMPACC, 4), DGEMM(DGEMMConfig{N: 63})); err == nil {
		t.Fatal("N not divisible by tasks must fail")
	}
}

func TestEPAcceptanceRate(t *testing.T) {
	// Class S sampled down: verify the π/4 acceptance ratio.
	runApp(t, psg(core.IMPACC, 4), EP(EPConfig{
		Class: EPClassS, Style: StyleSync, SampleShift: 10, Verify: true}))
}

func TestEPStylesAndModes(t *testing.T) {
	for _, mode := range []core.Mode{core.IMPACC, core.Legacy} {
		for _, style := range []Style{StyleSync, StyleAsync} {
			rep := runApp(t, psg(mode, 8), EP(EPConfig{
				Class: EPClassS, Style: style, SampleShift: 14}))
			if rep.TotalDev().KernelCount != 8 {
				t.Fatalf("mode %v style %v: kernels = %d", mode, style, rep.TotalDev().KernelCount)
			}
		}
	}
}

func TestEPClassScaling(t *testing.T) {
	// Kernel time must scale with class size (2^2 between A and C at equal
	// tasks).
	elapsed := func(c EPClass) float64 {
		cfg := psg(core.IMPACC, 8)
		cfg.Backed = false
		rep := runApp(t, cfg, EP(EPConfig{Class: c, Style: StyleSync}))
		return rep.Elapsed.Seconds()
	}
	a, c := elapsed(EPClassA), elapsed(EPClassC)
	ratio := c / a
	if ratio < 10 || ratio > 18 {
		t.Fatalf("class C / class A = %.1f, want ~16", ratio)
	}
}

func TestJacobiCorrectAllStyles(t *testing.T) {
	for _, style := range []Style{StyleSync, StyleAsync, StyleUnified} {
		t.Run(style.String(), func(t *testing.T) {
			runApp(t, psg(core.IMPACC, 4), Jacobi(JacobiConfig{
				N: 32, Iters: 5, Style: style, Verify: true}))
		})
	}
}

func TestJacobiLegacy(t *testing.T) {
	for _, style := range []Style{StyleSync, StyleAsync} {
		runApp(t, psg(core.Legacy, 4), Jacobi(JacobiConfig{
			N: 32, Iters: 3, Style: style, Verify: true}))
	}
}

func TestJacobiSingleTask(t *testing.T) {
	runApp(t, psg(core.IMPACC, 1), Jacobi(JacobiConfig{N: 16, Iters: 4, Style: StyleSync, Verify: true}))
}

func TestJacobiUnifiedUsesDtoD(t *testing.T) {
	rep := runApp(t, psg(core.IMPACC, 4), Jacobi(JacobiConfig{
		N: 64, Iters: 3, Style: StyleUnified}))
	if rep.TotalDev().DtoDCount == 0 {
		t.Fatal("unified Jacobi must exchange halos device-to-device (Figure 14)")
	}
	// And it must beat the sync baseline.
	repSync := runApp(t, psg(core.Legacy, 4), Jacobi(JacobiConfig{
		N: 64, Iters: 3, Style: StyleSync}))
	if rep.Elapsed >= repSync.Elapsed {
		t.Fatalf("IMPACC unified (%v) not faster than legacy sync (%v)", rep.Elapsed, repSync.Elapsed)
	}
}

func TestLULESHConservesAndMatchesSerial(t *testing.T) {
	runApp(t, psg(core.IMPACC, 8), LULESH(LULESHConfig{Edge: 6, Steps: 3, Verify: true}))
}

func TestLULESHLegacy(t *testing.T) {
	runApp(t, psg(core.Legacy, 8), LULESH(LULESHConfig{Edge: 6, Steps: 3, Verify: true}))
}

func TestLULESHSingleTask(t *testing.T) {
	runApp(t, psg(core.IMPACC, 1), LULESH(LULESHConfig{Edge: 5, Steps: 2, Verify: true}))
}

func TestLULESHRejectsNonCube(t *testing.T) {
	if _, err := core.Run(psg(core.IMPACC, 6), LULESH(LULESHConfig{Edge: 4, Steps: 1})); err == nil {
		t.Fatal("non-cube task count must fail")
	}
}

func TestLULESHMultiNode(t *testing.T) {
	cfg := core.Config{System: topo.Beacon(2), Mode: core.IMPACC, Backed: true, Seed: 3}
	// 8 tasks over 2 nodes (4 devices each) = 2^3 lattice.
	rep := runApp(t, cfg, LULESH(LULESHConfig{Edge: 6, Steps: 2, Verify: true}))
	if rep.TotalHub().NetOut == 0 {
		t.Fatal("multi-node LULESH must cross the network")
	}
}

func TestCheckClose(t *testing.T) {
	if err := checkClose("x", 1.0, 1.0+1e-13, 1e-9); err != nil {
		t.Fatal("tight match rejected")
	}
	if err := checkClose("x", 1.0, 2.0, 1e-9); err == nil {
		t.Fatal("mismatch accepted")
	}
	if err := checkClose("x", 0.5, -0.5, 0.1); err == nil {
		t.Fatal("sign flip accepted")
	}
}

func TestCubeRoot(t *testing.T) {
	cases := map[int]int{1: 1, 8: 2, 27: 3, 64: 4, 125: 5, 1000: 10, 6: 0, 2: 0}
	for n, want := range cases {
		if got := cubeRoot(n); got != want {
			t.Errorf("cubeRoot(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEPClassPairs(t *testing.T) {
	if EPClassA.Pairs() != 1<<28 {
		t.Fatalf("class A pairs = %g", EPClassA.Pairs())
	}
	if EPClassT.Pairs() != 64*EPClassE.Pairs() {
		t.Fatal("Titan class must be 64x class E")
	}
}

func TestJacobi2DCorrectBothStyles(t *testing.T) {
	// 8 PSG tasks -> 2x4 grid.
	for _, style := range []Style{StyleSync, StyleUnified} {
		t.Run(style.String(), func(t *testing.T) {
			runApp(t, psg(core.IMPACC, 8), Jacobi2D(Jacobi2DConfig{
				N: 32, Iters: 4, Style: style, Verify: true}))
		})
	}
}

func TestJacobi2DLegacy(t *testing.T) {
	runApp(t, psg(core.Legacy, 4), Jacobi2D(Jacobi2DConfig{
		N: 32, Iters: 3, Style: StyleSync, Verify: true}))
}

func TestJacobi2DSingleTask(t *testing.T) {
	runApp(t, psg(core.IMPACC, 1), Jacobi2D(Jacobi2DConfig{
		N: 16, Iters: 3, Style: StyleSync, Verify: true}))
}

func TestJacobi2DMultiNode(t *testing.T) {
	cfg := core.Config{System: topo.Beacon(2), Mode: core.IMPACC, Backed: true, Seed: 9}
	rep := runApp(t, cfg, Jacobi2D(Jacobi2DConfig{
		N: 32, Iters: 3, Style: StyleUnified, Verify: true}))
	if rep.TotalHub().NetOut == 0 {
		t.Fatal("2x4-node grid must exchange across the network")
	}
}

func TestGridShape(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 8: {2, 4}, 6: {2, 3}, 9: {3, 3}, 12: {3, 4}, 7: {1, 7}}
	for n, want := range cases {
		pr, pc := gridShape(n)
		if pr != want[0] || pc != want[1] {
			t.Errorf("gridShape(%d) = %dx%d, want %dx%d", n, pr, pc, want[0], want[1])
		}
	}
}

func TestJacobi2DLessCommThan1D(t *testing.T) {
	// 2-D partitioning moves O(2N/sqrt(P)) halo data per task instead of
	// O(2N): with enough tasks the 2-D variant must communicate less.
	cfg := psg(core.IMPACC, 8)
	cfg.Backed = false
	rep1, err := core.Run(cfg, Jacobi(JacobiConfig{N: 2048, Iters: 10, Style: StyleUnified}))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := core.Run(cfg, Jacobi2D(Jacobi2DConfig{N: 2048, Iters: 10, Style: StyleUnified}))
	if err != nil {
		t.Fatal(err)
	}
	b1 := rep1.TotalDev().DtoDBytes
	b2 := rep2.TotalDev().DtoDBytes
	if b2 >= b1 {
		t.Fatalf("2-D halo bytes (%d) not below 1-D (%d)", b2, b1)
	}
}

func TestAppsDeterministic(t *testing.T) {
	// Same seed -> bit-identical virtual elapsed time for every app.
	progs := map[string]core.Program{
		"dgemm":    DGEMM(DGEMMConfig{N: 256, Style: StyleUnified}),
		"ep":       EP(EPConfig{Class: EPClassA, Style: StyleAsync}),
		"jacobi":   Jacobi(JacobiConfig{N: 256, Iters: 5, Style: StyleUnified}),
		"jacobi2d": Jacobi2D(Jacobi2DConfig{N: 256, Iters: 5, Style: StyleUnified}),
		"lulesh":   LULESH(LULESHConfig{Edge: 8, Steps: 2}),
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			run := func() string {
				cfg := psg(core.IMPACC, 8)
				cfg.Backed = false
				cfg.JitterPct = 1.5
				cfg.Seed = 777
				rep := runApp(t, cfg, prog)
				return rep.Elapsed.String()
			}
			if a, b := run(), run(); a != b {
				t.Fatalf("%s diverged: %s vs %s", name, a, b)
			}
		})
	}
}
