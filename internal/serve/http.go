package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs              submit a JobSpec (?wait=1 blocks until terminal)
//	GET    /v1/jobs              list known jobs (?status= filters by state)
//	GET    /v1/jobs/{key}        job status
//	GET    /v1/jobs/{key}/events       live SSE feed: state changes + heartbeats
//	GET    /v1/jobs/{key}/report       full report, JSON
//	GET    /v1/jobs/{key}/report.txt   human-readable report
//	GET    /v1/jobs/{key}/profile      mpiP-style profile, JSON
//	GET    /v1/jobs/{key}/trace        Chrome trace (view in Perfetto)
//	DELETE /v1/jobs/{key}        cancel and/or invalidate
//	GET    /metrics              Prometheus exposition
//	GET    /healthz              liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{key}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{key}/{artifact}", s.handleArtifact)
	mux.HandleFunc("DELETE /v1/jobs/{key}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// writeJSON emits v with a status code. Encoding a Status cannot fail, so
// errors here reduce to connection problems the client already sees.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad job spec: " + err.Error()})
		return
	}
	st, code, err := s.Submit(spec)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		}
		writeJSON(w, code, apiError{err.Error()})
		return
	}
	if r.URL.Query().Get("wait") != "" && code == http.StatusAccepted {
		s.Wait(st.Key)
		if done, ok := s.Status(st.Key); ok {
			st, code = done, http.StatusOK
		}
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("status")
	switch state {
	case "", stateQueued, stateRunning, stateDone, stateFailed, stateCancelled:
	default:
		writeJSON(w, http.StatusBadRequest,
			apiError{"unknown status filter (queued, running, done, failed, cancelled)"})
		return
	}
	writeJSON(w, http.StatusOK, s.List(state))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	res, code, err := s.Result(r.PathValue("key"))
	if err != nil {
		writeJSON(w, code, apiError{err.Error()})
		return
	}
	var body []byte
	ctype := "application/json"
	switch r.PathValue("artifact") {
	case "report":
		body = res.ReportJSON
	case "report.txt":
		body, ctype = res.ReportText, "text/plain; charset=utf-8"
	case "profile":
		body = res.ProfileJSON
	case "trace":
		body = res.TraceJSON
	default:
		writeJSON(w, http.StatusNotFound, apiError{"unknown artifact (report, report.txt, profile, trace)"})
		return
	}
	if body == nil {
		writeJSON(w, http.StatusNotFound, apiError{"artifact not produced for this job"})
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job"})
		return
	}
	if st == nil {
		// Only a cached result existed; it is gone now.
		writeJSON(w, http.StatusOK, apiError{})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics serves the Prometheus exposition of the server's own
// registry. Counters are mutated under the server mutex, so the snapshot is
// taken under it too.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	now := nowNanos()
	s.refreshAgeLocked(now)
	snap := s.reg.Snapshot(now)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w)
}
