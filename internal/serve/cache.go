package serve

// Result holds the rendered artifacts of one successful run. Artifacts are
// rendered exactly once, when the run completes; every later request serves
// these bytes verbatim, which is what makes a cache hit byte-identical to
// the original miss.
type Result struct {
	ReportJSON  []byte // full report, indented JSON (impacc-run -report format)
	ReportText  []byte // human-readable summary (Report.Print)
	ProfileJSON []byte // mpiP-style profile (nil when the run was not traced)
	TraceJSON   []byte // Chrome trace (view in Perfetto)
}

// bytes is the result's accounting size for the cache's byte bound.
func (r *Result) bytes() int64 {
	return int64(len(r.ReportJSON) + len(r.ReportText) + len(r.ProfileJSON) + len(r.TraceJSON))
}

// lruCache is a byte-bounded LRU over job results, hand-rolled on a
// doubly-linked list so iteration order is explicit (no map-order
// dependence anywhere near output paths). It is not goroutine-safe; the
// server guards it with its own mutex.
type lruCache struct {
	maxBytes int64
	size     int64
	entries  map[string]*lruEntry
	// head is most recently used, tail least. Sentinel-free: nil ends.
	head, tail *lruEntry
	// onEvict, when set, observes each eviction (for telemetry).
	onEvict func(key string, res *Result)
}

type lruEntry struct {
	key        string
	res        *Result
	prev, next *lruEntry
}

func newLRUCache(maxBytes int64) *lruCache {
	return &lruCache{maxBytes: maxBytes, entries: map[string]*lruEntry{}}
}

// get returns the cached result and refreshes its recency.
func (c *lruCache) get(key string) *Result {
	e := c.entries[key]
	if e == nil {
		return nil
	}
	c.moveToFront(e)
	return e.res
}

// put inserts (or replaces) a result and evicts from the tail until the
// byte bound holds again. A result larger than the whole bound is still
// admitted (then immediately evictable): rejecting it would make the job
// permanently unservable.
func (c *lruCache) put(key string, res *Result) {
	if e := c.entries[key]; e != nil {
		c.size += res.bytes() - e.res.bytes()
		e.res = res
		c.moveToFront(e)
	} else {
		e = &lruEntry{key: key, res: res}
		c.entries[key] = e
		c.pushFront(e)
		c.size += res.bytes()
	}
	for c.size > c.maxBytes && c.tail != nil && c.tail.key != key {
		c.evict(c.tail)
	}
}

// remove drops an entry (explicit invalidation; not counted as an eviction).
func (c *lruCache) remove(key string) bool {
	e := c.entries[key]
	if e == nil {
		return false
	}
	c.unlink(e)
	delete(c.entries, e.key)
	c.size -= e.res.bytes()
	return true
}

func (c *lruCache) len() int     { return len(c.entries) }
func (c *lruCache) bytes() int64 { return c.size }

func (c *lruCache) evict(e *lruEntry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.size -= e.res.bytes()
	if c.onEvict != nil {
		c.onEvict(e.key, e.res)
	}
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
