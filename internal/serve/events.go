package serve

import (
	"encoding/json"
	"net/http"
)

// The events feed replays one job's lifecycle as Server-Sent Events:
// "state" events for queued → running → terminal transitions and
// "heartbeat" events carrying the run's deterministic virtual-time progress
// snapshots (core.Progress). Every event is appended to the job's log under
// the server mutex and broadcast by closing-and-replacing the job's notify
// channel, so any number of subscribers replay the full history and then
// follow live with no per-subscriber state on the server. Event *timing* is
// wall-clock (the run executes in real time); event *content* is purely
// virtual — the same job produces the same event payloads on every server.

// event is one entry of a job's append-only event log.
type event struct {
	typ  string // state | heartbeat
	data []byte // rendered JSON payload
}

// appendEventLocked logs one event and wakes every follower. The caller
// holds mu. Payloads are rendered immediately so followers never touch live
// job state.
func (s *Server) appendEventLocked(j *job, typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		// Status and Heartbeat are plain data; a marshal failure is a
		// programming error, but a broken feed beats a dead server.
		data = []byte(`{"error":"event marshal failed"}`)
	}
	j.events = append(j.events, event{typ: typ, data: data})
	close(j.eventCh)
	j.eventCh = make(chan struct{})
}

// terminalState reports whether state is one of the three terminal states.
func terminalState(state string) bool {
	return state == stateDone || state == stateFailed || state == stateCancelled
}

// handleEvents streams a job's event log as SSE: full replay, then live
// follow until the job reaches a terminal state (the final "state" event)
// or the client disconnects. A key known only from the cache replays a
// single synthetic done event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	j := s.jobs[key]
	if j == nil {
		if s.cache.entries[key] == nil {
			s.mu.Unlock()
			writeJSON(w, http.StatusNotFound, apiError{"unknown job"})
			return
		}
		st := s.statusLocked(key)
		s.mu.Unlock()
		data, _ := json.Marshal(st)
		writeSSEHeader(w)
		writeSSEEvent(w, "state", data)
		return
	}
	s.mu.Unlock()

	writeSSEHeader(w)
	fl, _ := w.(http.Flusher)
	next := 0
	for {
		s.mu.Lock()
		pending := make([]event, len(j.events)-next)
		copy(pending, j.events[next:])
		next = len(j.events)
		ch := j.eventCh
		terminal := terminalState(j.state)
		s.mu.Unlock()
		for _, e := range pending {
			writeSSEEvent(w, e.typ, e.data)
		}
		if len(pending) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			// The terminal "state" event is appended before the state field
			// settles readers' view (both under mu), so draining after
			// observing a terminal state means the log is complete.
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSEHeader(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
}

// writeSSEEvent emits one event in SSE wire form. Payloads are single-line
// JSON (json.Marshal never emits newlines), so one data: line suffices.
func writeSSEEvent(w http.ResponseWriter, typ string, data []byte) {
	w.Write([]byte("event: " + typ + "\n"))
	w.Write([]byte("data: "))
	w.Write(data)
	w.Write([]byte("\n\n"))
}
