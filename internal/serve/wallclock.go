package serve

// This file is the serving layer's only contact with the host wall clock.
// Everything simulated stays on virtual time; the wall clock exists here
// solely to timestamp operator-facing telemetry (queue/run/render latency
// histograms, /metrics snapshot stamps). None of these readings ever enter
// simulation state or cached artifact bytes, so cache hits remain
// byte-identical to the original miss. Keeping every reading behind this
// one function keeps the impacc-vet walltime analyzer's allow surface to a
// single audited line.

import "time"

// nowNanos returns the host wall clock in nanoseconds since the Unix epoch.
func nowNanos() int64 {
	//impacc:allow-walltime serving-layer latency telemetry and snapshot stamps only; never enters simulation state or cached artifact bytes
	return time.Now().UnixNano()
}
