package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"impacc/internal/core"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func smallJob() JobSpec {
	return JobSpec{System: "beacon:2", App: "jacobi", N: 64, Iters: 2}
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec, wait bool) (*Status, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		return nil, resp.StatusCode
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad status body %q: %v", data, err)
	}
	return &st, resp.StatusCode
}

func getBody(t *testing.T, ts *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

func counterValue(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	metrics, code := getBody(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			f := strings.Fields(line)
			return f[len(f)-1]
		}
	}
	t.Fatalf("metric %s not exposed:\n%s", name, metrics)
	return ""
}

// TestSubmitRunFetch: the basic lifecycle — submit, wait, fetch all four
// artifacts.
func TestSubmitRunFetch(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, code := postJob(t, ts, smallJob(), true)
	if code != 200 || st.State != stateDone {
		t.Fatalf("waited submit -> %d %+v", code, st)
	}
	for _, art := range []string{"report", "report.txt", "profile", "trace"} {
		body, code := getBody(t, ts, "/v1/jobs/"+st.Key+"/"+art)
		if code != 200 || len(body) == 0 {
			t.Fatalf("artifact %s -> %d (%d bytes)", art, code, len(body))
		}
	}
	if _, code := getBody(t, ts, "/v1/jobs/"+st.Key); code != 200 {
		t.Fatalf("status -> %d", code)
	}
	if body, code := getBody(t, ts, "/v1/jobs"); code != 200 || !bytes.Contains(body, []byte(st.Key)) {
		t.Fatalf("list -> %d, missing key", code)
	}
}

// TestSingleFlightDedup: N concurrent identical submissions execute exactly
// one simulation and every caller reads byte-identical report bodies.
func TestSingleFlightDedup(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4})
	const n = 8
	var wg sync.WaitGroup
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(smallJob())
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			keys[i] = st.Key
		}(i)
	}
	wg.Wait()
	bodies := make([][]byte, n)
	for i, key := range keys {
		if key == "" {
			t.Fatal("a submission returned no key")
		}
		if key != keys[0] {
			t.Fatalf("keys diverge: %s vs %s", key, keys[0])
		}
		body, code := getBody(t, ts, "/v1/jobs/"+key+"/report")
		if code != 200 {
			t.Fatalf("report %d -> %d", i, code)
		}
		bodies[i] = body
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("body %d differs from body 0", i)
		}
	}
	if runs := counterValue(t, ts, "serve_runs_total"); runs != "1" {
		t.Fatalf("serve_runs_total = %s, want 1 (single-flight)", runs)
	}
}

// TestCacheHitByteIdentical: a second submission of the same spec is a hit
// (state done, cached, no new run) and its artifacts are byte-identical to
// the first miss's.
func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := testServer(t, Config{})
	st1, code := postJob(t, ts, smallJob(), true)
	if code != 200 {
		t.Fatalf("first submit -> %d", code)
	}
	first := map[string][]byte{}
	for _, art := range []string{"report", "report.txt", "profile", "trace"} {
		first[art], _ = getBody(t, ts, "/v1/jobs/"+st1.Key+"/"+art)
	}
	st2, code := postJob(t, ts, smallJob(), false)
	if code != 200 || !st2.Cached || st2.State != stateDone {
		t.Fatalf("second submit -> %d %+v, want immediate cache hit", code, st2)
	}
	if st2.Key != st1.Key {
		t.Fatalf("keys diverge: %s vs %s", st2.Key, st1.Key)
	}
	for art, want := range first {
		got, code := getBody(t, ts, "/v1/jobs/"+st1.Key+"/"+art)
		if code != 200 || !bytes.Equal(got, want) {
			t.Fatalf("artifact %s not byte-identical after hit (code %d)", art, code)
		}
	}
	if hits := counterValue(t, ts, "serve_cache_hits_total"); hits != "1" {
		t.Fatalf("serve_cache_hits_total = %s, want 1", hits)
	}
	if runs := counterValue(t, ts, "serve_runs_total"); runs != "1" {
		t.Fatalf("serve_runs_total = %s, want 1", runs)
	}
}

// TestDistinctSpecsDistinctKeys: changing any simulation-relevant field
// produces a different job key.
func TestDistinctSpecsDistinctKeys(t *testing.T) {
	base := smallJob()
	variants := []JobSpec{base}
	v := base
	v.Seed = 7
	variants = append(variants, v)
	v = base
	v.Iters = 3
	variants = append(variants, v)
	v = base
	v.Chaos = "7:straggle=*:1.5"
	variants = append(variants, v)
	v = base
	v.Mode = "legacy"
	variants = append(variants, v)
	seen := map[string]int{}
	for i, spec := range variants {
		c, err := compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[c.key]; dup {
			t.Fatalf("variant %d collides with %d", i, prev)
		}
		seen[c.key] = i
	}
	// Defaults resolve before hashing: an explicit default equals omission.
	explicit := base
	explicit.Seed = 2016
	explicit.Mode = "impacc"
	c1, _ := compile(base)
	c2, _ := compile(explicit)
	if c1.key != c2.key {
		t.Fatal("explicit defaults changed the key")
	}
}

// TestChaoticJobCachesToo: a chaos spec is part of the key and chaotic runs
// are deterministic, so they cache like healthy ones.
func TestChaoticJobCachesToo(t *testing.T) {
	_, ts := testServer(t, Config{})
	spec := smallJob()
	spec.Chaos = "7:degrade=*:4,rdmaflap=1:2ms:500us"
	st, code := postJob(t, ts, spec, true)
	if code != 200 || st.State != stateDone {
		t.Fatalf("chaotic submit -> %d %+v", code, st)
	}
	st2, code := postJob(t, ts, spec, false)
	if code != 200 || !st2.Cached {
		t.Fatalf("chaotic resubmit -> %d %+v, want hit", code, st2)
	}
}

// TestParSimCoalesces: par_sim is a wall-clock knob, not a simulation
// parameter, so a parallel submission of a job already run serially is a
// cache hit and every artifact is byte-identical — the sharded engine's
// determinism guarantee, exercised through the service's content address.
func TestParSimCoalesces(t *testing.T) {
	serial := smallJob()
	par := smallJob()
	par.ParSim = 8
	c1, err := compile(serial)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compile(par)
	if err != nil {
		t.Fatal(err)
	}
	if c1.key != c2.key {
		t.Fatalf("par_sim changed the content address: %s vs %s", c1.key, c2.key)
	}

	_, ts := testServer(t, Config{})
	st1, code := postJob(t, ts, serial, true)
	if code != 200 || st1.State != stateDone {
		t.Fatalf("serial submit -> %d %+v", code, st1)
	}
	first := map[string][]byte{}
	for _, art := range []string{"report", "report.txt", "profile", "trace"} {
		first[art], _ = getBody(t, ts, "/v1/jobs/"+st1.Key+"/"+art)
	}
	st2, code := postJob(t, ts, par, false)
	if code != 200 || !st2.Cached || st2.Key != st1.Key {
		t.Fatalf("par_sim=8 resubmit -> %d %+v, want hit on %s", code, st2, st1.Key)
	}
	for art, want := range first {
		got, code := getBody(t, ts, "/v1/jobs/"+st1.Key+"/"+art)
		if code != 200 || !bytes.Equal(got, want) {
			t.Fatalf("artifact %s not byte-identical across par_sim (code %d)", art, code)
		}
	}
	if runs := counterValue(t, ts, "serve_runs_total"); runs != "1" {
		t.Fatalf("serve_runs_total = %s, want 1 (parallel submission coalesced)", runs)
	}

	// And the reverse order — parallel first, serial hit — with the worker
	// actually honoring the knob on the miss.
	_, ts2 := testServer(t, Config{})
	stp, code := postJob(t, ts2, par, true)
	if code != 200 || stp.State != stateDone {
		t.Fatalf("parallel submit -> %d %+v", code, stp)
	}
	rep, _ := getBody(t, ts2, "/v1/jobs/"+stp.Key+"/report")
	if !bytes.Equal(rep, first["report"]) {
		t.Fatal("report from a par_sim=8 run differs from the serial run's bytes")
	}
	sts, code := postJob(t, ts2, serial, false)
	if code != 200 || !sts.Cached || sts.Key != stp.Key {
		t.Fatalf("serial resubmit -> %d %+v, want hit on %s", code, sts, stp.Key)
	}
}

// TestOverload: with the workers not yet started, submissions beyond the
// queue capacity are rejected with 429 + Retry-After while admitted jobs
// stay queued; starting the workers then drains everything.
func TestOverload(t *testing.T) {
	s := New(Config{QueueCap: 2, RetryAfterSec: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	specs := make([]JobSpec, 3)
	for i := range specs {
		specs[i] = smallJob()
		specs[i].Seed = uint64(1000 + i) // distinct keys
	}
	var keys []string
	for i, spec := range specs[:2] {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != 202 {
			t.Fatalf("submit %d -> %d, want 202", i, resp.StatusCode)
		}
		keys = append(keys, st.Key)
	}
	body, _ := json.Marshal(specs[2])
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("overflow submit -> %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3", ra)
	}
	if v := counterValue(t, ts, "serve_admission_rejected_total"); v != "1" {
		t.Fatalf("serve_admission_rejected_total = %s, want 1", v)
	}
	if v := counterValue(t, ts, "serve_queue_depth"); v != "2" {
		t.Fatalf("serve_queue_depth = %s, want 2", v)
	}

	// Relieve the overload: the queued jobs must complete untouched.
	s.Start()
	for _, key := range keys {
		s.Wait(key)
		if _, code := getBody(t, ts, "/v1/jobs/"+key+"/report"); code != 200 {
			t.Fatalf("queued job %s did not complete after drain (%d)", key, code)
		}
	}
}

// TestCancelQueuedJob: cancelling a queued job (workers stopped) marks it
// cancelled, caches nothing, and a resubmission runs fresh.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	st, code := postJob(t, ts, smallJob(), false)
	if code != 202 {
		t.Fatalf("submit -> %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.Key, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel -> %d", resp.StatusCode)
	}

	s.Start()
	s.Wait(st.Key)
	got, ok := s.Status(st.Key)
	if !ok || got.State != stateCancelled {
		t.Fatalf("state = %+v, want cancelled", got)
	}
	if _, code := getBody(t, ts, "/v1/jobs/"+st.Key+"/report"); code == 200 {
		t.Fatal("cancelled job served a report")
	}
	if v := counterValue(t, ts, "serve_runs_total"); v != "0" {
		t.Fatalf("cancelled-before-start job still ran (%s runs)", v)
	}

	// Resubmit: runs fresh and completes.
	st2, code := postJob(t, ts, smallJob(), true)
	if code != 200 || st2.State != stateDone {
		t.Fatalf("resubmit -> %d %+v", code, st2)
	}
	if st2.Key != st.Key {
		t.Fatalf("resubmit changed the key: %s vs %s", st2.Key, st.Key)
	}
	if v := counterValue(t, ts, "serve_runs_total"); v != "1" {
		t.Fatalf("resubmit after cancel: serve_runs_total = %s, want 1", v)
	}
}

// TestCancelRunningJob: a job cancelled mid-run lands in state cancelled,
// merges nothing into the cache, and resubmission re-runs and matches a
// never-cancelled baseline byte for byte.
func TestCancelRunningJob(t *testing.T) {
	// A heavier job so the cancel has a window to land mid-run.
	big := JobSpec{System: "beacon:2", App: "jacobi", N: 512, Iters: 50}

	// Baseline bytes from an untouched server.
	_, ref := testServer(t, Config{})
	refSt, code := postJob(t, ref, big, true)
	if code != 200 {
		t.Fatalf("baseline -> %d", code)
	}
	want, _ := getBody(t, ref, "/v1/jobs/"+refSt.Key+"/report")

	s, ts := testServer(t, Config{Workers: 1})
	st, code := postJob(t, ts, big, false)
	if code != 202 {
		t.Fatalf("submit -> %d", code)
	}
	s.Cancel(st.Key) // may land before, during, or just after the run
	s.Wait(st.Key)
	got, ok := s.Status(st.Key)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.State == stateCancelled && got.Cached {
		t.Fatal("cancelled job left artifacts in the cache")
	}
	// Whatever the race outcome, a fresh submission must produce the
	// baseline bytes.
	st2, code := postJob(t, ts, big, true)
	if code != 200 || st2.State != stateDone {
		t.Fatalf("resubmit -> %d %+v", code, st2)
	}
	fresh, code := getBody(t, ts, "/v1/jobs/"+st2.Key+"/report")
	if code != 200 || !bytes.Equal(fresh, want) {
		t.Fatalf("post-cancel rerun diverged from baseline (code %d)", code)
	}
}

// TestBadSpecRejected: compile errors surface as 400, not 500, and execute
// nothing.
func TestBadSpecRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, spec := range []JobSpec{
		{System: "nonsense", App: "jacobi"},
		{System: "beacon:2", App: "nonsense"},
		{System: "beacon:2", App: "ep", Class: "Z"},
		{System: "beacon:2", App: "jacobi", Chaos: "garbage"},
		{System: "beacon:2", App: "jacobi", Mode: "hybrid"},
	} {
		if _, code := postJob(t, ts, spec, false); code != 400 {
			t.Errorf("spec %+v -> %d, want 400", spec, code)
		}
	}
	if v := counterValue(t, ts, "serve_runs_total"); v != "0" {
		t.Fatalf("bad specs executed %s runs", v)
	}
}

// TestFailedRunNotCached: a job that hits a resource cap fails
// deterministically and leaves the cache empty.
func TestFailedRunNotCached(t *testing.T) {
	s, ts := testServer(t, Config{Limits: coreLimitsMaxEvents(50)})
	st, code := postJob(t, ts, smallJob(), true)
	if code != 200 || st.State != stateFailed {
		t.Fatalf("capped job -> %d %+v, want failed", code, st)
	}
	if !strings.Contains(st.Error, "events limit") {
		t.Fatalf("error %q does not name the cap", st.Error)
	}
	if s.cache.len() != 0 {
		t.Fatal("failed run was cached")
	}
	if v := counterValue(t, ts, "serve_runs_failed_total"); v != "1" {
		t.Fatalf("serve_runs_failed_total = %s, want 1", v)
	}
}

// TestLRUEviction: the byte bound evicts least-recently-used results, the
// eviction counter moves, and an evicted job answers 410 until resubmitted.
func TestLRUEviction(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, code := postJob(t, ts, smallJob(), true)
	if code != 200 {
		t.Fatalf("seed job -> %d", code)
	}
	onDisk, _ := getBody(t, ts, "/v1/jobs/"+st.Key+"/report")

	// A cache sized to hold roughly one such result set: the second job
	// must push the first out.
	s2 := New(Config{CacheBytes: int64(len(onDisk)) * 3})
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()

	first, code := postJobOn(t, ts2, smallJob())
	if code != 200 {
		t.Fatalf("first -> %d", code)
	}
	other := smallJob()
	other.Seed = 77
	if _, code := postJobOn(t, ts2, other); code != 200 {
		t.Fatalf("second -> %d", code)
	}
	if _, code := getBody(t, ts2, "/v1/jobs/"+first.Key+"/report"); code != 410 {
		t.Fatalf("evicted artifact -> %d, want 410 Gone", code)
	}
	if v := counterValue(t, ts2, "serve_cache_evictions_total"); v == "0" {
		t.Fatal("eviction counter did not move")
	}
	// Resubmission regenerates identical bytes.
	re, code := postJobOn(t, ts2, smallJob())
	if code != 200 {
		t.Fatalf("resubmit -> %d", code)
	}
	regenerated, code := getBody(t, ts2, "/v1/jobs/"+re.Key+"/report")
	if code != 200 || !bytes.Equal(regenerated, onDisk) {
		t.Fatalf("regenerated artifact differs from the original run (code %d)", code)
	}
}

func postJobOn(t *testing.T, ts *httptest.Server, spec JobSpec) (*Status, int) {
	t.Helper()
	return postJob(t, ts, spec, true)
}

// TestMetricsPreCreated: every advertised series exists before any job.
func TestMetricsPreCreated(t *testing.T) {
	_, ts := testServer(t, Config{})
	metrics, code := getBody(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	for _, name := range []string{
		"serve_cache_hits_total", "serve_cache_misses_total", "serve_cache_evictions_total",
		"serve_jobs_coalesced_total", "serve_admission_rejected_total",
		"serve_runs_total", "serve_runs_failed_total", "serve_jobs_cancelled_total",
		"serve_queue_depth", "serve_cache_bytes", "serve_cache_entries",
		"serve_job_age_seconds", "serve_phase_latency_ns",
	} {
		if !bytes.Contains(metrics, []byte(name)) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}

// TestHealthz: liveness endpoint answers without touching the pipeline.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	body, code := getBody(t, ts, "/healthz")
	if code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz -> %d %q", code, body)
	}
}

// TestUnknownJobRoutes: status/artifact/cancel for unseen keys are 404.
func TestUnknownJobRoutes(t *testing.T) {
	_, ts := testServer(t, Config{})
	if _, code := getBody(t, ts, "/v1/jobs/deadbeef"); code != 404 {
		t.Fatalf("status -> %d", code)
	}
	if _, code := getBody(t, ts, "/v1/jobs/deadbeef/report"); code != 404 {
		t.Fatalf("artifact -> %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/deadbeef", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("cancel -> %d", resp.StatusCode)
	}
}

// coreLimitsMaxEvents builds a core.Limits with only MaxEvents set.
func coreLimitsMaxEvents(n int64) core.Limits {
	return core.Limits{MaxEvents: n}
}

// TestPresetErrorSurfacesVerbatim: a bad system selector — here a node
// count on a fixed-size preset — must reach the API client exactly as the
// topo package phrased it, so the 400 body names the offending selector
// instead of a generic "bad spec".
func TestPresetErrorSurfacesVerbatim(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, system := range []string{"psg:8", "hetero:4"} {
		bad := smallJob()
		bad.System = system
		body, err := json.Marshal(bad)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 {
			t.Fatalf("%s -> %d, want 400", system, resp.StatusCode)
		}
		var ae struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &ae); err != nil {
			t.Fatalf("bad error body %q: %v", data, err)
		}
		// The exact message topo.Preset produces, verbatim.
		if got, want := ae.Error, `topo: system "`+strings.Split(system, ":")[0]+`" is fixed-size and takes no node count (got "`+system+`")`; got != want {
			t.Fatalf("error body %q, want %q", got, want)
		}
	}
}

// TestLeanChangesKey: lean changes what a big run reports, so unlike
// par_sim it must move the content address.
func TestLeanChangesKey(t *testing.T) {
	plain := smallJob()
	lean := smallJob()
	lean.Lean = true
	c1, err := compile(plain)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compile(lean)
	if err != nil {
		t.Fatal(err)
	}
	if c1.key == c2.key {
		t.Fatal("lean did not change the content address")
	}
}

// TestGeneratedTopologyJob: the generated large-scale selectors are
// reachable through the job API like any preset.
func TestGeneratedTopologyJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	job := JobSpec{System: "fattree:4", App: "jacobi", N: 64, Iters: 1}
	st, code := postJob(t, ts, job, true)
	if code != 200 || st.State != stateDone {
		t.Fatalf("fattree job -> %d %+v", code, st)
	}
}
