package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"impacc/internal/core"
)

// newTestHTTP fronts a server whose workers the test controls (unlike
// testServer, which always starts them).
func newTestHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	typ  string
	data []byte
}

// parseSSE splits an SSE body into events. The serve writer emits exactly
// "event: T\ndata: D\n\n" per event.
func parseSSE(t *testing.T, body []byte) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(string(body), "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.typ = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = []byte(strings.TrimPrefix(line, "data: "))
			default:
				t.Fatalf("unparseable SSE line %q", line)
			}
		}
		if ev.typ == "" || ev.data == nil {
			t.Fatalf("incomplete SSE block %q", block)
		}
		out = append(out, ev)
	}
	return out
}

// eventsJob is smallJob with a heartbeat interval short enough that a run
// lasting ~100us of virtual time emits several heartbeats.
func eventsJob() JobSpec {
	spec := smallJob()
	spec.ProgressEvery = "20us"
	return spec
}

// TestEventsReplayToTerminal: after a job completes, /events replays the
// whole lifecycle — queued, running, heartbeats in virtual-time order, then
// the terminal done event — and closes.
func TestEventsReplayToTerminal(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, code := postJob(t, ts, eventsJob(), true)
	if code != 200 || st.State != stateDone {
		t.Fatalf("submit -> %d %+v", code, st)
	}
	body, code := getBody(t, ts, "/v1/jobs/"+st.Key+"/events")
	if code != 200 {
		t.Fatalf("/events -> %d", code)
	}
	evs := parseSSE(t, body)
	if len(evs) < 4 {
		t.Fatalf("got %d events, want at least queued+running+heartbeat+done:\n%s", len(evs), body)
	}
	var states []string
	var beats []core.Heartbeat
	for _, ev := range evs {
		switch ev.typ {
		case "state":
			var s Status
			if err := json.Unmarshal(ev.data, &s); err != nil {
				t.Fatalf("bad state payload %s: %v", ev.data, err)
			}
			states = append(states, s.State)
		case "heartbeat":
			var hb core.Heartbeat
			if err := json.Unmarshal(ev.data, &hb); err != nil {
				t.Fatalf("bad heartbeat payload %s: %v", ev.data, err)
			}
			beats = append(beats, hb)
		default:
			t.Fatalf("unknown event type %q", ev.typ)
		}
	}
	if want := []string{stateQueued, stateRunning, stateDone}; strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("state sequence %v, want %v", states, want)
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats in the feed")
	}
	for i, hb := range beats {
		if hb.Seq != i {
			t.Fatalf("heartbeat %d has seq %d", i, hb.Seq)
		}
		if i > 0 && hb.AtNs <= beats[i-1].AtNs {
			t.Fatalf("heartbeat virtual times not increasing: %d then %d", beats[i-1].AtNs, hb.AtNs)
		}
		if hb.Shards <= 0 || hb.Events == 0 {
			t.Fatalf("heartbeat %d lacks substance: %+v", i, hb)
		}
	}
	if evs[len(evs)-1].typ != "state" {
		t.Fatal("feed did not end with the terminal state event")
	}
}

// TestEventsDeterministicHeartbeats: the heartbeat payload bytes of a job
// replayed at par_sim 8 equal the serial run's — the live feed obeys the
// same determinism contract as the artifacts.
func TestEventsDeterministicHeartbeats(t *testing.T) {
	heartbeats := func(spec JobSpec) []string {
		s, ts := testServer(t, Config{})
		st, code := postJob(t, ts, spec, true)
		if code != 200 || st.State != stateDone {
			t.Fatalf("submit -> %d %+v", code, st)
		}
		body, code := getBody(t, ts, "/v1/jobs/"+st.Key+"/events")
		if code != 200 {
			t.Fatalf("/events -> %d", code)
		}
		var out []string
		for _, ev := range parseSSE(t, body) {
			if ev.typ == "heartbeat" {
				out = append(out, string(ev.data))
			}
		}
		s.Close()
		return out
	}
	serial := heartbeats(eventsJob())
	par := eventsJob()
	par.ParSim = 8
	parallel := heartbeats(par)
	if len(serial) == 0 {
		t.Fatal("no heartbeats")
	}
	if strings.Join(serial, "\n") != strings.Join(parallel, "\n") {
		t.Fatalf("heartbeats diverge between serial and par_sim=8:\n%v\nvs\n%v", serial, parallel)
	}
}

// TestEventsFollowCancelMidRun: a follower attached while the job runs sees
// the stream terminate with a cancelled state event when the job is deleted
// mid-run — and the handler goroutine exits (the test would hang otherwise).
func TestEventsFollowCancelMidRun(t *testing.T) {
	big := JobSpec{System: "beacon:2", App: "jacobi", N: 512, Iters: 50, ProgressEvery: "20us"}
	s, ts := testServer(t, Config{Workers: 1})
	st, code := postJob(t, ts, big, false)
	if code != 202 {
		t.Fatalf("submit -> %d", code)
	}

	type result struct {
		evs []sseEvent
		err error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.Key + "/events")
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body) // returns only when the server ends the stream
		if err != nil {
			done <- result{nil, err}
			return
		}
		done <- result{parseSSE(t, body), nil}
	}()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.Key, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.Wait(st.Key)

	r := <-done // the stream MUST end on its own after the terminal event
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.evs) == 0 {
		t.Fatal("empty event stream")
	}
	last := r.evs[len(r.evs)-1]
	if last.typ != "state" {
		t.Fatalf("stream ended with %q, want a terminal state event", last.typ)
	}
	var final Status
	if err := json.Unmarshal(last.data, &final); err != nil {
		t.Fatal(err)
	}
	// The cancel may land before, during, or just after the run; whatever
	// the race outcome, the last event must carry a terminal state.
	if !terminalState(final.State) {
		t.Fatalf("final event state %q is not terminal", final.State)
	}
}

// TestEventsUnknownJob: never-seen keys answer 404, not an empty stream.
func TestEventsUnknownJob(t *testing.T) {
	_, ts := testServer(t, Config{})
	if _, code := getBody(t, ts, "/v1/jobs/deadbeef/events"); code != 404 {
		t.Fatalf("/events for unknown key -> %d, want 404", code)
	}
}

// TestStallInTerminalEvents: a job killed by MaxEvents carries the flight
// recorder's dump in its terminal status — on the status route and in the
// final SSE event — naming the parked ranks.
func TestStallInTerminalEvents(t *testing.T) {
	_, ts := testServer(t, Config{Limits: coreLimitsMaxEvents(60)})
	st, code := postJob(t, ts, eventsJob(), true)
	if code != 200 || st.State != stateFailed {
		t.Fatalf("capped job -> %d %+v, want failed", code, st)
	}
	if st.Stall == nil {
		t.Fatal("failed status has no stall report")
	}
	if st.Stall.Reason != "event-limit" {
		t.Fatalf("stall reason %q, want event-limit", st.Stall.Reason)
	}
	parked := st.Stall.ParkedRanks()
	if len(parked) == 0 {
		t.Fatal("stall report names no parked processes")
	}
	var hasTask bool
	for _, name := range parked {
		if strings.HasPrefix(name, "task") {
			hasTask = true
		}
	}
	if !hasTask {
		t.Fatalf("parked list %v names no task rank", parked)
	}

	body, code := getBody(t, ts, "/v1/jobs/"+st.Key+"/events")
	if code != 200 {
		t.Fatalf("/events -> %d", code)
	}
	evs := parseSSE(t, body)
	var final Status
	if err := json.Unmarshal(evs[len(evs)-1].data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != stateFailed || final.Stall == nil || len(final.Stall.ParkedRanks()) == 0 {
		t.Fatalf("terminal event lacks the stall dump: %s", evs[len(evs)-1].data)
	}
}

// TestRunInfoSurvivesCacheRoundTrip: the report's provenance block is
// populated, matches the job's own content address, and comes back intact
// from the cache on a resubmission.
func TestRunInfoSurvivesCacheRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	spec := smallJob()
	st, code := postJob(t, ts, spec, true)
	if code != 200 || st.State != stateDone {
		t.Fatalf("submit -> %d %+v", code, st)
	}
	first, code := getBody(t, ts, "/v1/jobs/"+st.Key+"/report")
	if code != 200 {
		t.Fatalf("report -> %d", code)
	}
	var rep struct {
		Run core.RunInfo
	}
	if err := json.Unmarshal(first, &rep); err != nil {
		t.Fatal(err)
	}
	comp, err := compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Run.Scheme != core.ConfigHashScheme {
		t.Fatalf("Run.Scheme = %q, want %q", rep.Run.Scheme, core.ConfigHashScheme)
	}
	if rep.Run.Hash != comp.cfg.Hash() {
		t.Fatalf("Run.Hash = %q, want the job's own config hash %q", rep.Run.Hash, comp.cfg.Hash())
	}
	if rep.Run.System != "Beacon" || rep.Run.Shards != 2 {
		t.Fatalf("Run = %+v, want System Beacon with 2 shards", rep.Run)
	}

	// Cache hit: the same bytes — provenance included — come back.
	st2, code := postJob(t, ts, spec, false)
	if code != 200 || !st2.Cached {
		t.Fatalf("resubmit -> %d %+v, want hit", code, st2)
	}
	second, code := getBody(t, ts, "/v1/jobs/"+st2.Key+"/report")
	if code != 200 || !bytes.Equal(first, second) {
		t.Fatalf("report bytes changed across the cache round-trip (code %d)", code)
	}
}

// TestProgressEverySpec: the interval is validated at submit time but — as
// an observer knob — never part of the content address.
func TestProgressEverySpec(t *testing.T) {
	_, ts := testServer(t, Config{})
	bad := smallJob()
	bad.ProgressEvery = "fast"
	if _, code := postJob(t, ts, bad, false); code != 400 {
		t.Fatalf("bad progress_every -> %d, want 400", code)
	}
	c1, err := compile(smallJob())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compile(eventsJob())
	if err != nil {
		t.Fatal(err)
	}
	if c1.key != c2.key {
		t.Fatal("progress_every changed the content address")
	}
}

// TestListStatusFilter: ?status= narrows the listing to one lifecycle state
// and unknown filter values are 400.
func TestListStatusFilter(t *testing.T) {
	s := New(Config{QueueCap: 4}) // workers stopped: submissions stay queued
	ts := newTestHTTP(t, s)

	doneSpec := smallJob()
	queuedSpec := smallJob()
	queuedSpec.Seed = 99
	if _, code := postJob(t, ts, queuedSpec, false); code != 202 {
		t.Fatalf("queued submit -> %d", code)
	}
	s.Start()
	st, code := postJob(t, ts, doneSpec, true)
	if code != 200 || st.State != stateDone {
		t.Fatalf("done submit -> %d %+v", code, st)
	}
	s.Wait(mustKey(t, queuedSpec))

	var listed []Status
	body, code := getBody(t, ts, "/v1/jobs?status=done")
	if code != 200 {
		t.Fatalf("filter -> %d", code)
	}
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 { // both jobs completed by now
		t.Fatalf("status=done listed %d jobs, want 2: %s", len(listed), body)
	}
	for _, st := range listed {
		if st.State != stateDone {
			t.Fatalf("status=done listed a %q job", st.State)
		}
	}
	body, code = getBody(t, ts, "/v1/jobs?status=queued")
	if code != 200 {
		t.Fatalf("filter -> %d", code)
	}
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 0 {
		t.Fatalf("status=queued listed %d jobs after drain: %s", len(listed), body)
	}
	if _, code := getBody(t, ts, "/v1/jobs?status=bogus"); code != 400 {
		t.Fatalf("bogus filter -> %d, want 400", code)
	}
}

// TestJobAgeGauge: the queue-age gauge exists from the start, reads zero on
// an idle server, and goes non-negative with jobs waiting.
func TestJobAgeGauge(t *testing.T) {
	s := New(Config{QueueCap: 4}) // workers stopped: the job ages in queue
	ts := newTestHTTP(t, s)
	if v := counterValue(t, ts, "serve_job_age_seconds"); v != "0" {
		t.Fatalf("idle serve_job_age_seconds = %s, want 0", v)
	}
	if _, code := postJob(t, ts, smallJob(), false); code != 202 {
		t.Fatal("submit failed")
	}
	v := counterValue(t, ts, "serve_job_age_seconds")
	age, err := strconv.ParseFloat(v, 64)
	if err != nil || age < 0 {
		t.Fatalf("serve_job_age_seconds = %q, want a non-negative float", v)
	}
	s.Start()
	s.Wait(mustKey(t, smallJob()))
	if v := counterValue(t, ts, "serve_job_age_seconds"); v != "0" {
		t.Fatalf("drained serve_job_age_seconds = %s, want 0", v)
	}
}

// mustKey compiles spec and returns its content address.
func mustKey(t *testing.T, spec JobSpec) string {
	t.Helper()
	c, err := compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c.key
}
