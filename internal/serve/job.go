// Package serve turns the deterministic simulator into a job service:
// clients submit (topology, application, mode, seed, chaos) descriptions
// over HTTP/JSON, a bounded worker pool executes them, and a
// content-addressed cache returns byte-identical artifacts for repeated
// submissions without re-running anything.
//
// The cache is sound because runs are deterministic: the canonical encoding
// of a core.Config plus the program identity fully determines every output
// byte (report, profile, trace), so the SHA-256 of that encoding is a
// content address for the results. See DESIGN.md §11.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"impacc/internal/apps"
	"impacc/internal/core"
	"impacc/internal/fault"
	"impacc/internal/sim"
	"impacc/internal/topo"
)

// JobSpec is the wire form of one simulation request. Fields mirror
// impacc-run's flags; zero values take the same defaults the CLI applies,
// and the defaults are resolved before hashing so "iters omitted" and
// "iters: 10" are the same job.
type JobSpec struct {
	System  string `json:"system"`            // preset selector: psg, beacon:N, titan:N, hetero, fattree:k, dragonfly:g,a,p, gemini:X,Y,Z
	App     string `json:"app"`               // dgemm, ep, jacobi, lulesh
	Mode    string `json:"mode,omitempty"`    // impacc (default) or legacy
	Style   string `json:"style,omitempty"`   // sync, async, unified (default by mode)
	Tasks   int    `json:"tasks,omitempty"`   // cap task count (0 = one per accelerator)
	Devices string `json:"devices,omitempty"` // device class selection, e.g. "nvidia|xeonphi"
	N       int    `json:"n,omitempty"`       // dgemm/jacobi problem size (default 1024)
	Iters   int    `json:"iters,omitempty"`   // jacobi iterations (default 10)
	Class   string `json:"class,omitempty"`   // EP class (default A)
	Edge    int    `json:"edge,omitempty"`    // lulesh per-task mesh edge (default 16)
	Steps   int    `json:"steps,omitempty"`   // lulesh steps (default 5)
	Backed  bool   `json:"backed,omitempty"`  // attach real storage
	Verify  bool   `json:"verify,omitempty"`  // verify against serial references (forces backed)
	Seed    uint64 `json:"seed,omitempty"`    // 0 = 2016, the paper's year
	Chaos   string `json:"chaos,omitempty"`   // deterministic fault spec, seed:rule,...
	// ParSim is the intra-run simulation worker count (impacc-run -par-sim).
	// It only changes wall-clock speed — every worker count produces
	// byte-identical artifacts — so it is deliberately NOT part of the job's
	// content address: serial and parallel submissions of the same job
	// coalesce onto one cache entry.
	ParSim int `json:"par_sim,omitempty"`
	// Lean turns on the memory-lean big-run mode (impacc-run -lean): above
	// 256 ranks per-rank telemetry and heartbeats aggregate. Lean changes
	// what a big run reports, so unlike ParSim it IS part of the content
	// address (a lean and a non-lean submission are different jobs).
	Lean bool `json:"lean,omitempty"`
	// ProgressEvery is the virtual-time heartbeat interval for the job's
	// /events feed, as a duration literal ("250us", "1ms"). Like ParSim it
	// is an observer knob — heartbeats never change simulated bytes — so it
	// too is excluded from the content address. Empty takes the server
	// default.
	ProgressEvery string `json:"progress_every,omitempty"`
}

// compiled is a JobSpec resolved against defaults: a runnable configuration,
// the program to execute, and the job's content address.
type compiled struct {
	key      string
	cfg      core.Config // observers (Trace, Metrics) unset; the worker attaches fresh ones per run
	prog     core.Program
	identity string // canonical program identity folded into the key
	// progressEvery is the parsed heartbeat interval (0 = server default).
	// An observer setting, so not folded into key.
	progressEvery sim.Dur
}

var epClasses = map[string]apps.EPClass{
	"S": apps.EPClassS, "W": apps.EPClassW, "A": apps.EPClassA,
	"B": apps.EPClassB, "C": apps.EPClassC, "D": apps.EPClassD,
	"E": apps.EPClassE, "64xE": apps.EPClassT,
}

// compile resolves spec into a compiled job or a client error. It is pure:
// the same spec always compiles to the same key.
func compile(spec JobSpec) (*compiled, error) {
	sys, err := topo.Preset(spec.System)
	if err != nil {
		return nil, err
	}
	mode := core.IMPACC
	switch spec.Mode {
	case "", "impacc":
	case "legacy":
		mode = core.Legacy
	default:
		return nil, fmt.Errorf("serve: unknown mode %q (impacc, legacy)", spec.Mode)
	}
	style := apps.StyleUnified
	if mode == core.Legacy {
		style = apps.StyleAsync
	}
	switch spec.Style {
	case "":
	case "sync":
		style = apps.StyleSync
	case "async":
		style = apps.StyleAsync
	case "unified":
		style = apps.StyleUnified
	default:
		return nil, fmt.Errorf("serve: unknown style %q (sync, async, unified)", spec.Style)
	}
	mask, err := topo.ParseClassMask(spec.Devices)
	if err != nil {
		return nil, err
	}
	backed := spec.Backed || spec.Verify
	seed := spec.Seed
	if seed == 0 {
		seed = 2016
	}
	cfg := core.Config{
		System: sys, Mode: mode, MaxTasks: spec.Tasks, DeviceTypes: mask,
		Backed: backed, Seed: seed, JitterPct: 1, Parallel: spec.ParSim,
		Lean: spec.Lean,
	}
	if spec.Chaos != "" {
		cfg.Chaos, err = fault.ParseSpec(spec.Chaos)
		if err != nil {
			return nil, err
		}
	}

	c := &compiled{cfg: cfg}
	if spec.ProgressEvery != "" {
		d, err := sim.ParseDur(spec.ProgressEvery)
		if err != nil {
			return nil, fmt.Errorf("serve: bad progress_every: %v", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("serve: progress_every must be positive")
		}
		c.progressEvery = d
	}
	n := spec.N
	if n == 0 {
		n = 1024
	}
	switch spec.App {
	case "dgemm":
		c.prog = apps.DGEMM(apps.DGEMMConfig{N: n, Style: style, Verify: spec.Verify})
		c.identity = fmt.Sprintf("app=dgemm;style=%d;n=%d;verify=%t", style, n, spec.Verify)
	case "ep":
		class := spec.Class
		if class == "" {
			class = "A"
		}
		ec, ok := epClasses[class]
		if !ok {
			return nil, fmt.Errorf("serve: unknown EP class %q", class)
		}
		shift := 0
		if backed {
			shift = 12 // execute a sample of the pairs, price the full class
		}
		c.prog = apps.EP(apps.EPConfig{Class: ec, Style: style, SampleShift: shift, Verify: spec.Verify})
		c.identity = fmt.Sprintf("app=ep;style=%d;class=%s;shift=%d;verify=%t", style, class, shift, spec.Verify)
	case "jacobi":
		iters := spec.Iters
		if iters == 0 {
			iters = 10
		}
		c.prog = apps.Jacobi(apps.JacobiConfig{N: n, Iters: iters, Style: style, Verify: spec.Verify})
		c.identity = fmt.Sprintf("app=jacobi;style=%d;n=%d;iters=%d;verify=%t", style, n, iters, spec.Verify)
	case "lulesh":
		edge := spec.Edge
		if edge == 0 {
			edge = 16
		}
		steps := spec.Steps
		if steps == 0 {
			steps = 5
		}
		c.prog = apps.LULESH(apps.LULESHConfig{Edge: edge, Steps: steps, Verify: spec.Verify})
		c.identity = fmt.Sprintf("app=lulesh;edge=%d;steps=%d;verify=%t", edge, steps, spec.Verify)
	default:
		return nil, fmt.Errorf("serve: unknown app %q (dgemm, ep, jacobi, lulesh)", spec.App)
	}
	c.key = jobKey(&c.cfg, c.identity)
	return c, nil
}

// jobKey derives the content address: the canonical config digest joined
// with the program identity under one more SHA-256. Two specs get the same
// key if and only if they describe byte-identical runs.
func jobKey(cfg *core.Config, identity string) string {
	var b strings.Builder
	b.WriteString(cfg.Hash())
	b.WriteByte(0)
	b.WriteString(identity)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
