package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"impacc/internal/core"
	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

// Config tunes a Server. Zero values take the defaults documented per
// field.
type Config struct {
	// Workers bounds concurrent simulations (default 2). Like the bench
	// harness's -j pool, each worker holds one slot for the duration of a
	// leaf run.
	Workers int
	// QueueCap bounds jobs admitted but not yet running (default 16). When
	// the queue is full, submissions are rejected with 429 + Retry-After
	// rather than buffered without bound.
	QueueCap int
	// CacheBytes bounds the artifact cache (default 64 MiB). Least
	// recently used results are evicted first.
	CacheBytes int64
	// Limits caps every job's resources (virtual time, events, task heap).
	// Hitting a cap fails the job deterministically; it never poisons the
	// cache (only successful runs are cached).
	Limits core.Limits
	// RetryAfterSec is the Retry-After hint on 429 responses (default 1).
	RetryAfterSec int
	// ProgressEvery is the default virtual-time heartbeat interval for the
	// /events feeds (default 1ms virtual); a job's progress_every field
	// overrides it. Observer-only: never part of the content address.
	ProgressEvery sim.Dur
	// FlightRing is the per-shard recent-event ring depth armed on every
	// run (default 64), so abnormal ends carry a stall post-mortem.
	FlightRing int
}

// defaultHeartbeatEvery is the virtual-time progress interval attached to
// every run (overridable per job via the progress_every spec field).
// Heartbeat content is a pure function of the simulation, so the interval —
// like tracing — never affects the job's content address or artifacts.
const defaultHeartbeatEvery = sim.Dur(1_000_000) // 1ms virtual

// defaultFlightRing is the per-shard recent-event ring armed on every run,
// so an abnormal end (cancel, limit, causality panic) always yields a stall
// post-mortem in the terminal status.
const defaultFlightRing = 64

// Job lifecycle states.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job tracks one submission through the pipeline. All fields are guarded by
// the server mutex except comp (immutable after creation) and done (closed
// exactly once, under the mutex).
type job struct {
	spec       JobSpec
	comp       *compiled
	state      string
	errMsg     string
	cancelReq  bool
	cancel     func() // non-nil only while running; safe to call under mu
	done       chan struct{}
	enqueuedAt int64 // wall ns, latency telemetry only
	startedAt  int64
	// stall is the flight recorder's post-mortem when the run ended
	// abnormally (cancel, limit, causality panic); nil on clean runs.
	stall *sim.StallReport
	// events is the job's append-only SSE log; eventCh is closed and
	// replaced on every append to wake followers. See events.go.
	events  []event
	eventCh chan struct{}
}

// Status is the wire form of a job's state.
type Status struct {
	Key       string   `json:"key"`
	State     string   `json:"state"`
	Cached    bool     `json:"cached"`
	Error     string   `json:"error,omitempty"`
	Spec      *JobSpec `json:"spec,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
	// Stall is the flight recorder's dump of the moment an abnormal run
	// stopped: recent events per shard and which processes were parked on
	// what. Present only on failed/cancelled jobs whose runtime got far
	// enough to record it.
	Stall *sim.StallReport `json:"stall,omitempty"`
}

// Server is the simulation job service: a bounded queue feeding a worker
// pool, fronted by single-flight dedup and a content-addressed result
// cache. See DESIGN.md §11 for the pipeline.
type Server struct {
	cfg Config

	mu     sync.Mutex
	reg    *telemetry.Registry
	cache  *lruCache
	jobs   map[string]*job
	queue  chan string
	closed bool
	wg     sync.WaitGroup

	mHits      *telemetry.Counter
	mMisses    *telemetry.Counter
	mEvictions *telemetry.Counter
	mCoalesced *telemetry.Counter
	mRejected  *telemetry.Counter
	mRuns      *telemetry.Counter
	mRunsFail  *telemetry.Counter
	mCancelled *telemetry.Counter
	gQueue     *telemetry.Gauge
	gBytes     *telemetry.Gauge
	gEntries   *telemetry.Gauge
	gAge       *telemetry.Gauge
	hQueue     *telemetry.Histogram
	hRun       *telemetry.Histogram
	hRender    *telemetry.Histogram
}

// New builds a server (workers not yet started; call Start). Metric series
// are pre-created so /metrics exposes zeros before the first job.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = defaultHeartbeatEvery
	}
	if cfg.FlightRing <= 0 {
		cfg.FlightRing = defaultFlightRing
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cache: newLRUCache(cfg.CacheBytes),
		jobs:  map[string]*job{},
		queue: make(chan string, cfg.QueueCap),

		mHits:      reg.Counter("serve_cache_hits_total", "submissions answered from the result cache"),
		mMisses:    reg.Counter("serve_cache_misses_total", "submissions that scheduled a fresh run"),
		mEvictions: reg.Counter("serve_cache_evictions_total", "results evicted by the byte bound"),
		mCoalesced: reg.Counter("serve_jobs_coalesced_total", "submissions deduplicated onto an in-flight identical job"),
		mRejected:  reg.Counter("serve_admission_rejected_total", "submissions rejected with 429 (queue full)"),
		mRuns:      reg.Counter("serve_runs_total", "simulations actually executed"),
		mRunsFail:  reg.Counter("serve_runs_failed_total", "executed simulations that ended in error"),
		mCancelled: reg.Counter("serve_jobs_cancelled_total", "jobs cancelled before or during execution"),
		gQueue:     reg.Gauge("serve_queue_depth", "jobs admitted but not yet running"),
		gAge:       reg.Gauge("serve_job_age_seconds", "age of the oldest queued or running job (0 when idle)"),
		gBytes:     reg.Gauge("serve_cache_bytes", "bytes held by the result cache"),
		gEntries:   reg.Gauge("serve_cache_entries", "results held by the cache"),
		hQueue:     reg.Histogram("serve_phase_latency_ns", "per-phase wall latency", "phase", "queue"),
		hRun:       reg.Histogram("serve_phase_latency_ns", "per-phase wall latency", "phase", "run"),
		hRender:    reg.Histogram("serve_phase_latency_ns", "per-phase wall latency", "phase", "render"),
	}
	s.cache.onEvict = func(string, *Result) { s.mEvictions.Inc() }
	return s
}

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for key := range s.queue {
				s.runJob(key)
			}
		}()
	}
}

// Close stops admissions, cancels queued and running jobs, and waits for
// the workers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, j := range s.jobs {
		if j.state == stateQueued || j.state == stateRunning {
			j.cancelReq = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Metrics exposes the server's telemetry registry (for tests).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Submit admits spec: a cache hit returns immediately (Status.State done,
// Cached true), an identical in-flight job is coalesced, otherwise the job
// is queued. The int is the suggested HTTP status: 200 hit, 202 admitted or
// coalesced, 400 bad spec, 429 queue full, 503 closed.
func (s *Server) Submit(spec JobSpec) (*Status, int, error) {
	comp, err := compile(spec)
	if err != nil {
		return nil, 400, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := comp.key
	if s.cache.get(key) != nil {
		s.mHits.Inc()
		return s.statusLocked(key), 200, nil
	}
	if j := s.jobs[key]; j != nil && (j.state == stateQueued || j.state == stateRunning) {
		s.mCoalesced.Inc()
		return s.statusLocked(key), 202, nil
	}
	if s.closed {
		return nil, 503, errors.New("serve: server is shutting down")
	}
	// New key, or a failed/cancelled/evicted one being resubmitted: either
	// way the run starts fresh.
	j := &job{spec: spec, comp: comp, state: stateQueued,
		done: make(chan struct{}), eventCh: make(chan struct{}), enqueuedAt: nowNanos()}
	select {
	case s.queue <- key:
	default:
		s.mRejected.Inc()
		return nil, 429, fmt.Errorf("serve: admission queue full (%d waiting)", cap(s.queue))
	}
	s.jobs[key] = j
	s.mMisses.Inc()
	s.gQueue.Set(float64(len(s.queue)))
	st := s.statusLocked(key)
	s.appendEventLocked(j, "state", st)
	return st, 202, nil
}

// Wait blocks until the job leaves the queue/run pipeline (done, failed, or
// cancelled). Unknown keys return immediately.
func (s *Server) Wait(key string) {
	s.mu.Lock()
	j := s.jobs[key]
	var ch chan struct{}
	if j != nil && j.state != stateDone && j.state != stateFailed && j.state != stateCancelled {
		ch = j.done
	}
	s.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// Status reports one job; ok is false for never-seen keys.
func (s *Server) Status(key string) (*Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs[key] == nil && s.cache.get(key) == nil {
		return nil, false
	}
	return s.statusLocked(key), true
}

// List reports every known job, sorted by key (deterministic output). A
// non-empty state filters to jobs in that lifecycle state.
func (s *Server) List(state string) []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.jobs))
	for k := range s.jobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Status, 0, len(keys))
	for _, k := range keys {
		st := s.statusLocked(k)
		if state != "" && st.State != state {
			continue
		}
		out = append(out, st)
	}
	return out
}

// Result returns a done job's artifacts. The int is the suggested HTTP
// status on failure: 404 unknown or not finished, 410 finished but evicted.
func (s *Server) Result(key string) (*Result, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if res := s.cache.get(key); res != nil {
		return res, 200, nil
	}
	j := s.jobs[key]
	switch {
	case j == nil:
		return nil, 404, fmt.Errorf("serve: unknown job %s", key)
	case j.state == stateDone:
		return nil, 410, fmt.Errorf("serve: results for %s were evicted; resubmit to regenerate", key)
	default:
		return nil, 404, fmt.Errorf("serve: job %s is %s; no results yet", key, j.state)
	}
}

// Cancel stops a queued or running job and invalidates any cached result
// for the key. Reports whether the key was known.
func (s *Server) Cancel(key string) (*Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[key]
	removed := s.cache.remove(key)
	if removed {
		s.gBytes.Set(float64(s.cache.bytes()))
		s.gEntries.Set(float64(s.cache.len()))
	}
	if j == nil {
		return nil, removed
	}
	if j.state == stateQueued || j.state == stateRunning {
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return s.statusLocked(key), true
}

// statusLocked renders a job's state; the caller holds mu. A key present
// only in the cache (job record cancelled away) synthesizes a done status.
func (s *Server) statusLocked(key string) *Status {
	st := &Status{Key: key}
	cached := s.cache.entries[key] != nil // no recency update for a status peek
	j := s.jobs[key]
	if j == nil {
		st.State = stateDone
		st.Cached = cached
	} else {
		st.State = j.state
		st.Cached = cached
		st.Error = j.errMsg
		st.Spec = &j.spec
		st.Stall = j.stall
	}
	if cached {
		res := s.cache.entries[key].res
		st.Artifacts = []string{
			"/v1/jobs/" + key + "/report",
			"/v1/jobs/" + key + "/report.txt",
			"/v1/jobs/" + key + "/trace",
		}
		if res.ProfileJSON != nil {
			st.Artifacts = append(st.Artifacts, "/v1/jobs/"+key+"/profile")
		}
	}
	return st
}

// runJob executes one dequeued job on the calling worker.
func (s *Server) runJob(key string) {
	s.mu.Lock()
	j := s.jobs[key]
	if j == nil || j.state != stateQueued {
		s.mu.Unlock()
		return
	}
	s.gQueue.Set(float64(len(s.queue)))
	if j.cancelReq || s.closed {
		s.finishLocked(j, stateCancelled, "cancelled before start", nil)
		s.mu.Unlock()
		return
	}
	j.state = stateRunning
	j.startedAt = nowNanos()
	s.hQueue.Observe(j.startedAt - j.enqueuedAt)
	s.appendEventLocked(j, "state", s.statusLocked(key))
	cfg := j.comp.cfg
	if cfg.Limits == (core.Limits{}) {
		cfg.Limits = s.cfg.Limits
	}
	cfg.Trace = core.NewTracer() // fresh observer per run; never shared
	every := j.comp.progressEvery
	if every <= 0 {
		every = s.cfg.ProgressEvery
	}
	cfg.Progress = &core.Progress{Every: every, Emit: func(hb core.Heartbeat) {
		// Runs between windows on the simulation's coordinator goroutine;
		// the worker holds no locks during Execute, so taking mu is safe.
		s.mu.Lock()
		s.appendEventLocked(j, "heartbeat", hb)
		s.mu.Unlock()
	}}
	cfg.FlightRing = s.cfg.FlightRing
	prog := j.comp.prog
	s.mu.Unlock()

	rt, err := core.NewRuntime(cfg)
	if err != nil {
		s.mu.Lock()
		s.mRuns.Inc()
		s.mRunsFail.Inc()
		s.finishLocked(j, stateFailed, err.Error(), nil)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if j.cancelReq {
		s.finishLocked(j, stateCancelled, "cancelled before start", nil)
		s.mu.Unlock()
		return
	}
	j.cancel = rt.Cancel
	s.mRuns.Inc()
	s.mu.Unlock()

	rep, runErr := rt.Execute(prog)

	renderStart := nowNanos()
	var res *Result
	var renderErr error
	if runErr == nil {
		res, renderErr = render(rep, cfg.Trace)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	j.stall = rt.Stall() // nil unless the run ended abnormally
	s.hRun.Observe(renderStart - j.startedAt)
	s.hRender.Observe(nowNanos() - renderStart)
	var ce *sim.CancelError
	switch {
	case errors.As(runErr, &ce):
		s.finishLocked(j, stateCancelled, runErr.Error(), nil)
	case runErr != nil:
		s.mRunsFail.Inc()
		s.finishLocked(j, stateFailed, runErr.Error(), nil)
	case renderErr != nil:
		s.mRunsFail.Inc()
		s.finishLocked(j, stateFailed, renderErr.Error(), nil)
	default:
		s.finishLocked(j, stateDone, "", res)
	}
}

// finishLocked moves a job to a terminal state, caches successful results,
// and releases waiters. The caller holds mu.
func (s *Server) finishLocked(j *job, state, errMsg string, res *Result) {
	j.state = state
	j.errMsg = errMsg
	if state == stateCancelled {
		s.mCancelled.Inc()
	}
	if res != nil {
		s.cache.put(j.comp.key, res)
		s.gBytes.Set(float64(s.cache.bytes()))
		s.gEntries.Set(float64(s.cache.len()))
	}
	close(j.done)
	// The terminal event is appended after the state settles so followers
	// that observe it under mu know the log is complete (see handleEvents).
	s.appendEventLocked(j, "state", s.statusLocked(j.comp.key))
}

// refreshAgeLocked recomputes the oldest-live-job age gauge, the signal
// that distinguishes a busy-but-moving server from a stuck one. The caller
// holds mu.
func (s *Server) refreshAgeLocked(now int64) {
	oldest := int64(0)
	for _, j := range s.jobs {
		if j.state == stateQueued || j.state == stateRunning {
			if age := now - j.enqueuedAt; age > oldest {
				oldest = age
			}
		}
	}
	s.gAge.Set(float64(oldest) / 1e9)
}

// render serializes a run's artifacts exactly once. Every byte served for
// this job, now or from the cache later, comes from these buffers.
func render(rep *core.Report, tr *core.Tracer) (*Result, error) {
	res := &Result{}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	res.ReportJSON = append([]byte(nil), buf.Bytes()...)

	buf.Reset()
	rep.Print(&buf)
	res.ReportText = append([]byte(nil), buf.Bytes()...)

	if rep.Prof != nil {
		buf.Reset()
		if err := rep.Prof.WriteJSON(&buf); err != nil {
			return nil, err
		}
		res.ProfileJSON = append([]byte(nil), buf.Bytes()...)
	}

	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		return nil, err
	}
	res.TraceJSON = append([]byte(nil), buf.Bytes()...)
	return res, nil
}
