package topo

import (
	"encoding/json"
	"fmt"
	"io"

	"impacc/internal/sim"
)

// JSON cluster descriptions let users target their own machines without
// writing Go: every field of System/NodeSpec/DeviceSpec maps directly.
// Durations are nanoseconds. A minimal config:
//
//	{
//	  "name": "mini",
//	  "mpiOverhead": 400,
//	  "threadMultiple": true,
//	  "nodes": [{
//	    "name": "n0",
//	    "sockets": [{"name": "cpu", "cores": 8, "gflopsDP": 300}],
//	    "hostMemGBs": 10, "numaPenalty": 1,
//	    "nic": {"name": "eth", "link": {"latency": 2000, "gbs": 1}},
//	    "devices": [{
//	      "class": "nvidia", "name": "gpu0", "memoryGB": 8,
//	      "gflopsDP": 1000, "gemmEff": 0.8, "memBWGBs": 200,
//	      "stencilEff": 0.5, "kernelLaunch": 8000,
//	      "pcie": {"latency": 900, "gbs": 12}, "p2pGBs": 10
//	    }]
//	  }]
//	}

type jsonLink struct {
	Latency    int64   `json:"latency"`
	GBs        float64 `json:"gbs"`
	SWOverhead int64   `json:"swOverhead"`
}

func (l jsonLink) spec() LinkSpec {
	return LinkSpec{Latency: dur(l.Latency), GBs: l.GBs, SWOverhead: dur(l.SWOverhead)}
}

// dur converts config nanoseconds to a simulation duration.
func dur(ns int64) sim.Dur { return sim.Dur(ns) }

type jsonDevice struct {
	Class        string   `json:"class"`
	Name         string   `json:"name"`
	MemoryGB     float64  `json:"memoryGB"`
	Socket       int      `json:"socket"`
	GFlopsDP     float64  `json:"gflopsDP"`
	GemmEff      float64  `json:"gemmEff"`
	MemBWGBs     float64  `json:"memBWGBs"`
	StencilEff   float64  `json:"stencilEff"`
	KernelLaunch int64    `json:"kernelLaunch"`
	PCIe         jsonLink `json:"pcie"`
	P2PGBs       float64  `json:"p2pGBs"`
}

type jsonSocket struct {
	Name     string  `json:"name"`
	Cores    int     `json:"cores"`
	GFlopsDP float64 `json:"gflopsDP"`
}

type jsonNIC struct {
	Name   string   `json:"name"`
	Link   jsonLink `json:"link"`
	Socket int      `json:"socket"`
	RDMA   bool     `json:"rdma"`
}

type jsonNode struct {
	Name           string       `json:"name"`
	Count          int          `json:"count"` // replicate this node N times (default 1)
	Sockets        []jsonSocket `json:"sockets"`
	Devices        []jsonDevice `json:"devices"`
	MemoryGB       float64      `json:"memoryGB"`
	HostMemGBs     float64      `json:"hostMemGBs"`
	HostCopySW     int64        `json:"hostCopySW"`
	Inter          jsonLink     `json:"inter"`
	NUMAPenalty    float64      `json:"numaPenalty"`
	PageableFactor float64      `json:"pageableFactor"`
	ShmFactor      float64      `json:"shmFactor"`
	IPCOverhead    int64        `json:"ipcOverhead"`
	NIC            jsonNIC      `json:"nic"`
}

type jsonTopo struct {
	Kind       string `json:"kind"`
	Params     []int  `json:"params"`
	HopLatency int64  `json:"hopLatency"`
}

type jsonSystem struct {
	Name           string     `json:"name"`
	MPIOverhead    int64      `json:"mpiOverhead"`
	ThreadMultiple bool       `json:"threadMultiple"`
	Topo           *jsonTopo  `json:"topo"`
	Nodes          []jsonNode `json:"nodes"`
}

// LoadSystem reads a JSON cluster description and validates it.
func LoadSystem(r io.Reader) (*System, error) {
	var js jsonSystem
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("topo: parsing system config: %w", err)
	}
	if js.Name == "" {
		return nil, fmt.Errorf("topo: system config needs a name")
	}
	if len(js.Nodes) == 0 {
		return nil, fmt.Errorf("topo: system %q has no nodes", js.Name)
	}
	sys := &System{
		Name:           js.Name,
		MPIOverhead:    dur(js.MPIOverhead),
		ThreadMultiple: js.ThreadMultiple,
	}
	for ni, jn := range js.Nodes {
		node, err := jn.spec(ni)
		if err != nil {
			return nil, err
		}
		count := jn.Count
		if count <= 0 {
			count = 1
		}
		for c := 0; c < count; c++ {
			n := node
			if count > 1 {
				n.Name = fmt.Sprintf("%s-%d", node.Name, c)
			}
			sys.Nodes = append(sys.Nodes, n)
		}
	}
	if js.Topo != nil {
		spec, err := js.Topo.spec(len(sys.Nodes))
		if err != nil {
			return nil, err
		}
		sys.Topo = spec
	}
	return sys, nil
}

// spec validates a JSON topology annotation: the kind must be a known
// generator family whose parameters imply exactly the declared node count,
// so hop distances derived from node indices stay meaningful.
func (jt *jsonTopo) spec(nNodes int) (*TopoSpec, error) {
	want := 0
	switch jt.Kind {
	case "fattree":
		if len(jt.Params) != 1 || jt.Params[0] < 2 || jt.Params[0]%2 != 0 {
			return nil, fmt.Errorf("topo: topo kind fattree needs params [k] with k even and >= 2, got %v", jt.Params)
		}
		k := jt.Params[0]
		want = k * k * k / 4
	case "dragonfly", "torus3d":
		if len(jt.Params) != 3 || jt.Params[0] < 1 || jt.Params[1] < 1 || jt.Params[2] < 1 {
			return nil, fmt.Errorf("topo: topo kind %s needs three positive params, got %v", jt.Kind, jt.Params)
		}
		want = jt.Params[0] * jt.Params[1] * jt.Params[2]
	default:
		return nil, fmt.Errorf("topo: unknown topo kind %q (fattree, dragonfly, torus3d)", jt.Kind)
	}
	if want != nNodes {
		return nil, fmt.Errorf("topo: topo %s%v implies %d nodes but the system declares %d", jt.Kind, jt.Params, want, nNodes)
	}
	if jt.HopLatency < 0 {
		return nil, fmt.Errorf("topo: topo hopLatency must be >= 0, got %d", jt.HopLatency)
	}
	return &TopoSpec{Kind: jt.Kind, Params: append([]int(nil), jt.Params...), HopLatency: dur(jt.HopLatency)}, nil
}

func (jn jsonNode) spec(idx int) (NodeSpec, error) {
	if jn.Name == "" {
		return NodeSpec{}, fmt.Errorf("topo: node %d needs a name", idx)
	}
	if len(jn.Sockets) == 0 {
		return NodeSpec{}, fmt.Errorf("topo: node %q needs at least one socket", jn.Name)
	}
	if jn.HostMemGBs <= 0 {
		return NodeSpec{}, fmt.Errorf("topo: node %q: hostMemGBs must be positive", jn.Name)
	}
	if jn.NIC.Link.GBs <= 0 {
		return NodeSpec{}, fmt.Errorf("topo: node %q: nic.link.gbs must be positive", jn.Name)
	}
	node := NodeSpec{
		Name:           jn.Name,
		MemoryBytes:    int64(jn.MemoryGB * (1 << 30)),
		HostMemGBs:     jn.HostMemGBs,
		HostCopySW:     dur(jn.HostCopySW),
		Inter:          jn.Inter.spec(),
		NUMAPenalty:    jn.NUMAPenalty,
		PageableFactor: jn.PageableFactor,
		ShmFactor:      jn.ShmFactor,
		IPCOverhead:    dur(jn.IPCOverhead),
		NIC: NICSpec{
			Name: jn.NIC.Name, Link: jn.NIC.Link.spec(),
			Socket: jn.NIC.Socket, RDMA: jn.NIC.RDMA,
		},
	}
	if node.NUMAPenalty == 0 {
		node.NUMAPenalty = 1
	}
	for _, s := range jn.Sockets {
		node.Sockets = append(node.Sockets, SocketSpec{Name: s.Name, Cores: s.Cores, GFlopsDP: s.GFlopsDP})
	}
	for di, d := range jn.Devices {
		mask, err := ParseClassMask(d.Class)
		if err != nil {
			return NodeSpec{}, fmt.Errorf("topo: node %q device %d: %w", jn.Name, di, err)
		}
		var class DeviceClass
		found := false
		for c := NVIDIAGPU; c <= CPUAccel; c++ {
			if mask == MaskOf(c) {
				class, found = c, true
				break
			}
		}
		if !found {
			return NodeSpec{}, fmt.Errorf("topo: node %q device %d: class must name exactly one type, got %q",
				jn.Name, di, d.Class)
		}
		if d.Socket < 0 || d.Socket >= len(jn.Sockets) {
			return NodeSpec{}, fmt.Errorf("topo: node %q device %d: socket %d out of range",
				jn.Name, di, d.Socket)
		}
		if !class.Integrated() && (d.GFlopsDP <= 0 || d.PCIe.GBs <= 0) {
			return NodeSpec{}, fmt.Errorf("topo: node %q device %d: gflopsDP and pcie.gbs must be positive",
				jn.Name, di)
		}
		node.Devices = append(node.Devices, DeviceSpec{
			Class: class, Name: d.Name, MemoryBytes: int64(d.MemoryGB * (1 << 30)),
			Socket: d.Socket, GFlopsDP: d.GFlopsDP, GemmEff: d.GemmEff,
			MemBWGBs: d.MemBWGBs, StencilEff: d.StencilEff,
			KernelLaunch: dur(d.KernelLaunch), PCIe: d.PCIe.spec(), P2PGBs: d.P2PGBs,
		})
	}
	return node, nil
}
