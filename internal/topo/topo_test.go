package topo

import (
	"strings"
	"testing"
	"testing/quick"

	"impacc/internal/sim"
)

func TestTable1Presets(t *testing.T) {
	psg := PSG()
	if got := len(psg.Nodes); got != 1 {
		t.Fatalf("PSG nodes = %d, want 1 (paper uses 1 of 16)", got)
	}
	if got := len(psg.Nodes[0].Devices); got != 8 {
		t.Fatalf("PSG devices = %d, want 8 GK210", got)
	}
	if psg.Nodes[0].Devices[0].Class != NVIDIAGPU {
		t.Fatal("PSG device class must be NVIDIA GPU")
	}
	if psg.Nodes[0].CPUCores() != 32 {
		t.Fatalf("PSG cores = %d, want 32", psg.Nodes[0].CPUCores())
	}

	bea := Beacon(32)
	if got := len(bea.Nodes); got != 32 {
		t.Fatalf("Beacon nodes = %d, want 32", got)
	}
	if got := len(bea.Nodes[0].Devices); got != 4 {
		t.Fatalf("Beacon devices per node = %d, want 4 Xeon Phi", got)
	}
	if bea.Nodes[0].Devices[0].Class != XeonPhi {
		t.Fatal("Beacon device class must be Xeon Phi")
	}
	if bea.TotalDevices(0) != 128 {
		t.Fatalf("Beacon total devices = %d, want 128", bea.TotalDevices(0))
	}

	ti := Titan(8192)
	if got := len(ti.Nodes); got != 8192 {
		t.Fatalf("Titan nodes = %d, want 8192", got)
	}
	if got := len(ti.Nodes[0].Devices); got != 1 {
		t.Fatalf("Titan devices per node = %d, want 1 K20X", got)
	}
	if !ti.Nodes[0].NIC.RDMA {
		t.Fatal("Titan NIC must be RDMA-capable (GPUDirect RDMA)")
	}
	if ti.Nodes[0].NUMAPenalty != 1.0 {
		t.Fatal("single-socket Titan node must have no NUMA penalty")
	}
}

func TestClassMask(t *testing.T) {
	m := MaskOf(NVIDIAGPU, XeonPhi)
	if !m.Has(NVIDIAGPU) || !m.Has(XeonPhi) {
		t.Fatal("mask missing selected classes")
	}
	if m.Has(CPUAccel) {
		t.Fatal("mask should not select CPUAccel")
	}
	var def ClassMask
	for c := NVIDIAGPU; c <= CPUAccel; c++ {
		if !def.Has(c) {
			t.Fatalf("default mask must select everything, missing %v", c)
		}
	}
	if s := m.String(); s != "nvidia|xeonphi" {
		t.Fatalf("mask string = %q", s)
	}
	if def.String() != "default" {
		t.Fatalf("default mask string = %q", def.String())
	}
}

func TestTotalDevicesWithMask(t *testing.T) {
	sys := HeteroDemo()
	// Figure 2: node0 = 2 GPU + 2 CPU, node1 = 1 GPU + 2 Phi + 2 CPU,
	// node2 = 2 CPU.
	cases := []struct {
		mask ClassMask
		want int
	}{
		{0, 11},                         // acc_device_default: everything
		{MaskOf(NVIDIAGPU), 3},          // acc_device_nvidia
		{MaskOf(CPUAccel), 6},           // acc_device_cpu
		{MaskOf(XeonPhi), 2},            // acc_device_xeonphi
		{MaskOf(NVIDIAGPU, XeonPhi), 5}, // nvidia|xeonphi
	}
	for _, c := range cases {
		if got := sys.TotalDevices(c.mask); got != c.want {
			t.Errorf("TotalDevices(%v) = %d, want %d", c.mask, got, c.want)
		}
	}
}

func TestDeviceAffinityAndSysfs(t *testing.T) {
	node := &PSG().Nodes[0]
	if node.DeviceAffinity(0) != 0 || node.DeviceAffinity(7) != 1 {
		t.Fatalf("PSG affinity: dev0=%d dev7=%d, want 0 and 1",
			node.DeviceAffinity(0), node.DeviceAffinity(7))
	}
	p := node.SysfsPath(5)
	if !strings.HasPrefix(p, "/sys/class/pci_bus/") || !strings.HasSuffix(p, "numa_node:1") {
		t.Fatalf("sysfs path = %q", p)
	}
}

func TestSameRootComplex(t *testing.T) {
	node := &PSG().Nodes[0]
	if !node.SameRootComplex(0, 3) {
		t.Fatal("PSG devices 0 and 3 share socket 0")
	}
	if node.SameRootComplex(0, 4) {
		t.Fatal("PSG devices 0 and 4 are on different sockets")
	}
	h := &HeteroDemo().Nodes[2]
	if h.SameRootComplex(0, 1) {
		t.Fatal("integrated CPU accelerators never share a PCIe root complex")
	}
}

func TestLinkSpecTime(t *testing.T) {
	l := LinkSpec{Latency: 1000, GBs: 10, SWOverhead: 500}
	if got := l.Time(0); got != 1500 {
		t.Fatalf("zero-byte time = %v, want 1.5us", got)
	}
	// 10 GB at 10 GB/s = 1s, plus fixed costs.
	if got := l.Time(10 << 30); got < sim.Second || got > sim.Second+sim.Second/10 {
		t.Fatalf("10GiB time = %v, want ~1.07s", got)
	}
	if l.Time(-5) != l.Time(0) {
		t.Fatal("negative sizes must clamp to zero")
	}
}

func TestFabricHostCopy(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, PSG())
	var end sim.Time
	eng.Spawn("t", func(p *sim.Proc) {
		f.HostCopy(p, 0, 1<<30)
		end = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 GiB at 11 GB/s ~ 97.6ms.
	want := 1 << 30 / 11.0 // ns per byte * bytes = ns
	if got := float64(end); got < want*0.99 || got > want*1.05 {
		t.Fatalf("1GiB host copy = %v, want ~97.6ms", sim.Dur(end))
	}
}

func TestFabricNUMAPenalty(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, PSG())
	n := int64(256 << 20)
	nearEnd := f.PCIeCopyAsync(0, 0, 0, n, true) // socket 0 -> device 0 (near)
	eng2 := sim.NewEngine()
	f2 := NewFabric(eng2, PSG())
	farEnd := f2.PCIeCopyAsync(0, 0, 1, n, true) // socket 1 -> device 0 (far)
	ratio := float64(farEnd) / float64(nearEnd)
	if ratio < 3.0 || ratio > 3.6 {
		t.Fatalf("far/near large-transfer ratio = %.2f, want ~3.5 (Figure 8)", ratio)
	}
}

func TestFabricNUMAPenaltySmallMessageDamped(t *testing.T) {
	// For tiny transfers, latency dominates and the penalty ratio shrinks —
	// the same shape as the left side of Figure 8.
	eng := sim.NewEngine()
	f := NewFabric(eng, PSG())
	near := f.PCIeCopyAsync(0, 0, 0, 64, true)
	eng2 := sim.NewEngine()
	f2 := NewFabric(eng2, PSG())
	far := f2.PCIeCopyAsync(0, 0, 1, 64, true)
	ratio := float64(far) / float64(near)
	if ratio > 1.5 {
		t.Fatalf("64B far/near ratio = %.2f, want close to 1", ratio)
	}
}

func TestFabricNegativeSocketMeansNear(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, PSG())
	a := f.PCIeCopyAsync(0, 0, -1, 1<<20, true)
	eng2 := sim.NewEngine()
	f2 := NewFabric(eng2, PSG())
	b := f2.PCIeCopyAsync(0, 0, 0, 1<<20, true)
	if a != b {
		t.Fatalf("socket -1 (%v) should equal near socket (%v)", a, b)
	}
}

func TestFabricIntegratedDeviceUsesHostCopy(t *testing.T) {
	sys := HeteroDemo()
	eng := sim.NewEngine()
	f := NewFabric(eng, sys)
	// Node 2 devices are CPUAccel; a "PCIe" copy must cost a host copy.
	got := f.PCIeCopyAsync(2, 0, 1, 1<<20, true)
	eng2 := sim.NewEngine()
	f2 := NewFabric(eng2, sys)
	want := f2.HostCopyAsync(2, 1<<20)
	if got != want {
		t.Fatalf("integrated copy = %v, want host copy %v", got, want)
	}
}

func TestFabricP2P(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, PSG())
	if !f.CanP2P(0, 0, 1) {
		t.Fatal("PSG devices 0,1 must be P2P-capable")
	}
	if f.CanP2P(0, 0, 4) {
		t.Fatal("cross-socket devices must not be P2P-capable")
	}
	if f.CanP2P(0, 2, 2) {
		t.Fatal("a device is not P2P with itself")
	}
	end := f.P2PCopyAsync(0, 0, 1, 1<<30)
	// 1 GiB at 10.5 GB/s ~ 102ms; must be far below the staged
	// DtoH+HtoH+HtoD path.
	if end > sim.Time(150*sim.Millisecond) {
		t.Fatalf("P2P copy of 1GiB took %v", sim.Dur(end))
	}
}

func TestFabricP2PContention(t *testing.T) {
	// Two P2P copies sharing a link must serialize.
	eng := sim.NewEngine()
	f := NewFabric(eng, PSG())
	e1 := f.P2PCopyAsync(0, 0, 1, 1<<30)
	e2 := f.P2PCopyAsync(0, 1, 2, 1<<30) // shares device 1's link
	if e2 < e1 {
		t.Fatalf("overlapping copies did not serialize: %v then %v", e1, e2)
	}
	if d := e2 - e1; d < sim.Time(90*sim.Millisecond) {
		t.Fatalf("second copy gained only %v over first", sim.Dur(d))
	}
}

func TestFabricNetSend(t *testing.T) {
	sys := Titan(2)
	eng := sim.NewEngine()
	f := NewFabric(eng, sys)
	var end sim.Time
	eng.Spawn("s", func(p *sim.Proc) {
		f.NetSend(p, 0, 1, 1<<30)
		end = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 GiB at 4.5 GB/s ~ 239ms.
	if end < sim.Time(200*sim.Millisecond) || end > sim.Time(280*sim.Millisecond) {
		t.Fatalf("1GiB Gemini transfer = %v, want ~239ms", sim.Dur(end))
	}
	if !f.RDMACapable(0, 1) {
		t.Fatal("Titan must be RDMA capable both ways")
	}
}

func TestFabricNICSerializes(t *testing.T) {
	sys := Titan(3)
	eng := sim.NewEngine()
	f := NewFabric(eng, sys)
	e1 := f.NetSendAsync(0, 1, 1<<28)
	e2 := f.NetSendAsync(0, 2, 1<<28) // same source NIC
	if e2 <= e1 {
		t.Fatal("sends sharing a NIC must serialize")
	}
}

func TestDeviceClassString(t *testing.T) {
	if NVIDIAGPU.String() != "nvidia" || XeonPhi.String() != "xeonphi" ||
		CPUAccel.String() != "cpu" || AMDGPU.String() != "radeon" ||
		FPGA.String() != "fpga" {
		t.Fatal("device class names wrong")
	}
	if DeviceClass(99).String() != "DeviceClass(99)" {
		t.Fatal("unknown class formatting wrong")
	}
	if NVIDIAGPU.Integrated() || !CPUAccel.Integrated() {
		t.Fatal("Integrated() wrong")
	}
}

// Property: link time is monotone in message size and always at least the
// fixed costs.
func TestLinkTimeMonotoneProperty(t *testing.T) {
	l := LinkSpec{Latency: 1000, GBs: 5, SWOverhead: 300}
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		tx, ty := l.Time(x), l.Time(y)
		return tx <= ty && tx >= l.Latency+l.SWOverhead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the NUMA penalty never makes a transfer cheaper and converges to
// the configured factor for large sizes.
func TestNUMAPenaltyProperty(t *testing.T) {
	f := func(sz uint32) bool {
		n := int64(sz)
		e1 := sim.NewEngine()
		near := NewFabric(e1, PSG()).PCIeCopyAsync(0, 0, 0, n, true)
		e2 := sim.NewEngine()
		far := NewFabric(e2, PSG()).PCIeCopyAsync(0, 0, 1, n, true)
		return far >= near
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseClassMask(t *testing.T) {
	cases := []struct {
		in   string
		want ClassMask
		err  bool
	}{
		{"", 0, false},
		{"default", 0, false},
		{"acc_device_default", 0, false},
		{"nvidia", MaskOf(NVIDIAGPU), false},
		{"acc_device_nvidia", MaskOf(NVIDIAGPU), false},
		{"nvidia|xeonphi", MaskOf(NVIDIAGPU, XeonPhi), false},
		{"acc_device_nvidia | acc_device_xeonphi", MaskOf(NVIDIAGPU, XeonPhi), false},
		{"cpu", MaskOf(CPUAccel), false},
		{"host", MaskOf(CPUAccel), false},
		{"radeon|fpga", MaskOf(AMDGPU, FPGA), false},
		{"quantum", 0, true},
	}
	for _, c := range cases {
		got, err := ParseClassMask(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseClassMask(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseClassMask(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// newTestEngine is a tiny helper for fabric tests over loaded systems.
func newTestEngine() *sim.Engine { return sim.NewEngine() }
