package topo

import (
	"strings"
	"testing"
)

// TestPresetGrammar table-drives the selector grammar: valid selectors
// resolve with the expected node count; invalid arity, non-integer
// parameters, and arguments on fixed-size presets are rejected with clear
// errors.
func TestPresetGrammar(t *testing.T) {
	valid := []struct {
		sel   string
		nodes int
	}{
		{"psg", 1},
		{"hetero", 3},
		{"beacon", 2},
		{"beacon:5", 5},
		{"titan", 2},
		{"titan:64", 64},
		{"fattree:2", 2},
		{"fattree:4", 16},
		{"fattree:8", 128},
		{"dragonfly:2,2,2", 8},
		{"dragonfly:4,4,4", 64},
		{"gemini:2,2,2", 8},
		{"gemini:4,2,1", 8},
		{"gemini:16,8,8", 1024},
	}
	for _, tc := range valid {
		sys, err := Preset(tc.sel)
		if err != nil {
			t.Errorf("Preset(%q): unexpected error %v", tc.sel, err)
			continue
		}
		if len(sys.Nodes) != tc.nodes {
			t.Errorf("Preset(%q): %d nodes, want %d", tc.sel, len(sys.Nodes), tc.nodes)
		}
	}

	invalid := []struct {
		sel  string
		want string // substring of the error
	}{
		{"psg:8", "fixed-size"},
		{"psg:1", "fixed-size"},
		{"hetero:3", "fixed-size"},
		{"beacon:0", "bad parameter"},
		{"beacon:-2", "bad parameter"},
		{"beacon:x", "bad parameter"},
		{"beacon:2,3", "one node count"},
		{"titan:", "bad parameter"},
		{"fattree", "exactly one parameter"},
		{"fattree:3", "must be even"},
		{"fattree:2,2", "exactly one parameter"},
		{"fattree:100", "max"},
		{"dragonfly:4", "three parameters"},
		{"dragonfly:4,4", "three parameters"},
		{"dragonfly:4,4,4,4", "three parameters"},
		{"dragonfly:64,64,64", "max"},
		{"gemini:16,8", "three parameters"},
		{"gemini:0,2,2", "bad parameter"},
		{"gemini:100,100,100", "max"},
		{"nosuch", "unknown system"},
		{"nosuch:4", "unknown system"},
	}
	for _, tc := range invalid {
		sys, err := Preset(tc.sel)
		if err == nil {
			t.Errorf("Preset(%q): got %d-node system, want error containing %q", tc.sel, len(sys.Nodes), tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Preset(%q): error %q does not contain %q", tc.sel, err, tc.want)
		}
	}
}

// TestGeneratedShapeInvariants checks every generated topology for the
// invariants the runtime relies on: expected node and NIC counts, a
// TopoSpec that yields symmetric non-negative hop extras, and a strictly
// positive MinNetLatency so the sharded engine keeps a usable lookahead.
func TestGeneratedShapeInvariants(t *testing.T) {
	cases := []struct {
		sel   string
		nodes int
	}{
		{"fattree:4", 16},
		{"fattree:6", 54},
		{"dragonfly:3,2,2", 12},
		{"dragonfly:2,3,1", 6},
		{"gemini:2,3,4", 24},
		{"gemini:4,4,4", 64},
	}
	for _, tc := range cases {
		sys, err := Preset(tc.sel)
		if err != nil {
			t.Fatalf("Preset(%q): %v", tc.sel, err)
		}
		if len(sys.Nodes) != tc.nodes {
			t.Fatalf("%s: %d nodes, want %d", tc.sel, len(sys.Nodes), tc.nodes)
		}
		if sys.Topo == nil {
			t.Fatalf("%s: generated system has no TopoSpec", tc.sel)
		}
		if sys.Topo.HopLatency <= 0 {
			t.Errorf("%s: HopLatency %v, want > 0", tc.sel, sys.Topo.HopLatency)
		}
		names := make(map[string]bool, tc.nodes)
		for i := range sys.Nodes {
			n := &sys.Nodes[i]
			if n.Name == "" || names[n.Name] {
				t.Fatalf("%s: node %d has missing or duplicate name %q", tc.sel, i, n.Name)
			}
			names[n.Name] = true
			if n.NIC.Link.GBs <= 0 || n.NIC.Link.Latency <= 0 {
				t.Fatalf("%s: node %d NIC link %+v not positive", tc.sel, i, n.NIC.Link)
			}
			if len(n.Devices) != 1 {
				t.Fatalf("%s: node %d has %d devices, want 1", tc.sel, i, len(n.Devices))
			}
		}
		if min := sys.MinNetLatency(); min <= 0 {
			t.Errorf("%s: MinNetLatency %v, want > 0", tc.sel, min)
		}
		// Hop extras: zero on the diagonal, symmetric, and >= 0 everywhere
		// (the MinNetLatency lookahead bound depends on that).
		for i := 0; i < len(sys.Nodes); i++ {
			if d := sys.HopExtra(i, i); d != 0 {
				t.Fatalf("%s: HopExtra(%d,%d) = %v, want 0", tc.sel, i, i, d)
			}
			for j := i + 1; j < len(sys.Nodes); j++ {
				dij, dji := sys.HopExtra(i, j), sys.HopExtra(j, i)
				if dij != dji {
					t.Fatalf("%s: HopExtra(%d,%d)=%v != HopExtra(%d,%d)=%v", tc.sel, i, j, dij, j, i, dji)
				}
				if dij < 0 {
					t.Fatalf("%s: HopExtra(%d,%d)=%v < 0", tc.sel, i, j, dij)
				}
			}
		}
	}
}

// TestHopDistances pins a few known hop counts per generator family.
func TestHopDistances(t *testing.T) {
	ft := &TopoSpec{Kind: "fattree", Params: []int{4}}
	// k=4: 2 hosts per edge switch, pods of 4.
	for _, tc := range []struct{ a, b, want int }{
		{0, 1, 0}, // same edge switch
		{0, 2, 2}, // same pod, different edge switch
		{0, 4, 4}, // different pod
		{3, 2, 0},
		{15, 0, 4},
	} {
		if got := ft.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("fattree:4 Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}

	df := &TopoSpec{Kind: "dragonfly", Params: []int{3, 2, 2}}
	// 3 groups, 2 routers/group, 2 hosts/router. Node i: router i/2, group i/4.
	for _, tc := range []struct{ a, b, want int }{
		{0, 1, 0}, // same router
		{0, 2, 1}, // same group, other router
		{0, 4, 2}, // group 0 -> group 1: gateway in group 0 is router 1 (local hop), router 4/2=2 %2=0 == srcGroup 0 % 2 (no dst-side hop)
		{2, 4, 1}, // src router is already the gateway
	} {
		if got := df.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("dragonfly:3,2,2 Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}

	tor := &TopoSpec{Kind: "torus3d", Params: []int{4, 4, 4}}
	for _, tc := range []struct{ a, b, want int }{
		{0, 1, 0},  // +x neighbor: one hop, zero extra
		{0, 3, 0},  // wraparound -x neighbor
		{0, 2, 1},  // two hops in x
		{0, 4, 0},  // +y neighbor
		{0, 21, 2}, // (1,1,1): three hops
		{0, 42, 5}, // (2,2,2): the far corner, six hops
	} {
		if got := tor.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("torus3d 4x4x4 Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
