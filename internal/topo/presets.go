package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Preset resolves a textual system selector into a cluster description.
// The grammar is name[:int[,int...]]:
//
//	psg, hetero          fixed-size presets; arguments are rejected
//	beacon:N, titan:N    N nodes (default 2)
//	fattree:k            generated k-ary fat tree, k³/4 nodes (k even)
//	dragonfly:g,a,p      generated dragonfly, g*a*p nodes
//	gemini:X,Y,Z         generated 3D torus of Titan nodes, X*Y*Z nodes
//
// It is the shared grammar behind the CLIs' -system flags and the serve
// job API's "system" field; errors are phrased for direct display there.
func Preset(sel string) (*System, error) {
	name, argstr, hasArg := strings.Cut(sel, ":")
	var args []int
	if hasArg {
		for _, field := range strings.Split(argstr, ",") {
			v, err := strconv.Atoi(field)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("topo: bad parameter %q in system %q (positive integers only)", field, sel)
			}
			args = append(args, v)
		}
	}
	// oneArg resolves the 0-or-1 argument selectors (beacon:N, titan:N).
	oneArg := func(def int) (int, error) {
		switch len(args) {
		case 0:
			return def, nil
		case 1:
			return args[0], nil
		}
		return 0, fmt.Errorf("topo: system %q takes one node count, got %d parameters", name, len(args))
	}
	switch name {
	case "psg", "hetero":
		if hasArg {
			return nil, fmt.Errorf("topo: system %q is fixed-size and takes no node count (got %q)", name, sel)
		}
		if name == "psg" {
			return PSG(), nil
		}
		return HeteroDemo(), nil
	case "beacon":
		n, err := oneArg(2)
		if err != nil {
			return nil, err
		}
		return Beacon(n), nil
	case "titan":
		n, err := oneArg(2)
		if err != nil {
			return nil, err
		}
		return Titan(n), nil
	case "fattree":
		if len(args) != 1 {
			return nil, fmt.Errorf("topo: system fattree takes exactly one parameter k (fattree:k), got %q", sel)
		}
		k := args[0]
		if k%2 != 0 {
			return nil, fmt.Errorf("topo: fattree parameter k must be even, got %d", k)
		}
		if n := k * k * k / 4; n > MaxGeneratedNodes {
			return nil, fmt.Errorf("topo: fattree:%d would generate %d nodes (max %d)", k, n, MaxGeneratedNodes)
		}
		return FatTree(k), nil
	case "dragonfly":
		if len(args) != 3 {
			return nil, fmt.Errorf("topo: system dragonfly takes exactly three parameters (dragonfly:g,a,p), got %q", sel)
		}
		if n := args[0] * args[1] * args[2]; n > MaxGeneratedNodes {
			return nil, fmt.Errorf("topo: dragonfly:%d,%d,%d would generate %d nodes (max %d)", args[0], args[1], args[2], n, MaxGeneratedNodes)
		}
		return Dragonfly(args[0], args[1], args[2]), nil
	case "gemini":
		if len(args) != 3 {
			return nil, fmt.Errorf("topo: system gemini takes exactly three parameters (gemini:X,Y,Z), got %q", sel)
		}
		if n := args[0] * args[1] * args[2]; n > MaxGeneratedNodes {
			return nil, fmt.Errorf("topo: gemini:%d,%d,%d would generate %d nodes (max %d)", args[0], args[1], args[2], n, MaxGeneratedNodes)
		}
		return Gemini(args[0], args[1], args[2]), nil
	}
	return nil, fmt.Errorf("topo: unknown system %q (psg, beacon:N, titan:N, hetero, fattree:k, dragonfly:g,a,p, gemini:X,Y,Z)", sel)
}

// Presets for the three evaluation systems of Table 1 plus the
// heterogeneous demo cluster of Figure 2. Rates are calibrated so the
// simulated machines land near published microbenchmark numbers for the
// real hardware; the paper comparison only relies on relative shapes.

// PSG returns one node of NVIDIA's PSG cluster: 2× Xeon E5-2698 v3,
// 8× Kepler GK210 (PCIe Gen3 x16), Mellanox InfiniBand FDR, MVAPICH2
// (MPI_THREAD_MULTIPLE). The paper uses a single PSG node.
func PSG() *System {
	node := NodeSpec{
		Name: "psg",
		Sockets: []SocketSpec{
			{Name: "E5-2698v3", Cores: 16, GFlopsDP: 589},
			{Name: "E5-2698v3", Cores: 16, GFlopsDP: 589},
		},
		MemoryBytes:    256 << 30,
		HostMemGBs:     11.0,
		HostCopySW:     1200,
		Inter:          LinkSpec{Latency: 120, GBs: 16.0, SWOverhead: 0},
		NUMAPenalty:    3.5,
		PageableFactor: 0.55,
		ShmFactor:      0.5,
		IPCOverhead:    3000,
		NIC: NICSpec{
			Name:   "mlx-fdr",
			Link:   LinkSpec{Latency: 1300, GBs: 6.0, SWOverhead: 600},
			Socket: 0,
			RDMA:   true,
		},
	}
	for i := 0; i < 8; i++ {
		node.Devices = append(node.Devices, DeviceSpec{
			Class:        NVIDIAGPU,
			Name:         fmt.Sprintf("GK210-%d", i),
			MemoryBytes:  12 << 30,
			Socket:       i / 4, // 4 GPUs per root complex
			GFlopsDP:     1200,
			GemmEff:      0.78,
			MemBWGBs:     240,
			StencilEff:   0.55,
			KernelLaunch: 8000, // 8us CUDA launch
			PCIe:         LinkSpec{Latency: 900, GBs: 11.8, SWOverhead: 4000},
			P2PGBs:       10.5,
		})
	}
	return &System{
		Name:           "PSG",
		Nodes:          []NodeSpec{node},
		MPIOverhead:    400,
		ThreadMultiple: true,
	}
}

// Beacon returns n nodes of the Beacon cluster: 2× Xeon E5-2670, 4× Xeon Phi
// 5110P (PCIe Gen2 x16), Mellanox InfiniBand FDR, Intel MPI
// (MPI_THREAD_MULTIPLE). The paper uses up to 32 of 48 nodes.
func Beacon(n int) *System {
	sys := &System{Name: "Beacon", MPIOverhead: 450, ThreadMultiple: true}
	for i := 0; i < n; i++ {
		node := NodeSpec{
			Name: fmt.Sprintf("beacon%03d", i),
			Sockets: []SocketSpec{
				{Name: "E5-2670", Cores: 8, GFlopsDP: 166},
				{Name: "E5-2670", Cores: 8, GFlopsDP: 166},
			},
			MemoryBytes:    256 << 30,
			HostMemGBs:     9.0,
			HostCopySW:     1200,
			Inter:          LinkSpec{Latency: 150, GBs: 12.8, SWOverhead: 0},
			NUMAPenalty:    2.6,
			PageableFactor: 0.6,
			ShmFactor:      0.5,
			IPCOverhead:    3500,
			NIC: NICSpec{
				Name:   "mlx-fdr",
				Link:   LinkSpec{Latency: 1500, GBs: 5.6, SWOverhead: 700},
				Socket: 0,
				RDMA:   false, // MIC path stages through host (no GPUDirect)
			},
		}
		for d := 0; d < 4; d++ {
			node.Devices = append(node.Devices, DeviceSpec{
				Class:        XeonPhi,
				Name:         fmt.Sprintf("5110P-%d", d),
				MemoryBytes:  8 << 30,
				Socket:       d / 2, // 2 MICs per socket
				GFlopsDP:     1011,
				GemmEff:      0.70,
				MemBWGBs:     320,
				StencilEff:   0.40,
				KernelLaunch: 15000, // OpenCL launch path is slower
				PCIe:         LinkSpec{Latency: 1100, GBs: 6.0, SWOverhead: 6000},
				P2PGBs:       4.8,
			})
		}
		sys.Nodes = append(sys.Nodes, node)
	}
	return sys
}

// Titan returns n nodes of the Titan supercomputer: AMD Opteron 6274,
// 1× Tesla K20X per node (PCIe Gen2 x16), Cray Gemini interconnect, Cray
// MPICH2 (MPI_THREAD_MULTIPLE), GPUDirect RDMA exploited by IMPACC
// (paper §4.2, Figure 9 g-i).
func Titan(n int) *System {
	sys := &System{Name: "Titan", MPIOverhead: 500, ThreadMultiple: true}
	for i := 0; i < n; i++ {
		node := NodeSpec{
			Name: fmt.Sprintf("titan%05d", i),
			Sockets: []SocketSpec{
				{Name: "Opteron-6274", Cores: 16, GFlopsDP: 141},
			},
			MemoryBytes:    32 << 30,
			HostMemGBs:     7.5,
			HostCopySW:     1500,
			Inter:          LinkSpec{Latency: 150, GBs: 10.0, SWOverhead: 0},
			NUMAPenalty:    1.0, // single socket: no NUMA penalty
			PageableFactor: 0.6,
			ShmFactor:      0.5,
			IPCOverhead:    3000,
			NIC: NICSpec{
				Name:   "gemini",
				Link:   LinkSpec{Latency: 1500, GBs: 4.5, SWOverhead: 800},
				Socket: 0,
				RDMA:   true,
			},
			Devices: []DeviceSpec{{
				Class:        NVIDIAGPU,
				Name:         "K20X",
				MemoryBytes:  6 << 30,
				Socket:       0,
				GFlopsDP:     1310,
				GemmEff:      0.80,
				MemBWGBs:     250,
				StencilEff:   0.55,
				KernelLaunch: 8000,
				PCIe:         LinkSpec{Latency: 1000, GBs: 6.0, SWOverhead: 4000},
				P2PGBs:       0, // one device per node: P2P never applies
			}},
		}
		sys.Nodes = append(sys.Nodes, node)
	}
	return sys
}

// HeteroDemo returns the heterogeneous three-node cluster used to exercise
// automatic task-device mapping (paper Figure 2): node 0 with two NVIDIA
// GPUs, node 1 with one NVIDIA GPU and two Xeon Phis, node 2 with CPU-only
// accelerators. Every node also exposes its CPU cores as one CPUAccel
// device per socket.
func HeteroDemo() *System {
	gpu := func(i, socket int) DeviceSpec {
		return DeviceSpec{
			Class: NVIDIAGPU, Name: fmt.Sprintf("gpu%d", i), MemoryBytes: 6 << 30,
			Socket: socket, GFlopsDP: 1200, GemmEff: 0.75, MemBWGBs: 240,
			StencilEff: 0.5, KernelLaunch: 8000,
			PCIe: LinkSpec{Latency: 900, GBs: 11.8, SWOverhead: 4000}, P2PGBs: 10,
		}
	}
	phi := func(i, socket int) DeviceSpec {
		return DeviceSpec{
			Class: XeonPhi, Name: fmt.Sprintf("mic%d", i), MemoryBytes: 8 << 30,
			Socket: socket, GFlopsDP: 1011, GemmEff: 0.7, MemBWGBs: 320,
			StencilEff: 0.4, KernelLaunch: 15000,
			PCIe: LinkSpec{Latency: 1100, GBs: 6.0, SWOverhead: 6000}, P2PGBs: 4.8,
		}
	}
	cpu := func(i, socket int) DeviceSpec {
		return DeviceSpec{
			Class: CPUAccel, Name: fmt.Sprintf("cpu%d", i),
			Socket: socket, GFlopsDP: 300, GemmEff: 0.85, MemBWGBs: 50,
			StencilEff: 0.6, KernelLaunch: 1500,
		}
	}
	base := NodeSpec{
		Sockets: []SocketSpec{
			{Name: "xeon", Cores: 8, GFlopsDP: 300},
			{Name: "xeon", Cores: 8, GFlopsDP: 300},
		},
		MemoryBytes: 64 << 30,
		HostMemGBs:  10, HostCopySW: 1200,
		Inter:          LinkSpec{Latency: 130, GBs: 14, SWOverhead: 0},
		NUMAPenalty:    3.0,
		PageableFactor: 0.55,
		ShmFactor:      0.5,
		IPCOverhead:    3000,
		NIC: NICSpec{Name: "ib", Link: LinkSpec{Latency: 1400, GBs: 5.5, SWOverhead: 650},
			Socket: 0, RDMA: true},
	}
	n0 := base
	n0.Name = "hetero0"
	n0.Devices = []DeviceSpec{gpu(0, 0), gpu(1, 1), cpu(0, 0), cpu(1, 1)}
	n1 := base
	n1.Name = "hetero1"
	n1.Devices = []DeviceSpec{gpu(0, 0), phi(0, 0), phi(1, 1), cpu(0, 0), cpu(1, 1)}
	n2 := base
	n2.Name = "hetero2"
	n2.Devices = []DeviceSpec{cpu(0, 0), cpu(1, 1)}
	return &System{
		Name:           "HeteroDemo",
		Nodes:          []NodeSpec{n0, n1, n2},
		MPIOverhead:    400,
		ThreadMultiple: true,
	}
}
