package topo

import (
	"fmt"

	"impacc/internal/sim"
	"impacc/internal/telemetry"
)

// Fabric materializes a System's shared transfer resources in a simulation
// engine and prices every kind of data movement the IMPACC runtime performs:
// host memcpy, PCIe transfers (with NUMA penalty), direct device-to-device
// PCIe copies, and internode network transfers.
//
// All *Async methods charge resource occupancy starting at the current
// virtual time and return the completion time without blocking; callers
// (device streams, message handlers) sleep until completion or attach
// callbacks. Blocking variants park the calling process.
type Fabric struct {
	// Eng is node 0's engine — the only engine of an unsharded fabric.
	Eng *sim.Engine
	Sys *System

	// Faults, when set, perturbs internode transfer pricing: link
	// degradation stretches NIC occupancy, NIC stalls delay injection.
	// The internal/fault package's Plan satisfies it.
	Faults NetFaults

	nodes []*NodeRes
	// engines[i] hosts node i's resources; all identical for an unsharded
	// fabric, one shard engine per node under parallel simulation.
	engines []*sim.Engine
}

// NetFaults is the slice of a chaos plan the fabric consults when pricing
// internode transfers.
type NetFaults interface {
	// LinkFactor returns the bandwidth-degradation multiplier (>= 1)
	// applied to node's NIC at virtual time at.
	LinkFactor(node int, at sim.Time) float64
	// SendStall returns an injection delay charged before node's NIC
	// accepts a transfer at virtual time at (zero when no stall fires).
	SendStall(node int, at sim.Time) sim.Dur
}

// NodeRes holds the materialized shared resources of one node.
type NodeRes struct {
	// PCIe has one entry per device; nil for integrated devices.
	PCIe []*sim.FIFOResource
	// Inter is the inter-socket (QPI/HT) link.
	Inter *sim.FIFOResource
	// MemBus models the host memory system's copy bandwidth.
	MemBus *sim.FIFOResource
	// NICOut and NICIn are the network adapter's injection and ejection
	// sides.
	NICOut, NICIn *sim.FIFOResource
}

// NewFabric builds the per-node resources for sys inside one engine.
func NewFabric(eng *sim.Engine, sys *System) *Fabric {
	engines := make([]*sim.Engine, len(sys.Nodes))
	for i := range engines {
		engines[i] = eng
	}
	return NewShardedFabric(engines, sys)
}

// NewShardedFabric builds the fabric with node i's resources living in
// engines[i] — the shard layout of parallel simulation. Every resource is
// only ever touched from its own engine's events; the internode path
// crosses engines exclusively through NetInjectAsync (source side) and
// NetAcceptAsync (destination side, run on the destination engine).
func NewShardedFabric(engines []*sim.Engine, sys *System) *Fabric {
	if len(engines) != len(sys.Nodes) {
		panic("topo: NewShardedFabric needs one engine per node")
	}
	f := &Fabric{Eng: engines[0], Sys: sys, engines: engines}
	f.nodes = make([]*NodeRes, len(sys.Nodes))
	for i := range sys.Nodes {
		node := &sys.Nodes[i]
		eng := engines[i]
		nr := &NodeRes{
			Inter:  eng.NewFIFOResource(fmt.Sprintf("%s/inter", node.Name)),
			MemBus: eng.NewFIFOResource(fmt.Sprintf("%s/membus", node.Name)),
			NICOut: eng.NewFIFOResource(fmt.Sprintf("%s/nic-out", node.Name)),
			NICIn:  eng.NewFIFOResource(fmt.Sprintf("%s/nic-in", node.Name)),
		}
		nr.PCIe = make([]*sim.FIFOResource, len(node.Devices))
		for d := range node.Devices {
			if !node.Devices[d].Class.Integrated() {
				nr.PCIe[d] = eng.NewFIFOResource(
					fmt.Sprintf("%s/pcie%d", node.Name, d))
			}
		}
		f.nodes[i] = nr
	}
	return f
}

// Node returns the resources of node i.
func (f *Fabric) Node(i int) *NodeRes { return f.nodes[i] }

// Engine returns the engine hosting node i's resources.
func (f *Fabric) Engine(i int) *sim.Engine { return f.engines[i] }

// MinNetLatency returns the smallest fixed internode latency any node's NIC
// can achieve: min over nodes of link latency plus software overhead,
// excluding occupancy. It is the conservative lookahead bound for sharding
// the simulation by node — every cross-node event lands at least this far
// in the sender's future. Fault plans can only lengthen a transfer (stalls
// add delay, degradation stretches occupancy), never shorten it, so the
// bound holds under chaos without clamping. Returns 0 (no usable lookahead)
// if any node's NIC carries no fixed latency.
func (f *Fabric) MinNetLatency() sim.Dur { return f.Sys.MinNetLatency() }

// MinNetLatency is the System-level computation behind
// Fabric.MinNetLatency, usable before any engine exists (the runtime
// decides its shard layout from it).
func (s *System) MinNetLatency() sim.Dur {
	min := sim.Dur(-1)
	for i := range s.Nodes {
		l := s.Nodes[i].NIC.Link
		fixed := l.Latency + l.SWOverhead
		if min < 0 || fixed < min {
			min = fixed
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// LinkUtilization is the telemetry gauge family carrying per-node link
// utilization: labels node and link (pcie<N>, inter, membus, nic-out,
// nic-in), values in [0, 1].
const LinkUtilization = "fabric_link_utilization"

// RecordUtilization writes one utilization gauge per shared link of every
// node: accumulated busy time divided by elapsed, clamped to [0, 1]. Call
// at the end of a run with the run's elapsed virtual time.
func (f *Fabric) RecordUtilization(reg *telemetry.Registry, elapsed sim.Dur) {
	if reg == nil || elapsed <= 0 {
		return
	}
	for i := range f.Sys.Nodes {
		node := f.Sys.Nodes[i].Name
		nr := f.nodes[i]
		set := func(link string, r *sim.FIFOResource) {
			if r == nil {
				return
			}
			u := float64(r.BusyTime) / float64(elapsed)
			if u > 1 {
				u = 1
			}
			reg.Gauge(LinkUtilization, "per-node shared link utilization over the run",
				"node", node, "link", link).Set(u)
		}
		set("inter", nr.Inter)
		set("membus", nr.MemBus)
		set("nic-out", nr.NICOut)
		set("nic-in", nr.NICIn)
		for d, p := range nr.PCIe {
			set(fmt.Sprintf("pcie%d", d), p)
		}
	}
}

// HostCopyAsync prices an intra-node host-to-host memcpy of n bytes and
// returns its completion time.
func (f *Fabric) HostCopyAsync(node int, n int64) sim.Time {
	spec := &f.Sys.Nodes[node]
	occupy := sim.DurFromSeconds(float64(n) / (spec.HostMemGBs * 1e9))
	_, end := f.nodes[node].MemBus.UseAsync(occupy)
	return end + sim.Time(spec.HostCopySW)
}

// HostCopy is the blocking variant of HostCopyAsync.
func (f *Fabric) HostCopy(p *sim.Proc, node int, n int64) {
	p.SleepUntil(f.HostCopyAsync(node, n))
}

// ShmCopyAsync prices one copy of the legacy inter-process shared-memory
// transport: host memcpy at the node's ShmFactor bandwidth plus the
// per-message IPC synchronization overhead. This is the "inter-process
// communication and/or redundant host-to-host memory copy" of Figure 6 (a).
func (f *Fabric) ShmCopyAsync(node int, n int64) sim.Time {
	spec := &f.Sys.Nodes[node]
	factor := spec.ShmFactor
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	occupy := sim.DurFromSeconds(float64(n) / (spec.HostMemGBs * factor * 1e9))
	_, end := f.nodes[node].MemBus.UseAsync(occupy)
	return end + sim.Time(spec.HostCopySW+spec.IPCOverhead)
}

// PCIeCopyAsync prices a host-to-device or device-to-host transfer of n
// bytes for device dev of node, initiated from CPU socket fromSocket.
// When fromSocket differs from the device's near socket, the node's NUMA
// penalty divides the effective bandwidth and the transfer also occupies
// the inter-socket link (paper §3.3, Figure 8). fromSocket < 0 means "near"
// (no penalty). pinned=false applies the node's PageableFactor (legacy
// application buffers); the IMPACC runtime's internal buffers are
// pre-pinned. Integrated devices cost one host copy instead.
func (f *Fabric) PCIeCopyAsync(node, dev, fromSocket int, n int64, pinned bool) sim.Time {
	spec := &f.Sys.Nodes[node]
	d := &spec.Devices[dev]
	if d.Class.Integrated() {
		return f.HostCopyAsync(node, n)
	}
	link := d.PCIe
	far := fromSocket >= 0 && fromSocket != d.Socket && spec.NUMAPenalty > 1
	occupy := link.Occupy(n)
	if !pinned && spec.PageableFactor > 0 && spec.PageableFactor < 1 {
		occupy = sim.Dur(float64(occupy) / spec.PageableFactor)
	}
	tail := link.Latency + link.SWOverhead
	nr := f.nodes[node]
	if far {
		occupy = sim.Dur(float64(occupy) * spec.NUMAPenalty)
		tail += spec.Inter.Latency
		// The inter-socket link carries the data volume at its own
		// bandwidth; the PCIe link is held for the penalty-inflated
		// duration (the transfer crawls at the far-socket rate).
		_, interEnd := nr.Inter.UseAsync(spec.Inter.Occupy(n))
		_, pcieEnd := nr.PCIe[dev].UseAsync(occupy)
		end := pcieEnd
		if interEnd > end {
			end = interEnd
		}
		return end + sim.Time(tail)
	}
	_, end := nr.PCIe[dev].UseAsync(occupy)
	return end + sim.Time(tail)
}

// PCIeCopy is the blocking variant of PCIeCopyAsync.
func (f *Fabric) PCIeCopy(p *sim.Proc, node, dev, fromSocket int, n int64, pinned bool) {
	p.SleepUntil(f.PCIeCopyAsync(node, dev, fromSocket, n, pinned))
}

// P2PCopyAsync prices a direct device-to-device PCIe copy of n bytes between
// devices a and b of node, which must share a root complex. It occupies
// both device links for the same interval (paper §3.7: "the runtime copies
// data directly between devices over the PCIe without the involvement of
// the CPU or system memory").
func (f *Fabric) P2PCopyAsync(node, a, b int, n int64) sim.Time {
	spec := &f.Sys.Nodes[node]
	da, db := &spec.Devices[a], &spec.Devices[b]
	bw := da.P2PGBs
	if db.P2PGBs < bw {
		bw = db.P2PGBs
	}
	occupy := sim.DurFromSeconds(float64(n) / (bw * 1e9))
	tail := da.PCIe.Latency + da.PCIe.SWOverhead
	nr := f.nodes[node]
	_, end := sim.CoUseAsync(occupy, nr.PCIe[a], nr.PCIe[b])
	return end + sim.Time(tail)
}

// CanP2P reports whether a direct DtoD copy is possible between devices a
// and b of node: same root complex and both advertise P2P bandwidth.
func (f *Fabric) CanP2P(node, a, b int) bool {
	spec := &f.Sys.Nodes[node]
	if a == b || !spec.SameRootComplex(a, b) {
		return false
	}
	return spec.Devices[a].P2PGBs > 0 && spec.Devices[b].P2PGBs > 0
}

// NetSendAsync prices an internode transfer of n bytes from srcNode to
// dstNode, occupying the source NIC's injection side and the destination
// NIC's ejection side for the same interval, plus wire latency. Both
// endpoints must live in the same engine (unsharded fabrics only); the
// sharded message path uses NetInjectAsync + NetAcceptAsync instead.
func (f *Fabric) NetSendAsync(srcNode, dstNode int, n int64) sim.Time {
	occupy, tail := f.netPrice(srcNode, dstNode, n)
	_, end := sim.CoUseAsync(occupy, f.nodes[srcNode].NICOut, f.nodes[dstNode].NICIn)
	return end + sim.Time(tail)
}

// netPrice computes the (possibly fault-degraded) NIC occupancy and fixed
// tail of an n-byte transfer injected by srcNode now toward dstNode. Under
// a generated topology (System.Topo) the tail additionally pays the route's
// extra switch hops; HopExtra is always >= 0, so the MinNetLatency
// lookahead bound is unaffected.
func (f *Fabric) netPrice(srcNode, dstNode int, n int64) (occupy sim.Dur, tail sim.Dur) {
	link := f.Sys.Nodes[srcNode].NIC.Link
	occupy = link.Occupy(n)
	tail = link.Latency + link.SWOverhead + f.Sys.HopExtra(srcNode, dstNode)
	if f.Faults != nil {
		now := f.engines[srcNode].Now()
		if factor := f.Faults.LinkFactor(srcNode, now); factor > 1 {
			occupy = sim.Dur(float64(occupy) * factor)
		}
		tail += f.Faults.SendStall(srcNode, now)
	}
	return occupy, tail
}

// NetInjectAsync prices the source half of an internode transfer toward
// dstNode: the source NIC's injection side is occupied from when it frees
// up, and the message's trailing byte reaches the destination NIC at the
// returned arrive time (injection end plus wire latency, topology hop
// extras, stalls included). The returned occupy is the transfer's wire
// occupancy, to be charged to the destination with NetAcceptAsync at
// arrive — on the destination's engine. arrive is always at least
// MinNetLatency past the source's current time, which is what makes it
// safe to schedule across shards.
func (f *Fabric) NetInjectAsync(srcNode, dstNode int, n int64) (arrive sim.Time, occupy sim.Dur) {
	occupy, tail := f.netPrice(srcNode, dstNode, n)
	_, end := f.nodes[srcNode].NICOut.UseAsync(occupy)
	return end + sim.Time(tail), occupy
}

// NetAcceptAsync charges the destination half of an internode transfer
// whose trailing byte arrives now (call it at the arrive time returned by
// NetInjectAsync, on the destination node's engine): the ejection side is
// occupied for occupy ending no earlier than now, and the returned deliver
// time is when the payload is fully ejected — exactly now when the NIC is
// idle, later when earlier arrivals still occupy it.
func (f *Fabric) NetAcceptAsync(dstNode int, occupy sim.Dur) (deliver sim.Time) {
	arrive := f.engines[dstNode].Now()
	_, deliver = f.nodes[dstNode].NICIn.UseAsyncFrom(arrive-sim.Time(occupy), occupy)
	return deliver
}

// NetSend is the blocking variant of NetSendAsync.
func (f *Fabric) NetSend(p *sim.Proc, srcNode, dstNode int, n int64) {
	p.SleepUntil(f.NetSendAsync(srcNode, dstNode, n))
}

// RDMACapable reports whether both endpoints support direct accelerator
// memory access over the network (GPUDirect RDMA, paper §3.7): data moves
// from device memory to the NIC without staging through host memory.
func (f *Fabric) RDMACapable(srcNode, dstNode int) bool {
	return f.Sys.Nodes[srcNode].NIC.RDMA && f.Sys.Nodes[dstNode].NIC.RDMA
}
