// Package topo describes heterogeneous accelerator clusters: nodes, NUMA
// sockets, accelerator devices, PCIe root complexes, NICs, and the
// interconnection network (paper §2.1, Figure 1). It is the stand-in for the
// real PSG, Beacon, and Titan machines of Table 1: all paper effects — the
// NUMA transfer penalty, direct device-to-device PCIe copies, GPUDirect
// RDMA — are functions of this topology plus the link cost model in
// fabric.go.
package topo

import (
	"fmt"
	"strings"

	"impacc/internal/sim"
)

// DeviceClass identifies a kind of accelerator. It mirrors the OpenACC
// device-type values used by IMPACC_ACC_DEVICE_TYPE (paper §3.2, Figure 2).
type DeviceClass int

// Accelerator classes. CPUAccel models IMPACC's "set of CPU cores as an
// accelerator" (paper §2.1); it is an integrated accelerator sharing host
// memory, so it needs no PCIe transfers.
const (
	NVIDIAGPU DeviceClass = iota
	XeonPhi
	AMDGPU
	FPGA
	CPUAccel
)

func (c DeviceClass) String() string {
	switch c {
	case NVIDIAGPU:
		return "nvidia"
	case XeonPhi:
		return "xeonphi"
	case AMDGPU:
		return "radeon"
	case FPGA:
		return "fpga"
	case CPUAccel:
		return "cpu"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// Integrated reports whether the class shares host memory (no discrete
// device memory and no PCIe transfer needed, paper §2.4).
func (c DeviceClass) Integrated() bool { return c == CPUAccel }

// LinkSpec is the cost model of a point-to-point link or bus: a transfer of
// B bytes takes Latency + B/Bandwidth, plus a per-operation software
// overhead charged to the initiating processor.
type LinkSpec struct {
	Latency    sim.Dur // propagation + setup latency per message
	GBs        float64 // sustained bandwidth in gigabytes per second
	SWOverhead sim.Dur // driver/runtime software overhead per operation
}

// Time returns the end-to-end duration of moving n bytes over the link.
func (l LinkSpec) Time(n int64) sim.Dur {
	if n < 0 {
		n = 0
	}
	return l.Latency + l.SWOverhead + sim.DurFromSeconds(float64(n)/(l.GBs*1e9))
}

// Occupy returns only the bandwidth (occupancy) portion of a transfer.
func (l LinkSpec) Occupy(n int64) sim.Dur {
	if n < 0 {
		n = 0
	}
	return sim.DurFromSeconds(float64(n) / (l.GBs * 1e9))
}

// DeviceSpec describes one accelerator installed in a node.
type DeviceSpec struct {
	Class       DeviceClass
	Name        string
	MemoryBytes int64
	Socket      int // index of the near socket (PCIe root complex)

	// Compute model.
	GFlopsDP     float64 // peak double-precision rate
	GemmEff      float64 // fraction of peak achieved by DGEMM kernels
	MemBWGBs     float64 // device memory bandwidth
	StencilEff   float64 // fraction of MemBW achieved by stencil kernels
	KernelLaunch sim.Dur // host-side kernel launch overhead

	// PCIe is the device's link to its root complex. Ignored for
	// integrated (CPUAccel) devices.
	PCIe LinkSpec
	// P2PGBs is the direct device-to-device bandwidth when both devices
	// share a root complex (GPUDirect / DirectGMA). Zero disables P2P.
	P2PGBs float64
}

// SocketSpec describes one CPU socket.
type SocketSpec struct {
	Name  string
	Cores int
	// GFlopsDP is the socket's aggregate double-precision rate, used for
	// CPUAccel devices and host-side compute.
	GFlopsDP float64
}

// NICSpec describes the node's network adapter.
type NICSpec struct {
	Name   string
	Link   LinkSpec
	Socket int  // near socket
	RDMA   bool // supports direct accelerator memory access (GPUDirect RDMA)
}

// NodeSpec describes one compute node.
type NodeSpec struct {
	Name        string
	Sockets     []SocketSpec
	Devices     []DeviceSpec
	MemoryBytes int64

	// HostMemGBs is the sustained host memcpy bandwidth (one HtoH copy).
	HostMemGBs float64
	// HostCopySW is the software overhead of initiating a host copy.
	HostCopySW sim.Dur

	// Inter is the inter-socket link (QPI / HyperTransport).
	Inter LinkSpec
	// NUMAPenalty divides effective PCIe bandwidth when the initiating
	// CPU is on a different socket than the device (paper §3.3/Fig 8,
	// "up to 3.5 times").
	NUMAPenalty float64

	// PageableFactor multiplies PCIe bandwidth for transfers from
	// pageable (unpinned) host memory. The IMPACC runtime "internally
	// uses the pre-pinned host memory" (paper §3.7); the legacy baseline
	// transfers application buffers directly.
	PageableFactor float64
	// ShmFactor multiplies host memcpy bandwidth for legacy inter-process
	// shared-memory transport copies (cache-cold, two processes).
	ShmFactor float64
	// IPCOverhead is the per-message synchronization cost of the legacy
	// inter-process transport.
	IPCOverhead sim.Dur

	NIC NICSpec
}

// CPUCores returns the total core count of the node.
func (n *NodeSpec) CPUCores() int {
	total := 0
	for _, s := range n.Sockets {
		total += s.Cores
	}
	return total
}

// DeviceAffinity returns the near-socket index of device d, the information
// the real runtime reads from /sys/class/pci_bus (paper §3.3).
func (n *NodeSpec) DeviceAffinity(d int) int {
	return n.Devices[d].Socket
}

// SysfsPath returns a sysfs-shaped affinity path for device d, matching the
// mechanism the paper's runtime uses to identify CPU affinities.
func (n *NodeSpec) SysfsPath(d int) string {
	dev := n.Devices[d]
	return fmt.Sprintf("/sys/class/pci_bus/0000:%02x/device/numa_node:%d",
		0x10*(dev.Socket+1)+d, dev.Socket)
}

// SameRootComplex reports whether devices a and b hang off the same PCIe
// root complex, the condition for direct DtoD copies (paper §3.7).
func (n *NodeSpec) SameRootComplex(a, b int) bool {
	da, db := n.Devices[a], n.Devices[b]
	if da.Class.Integrated() || db.Class.Integrated() {
		return false
	}
	return da.Socket == db.Socket
}

// System is a full cluster description.
type System struct {
	Name  string
	Nodes []NodeSpec
	// MPIOverhead is the software cost of one MPI call into the
	// underlying library.
	MPIOverhead sim.Dur
	// ThreadMultiple reports whether the underlying MPI library supports
	// MPI_THREAD_MULTIPLE; if false, IMPACC serializes internode calls
	// per node (paper §3.7).
	ThreadMultiple bool
	// Topo, when non-nil, describes a generated interconnect shape (see
	// generate.go): internode transfers then pay an extra per-hop latency
	// via HopExtra. Nil means a flat network (all hand-written presets).
	Topo *TopoSpec `json:",omitempty"`
}

// TotalDevices counts accelerators of the given classes across the system;
// a zero mask counts all devices.
func (s *System) TotalDevices(mask ClassMask) int {
	total := 0
	for i := range s.Nodes {
		for _, d := range s.Nodes[i].Devices {
			if mask.Has(d.Class) {
				total++
			}
		}
	}
	return total
}

// ClassMask is a bit field of DeviceClass values, mirroring the
// acc_device_nvidia | acc_device_xeonphi style selection of Figure 2.
type ClassMask uint32

// MaskOf builds a mask from classes. MaskOf() is the empty mask, which
// selectors treat as "default" (all devices).
func MaskOf(classes ...DeviceClass) ClassMask {
	var m ClassMask
	for _, c := range classes {
		m |= 1 << uint(c)
	}
	return m
}

// Has reports whether the mask selects class c. The empty mask selects
// everything (acc_device_default).
func (m ClassMask) Has(c DeviceClass) bool {
	if m == 0 {
		return true
	}
	return m&(1<<uint(c)) != 0
}

// ParseClassMask parses an IMPACC_ACC_DEVICE_TYPE environment string such
// as "nvidia", "acc_device_xeonphi", or "nvidia|xeonphi" (paper §3.2).
// Empty input and "default"/"acc_device_default" select every device.
func ParseClassMask(s string) (ClassMask, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	var m ClassMask
	for _, part := range strings.Split(s, "|") {
		name := strings.TrimPrefix(strings.TrimSpace(part), "acc_device_")
		switch name {
		case "default", "":
			return 0, nil
		case "nvidia":
			m |= MaskOf(NVIDIAGPU)
		case "xeonphi":
			m |= MaskOf(XeonPhi)
		case "radeon":
			m |= MaskOf(AMDGPU)
		case "fpga":
			m |= MaskOf(FPGA)
		case "cpu", "host":
			m |= MaskOf(CPUAccel)
		default:
			return 0, fmt.Errorf("topo: unknown device type %q", part)
		}
	}
	return m, nil
}

func (m ClassMask) String() string {
	if m == 0 {
		return "default"
	}
	out := ""
	for c := NVIDIAGPU; c <= CPUAccel; c++ {
		if m&(1<<uint(c)) != 0 {
			if out != "" {
				out += "|"
			}
			out += c.String()
		}
	}
	return out
}
