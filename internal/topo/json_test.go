package topo

import (
	"strings"
	"testing"
)

const miniConfig = `{
  "name": "mini",
  "mpiOverhead": 400,
  "threadMultiple": true,
  "nodes": [{
    "name": "n",
    "count": 3,
    "sockets": [{"name": "cpu", "cores": 8, "gflopsDP": 300}],
    "memoryGB": 64,
    "hostMemGBs": 10,
    "hostCopySW": 1200,
    "numaPenalty": 1,
    "nic": {"name": "eth", "link": {"latency": 2000, "gbs": 1.25}, "rdma": false},
    "devices": [{
      "class": "nvidia", "name": "gpu0", "memoryGB": 8,
      "gflopsDP": 1000, "gemmEff": 0.8, "memBWGBs": 200,
      "stencilEff": 0.5, "kernelLaunch": 8000,
      "pcie": {"latency": 900, "gbs": 12, "swOverhead": 4000}, "p2pGBs": 10
    }, {
      "class": "cpu", "name": "cpuacc", "gflopsDP": 300, "gemmEff": 0.8,
      "memBWGBs": 40, "stencilEff": 0.5, "kernelLaunch": 1500
    }]
  }]
}`

func TestLoadSystem(t *testing.T) {
	sys, err := LoadSystem(strings.NewReader(miniConfig))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "mini" || !sys.ThreadMultiple || sys.MPIOverhead != 400 {
		t.Fatalf("system header = %+v", sys)
	}
	if len(sys.Nodes) != 3 {
		t.Fatalf("count replication: %d nodes, want 3", len(sys.Nodes))
	}
	if sys.Nodes[0].Name != "n-0" || sys.Nodes[2].Name != "n-2" {
		t.Fatalf("replicated names: %q, %q", sys.Nodes[0].Name, sys.Nodes[2].Name)
	}
	n := sys.Nodes[1]
	if n.MemoryBytes != 64<<30 || n.HostMemGBs != 10 {
		t.Fatalf("node fields: %+v", n)
	}
	if len(n.Devices) != 2 || n.Devices[0].Class != NVIDIAGPU || n.Devices[1].Class != CPUAccel {
		t.Fatalf("devices: %+v", n.Devices)
	}
	if n.Devices[0].PCIe.GBs != 12 || n.Devices[0].MemoryBytes != 8<<30 {
		t.Fatalf("gpu spec: %+v", n.Devices[0])
	}
	if sys.TotalDevices(MaskOf(NVIDIAGPU)) != 3 {
		t.Fatal("device counting over loaded system wrong")
	}
}

func TestLoadSystemErrors(t *testing.T) {
	cases := []struct {
		name, mut, wantErr string
	}{
		{"no name", `"name": "mini"`, "needs a name"},
		{"bad class", `"class": "nvidia", "name": "gpu0"`, "exactly one type"},
		{"bad socket", `"name": "cpuacc"`, "out of range"},
		{"no nic bw", `"gbs": 1.25`, "must be positive"},
		{"unknown field", `"mpiOverhead": 400`, "unknown field"},
	}
	muts := map[string]string{
		"no name":       `"name": ""`,
		"bad class":     `"class": "nvidia|cpu", "name": "gpu0"`,
		"bad socket":    `"name": "cpuacc", "socket": 7`,
		"no nic bw":     `"gbs": 0`,
		"unknown field": `"mpiOverhead": 400, "bogus": 1`,
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			broken := strings.Replace(miniConfig, c.mut, muts[c.name], 1)
			if broken == miniConfig {
				t.Fatalf("mutation %q did not apply", c.name)
			}
			if _, err := LoadSystem(strings.NewReader(broken)); err == nil ||
				!strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want contains %q", err, c.wantErr)
			}
		})
	}
	if _, err := LoadSystem(strings.NewReader(`{"name":"x","nodes":[]}`)); err == nil {
		t.Fatal("empty nodes must fail")
	}
	if _, err := LoadSystem(strings.NewReader(`{`)); err == nil {
		t.Fatal("bad JSON must fail")
	}
}

func TestLoadedSystemRuns(t *testing.T) {
	// A loaded system must be usable by the fabric.
	sys, err := LoadSystem(strings.NewReader(miniConfig))
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine()
	f := NewFabric(eng, sys)
	if end := f.NetSendAsync(0, 1, 1<<20); end <= 0 {
		t.Fatal("fabric over loaded system inert")
	}
	if f.CanP2P(0, 0, 1) {
		t.Fatal("GPU and integrated CPU accel must not be P2P")
	}
}
