package topo

import (
	"fmt"

	"impacc/internal/sim"
)

// Generated large-scale topologies. The paper evaluates IMPACC up to 64
// Titan nodes (Table 1); scaling studies need thousands, so these
// generators build parameterized fat-tree, dragonfly, and 3D-torus systems
// reachable through the Preset grammar (fattree:k, dragonfly:g,a,p,
// gemini:X,Y,Z).
//
// A generated System carries a TopoSpec describing its interconnect shape.
// The fabric consults it through System.HopExtra: internode transfers pay
// an additional per-switch-hop latency on top of the NIC's fixed cost, so
// distant nodes are measurably farther than neighbors. Hop extras are
// always >= 0, which keeps MinNetLatency (the NIC fixed cost alone) a valid
// conservative lookahead bound for the sharded engine: no generated route
// is ever faster than the NIC itself.

// MaxGeneratedNodes bounds generator output so a typo'd selector
// (gemini:100,100,100) cannot exhaust host memory building node specs.
const MaxGeneratedNodes = 65536

// TopoSpec describes a generated interconnect's shape: the generator kind,
// its parameters, and the extra wire latency charged per switch hop beyond
// the first. It is plain data (JSON- and hash-friendly); the distance
// functions below derive hop counts from node indices alone.
type TopoSpec struct {
	// Kind is the generator family: "fattree", "dragonfly", or "torus3d".
	Kind string
	// Params are the generator's parameters: fattree [k], dragonfly
	// [g, a, p], torus3d [X, Y, Z].
	Params []int
	// HopLatency is the additional latency per extra switch hop; the NIC's
	// own Link.Latency covers the minimal route.
	HopLatency sim.Dur
}

// Hops returns the number of extra switch hops between nodes src and dst,
// beyond the minimal route already priced into the NIC link. It is
// symmetric and zero for src == dst.
func (t *TopoSpec) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	switch t.Kind {
	case "fattree":
		// k-ary fat tree: k/2 hosts per edge switch, k/2 edge switches per
		// pod. Same edge switch: minimal route (0 extra). Same pod: up to an
		// aggregation switch and back (2 extra). Cross-pod: via core (4).
		half := t.Params[0] / 2
		if src/half == dst/half {
			return 0
		}
		if src/(half*half) == dst/(half*half) {
			return 2
		}
		return 4
	case "dragonfly":
		// g groups of a routers with p hosts each. Minimal routing: same
		// router 0 extra; same group one local hop; across groups a global
		// hop plus a local hop at each end unless the endpoint router owns
		// the group's global link to the peer group (deterministically
		// assigned as peer-group mod a).
		a, p := t.Params[1], t.Params[2]
		srcRouter, dstRouter := src/p, dst/p
		if srcRouter == dstRouter {
			return 0
		}
		srcGroup, dstGroup := srcRouter/a, dstRouter/a
		if srcGroup == dstGroup {
			return 1
		}
		hops := 1 // the global link
		if srcRouter%a != dstGroup%a {
			hops++ // local hop to the gateway router in the source group
		}
		if dstRouter%a != srcGroup%a {
			hops++ // local hop from the gateway router in the destination group
		}
		return hops
	case "torus3d":
		// X*Y*Z torus (Titan's Gemini): hop count is the wraparound
		// Manhattan distance; the first hop rides the NIC latency.
		x, y, z := t.Params[0], t.Params[1], t.Params[2]
		hops := torusDist(src%x, dst%x, x) +
			torusDist((src/x)%y, (dst/x)%y, y) +
			torusDist(src/(x*y), dst/(x*y), z)
		return hops - 1
	}
	return 0
}

// torusDist is the wraparound distance between coordinates a and b on a
// ring of size n.
func torusDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// HopExtra returns the additional internode latency between src and dst
// from the system's generated topology: extra hops times the per-hop
// latency, zero for systems without a TopoSpec (the hand-written presets
// model a flat network). Always >= 0, so MinNetLatency stays a valid
// conservative lookahead under generated topologies.
func (s *System) HopExtra(src, dst int) sim.Dur {
	if s.Topo == nil || src == dst {
		return 0
	}
	return sim.Dur(s.Topo.Hops(src, dst)) * s.Topo.HopLatency
}

// checkGenSize panics when a generator is asked for an absurd node count;
// Preset validates selectors before calling, so this guards only direct
// API misuse.
func checkGenSize(name string, n int) {
	if n < 1 || n > MaxGeneratedNodes {
		panic(fmt.Sprintf("topo: %s would generate %d nodes (1..%d allowed)", name, n, MaxGeneratedNodes))
	}
}

// genNode builds one generated compute node: a single-socket GPU node with
// one accelerator, so a generated system runs one rank per node and scale
// studies count nodes and ranks interchangeably.
func genNode(name string, nic NICSpec) NodeSpec {
	return NodeSpec{
		Name: name,
		Sockets: []SocketSpec{
			{Name: "gen-cpu", Cores: 16, GFlopsDP: 300},
		},
		MemoryBytes:    64 << 30,
		HostMemGBs:     10.0,
		HostCopySW:     1200,
		Inter:          LinkSpec{Latency: 130, GBs: 14, SWOverhead: 0},
		NUMAPenalty:    1.0, // single socket
		PageableFactor: 0.6,
		ShmFactor:      0.5,
		IPCOverhead:    3000,
		NIC:            nic,
		Devices: []DeviceSpec{{
			Class:        NVIDIAGPU,
			Name:         "gen-gpu",
			MemoryBytes:  12 << 30,
			Socket:       0,
			GFlopsDP:     1300,
			GemmEff:      0.78,
			MemBWGBs:     250,
			StencilEff:   0.55,
			KernelLaunch: 8000,
			PCIe:         LinkSpec{Latency: 900, GBs: 11.8, SWOverhead: 4000},
			P2PGBs:       0, // one device per node: P2P never applies
		}},
	}
}

// FatTree returns a k-ary fat-tree system of k³/4 single-GPU nodes: k/2
// hosts per edge switch, k/2 edge switches per pod, k pods. k must be even
// and >= 2.
func FatTree(k int) *System {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: FatTree k must be even and >= 2, got %d", k))
	}
	n := k * k * k / 4
	checkGenSize("fattree", n)
	sys := &System{
		Name:           fmt.Sprintf("FatTree-%d", k),
		MPIOverhead:    400,
		ThreadMultiple: true,
		Topo:           &TopoSpec{Kind: "fattree", Params: []int{k}, HopLatency: 90},
	}
	nic := NICSpec{
		Name:   "mlx-edr",
		Link:   LinkSpec{Latency: 1100, GBs: 10.0, SWOverhead: 500},
		Socket: 0,
		RDMA:   true,
	}
	sys.Nodes = make([]NodeSpec, 0, n)
	for i := 0; i < n; i++ {
		sys.Nodes = append(sys.Nodes, genNode(fmt.Sprintf("ft%05d", i), nic))
	}
	return sys
}

// Dragonfly returns a dragonfly system of g groups, a routers per group,
// and p single-GPU nodes per router (g*a*p nodes total). All parameters
// must be >= 1.
func Dragonfly(g, a, p int) *System {
	if g < 1 || a < 1 || p < 1 {
		panic(fmt.Sprintf("topo: Dragonfly parameters must be >= 1, got g=%d a=%d p=%d", g, a, p))
	}
	n := g * a * p
	checkGenSize("dragonfly", n)
	sys := &System{
		Name:           fmt.Sprintf("Dragonfly-%dx%dx%d", g, a, p),
		MPIOverhead:    400,
		ThreadMultiple: true,
		Topo:           &TopoSpec{Kind: "dragonfly", Params: []int{g, a, p}, HopLatency: 120},
	}
	nic := NICSpec{
		Name:   "aries",
		Link:   LinkSpec{Latency: 1200, GBs: 8.0, SWOverhead: 600},
		Socket: 0,
		RDMA:   true,
	}
	sys.Nodes = make([]NodeSpec, 0, n)
	for i := 0; i < n; i++ {
		sys.Nodes = append(sys.Nodes, genNode(fmt.Sprintf("df%05d", i), nic))
	}
	return sys
}

// Gemini returns an X*Y*Z 3D-torus system matching Titan's real
// interconnect: the per-node hardware is exactly the Titan preset's (AMD
// Opteron 6274, one K20X, Cray Gemini NIC with GPUDirect RDMA), and
// internode routes pay the torus's wraparound Manhattan hop distance on
// top of the Gemini NIC latency. All dimensions must be >= 1.
func Gemini(x, y, z int) *System {
	if x < 1 || y < 1 || z < 1 {
		panic(fmt.Sprintf("topo: Gemini dimensions must be >= 1, got %dx%dx%d", x, y, z))
	}
	n := x * y * z
	checkGenSize("gemini", n)
	sys := Titan(n)
	sys.Name = fmt.Sprintf("Gemini-%dx%dx%d", x, y, z)
	sys.Topo = &TopoSpec{Kind: "torus3d", Params: []int{x, y, z}, HopLatency: 100}
	return sys
}
