package mpi

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestDatatypeSizes(t *testing.T) {
	cases := map[Datatype]int64{Byte: 1, Int32: 4, Int64: 8, Float32: 4, Float64: 8}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v size = %d, want %d", d, d.Size(), want)
		}
	}
	if Float64.String() != "MPI_DOUBLE" || Sum.String() != "MPI_SUM" {
		t.Fatal("names wrong")
	}
}

func f64bytes(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func f64read(b []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func TestReduceFloat64Ops(t *testing.T) {
	acc := f64bytes(1, 5, -2)
	in := f64bytes(3, 2, -7)
	if err := Reduce(Sum, Float64, acc, in, 3); err != nil {
		t.Fatal(err)
	}
	got := f64read(acc, 3)
	want := []float64{4, 7, -9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sum = %v, want %v", got, want)
		}
	}
	acc = f64bytes(1, 5, -2)
	Reduce(Max, Float64, acc, f64bytes(3, 2, -7), 3)
	got = f64read(acc, 3)
	want = []float64{3, 5, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("max = %v, want %v", got, want)
		}
	}
	acc = f64bytes(2, 5)
	Reduce(Min, Float64, acc, f64bytes(3, 1), 2)
	if g := f64read(acc, 2); g[0] != 2 || g[1] != 1 {
		t.Fatalf("min = %v", g)
	}
	acc = f64bytes(2, 5)
	Reduce(Prod, Float64, acc, f64bytes(3, -1), 2)
	if g := f64read(acc, 2); g[0] != 6 || g[1] != -5 {
		t.Fatalf("prod = %v", g)
	}
}

func TestReduceInt32AndInt64(t *testing.T) {
	acc := make([]byte, 8)
	in := make([]byte, 8)
	binary.LittleEndian.PutUint32(acc, uint32(0xFFFFFFFF)) // -1 as int32
	binary.LittleEndian.PutUint32(in, 5)
	if err := Reduce(Sum, Int32, acc, in, 1); err != nil {
		t.Fatal(err)
	}
	if got := int32(binary.LittleEndian.Uint32(acc)); got != 4 {
		t.Fatalf("int32 sum = %d", got)
	}
	binary.LittleEndian.PutUint64(acc, uint64(1<<40))
	binary.LittleEndian.PutUint64(in, uint64(1<<41))
	Reduce(Max, Int64, acc, in, 1)
	if got := int64(binary.LittleEndian.Uint64(acc)); got != 1<<41 {
		t.Fatalf("int64 max = %d", got)
	}
}

func TestReduceByte(t *testing.T) {
	acc := []byte{200}
	Reduce(Max, Byte, acc, []byte{17}, 1)
	if acc[0] != 200 {
		t.Fatal("byte max wrong")
	}
}

func TestReduceErrorsAndNil(t *testing.T) {
	if err := Reduce(Sum, Float64, make([]byte, 8), make([]byte, 8), 2); err == nil {
		t.Fatal("short buffer must error")
	}
	if err := Reduce(Sum, Float64, nil, make([]byte, 8), 1); err != nil {
		t.Fatal("nil buffers must be a no-op")
	}
}

func TestBcastTreeStructure(t *testing.T) {
	// size 8, root 0: classic binomial tree.
	if BcastParent(0, 0, 8) != -1 {
		t.Fatal("root has no parent")
	}
	cases := map[int]int{1: 0, 2: 0, 3: 2, 4: 0, 5: 4, 6: 4, 7: 6}
	for rank, parent := range cases {
		if got := BcastParent(rank, 0, 8); got != parent {
			t.Errorf("parent(%d) = %d, want %d", rank, got, parent)
		}
	}
	// Largest subtree first: pipelined binomial order.
	kids0 := BcastChildren(0, 0, 8)
	if len(kids0) != 3 || kids0[0] != 4 || kids0[1] != 2 || kids0[2] != 1 {
		t.Fatalf("children(0) = %v", kids0)
	}
	// Reduce receives the shallow subtrees first.
	red0 := ReduceChildren(0, 0, 8)
	if len(red0) != 3 || red0[0] != 1 || red0[2] != 4 {
		t.Fatalf("reduce children(0) = %v", red0)
	}
	if kids := BcastChildren(5, 0, 8); len(kids) != 0 {
		t.Fatalf("leaf 5 has children %v", kids)
	}
}

func TestBcastTreeNonZeroRootAndOddSize(t *testing.T) {
	// Every non-root rank's parent must list it as a child; the tree must
	// reach all ranks exactly once.
	for _, size := range []int{1, 2, 3, 5, 7, 12, 16, 33} {
		for root := 0; root < size; root += max(1, size/3) {
			seen := map[int]int{}
			for rank := 0; rank < size; rank++ {
				for _, k := range BcastChildren(rank, root, size) {
					seen[k]++
					if BcastParent(k, root, size) != rank {
						t.Fatalf("size %d root %d: child %d of %d has parent %d",
							size, root, k, rank, BcastParent(k, root, size))
					}
				}
			}
			if len(seen) != size-1 {
				t.Fatalf("size %d root %d: tree reaches %d ranks, want %d",
					size, root, len(seen), size-1)
			}
			for k, n := range seen {
				if n != 1 {
					t.Fatalf("rank %d visited %d times", k, n)
				}
			}
		}
	}
}

func TestHypercubePartner(t *testing.T) {
	if HypercubePartner(0, 0, 8) != 1 || HypercubePartner(1, 0, 8) != 0 {
		t.Fatal("round 0 pairing wrong")
	}
	if HypercubePartner(2, 1, 8) != 0 {
		t.Fatal("round 1 pairing wrong")
	}
	if HypercubePartner(3, 2, 6) != 7-0 && HypercubePartner(5, 1, 6) != -1 {
		// partner 7 out of range for size 6
		t.Fatal("out-of-range partner must be -1")
	}
	if HypercubePartner(1, 2, 6) != 5 {
		t.Fatal("partner(1, round 2) wrong")
	}
}

// Property: the binomial tree is acyclic and parent depth strictly
// decreases toward the root.
func TestTreeDepthProperty(t *testing.T) {
	f := func(sz, rt uint8) bool {
		size := int(sz%64) + 1
		root := int(rt) % size
		for rank := 0; rank < size; rank++ {
			r, hops := rank, 0
			for r != root {
				r = BcastParent(r, root, size)
				if r < 0 {
					return r == -1 && rank == root
				}
				hops++
				if hops > size {
					return false // cycle
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce(Sum) over float64 equals elementwise Go addition.
func TestReduceSumProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := min(len(a), len(b))
		acc := f64bytes(a[:n]...)
		in := f64bytes(b[:n]...)
		if err := Reduce(Sum, Float64, acc, in, n); err != nil {
			return false
		}
		got := f64read(acc, n)
		for i := 0; i < n; i++ {
			want := a[i] + b[i]
			if got[i] != want && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceParentMirrorsBcast(t *testing.T) {
	for size := 1; size <= 16; size++ {
		for rank := 0; rank < size; rank++ {
			if ReduceParent(rank, 0, size) != BcastParent(rank, 0, size) {
				t.Fatalf("reduce parent mismatch at %d/%d", rank, size)
			}
		}
	}
}

func TestOpAndDatatypeStrings(t *testing.T) {
	names := map[string]string{
		Byte.String(): "MPI_BYTE", Int32.String(): "MPI_INT",
		Int64.String(): "MPI_LONG_LONG", Float32.String(): "MPI_FLOAT",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("datatype name %q != %q", got, want)
		}
	}
	if Prod.String() != "MPI_PROD" || Max.String() != "MPI_MAX" || Min.String() != "MPI_MIN" {
		t.Fatal("op names wrong")
	}
	if Datatype(99).String() == "" {
		t.Fatal("unknown datatype must format")
	}
}

func TestReduceFloat32(t *testing.T) {
	acc := make([]byte, 8)
	in := make([]byte, 8)
	binary.LittleEndian.PutUint32(acc, math.Float32bits(1.5))
	binary.LittleEndian.PutUint32(acc[4:], math.Float32bits(-2))
	binary.LittleEndian.PutUint32(in, math.Float32bits(2.5))
	binary.LittleEndian.PutUint32(in[4:], math.Float32bits(7))
	if err := Reduce(Prod, Float32, acc, in, 2); err != nil {
		t.Fatal(err)
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(acc)) != 3.75 {
		t.Fatal("float32 prod wrong")
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(acc[4:])) != -14 {
		t.Fatal("float32 prod[1] wrong")
	}
}

func TestCombineIntMinProd(t *testing.T) {
	acc := make([]byte, 16)
	in := make([]byte, 16)
	binary.LittleEndian.PutUint64(acc, uint64(7))
	binary.LittleEndian.PutUint64(acc[8:], uint64(3))
	binary.LittleEndian.PutUint64(in, uint64(5))
	binary.LittleEndian.PutUint64(in[8:], uint64(4))
	Reduce(Min, Int64, acc, in, 2)
	if binary.LittleEndian.Uint64(acc) != 5 || binary.LittleEndian.Uint64(acc[8:]) != 3 {
		t.Fatal("int64 min wrong")
	}
	Reduce(Prod, Int64, acc, in, 2)
	if binary.LittleEndian.Uint64(acc) != 25 || binary.LittleEndian.Uint64(acc[8:]) != 12 {
		t.Fatal("int64 prod wrong")
	}
}
