// Package mpi holds the pure (simulation-free) MPI semantics the IMPACC
// runtime builds on: datatypes, reduction operators, and the binomial-tree
// schedules used by the collective algorithms. The transport and matching
// engine live in internal/msg; the task-facing API in internal/core.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype is an MPI basic datatype.
type Datatype int

// Basic datatypes.
const (
	Byte Datatype = iota
	Int32
	Int64
	Float32
	Float64
)

// Size returns the datatype extent in bytes.
func (d Datatype) Size() int64 {
	switch d {
	case Byte:
		return 1
	case Int32, Float32:
		return 4
	default:
		return 8
	}
}

func (d Datatype) String() string {
	switch d {
	case Byte:
		return "MPI_BYTE"
	case Int32:
		return "MPI_INT"
	case Int64:
		return "MPI_LONG_LONG"
	case Float32:
		return "MPI_FLOAT"
	case Float64:
		return "MPI_DOUBLE"
	default:
		return fmt.Sprintf("Datatype(%d)", int(d))
	}
}

// Op is an MPI reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Prod
	Max
	Min
)

func (o Op) String() string {
	switch o {
	case Sum:
		return "MPI_SUM"
	case Prod:
		return "MPI_PROD"
	case Max:
		return "MPI_MAX"
	default:
		return "MPI_MIN"
	}
}

func (o Op) combineF(a, b float64) float64 {
	switch o {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		return math.Max(a, b)
	default:
		return math.Min(a, b)
	}
}

func (o Op) combineI(a, b int64) int64 {
	switch o {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		if a > b {
			return a
		}
		return b
	default:
		if a < b {
			return a
		}
		return b
	}
}

// Reduce applies acc[i] = op(acc[i], in[i]) elementwise over count elements
// of the given datatype, interpreting the byte slices in little-endian
// layout. Nil slices (unbacked buffers) are a no-op.
func Reduce(op Op, dtype Datatype, acc, in []byte, count int) error {
	if acc == nil || in == nil {
		return nil
	}
	sz := dtype.Size()
	need := sz * int64(count)
	if int64(len(acc)) < need || int64(len(in)) < need {
		return fmt.Errorf("mpi: Reduce: buffers too short for %d x %v", count, dtype)
	}
	for i := 0; i < count; i++ {
		a := acc[int64(i)*sz:]
		b := in[int64(i)*sz:]
		switch dtype {
		case Float64:
			va := math.Float64frombits(binary.LittleEndian.Uint64(a))
			vb := math.Float64frombits(binary.LittleEndian.Uint64(b))
			binary.LittleEndian.PutUint64(a, math.Float64bits(op.combineF(va, vb)))
		case Float32:
			va := math.Float32frombits(binary.LittleEndian.Uint32(a))
			vb := math.Float32frombits(binary.LittleEndian.Uint32(b))
			binary.LittleEndian.PutUint32(a, math.Float32bits(float32(op.combineF(float64(va), float64(vb)))))
		case Int64:
			va := int64(binary.LittleEndian.Uint64(a))
			vb := int64(binary.LittleEndian.Uint64(b))
			binary.LittleEndian.PutUint64(a, uint64(op.combineI(va, vb)))
		case Int32:
			va := int64(int32(binary.LittleEndian.Uint32(a)))
			vb := int64(int32(binary.LittleEndian.Uint32(b)))
			binary.LittleEndian.PutUint32(a, uint32(int32(op.combineI(va, vb))))
		case Byte:
			a[0] = byte(op.combineI(int64(a[0]), int64(b[0])))
		}
	}
	return nil
}

// rel maps rank into the tree rooted at root: the root becomes 0.
func rel(rank, root, size int) int { return (rank - root + size) % size }

// abs undoes rel.
func abs(r, root, size int) int { return (r + root) % size }

// BcastParent returns the binomial-tree parent of rank for a broadcast
// rooted at root, or -1 for the root itself.
func BcastParent(rank, root, size int) int {
	r := rel(rank, root, size)
	if r == 0 {
		return -1
	}
	// Clear the lowest set bit.
	return abs(r&(r-1), root, size)
}

// BcastChildren returns the binomial-tree children of rank for a broadcast
// rooted at root, in the order the rank sends to them: largest subtree
// first, so deep subtrees start forwarding while the parent serves its
// remaining children — the ordering that makes the tree pipeline in
// depth×hop time rather than sum-of-depths.
func BcastChildren(rank, root, size int) []int {
	r := rel(rank, root, size)
	var kids []int
	// The lowest set bit of r (or size's span for the root) bounds the
	// subtree this rank owns.
	lb := r & (-r)
	if r == 0 {
		lb = 1 << 62
	}
	for bit := 1; bit < lb && r+bit < size; bit <<= 1 {
		kids = append(kids, abs(r+bit, root, size))
	}
	// Reverse: highest bit (deepest subtree) first.
	for i, j := 0, len(kids)-1; i < j; i, j = i+1, j-1 {
		kids[i], kids[j] = kids[j], kids[i]
	}
	return kids
}

// ReduceChildren returns the ranks whose partial results rank combines in a
// binomial-tree reduction to root, in receive order: smallest subtree first
// (those partials are ready earliest) — the reverse of the broadcast
// schedule.
func ReduceChildren(rank, root, size int) []int {
	kids := BcastChildren(rank, root, size)
	for i, j := 0, len(kids)-1; i < j; i, j = i+1, j-1 {
		kids[i], kids[j] = kids[j], kids[i]
	}
	return kids
}

// ReduceParent returns the rank that rank sends its partial result to.
func ReduceParent(rank, root, size int) int {
	return BcastParent(rank, root, size)
}

// HypercubePartner returns rank's partner in round r of a recursive-
// doubling exchange (allreduce/barrier on power-of-two sizes), or -1 if the
// rank idles that round.
func HypercubePartner(rank, round, size int) int {
	partner := rank ^ (1 << round)
	if partner >= size {
		return -1
	}
	return partner
}
