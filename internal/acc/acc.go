// Package acc implements the OpenACC runtime a task programs against: data
// constructs maintaining the present table (§3.4), update directives,
// parallel/kernels launches, asynchronous activity queues (§3.6), and the
// runtime library routines acc_deviceptr / acc_hostptr /
// acc_get_device_type. Directive syntax is handled by package accparse;
// this package is the execution environment those directives lower to.
package acc

import (
	"sort"

	"fmt"

	"impacc/internal/device"
	"impacc/internal/ptable"
	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// SyncQueue is the queue number used for synchronous operations (an
// OpenACC construct without an async clause).
const SyncQueue = 0

// EnterMode selects the data clause semantics of an enter-data construct.
type EnterMode int

// Enter-data clauses.
const (
	Copyin  EnterMode = iota // allocate + copy host→device
	Create                   // allocate only
	Present                  // require already present
)

// ExitMode selects the data clause semantics of an exit-data construct.
type ExitMode int

// Exit-data clauses.
const (
	Copyout ExitMode = iota // copy device→host + deallocate
	Delete                  // deallocate only
)

// Env is one task's OpenACC runtime environment, bound to the task's device
// context.
type Env struct {
	Ctx *device.Context
	PT  *ptable.Table

	streams map[int]*device.Stream
	// WaitTime accumulates host time blocked in acc wait operations, for
	// the synchronization-cost breakdowns.
	WaitTime sim.Dur
}

// NewEnv returns an environment over ctx with an empty present table.
func NewEnv(ctx *device.Context) *Env {
	return &Env{Ctx: ctx, PT: ptable.New(), streams: map[int]*device.Stream{}}
}

// DeviceType returns the attached accelerator's class
// (acc_get_device_type, paper §3.2).
func (e *Env) DeviceType() topo.DeviceClass { return e.Ctx.Dev.Spec.Class }

// Integrated reports whether the attached accelerator shares host memory.
func (e *Env) Integrated() bool { return e.DeviceType().Integrated() }

// Stream returns the device activity queue for async value q, creating it
// on first use.
func (e *Env) Stream(q int) *device.Stream {
	if s, ok := e.streams[q]; ok {
		return s
	}
	s := e.Ctx.NewStream(q)
	e.streams[q] = s
	return s
}

// Close shuts down all streams created by this environment.
func (e *Env) Close() {
	for _, s := range e.streams {
		s.Close()
	}
}

// DataEnter implements "#pragma acc enter data" over one host range. With
// Copyin or Create, a device buffer is allocated and registered in the
// present table (refcounted if already present). It returns the device
// address.
func (e *Env) DataEnter(p *sim.Proc, host xmem.Addr, n int64, mode EnterMode) (xmem.Addr, error) {
	if e.Integrated() {
		// Integrated accelerators share host memory: mapping and copies
		// are elided (paper §2.4).
		return host, nil
	}
	if ent, ok := e.PT.Retain(host); ok {
		return ent.Dev + (host - ent.Host), nil
	}
	if mode == Present {
		return xmem.Nil, fmt.Errorf("acc: present(%#x): data not present", uint64(host))
	}
	dev, err := e.Ctx.MemAlloc(n)
	if err != nil {
		return xmem.Nil, err
	}
	var handle uint64
	if e.Ctx.Dev.API == device.OpenCL {
		handle = e.Ctx.Dev.NewHandle()
	}
	if _, err := e.PT.Insert(host, dev, n, e.Ctx.Dev.Index, handle); err != nil {
		return xmem.Nil, err
	}
	if mode == Copyin {
		if _, err := e.Ctx.Transfer(p, dev, host, n); err != nil {
			return xmem.Nil, err
		}
	}
	return dev, nil
}

// DataExit implements "#pragma acc exit data" over one host range: the
// refcount drops, and on the last reference the device buffer is copied
// back (Copyout) and freed.
func (e *Env) DataExit(p *sim.Proc, host xmem.Addr, mode ExitMode) error {
	if e.Integrated() {
		return nil
	}
	ent, last, err := e.PT.Release(host)
	if err != nil {
		return err
	}
	if !last {
		return nil
	}
	if mode == Copyout {
		if _, err := e.Ctx.Transfer(p, ent.Host, ent.Dev, ent.Size); err != nil {
			return err
		}
	}
	return e.Ctx.MemFree(ent.Dev)
}

// resolve maps a host sub-range to its device range.
func (e *Env) resolve(host xmem.Addr, n int64) (xmem.Addr, error) {
	ent, off, ok := e.PT.FindHost(host)
	if !ok {
		return xmem.Nil, fmt.Errorf("acc: %#x not present on device", uint64(host))
	}
	if off+n > ent.Size {
		return xmem.Nil, fmt.Errorf("acc: range %#x+%d escapes present mapping (size %d)",
			uint64(host), n, ent.Size)
	}
	return ent.Dev + xmem.Addr(off), nil
}

// UpdateDevice implements "#pragma acc update device(...)": host→device
// refresh of a present sub-range. async < 0 runs synchronously; otherwise
// the copy is enqueued on queue async.
func (e *Env) UpdateDevice(p *sim.Proc, host xmem.Addr, n int64, async int) error {
	if e.Integrated() {
		return nil
	}
	dev, err := e.resolve(host, n)
	if err != nil {
		return err
	}
	if async < 0 {
		_, err = e.Ctx.Transfer(p, dev, host, n)
		return err
	}
	e.Stream(async).EnqueueCopy(dev, host, n)
	return nil
}

// UpdateHost implements "#pragma acc update self(...)": device→host.
func (e *Env) UpdateHost(p *sim.Proc, host xmem.Addr, n int64, async int) error {
	if e.Integrated() {
		return nil
	}
	dev, err := e.resolve(host, n)
	if err != nil {
		return err
	}
	if async < 0 {
		_, err = e.Ctx.Transfer(p, host, dev, n)
		return err
	}
	e.Stream(async).EnqueueCopy(host, dev, n)
	return nil
}

// DevicePtr is acc_deviceptr: host→device address translation via the
// present table. For integrated accelerators it is the identity.
func (e *Env) DevicePtr(host xmem.Addr) (xmem.Addr, error) {
	if e.Integrated() {
		return host, nil
	}
	return e.PT.DevicePtr(host)
}

// HostPtr is acc_hostptr: device→host translation.
func (e *Env) HostPtr(dev xmem.Addr) (xmem.Addr, error) {
	if e.Integrated() {
		return dev, nil
	}
	return e.PT.HostPtr(dev)
}

// IsPresent reports whether the host address is mapped on the device.
func (e *Env) IsPresent(host xmem.Addr) bool {
	if e.Integrated() {
		return true
	}
	_, _, ok := e.PT.FindHost(host)
	return ok
}

// Kernels launches a compute region ("#pragma acc kernels/parallel"). The
// host pays the device's launch overhead; with async < 0 the call then
// blocks until the kernel completes (the construct's implicit barrier),
// otherwise it returns immediately with the kernel queued on queue async
// (paper §3.6).
func (e *Env) Kernels(p *sim.Proc, spec device.KernelSpec, async int) *sim.Event {
	lstart := p.Now()
	p.Sleep(e.Ctx.Dev.Spec.KernelLaunch)
	e.hostSpan("launch", spec.Name, lstart, p.Now())
	if async < 0 {
		ev := e.Stream(SyncQueue).EnqueueKernel(spec)
		start := p.Now()
		ev.Wait(p)
		e.WaitTime += sim.Dur(p.Now() - start)
		e.hostSpan("accwait", spec.Name, start, p.Now())
		return ev
	}
	return e.Stream(async).EnqueueKernel(spec)
}

// hostSpan records a host-lane trace span when tracing is on. Launch
// overhead gets its own kind so profile breakdowns separate API cost from
// time genuinely blocked on the accelerator.
func (e *Env) hostSpan(kind, name string, start, end sim.Time) {
	if sink := e.Ctx.Sink; sink != nil && end > start {
		sink.Span(sink.NewID(), -1, kind, name, start, end, 0)
	}
}

// Wait implements "#pragma acc wait(q)": block until queue q drains.
func (e *Env) Wait(p *sim.Proc, q int) {
	s, ok := e.streams[q]
	if !ok {
		return
	}
	start := p.Now()
	s.Sync(p)
	e.WaitTime += sim.Dur(p.Now() - start)
}

// WaitAll implements "#pragma acc wait": block until every queue drains.
// Queues are waited in ascending number order to keep runs deterministic.
func (e *Env) WaitAll(p *sim.Proc) {
	qs := make([]int, 0, len(e.streams))
	for q := range e.streams {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		e.Wait(p, q)
	}
}

// WaitAsync implements "#pragma acc wait(q) async(r)": queue r will not run
// operations enqueued after this call until everything currently on queue q
// has completed — a device-side dependency, no host blocking.
func (e *Env) WaitAsync(q, r int) {
	src, ok := e.streams[q]
	if !ok || q == r {
		return
	}
	e.Stream(r).EnqueueWaitStream(src)
}
