package acc

import (
	"testing"

	"impacc/internal/device"
	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

type rig struct {
	eng *sim.Engine
	rt  *device.Runtime
	env *Env
	sp  *xmem.Space
}

func newRig(t *testing.T, sys *topo.System, node, dev int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	fab := topo.NewFabric(eng, sys)
	rt := device.NewRuntime(eng, fab, node)
	sp := xmem.NewSpace("n", len(sys.Nodes[node].Devices))
	ctx := rt.NewContext(dev, sp, sys.Nodes[node].Devices[dev].Socket, true, true)
	return &rig{eng: eng, rt: rt, env: NewEnv(ctx), sp: sp}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.eng.Spawn("task", func(p *sim.Proc) {
		fn(p)
		r.env.Close()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDataEnterCopyinAndExitCopyout(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(800, true)
	hb, _ := r.sp.Bytes(host, 800)
	for i := range hb {
		hb[i] = byte(i)
	}
	r.run(t, func(p *sim.Proc) {
		dev, err := r.env.DataEnter(p, host, 800, Copyin)
		if err != nil {
			t.Fatal(err)
		}
		db, _ := r.sp.Bytes(dev, 800)
		for i := range db {
			if db[i] != byte(i) {
				t.Fatalf("copyin mismatch at %d", i)
			}
			db[i] = byte(i + 1) // device-side mutation
		}
		if !r.env.IsPresent(host + 100) {
			t.Fatal("present table missing interior address")
		}
		if err := r.env.DataExit(p, host, Copyout); err != nil {
			t.Fatal(err)
		}
		if hb[0] != 1 {
			t.Fatal("copyout did not write host data")
		}
		if r.env.IsPresent(host) {
			t.Fatal("mapping survived exit data")
		}
	})
	if r.env.Ctx.Stats.HtoDCount != 1 || r.env.Ctx.Stats.DtoHCount != 1 {
		t.Fatalf("stats = %+v", r.env.Ctx.Stats)
	}
}

func TestDataCreateDoesNotCopy(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.env.DataEnter(p, host, 64, Create); err != nil {
			t.Fatal(err)
		}
		if err := r.env.DataExit(p, host, Delete); err != nil {
			t.Fatal(err)
		}
	})
	if r.env.Ctx.Stats.CopyCount() != 0 {
		t.Fatal("create/delete must not copy")
	}
}

func TestDataPresentRefcounting(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		d1, err := r.env.DataEnter(p, host, 64, Copyin)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := r.env.DataEnter(p, host, 64, Present)
		if err != nil || d2 != d1 {
			t.Fatalf("nested present: %v, %v vs %v", err, d2, d1)
		}
		// Only one HtoD despite two enters.
		if r.env.Ctx.Stats.HtoDCount != 1 {
			t.Fatal("nested enter re-copied")
		}
		if err := r.env.DataExit(p, host, Delete); err != nil {
			t.Fatal(err)
		}
		if !r.env.IsPresent(host) {
			t.Fatal("mapping dropped before last release")
		}
		if err := r.env.DataExit(p, host, Delete); err != nil {
			t.Fatal(err)
		}
		if r.env.IsPresent(host) {
			t.Fatal("mapping survived last release")
		}
		if _, err := r.env.DataEnter(p, host, 64, Present); err == nil {
			t.Fatal("present on absent data must fail")
		}
	})
}

func TestUpdateDirectives(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(128, true)
	hb, _ := r.sp.Bytes(host, 128)
	r.run(t, func(p *sim.Proc) {
		dev, _ := r.env.DataEnter(p, host, 128, Create)
		hb[0] = 42
		if err := r.env.UpdateDevice(p, host, 128, -1); err != nil {
			t.Fatal(err)
		}
		db, _ := r.sp.Bytes(dev, 128)
		if db[0] != 42 {
			t.Fatal("update device missed")
		}
		db[1] = 43
		if err := r.env.UpdateHost(p, host, 128, -1); err != nil {
			t.Fatal(err)
		}
		if hb[1] != 43 {
			t.Fatal("update host missed")
		}
		// Async update ordering via queue.
		db[2] = 44
		if err := r.env.UpdateHost(p, host, 128, 1); err != nil {
			t.Fatal(err)
		}
		if hb[2] == 44 {
			t.Fatal("async update completed synchronously")
		}
		r.env.Wait(p, 1)
		if hb[2] != 44 {
			t.Fatal("async update lost")
		}
		// Out-of-range update must fail.
		if err := r.env.UpdateDevice(p, host, 256, -1); err == nil {
			t.Fatal("oversized update must fail")
		}
		if err := r.env.UpdateDevice(p, 0xdead, 8, -1); err == nil {
			t.Fatal("non-present update must fail")
		}
		r.env.DataExit(p, host, Delete)
	})
}

func TestDevicePtrHostPtr(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(100, true)
	r.run(t, func(p *sim.Proc) {
		dev, _ := r.env.DataEnter(p, host, 100, Create)
		d, err := r.env.DevicePtr(host + 10)
		if err != nil || d != dev+10 {
			t.Fatalf("DevicePtr = %v, %v", d, err)
		}
		h, err := r.env.HostPtr(dev + 10)
		if err != nil || h != host+10 {
			t.Fatalf("HostPtr = %v, %v", h, err)
		}
		r.env.DataExit(p, host, Delete)
	})
}

func TestIntegratedDeviceElidesMapping(t *testing.T) {
	// HeteroDemo node 2 exposes CPUAccel devices: data ops must be elided
	// and DevicePtr must be the identity (paper §2.4).
	r := newRig(t, topo.HeteroDemo(), 2, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		dev, err := r.env.DataEnter(p, host, 64, Copyin)
		if err != nil || dev != host {
			t.Fatalf("integrated enter = %v, %v", dev, err)
		}
		d, _ := r.env.DevicePtr(host + 5)
		if d != host+5 {
			t.Fatal("integrated DevicePtr must be identity")
		}
		if !r.env.IsPresent(host) {
			t.Fatal("integrated data is always present")
		}
		if err := r.env.DataExit(p, host, Copyout); err != nil {
			t.Fatal(err)
		}
	})
	if r.env.Ctx.Stats.CopyCount() != 0 {
		t.Fatal("integrated device must not copy")
	}
}

func TestOpenCLHandleMinted(t *testing.T) {
	// Beacon devices are OpenCL (Xeon Phi): present-table entries must
	// carry a nonzero memory-object handle (Figure 3).
	r := newRig(t, topo.Beacon(1), 0, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.env.DataEnter(p, host, 64, Create); err != nil {
			t.Fatal(err)
		}
		ent, _, ok := r.env.PT.FindHost(host)
		if !ok || ent.Handle == 0 {
			t.Fatalf("OpenCL entry = %+v, %v", ent, ok)
		}
		r.env.DataExit(p, host, Delete)
	})
}

func TestCUDAHandleZero(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		r.env.DataEnter(p, host, 64, Create)
		ent, _, _ := r.env.PT.FindHost(host)
		if ent.Handle != 0 {
			t.Fatal("CUDA entries use raw device pointers, not handles")
		}
		r.env.DataExit(p, host, Delete)
	})
}

func TestKernelsSyncBlocksAsyncDoesNot(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	spec := device.KernelSpec{Name: "k", FLOPs: 1e10, Kind: device.KindCompute}
	var syncElapsed, asyncElapsed sim.Dur
	r.run(t, func(p *sim.Proc) {
		t0 := p.Now()
		r.env.Kernels(p, spec, -1)
		syncElapsed = sim.Dur(p.Now() - t0)

		t1 := p.Now()
		r.env.Kernels(p, spec, 1)
		asyncElapsed = sim.Dur(p.Now() - t1)
		r.env.Wait(p, 1)
	})
	kdur := device.Duration(r.env.Ctx.Dev.Spec, spec)
	if syncElapsed < kdur {
		t.Fatalf("sync launch took %v, kernel alone is %v", syncElapsed, kdur)
	}
	if asyncElapsed >= kdur {
		t.Fatalf("async launch blocked the host for %v", asyncElapsed)
	}
	if asyncElapsed < r.env.Ctx.Dev.Spec.KernelLaunch {
		t.Fatal("async launch must still pay launch overhead")
	}
	if r.env.WaitTime == 0 {
		t.Fatal("wait time not accounted")
	}
}

func TestWaitAllDrainsEveryQueue(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	spec := device.KernelSpec{FLOPs: 1e9, Kind: device.KindCompute}
	r.run(t, func(p *sim.Proc) {
		r.env.Kernels(p, spec, 1)
		r.env.Kernels(p, spec, 2)
		r.env.Kernels(p, spec, 3)
		r.env.WaitAll(p)
		for q := 1; q <= 3; q++ {
			if r.env.Stream(q).Pending() != 0 {
				t.Fatalf("queue %d still pending after WaitAll", q)
			}
		}
	})
	if r.env.Ctx.Stats.KernelCount != 3 {
		t.Fatalf("kernel count = %d", r.env.Ctx.Stats.KernelCount)
	}
}

func TestWaitOnUnknownQueueIsNoop(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	r.run(t, func(p *sim.Proc) {
		r.env.Wait(p, 99) // never created: must not block or panic
	})
}

func TestQueuesIndependentCompletion(t *testing.T) {
	// Figure 5(c): ops on one queue proceed in order; different queues
	// overlap. A short kernel on q2 finishes while a long one runs on q1.
	r := newRig(t, topo.PSG(), 0, 0)
	long := device.KernelSpec{FLOPs: 1e11, Kind: device.KindCompute}
	var shortDone, longDone sim.Time
	r.run(t, func(p *sim.Proc) {
		e1 := r.env.Kernels(p, long, 1)
		// Copy on q2 overlaps kernel on q1 (copies do not use the
		// device compute resource).
		host, _ := r.sp.AllocHost(1<<20, true)
		dev, _ := r.env.DataEnter(p, host, 1<<20, Create)
		_ = dev
		r.env.UpdateDevice(p, host, 1<<20, 2)
		e2 := r.env.Stream(2)
		e2.Sync(p)
		shortDone = p.Now()
		e1.Wait(p)
		longDone = p.Now()
		r.env.DataExit(p, host, Delete)
	})
	if shortDone >= longDone {
		t.Fatalf("queues did not overlap: q2 at %v, q1 at %v", shortDone, longDone)
	}
}

func TestDataEnterDeviceOOM(t *testing.T) {
	// Exhausting the 12 GB GK210 via enter data must surface as an error.
	eng := sim.NewEngine()
	sys := topo.PSG()
	fab := topo.NewFabric(eng, sys)
	rt := device.NewRuntime(eng, fab, 0)
	sp := xmem.NewSpace("n", 8)
	env := NewEnv(rt.NewContext(0, sp, 0, false, true))
	host, _ := sp.AllocHost(16<<30, false)
	eng.Spawn("t", func(p *sim.Proc) {
		if _, err := env.DataEnter(p, host, 16<<30, Create); err == nil {
			t.Error("over-capacity enter data must fail")
		}
		env.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDataExitOnAbsentMapping(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		if err := r.env.DataExit(p, host, Delete); err == nil {
			t.Error("exit of unmapped data must fail")
		}
		if _, err := r.env.HostPtr(0xdead); err == nil {
			t.Error("HostPtr of unknown device address must fail")
		}
	})
}

func TestIntegratedUpdateHostNoop(t *testing.T) {
	r := newRig(t, topo.HeteroDemo(), 2, 0)
	host, _ := r.sp.AllocHost(64, true)
	r.run(t, func(p *sim.Proc) {
		if err := r.env.UpdateHost(p, host, 64, -1); err != nil {
			t.Error(err)
		}
		if h, err := r.env.HostPtr(host); err != nil || h != host {
			t.Error("integrated HostPtr must be identity")
		}
	})
}

func TestWaitAsyncCrossQueueDependency(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	long := device.KernelSpec{Name: "long", FLOPs: 1e11, Kind: device.KindCompute}
	short := device.KernelSpec{Name: "short", FLOPs: 1e8, Kind: device.KindCompute}
	var order []string
	r.run(t, func(p *sim.Proc) {
		r.env.Kernels(p, device.KernelSpec{Name: "l", FLOPs: long.FLOPs, Kind: long.Kind,
			Body: func() { order = append(order, "q1-long") }}, 1)
		// Queue 2 must not start its kernel before queue 1 finishes.
		r.env.WaitAsync(1, 2)
		r.env.Kernels(p, device.KernelSpec{Name: "s", FLOPs: short.FLOPs, Kind: short.Kind,
			Body: func() { order = append(order, "q2-short") }}, 2)
		r.env.WaitAll(p)
	})
	if len(order) != 2 || order[0] != "q1-long" || order[1] != "q2-short" {
		t.Fatalf("order = %v (q2 overtook the dependency)", order)
	}
}

func TestWaitAsyncNoopCases(t *testing.T) {
	r := newRig(t, topo.PSG(), 0, 0)
	r.run(t, func(p *sim.Proc) {
		r.env.WaitAsync(5, 6) // queue 5 never created: no-op
		r.env.WaitAsync(1, 1) // self-dependency: no-op
	})
}
