package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time export of a registry: plain data, safe to
// embed in run reports and to serialize. Families, series, and labels are
// sorted, so marshaling a snapshot is deterministic.
type Snapshot struct {
	// AtNs is the virtual time the snapshot was taken, in nanoseconds.
	AtNs     int64          `json:"at_ns"`
	Families []FamilySnap   `json:"families"`
	index    map[string]int // family name -> Families position
}

// FamilySnap is one metric family in a snapshot.
type FamilySnap struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   string       `json:"kind"`
	Series []SeriesSnap `json:"series"`
}

// SeriesSnap is one series in a snapshot.
type SeriesSnap struct {
	Labels []Label `json:"labels,omitempty"`
	LastNs int64   `json:"last_ns"`
	// Counter value.
	Value int64 `json:"value,omitempty"`
	// Gauge value.
	GaugeValue float64 `json:"gauge_value,omitempty"`
	// Histogram aggregate and non-cumulative log2 buckets.
	Count   uint64       `json:"count,omitempty"`
	Sum     int64        `json:"sum,omitempty"`
	Min     int64        `json:"min,omitempty"`
	Max     int64        `json:"max,omitempty"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// BucketSnap is one occupied histogram bucket: N samples with value <= Le
// (and greater than the previous bucket's Le).
type BucketSnap struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// Snapshot exports the registry's current state at virtual time atNs.
func (r *Registry) Snapshot(atNs int64) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{AtNs: atNs, Families: []FamilySnap{}, index: map[string]int{}}
	for _, f := range r.sortedFamilies() {
		fs := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range f.sortedSeries() {
			ss := SeriesSnap{LastNs: s.lastNs}
			for i, k := range f.keys {
				ss.Labels = append(ss.Labels, Label{Key: k, Value: s.values[i]})
			}
			switch f.kind {
			case KindCounter:
				ss.Value = s.ival
			case KindGauge:
				ss.GaugeValue = s.fval
			default:
				ss.Count = s.count
				ss.Sum = s.sum
				ss.Min = s.min
				ss.Max = s.max
				for i, n := range s.buckets {
					if n == 0 {
						continue
					}
					le := int64(0)
					if i > 0 {
						le = 1<<uint(i) - 1
					}
					ss.Buckets = append(ss.Buckets, BucketSnap{Le: le, N: n})
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.index[f.name] = len(snap.Families)
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Family returns the named family of the snapshot, or nil.
func (s *Snapshot) Family(name string) *FamilySnap {
	if s.index != nil {
		if i, ok := s.index[name]; ok {
			return &s.Families[i]
		}
		return nil
	}
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Label returns the value of the named label, or "".
func (ss *SeriesSnap) Label(key string) string {
	for _, l := range ss.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// WriteJSON emits the snapshot as indented JSON. Output is deterministic.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// promEscape escapes a label value for the Prometheus text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promLabels renders a sorted label set, optionally with an extra le pair.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		// promEscape already produced the exact escaped body; %q would
		// re-escape its backslashes, emitting \\n where Prometheus expects
		// \n. Quote by concatenation, not by formatting.
		parts[i] = l.Key + `="` + promEscape(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (version 0.0.4). Histograms render with cumulative le buckets plus
// the +Inf bucket, _sum, and _count, so standard scrapers and promtool can
// consume the output. Output is deterministic.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for fi := range s.Families {
		f := &s.Families[fi]
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for i := range f.Series {
			ss := &f.Series[i]
			switch f.Kind {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, promLabels(ss.Labels), ss.Value); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, promLabels(ss.Labels),
					strconv.FormatFloat(ss.GaugeValue, 'g', -1, 64)); err != nil {
					return err
				}
			default: // histogram
				cum := uint64(0)
				for _, b := range ss.Buckets {
					cum += b.N
					le := Label{Key: "le", Value: strconv.FormatInt(b.Le, 10)}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(ss.Labels, le), cum); err != nil {
						return err
					}
				}
				inf := Label{Key: "le", Value: "+Inf"}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(ss.Labels, inf), ss.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.Name, promLabels(ss.Labels), ss.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, promLabels(ss.Labels), ss.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
