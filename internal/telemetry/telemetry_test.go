package telemetry

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	now := int64(0)
	r.SetClock(func() int64 { return now })

	c := r.Counter("msgs_total", "messages", "node", "n0")
	c.Inc()
	now = 50
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	c.Add(-5) // ignored
	if c.Value() != 3 {
		t.Fatalf("counter after negative add = %d, want 3", c.Value())
	}
	// Same (name, labels) resolves to the same series.
	if r.Counter("msgs_total", "messages", "node", "n0").Value() != 3 {
		t.Fatal("re-fetched counter lost its value")
	}

	g := r.Gauge("util", "utilization")
	g.Set(0.5)
	g.SetMax(0.25)
	if g.Value() != 0.5 {
		t.Fatalf("SetMax lowered gauge to %v", g.Value())
	}
	g.SetMax(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", g.Value())
	}

	snap := r.Snapshot(now)
	if snap.AtNs != 50 {
		t.Fatalf("snapshot at %d, want 50", snap.AtNs)
	}
	f := snap.Family("msgs_total")
	if f == nil || f.Series[0].Value != 3 || f.Series[0].LastNs != 50 {
		t.Fatalf("counter family snapshot = %+v", f)
	}
	if f.Series[0].Label("node") != "n0" {
		t.Fatalf("label lookup = %q", f.Series[0].Label("node"))
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -7} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1010 {
		t.Fatalf("sum = %d, want 1010", h.Sum())
	}
	ss := r.Snapshot(0).Family("lat_ns").Series[0]
	if ss.Min != 0 || ss.Max != 1000 {
		t.Fatalf("min/max = %d/%d", ss.Min, ss.Max)
	}
	// Expected buckets: le=0 -> {0, -7}, le=1 -> {1}, le=3 -> {2, 3},
	// le=7 -> {4}, le=1023 -> {1000}.
	want := []BucketSnap{{0, 2}, {1, 1}, {3, 2}, {7, 1}, {1023, 1}}
	if len(ss.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", ss.Buckets, want)
	}
	for i, b := range want {
		if ss.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, ss.Buckets[i], b)
		}
	}
}

func TestResourceMonitor(t *testing.T) {
	r := NewRegistry()
	m := r.Resource("n0/pcie0")
	m.Observe(0, 100)
	m.Observe(40, 100)
	m.Observe(10, 50)
	if m.Busy.Value() != 250 || m.Wait.Value() != 50 || m.Uses.Value() != 3 {
		t.Fatalf("busy/wait/uses = %d/%d/%d", m.Busy.Value(), m.Wait.Value(), m.Uses.Value())
	}
	if m.PeakBacklog.Value() != 40 {
		t.Fatalf("peak backlog = %v, want 40", m.PeakBacklog.Value())
	}
	if u := m.Utilization(1000); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
	if u := m.Utilization(100); u != 1 {
		t.Fatalf("utilization must clamp to 1, got %v", u)
	}
	if u := m.Utilization(0); u != 0 {
		t.Fatalf("utilization at zero elapsed = %v", u)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE.+-]+$`)

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter", "node", "n0").Add(7)
	r.Gauge("b_util", "a gauge", "node", "n0", "link", "pcie0").Set(0.375)
	h := r.Histogram("c_ns", "a histogram")
	h.Observe(3)
	h.Observe(900)

	var buf bytes.Buffer
	if err := r.Snapshot(42).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var samples int
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples++
		if !promLine.MatchString(line) {
			t.Errorf("malformed Prometheus line: %q", line)
		}
	}
	// a_total, b_util, two c_ns buckets + +Inf + sum + count.
	if samples != 7 {
		t.Fatalf("got %d samples:\n%s", samples, out)
	}
	for _, want := range []string{
		`a_total{node="n0"} 7`,
		`b_util{node="n0",link="pcie0"} 0.375`,
		`c_ns_bucket{le="3"} 1`,
		`c_ns_bucket{le="1023"} 2`, // cumulative
		`c_ns_bucket{le="+Inf"} 2`,
		`c_ns_sum 903`,
		`c_ns_count 2`,
		"# TYPE c_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	build := func() *bytes.Buffer {
		r := NewRegistry()
		// Insert in an order that differs from sorted order.
		r.Counter("z_total", "", "k", "2").Inc()
		r.Counter("z_total", "", "k", "1").Add(5)
		r.Counter("a_total", "").Inc()
		r.Histogram("m_ns", "", "op", "send").Observe(128)
		var buf bytes.Buffer
		if err := r.Snapshot(9).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\n----\n%s", a, b)
	}
	// Families sorted by name, series by label value.
	var got struct {
		Families []struct {
			Name   string `json:"name"`
			Series []struct {
				Value int64 `json:"value"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal(a.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Families[0].Name != "a_total" || got.Families[2].Name != "z_total" {
		t.Fatalf("families not sorted: %+v", got.Families)
	}
	if got.Families[2].Series[0].Value != 5 {
		t.Fatalf("series not sorted by label value: %+v", got.Families[2].Series)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	for name, fn := range map[string]func(){
		"kind":   func() { r.Gauge("x_total", "") },
		"labels": func() { r.Counter("x_total", "", "k", "v") },
		"odd":    func() { r.Counter("y_total", "", "k") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPoolRecycles: a released registry comes back empty and is handed out
// again instead of a fresh allocation.
func TestPoolRecycles(t *testing.T) {
	var p Pool
	r := p.Get()
	r.Counter("x_total", "help").Add(3)
	p.Put(r)
	r2 := p.Get()
	if r2 != r {
		t.Fatal("pool allocated a fresh registry instead of recycling")
	}
	if snap := r2.Snapshot(0); len(snap.Families) != 0 {
		t.Fatalf("recycled registry still holds %d families", len(snap.Families))
	}
	p.Put(nil) // nil-safe
	if got := p.Get(); got == nil {
		t.Fatal("Get returned nil")
	}
}
