package telemetry

// ResourceMonitor accumulates the occupancy of one serialized service
// center (a sim.FIFOResource: PCIe link, QPI hop, NIC side, memory channel,
// handler CPU, device compute engine). The engine attaches one monitor per
// resource; every Use/UseAsync/CoUseAsync reports (queue-wait, occupy) so
// utilization = busy/elapsed and backlog pressure fall out of the registry
// for free.
type ResourceMonitor struct {
	// Busy accumulates occupied nanoseconds.
	Busy *Counter
	// Wait accumulates nanoseconds requests spent queued behind earlier
	// occupations before starting service.
	Wait *Counter
	// Uses counts occupations.
	Uses *Counter
	// PeakBacklog is the largest single queue-wait observed, in ns — the
	// worst-case backlog depth of the resource over the run.
	PeakBacklog *Gauge
}

// Resource family names.
const (
	ResourceBusyNs        = "sim_resource_busy_ns"
	ResourceWaitNs        = "sim_resource_wait_ns"
	ResourceUses          = "sim_resource_uses_total"
	ResourcePeakBacklogNs = "sim_resource_peak_backlog_ns"
)

// Resource returns the monitor for the named resource, creating its four
// series (busy, wait, uses, peak backlog) labeled resource=name.
func (r *Registry) Resource(name string) *ResourceMonitor {
	return &ResourceMonitor{
		Busy:        r.Counter(ResourceBusyNs, "accumulated occupied time per serialized resource", "resource", name),
		Wait:        r.Counter(ResourceWaitNs, "accumulated queue-wait time per serialized resource", "resource", name),
		Uses:        r.Counter(ResourceUses, "completed occupations per serialized resource", "resource", name),
		PeakBacklog: r.Gauge(ResourcePeakBacklogNs, "largest single queue-wait observed per serialized resource", "resource", name),
	}
}

// Observe records one occupation: the request waited waitNs behind earlier
// work, then held the resource for occupyNs.
func (m *ResourceMonitor) Observe(waitNs, occupyNs int64) {
	m.Busy.Add(occupyNs)
	m.Wait.Add(waitNs)
	m.Uses.Inc()
	m.PeakBacklog.SetMax(float64(waitNs))
}

// Utilization reports busy/elapsed clamped to [0, 1]; zero when elapsed
// is not positive.
func (m *ResourceMonitor) Utilization(elapsedNs int64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	u := float64(m.Busy.Value()) / float64(elapsedNs)
	if u > 1 {
		return 1
	}
	return u
}
