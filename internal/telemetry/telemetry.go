// Package telemetry is the simulator's metrics subsystem: a zero-dependency,
// deterministic registry of counters, gauges, and log2-bucketed histograms
// keyed by virtual time. Every layer of the stack (engine resources, fabric
// links, device streams, message hubs, MPI tasks) reports into the engine's
// registry, so a run ends with a machine-readable answer to "where did the
// time go" — the data behind the paper's breakdown figures (11, 14) and the
// handler-occupancy discussion of §3.7 — without ad-hoc counter structs.
//
// Determinism: the registry is mutated only from simulation context (the
// engine runs one process at a time), timestamps are virtual nanoseconds
// supplied by a clock callback, and snapshots sort families, series, and
// labels. Two runs with the same seed produce byte-identical exports.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates metric families.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Label is one name=value pair attached to a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Registry holds metric families. The zero value is not ready; use
// NewRegistry. A registry may be shared across several engine runs (the
// bench harness does this to aggregate a sweep); counters then accumulate
// across runs.
//
// Concurrency: direct mutation (Add, Set, Observe) is only safe from a
// single goroutine — in practice, simulation context. An aggregate registry
// fed exclusively through Merge may receive merges from many goroutines
// concurrently; Merge and Snapshot lock, single-run mutators do not.
type Registry struct {
	mu       sync.Mutex // guards Merge/Snapshot on shared aggregates
	clock    func() int64
	families map[string]*family
	names    []string // insertion order, for stable iteration before sorting
}

// family is one named metric with a fixed kind, help string, and label
// schema shared by all of its series.
type family struct {
	name   string
	help   string
	kind   Kind
	keys   []string
	series map[string]*series
	order  []string // series keys in insertion order
}

// series is one (family, label values) time series.
type series struct {
	values []string // label values, aligned with family.keys
	lastNs int64    // virtual time of the last mutation

	// counter/gauge state
	ival int64
	fval float64

	// histogram state: bucket i counts values v with bits.Len64(v) == i,
	// i.e. v in [2^(i-1), 2^i - 1]; bucket 0 counts v == 0.
	buckets  [65]uint64
	count    uint64
	sum      int64
	min, max int64
}

// NewRegistry returns an empty registry with a zero clock.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// SetClock installs the virtual-time source stamped onto every mutation.
// The simulation engine points this at its clock when it adopts a registry.
func (r *Registry) SetClock(fn func() int64) { r.clock = fn }

func (r *Registry) now() int64 {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// labelPairs splits variadic "k1, v1, k2, v2, ..." arguments.
func labelPairs(kv []string) (keys, values []string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	for i := 0; i < len(kv); i += 2 {
		keys = append(keys, kv[i])
		values = append(values, kv[i+1])
	}
	return keys, values
}

// get returns the series for (name, labels), creating the family and series
// as needed. The label schema and kind must match the family's on every
// call — a mismatch is a programming error and panics.
func (r *Registry) get(name, help string, kind Kind, kv []string) *series {
	keys, values := labelPairs(kv)
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, keys: keys, series: map[string]*series{}}
		r.families[name] = f
		r.names = append(r.names, name)
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %v, requested as %v", name, f.kind, kind))
		}
		if len(f.keys) != len(keys) {
			panic(fmt.Sprintf("telemetry: %s label schema %v, requested %v", name, f.keys, keys))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("telemetry: %s label schema %v, requested %v", name, f.keys, keys))
			}
		}
	}
	k := strings.Join(values, "\x1f")
	s, ok := f.series[k]
	if !ok {
		s = &series{values: values}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	r *Registry
	s *series
}

// Counter returns the counter series for (name, labels), creating it at
// zero on first use. Labels are "key, value" pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r: r, s: r.get(name, help, KindCounter, labels)}
}

// Add increases the counter by d (negative deltas are ignored).
func (c *Counter) Add(d int64) {
	if d <= 0 {
		return
	}
	c.s.ival += d
	c.s.lastNs = c.r.now()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddAt increases the counter by d, stamping the series with the supplied
// virtual time instead of the registry clock. It exists for recorders that
// buffer increments (the fault plan counts injections under a lock while
// shards run concurrently) and flush them later: the stamp carries the
// virtual time of the last buffered increment, so the snapshot matches one
// recorded live.
func (c *Counter) AddAt(d, ns int64) {
	if d <= 0 {
		return
	}
	c.s.ival += d
	if ns > c.s.lastNs {
		c.s.lastNs = ns
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.s.ival }

// Gauge is a floating-point metric that can move in both directions.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r: r, s: r.get(name, help, KindGauge, labels)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.s.fval = v
	g.s.lastNs = g.r.now()
}

// SetMax stores v if it exceeds the current value (peak tracking).
func (g *Gauge) SetMax(v float64) {
	if v > g.s.fval {
		g.s.fval = v
		g.s.lastNs = g.r.now()
	}
}

// Value reports the current gauge value.
func (g *Gauge) Value() float64 { return g.s.fval }

// Histogram is a log2-bucketed distribution of non-negative int64 samples
// (durations in nanoseconds, sizes in bytes). Bucket i counts samples in
// [2^(i-1), 2^i - 1]; bucket 0 counts zeros.
type Histogram struct {
	r *Registry
	s *series
}

// Histogram returns the histogram series for (name, labels).
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return &Histogram{r: r, s: r.get(name, help, KindHistogram, labels)}
}

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	s := h.s
	s.buckets[bits.Len64(uint64(v))]++
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.lastNs = h.r.now()
}

// Count reports the number of observed samples.
func (h *Histogram) Count() uint64 { return h.s.count }

// Sum reports the total of observed samples.
func (h *Histogram) Sum() int64 { return h.s.sum }

// Merge folds every series of src into r. Rules are commutative so a set of
// merges lands in the same final state regardless of completion order, which
// keeps parallel sweeps deterministic: counters and histogram buckets add,
// gauges keep the maximum (peak semantics across runs), histogram min/max
// widen, and timestamps keep the latest. src must be quiescent (its run
// finished); r may be merged into from several goroutines concurrently.
func (r *Registry) Merge(src *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range src.names {
		sf := src.families[name]
		for _, k := range sf.order {
			ss := sf.series[k]
			kv := make([]string, 0, 2*len(sf.keys))
			for i, key := range sf.keys {
				kv = append(kv, key, ss.values[i])
			}
			mergeSeries(r.get(name, sf.help, sf.kind, kv), ss, sf.kind)
		}
	}
}

// mergeSeries applies the per-kind commutative merge of src into dst.
func mergeSeries(dst, src *series, kind Kind) {
	switch kind {
	case KindCounter:
		dst.ival += src.ival
	case KindGauge:
		if src.fval > dst.fval {
			dst.fval = src.fval
		}
	case KindHistogram:
		if src.count > 0 {
			if dst.count == 0 || src.min < dst.min {
				dst.min = src.min
			}
			if src.max > dst.max {
				dst.max = src.max
			}
			for i := range dst.buckets {
				dst.buckets[i] += src.buckets[i]
			}
			dst.count += src.count
			dst.sum += src.sum
		}
	}
	if src.lastNs > dst.lastNs {
		dst.lastNs = src.lastNs
	}
}

// Reset empties the registry in place for reuse: every family is dropped
// but the top-level map buckets and the names slice keep their storage, so
// a pooled registry re-fills without re-growing. The clock is cleared too —
// a reset registry is observably identical to a fresh NewRegistry().
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = nil
	for _, name := range r.names {
		delete(r.families, name)
	}
	r.names = r.names[:0]
}

// Pool recycles registries across runs. A benchmark sweep allocates one
// registry per shard engine per run; at thousands of leaf runs the
// allocation and map-growth cost shows up in profiles, so the harness hands
// each finished run's registries back and the next run starts from warmed
// maps. Get and Put are safe from concurrent sweep workers. The zero value
// is ready to use.
type Pool struct {
	mu   sync.Mutex
	free []*Registry
}

// Get returns an empty registry, reusing a pooled one when available.
func (p *Pool) Get() *Registry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	return NewRegistry()
}

// Put resets r and shelves it for the next Get. Callers must not retain
// references to r or its metrics after Put.
func (p *Pool) Put(r *Registry) {
	if r == nil {
		return
	}
	r.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, r)
}

// sortedFamilies returns the families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		out = append(out, r.families[n])
	}
	return out
}

// sortedSeries returns a family's series ordered by label values.
func (f *family) sortedSeries() []*series {
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}
