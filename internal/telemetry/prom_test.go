package telemetry

import (
	"strings"
	"testing"
)

// The Prometheus text format gives label values exactly three escapes:
// backslash, newline, and double quote. promEscape must produce them and
// promLabels must not mangle them further (its old fmt %q path re-escaped
// the backslashes promEscape had just written, so a newline rendered as \\n
// and scrapers read a literal backslash-n).
func TestPromEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain", "plain"},
		{"no escape needed: {x=1}", "no escape needed: {x=1}"},
		{"line1\nline2", `line1\nline2`},
		{`back\slash`, `back\\slash`},
		{`quoted "v"`, `quoted \"v\"`},
		{"all\n\"three\"\\", `all\n\"three\"\\`},
		{`pre-escaped \n stays literal`, `pre-escaped \\n stays literal`},
	}
	for _, c := range cases {
		if got := promEscape(c.in); got != c.want {
			t.Errorf("promEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPromLabels(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
		extra  []Label
		want   string
	}{
		{"empty", nil, nil, ""},
		{"one", []Label{{"op", "send"}}, nil, `{op="send"}`},
		{"two plus extra", []Label{{"op", "send"}, {"rank", "3"}},
			[]Label{{"le", "+Inf"}}, `{op="send",rank="3",le="+Inf"}`},
		{"newline", []Label{{"msg", "a\nb"}}, nil, `{msg="a\nb"}`},
		{"backslash", []Label{{"path", `a\b`}}, nil, `{path="a\\b"}`},
		{"quote", []Label{{"q", `say "hi"`}}, nil, `{q="say \"hi\""}`},
		{"combined", []Label{{"v", "x\n\"y\"\\z"}}, nil, `{v="x\n\"y\"\\z"}`},
	}
	for _, c := range cases {
		if got := promLabels(c.labels, c.extra...); got != c.want {
			t.Errorf("%s: promLabels = %q, want %q", c.name, got, c.want)
		}
	}
}

// End-to-end: a hostile label value survives a registry snapshot into the
// exposition format with single (not double) escaping.
func TestPrometheusLabelEscapingEndToEnd(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "demo", "who", "a\n\"b\"\\c").Inc()
	var b strings.Builder
	if err := reg.Snapshot(0).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `demo_total{who="a\n\"b\"\\c"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}
