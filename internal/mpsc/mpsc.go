// Package mpsc implements the in-order, lock-free, multi-producer
// single-consumer queue used between task threads and the per-node message
// handler thread (paper §3.7: "two in-order and lock-free multi-producer
// (task threads) single-consumer (message handler thread) queues, called
// intra-node message queue and pending internode message queue").
//
// The implementation is an intrusive linked queue in the style of Vyukov's
// MPSC algorithm: producers perform one atomic swap per push and never
// block; the single consumer pops without atomics on its own tail pointer.
// Per-producer FIFO order is preserved, and the global order is the
// linearization of the producers' swaps.
package mpsc

import "sync/atomic"

type node[T any] struct {
	next atomic.Pointer[node[T]]
	val  T
}

// Queue is a lock-free MPSC queue. The zero value is not usable; call New.
// Any number of goroutines may Push concurrently; exactly one goroutine may
// Pop.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // producers swap here
	tail *node[T]                // consumer-owned
	size atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	stub := &node[T]{}
	q.head.Store(stub)
	q.tail = stub
	return q
}

// Push enqueues v. It is wait-free apart from one atomic swap and never
// blocks, matching the paper's requirement that task threads shift work to
// the handler without contending on a lock.
func (q *Queue[T]) Push(v T) {
	n := &node[T]{val: v}
	prev := q.head.Swap(n)
	prev.next.Store(n)
	q.size.Add(1)
}

// Pop dequeues the oldest element. Only the single consumer may call it.
// It returns ok=false when the queue is empty (or momentarily when a
// producer has swapped head but not yet linked next; the element becomes
// visible on a later call).
func (q *Queue[T]) Pop() (T, bool) {
	tail := q.tail
	next := tail.next.Load()
	if next == nil {
		var zero T
		return zero, false
	}
	q.tail = next
	v := next.val
	var zero T
	next.val = zero // release reference
	q.size.Add(-1)
	return v, true
}

// Len reports the approximate number of queued elements.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }

// Empty reports whether the consumer currently sees no elements.
func (q *Queue[T]) Empty() bool { return q.tail.next.Load() == nil }
