package mpsc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	q := New[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty returned ok")
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("empty queue state wrong")
	}
}

func TestSingleThreadFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 || q.Empty() {
		t.Fatalf("len = %d, empty = %v", q.Len(), q.Empty())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be drained")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New[string]()
	q.Push("a")
	q.Push("b")
	if v, _ := q.Pop(); v != "a" {
		t.Fatal("order wrong")
	}
	q.Push("c")
	if v, _ := q.Pop(); v != "b" {
		t.Fatal("order wrong")
	}
	if v, _ := q.Pop(); v != "c" {
		t.Fatal("order wrong")
	}
}

// TestConcurrentProducersFIFOPerProducer drives the queue with real
// parallelism: per-producer order must hold, and no element may be lost or
// duplicated.
func TestConcurrentProducersFIFOPerProducer(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	type item struct{ producer, seq int }
	q := New[item]()

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(item{pr, i})
			}
		}(pr)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	got := 0
	for got < producers*perProducer {
		v, ok := q.Pop()
		if !ok {
			select {
			case <-done:
				// Producers finished; drain what remains.
				if v, ok = q.Pop(); !ok {
					continue
				}
			default:
				continue
			}
		}
		if v.seq != lastSeq[v.producer]+1 {
			t.Fatalf("producer %d: seq %d after %d", v.producer, v.seq, lastSeq[v.producer])
		}
		lastSeq[v.producer] = v.seq
		got++
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("extra elements after full drain")
	}
}

// Property: single-threaded push/pop sequences match a slice model.
func TestMatchesSliceModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New[uint8]()
		var model []uint8
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				v, ok := q.Pop()
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			} else {
				q.Push(op)
				model = append(model, op)
			}
		}
		for _, want := range model {
			v, ok := q.Pop()
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkContendedPush(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
		}
	})
}
