// Package ptable implements the OpenACC present table (paper §3.4,
// Figure 3): the per-task map from host address ranges to device address
// ranges. Following the paper, it keeps two balanced binary trees — one
// indexed by host address, one by device address — so both acc_deviceptr()
// (host→device) and acc_hostptr() (device→host) run in logarithmic time.
package ptable

import (
	"fmt"

	"impacc/internal/avl"
	"impacc/internal/xmem"
)

// Entry maps one host data range to its device copy. Handle mirrors the
// OpenCL cl_mem field of Figure 3's Task 1 table: for CUDA-style devices it
// is zero and Dev is used directly (CUdeviceptr), while OpenCL-style
// devices carry the memory-object handle alongside the mapped address.
type Entry struct {
	Host   xmem.Addr // start address of host data
	Dev    xmem.Addr // start address of corresponding device data
	Size   int64     // size of the data in bytes
	Device int       // owning accelerator index within the node
	Handle uint64    // OpenCL-style memory object handle (0 for CUDA-style)
	// Refs counts nested data-region entries for the same range
	// (present_or_copyin semantics): the mapping is released when it
	// drops to zero.
	Refs int
}

// Table is one task's present table.
type Table struct {
	byHost avl.Tree[xmem.Addr, *Entry]
	byDev  avl.Tree[xmem.Addr, *Entry]
}

// New returns an empty present table.
func New() *Table { return &Table{} }

// Len reports the number of live entries.
func (t *Table) Len() int { return t.byHost.Len() }

// Insert records a new host↔device mapping with refcount 1. It rejects
// ranges overlapping an existing entry on either index.
func (t *Table) Insert(host, dev xmem.Addr, size int64, device int, handle uint64) (*Entry, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ptable: Insert: size %d must be positive", size)
	}
	if e, _, ok := t.lookupHost(host); ok {
		return nil, fmt.Errorf("ptable: host range %#x overlaps entry at %#x", uint64(host), uint64(e.Host))
	}
	if _, he, ok := t.byHost.Ceil(host); ok && he.Host < host+xmem.Addr(size) {
		return nil, fmt.Errorf("ptable: host range %#x+%d overlaps entry at %#x", uint64(host), size, uint64(he.Host))
	}
	if e, _, ok := t.lookupDev(dev); ok {
		return nil, fmt.Errorf("ptable: device range %#x overlaps entry at %#x", uint64(dev), uint64(e.Dev))
	}
	if _, de, ok := t.byDev.Ceil(dev); ok && de.Dev < dev+xmem.Addr(size) {
		return nil, fmt.Errorf("ptable: device range %#x+%d overlaps entry at %#x", uint64(dev), size, uint64(de.Dev))
	}
	e := &Entry{Host: host, Dev: dev, Size: size, Device: device, Handle: handle, Refs: 1}
	t.byHost.Put(host, e)
	t.byDev.Put(dev, e)
	return e, nil
}

func (t *Table) lookupHost(addr xmem.Addr) (*Entry, int64, bool) {
	_, e, ok := t.byHost.Floor(addr)
	if !ok || addr >= e.Host+xmem.Addr(e.Size) {
		return nil, 0, false
	}
	return e, int64(addr - e.Host), true
}

func (t *Table) lookupDev(addr xmem.Addr) (*Entry, int64, bool) {
	_, e, ok := t.byDev.Floor(addr)
	if !ok || addr >= e.Dev+xmem.Addr(e.Size) {
		return nil, 0, false
	}
	return e, int64(addr - e.Dev), true
}

// FindHost returns the entry containing host address addr and the offset
// within it. This is the acc_deviceptr() direction.
func (t *Table) FindHost(addr xmem.Addr) (*Entry, int64, bool) { return t.lookupHost(addr) }

// FindDev returns the entry containing device address addr and the offset
// within it. This is the acc_hostptr() direction.
func (t *Table) FindDev(addr xmem.Addr) (*Entry, int64, bool) { return t.lookupDev(addr) }

// DevicePtr translates a host address to the corresponding device address
// (acc_deviceptr).
func (t *Table) DevicePtr(host xmem.Addr) (xmem.Addr, error) {
	e, off, ok := t.lookupHost(host)
	if !ok {
		return xmem.Nil, fmt.Errorf("ptable: acc_deviceptr(%#x): host data not present", uint64(host))
	}
	return e.Dev + xmem.Addr(off), nil
}

// HostPtr translates a device address to the corresponding host address
// (acc_hostptr).
func (t *Table) HostPtr(dev xmem.Addr) (xmem.Addr, error) {
	e, off, ok := t.lookupDev(dev)
	if !ok {
		return xmem.Nil, fmt.Errorf("ptable: acc_hostptr(%#x): device data not present", uint64(dev))
	}
	return e.Host + xmem.Addr(off), nil
}

// Retain increments the refcount of the entry containing host (nested data
// regions over present data) and returns it.
func (t *Table) Retain(host xmem.Addr) (*Entry, bool) {
	e, _, ok := t.lookupHost(host)
	if !ok {
		return nil, false
	}
	e.Refs++
	return e, true
}

// Release decrements the refcount of the entry containing host. When it
// reaches zero the mapping is removed from both trees and returned with
// last=true so the caller can free device memory.
func (t *Table) Release(host xmem.Addr) (e *Entry, last bool, err error) {
	e, _, ok := t.lookupHost(host)
	if !ok {
		return nil, false, fmt.Errorf("ptable: Release(%#x): not present", uint64(host))
	}
	e.Refs--
	if e.Refs > 0 {
		return e, false, nil
	}
	t.byHost.Delete(e.Host)
	t.byDev.Delete(e.Dev)
	return e, true, nil
}

// Remove deletes the entry containing host regardless of refcount,
// returning it. Used by exit-data finalize and task teardown.
func (t *Table) Remove(host xmem.Addr) (*Entry, bool) {
	e, _, ok := t.lookupHost(host)
	if !ok {
		return nil, false
	}
	t.byHost.Delete(e.Host)
	t.byDev.Delete(e.Dev)
	return e, true
}

// Entries returns all live entries in host-address order.
func (t *Table) Entries() []*Entry {
	out := make([]*Entry, 0, t.byHost.Len())
	t.byHost.Ascend(func(_ xmem.Addr, e *Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}
