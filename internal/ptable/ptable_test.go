package ptable

import (
	"testing"
	"testing/quick"

	"impacc/internal/xmem"
)

func TestInsertAndTranslate(t *testing.T) {
	pt := New()
	e, err := pt.Insert(0x1000, 0x9000, 256, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Refs != 1 {
		t.Fatalf("refs = %d", e.Refs)
	}
	d, err := pt.DevicePtr(0x1000 + 100)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0x9000+100 {
		t.Fatalf("DevicePtr = %#x", uint64(d))
	}
	h, err := pt.HostPtr(0x9000 + 255)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0x1000+255 {
		t.Fatalf("HostPtr = %#x", uint64(h))
	}
	if _, err := pt.DevicePtr(0x1000 + 256); err == nil {
		t.Fatal("one-past-end DevicePtr must fail")
	}
	if _, err := pt.HostPtr(0x5); err == nil {
		t.Fatal("unknown HostPtr must fail")
	}
}

func TestInsertRejectsOverlap(t *testing.T) {
	pt := New()
	if _, err := pt.Insert(0x1000, 0x9000, 256, 0, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		host, dev xmem.Addr
	}{
		{0x1000, 0xA000}, // exact host overlap
		{0x10FF, 0xA000}, // host tail overlap
		{0x0F80, 0xA000}, // host range straddles existing start
		{0x2000, 0x9000}, // exact device overlap
		{0x2000, 0x90FF}, // device tail overlap
		{0x2000, 0x8F80}, // device straddle
	}
	for _, c := range cases {
		if _, err := pt.Insert(c.host, c.dev, 256, 0, 0); err == nil {
			t.Errorf("Insert(%#x, %#x) should overlap", uint64(c.host), uint64(c.dev))
		}
	}
	if pt.Len() != 1 {
		t.Fatalf("len = %d after rejected inserts", pt.Len())
	}
	if _, err := pt.Insert(0x1000, 0x9000, 0, 0, 0); err == nil {
		t.Fatal("zero size must fail")
	}
}

func TestOpenCLHandleField(t *testing.T) {
	// Figure 3: Task 1's MIC table carries cl_mem handles alongside the
	// malloc()-reserved mapped addresses.
	pt := New()
	e, err := pt.Insert(0x4000, 0xB000, 128, 1, 0xC1C1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Handle != 0xC1C1 {
		t.Fatal("handle lost")
	}
	got, off, ok := pt.FindDev(0xB000 + 64)
	if !ok || got.Handle != 0xC1C1 || off != 64 {
		t.Fatalf("FindDev = %+v, %d, %v", got, off, ok)
	}
}

func TestRetainRelease(t *testing.T) {
	pt := New()
	pt.Insert(0x1000, 0x9000, 64, 0, 0)
	e, ok := pt.Retain(0x1000 + 8)
	if !ok || e.Refs != 2 {
		t.Fatalf("retain: %+v, %v", e, ok)
	}
	_, last, err := pt.Release(0x1000)
	if err != nil || last {
		t.Fatalf("first release: %v, %v", last, err)
	}
	_, last, err = pt.Release(0x1000 + 32)
	if err != nil || !last {
		t.Fatalf("second release: %v, %v", last, err)
	}
	if pt.Len() != 0 {
		t.Fatal("entry not removed")
	}
	if _, _, err := pt.Release(0x1000); err == nil {
		t.Fatal("release of absent entry must fail")
	}
	if _, ok := pt.Retain(0x1000); ok {
		t.Fatal("retain of absent entry must succeed=false")
	}
}

func TestRemove(t *testing.T) {
	pt := New()
	pt.Insert(0x1000, 0x9000, 64, 0, 0)
	pt.Retain(0x1000)
	e, ok := pt.Remove(0x1000 + 5)
	if !ok || e.Host != 0x1000 {
		t.Fatal("remove failed")
	}
	if pt.Len() != 0 {
		t.Fatal("remove left entry")
	}
	if _, ok := pt.Remove(0x1000); ok {
		t.Fatal("double remove succeeded")
	}
	// Device index must be gone too.
	if _, err := pt.HostPtr(0x9000); err == nil {
		t.Fatal("device index not cleaned")
	}
}

func TestEntriesOrdered(t *testing.T) {
	pt := New()
	pt.Insert(0x3000, 0x9000, 16, 0, 0)
	pt.Insert(0x1000, 0xA000, 16, 0, 0)
	pt.Insert(0x2000, 0xB000, 16, 0, 0)
	es := pt.Entries()
	if len(es) != 3 || es[0].Host != 0x1000 || es[2].Host != 0x3000 {
		t.Fatalf("entries = %+v", es)
	}
}

// Property: for non-overlapping mappings, DevicePtr and HostPtr are inverse
// bijections at every interior offset.
func TestTranslationInverseProperty(t *testing.T) {
	f := func(count uint8, sizes []uint16) bool {
		pt := New()
		n := int(count%20) + 1
		type m struct {
			host, dev xmem.Addr
			size      int64
		}
		var ms []m
		hbase, dbase := xmem.Addr(0x10000), xmem.Addr(0x900000)
		for i := 0; i < n; i++ {
			size := int64(300)
			if len(sizes) > 0 {
				size = int64(sizes[i%len(sizes)]%1000) + 1
			}
			if _, err := pt.Insert(hbase, dbase, size, 0, 0); err != nil {
				return false
			}
			ms = append(ms, m{hbase, dbase, size})
			hbase += xmem.Addr(size + 64)
			dbase += xmem.Addr(size + 64)
		}
		for _, mm := range ms {
			for _, off := range []int64{0, mm.size / 2, mm.size - 1} {
				d, err := pt.DevicePtr(mm.host + xmem.Addr(off))
				if err != nil {
					return false
				}
				h, err := pt.HostPtr(d)
				if err != nil || h != mm.host+xmem.Addr(off) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
