package msg

import (
	"testing"

	"impacc/internal/device"
	"impacc/internal/sim"
	"impacc/internal/topo"
	"impacc/internal/xmem"
)

// impaccCfg are production IMPACC hub settings used across tests.
func impaccCfg() Config {
	return Config{
		Fusion: true, Aliasing: true, RDMA: true, DirectP2P: true,
		ThreadMultiple: true,
		CmdOverhead:    300, HandlerOverhead: 400, AliasOverhead: 1000,
		MPIOverhead: 400,
	}
}

func legacyCfg() Config {
	return Config{Legacy: true, ThreadMultiple: true, MPIOverhead: 400}
}

// nodeRig is one simulated node with a hub and two endpoints.
type nodeRig struct {
	eng  *sim.Engine
	fab  *topo.Fabric
	hub  *Hub
	sp   *xmem.Space
	heap *xmem.HeapTable
	rt   *device.Runtime
}

func newNodeRig(t *testing.T, sys *topo.System, cfg Config) *nodeRig {
	t.Helper()
	eng := sim.NewEngine()
	fab := topo.NewFabric(eng, sys)
	heap := xmem.NewHeapTable()
	hub := NewHub(eng, fab, 0, cfg, heap)
	sp := xmem.NewSpace("node0", len(sys.Nodes[0].Devices))
	rt := device.NewRuntime(eng, fab, 0)
	return &nodeRig{eng: eng, fab: fab, hub: hub, sp: sp, heap: heap, rt: rt}
}

func (r *nodeRig) endpoint(rank, dev int, space *xmem.Space) *Endpoint {
	sock := r.fab.Sys.Nodes[0].Devices[dev].Socket
	return &Endpoint{
		Rank: rank, Node: 0, Space: space,
		Ctx: r.rt.NewContext(dev, space, sock, true, true),
	}
}

func (r *nodeRig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// sendRecv posts a blocking pair between two endpoints and returns the
// commands after the run.
func cmdPair(eng *sim.Engine, sep, rep *Endpoint, saddr, raddr xmem.Addr, n int64, sro, rro bool) (*Cmd, *Cmd) {
	s := &Cmd{IsSend: true, Src: sep.Rank, Dst: rep.Rank, Tag: 7,
		Addr: saddr, Bytes: n, Ep: sep, ReadOnly: sro,
		Done: eng.NewEvent("send")}
	r := &Cmd{Src: sep.Rank, Dst: rep.Rank, Tag: 7,
		Addr: raddr, Bytes: n, Ep: rep, ReadOnly: rro,
		Done: eng.NewEvent("recv")}
	return s, r
}

func TestIntraFusedHtoH(t *testing.T) {
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	src, _ := r.sp.AllocHost(1024, true)
	dst, _ := r.sp.AllocHost(1024, true)
	sb, _ := r.sp.Bytes(src, 1024)
	for i := range sb {
		sb[i] = byte(i)
	}
	e0 := r.endpoint(0, 0, r.sp)
	e1 := r.endpoint(1, 1, r.sp)
	s, rc := cmdPair(r.eng, e0, e1, src, dst, 1024, false, false)
	r.eng.Spawn("sender", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
		s.Done.Wait(p)
	})
	r.eng.Spawn("recver", func(p *sim.Proc) {
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	db, _ := r.sp.Bytes(dst, 1024)
	for i := range db {
		if db[i] != byte(i) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	if r.hub.Stats().FusedCopies != 1 {
		t.Fatalf("fused = %d, want 1 (Figure 6)", r.hub.Stats().FusedCopies)
	}
	if r.hub.Stats().Aliases != 0 {
		t.Fatal("non-readonly pair must not alias")
	}
	if s.Err != nil || rc.Err != nil {
		t.Fatalf("errors: %v, %v", s.Err, rc.Err)
	}
	if e1.Ctx.Stats.HtoHCount != 1 {
		t.Fatal("fused copy not recorded on receiver context")
	}
}

func TestSendBeforeRecvAndAfter(t *testing.T) {
	// Unexpected-message path: send posted first; late recv still matches.
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	src, _ := r.sp.AllocHost(64, true)
	dst, _ := r.sp.AllocHost(64, true)
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	s, rc := cmdPair(r.eng, e0, e1, src, dst, 64, false, false)
	r.eng.Spawn("sender", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
	})
	r.eng.Spawn("recver", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	if !s.Done.Fired() || !rc.Done.Fired() {
		t.Fatal("pair did not complete")
	}
}

func TestFIFOMatchingPerPair(t *testing.T) {
	// Two sends same (src,dst,tag): first send pairs with first recv.
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	a1, _ := r.sp.AllocHost(8, true)
	a2, _ := r.sp.AllocHost(8, true)
	d1, _ := r.sp.AllocHost(8, true)
	d2, _ := r.sp.AllocHost(8, true)
	b1, _ := r.sp.Bytes(a1, 8)
	b2, _ := r.sp.Bytes(a2, 8)
	b1[0], b2[0] = 11, 22
	mk := func(isSend bool, addr xmem.Addr) *Cmd {
		ep := e0
		if !isSend {
			ep = e1
		}
		return &Cmd{IsSend: isSend, Src: 0, Dst: 1, Tag: 0, Addr: addr,
			Bytes: 8, Ep: ep, Done: r.eng.NewEvent("c")}
	}
	s1, s2 := mk(true, a1), mk(true, a2)
	r1, r2 := mk(false, d1), mk(false, d2)
	r.eng.Spawn("sender", func(p *sim.Proc) {
		r.hub.PostIntra(p, s1)
		r.hub.PostIntra(p, s2)
	})
	r.eng.Spawn("recver", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		r.hub.PostIntra(p, r1)
		r.hub.PostIntra(p, r2)
		r2.Done.Wait(p)
	})
	r.run(t)
	v1, _ := r.sp.Bytes(d1, 8)
	v2, _ := r.sp.Bytes(d2, 8)
	if v1[0] != 11 || v2[0] != 22 {
		t.Fatalf("FIFO violated: got %d, %d", v1[0], v2[0])
	}
}

func TestTagAndWildcardMatching(t *testing.T) {
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	aT5, _ := r.sp.AllocHost(8, true)
	aT9, _ := r.sp.AllocHost(8, true)
	bT5, _ := r.sp.Bytes(aT5, 8)
	bT9, _ := r.sp.Bytes(aT9, 8)
	bT5[0], bT9[0] = 5, 9
	dT9, _ := r.sp.AllocHost(8, true)
	dAny, _ := r.sp.AllocHost(8, true)

	s5 := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 5, Addr: aT5, Bytes: 8, Ep: e0, Done: r.eng.NewEvent("s5")}
	s9 := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 9, Addr: aT9, Bytes: 8, Ep: e0, Done: r.eng.NewEvent("s9")}
	// Recv tagged 9 must skip the tag-5 send; any/any recv takes tag 5.
	r9 := &Cmd{Src: 0, Dst: 1, Tag: 9, Addr: dT9, Bytes: 8, Ep: e1, Done: r.eng.NewEvent("r9")}
	rAny := &Cmd{Src: AnySource, Dst: 1, Tag: AnyTag, Addr: dAny, Bytes: 8, Ep: e1, Done: r.eng.NewEvent("rA")}
	r.eng.Spawn("sender", func(p *sim.Proc) {
		r.hub.PostIntra(p, s5)
		r.hub.PostIntra(p, s9)
	})
	r.eng.Spawn("recver", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		r.hub.PostIntra(p, r9)
		r.hub.PostIntra(p, rAny)
		r9.Done.Wait(p)
		rAny.Done.Wait(p)
	})
	r.run(t)
	v9, _ := r.sp.Bytes(dT9, 8)
	vA, _ := r.sp.Bytes(dAny, 8)
	if v9[0] != 9 {
		t.Fatalf("tag-9 recv got %d", v9[0])
	}
	if vA[0] != 5 {
		t.Fatalf("wildcard recv got %d, want tag-5 payload", vA[0])
	}
}

func TestTruncationError(t *testing.T) {
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	src, _ := r.sp.AllocHost(128, true)
	dst, _ := r.sp.AllocHost(64, true)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 0, Addr: src, Bytes: 128, Ep: e0, Done: r.eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 0, Addr: dst, Bytes: 64, Ep: e1, Done: r.eng.NewEvent("r")}
	r.eng.Spawn("x", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	if rc.Err == nil || s.Err == nil {
		t.Fatal("truncation must surface as error on both sides")
	}
}

func TestNodeHeapAliasingApplies(t *testing.T) {
	// Figure 7: 100-element src, 10-element dst at offset; readonly on
	// both sides; recv covers a whole allocation.
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	src, _ := r.sp.AllocHost(800, true)
	dst, _ := r.sp.AllocHost(80, true)
	r.heap.Register(src, 800, 0)
	r.heap.Register(dst, 80, 1)
	sb, _ := r.sp.Bytes(src, 800)
	for i := range sb {
		sb[i] = byte(i % 251)
	}
	off := xmem.Addr(240)
	s, rc := cmdPair(r.eng, e0, e1, src+off, dst, 80, true, true)
	r.eng.Spawn("x", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	if !s.Aliased || !rc.Aliased || r.hub.Stats().Aliases != 1 {
		t.Fatalf("aliasing not applied: %v %v %d", s.Aliased, rc.Aliased, r.hub.Stats().Aliases)
	}
	if r.hub.Stats().FusedCopies != 0 {
		t.Fatal("aliased pair must not copy")
	}
	// Receiver reads the sender's data through its own pointer.
	db, _ := r.sp.Bytes(dst, 80)
	for i := range db {
		if db[i] != byte((i+240)%251) {
			t.Fatalf("aliased read mismatch at %d", i)
		}
	}
	// Refcounts: src entry now has 2 refs, dst entry is gone.
	ent, ok := r.heap.At(src)
	if !ok || ent.Refs != 2 || !ent.Shared {
		t.Fatalf("src heap entry = %+v, %v", ent, ok)
	}
	if _, ok := r.heap.At(dst); ok {
		t.Fatal("dst heap entry must be dropped")
	}
}

func TestAliasingRequirements(t *testing.T) {
	type variant struct {
		name  string
		setup func(r *nodeRig) (sro, rro bool, saddr, raddr xmem.Addr, sn, rn int64)
	}
	base := func(r *nodeRig) (xmem.Addr, xmem.Addr) {
		src, _ := r.sp.AllocHost(256, true)
		dst, _ := r.sp.AllocHost(256, true)
		r.heap.Register(src, 256, 0)
		r.heap.Register(dst, 256, 1)
		return src, dst
	}
	variants := []variant{
		{"send not readonly", func(r *nodeRig) (bool, bool, xmem.Addr, xmem.Addr, int64, int64) {
			s, d := base(r)
			return false, true, s, d, 256, 256
		}},
		{"recv not readonly", func(r *nodeRig) (bool, bool, xmem.Addr, xmem.Addr, int64, int64) {
			s, d := base(r)
			return true, false, s, d, 256, 256
		}},
		{"partial overwrite", func(r *nodeRig) (bool, bool, xmem.Addr, xmem.Addr, int64, int64) {
			s, d := base(r)
			return true, true, s, d, 128, 128 // recv alloc is 256
		}},
		{"recv interior pointer", func(r *nodeRig) (bool, bool, xmem.Addr, xmem.Addr, int64, int64) {
			s, d := base(r)
			return true, true, s, d + 64, 128, 128
		}},
		{"recv not registered heap", func(r *nodeRig) (bool, bool, xmem.Addr, xmem.Addr, int64, int64) {
			s, _ := base(r)
			raw, _ := r.sp.AllocHost(256, true) // no heap entry
			return true, true, s, raw, 256, 256
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			r := newNodeRig(t, topo.PSG(), impaccCfg())
			e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
			sro, rro, saddr, raddr, sn, rn := v.setup(r)
			s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 0, Addr: saddr,
				Bytes: sn, Ep: e0, ReadOnly: sro, Done: r.eng.NewEvent("s")}
			rc := &Cmd{Src: 0, Dst: 1, Tag: 0, Addr: raddr, Bytes: rn,
				Ep: e1, ReadOnly: rro, Done: r.eng.NewEvent("r")}
			r.eng.Spawn("x", func(p *sim.Proc) {
				r.hub.PostIntra(p, s)
				r.hub.PostIntra(p, rc)
				rc.Done.Wait(p)
			})
			r.run(t)
			if s.Aliased || rc.Aliased {
				t.Fatalf("%s: aliasing must not apply", v.name)
			}
			if rc.Err != nil {
				t.Fatalf("%s: pair errored: %v", v.name, rc.Err)
			}
			if r.hub.Stats().FusedCopies != 1 {
				t.Fatalf("%s: expected fallback fused copy", v.name)
			}
		})
	}
}

func TestDeviceBuffersNeverAlias(t *testing.T) {
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	src, _ := e0.Ctx.MemAlloc(256)
	dst, _ := e1.Ctx.MemAlloc(256)
	s, rc := cmdPair(r.eng, e0, e1, src, dst, 256, true, true)
	r.eng.Spawn("x", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	if s.Aliased {
		t.Fatal("device buffers must not alias (requirement 2)")
	}
	if r.hub.Stats().FusedCopies != 1 {
		t.Fatal("expected a fused DtoD copy")
	}
	if e1.Ctx.Stats.DtoDCount != 1 {
		t.Fatal("DtoD not recorded")
	}
}

func TestLegacyIntraIsSlowerThanFused(t *testing.T) {
	n := int64(16 << 20)
	run := func(cfg Config) sim.Dur {
		r := newNodeRig(t, topo.PSG(), cfg)
		e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
		var sp1 *xmem.Space
		if cfg.Legacy {
			sp1 = xmem.NewSpace("p1", 8) // private space per process
			e1 = &Endpoint{Rank: 1, Node: 0, Space: sp1,
				Ctx: r.rt.NewContext(1, sp1, 0, true, false)}
		}
		src, _ := e0.Space.AllocHost(n, true)
		dst, _ := e1.Space.AllocHost(n, true)
		s, rc := cmdPair(r.eng, e0, e1, src, dst, n, false, false)
		var elapsed sim.Dur
		r.eng.Spawn("x", func(p *sim.Proc) {
			start := p.Now()
			r.hub.PostIntra(p, s)
			r.hub.PostIntra(p, rc)
			rc.Done.Wait(p)
			elapsed = sim.Dur(p.Now() - start)
		})
		r.run(t)
		if cfg.Legacy && r.hub.Stats().LegacyCopies != 2 {
			t.Fatalf("legacy copies = %d, want 2 (redundant HtoH)", r.hub.Stats().LegacyCopies)
		}
		return elapsed
	}
	fused := run(impaccCfg())
	legacy := run(legacyCfg())
	ratio := float64(legacy) / float64(fused)
	if ratio < 2.0 {
		t.Fatalf("legacy/fused HtoH ratio = %.2f, want > 2 (redundant copy + IPC)", ratio)
	}
}

func TestDtoDP2PVsDisabled(t *testing.T) {
	n := int64(64 << 20)
	run := func(p2p bool) sim.Dur {
		cfg := impaccCfg()
		cfg.DirectP2P = p2p
		r := newNodeRig(t, topo.PSG(), cfg)
		e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
		src, _ := e0.Ctx.MemAlloc(n)
		dst, _ := e1.Ctx.MemAlloc(n)
		s, rc := cmdPair(r.eng, e0, e1, src, dst, n, false, false)
		var elapsed sim.Dur
		r.eng.Spawn("x", func(p *sim.Proc) {
			start := p.Now()
			r.hub.PostIntra(p, s)
			r.hub.PostIntra(p, rc)
			rc.Done.Wait(p)
			elapsed = sim.Dur(p.Now() - start)
		})
		r.run(t)
		return elapsed
	}
	direct := run(true)
	staged := run(false)
	if float64(staged)/float64(direct) < 1.5 {
		t.Fatalf("staged %v vs direct %v: P2P gain too small", staged, direct)
	}
}

// twoNodeRig wires two Titan nodes with one endpoint each.
func twoNodeRig(t *testing.T, sys *topo.System, cfg Config) (*sim.Engine, *Hub, *Hub, *Endpoint, *Endpoint) {
	t.Helper()
	eng := sim.NewEngine()
	fab := topo.NewFabric(eng, sys)
	h0 := NewHub(eng, fab, 0, cfg, xmem.NewHeapTable())
	h1 := NewHub(eng, fab, 1, cfg, xmem.NewHeapTable())
	rt0 := device.NewRuntime(eng, fab, 0)
	rt1 := device.NewRuntime(eng, fab, 1)
	sp0 := xmem.NewSpace("n0", len(sys.Nodes[0].Devices))
	sp1 := xmem.NewSpace("n1", len(sys.Nodes[1].Devices))
	e0 := &Endpoint{Rank: 0, Node: 0, Space: sp0, Ctx: rt0.NewContext(0, sp0, 0, true, true)}
	e1 := &Endpoint{Rank: 1, Node: 1, Space: sp1, Ctx: rt1.NewContext(0, sp1, 0, true, true)}
	return eng, h0, h1, e0, e1
}

func TestInternodeHostToHost(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	src, _ := e0.Space.AllocHost(4096, true)
	dst, _ := e1.Space.AllocHost(4096, true)
	sb, _ := e0.Space.Bytes(src, 4096)
	for i := range sb {
		sb[i] = byte(i * 3)
	}
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 2, Addr: src, Bytes: 4096, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 2, Addr: dst, Bytes: 4096, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	db, _ := e1.Space.Bytes(dst, 4096)
	for i := range db {
		if db[i] != byte(i*3) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	if h0.Stats().NetOut != 1 || h1.Stats().NetIn != 1 {
		t.Fatalf("net counters: out=%d in=%d", h0.Stats().NetOut, h1.Stats().NetIn)
	}
	if rc.Err != nil {
		t.Fatal(rc.Err)
	}
}

func TestInternodeDeviceRDMAvsStaged(t *testing.T) {
	// Titan NICs are RDMA-capable: device send goes direct. With RDMA
	// disabled, the same transfer stages through pinned host memory.
	run := func(rdma bool) (sim.Dur, *Hub, *Hub) {
		cfg := impaccCfg()
		cfg.RDMA = rdma
		eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), cfg)
		src, _ := e0.Ctx.MemAlloc(16 << 20)
		dst, _ := e1.Ctx.MemAlloc(16 << 20)
		s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 0, Addr: src, Bytes: 16 << 20, Ep: e0, Done: eng.NewEvent("s")}
		rc := &Cmd{Src: 0, Dst: 1, Tag: 0, Addr: dst, Bytes: 16 << 20, Ep: e1, Done: eng.NewEvent("r")}
		var elapsed sim.Dur
		eng.Spawn("sender", func(p *sim.Proc) { h0.PostNetSend(p, s, h1) })
		eng.Spawn("recver", func(p *sim.Proc) {
			start := p.Now()
			h1.PostNetRecv(p, rc)
			rc.Done.Wait(p)
			elapsed = sim.Dur(p.Now() - start)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed, h0, h1
	}
	direct, h0d, _ := run(true)
	staged, h0s, h1s := run(false)
	if h0d.Stats().RDMADirect != 1 || h0d.Stats().Staged != 0 {
		t.Fatalf("RDMA run: direct=%d staged=%d", h0d.Stats().RDMADirect, h0d.Stats().Staged)
	}
	if h0s.Stats().Staged != 1 || h1s.Stats().Staged != 1 {
		t.Fatalf("staged run: sender staged=%d recv staged=%d", h0s.Stats().Staged, h1s.Stats().Staged)
	}
	if direct >= staged {
		t.Fatalf("GPUDirect RDMA (%v) must beat staging (%v) — Figure 9 g-i", direct, staged)
	}
}

func TestLegacyRejectsDeviceBuffers(t *testing.T) {
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), legacyCfg())
	src, _ := e0.Ctx.MemAlloc(1024)
	dst, _ := e1.Space.AllocHost(1024, true)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 0, Addr: src, Bytes: 1024, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: 0, Dst: 1, Tag: 0, Addr: dst, Bytes: 1024, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("x", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
		s.Done.Wait(p)
	})
	_ = rc
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err == nil {
		t.Fatal("legacy device-memory send must error")
	}
}

func TestSerializedInternodeWithoutThreadMultiple(t *testing.T) {
	// Without MPI_THREAD_MULTIPLE, two tasks on one node serialize their
	// MPI calls (paper §3.7).
	run := func(tm bool) sim.Time {
		cfg := impaccCfg()
		cfg.ThreadMultiple = tm
		cfg.MPIOverhead = 100 * sim.Microsecond // exaggerate to observe
		sys := topo.Beacon(2)
		eng := sim.NewEngine()
		fab := topo.NewFabric(eng, sys)
		h0 := NewHub(eng, fab, 0, cfg, xmem.NewHeapTable())
		h1 := NewHub(eng, fab, 1, cfg, xmem.NewHeapTable())
		rt0 := device.NewRuntime(eng, fab, 0)
		sp0 := xmem.NewSpace("n0", 4)
		sp1 := xmem.NewSpace("n1", 4)
		rt1 := device.NewRuntime(eng, fab, 1)
		var last sim.Time
		for i := 0; i < 4; i++ {
			i := i
			e := &Endpoint{Rank: i, Node: 0, Space: sp0, Ctx: rt0.NewContext(i, sp0, 0, true, true)}
			er := &Endpoint{Rank: 10 + i, Node: 1, Space: sp1, Ctx: rt1.NewContext(i, sp1, 0, true, true)}
			src, _ := sp0.AllocHost(64, true)
			dst, _ := sp1.AllocHost(64, true)
			s := &Cmd{IsSend: true, Src: i, Dst: 10 + i, Tag: 0, Addr: src, Bytes: 64, Ep: e, Done: eng.NewEvent("s")}
			rc := &Cmd{Src: i, Dst: 10 + i, Tag: 0, Addr: dst, Bytes: 64, Ep: er, Done: eng.NewEvent("r")}
			eng.Spawn("s", func(p *sim.Proc) {
				h0.PostNetSend(p, s, h1)
				s.Done.Wait(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
			eng.Spawn("r", func(p *sim.Proc) {
				h1.PostNetRecv(p, rc)
				rc.Done.Wait(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	parallel := run(true)
	serial := run(false)
	if serial <= parallel {
		t.Fatalf("serialized MPI (%v) must be slower than THREAD_MULTIPLE (%v)", serial, parallel)
	}
}

func TestUnbackedPayloadTimingOnly(t *testing.T) {
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	src, _ := r.sp.AllocHost(1<<20, false)
	dst, _ := r.sp.AllocHost(1<<20, false)
	s, rc := cmdPair(r.eng, e0, e1, src, dst, 1<<20, false, false)
	r.eng.Spawn("x", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	if rc.Err != nil {
		t.Fatal(rc.Err)
	}
	if r.hub.Stats().FusedCopies != 1 {
		t.Fatal("unbacked transfer must still be priced")
	}
}

func TestFusedDtoDCrossSocketStaged(t *testing.T) {
	// Devices 0 and 4 on PSG sit on different root complexes: the fused
	// copy must stage DtoH + HtoD rather than go direct.
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0 := r.endpoint(0, 0, r.sp)
	e4 := r.endpoint(1, 4, r.sp)
	src, _ := e0.Ctx.MemAlloc(32 << 20)
	dst, _ := e4.Ctx.MemAlloc(32 << 20)
	s, rc := cmdPair(r.eng, e0, e4, src, dst, 32<<20, false, false)
	var elapsed sim.Dur
	r.eng.Spawn("x", func(p *sim.Proc) {
		start := p.Now()
		r.hub.PostIntra(p, s)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
		elapsed = sim.Dur(p.Now() - start)
	})
	r.run(t)
	// Same size direct P2P between devices 0,1:
	r2 := newNodeRig(t, topo.PSG(), impaccCfg())
	f0 := r2.endpoint(0, 0, r2.sp)
	f1 := r2.endpoint(1, 1, r2.sp)
	src2, _ := f0.Ctx.MemAlloc(32 << 20)
	dst2, _ := f1.Ctx.MemAlloc(32 << 20)
	s2, rc2 := cmdPair(r2.eng, f0, f1, src2, dst2, 32<<20, false, false)
	var direct sim.Dur
	r2.eng.Spawn("x", func(p *sim.Proc) {
		start := p.Now()
		r2.hub.PostIntra(p, s2)
		r2.hub.PostIntra(p, rc2)
		rc2.Done.Wait(p)
		direct = sim.Dur(p.Now() - start)
	})
	r2.run(t)
	if elapsed <= direct {
		t.Fatalf("cross-socket staged (%v) should cost more than P2P (%v)", elapsed, direct)
	}
}

func TestFusedSameDeviceCopy(t *testing.T) {
	// Both endpoints on the same device: on-device DMA.
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0 := r.endpoint(0, 0, r.sp)
	e1 := r.endpoint(1, 0, r.sp) // same device 0
	src, _ := e0.Ctx.MemAlloc(1 << 20)
	dst, _ := e1.Ctx.MemAlloc(1 << 20)
	s, rc := cmdPair(r.eng, e0, e1, src, dst, 1<<20, false, false)
	r.eng.Spawn("x", func(p *sim.Proc) {
		r.hub.PostIntra(p, s)
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
	})
	r.run(t)
	if rc.Err != nil || r.hub.Stats().FusedCopies != 1 {
		t.Fatalf("same-device fusion failed: %v, %d", rc.Err, r.hub.Stats().FusedCopies)
	}
	if r.hub.HandlerBusy() == 0 {
		t.Fatal("handler busy time not accounted")
	}
}

func TestNetArrivalBeforeWildcardRecv(t *testing.T) {
	// Internode message arrives before any recv is posted; a later
	// wildcard recv must still match it.
	eng, h0, h1, e0, e1 := twoNodeRig(t, topo.Titan(2), impaccCfg())
	src, _ := e0.Space.AllocHost(256, true)
	dst, _ := e1.Space.AllocHost(256, true)
	sb, _ := e0.Space.Bytes(src, 256)
	sb[9] = 0x42
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 3, Addr: src, Bytes: 256, Ep: e0, Done: eng.NewEvent("s")}
	rc := &Cmd{Src: AnySource, Dst: 1, Tag: AnyTag, Addr: dst, Bytes: 256, Ep: e1, Done: eng.NewEvent("r")}
	eng.Spawn("sender", func(p *sim.Proc) {
		h0.PostNetSend(p, s, h1)
	})
	eng.Spawn("recver", func(p *sim.Proc) {
		p.Sleep(50 * sim.Millisecond) // long after arrival
		h1.PostNetRecv(p, rc)
		rc.Done.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	db, _ := e1.Space.Bytes(dst, 256)
	if db[9] != 0x42 {
		t.Fatal("late wildcard recv missed stored arrival")
	}
}

func TestSerializedStagingHoldsLock(t *testing.T) {
	// Beacon (no RDMA): without THREAD_MULTIPLE, concurrent device sends
	// must serialize through the library's staging window.
	run := func(tm bool) sim.Time {
		cfg := impaccCfg()
		cfg.ThreadMultiple = tm
		sys := topo.Beacon(2)
		eng := sim.NewEngine()
		fab := topo.NewFabric(eng, sys)
		h0 := NewHub(eng, fab, 0, cfg, xmem.NewHeapTable())
		h1 := NewHub(eng, fab, 1, cfg, xmem.NewHeapTable())
		rt0 := device.NewRuntime(eng, fab, 0)
		rt1 := device.NewRuntime(eng, fab, 1)
		sp0 := xmem.NewSpace("n0", 4)
		sp1 := xmem.NewSpace("n1", 4)
		// Latency-bound regime: small device messages issued in aligned
		// rounds, so the serialized call window (library overhead +
		// staging setup) collides across the node's four tasks.
		const rounds = 16
		const period = 500 * sim.Microsecond
		var last sim.Time
		for i := 0; i < 4; i++ {
			i := i
			es := &Endpoint{Rank: i, Node: 0, Space: sp0, Ctx: rt0.NewContext(i, sp0, 0, true, true)}
			er := &Endpoint{Rank: 10 + i, Node: 1, Space: sp1, Ctx: rt1.NewContext(i, sp1, 0, true, true)}
			src, _ := es.Ctx.MemAlloc(4096)
			dst, _ := er.Ctx.MemAlloc(4096)
			eng.Spawn("s", func(p *sim.Proc) {
				for round := 0; round < rounds; round++ {
					p.SleepUntil(sim.Time(round) * sim.Time(period))
					s := &Cmd{IsSend: true, Src: i, Dst: 10 + i, Tag: round, Addr: src,
						Bytes: 4096, Ep: es, Done: eng.NewEvent("s")}
					h0.PostNetSend(p, s, h1)
					s.Done.Wait(p)
					if p.Now() > last {
						last = p.Now()
					}
				}
			})
			eng.Spawn("r", func(p *sim.Proc) {
				for round := 0; round < rounds; round++ {
					rc := &Cmd{Src: i, Dst: 10 + i, Tag: round, Addr: dst,
						Bytes: 4096, Ep: er, Done: eng.NewEvent("r")}
					h1.PostNetRecv(p, rc)
					rc.Done.Wait(p)
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	parallel := run(true)
	serial := run(false)
	// The serialized staging copies (each task has its own PCIe link that
	// could have overlapped) must cost extra time.
	if serial <= parallel {
		t.Fatalf("serialized staging (%v) not slower than THREAD_MULTIPLE (%v)", serial, parallel)
	}
}

func TestHubProbe(t *testing.T) {
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	src, _ := r.sp.AllocHost(256, true)
	s := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 4, Addr: src, Bytes: 256, Ep: e0, Done: r.eng.NewEvent("s")}
	r.eng.Spawn("x", func(p *sim.Proc) {
		if ok, _ := r.hub.Probe(1, 0, 4, 0); ok {
			t.Error("probe matched before post")
		}
		r.hub.PostIntra(p, s)
		p.Sleep(10 * sim.Microsecond) // let the handler park it
		ok, n := r.hub.Probe(1, 0, 4, 0)
		if !ok || n != 256 {
			t.Errorf("probe = %v, %d", ok, n)
		}
		// Wrong tag / dst / comm must miss.
		if ok, _ := r.hub.Probe(1, 0, 5, 0); ok {
			t.Error("probe matched wrong tag")
		}
		if ok, _ := r.hub.Probe(0, 0, 4, 0); ok {
			t.Error("probe matched wrong dst")
		}
		if ok, _ := r.hub.Probe(1, 0, 4, 9); ok {
			t.Error("probe matched wrong comm")
		}
		// Wildcards match.
		if ok, _ := r.hub.Probe(1, AnySource, AnyTag, 0); !ok {
			t.Error("wildcard probe missed")
		}
		// Consume it.
		rc := &Cmd{Src: 0, Dst: 1, Tag: 4, Addr: src, Bytes: 256, Ep: e1, Done: r.eng.NewEvent("r")}
		r.hub.PostIntra(p, rc)
		rc.Done.Wait(p)
		if ok, _ := r.hub.Probe(1, 0, 4, 0); ok {
			t.Error("probe matched consumed message")
		}
	})
	r.run(t)
}

func TestCommScopedMatchingAtHubLevel(t *testing.T) {
	// Same (src, dst, tag), different comm contexts: each recv matches
	// only its own context's send.
	r := newNodeRig(t, topo.PSG(), impaccCfg())
	e0, e1 := r.endpoint(0, 0, r.sp), r.endpoint(1, 1, r.sp)
	a1, _ := r.sp.AllocHost(8, true)
	a2, _ := r.sp.AllocHost(8, true)
	d1, _ := r.sp.AllocHost(8, true)
	d2, _ := r.sp.AllocHost(8, true)
	b1, _ := r.sp.Bytes(a1, 8)
	b2, _ := r.sp.Bytes(a2, 8)
	b1[0], b2[0] = 10, 20
	s1 := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 0, Comm: 7, Addr: a1, Bytes: 8, Ep: e0, Done: r.eng.NewEvent("s1")}
	s2 := &Cmd{IsSend: true, Src: 0, Dst: 1, Tag: 0, Comm: 8, Addr: a2, Bytes: 8, Ep: e0, Done: r.eng.NewEvent("s2")}
	r1 := &Cmd{Src: 0, Dst: 1, Tag: 0, Comm: 8, Addr: d1, Bytes: 8, Ep: e1, Done: r.eng.NewEvent("r1")}
	r2 := &Cmd{Src: 0, Dst: 1, Tag: 0, Comm: 7, Addr: d2, Bytes: 8, Ep: e1, Done: r.eng.NewEvent("r2")}
	r.eng.Spawn("x", func(p *sim.Proc) {
		r.hub.PostIntra(p, s1)
		r.hub.PostIntra(p, s2)
		r.hub.PostIntra(p, r1) // comm 8 posted first: must take s2
		r.hub.PostIntra(p, r2)
		r1.Done.Wait(p)
		r2.Done.Wait(p)
	})
	r.run(t)
	v1, _ := r.sp.Bytes(d1, 8)
	v2, _ := r.sp.Bytes(d2, 8)
	if v1[0] != 20 || v2[0] != 10 {
		t.Fatalf("comm contexts crossed: %d, %d", v1[0], v2[0])
	}
}
